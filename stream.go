package countnet

import (
	"fmt"

	"countnet/internal/network"
	"countnet/internal/runner"
)

// BatchSorter is a reusable, allocation-free batch sorter over one
// network. Not safe for concurrent use; create one per goroutine.
type BatchSorter struct {
	inner *runner.Sorter
	net   *network.Network
	asc   []int64
}

// NewBatchSorter prepares a BatchSorter for the network, sharing the
// network's cached evaluation plan.
func NewBatchSorter(n *Network) *BatchSorter {
	return &BatchSorter{inner: runner.NewPlanSorter(n.evalPlan()), net: n.inner, asc: make([]int64, n.Width())}
}

// Sort sorts one batch of exactly Width values ascending. The returned
// slice is reused by the next call; copy it to keep it.
func (s *BatchSorter) Sort(in []int64) []int64 {
	out := s.inner.Sort(in)
	for i := range out {
		s.asc[len(out)-1-i] = out[i]
	}
	return s.asc
}

// SortBatches sorts every batch in place, ascending, using `workers`
// data-parallel goroutines (each with private scratch). Every batch
// must have exactly Width values.
func (n *Network) SortBatches(batches [][]int64, workers int) error {
	for i, b := range batches {
		if len(b) != n.Width() {
			return fmt.Errorf("countnet: batch %d has %d values for width-%d network", i, len(b), n.Width())
		}
	}
	n.evalPlan().SortBatches(batches, workers)
	for _, b := range batches {
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
	}
	return nil
}

// SortStream pushes every batch from in through the network using one
// goroutine per network layer (pipelined: batch k+1 enters layer 1
// while batch k is in layer 2), emitting ascending-sorted batches in
// input order on the returned channel. Each input batch must have
// exactly Width values; input slices are reused as scratch. The output
// channel closes after the last batch.
func (n *Network) SortStream(in <-chan []int64) <-chan []int64 {
	p := runner.NewPipeline(n.inner, 2)
	out := make(chan []int64, 2)
	go func() {
		for batch := range in {
			p.Submit(batch)
		}
		p.Close()
	}()
	go func() {
		defer close(out)
		order := n.inner.OutputOrder
		for batch := range p.Results() {
			asc := make([]int64, len(batch))
			for k, wire := range order {
				asc[len(batch)-1-k] = batch[wire]
			}
			out <- asc
		}
		p.Wait()
	}()
	return out
}
