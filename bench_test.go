package countnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/pool"
	"countnet/internal/runner"
)

// ---- E1/E2/E3/E11: construction benchmarks -------------------------------

// BenchmarkBuildK measures construction of K networks (E1, E11).
func BenchmarkBuildK(b *testing.B) {
	cases := []struct {
		name string
		fs   []int
	}{
		{"n3_w30", []int{2, 3, 5}},
		{"n4_w256", []int{4, 4, 4, 4}},
		{"n6_w64", []int{2, 2, 2, 2, 2, 2}},
		{"n10_w1024", []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.K(c.fs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildL measures construction of L networks (E2, E11).
func BenchmarkBuildL(b *testing.B) {
	cases := []struct {
		name string
		fs   []int
	}{
		{"n2_w35", []int{7, 5}},
		{"n3_w120", []int{6, 5, 4}},
		{"n5_w32", []int{2, 2, 2, 2, 2}},
		{"n8_w256", []int{2, 2, 2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.L(c.fs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildR measures construction of R(p,q) (E3).
func BenchmarkBuildR(b *testing.B) {
	cases := [][2]int{{4, 4}, {9, 9}, {16, 16}, {31, 37}}
	for _, c := range cases {
		b.Run(benchName("R", c[0], c[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.R(c[0], c[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildBaselines measures the classical constructions (E5).
func BenchmarkBuildBaselines(b *testing.B) {
	b.Run("bitonic_1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Bitonic(1024); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("periodic_256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Periodic(256); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E4: the family sweep -------------------------------------------------

// BenchmarkE4FamilyBuild builds every member of the width-64 family
// per iteration, the constructive cost of the paper's trade-off curve.
func BenchmarkE4FamilyBuild(b *testing.B) {
	fss := Factorizations(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fs := range fss {
			if _, err := core.L(fs...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- E12: comparator-engine sorting ----------------------------------------

// BenchmarkSortNetworks measures batch sorting through the comparator
// engine across factorizations of width 64, plus the bitonic baseline
// and the standard library for scale (E12).
func BenchmarkSortNetworks(b *testing.B) {
	nets := map[string]*Network{}
	for _, fs := range [][]int{{8, 8}, {4, 4, 4}, {2, 2, 2, 2, 2, 2}} {
		n, err := NewL(fs...)
		if err != nil {
			b.Fatal(err)
		}
		nets[n.Name()] = n
	}
	bi, _ := NewBitonic(64)
	nets[bi.Name()] = bi

	rng := rand.New(rand.NewSource(3))
	in := make([]int64, 64)
	for i := range in {
		in[i] = int64(rng.Intn(10000))
	}
	for name, n := range nets {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := n.Sort(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("stdlib_sort64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tmp := append([]int64(nil), in...)
			sort.Slice(tmp, func(a, c int) bool { return tmp[a] < tmp[c] })
		}
	})
}

// ---- E6/E7: verification engines -------------------------------------------

// BenchmarkQuiescentTokens measures the token transfer engine used by
// every verification battery (E6/E7 substrate).
func BenchmarkQuiescentTokens(b *testing.B) {
	n, err := core.L(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]int64, n.Width())
	rng := rand.New(rand.NewSource(4))
	for i := range in {
		in[i] = int64(rng.Intn(100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.ApplyTokens(n, in)
	}
}

// ---- E9: concurrent counter throughput --------------------------------------

// BenchmarkCounter measures Fetch&Increment under RunParallel for the
// counting-network counters across the width-16 family, against the
// centralized baselines (E9; the [9]-style study).
func BenchmarkCounter(b *testing.B) {
	run := func(name string, c counter.Counter) {
		b.Run(name, func(b *testing.B) {
			var id int64
			b.RunParallel(func(pb *testing.PB) {
				local := c
				if h, ok := c.(counter.Handled); ok {
					id++
					local = h.Handle(int(id))
				}
				for pb.Next() {
					local.Next()
				}
			})
		})
	}
	run("atomic", counter.NewAtomicCounter())
	run("mutex", counter.NewMutexCounter())
	for _, fs := range [][]int{{16}, {8, 2}, {4, 4}, {4, 2, 2}, {2, 2, 2, 2}} {
		n, err := core.L(fs...)
		if err != nil {
			b.Fatal(err)
		}
		run("network_"+n.Name, counter.NewNetworkCounter(n, false))
	}
	n, _ := core.L(4, 4)
	run("network_mutex_L(4,4)", counter.NewNetworkCounter(n, true))
}

// BenchmarkTraverse measures the per-token network walk alone.
func BenchmarkTraverse(b *testing.B) {
	for _, fs := range [][]int{{4, 4}, {2, 2, 2, 2}} {
		n, err := core.L(fs...)
		if err != nil {
			b.Fatal(err)
		}
		a := runner.Compile(n)
		b.Run(n.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Traverse(i & 15)
			}
		})
	}
}

// BenchmarkTraverseParallel measures contended concurrent traversal:
// every goroutine hammers the same compiled network's balancer
// counters, so false sharing between adjacent gates shows up directly.
func BenchmarkTraverseParallel(b *testing.B) {
	for _, fs := range [][]int{{4, 4}, {2, 2, 2, 2}} {
		n, err := core.L(fs...)
		if err != nil {
			b.Fatal(err)
		}
		a := runner.Compile(n)
		w := n.Width()
		b.Run(n.Name, func(b *testing.B) {
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				wire := int(next.Add(1)) % w
				for pb.Next() {
					a.Traverse(wire)
					wire = (wire + 1) % w
				}
			})
		})
	}
}

// BenchmarkBatchSort compares the batch-sorting engines over identical
// work: `gates` walks the network gate list per batch (the pre-plan
// engine), `plan` streams blocks through the compiled plan on one
// goroutine, `planmt` adds data-parallel workers, and `parallel` runs
// each batch alone with layer parallelism.
func BenchmarkBatchSort(b *testing.B) {
	for _, spec := range []struct {
		name  string
		build func() (*Network, error)
	}{
		{"L444_w64", func() (*Network, error) { return NewL(4, 4, 4) }},
		{"K448_w128", func() (*Network, error) { return NewK(4, 4, 8) }},
	} {
		n, err := spec.build()
		if err != nil {
			b.Fatal(err)
		}
		w := n.Width()
		const numBatches = 256
		rng := rand.New(rand.NewSource(9))
		pristine := make([][]int64, numBatches)
		work := make([][]int64, numBatches)
		for i := range pristine {
			pristine[i] = make([]int64, w)
			for j := range pristine[i] {
				pristine[i][j] = int64(rng.Intn(100000))
			}
			work[i] = make([]int64, w)
		}
		reset := func() {
			for i := range work {
				copy(work[i], pristine[i])
			}
		}
		batchNs := func(b *testing.B, run func()) {
			b.Helper()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reset() // identical refill cost for every engine
				run()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*numBatches), "ns/batch")
		}
		plan := runner.CompilePlan(n.inner)
		b.Run(spec.name+"/gates", func(b *testing.B) {
			batchNs(b, func() {
				for i := range work {
					runner.ApplyComparators(n.inner, work[i])
				}
			})
		})
		b.Run(spec.name+"/plan", func(b *testing.B) {
			batchNs(b, func() { plan.ApplyBatches(work, 0) })
		})
		b.Run(spec.name+"/planmt", func(b *testing.B) {
			batchNs(b, func() { plan.SortBatches(work, runtime.NumCPU()) })
		})
		b.Run(spec.name+"/parallel", func(b *testing.B) {
			pl := plan.NewParallel(0)
			defer pl.Close()
			batchNs(b, func() {
				for i := range work {
					pl.Apply(work[i], work[i])
				}
			})
		})
	}
}

// ---- E10: recursive accounting ----------------------------------------------

// BenchmarkMergerBuild isolates the merger construction (E10).
func BenchmarkMergerBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.MergerNetwork(core.KConfig(), 2, 3, 4, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8: staircase variants ---------------------------------------------------

// BenchmarkStaircaseVariants builds each staircase variant (E8).
func BenchmarkStaircaseVariants(b *testing.B) {
	kinds := []core.StaircaseKind{
		core.StaircaseOptBase, core.StaircaseOptBitonic,
		core.StaircaseBasic, core.StaircaseBasicSub,
	}
	for _, kind := range kinds {
		cfg := core.Config{Base: core.BalancerBase, Staircase: kind}
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.StaircaseNetwork(cfg, 6, 4, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- application-layer benchmarks -------------------------------------------

// BenchmarkPool measures the counting-network pool's put/get round trip
// under RunParallel against a channel baseline.
func BenchmarkPool(b *testing.B) {
	n, err := core.L(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("network_pool", func(b *testing.B) {
		p := pool.New[int](n)
		var id int64
		b.RunParallel(func(pb *testing.PB) {
			id++
			h := p.Handle(int(id))
			for pb.Next() {
				h.Put(1)
				h.Get()
			}
		})
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 1024)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				ch <- 1
				<-ch
			}
		})
	})
}

// BenchmarkWrappedInject measures the cyclic wrapped scheme's per-token
// cost at a wrapping and a non-wrapping width (E15's latency point).
func BenchmarkWrappedInject(b *testing.B) {
	for _, w := range []int{8, 10} {
		c, err := baseline.NewWrapped(w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("w", w, c.InnerWidth()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Inject(i % w)
			}
		})
	}
}

func benchName(prefix string, p, q int) string {
	return prefix + "_" + itoa(p) + "x" + itoa(q)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkCounterCombining measures the flat-combining counter over
// the same networks as BenchmarkCounter, per value (block1) and in
// blocks of 16 (block16). ns/op is per issued value in both cases, so
// rows compare directly against the BenchmarkCounter engines.
func BenchmarkCounterCombining(b *testing.B) {
	for _, fs := range [][]int{{16}, {4, 4}} {
		n, err := core.L(fs...)
		if err != nil {
			b.Fatal(err)
		}
		c := counter.NewCombiningCounter(n)
		var id atomic.Int64
		b.Run("block1_"+n.Name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				h := c.Handle(int(id.Add(1)))
				for pb.Next() {
					h.Next()
				}
			})
		})
		for _, block := range []int{16, 64} {
			b.Run(fmt.Sprintf("block%d_%s", block, n.Name), func(b *testing.B) {
				b.RunParallel(func(pb *testing.PB) {
					h := c.Handle(int(id.Add(1))).(*counter.CombiningHandle)
					dst := make([]int64, block)
					i := 0
					for pb.Next() {
						if i == 0 {
							h.NextBlock(dst)
						}
						i++
						if i == len(dst) {
							i = 0
						}
					}
				})
			})
		}
	}
}

// BenchmarkTraverseBatch measures the batched propagation engine: one
// reserved range per touched gate, regardless of the token count. The
// ns/token metric shows the amortization — per-token cost falls as the
// batch grows, where BenchmarkTraverse pays the full walk per token.
func BenchmarkTraverseBatch(b *testing.B) {
	for _, fs := range [][]int{{4, 4}, {2, 2, 2, 2}} {
		n, err := core.L(fs...)
		if err != nil {
			b.Fatal(err)
		}
		a := runner.Compile(n)
		s := a.NewBatchScratch()
		w := n.Width()
		dst := make([]int64, w)
		for _, tokens := range []int{1, 16, 256} {
			in := make([]int64, w)
			for i := 0; i < tokens; i++ {
				in[i%w]++
			}
			b.Run(fmt.Sprintf("%s/tokens%d", n.Name, tokens), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.TraverseBatchInto(dst, in, s)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tokens), "ns/token")
			})
		}
	}
}

// BenchmarkObsOverhead is the observability guard lane: the same
// contended workloads as BenchmarkTraverseParallel and
// BenchmarkCounterCombining, run with instrumentation compiled in but
// disabled (obs=off — the state every production caller is in unless
// they opt in) and with it recording (obs=on). The obs=off rows must
// track the seed benchmarks within noise; `make bench-obs` commits
// both sides to BENCH_obs.json and benchjson -overhead reports the
// ratio. The flight=off/flight=on pair guards the flight recorder the
// same way at its block-lease granularity.
func BenchmarkObsOverhead(b *testing.B) {
	n, err := core.L(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	w := n.Width()
	for _, mode := range []string{"obs=off", "obs=on"} {
		obsOn := mode == "obs=on"
		b.Run("traverse_"+n.Name+"/"+mode, func(b *testing.B) {
			a := runner.Compile(n)
			if obsOn {
				a.EnableObs("bench-traverse")
			}
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				wire := int(next.Add(1)) % w
				for pb.Next() {
					a.Traverse(wire)
					wire = (wire + 1) % w
				}
			})
		})
		b.Run("combining_"+n.Name+"/"+mode, func(b *testing.B) {
			c := counter.NewCombiningCounter(n)
			if obsOn {
				// A private registry: benchmarks must not leave groups
				// behind in the process-wide default.
				c.EnableObs("bench-combining", obs.NewRegistry())
			}
			var id atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := c.Handle(int(id.Add(1)))
				for pb.Next() {
					h.Next()
				}
			})
		})
	}

	// The flight lanes measure the recorder at its deployed
	// granularity — one fixed-size event per 64-value block lease, the
	// harness's NextBlock cadence — first with the default recorder
	// disabled (one atomic pointer load + nil check per lease) and then
	// recording into the ring. The on/off ratio is the recorder's
	// whole-workload cost and must stay within noise (<=2%).
	for _, mode := range []string{"flight=off", "flight=on"} {
		flightOn := mode == "flight=on"
		b.Run("lease_"+n.Name+"/"+mode, func(b *testing.B) {
			if flightOn {
				obs.EnableFlight(obs.DefaultFlightSlots)
			}
			defer obs.DisableFlight()
			c := counter.NewCombiningCounter(n)
			var id atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := c.Handle(int(id.Add(1)))
				for pb.Next() {
					first := h.Next()
					for i := 1; i < 64; i++ {
						h.Next()
					}
					obs.RecordFlight(obs.FlightBlockLease, first, 64)
				}
			})
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/value")
		})
	}
}

// BenchmarkWideGateKernel measures the generated compare-exchange
// kernels against the insertion-sort fallback they replaced, one lane
// per kernel width: for each w in 5..16 a plan of stacked w-wide
// gates runs once with kernels enabled (the default) and once with
// SetWideKernels(false). The per-width kernel/insertion ratio is the
// recorded speedup in BENCH_plan.json and docs/PERFORMANCE.md.
func BenchmarkWideGateKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	for w := 5; w <= 16; w++ {
		bld := network.NewBuilder(w + 4)
		for g := 0; g < 8; g++ {
			bld.Add(rng.Perm(w + 4)[:w], "wide")
		}
		net := bld.Build(fmt.Sprintf("widegate%d", w), nil)

		in := make([]int64, net.Width())
		for i := range in {
			in[i] = int64(rng.Intn(1 << 20))
		}
		out := make([]int64, len(in))

		kernel := runner.CompilePlan(net)
		insertion := runner.CompilePlan(net)
		insertion.SetWideKernels(false)
		ks, is := kernel.NewScratch(), insertion.NewScratch()

		b.Run(fmt.Sprintf("w%d/kernel", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernel.Apply(out, in, ks)
			}
		})
		b.Run(fmt.Sprintf("w%d/insertion", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insertion.Apply(out, in, is)
			}
		})
	}
}
