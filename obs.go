package countnet

// Public surface of the observability layer (internal/obs): options
// that attach zero-overhead-when-off instrumentation to counters and
// pools, and package-level accessors over the default registry. See
// docs/OBSERVABILITY.md for the metrics and how to read them against
// the paper's contention model.

import (
	"encoding/json"
	"io"
	"net/http"

	"countnet/internal/obs"
)

// Option configures construction of the package's concurrent
// structures (NewCounter, NewCombiningCounter, NewPool).
type Option func(*options)

type options struct {
	obsName string
}

func buildOptions(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// WithObservability enables instrumentation on the constructed
// structure, registered under name in the package's default
// observability registry (exposed by ObsHandler, ObsSnapshotJSON and
// WriteObsPrometheus). Observed structures record per-balancer and
// per-layer token counts, contention events, and latency histograms —
// all allocation-free and safe to snapshot concurrently. Structures
// built without this option pay a single nil pointer check per
// operation and record nothing.
//
// Registering a second structure under an existing name replaces the
// previous group in the registry (the old structure keeps recording
// into its own detached state).
func WithObservability(name string) Option {
	return func(o *options) { o.obsName = name }
}

// ObsHandler returns an http.Handler for the default observability
// registry serving "/snapshot" (JSON), "/metrics" (Prometheus text
// format) and "/debug/vars" (expvar), with an index at "/".
func ObsHandler() http.Handler { return obs.Default.Handler() }

// ObsSnapshotJSON returns an indented JSON snapshot of every observed
// structure in the default registry — the same document ObsHandler
// serves at /snapshot.
func ObsSnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
}

// WriteObsPrometheus writes the default registry's state to w in the
// Prometheus text exposition format.
func WriteObsPrometheus(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// PublishObsExpvar publishes the default registry's snapshot as an
// expvar under the given name, once per process; it reports whether
// the name was published now (false if already taken).
func PublishObsExpvar(name string) bool { return obs.Default.PublishExpvar(name) }
