package network

import (
	"encoding/json"
	"testing"
)

// FuzzJSONUnmarshal: arbitrary bytes either fail to decode or produce a
// network that validates and survives a marshal/unmarshal round trip.
// Run with `go test -fuzz=FuzzJSONUnmarshal ./internal/network` for a
// real fuzzing session; the seed corpus runs under plain `go test`.
func FuzzJSONUnmarshal(f *testing.F) {
	f.Add([]byte(`{"width":2,"gates":[{"wires":[0,1]}]}`))
	f.Add([]byte(`{"width":4,"gates":[{"wires":[0,1]},{"wires":[2,3]},{"wires":[1,2]}],"output_order":[3,2,1,0]}`))
	f.Add([]byte(`{"width":0}`))
	f.Add([]byte(`{"width":3,"gates":[{"wires":[0,1,2],"label":"x"}]}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"width":-5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var n Network
		if err := json.Unmarshal(data, &n); err != nil {
			return // rejected, fine
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		round, err := json.Marshal(&n)
		if err != nil {
			t.Fatalf("marshal of accepted network: %v", err)
		}
		var back Network
		if err := json.Unmarshal(round, &back); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Depth() != n.Depth() || back.Size() != n.Size() || back.Width() != n.Width() {
			t.Fatalf("round trip changed structure: %v vs %v", &back, &n)
		}
	})
}
