package network

import (
	"fmt"
	"regexp"
	"sort"

	"strings"
	"testing"
)

func sorter4Net() *Network {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	return b.Build("sorter4", nil)
}

func TestVerilogStructure(t *testing.T) {
	v, err := sorter4Net().Verilog("bitonic4", 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"module bitonic4", "parameter DATA = 16",
		"input  wire [DATA-1:0] in0", "output wire [DATA-1:0] out3",
		"assign s0_0 = in0;", "endmodule",
	} {
		if !strings.Contains(v, frag) {
			t.Errorf("verilog missing %q", frag)
		}
	}
	// 6 gates -> 12 compare-exchange assigns.
	if got := strings.Count(v, "? s"); got != 12 {
		t.Errorf("%d mux assigns, want 12", got)
	}
}

func TestVerilogRejects(t *testing.T) {
	b := NewBuilder(3)
	b.Add([]int{0, 1, 2}, "")
	wide := b.Build("wide", nil)
	if _, err := wide.Verilog("x", 8); err == nil {
		t.Error("3-wide gate accepted")
	}
	if _, err := sorter4Net().Verilog("x", 0); err == nil {
		t.Error("0-bit data accepted")
	}
}

func TestVerilogDefaultName(t *testing.T) {
	v, err := sorter4Net().Verilog("", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module sorter") {
		t.Error("default module name missing")
	}
}

// TestVerilogSimulated interprets the generated netlist with a tiny
// evaluator (topological assign propagation) and checks it sorts — an
// end-to-end test of the export without a real HDL simulator.
func TestVerilogSimulated(t *testing.T) {
	net := sorter4Net()
	v, err := net.Verilog("s", 32)
	if err != nil {
		t.Fatal(err)
	}
	assignRe := regexp.MustCompile(`assign (\w+) = ([^;]+);`)
	muxRe := regexp.MustCompile(`^\((\w+) >= (\w+)\) \? (\w+) : (\w+)$`)

	eval := func(in []int64) []int64 {
		env := map[string]int64{}
		for i, val := range in {
			env[fmt.Sprintf("in%d", i)] = val
		}
		for _, m := range assignRe.FindAllStringSubmatch(v, -1) {
			dst, expr := m[1], strings.TrimSpace(m[2])
			if mm := muxRe.FindStringSubmatch(expr); mm != nil {
				a, ok1 := env[mm[1]]
				b, ok2 := env[mm[2]]
				if !ok1 || !ok2 {
					t.Fatalf("netlist not topologically ordered at %s", dst)
				}
				if a >= b {
					env[dst] = env[mm[3]]
				} else {
					env[dst] = env[mm[4]]
				}
			} else {
				val, ok := env[expr]
				if !ok {
					t.Fatalf("undefined signal %q", expr)
				}
				env[dst] = val
			}
		}
		out := make([]int64, len(in))
		for i := range out {
			val, ok := env[fmt.Sprintf("out%d", i)]
			if !ok {
				t.Fatalf("missing out%d", i)
			}
			out[i] = val
		}
		return out
	}

	cases := [][]int64{
		{3, 1, 4, 2}, {0, 0, 0, 0}, {9, 9, 1, 9}, {1, 2, 3, 4}, {4, 3, 2, 1},
	}
	for _, in := range cases {
		out := eval(in)
		if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a] > out[b] }) {
			t.Errorf("netlist output %v for %v not descending", out, in)
		}
		// Multiset preserved.
		sum := func(xs []int64) (s int64) {
			for _, x := range xs {
				s += x
			}
			return
		}
		if sum(in) != sum(out) {
			t.Errorf("netlist lost values: %v -> %v", in, out)
		}
	}
}
