package network

import "fmt"

// Concat sequentially composes networks of equal width: the output
// sequence of each network feeds the input sequence of the next
// (position i of stage k's output becomes input position i of stage
// k+1). Output orders are honored as pure rewiring, so composition is
// exact even when stages permute their outputs.
//
// Composition is how the periodic counting network is defined (k
// identical blocks), and appending any counting network to an arbitrary
// balancing network yields a counting network — both facts are used as
// tests.
func Concat(name string, nets ...*Network) (*Network, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("network: concat of nothing")
	}
	w := nets[0].WireCount
	b := NewBuilder(w)
	cur := Identity(w) // sequence position -> physical wire
	for k, n := range nets {
		if n.WireCount != w {
			return nil, fmt.Errorf("network: concat stage %d has width %d, want %d", k, n.WireCount, w)
		}
		for gi := range n.Gates {
			g := &n.Gates[gi]
			wires := make([]int, len(g.Wires))
			for i, x := range g.Wires {
				wires[i] = cur[x]
			}
			b.Add(wires, g.Label)
		}
		next := make([]int, w)
		for i, x := range n.OutputOrder {
			next[i] = cur[x]
		}
		cur = next
	}
	return b.Build(name, cur), nil
}
