// Package network provides the substrate every construction in this
// repository is built on: acyclic switching networks made of p-input
// p-output gates placed on ordered sets of wires.
//
// A gate is interpreted by an execution engine (package runner) either as
// a p-comparator (synchronous sorting switch: the i-th largest input
// value leaves on the gate's i-th wire) or as a p-balancer (asynchronous
// token switch: the i-th token to enter leaves on the gate's wire
// i mod p). Because both interpretations share one structure, the
// paper's isomorphism between counting networks and sorting networks
// (Busch & Herlihy, SPAA 1999, Section 1) is literal here: the same
// Network value is run under either semantics.
//
// Networks are built with a Builder that assigns each gate to the
// earliest legal layer (one past the deepest wire it touches), so
// Network.Depth is the critical-path depth: the maximum number of gates
// traversed by any value or token.
package network

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Gate is a single p-input p-output switch on an ordered set of wires.
// Wires[0] is the gate's "north" wire: under comparator semantics it
// receives the largest input, under balancer semantics the first token.
type Gate struct {
	// ID is the gate's index in Network.Gates (topological order).
	ID int
	// Wires lists the distinct wire indices the gate touches, in gate
	// port order. len(Wires) is the gate's width.
	Wires []int
	// Layer is the gate's critical-path layer, starting at 1.
	Layer int
	// Label records the construction step that produced the gate,
	// e.g. "R(5,7)/T(4,4,3)/row2". Purely informational.
	Label string
}

// Width returns the number of wires the gate touches.
func (g *Gate) Width() int { return len(g.Wires) }

// Network is an acyclic switching network of fixed width. Gates appear
// in topological order: a value entering on any wire meets the gates on
// that wire in slice order.
type Network struct {
	// Name describes the construction, e.g. "L(2,3,5)".
	Name string
	// WireCount is the network width (same number of inputs and outputs).
	WireCount int
	// Gates holds the gates in topological order.
	Gates []Gate
	// OutputOrder maps sequence position to wire index: the network's
	// output sequence element i lives on wire OutputOrder[i]. For a
	// counting network built by package core this is the ordering in
	// which the output satisfies the step property. It is always a
	// permutation of 0..WireCount-1; identity if the construction did
	// not reorder.
	OutputOrder []int

	depth int
}

// Width returns the number of wires.
func (n *Network) Width() int { return n.WireCount }

// Depth returns the critical-path depth: the maximum number of gates on
// any wire-to-wire path, equivalently the maximum gate layer.
func (n *Network) Depth() int { return n.depth }

// Size returns the number of gates.
func (n *Network) Size() int { return len(n.Gates) }

// MaxGateWidth returns the width of the widest gate, or 0 for a
// gate-free network.
func (n *Network) MaxGateWidth() int {
	m := 0
	for i := range n.Gates {
		if w := n.Gates[i].Width(); w > m {
			m = w
		}
	}
	return m
}

// GateWidthHistogram returns a map from gate width to the number of
// gates of that width.
func (n *Network) GateWidthHistogram() map[int]int {
	h := make(map[int]int)
	for i := range n.Gates {
		h[n.Gates[i].Width()]++
	}
	return h
}

// WeightedDepth returns the critical-path latency when a width-p gate
// costs cost(p) time units instead of 1: the maximum, over all wires,
// of the summed gate costs along the wire's path. With cost ≡ 1 it
// equals Depth. This models hardware where wider comparators are slower
// (e.g. cost(p) = p for a linear-time switch, or ceil(log2 p) for a
// tree-structured one), turning the paper's depth-vs-switch-width
// trade-off into a single optimizable number.
func (n *Network) WeightedDepth(cost func(width int) int) int {
	acc := make([]int, n.WireCount)
	for i := range n.Gates {
		g := &n.Gates[i]
		c := cost(g.Width())
		m := 0
		for _, w := range g.Wires {
			if acc[w] > m {
				m = acc[w]
			}
		}
		m += c
		for _, w := range g.Wires {
			acc[w] = m
		}
	}
	d := 0
	for _, v := range acc {
		if v > d {
			d = v
		}
	}
	return d
}

// Layers groups gate indices by layer; Layers()[k] holds the IDs of the
// gates at layer k+1. Gates within a layer touch disjoint wires.
func (n *Network) Layers() [][]int {
	out := make([][]int, n.depth)
	for i := range n.Gates {
		l := n.Gates[i].Layer - 1
		out[l] = append(out[l], i)
	}
	return out
}

// Validate checks the structural invariants: wires in range, no
// duplicate wire within a gate, gates within one layer wire-disjoint,
// layers consistent with topological order, and OutputOrder a
// permutation. A Network produced by a Builder always validates; the
// check exists for deserialized or hand-built networks.
func (n *Network) Validate() error {
	if n.WireCount < 0 {
		return errors.New("network: negative width")
	}
	if len(n.OutputOrder) != n.WireCount {
		return fmt.Errorf("network: output order has %d entries, want %d", len(n.OutputOrder), n.WireCount)
	}
	seen := make([]bool, n.WireCount)
	for _, w := range n.OutputOrder {
		if w < 0 || w >= n.WireCount {
			return fmt.Errorf("network: output order wire %d out of range", w)
		}
		if seen[w] {
			return fmt.Errorf("network: output order repeats wire %d", w)
		}
		seen[w] = true
	}
	wireDepth := make([]int, n.WireCount)
	maxLayer := 0
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.ID != i {
			return fmt.Errorf("network: gate %d has ID %d", i, g.ID)
		}
		if g.Width() < 2 {
			return fmt.Errorf("network: gate %d has width %d < 2", i, g.Width())
		}
		inGate := make(map[int]bool, g.Width())
		for _, w := range g.Wires {
			if w < 0 || w >= n.WireCount {
				return fmt.Errorf("network: gate %d touches wire %d outside width %d", i, w, n.WireCount)
			}
			if inGate[w] {
				return fmt.Errorf("network: gate %d touches wire %d twice", i, w)
			}
			inGate[w] = true
		}
		for _, w := range g.Wires {
			if g.Layer <= wireDepth[w] {
				return fmt.Errorf("network: gate %d at layer %d but wire %d already at depth %d",
					i, g.Layer, w, wireDepth[w])
			}
		}
		for _, w := range g.Wires {
			wireDepth[w] = g.Layer
		}
		if g.Layer > maxLayer {
			maxLayer = g.Layer
		}
	}
	if maxLayer != n.depth {
		return fmt.Errorf("network: recorded depth %d, computed %d", n.depth, maxLayer)
	}
	return nil
}

// WireGates returns, for each wire, the IDs of the gates on that wire in
// topological order. This is the routing structure the asynchronous
// engine compiles from.
func (n *Network) WireGates() [][]int {
	out := make([][]int, n.WireCount)
	for i := range n.Gates {
		for _, w := range n.Gates[i].Wires {
			out[w] = append(out[w], i)
		}
	}
	return out
}

// String summarizes the network.
func (n *Network) String() string {
	name := n.Name
	if name == "" {
		name = "network"
	}
	return fmt.Sprintf("%s{width=%d depth=%d gates=%d maxGate=%d}",
		name, n.WireCount, n.depth, n.Size(), n.MaxGateWidth())
}

// Builder incrementally assembles a Network. The zero Builder is not
// usable; call NewBuilder.
type Builder struct {
	width     int
	gates     []Gate
	wireDepth []int
	// wireArena backs the Wires slices of appended gates in large
	// chunks, so a build of g gates costs O(log g) wire allocations
	// instead of g. Exhausted chunks are abandoned, not grown: gates
	// already point into them.
	wireArena []int
	err       error
}

// copyWires stores a private copy of wires in the arena.
func (b *Builder) copyWires(wires []int) []int {
	if cap(b.wireArena)-len(b.wireArena) < len(wires) {
		// Chunks scale with the build: small networks stay small,
		// large ones amortize quickly.
		n := 2 * cap(b.wireArena)
		if min := 2 * b.width; n < min {
			n = min
		}
		if n > 1<<16 {
			n = 1 << 16
		}
		for n < len(wires) {
			n *= 2
		}
		b.wireArena = make([]int, 0, n)
	}
	lo := len(b.wireArena)
	b.wireArena = append(b.wireArena, wires...)
	return b.wireArena[lo:len(b.wireArena):len(b.wireArena)]
}

// NewBuilder returns a Builder for a network of the given width.
func NewBuilder(width int) *Builder {
	if width < 0 {
		panic("network: negative width")
	}
	return &Builder{width: width, wireDepth: make([]int, width)}
}

// Width returns the width the Builder was created with.
func (b *Builder) Width() int { return b.width }

// GateCount returns the number of gates added so far.
func (b *Builder) GateCount() int { return len(b.gates) }

// Depth returns the current critical-path depth.
func (b *Builder) Depth() int {
	d := 0
	for _, wd := range b.wireDepth {
		if wd > d {
			d = wd
		}
	}
	return d
}

// WireDepth returns the number of gates currently on wire w's path.
func (b *Builder) WireDepth(w int) int { return b.wireDepth[w] }

// Add places a gate on the given wires at the earliest legal layer.
// Gates of width 0 or 1 are no-ops and are silently skipped (a
// one-wire "balancer" routes every token straight through). Add panics
// on out-of-range or duplicate wires: those are construction bugs.
func (b *Builder) Add(wires []int, label string) {
	if len(wires) < 2 {
		return
	}
	// Duplicate check: a linear scan beats a map allocation for the
	// narrow gates that dominate every construction.
	if len(wires) <= 16 {
		for i := 1; i < len(wires); i++ {
			for j := 0; j < i; j++ {
				if wires[i] == wires[j] {
					panic(fmt.Sprintf("network: gate %q touches wire %d twice", label, wires[i]))
				}
			}
		}
	} else {
		seen := make(map[int]bool, len(wires))
		for _, w := range wires {
			if seen[w] {
				panic(fmt.Sprintf("network: gate %q touches wire %d twice", label, w))
			}
			seen[w] = true
		}
	}
	b.AddValidated(wires, label)
}

// AddValidated is Add without the duplicate-wire check: for callers
// replaying gate lists that the builder already validated once (package
// core's construction templates). Out-of-range wires still panic.
func (b *Builder) AddValidated(wires []int, label string) {
	if len(wires) < 2 {
		return
	}
	layer := 0
	for _, w := range wires {
		if w < 0 || w >= b.width {
			panic(fmt.Sprintf("network: gate %q touches wire %d outside width %d", label, w, b.width))
		}
		if b.wireDepth[w] > layer {
			layer = b.wireDepth[w]
		}
	}
	layer++
	g := Gate{ID: len(b.gates), Wires: b.copyWires(wires), Layer: layer, Label: label}
	for _, w := range wires {
		b.wireDepth[w] = layer
	}
	// Grow by doubling: the runtime's 1.25x policy for large slices
	// re-copies this hot, pointer-bearing slice far too often.
	if len(b.gates) == cap(b.gates) {
		ng := make([]Gate, len(b.gates), 2*cap(b.gates)+16)
		copy(ng, b.gates)
		b.gates = ng
	}
	b.gates = append(b.gates, g)
}

// GateAt returns the wires and label of gate i (0 <= i < GateCount).
// The returned slice is the builder's own; callers must not mutate it.
func (b *Builder) GateAt(i int) ([]int, string) {
	g := &b.gates[i]
	return g.Wires, g.Label
}

// Barrier raises every listed wire to the current maximum depth among
// them without adding a gate. It is occasionally useful to force layer
// alignment when reproducing a paper's layer-exact depth accounting;
// the constructions in this repository do not need it for correctness.
func (b *Builder) Barrier(wires []int) {
	d := 0
	for _, w := range wires {
		if b.wireDepth[w] > d {
			d = b.wireDepth[w]
		}
	}
	for _, w := range wires {
		b.wireDepth[w] = d
	}
}

// Build finalizes the network. outputOrder gives the wire permutation
// in which the output sequence is read; pass nil for the identity.
// The Builder remains usable afterwards (Build copies).
func (b *Builder) Build(name string, outputOrder []int) *Network {
	if outputOrder == nil {
		outputOrder = make([]int, b.width)
		for i := range outputOrder {
			outputOrder[i] = i
		}
	} else {
		outputOrder = append([]int(nil), outputOrder...)
	}
	if len(outputOrder) != b.width {
		panic(fmt.Sprintf("network: output order has %d entries for width %d", len(outputOrder), b.width))
	}
	n := &Network{
		Name:        name,
		WireCount:   b.width,
		Gates:       append([]Gate(nil), b.gates...),
		OutputOrder: outputOrder,
		depth:       b.Depth(),
	}
	return n
}

// Identity returns the identity wire ordering 0..w-1.
func Identity(w int) []int {
	out := make([]int, w)
	for i := range out {
		out[i] = i
	}
	return out
}

// DOT renders the network in Graphviz dot format, one subgraph rank per
// layer, for eyeballing small constructions against the paper's figures.
func (n *Network) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph ")
	fmt.Fprintf(&sb, "%q", sanitizeName(n.Name))
	sb.WriteString(" {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n")
	// Wire entry nodes.
	for w := 0; w < n.WireCount; w++ {
		fmt.Fprintf(&sb, "  in%d [label=\"x%d\", shape=plaintext];\n", w, w)
	}
	// Track the most recent emitter per wire.
	last := make([]string, n.WireCount)
	for w := range last {
		last[w] = fmt.Sprintf("in%d", w)
	}
	byLayer := n.Layers()
	for li, ids := range byLayer {
		fmt.Fprintf(&sb, "  { rank=same;")
		for _, id := range ids {
			fmt.Fprintf(&sb, " g%d;", id)
		}
		sb.WriteString(" }\n")
		for _, id := range ids {
			g := &n.Gates[id]
			label := fmt.Sprintf("b%d", g.Width())
			if g.Label != "" {
				label = fmt.Sprintf("%s\\n%s", label, g.Label)
			}
			fmt.Fprintf(&sb, "  g%d [label=\"%s\"];\n", id, label)
			for _, w := range g.Wires {
				fmt.Fprintf(&sb, "  %s -> g%d [label=\"w%d\", fontsize=7];\n", last[w], id, w)
				last[w] = fmt.Sprintf("g%d", id)
			}
		}
		_ = li
	}
	for pos, w := range n.OutputOrder {
		fmt.Fprintf(&sb, "  out%d [label=\"y%d\", shape=plaintext];\n", pos, pos)
		fmt.Fprintf(&sb, "  %s -> out%d [label=\"w%d\", fontsize=7];\n", last[w], pos, w)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sanitizeName(s string) string {
	if s == "" {
		return "network"
	}
	return s
}

// ASCII renders a compact textual diagram: one line per layer listing
// the gates as wire groups. Useful in CLI output and golden tests.
func (n *Network) ASCII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", n.String())
	for li, ids := range n.Layers() {
		fmt.Fprintf(&sb, "layer %2d:", li+1)
		sorted := append([]int(nil), ids...)
		sort.Slice(sorted, func(a, b int) bool {
			return n.Gates[sorted[a]].Wires[0] < n.Gates[sorted[b]].Wires[0]
		})
		for _, id := range sorted {
			g := &n.Gates[id]
			sb.WriteString(" [")
			for i, w := range g.Wires {
				if i > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d", w)
			}
			sb.WriteString("]")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
