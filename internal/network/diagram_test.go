package network

import (
	"strings"
	"testing"
)

func TestDiagramBasics(t *testing.T) {
	b := NewBuilder(3)
	b.Add([]int{0, 1}, "")
	b.Add([]int{1, 2}, "")
	n := b.Build("d", nil)
	d := n.Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	// Header + 3 wire rows + 2 spacer rows.
	if len(lines) != 6 {
		t.Fatalf("line count %d:\n%s", len(lines), d)
	}
	if !strings.HasPrefix(lines[1], "x0") || !strings.Contains(lines[1], "y0") {
		t.Errorf("wire row malformed: %q", lines[1])
	}
	if strings.Count(d, "●") != 4 {
		t.Errorf("want 4 gate dots:\n%s", d)
	}
	if !strings.Contains(d, "│") {
		t.Errorf("no vertical connector:\n%s", d)
	}
}

func TestDiagramOverlappingGatesSameLayer(t *testing.T) {
	// Two disjoint gates in one layer whose spans overlap: (0,2) and
	// (1,3). They must land in different drawing columns, and the
	// spanning connector of the first crosses wire 1 with a cross glyph.
	b := NewBuilder(4)
	b.Add([]int{0, 2}, "")
	b.Add([]int{1, 3}, "")
	n := b.Build("overlap", nil)
	d := n.Diagram()
	if strings.Count(d, "●") != 4 {
		t.Errorf("want 4 dots:\n%s", d)
	}
	if !strings.Contains(d, "┼") {
		t.Errorf("expected a wire-crossing glyph:\n%s", d)
	}
	// Same column would put two dots on one wire row position; rows for
	// wires 0 and 1 must have their dots at different columns.
	lines := strings.Split(d, "\n")
	col0 := strings.IndexRune(lines[1], '●')
	col1 := strings.IndexRune(lines[3], '●')
	if col0 == col1 {
		t.Errorf("overlapping gates share a drawing column:\n%s", d)
	}
}

func TestDiagramOutputOrderLabels(t *testing.T) {
	b := NewBuilder(2)
	b.Add([]int{0, 1}, "")
	n := b.Build("rev", []int{1, 0})
	d := n.Diagram()
	if !strings.Contains(d, "y1") || !strings.Contains(d, "y0") {
		t.Errorf("output labels missing:\n%s", d)
	}
	// Wire 0 carries output position 1 under the reversed order.
	for _, line := range strings.Split(d, "\n") {
		if strings.HasPrefix(line, "x0") && !strings.HasSuffix(line, "y1") {
			t.Errorf("wire 0 should be labeled y1: %q", line)
		}
	}
}

func TestDiagramEmpty(t *testing.T) {
	if d := NewBuilder(0).Build("", nil).Diagram(); !strings.Contains(d, "empty") {
		t.Errorf("empty diagram: %q", d)
	}
	// Gate-free non-empty network: straight wires.
	d := NewBuilder(2).Build("wires", nil).Diagram()
	if strings.Count(d, "●") != 0 {
		t.Errorf("gate-free network has dots:\n%s", d)
	}
}
