package network

import (
	"encoding/json"
	"fmt"
)

// jsonNetwork is the serialized form of a Network. Layers are not
// serialized; they are recomputed on load so that a hand-edited file
// cannot carry inconsistent layer assignments.
type jsonNetwork struct {
	Name        string     `json:"name"`
	Width       int        `json:"width"`
	Gates       []jsonGate `json:"gates"`
	OutputOrder []int      `json:"output_order,omitempty"`
}

type jsonGate struct {
	Wires []int  `json:"wires"`
	Label string `json:"label,omitempty"`
}

// MarshalJSON encodes the network structure.
func (n *Network) MarshalJSON() ([]byte, error) {
	jn := jsonNetwork{Name: n.Name, Width: n.WireCount, OutputOrder: n.OutputOrder}
	jn.Gates = make([]jsonGate, len(n.Gates))
	for i := range n.Gates {
		jn.Gates[i] = jsonGate{Wires: n.Gates[i].Wires, Label: n.Gates[i].Label}
	}
	return json.Marshal(jn)
}

// UnmarshalJSON decodes a network, re-deriving gate layers and depth,
// and validates the result.
func (n *Network) UnmarshalJSON(data []byte) error {
	var jn jsonNetwork
	if err := json.Unmarshal(data, &jn); err != nil {
		return err
	}
	if jn.Width < 0 {
		return fmt.Errorf("network: negative width %d", jn.Width)
	}
	b := NewBuilder(jn.Width)
	for i, g := range jn.Gates {
		if len(g.Wires) < 2 {
			return fmt.Errorf("network: gate %d has width %d < 2", i, len(g.Wires))
		}
		for _, w := range g.Wires {
			if w < 0 || w >= jn.Width {
				return fmt.Errorf("network: gate %d wire %d out of range", i, w)
			}
		}
		seen := make(map[int]bool, len(g.Wires))
		for _, w := range g.Wires {
			if seen[w] {
				return fmt.Errorf("network: gate %d repeats wire %d", i, w)
			}
			seen[w] = true
		}
		b.Add(g.Wires, g.Label)
	}
	var order []int
	if jn.OutputOrder != nil {
		if len(jn.OutputOrder) != jn.Width {
			return fmt.Errorf("network: output order has %d entries for width %d", len(jn.OutputOrder), jn.Width)
		}
		order = jn.OutputOrder
	}
	built := b.Build(jn.Name, order)
	if err := built.Validate(); err != nil {
		return err
	}
	*n = *built
	return nil
}
