package network

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func buildSample() *Network {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "a")
	b.Add([]int{2, 3}, "b")
	b.Add([]int{1, 2}, "c")
	return b.Build("sample", []int{3, 2, 1, 0})
}

func TestJSONRoundTrip(t *testing.T) {
	n := buildSample()
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != n.Name || back.WireCount != n.WireCount || back.Depth() != n.Depth() {
		t.Errorf("round trip lost metadata: %+v", back)
	}
	if len(back.Gates) != len(n.Gates) {
		t.Fatalf("gate count %d, want %d", len(back.Gates), len(n.Gates))
	}
	for i := range n.Gates {
		if !reflect.DeepEqual(back.Gates[i].Wires, n.Gates[i].Wires) {
			t.Errorf("gate %d wires %v, want %v", i, back.Gates[i].Wires, n.Gates[i].Wires)
		}
		if back.Gates[i].Layer != n.Gates[i].Layer {
			t.Errorf("gate %d layer %d, want %d", i, back.Gates[i].Layer, n.Gates[i].Layer)
		}
	}
	if !reflect.DeepEqual(back.OutputOrder, n.OutputOrder) {
		t.Errorf("output order %v, want %v", back.OutputOrder, n.OutputOrder)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped network invalid: %v", err)
	}
}

func TestJSONLayersRecomputed(t *testing.T) {
	// Layers are not serialized; the decoder must recompute them even
	// if the source had none.
	src := `{"name":"x","width":3,"gates":[{"wires":[0,1]},{"wires":[1,2]}]}`
	var n Network
	if err := json.Unmarshal([]byte(src), &n); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if n.Gates[0].Layer != 1 || n.Gates[1].Layer != 2 || n.Depth() != 2 {
		t.Errorf("layers not recomputed: %+v depth=%d", n.Gates, n.Depth())
	}
	if len(n.OutputOrder) != 3 {
		t.Errorf("missing output order should default to identity, got %v", n.OutputOrder)
	}
}

func TestJSONRejectsBadNetworks(t *testing.T) {
	bad := []string{
		`{"width":-1}`,
		`{"width":2,"gates":[{"wires":[0]}]}`,   // unary gate
		`{"width":2,"gates":[{"wires":[0,5]}]}`, // out of range
		`{"width":2,"gates":[{"wires":[1,1]}]}`, // duplicate wire
		`{"width":2,"output_order":[0]}`,        // short order
		`{"width":2,"output_order":[0,0]}`,      // not a permutation
		`not json`,
	}
	for _, src := range bad {
		var n Network
		if err := json.Unmarshal([]byte(src), &n); err == nil {
			t.Errorf("accepted bad network %s", src)
		}
	}
}

func TestJSONStable(t *testing.T) {
	n := buildSample()
	d1, _ := json.Marshal(n)
	d2, _ := json.Marshal(n)
	if string(d1) != string(d2) {
		t.Error("marshaling is not deterministic")
	}
	if !strings.Contains(string(d1), `"name":"sample"`) {
		t.Errorf("payload missing name: %s", d1)
	}
}
