package network

import (
	"reflect"
	"strings"
	"testing"
)

func TestFormatTextRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1, 2}, "") // a wide gate exercises the extension
	n := b.Build("t", []int{3, 2, 1, 0})

	text := n.FormatText()
	back, err := ParseText("t", 4, text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if back.Size() != n.Size() || back.Depth() != n.Depth() {
		t.Errorf("round trip: %d gates depth %d, want %d and %d",
			back.Size(), back.Depth(), n.Size(), n.Depth())
	}
	if !reflect.DeepEqual(back.OutputOrder, n.OutputOrder) {
		t.Errorf("output order %v, want %v", back.OutputOrder, n.OutputOrder)
	}
	for i := range n.Gates {
		if !reflect.DeepEqual(back.Gates[i].Wires, n.Gates[i].Wires) {
			t.Errorf("gate %d wires %v, want %v", i, back.Gates[i].Wires, n.Gates[i].Wires)
		}
	}
}

func TestFormatTextIdentityOrderOmitted(t *testing.T) {
	b := NewBuilder(2)
	b.Add([]int{0, 1}, "")
	n := b.Build("x", nil)
	if strings.Contains(n.FormatText(), "out:") {
		t.Error("identity order should not be emitted")
	}
}

func TestParseTextClassicNotation(t *testing.T) {
	// The 4-wire bitonic sorter in conventional notation.
	src := `
# a classic
0:1 2:3
0:3 1:2
0:1 2:3
`
	n, err := ParseText("classic", 4, src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 6 || n.Depth() != 3 {
		t.Errorf("parsed %d gates depth %d", n.Size(), n.Depth())
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"0",          // lone wire
		"0:x",        // not a number
		"0:9",        // out of range
		"1:1",        // repeated wire
		"# out: 0",   // short output order (width 2)
		"# out: 0 q", // bad order entry
	}
	for _, src := range bad {
		if _, err := ParseText("bad", 2, src); err == nil {
			t.Errorf("ParseText accepted %q", src)
		}
	}
}

func TestParseTextLayerSplitIrrelevant(t *testing.T) {
	// The same gates on one line or many lines behave identically.
	a, err := ParseText("a", 4, "0:1 2:3\n0:2 1:3\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText("b", 4, "0:1\n2:3\n0:2\n1:3\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.Depth() != b.Depth() || a.Size() != b.Size() {
		t.Errorf("layout-sensitive parse: %v vs %v", a, b)
	}
}
