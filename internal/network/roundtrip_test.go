package network

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

// randomNetwork builds a deterministic pseudo-random network from a
// seed: a handful of gates of widths 2-4 over 6 wires plus a seeded
// output permutation.
func randomNetwork(seed uint32) *Network {
	const w = 6
	b := NewBuilder(w)
	x := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	gates := 3 + next(8)
	for g := 0; g < gates; g++ {
		width := 2 + next(3)
		perm := make([]int, w)
		for i := range perm {
			perm[i] = i
		}
		for i := w - 1; i > 0; i-- {
			j := next(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		b.Add(perm[:width], "")
	}
	order := make([]int, w)
	for i := range order {
		order[i] = i
	}
	for i := w - 1; i > 0; i-- {
		j := next(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	return b.Build("rand", order)
}

// TestFormatsPreserveStructure: for random networks, both the JSON and
// the text serialization round-trip to a structurally identical
// network (same gates, layers, output order).
func TestFormatsPreserveStructure(t *testing.T) {
	f := func(seed uint32) bool {
		n := randomNetwork(seed)

		data, err := json.Marshal(n)
		if err != nil {
			return false
		}
		var viaJSON Network
		if err := json.Unmarshal(data, &viaJSON); err != nil {
			return false
		}

		viaText, err := ParseText("rand", n.Width(), n.FormatText())
		if err != nil {
			return false
		}

		for _, back := range []*Network{&viaJSON, viaText} {
			if back.Size() != n.Size() || back.Depth() != n.Depth() || back.Width() != n.Width() {
				return false
			}
			for i := range n.OutputOrder {
				if back.OutputOrder[i] != n.OutputOrder[i] {
					return false
				}
			}
			if back.Validate() != nil {
				return false
			}
		}
		// Text round trip preserves gate wiring exactly (layer grouping
		// sorts gates by first wire, so compare as multisets of wire
		// lists).
		want := map[string]int{}
		for i := range n.Gates {
			key := ""
			for _, wv := range n.Gates[i].Wires {
				key += string(rune('a' + wv))
			}
			want[key]++
		}
		for i := range viaText.Gates {
			key := ""
			for _, wv := range viaText.Gates[i].Wires {
				key += string(rune('a' + wv))
			}
			want[key]--
		}
		for _, v := range want {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
