package network

import (
	"reflect"
	"testing"
)

func gate2(b *Builder, x, y int) { b.Add([]int{x, y}, "") }

func TestConcatWidthMismatch(t *testing.T) {
	a := NewBuilder(2).Build("a", nil)
	c := NewBuilder(3).Build("c", nil)
	if _, err := Concat("x", a, c); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := Concat("x"); err == nil {
		t.Error("empty concat accepted")
	}
}

func TestConcatAppendsGates(t *testing.T) {
	b1 := NewBuilder(3)
	gate2(b1, 0, 1)
	n1 := b1.Build("n1", nil)
	b2 := NewBuilder(3)
	gate2(b2, 1, 2)
	n2 := b2.Build("n2", nil)
	cat, err := Concat("cat", n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Size() != 2 || cat.Depth() != 2 {
		t.Errorf("cat: %d gates depth %d", cat.Size(), cat.Depth())
	}
	if err := cat.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConcatHonorsOutputOrder(t *testing.T) {
	// Stage one is a pure permutation (reverse); stage two gates "wires
	// 0,1" which after the permutation are physical wires 2,1.
	perm := NewBuilder(3).Build("rev", []int{2, 1, 0})
	b2 := NewBuilder(3)
	gate2(b2, 0, 1)
	n2 := b2.Build("g01", nil)
	cat, err := Concat("cat", perm, n2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cat.Gates[0].Wires, []int{2, 1}) {
		t.Errorf("gate wires %v, want [2 1]", cat.Gates[0].Wires)
	}
	// Final output order is the composition of both permutations.
	if !reflect.DeepEqual(cat.OutputOrder, []int{2, 1, 0}) {
		t.Errorf("output order %v", cat.OutputOrder)
	}
}

func TestConcatOfPermutationsComposes(t *testing.T) {
	p1 := NewBuilder(4).Build("p1", []int{1, 2, 3, 0})
	p2 := NewBuilder(4).Build("p2", []int{3, 2, 1, 0})
	cat, err := Concat("pp", p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	// position i <- p1.Out[p2.Out[i]]
	want := []int{0, 3, 2, 1}
	if !reflect.DeepEqual(cat.OutputOrder, want) {
		t.Errorf("composed order %v, want %v", cat.OutputOrder, want)
	}
}
