package network

import (
	"fmt"
	"strings"
)

// Diagram renders the network in the style of the paper's figures:
// one horizontal line per wire, gates drawn as vertical connectors
// with a dot on each wire they touch, one column per layer (layers
// with wire-overlapping gates get extra columns).
//
//	x0 ──●──────●──   y0
//	     │      │
//	x1 ──●───●──┼──   ...
//	         │  │
//	x2 ──────●──●──
//
// Intended for small networks (CLI inspection, documentation); width
// grows linearly with gate count in the worst case.
func (n *Network) Diagram() string {
	if n.WireCount == 0 {
		return "(empty network)\n"
	}
	// Assign each gate a drawing column: within a layer, gates whose
	// wire spans overlap get distinct columns.
	type span struct{ lo, hi int }
	gateCol := make([]int, len(n.Gates))
	nextCol := 0
	for _, layerIDs := range n.Layers() {
		used := [][]span{} // per column-offset, occupied spans
		maxOffset := 0
		for _, id := range layerIDs {
			g := &n.Gates[id]
			lo, hi := g.Wires[0], g.Wires[0]
			for _, w := range g.Wires {
				if w < lo {
					lo = w
				}
				if w > hi {
					hi = w
				}
			}
			off := 0
			for {
				if off >= len(used) {
					used = append(used, nil)
				}
				clash := false
				for _, s := range used[off] {
					if lo <= s.hi && s.lo <= hi {
						clash = true
						break
					}
				}
				if !clash {
					used[off] = append(used[off], span{lo, hi})
					break
				}
				off++
			}
			gateCol[id] = nextCol + off
			if off > maxOffset {
				maxOffset = off
			}
		}
		nextCol += maxOffset + 1
	}
	cols := nextCol

	// Grid: each wire occupies row 2*w; row 2*w+1 is the inter-wire
	// space for vertical connector segments. Each drawing column takes
	// 3 characters: "─●─" / " │ ".
	rows := 2*n.WireCount - 1
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, 3*cols)
		for c := range grid[r] {
			if r%2 == 0 {
				grid[r][c] = '─'
			} else {
				grid[r][c] = ' '
			}
		}
	}
	for id := range n.Gates {
		g := &n.Gates[id]
		c := 3*gateCol[id] + 1
		lo, hi := g.Wires[0], g.Wires[0]
		for _, w := range g.Wires {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		for r := 2 * lo; r <= 2*hi; r++ {
			if r%2 == 1 {
				grid[r][c] = '│'
			} else {
				grid[r][c] = '┼' // crossing wire by default
			}
		}
		for _, w := range g.Wires {
			grid[2*w][c] = '●'
		}
	}

	// Output positions per wire.
	outPos := make([]int, n.WireCount)
	for pos, w := range n.OutputOrder {
		outPos[w] = pos
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", n.String())
	for w := 0; w < n.WireCount; w++ {
		fmt.Fprintf(&sb, "x%-3d %s  y%d\n", w, string(grid[2*w]), outPos[w])
		if w < n.WireCount-1 {
			fmt.Fprintf(&sb, "     %s\n", string(grid[2*w+1]))
		}
	}
	return sb.String()
}
