package network

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderLayering(t *testing.T) {
	b := NewBuilder(6)
	b.Add([]int{0, 1}, "a")
	b.Add([]int{2, 3}, "b")
	b.Add([]int{1, 2}, "c") // depends on both -> layer 2
	b.Add([]int{4, 5}, "d") // independent -> layer 1
	n := b.Build("test", nil)
	if n.Depth() != 2 {
		t.Errorf("depth = %d, want 2", n.Depth())
	}
	wantLayers := []int{1, 1, 2, 1}
	for i, g := range n.Gates {
		if g.Layer != wantLayers[i] {
			t.Errorf("gate %d layer = %d, want %d", i, g.Layer, wantLayers[i])
		}
	}
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderSkipsTrivialGates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(nil, "empty")
	b.Add([]int{1}, "unary")
	if b.GateCount() != 0 {
		t.Errorf("trivial gates were added: %d", b.GateCount())
	}
	b.Add([]int{0, 1, 2}, "real")
	if b.GateCount() != 1 {
		t.Errorf("gate count = %d, want 1", b.GateCount())
	}
}

func TestBuilderPanicsOnBadWires(t *testing.T) {
	for _, wires := range [][]int{{0, 3}, {-1, 0}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", wires)
				}
			}()
			NewBuilder(3).Add(wires, "bad")
		}()
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(2)
	b.Add([]int{0, 1}, "x")
	n1 := b.Build("one", nil)
	b.Add([]int{0, 1}, "y")
	n2 := b.Build("two", nil)
	if n1.Size() != 1 || n2.Size() != 2 {
		t.Errorf("sizes = %d, %d; want 1, 2", n1.Size(), n2.Size())
	}
	if n1.Depth() != 1 || n2.Depth() != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", n1.Depth(), n2.Depth())
	}
}

func TestBarrier(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "a")
	b.Add([]int{0, 1}, "b") // wires 0,1 now depth 2
	b.Barrier([]int{2, 3, 0})
	b.Add([]int{2, 3}, "c") // pushed past the barrier
	n := b.Build("t", nil)
	if n.Gates[2].Layer != 3 {
		t.Errorf("gate after barrier at layer %d, want 3", n.Gates[2].Layer)
	}
}

func TestWireDepthAndDepth(t *testing.T) {
	b := NewBuilder(3)
	if b.Depth() != 0 {
		t.Errorf("empty depth = %d", b.Depth())
	}
	b.Add([]int{0, 1}, "")
	if b.WireDepth(0) != 1 || b.WireDepth(2) != 0 {
		t.Errorf("wire depths wrong: %d %d", b.WireDepth(0), b.WireDepth(2))
	}
}

func TestNetworkAccessors(t *testing.T) {
	b := NewBuilder(5)
	b.Add([]int{0, 1, 2}, "wide")
	b.Add([]int{3, 4}, "narrow")
	b.Add([]int{0, 3}, "later")
	n := b.Build("acc", nil)
	if n.Width() != 5 || n.Size() != 3 || n.MaxGateWidth() != 3 {
		t.Errorf("accessors: width=%d size=%d max=%d", n.Width(), n.Size(), n.MaxGateWidth())
	}
	h := n.GateWidthHistogram()
	if h[2] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	layers := n.Layers()
	if len(layers) != 2 || len(layers[0]) != 2 || len(layers[1]) != 1 {
		t.Errorf("layers = %v", layers)
	}
	if !strings.Contains(n.String(), "width=5") {
		t.Errorf("String = %q", n.String())
	}
}

func TestWireGatesTopological(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "a")
	b.Add([]int{1, 2}, "b")
	b.Add([]int{0, 2, 3}, "c")
	n := b.Build("wg", nil)
	wg := n.WireGates()
	want := [][]int{{0, 2}, {0, 1}, {1, 2}, {2}}
	for w := range want {
		if len(wg[w]) != len(want[w]) {
			t.Fatalf("wire %d gates = %v, want %v", w, wg[w], want[w])
		}
		for i := range want[w] {
			if wg[w][i] != want[w][i] {
				t.Fatalf("wire %d gates = %v, want %v", w, wg[w], want[w])
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Network {
		b := NewBuilder(3)
		b.Add([]int{0, 1}, "a")
		b.Add([]int{1, 2}, "b")
		return b.Build("v", nil)
	}
	n := mk()
	if err := n.Validate(); err != nil {
		t.Fatalf("fresh network invalid: %v", err)
	}

	n = mk()
	n.Gates[1].Layer = 1 // same layer as a gate sharing wire 1
	if n.Validate() == nil {
		t.Error("layer collision not caught")
	}

	n = mk()
	n.Gates[0].Wires = []int{0, 7}
	if n.Validate() == nil {
		t.Error("out-of-range wire not caught")
	}

	n = mk()
	n.Gates[0].Wires = []int{1, 1}
	if n.Validate() == nil {
		t.Error("duplicate wire not caught")
	}

	n = mk()
	n.OutputOrder = []int{0, 1, 1}
	if n.Validate() == nil {
		t.Error("non-permutation output order not caught")
	}

	n = mk()
	n.OutputOrder = []int{0, 1}
	if n.Validate() == nil {
		t.Error("short output order not caught")
	}

	n = mk()
	n.Gates[0].ID = 5
	if n.Validate() == nil {
		t.Error("bad gate ID not caught")
	}

	n = mk()
	n.depth = 9
	if n.Validate() == nil {
		t.Error("bad recorded depth not caught")
	}

	n = mk()
	n.Gates[0].Wires = []int{0}
	if n.Validate() == nil {
		t.Error("width-1 gate not caught")
	}
}

func TestBuildCustomOutputOrder(t *testing.T) {
	b := NewBuilder(3)
	b.Add([]int{0, 1}, "")
	n := b.Build("o", []int{2, 0, 1})
	if n.OutputOrder[0] != 2 {
		t.Errorf("output order = %v", n.OutputOrder)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short output order should panic at Build")
			}
		}()
		b.Build("bad", []int{0})
	}()
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i, v := range id {
		if v != i {
			t.Fatalf("Identity(4) = %v", id)
		}
	}
	if len(Identity(0)) != 0 {
		t.Error("Identity(0) not empty")
	}
}

func TestDepthEqualsLongestPath(t *testing.T) {
	// Property: for a random layered construction, depth equals the
	// max gate layer and Validate holds.
	f := func(seedRaw uint16) bool {
		seed := int(seedRaw)
		b := NewBuilder(8)
		// Deterministic pseudo-random gate pattern from the seed.
		x := seed*2654435761 + 1
		for g := 0; g < 12; g++ {
			x = x*1103515245 + 12345
			a := (x >> 4) & 7
			x = x*1103515245 + 12345
			c := (x >> 4) & 7
			if a == c {
				c = (c + 1) & 7
			}
			b.Add([]int{a, c}, "r")
		}
		n := b.Build("rand", nil)
		if n.Validate() != nil {
			return false
		}
		max := 0
		for _, g := range n.Gates {
			if g.Layer > max {
				max = g.Layer
			}
		}
		return max == n.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedDepth(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]int{0, 1, 2}, "") // width 3
	b.Add([]int{0, 3}, "")    // width 2, after the first on wire 0
	b.Add([]int{1, 2}, "")    // width 2, after the first on wires 1,2
	n := b.Build("wd", nil)
	unit := func(int) int { return 1 }
	if got := n.WeightedDepth(unit); got != n.Depth() {
		t.Errorf("unit-cost weighted depth %d != depth %d", got, n.Depth())
	}
	linear := func(p int) int { return p }
	// Critical path: width-3 gate (3) then width-2 gate (2) = 5.
	if got := n.WeightedDepth(linear); got != 5 {
		t.Errorf("linear weighted depth %d, want 5", got)
	}
	if got := NewBuilder(2).Build("", nil).WeightedDepth(linear); got != 0 {
		t.Errorf("empty network weighted depth %d", got)
	}
}

func TestDOTAndASCII(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]int{0, 1}, "g1")
	b.Add([]int{2, 3}, "g2")
	b.Add([]int{1, 2}, "g3")
	n := b.Build("diagram", nil)
	dot := n.DOT()
	for _, frag := range []string{"digraph", "g0", "g2", "in0", "out3", "rank=same"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
	ascii := n.ASCII()
	if !strings.Contains(ascii, "layer  1:") || !strings.Contains(ascii, "layer  2:") {
		t.Errorf("ASCII missing layers:\n%s", ascii)
	}
	empty := NewBuilder(0).Build("", nil)
	if !strings.Contains(empty.DOT(), "digraph") {
		t.Error("empty DOT should still render")
	}
}
