package network

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatText renders the network in the compact layer notation used in
// the sorting-network literature: one line per layer, gates as
// colon-joined wire lists separated by spaces. 2-comparators render as
// the conventional "a:b"; wider balancers extend the notation
// naturally ("a:b:c").
//
//	0:1 2:3
//	0:3 1:2
//	0:1 2:3
//
// Comment lines (#) and blank lines are ignored by ParseText. The
// output order is appended as a trailing "# out: ..." comment when it
// is not the identity.
func (n *Network) FormatText() string {
	var sb strings.Builder
	for _, ids := range n.Layers() {
		for k, id := range ids {
			if k > 0 {
				sb.WriteByte(' ')
			}
			g := &n.Gates[id]
			for i, w := range g.Wires {
				if i > 0 {
					sb.WriteByte(':')
				}
				sb.WriteString(strconv.Itoa(w))
			}
		}
		sb.WriteByte('\n')
	}
	identity := true
	for i, w := range n.OutputOrder {
		if i != w {
			identity = false
			break
		}
	}
	if !identity {
		sb.WriteString("# out:")
		for _, w := range n.OutputOrder {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(w))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseText parses the layer notation produced by FormatText (or by
// hand, or by external sorting-network tools) into a Network of the
// given width and name. Gates on one line must be wire-disjoint; gate
// layers are re-derived by the builder, so splitting or joining lines
// changes at most the grouping, never the semantics.
func ParseText(name string, width int, src string) (*Network, error) {
	b := NewBuilder(width)
	var outOrder []int
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(rest, "out:") {
				fields := strings.Fields(strings.TrimPrefix(rest, "out:"))
				outOrder = make([]int, 0, len(fields))
				for _, f := range fields {
					v, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("network: line %d: bad output order entry %q", lineNo+1, f)
					}
					outOrder = append(outOrder, v)
				}
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			parts := strings.Split(tok, ":")
			if len(parts) < 2 {
				return nil, fmt.Errorf("network: line %d: gate %q needs at least two wires", lineNo+1, tok)
			}
			wires := make([]int, 0, len(parts))
			seen := map[int]bool{}
			for _, p := range parts {
				v, err := strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("network: line %d: bad wire %q", lineNo+1, p)
				}
				if v < 0 || v >= width {
					return nil, fmt.Errorf("network: line %d: wire %d outside width %d", lineNo+1, v, width)
				}
				if seen[v] {
					return nil, fmt.Errorf("network: line %d: gate %q repeats wire %d", lineNo+1, tok, v)
				}
				seen[v] = true
				wires = append(wires, v)
			}
			b.Add(wires, "")
		}
	}
	if outOrder != nil && len(outOrder) != width {
		return nil, fmt.Errorf("network: output order has %d entries for width %d", len(outOrder), width)
	}
	n := b.Build(name, outOrder)
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
