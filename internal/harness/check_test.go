package harness

import (
	"strings"
	"testing"
)

// seq returns 0..n-1.
func seqVals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// without drops the given values from vals.
func without(vals []int64, drop ...int64) []int64 {
	skip := map[int64]bool{}
	for _, d := range drop {
		skip[d] = true
	}
	var out []int64
	for _, v := range vals {
		if !skip[v] {
			out = append(out, v)
		}
	}
	return out
}

// TestCheckValues drives the value oracle through clean and corrupted
// fixtures: it must accept exactly the quiescent counting contract and
// refute everything else with a specific complaint.
func TestCheckValues(t *testing.T) {
	for _, tc := range []struct {
		name    string
		width   int
		values  []int64
		maxLost int
		wantErr string // "" = must pass
	}{
		{"empty", 4, nil, 0, ""},
		{"perfect", 4, seqVals(16), 0, ""},
		{"perfect ragged", 4, seqVals(13), 0, ""}, // width does not divide N
		{"single value", 4, []int64{0}, 0, ""},
		{"bad width", 0, seqVals(4), 0, "width"},
		{"negative", 4, []int64{0, 1, -3}, 0, "negative"},
		{"duplicate", 4, []int64{0, 1, 1, 2}, 0, "twice"},
		{"gap", 4, without(seqVals(16), 5), 0, "gap bound"},
		{"gap names first missing", 4, without(seqVals(16), 5, 9), 1, "first: 5"},
		{"gap within slack", 4, without(seqVals(16), 5), 1, ""},
		{"many gaps within slack", 4, without(seqVals(16), 2, 7, 11), 3, ""},
		{"more gaps than slack", 4, without(seqVals(16), 2, 7, 11), 2, "gap bound"},
		{"max itself never counts as missing", 4, []int64{0, 1, 2, 3, 4}, 0, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckValues(tc.width, tc.values, tc.maxLost)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckValues = %v, want pass", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckValues = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckRun drives the cross-process oracle through corrupted
// fixtures: transport duplicates, fabricated values, silent value
// loss, and kill-slack accounting.
func TestCheckRun(t *testing.T) {
	// Clean baseline: two workers split 0..9, both report everything.
	clean := func() (map[string][]int64, map[string][]int64) {
		issued := map[string][]int64{
			"w0": {0, 2, 4, 6, 8},
			"w1": {1, 3, 5, 7, 9},
		}
		reported := map[string][]int64{
			"w0": {0, 2, 4, 6, 8},
			"w1": {1, 3, 5, 7, 9},
		}
		return issued, reported
	}

	t.Run("clean", func(t *testing.T) {
		issued, reported := clean()
		if err := CheckRun(2, issued, reported, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("reported but never issued any", func(t *testing.T) {
		issued, reported := clean()
		reported["ghost"] = []int64{99}
		err := CheckRun(2, issued, reported, nil)
		if err == nil || !strings.Contains(err.Error(), "never issued") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("duplicate report", func(t *testing.T) {
		issued, reported := clean()
		reported["w0"] = append(reported["w0"], 0)
		err := CheckRun(2, issued, reported, nil)
		if err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("fabricated value", func(t *testing.T) {
		// w1 reports a value the server issued to w0: a transport-level
		// corruption the per-worker issue log pins down.
		issued, reported := clean()
		reported["w1"] = append(without(reported["w1"], 9), 8)
		err := CheckRun(2, issued, reported, nil)
		if err == nil || !strings.Contains(err.Error(), "never issued") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("silent loss without kill", func(t *testing.T) {
		issued, reported := clean()
		reported["w0"] = without(reported["w0"], 4)
		err := CheckRun(2, issued, reported, nil)
		if err == nil || !strings.Contains(err.Error(), "not killed") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("killed worker may under-report", func(t *testing.T) {
		issued, reported := clean()
		reported["w0"] = without(reported["w0"], 4, 8)
		if err := CheckRun(2, issued, reported, map[string]bool{"w0": true}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("loss beyond kill slack", func(t *testing.T) {
		// w0 is killed (2 values of slack), but w1 also lost one: the
		// reported union is missing more than the kill accounts for.
		issued, reported := clean()
		reported["w0"] = without(reported["w0"], 4, 8)
		issued["w1"] = append(issued["w1"], 11)
		reported["w1"] = append(reported["w1"], 11)
		issued["w0"] = append(issued["w0"], 10)
		err := CheckRun(2, issued, reported, map[string]bool{"w0": true})
		// 4, 8, 10 are now missing from the union with only 3 of slack:
		// still inside the gap bound, so this passes...
		if err != nil {
			t.Fatalf("within slack: %v", err)
		}
		// ...but dropping one more from the non-lost w1 must refute.
		reported["w1"] = without(reported["w1"], 5)
		err = CheckRun(2, issued, reported, map[string]bool{"w0": true})
		if err == nil || !strings.Contains(err.Error(), "not killed") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("corrupt issue log", func(t *testing.T) {
		// The server-side log itself violates the counting contract:
		// no kill slack ever excuses that.
		issued, reported := clean()
		issued["w0"] = without(issued["w0"], 4)
		reported["w0"] = without(reported["w0"], 4)
		err := CheckRun(2, issued, reported, map[string]bool{"w1": true})
		if err == nil || !strings.Contains(err.Error(), "issue log") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestUnionValues pins the helper's flatten-and-sort contract.
func TestUnionValues(t *testing.T) {
	got := UnionValues(map[string][]int64{"b": {3, 1}, "a": {2, 0}})
	want := []int64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("UnionValues = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnionValues = %v, want %v", got, want)
		}
	}
}
