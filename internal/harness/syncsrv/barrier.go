package syncsrv

import (
	"fmt"
	"sync"

	"countnet/internal/counter"
	"countnet/internal/network"
)

// stateBarrier is one named barrier state: an n-party reusable barrier
// whose arrivals each draw a ticket from a counting-network counter,
// spreading arrival contention over the network's balancers — the
// barrier application counting networks were proposed for.
//
// Generation membership, however, is decided by arrival order under
// the lock, NOT by the ticket value. Counting networks are not
// linearizable: a token that enters the network later can exit with a
// smaller value, so under reuse a party re-arriving for generation g+1
// can draw a ticket belonging to generation g. Deciding "last arrival"
// by ticket value then deadlocks — the generation-closing ticket may
// sit forever with a party that never arrives again. The exploration
// test TestTicketGenerationRefuted replays a minimal such schedule.
// The tickets still spread contention, and at quiescence they must be
// exactly 0..arrivals-1 (checked by quiesce; Hub.Quiesce surfaces it
// to the post-run oracle).
type stateBarrier struct {
	n   int64
	ctr *counter.NetworkCounter

	mu        sync.Mutex
	cond      *sync.Cond
	arrivals  int64 // total Await calls that have taken a ticket
	done      int64 // arrivals of the highest fully-released generation
	maxTicket int64 // largest counting-network ticket seen
	closed    bool
}

func newStateBarrier(net *network.Network, n int) *stateBarrier {
	b := &stateBarrier{n: int64(n), ctr: counter.NewNetworkCounter(net, false), maxTicket: -1}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all n parties of the caller's generation have
// arrived and returns the 0-based generation, or an error if the hub
// was closed while waiting.
func (b *stateBarrier) Await() (int64, error) {
	t := b.ctr.Next()
	b.mu.Lock()
	defer b.mu.Unlock()
	gen, boundary := b.arrive(t)
	if boundary == 0 {
		return gen, nil // last arrival: generation released
	}
	for b.done < boundary && !b.closed {
		b.cond.Wait()
	}
	if b.done < boundary {
		return 0, fmt.Errorf("syncsrv: barrier closed with %d of %d arrivals", b.arrivals%b.n, b.n)
	}
	return gen, nil
}

// AwaitHooked is Await with schedule instrumentation for the sched
// harness: the arrival ticket traverses the counting network entering
// on the given wire with yield before every atomic step, and the
// release wait parks in block instead of the condition variable. It
// shares b.mu and the arrival bookkeeping with Await, so it explores
// the shipped release logic, not a model of it.
func (b *stateBarrier) AwaitHooked(wire int, yield func(op string), block func(op string, ready func() bool)) int64 {
	t := b.ctr.NextOnHooked(wire, yield)
	yield("barrier gate")
	b.mu.Lock()
	gen, boundary := b.arrive(t)
	b.mu.Unlock()
	if boundary == 0 {
		return gen
	}
	block("barrier wait", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.done >= boundary
	})
	return gen
}

// arrive records one ticketed arrival under b.mu and returns the
// caller's generation. A zero boundary means the caller completed its
// generation and released it; otherwise the caller must wait for
// b.done to reach the boundary.
func (b *stateBarrier) arrive(t int64) (gen, boundary int64) {
	if t > b.maxTicket {
		b.maxTicket = t
	}
	b.arrivals++
	gen = (b.arrivals - 1) / b.n
	if b.arrivals%b.n == 0 {
		if b.arrivals > b.done {
			b.done = b.arrivals
		}
		b.cond.Broadcast()
		return gen, 0
	}
	return gen, (gen + 1) * b.n
}

// quiesce verifies the barrier's counting-network tickets at rest:
// with every arrival returned, the network must have issued exactly
// 0..arrivals-1 (gap-free quiescence, the paper's counting contract).
func (b *stateBarrier) quiesce() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.maxTicket != b.arrivals-1 {
		return fmt.Errorf("tickets not gap-free at quiescence: %d arrivals but max ticket %d", b.arrivals, b.maxTicket)
	}
	return nil
}

// close releases every waiter with an error; called with the hub lock
// held during Hub.Close.
func (b *stateBarrier) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
