package syncsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server exposes a Hub over HTTP. Every endpoint speaks JSON; blocking
// endpoints (/barrier, /sub) hold the request open until released, so
// workers long-poll instead of spinning.
//
//	POST /register?worker=W          -> {"workers":K} (409 on duplicate)
//	POST /barrier?state=S&n=N        -> blocks; {"generation":G}
//	POST /pub?topic=T    (body)      -> {"seq":I}
//	GET  /sub?topic=T&after=I&wait=D -> {"entries":[...],"next":J}
//	PUT  /kv?key=K       (body)      -> 204
//	GET  /kv?key=K                   -> value (404 when absent)
//	POST /draw?worker=W&n=K          -> {"values":[...]}
//	GET  /draws                      -> {"width":W,"issued":{...}}
//	GET  /healthz                    -> ok
type Server struct {
	hub  *Hub
	http *http.Server
	lis  net.Listener
}

// maxSubWait caps a /sub long-poll so an abandoned watcher cannot pin
// its handler goroutine past the run.
const maxSubWait = 30 * time.Second

// NewServer wraps the hub. Call Start to begin serving.
func NewServer(hub *Hub) *Server {
	s := &Server{hub: hub}
	mux := http.NewServeMux()
	mux.HandleFunc("/register", s.handleRegister)
	mux.HandleFunc("/barrier", s.handleBarrier)
	mux.HandleFunc("/pub", s.handlePub)
	mux.HandleFunc("/sub", s.handleSub)
	mux.HandleFunc("/kv", s.handleKV)
	mux.HandleFunc("/draw", s.handleDraw)
	mux.HandleFunc("/draws", s.handleDraws)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: mux}
	return s
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	go s.http.Serve(lis) //nolint:errcheck // always http.ErrServerClosed after Shutdown
	return nil
}

// Addr returns the listening address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the base URL clients should use.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown closes the hub (releasing blocked barrier and subscribe
// handlers) and drains the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.hub.Close()
	return s.http.Shutdown(ctx)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	n, err := s.hub.Register(r.URL.Query().Get("worker"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]int{"workers": n})
}

func (s *Server) handleBarrier(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	n, err := strconv.Atoi(q.Get("n"))
	if state == "" || err != nil {
		http.Error(w, "syncsrv: barrier needs state and integer n", http.StatusBadRequest)
		return
	}
	gen, err := s.hub.Barrier(state, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]int64{"generation": gen})
}

func (s *Server) handlePub(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	if topic == "" {
		http.Error(w, "syncsrv: pub needs topic", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]int{"seq": s.hub.Publish(topic, string(body))})
}

func (s *Server) handleSub(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	topic := q.Get("topic")
	if topic == "" {
		http.Error(w, "syncsrv: sub needs topic", http.StatusBadRequest)
		return
	}
	after, _ := strconv.Atoi(q.Get("after"))
	wait := time.Duration(0)
	if d := q.Get("wait"); d != "" {
		var err error
		if wait, err = time.ParseDuration(d); err != nil {
			http.Error(w, "syncsrv: bad wait duration", http.StatusBadRequest)
			return
		}
	}
	if wait > maxSubWait {
		wait = maxSubWait
	}
	entries, next := s.hub.Subscribe(topic, after, wait)
	writeJSON(w, map[string]any{"entries": entries, "next": next})
}

func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "syncsrv: kv needs key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.hub.Put(key, string(body))
		w.WriteHeader(http.StatusNoContent)
	default:
		v, ok := s.hub.Get(key)
		if !ok {
			http.Error(w, "syncsrv: no such key", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, v)
	}
}

func (s *Server) handleDraw(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n, err := strconv.Atoi(q.Get("n"))
	if err != nil {
		http.Error(w, "syncsrv: draw needs integer n", http.StatusBadRequest)
		return
	}
	vals, err := s.hub.Draw(q.Get("worker"), n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string][]int64{"values": vals})
}

func (s *Server) handleDraws(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"width": s.hub.Width(), "issued": s.hub.IssueLog()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best effort to a dead client
}
