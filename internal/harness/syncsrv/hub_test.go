package syncsrv

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"countnet/internal/core"
	"countnet/internal/network"
)

func testNet(t *testing.T) *network.Network {
	t.Helper()
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRegisterDuplicate: worker identities scope the issue log, so a
// second registration under the same id must be rejected — including
// when the two registrations race.
func TestRegisterDuplicate(t *testing.T) {
	h := NewHub(testNet(t))
	defer h.Close()
	if _, err := h.Register("w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("w0"); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: err = %v, want already-registered", err)
	}

	const racers = 16
	errs := make(chan error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := h.Register("contested")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok != 1 {
		t.Fatalf("%d of %d racing registrations of one id succeeded, want exactly 1", ok, racers)
	}
	if _, err := h.Register(""); err == nil {
		t.Fatal("empty worker id accepted")
	}
}

// TestBarrierConcurrentArrivals: n parties loop through several
// generations of one barrier state concurrently; every party must
// observe generations 0,1,2,... in order. The race lane (-race) runs
// this against the real ticket counter and release broadcast.
func TestBarrierConcurrentArrivals(t *testing.T) {
	const parties, gens = 8, 5
	h := NewHub(testNet(t))
	defer h.Close()

	got := make([][]int64, parties)
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				gen, err := h.Barrier("phase", parties)
				if err != nil {
					t.Errorf("party %d gen %d: %v", i, g, err)
					return
				}
				got[i] = append(got[i], gen)
			}
		}()
	}
	wg.Wait()
	for i, gs := range got {
		for g, gen := range gs {
			if gen != int64(g) {
				t.Fatalf("party %d arrival %d returned generation %d, want %d (all: %v)", i, g, gen, g, gs)
			}
		}
	}
}

// TestBarrierPartyMismatch: the first arrival fixes a state's party
// count; disagreeing arrivals are configuration bugs, not deadlocks.
func TestBarrierPartyMismatch(t *testing.T) {
	h := NewHub(testNet(t))
	defer h.Close()
	done := make(chan error, 1)
	go func() {
		_, err := h.Barrier("s", 2)
		done <- err
	}()
	for { // wait for the first arrival to create the state
		h.mu.Lock()
		created := len(h.barriers) > 0
		h.mu.Unlock()
		if created {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := h.Barrier("s", 3); err == nil || !strings.Contains(err.Error(), "parties") {
		t.Fatalf("mismatched party count: err = %v", err)
	}
	if _, err := h.Barrier("s", 0); err == nil {
		t.Fatal("0-party barrier accepted")
	}
	if _, err := h.Barrier("s", 2); err != nil { // completes the pair
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCloseReleasesWaiters: a torn-down hub must not strand blocked
// barrier arrivals or subscribe long-polls.
func TestCloseReleasesWaiters(t *testing.T) {
	h := NewHub(testNet(t))
	barErr := make(chan error, 1)
	go func() {
		_, err := h.Barrier("never", 2)
		barErr <- err
	}()
	subDone := make(chan struct{})
	go func() {
		h.Subscribe("quiet", 0, time.Hour)
		close(subDone)
	}()
	time.Sleep(10 * time.Millisecond) // let both block
	h.Close()
	select {
	case err := <-barErr:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("barrier waiter after close: err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier waiter not released by Close")
	}
	select {
	case <-subDone:
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe long-poll not released by Close")
	}
	if _, err := h.Barrier("x", 1); err == nil {
		t.Fatal("barrier on closed hub accepted")
	}
	if _, err := h.Register("late"); err == nil {
		t.Fatal("registration on closed hub accepted")
	}
}

// TestSubscribeLateJoiner: a watcher that joins after publishes must
// still see the full history (after=0), and a blocked watcher must
// wake on the next publish.
func TestSubscribeLateJoiner(t *testing.T) {
	h := NewHub(testNet(t))
	defer h.Close()
	for _, v := range []string{"a", "b", "c"} {
		h.Publish("events", v)
	}

	entries, next := h.Subscribe("events", 0, time.Second)
	if len(entries) != 3 || entries[0] != "a" || entries[2] != "c" || next != 3 {
		t.Fatalf("late joiner saw %v (next %d), want full history [a b c] next 3", entries, next)
	}

	// Nothing new yet: a bounded wait returns empty at its deadline.
	entries, next = h.Subscribe("events", next, 20*time.Millisecond)
	if len(entries) != 0 || next != 3 {
		t.Fatalf("timed-out poll returned %v (next %d)", entries, next)
	}

	type result struct {
		entries []string
		next    int
	}
	woken := make(chan result, 1)
	go func() {
		e, n := h.Subscribe("events", 3, 10*time.Second)
		woken <- result{e, n}
	}()
	time.Sleep(10 * time.Millisecond) // let the watcher block
	if seq := h.Publish("events", "d"); seq != 3 {
		t.Fatalf("publish seq = %d, want 3", seq)
	}
	select {
	case r := <-woken:
		if len(r.entries) != 1 || r.entries[0] != "d" || r.next != 4 {
			t.Fatalf("woken watcher got %v (next %d), want [d] next 4", r.entries, r.next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish did not wake the blocked watcher")
	}
}

// TestDrawIssuesDistinctValues: concurrent draws from many workers
// must lease globally distinct, gap-free values, all present in the
// per-worker issue log.
func TestDrawIssuesDistinctValues(t *testing.T) {
	const workers, draws, block = 4, 20, 3
	h := NewHub(testNet(t))
	defer h.Close()

	if _, err := h.Draw("ghost", 1); err == nil {
		t.Fatal("draw from unregistered worker accepted")
	}
	if _, err := h.Register("w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Draw("w0", 0); err == nil {
		t.Fatal("0-value draw accepted")
	}

	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		if _, err := h.Register(workerID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers; i++ {
		w := workerID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < draws; d++ {
				if _, err := h.Draw(w, block); err != nil {
					t.Errorf("%s: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	log := h.IssueLog()
	seen := map[int64]bool{}
	total := 0
	for w, vals := range log {
		if len(vals) != draws*block {
			t.Fatalf("%s issued %d values, want %d", w, len(vals), draws*block)
		}
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("value %d issued twice", v)
			}
			seen[v] = true
			total++
		}
	}
	for v := int64(0); v < int64(total); v++ {
		if !seen[v] {
			t.Fatalf("quiescent issue log has a gap at %d (total %d)", v, total)
		}
	}
}

// workerID mirrors harness.WorkerID without importing harness
// (harness imports this package).
func workerID(i int) string {
	return "w" + strconv.Itoa(i)
}

// TestKV exercises the run-scoped key/value store.
func TestKV(t *testing.T) {
	h := NewHub(testNet(t))
	defer h.Close()
	if _, ok := h.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}
	h.Put("k", "v1")
	h.Put("k", "v2")
	if v, ok := h.Get("k"); !ok || v != "v2" {
		t.Fatalf("Get(k) = %q, %v", v, ok)
	}
}
