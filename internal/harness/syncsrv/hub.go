// Package syncsrv is the coordination service of the multi-process
// traffic harness (internal/harness): a run-scoped HTTP server that
// worker processes use to phase-synchronize, publish/watch events,
// share key/value state, and lease blocks of Fetch&Increment values
// from one shared counting-network counter.
//
// The barrier arrival path dogfoods the paper's own application: every
// Barrier(state, n) arrival draws a ticket from a counting-network
// counter, so the harness's phase synchronization is itself loading
// the data structure under test (release bookkeeping is arrival-
// ordered — see stateBarrier for why ticket-ordered release would
// deadlock — and Quiesce checks the tickets' gap-free contract).
// The draw endpoint serves value blocks from a combining counter over
// the same network and keeps a per-worker issue log, which the
// post-run checker (harness.CheckRun) cross-checks against what the
// worker processes report having received.
package syncsrv

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"countnet/internal/counter"
	"countnet/internal/network"
	"countnet/internal/obs"
)

// Hub is the in-memory coordination state behind one harness run. All
// methods are safe for concurrent use; blocking methods (Barrier,
// Subscribe) return with an error after Close.
type Hub struct {
	net  *network.Network
	draw counter.BlockCounter // shared value source for /draw leases

	mu       sync.Mutex
	closed   bool
	barriers map[string]*stateBarrier
	topics   map[string]*topic
	kv       map[string]string
	issued   map[string][]int64 // worker -> values leased to it, in issue order
	workers  map[string]bool
}

// NewHub builds a hub whose barriers and draw counter run on the given
// counting network.
func NewHub(net *network.Network) *Hub {
	return &Hub{
		net:      net,
		draw:     counter.NewCombiningCounter(net),
		barriers: map[string]*stateBarrier{},
		topics:   map[string]*topic{},
		kv:       map[string]string{},
		issued:   map[string][]int64{},
		workers:  map[string]bool{},
	}
}

// Width returns the width of the hub's counting network (the modulus
// that maps an issued value to its exit wire, value mod width).
func (h *Hub) Width() int { return h.net.Width() }

// Close releases every blocked Barrier and Subscribe call with an
// error. The hub is unusable afterwards.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, b := range h.barriers {
		b.close()
	}
	for _, t := range h.topics {
		t.cond.Broadcast()
	}
}

// Quiesce verifies every barrier state's counting-network tickets now
// that the run is at rest: each must have issued exactly 0..arrivals-1
// (the gap-free quiescence contract). Call it after all barrier calls
// have returned, before Close.
func (h *Hub) Quiesce() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for state, b := range h.barriers {
		if err := b.quiesce(); err != nil {
			obs.RecordFlight(obs.FlightOracleViolation, int64(len(h.barriers)), 0)
			return fmt.Errorf("syncsrv: barrier %q: %w", state, err)
		}
	}
	return nil
}

// Register records a worker id. A duplicate registration is an error:
// worker identities scope the issue log, so two processes sharing one
// id would corrupt the post-run cross-check.
func (h *Hub) Register(worker string) (int, error) {
	if worker == "" {
		return 0, fmt.Errorf("syncsrv: empty worker id")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("syncsrv: hub closed")
	}
	if h.workers[worker] {
		return 0, fmt.Errorf("syncsrv: worker %q already registered", worker)
	}
	h.workers[worker] = true
	return len(h.workers), nil
}

// Workers returns the registered worker ids, sorted.
func (h *Hub) Workers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.workers))
	for w := range h.workers {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Barrier blocks until n parties (including the caller) have arrived
// at the named state and returns the caller's 0-based generation. The
// first arrival at a state fixes its party count; later arrivals must
// pass the same n. Arrival tickets come from a counting-network
// counter dedicated to the state.
func (h *Hub) Barrier(state string, n int) (int64, error) {
	b, err := h.barrier(state, n)
	if err != nil {
		return 0, err
	}
	return b.Await()
}

// barrier returns the state's barrier, creating it on first arrival.
func (h *Hub) barrier(state string, n int) (*stateBarrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("syncsrv: barrier %q with %d parties", state, n)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("syncsrv: hub closed")
	}
	b, ok := h.barriers[state]
	if !ok {
		b = newStateBarrier(h.net, n)
		h.barriers[state] = b
	}
	if b.n != int64(n) {
		return nil, fmt.Errorf("syncsrv: barrier %q opened for %d parties, arrival wants %d", state, b.n, n)
	}
	return b, nil
}

// Publish appends value to the named topic and returns its 0-based
// sequence number, waking every Subscribe long-poll on the topic.
func (h *Hub) Publish(topicName, value string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topic(topicName)
	t.entries = append(t.entries, value)
	t.cond.Broadcast()
	return len(t.entries) - 1
}

// Subscribe returns the topic entries with sequence >= after, waiting
// up to wait for at least one to exist. It returns the entries (nil
// after a timeout) and the next sequence number to poll from, so a
// late joiner passing after=0 always sees the full history.
func (h *Hub) Subscribe(topicName string, after int, wait time.Duration) ([]string, int) {
	deadline := time.Now().Add(wait)
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topic(topicName)
	for len(t.entries) <= after && !h.closed {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		// Cond has no timed wait; a one-shot timer broadcast bounds it.
		tm := time.AfterFunc(remain, t.cond.Broadcast)
		t.cond.Wait()
		tm.Stop()
	}
	if after > len(t.entries) {
		after = len(t.entries)
	}
	entries := append([]string(nil), t.entries[after:]...)
	return entries, len(t.entries)
}

// topic returns the named topic, creating it under h.mu.
func (h *Hub) topic(name string) *topic {
	t, ok := h.topics[name]
	if !ok {
		t = &topic{cond: sync.NewCond(&h.mu)}
		h.topics[name] = t
	}
	return t
}

type topic struct {
	entries []string
	cond    *sync.Cond
}

// Put stores a run-scoped key/value pair.
func (h *Hub) Put(key, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.kv[key] = value
}

// Get reads a run-scoped key.
func (h *Hub) Get(key string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.kv[key]
	return v, ok
}

// Draw leases n fresh values to the worker from the shared combining
// counter and records them in the issue log. The values are distinct
// across all workers and gap-free once the run quiesces — the
// guarantee the post-run checker verifies end to end.
func (h *Hub) Draw(worker string, n int) ([]int64, error) {
	if n < 1 {
		return nil, fmt.Errorf("syncsrv: draw of %d values", n)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, fmt.Errorf("syncsrv: hub closed")
	}
	if !h.workers[worker] {
		h.mu.Unlock()
		return nil, fmt.Errorf("syncsrv: draw from unregistered worker %q", worker)
	}
	h.mu.Unlock()

	// The network traversal runs outside h.mu: the whole point of the
	// combining counter is that concurrent draws contend on balancers,
	// not on one lock.
	vals := make([]int64, n)
	h.draw.NextBlock(vals)
	obs.RecordFlight(obs.FlightBlockLease, vals[0], int64(n))

	h.mu.Lock()
	h.issued[worker] = append(h.issued[worker], vals...)
	h.mu.Unlock()
	return vals, nil
}

// IssueLog returns a copy of the per-worker issue log.
func (h *Hub) IssueLog() map[string][]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]int64, len(h.issued))
	for w, vals := range h.issued {
		out[w] = append([]int64(nil), vals...)
	}
	return out
}
