// Schedule exploration of the sync server's barrier: concurrent
// arrivals run under the internal/sched controlled scheduler, with
// ticket draws traversing the real counting network via the hooked
// balancer path (AwaitHooked shares its mutex and release state with
// the shipped Await). Invariant: in every interleaving, each party's
// k-th arrival returns generation k — no lost wakeups, no generation
// skew, regardless of how balancer accesses and the release broadcast
// interleave. Lives in-package because stateBarrier is unexported.
package syncsrv

import (
	"fmt"
	"strings"
	"testing"

	"countnet/internal/core"
	"countnet/internal/sched"
)

// barrierSystem builds a sched.System of `parties` tasks that each
// pass through a fresh barrier `rounds` times on distinct entry wires.
func barrierSystem(t *testing.T, parties, rounds int) sched.System {
	t.Helper()
	return func() ([]sched.TaskFunc, func(*sched.Trace) error) {
		net, err := core.K(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		b := newStateBarrier(net, parties)
		gens := make([][]int64, parties)
		tasks := make([]sched.TaskFunc, parties)
		for i := 0; i < parties; i++ {
			i := i
			tasks[i] = func(y *sched.Yield) {
				for r := 0; r < rounds; r++ {
					gens[i] = append(gens[i], b.AwaitHooked(i%net.Width(), y.Step, y.Block))
				}
			}
		}
		check := func(tr *sched.Trace) error {
			for i, gs := range gens {
				if len(gs) != rounds {
					return fmt.Errorf("party %d completed %d of %d rounds", i, len(gs), rounds)
				}
				for r, g := range gs {
					if g != int64(r) {
						return fmt.Errorf("party %d round %d returned generation %d (all: %v)", i, r, g, gs)
					}
				}
			}
			return nil
		}
		return tasks, check
	}
}

// TestBarrierUnderExploredSchedules drives random and bounded-
// preemption-exhaustive interleavings of concurrent barrier arrivals.
func TestBarrierUnderExploredSchedules(t *testing.T) {
	for _, tc := range []struct{ parties, rounds int }{
		{2, 3}, // reuse across generations
		{3, 2}, // more arrival races per generation
	} {
		name := fmt.Sprintf("p%dr%d", tc.parties, tc.rounds)
		sys := barrierSystem(t, tc.parties, tc.rounds)
		if rep := sched.ExploreRandom(sys, 0xba44, 150, 20_000); rep.Failure != nil {
			t.Errorf("%s random: %s", name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 1, 5_000, 20_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", name, rep.Failure)
		}
	}
}

// TestTicketGenerationRefuted: the naive ticket-ordered barrier —
// generation and release decided by the counting-network ticket value,
// as in "release when ticket == boundary-1" — deadlocks under reuse,
// because counting networks are not linearizable: a re-arriving party
// can draw a ticket belonging to the previous generation, leaving that
// generation's closing ticket with a party that never arrives again.
// The exploration must find such a schedule; this is the refutation
// that justifies arrival-ordered release in stateBarrier (and
// counter.Barrier).
func TestTicketGenerationRefuted(t *testing.T) {
	const parties, rounds = 3, 2
	sys := func() ([]sched.TaskFunc, func(*sched.Trace) error) {
		net, err := core.K(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		b := newStateBarrier(net, parties)
		tasks := make([]sched.TaskFunc, parties)
		for i := 0; i < parties; i++ {
			i := i
			tasks[i] = func(y *sched.Yield) {
				for r := 0; r < rounds; r++ {
					ticketArrive(b, i%net.Width(), y)
				}
			}
		}
		return tasks, func(tr *sched.Trace) error { return nil }
	}
	rep := sched.ExploreRandom(sys, 0xdead, 500, 20_000)
	if rep.Failure == nil {
		t.Fatal("ticket-ordered release survived exploration; expected a deadlock schedule")
	}
	if !strings.Contains(rep.Failure.Err.Error(), "deadlock") {
		t.Fatalf("unexpected failure kind: %v", rep.Failure.Err)
	}
}

// ticketArrive is the refuted construction: generation from the ticket
// value, release when the generation's highest ticket arrives. It uses
// the same network counter and lock as the real barrier so the
// exploration runs the same instrumented traversal.
func ticketArrive(b *stateBarrier, wire int, y *sched.Yield) int64 {
	t := b.ctr.NextOnHooked(wire, y.Step)
	gen := t / b.n
	boundary := (gen + 1) * b.n
	y.Step("barrier gate")
	b.mu.Lock()
	if t == boundary-1 {
		if boundary > b.done {
			b.done = boundary
		}
		b.mu.Unlock()
		return gen
	}
	b.mu.Unlock()
	y.Block("barrier wait", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.done >= boundary
	})
	return gen
}
