package syncsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the worker-side view of a sync Server. The zero client is
// not usable; build one with NewClient. Methods are safe for
// concurrent use (they share one http.Client).
type Client struct {
	base string
	http *http.Client
}

// NewClient targets the server at base (e.g. "http://127.0.0.1:8123").
// Barrier calls block server-side, so the underlying HTTP client has
// no request timeout; bound waits with the phase plan instead.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// Register announces the worker id and returns the number of workers
// registered so far.
func (c *Client) Register(worker string) (int, error) {
	var out struct {
		Workers int `json:"workers"`
	}
	err := c.call(http.MethodPost, "/register?worker="+url.QueryEscape(worker), "", &out)
	return out.Workers, err
}

// Barrier arrives at the named state and blocks until all n parties
// have arrived, returning the caller's generation.
func (c *Client) Barrier(state string, n int) (int64, error) {
	var out struct {
		Generation int64 `json:"generation"`
	}
	err := c.call(http.MethodPost,
		"/barrier?state="+url.QueryEscape(state)+"&n="+strconv.Itoa(n), "", &out)
	return out.Generation, err
}

// Publish appends value to the topic and returns its sequence number.
func (c *Client) Publish(topic, value string) (int, error) {
	var out struct {
		Seq int `json:"seq"`
	}
	err := c.call(http.MethodPost, "/pub?topic="+url.QueryEscape(topic), value, &out)
	return out.Seq, err
}

// Subscribe long-polls the topic for entries with sequence >= after,
// waiting up to wait. It returns the entries (possibly none) and the
// next sequence to poll from.
func (c *Client) Subscribe(topic string, after int, wait time.Duration) ([]string, int, error) {
	var out struct {
		Entries []string `json:"entries"`
		Next    int      `json:"next"`
	}
	err := c.call(http.MethodGet, fmt.Sprintf("/sub?topic=%s&after=%d&wait=%s",
		url.QueryEscape(topic), after, wait), "", &out)
	return out.Entries, out.Next, err
}

// Put stores a run-scoped key/value pair.
func (c *Client) Put(key, value string) error {
	return c.call(http.MethodPut, "/kv?key="+url.QueryEscape(key), value, nil)
}

// Get reads a run-scoped key; ok is false when the key is absent.
func (c *Client) Get(key string) (value string, ok bool, err error) {
	resp, err := c.http.Get(c.base + "/kv?key=" + url.QueryEscape(key))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(body), true, nil
	case http.StatusNotFound:
		return "", false, nil
	default:
		return "", false, fmt.Errorf("syncsrv: GET /kv: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// Draw leases n fresh counter values for the worker.
func (c *Client) Draw(worker string, n int) ([]int64, error) {
	var out struct {
		Values []int64 `json:"values"`
	}
	err := c.call(http.MethodPost,
		"/draw?worker="+url.QueryEscape(worker)+"&n="+strconv.Itoa(n), "", &out)
	return out.Values, err
}

// Draws fetches the server's full issue log and the network width.
func (c *Client) Draws() (width int, issued map[string][]int64, err error) {
	var out struct {
		Width  int                `json:"width"`
		Issued map[string][]int64 `json:"issued"`
	}
	err = c.call(http.MethodGet, "/draws", "", &out)
	return out.Width, out.Issued, err
}

// call performs one JSON round trip; non-2xx responses become errors
// carrying the server's message.
func (c *Client) call(method, path, body string, out any) error {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("syncsrv: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
