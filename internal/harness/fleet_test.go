package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"countnet/internal/obs"
)

// TestRunProducesFleetSnapshots: a multi-worker run must yield one
// merged obs snapshot per phase, with every worker contributing, and
// FleetTable must render them as per-phase sections.
func TestRunProducesFleetSnapshots(t *testing.T) {
	sc, err := LookupScenario("uniform")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, fastOptions(3), RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Fleet) != len(res.Steps) {
		t.Fatalf("fleet snapshots for %d phases, want %d", len(res.Fleet), len(res.Steps))
	}
	var prevDraws int64
	for i := range res.Steps {
		s := res.Fleet[i]
		if s == nil {
			t.Fatalf("phase %d has no fleet snapshot", i)
		}
		g := s.Group("worker")
		if g == nil {
			t.Fatalf("phase %d fleet snapshot lost the worker group", i)
		}
		if g.Origin != "w0,w1,w2" {
			t.Fatalf("phase %d merged Origin = %q, want w0,w1,w2", i, g.Origin)
		}
		var draws int64
		for _, c := range g.Counters {
			if c.Name == "draws" {
				draws = c.Value
			}
		}
		// Snapshots are cumulative, so the fleet draw total must be
		// positive and non-decreasing across phases.
		if draws <= prevDraws {
			t.Fatalf("phase %d fleet draws = %d, want > %d", i, draws, prevDraws)
		}
		prevDraws = draws
	}
	// The merged per-phase draw totals must match the per-record ops
	// counts — snapshot aggregation and record aggregation are two
	// paths over the same traffic.
	var totalOps int64
	for _, recs := range res.Records {
		for i := range recs {
			totalOps += int64(recs[i].Ops)
		}
	}
	if prevDraws != totalOps {
		t.Fatalf("final fleet draws = %d, records say %d", prevDraws, totalOps)
	}

	table := res.FleetTable()
	for i, step := range res.Steps {
		want := "fleet phase " + string(rune('0'+i)) + " (" + step.Name + ")"
		if !strings.Contains(table, want) {
			t.Fatalf("fleet table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(table, "workers[w0,w1,w2]") {
		t.Fatalf("fleet table missing worker origins:\n%s", table)
	}
}

// TestKillScenarioDumpsFlights: when the kill scenario fires, Run must
// capture the victim's flight dump from its dying line and write
// per-worker dump artifacts into FlightDir.
func TestKillScenarioDumpsFlights(t *testing.T) {
	sc, err := LookupScenario("kill")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := Run(sc, fastOptions(3), RunnerOptions{FlightDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Lost) != 1 {
		t.Fatalf("kill scenario lost %d workers, want 1", len(res.Lost))
	}
	// Every worker must have left a flight dump: the victim via dying,
	// the survivors via bye.
	if len(res.Flights) != len(res.Records) {
		t.Fatalf("flight dumps from %d workers, want %d", len(res.Flights), len(res.Records))
	}
	for id := range res.Lost {
		flight := res.Flights[id]
		if len(flight) == 0 {
			t.Fatalf("killed worker %s left no flight dump", id)
		}
		// The victim died mid-phase after 5 draws: its dump must show
		// the phase-start edge and exactly 5 leases in the crash phase.
		var leases int
		for _, e := range flight {
			if e.Kind == obs.FlightBlockLease {
				leases++
			}
		}
		if leases < 5 {
			t.Fatalf("victim dump has %d leases, want >= 5: %+v", leases, flight)
		}

		path := filepath.Join(dir, "flight-kill-"+id+".json")
		ff, err := ReadFlightFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.Lost || ff.Worker != id || ff.Scenario != "kill" {
			t.Fatalf("flight artifact = %+v", ff)
		}
		if !reflect.DeepEqual(ff.Events, flight) {
			t.Fatalf("flight artifact events diverge from in-memory dump")
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(res.Flights) {
		t.Fatalf("FlightDir has %d files, want %d", len(entries), len(res.Flights))
	}
}

// TestFlightFileGolden pins the on-disk dump format byte for byte:
// post-mortem tooling parses these artifacts, so the format only
// changes deliberately (update testdata/flight-golden.json in the
// same commit as the format change).
func TestFlightFileGolden(t *testing.T) {
	ff := &FlightFile{
		Worker:   "w1",
		Scenario: "kill",
		Seed:     42,
		Lost:     true,
		Events: []obs.FlightEvent{
			{Seq: 0, TS: 1000, Kind: obs.FlightPhaseStart, A: 0, B: 2},
			{Seq: 1, TS: 1100, Kind: obs.FlightBarrierArrive, A: 0, B: 0},
			{Seq: 2, TS: 1200, Kind: obs.FlightBlockLease, A: 0, B: 4},
			{Seq: 3, TS: 1300, Kind: obs.FlightOracleViolation, A: 7, B: 8},
		},
	}
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := WriteFlightFile(path, ff); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "flight-golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("flight dump format drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	back, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ff) {
		t.Fatalf("flight file round trip: got %+v want %+v", back, ff)
	}
}

// TestWorkerObsEveryDisablesPeriodicLines: ObsEvery < 0 must suppress
// mid-phase obs streaming but keep the end-of-phase snapshot (exactly
// one obs line per phase).
func TestWorkerObsEveryDisablesPeriodicLines(t *testing.T) {
	srv := startTestServer(t)
	inR, inW := io.Pipe()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), inR, &out,
			WorkerOptions{ID: "w0", SyncURL: srv, ObsEvery: -1})
	}()
	send := func(c Command) {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inW.Write(append(data, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	send(Command{Op: "phase", Phase: &PhaseSpec{
		Index: 0, Name: "solo", Parties: 1, Block: 1, TargetOps: 50, Duration: time.Second,
	}})
	send(Command{Op: "exit"})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	obsLines := 0
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var m Message
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("undecodable %q: %v", line, err)
		}
		if m.Op == "obs" {
			obsLines++
		}
	}
	if obsLines != 1 {
		t.Fatalf("worker with ObsEvery<0 sent %d obs lines, want exactly the end-of-phase one", obsLines)
	}
}
