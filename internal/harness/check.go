package harness

import (
	"fmt"
	"sort"
)

// CheckRun is the cross-process correctness oracle: given the sync
// server's per-worker issue log and the values each worker process
// reported drawing, it verifies the counting-network invariants held
// across real OS processes.
//
//   - Issue log: the union of all issued values must be duplicate-free
//     and exactly 0..N-1 (gap-free at quiescence), and its per-wire
//     distribution (value mod width) must have the step property.
//   - Transport: every reported value must have been issued to that
//     same worker, with no duplicates anywhere in the reports.
//   - Delivery: a worker not in lost must report exactly what it was
//     issued; lost workers (killed mid-run) may report any prefix
//     subset of their issues.
//   - Reported union: duplicate-free, with gaps and step-property
//     slack bounded by the values issued to lost workers but never
//     reported (CheckValues with that bound).
func CheckRun(width int, issued, reported map[string][]int64, lost map[string]bool) error {
	if width < 1 {
		return fmt.Errorf("harness: check with width %d", width)
	}

	// Workers that report values must appear in the issue log.
	for w, vals := range reported {
		if len(vals) > 0 && len(issued[w]) == 0 {
			return fmt.Errorf("harness: worker %s reported %d values but the server never issued it any", w, len(vals))
		}
	}

	// Per-worker transport and delivery checks.
	maxLost := 0
	for w, iss := range issued {
		issSet := make(map[int64]bool, len(iss))
		for _, v := range iss {
			issSet[v] = true
		}
		rep := reported[w]
		repSet := make(map[int64]bool, len(rep))
		for _, v := range rep {
			if repSet[v] {
				return fmt.Errorf("harness: worker %s reported value %d twice", w, v)
			}
			repSet[v] = true
			if !issSet[v] {
				return fmt.Errorf("harness: worker %s reported value %d it was never issued", w, v)
			}
		}
		if lost[w] {
			maxLost += len(iss) - len(rep)
			continue
		}
		if len(rep) != len(iss) {
			return fmt.Errorf("harness: worker %s reported %d of %d issued values but was not killed", w, len(rep), len(iss))
		}
	}

	// Global invariants on the issue log: the server side of the
	// counting network must be exactly gap-free at quiescence.
	var issuedAll []int64
	for _, vals := range issued {
		issuedAll = append(issuedAll, vals...)
	}
	if err := CheckValues(width, issuedAll, 0); err != nil {
		return fmt.Errorf("harness: issue log: %w", err)
	}

	// Global invariants on what crossed the process boundary, with
	// slack only for values that died with their worker.
	var reportedAll []int64
	for _, vals := range reported {
		reportedAll = append(reportedAll, vals...)
	}
	if err := CheckValues(width, reportedAll, maxLost); err != nil {
		return fmt.Errorf("harness: reported union: %w", err)
	}
	return nil
}

// CheckValues verifies a multiset of values drawn from a width-w
// counting-network counter: no negatives, no duplicates, at most
// maxLost values missing below the maximum drawn (the gap bound), and
// the step property of the per-wire distribution within the slack
// those missing values allow. With maxLost == 0 this is the exact
// quiescent contract: values are precisely 0..N-1 and the per-wire
// token counts step down by at most one across the output order.
func CheckValues(width int, values []int64, maxLost int) error {
	if width < 1 {
		return fmt.Errorf("check width %d", width)
	}
	if len(values) == 0 {
		return nil
	}
	var max int64 = -1
	seen := make(map[int64]bool, len(values))
	for _, v := range values {
		if v < 0 {
			return fmt.Errorf("negative value %d drawn", v)
		}
		if seen[v] {
			return fmt.Errorf("value %d drawn twice", v)
		}
		seen[v] = true
		if v > max {
			max = v
		}
	}
	n := max + 1
	missing := int(n) - len(values)
	if missing > maxLost {
		return fmt.Errorf("gap bound: %d of values 0..%d missing (first: %d), at most %d may be lost",
			missing, max, firstMissing(seen, n), maxLost)
	}

	// Per-wire distribution: value v exited the network on wire
	// v mod width. The step property demands counts[i] - counts[j] in
	// {0, 1} for i < j; each lost value relaxes that by at most one.
	counts := make([]int64, width)
	for v := range seen {
		counts[v%int64(width)]++
	}
	for i := 0; i < width; i++ {
		for j := i + 1; j < width; j++ {
			d := counts[i] - counts[j]
			if d > int64(1+missing) || d < int64(-missing) {
				return fmt.Errorf("step property: wires %d,%d drew %d,%d values (diff %d outside [%d,%d] for %d lost)",
					i, j, counts[i], counts[j], d, -missing, 1+missing, missing)
			}
		}
	}
	return nil
}

// firstMissing returns the smallest value in [0,n) absent from seen.
func firstMissing(seen map[int64]bool, n int64) int64 {
	for v := int64(0); v < n; v++ {
		if !seen[v] {
			return v
		}
	}
	return -1
}

// UnionValues flattens a per-worker value map into one sorted slice,
// the form the gap/step reports and fixtures use.
func UnionValues(byWorker map[string][]int64) []int64 {
	var all []int64
	for _, vals := range byWorker {
		all = append(all, vals...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}
