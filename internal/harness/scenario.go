package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Options parameterizes a scenario run. The zero value is not usable;
// fill it or start from DefaultOptions.
type Options struct {
	// Workers is the number of worker processes at run start.
	Workers int
	// Width is the width of the coordination server's counting
	// network (barrier tickets and value leases both run on it).
	Width int
	// PhaseDuration is the default draw-loop length per phase.
	PhaseDuration time.Duration
	// Block is the default values-per-draw lease size.
	Block int
	// Seed drives every randomized choice a scenario makes (straggler
	// and victim selection, skew assignment). A run's seed is recorded
	// in its worker files: replaying with the same seed, worker count
	// and width reproduces the same plan.
	Seed int64
}

// DefaultOptions are modest settings suitable for a laptop smoke run.
func DefaultOptions() Options {
	return Options{Workers: 2, Width: 8, PhaseDuration: 300 * time.Millisecond, Block: 4, Seed: 1}
}

// Step is one phase of a scenario plan, plus the membership events the
// runner performs before it starts.
type Step struct {
	// Name labels the phase.
	Name string
	// Join spawns that many new workers before the phase.
	Join int
	// Leave gracefully retires that many workers (highest ids first)
	// before the phase.
	Leave int
	// Duration overrides Options.PhaseDuration when positive.
	Duration time.Duration
	// Block overrides Options.Block when positive.
	Block int
	// Blocks overrides the lease size for specific workers (skewed
	// per-node load).
	Blocks map[string]int
	// Throttle injects a per-draw delay for specific workers; the ""
	// key throttles every worker (burst warmup/cooldown phases).
	Throttle map[string]time.Duration
	// Kill injects a crash: the named workers die (freeze and are
	// SIGKILLed) after the given number of draws in this phase, and
	// the runner stands in for them at the phase's end barrier.
	Kill map[string]int
	// TargetOps, when positive, bounds the phase by draw count
	// instead of duration (deterministic smoke phases).
	TargetOps int
}

// Scenario is a named plan generator. Steps sees the run options and a
// seeded RNG, so plans can randomize (which worker straggles, how skew
// is dealt) while staying reproducible from the recorded seed.
type Scenario struct {
	Name  string
	Desc  string
	Steps func(opt Options, rng *rand.Rand) []Step
}

// WorkerID formats the canonical worker id for index i: initial
// workers are w0..w(n-1); joins continue the sequence.
func WorkerID(i int) string { return fmt.Sprintf("w%d", i) }

// Scenarios returns the registry, sorted by name.
func Scenarios() []Scenario {
	s := []Scenario{
		{
			Name: "uniform",
			Desc: "steady identical load on every worker across three phases",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				return []Step{{Name: "warm"}, {Name: "steady"}, {Name: "drain"}}
			},
		},
		{
			Name: "burst",
			Desc: "throttled warmup, all workers released at full speed together, throttled cooldown",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				return []Step{
					{Name: "warm", Throttle: map[string]time.Duration{"": 200 * time.Microsecond}},
					{Name: "burst"},
					{Name: "cool", Throttle: map[string]time.Duration{"": 500 * time.Microsecond}},
				}
			},
		},
		{
			Name: "skew",
			Desc: "per-worker lease sizes drawn from a skewed assignment, reshuffled each phase",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				sizes := make([]int, opt.Workers)
				for i := range sizes {
					sizes[i] = 1 << (i % 5) // 1,2,4,8,16,...
				}
				steps := make([]Step, 3)
				for p := range steps {
					perm := rng.Perm(opt.Workers)
					blocks := map[string]int{}
					for i, pi := range perm {
						blocks[WorkerID(i)] = sizes[pi]
					}
					steps[p] = Step{Name: fmt.Sprintf("skew%d", p), Blocks: blocks}
				}
				return steps
			},
		},
		{
			Name: "joinleave",
			Desc: "a worker joins mid-run, then the newest worker leaves again",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				return []Step{
					{Name: "steady"},
					{Name: "joined", Join: 1},
					{Name: "left", Leave: 1},
				}
			},
		},
		{
			Name: "straggler",
			Desc: "one randomly chosen worker runs an order of magnitude slower mid-run",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				victim := WorkerID(rng.Intn(opt.Workers))
				return []Step{
					{Name: "steady"},
					{Name: "straggle", Throttle: map[string]time.Duration{victim: 2 * time.Millisecond}},
					{Name: "recover"},
				}
			},
		},
		{
			Name: "kill",
			Desc: "one worker is killed mid-phase (its unreported leases are lost), a replacement rejoins",
			Steps: func(opt Options, rng *rand.Rand) []Step {
				victim := WorkerID(rng.Intn(opt.Workers))
				return []Step{
					{Name: "steady"},
					{Name: "crash", Kill: map[string]int{victim: 5}},
					{Name: "rejoin", Join: 1},
				}
			},
		},
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// LookupScenario finds a scenario by name.
func LookupScenario(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("harness: unknown scenario %q", name)
}
