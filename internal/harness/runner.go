package harness

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"countnet/internal/core"
	"countnet/internal/factor"
	"countnet/internal/harness/syncsrv"
	"countnet/internal/obs"
)

// RunnerOptions configures process supervision, independent of the
// scenario itself.
type RunnerOptions struct {
	// Bin is the worker binary (countbench); BinArgs precede the
	// harness flags, so {Bin: "bin/countbench", BinArgs: ["-worker"]}
	// launches `countbench -worker -sync URL -id wN`. An empty Bin
	// runs workers as in-process goroutines over pipes — same
	// protocol, same sync server, no fork; unit tests use this mode.
	Bin     string
	BinArgs []string
	// OutDir, when set, receives one worker-<id>.json artifact per
	// worker for the benchjson collector.
	OutDir string
	// Log receives progress lines and worker stderr; nil discards.
	Log io.Writer
	// PhaseTimeout aborts a phase whose workers stop responding
	// (default 2m) — the harness must fail loudly, not hang CI.
	PhaseTimeout time.Duration
	// FlightDir, when set, receives per-worker flight-recorder dumps
	// whenever a kill scenario fires (a worker was lost mid-run). The
	// caller can also dump unconditionally via WriteFlightDumps — the
	// scenarios command does so when the post-run oracle fails.
	FlightDir string
}

// RunResult is everything one scenario run produced.
type RunResult struct {
	Scenario string
	Seed     int64
	Width    int
	Steps    []Step
	// Records maps worker id to its phase records, Issued to the sync
	// server's lease log, and Lost marks workers killed mid-run.
	Records map[string][]PhaseRecord
	Issued  map[string][]int64
	Lost    map[string]bool
	// Fleet maps phase index to the merged cross-worker obs snapshot
	// for that phase (each worker's latest "obs" line, folded with
	// obs.Merge; Origin names the contributing workers).
	Fleet map[int]*obs.Snapshot
	// Flights maps worker id to its final flight-recorder dump (from
	// the bye line, or the dying line for killed workers).
	Flights map[string][]obs.FlightEvent
	// Files lists the worker artifacts written to OutDir.
	Files []string
}

// FleetTable renders one merged per-phase table over every worker's
// obs snapshots: phase headers name the contributing workers, and
// chaining each phase's cumulative fleet snapshot against the
// previous phase's turns the counter columns into per-phase deltas.
func (r *RunResult) FleetTable() string {
	var b strings.Builder
	var prev *obs.Snapshot
	var prevTaken int64
	for i, step := range r.Steps {
		s := r.Fleet[i]
		if s == nil {
			continue
		}
		origins := ""
		if g := s.Group("worker"); g != nil {
			origins = g.Origin
		}
		fmt.Fprintf(&b, "== fleet phase %d (%s) workers[%s] ==\n", i, step.Name, origins)
		var elapsed time.Duration
		if prev != nil && s.TakenUnixNano > prevTaken {
			elapsed = time.Duration(s.TakenUnixNano - prevTaken)
		}
		b.WriteString(obs.RenderTable(prev, *s, elapsed))
		prev, prevTaken = s, s.TakenUnixNano
	}
	return b.String()
}

// WriteFlightDumps writes one flight-<scenario>-<worker>.json
// artifact per worker dump into dir, returning the paths.
func (r *RunResult) WriteFlightDumps(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(r.Flights))
	for id := range r.Flights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var paths []string
	for _, id := range ids {
		ff := &FlightFile{
			Worker:   id,
			Scenario: r.Scenario,
			Seed:     r.Seed,
			Lost:     r.Lost[id],
			Events:   r.Flights[id],
		}
		path := filepath.Join(dir, fmt.Sprintf("flight-%s-%s.json", r.Scenario, id))
		if err := WriteFlightFile(path, ff); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Check runs the cross-process oracle over the result.
func (r *RunResult) Check() error {
	reported := map[string][]int64{}
	for w, recs := range r.Records {
		for i := range recs {
			reported[w] = append(reported[w], recs[i].Values...)
		}
	}
	return CheckRun(r.Width, r.Issued, reported, r.Lost)
}

// Run executes one scenario: it starts a syncsrv server on an
// ephemeral port, launches the initial workers, drives every step
// (joins, leaves, phases, kills with barrier stand-ins), retires the
// survivors, and returns the collected records and issue log. The
// returned result still needs Check — Run itself only fails on
// harness-level errors (a worker that died unexpectedly, a hung
// phase), not on oracle violations.
func Run(sc Scenario, opt Options, ropt RunnerOptions) (*RunResult, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("harness: %d workers", opt.Workers)
	}
	if opt.Block < 1 {
		opt.Block = 1
	}
	if opt.PhaseDuration <= 0 {
		opt.PhaseDuration = 300 * time.Millisecond
	}
	if ropt.PhaseTimeout <= 0 {
		ropt.PhaseTimeout = 2 * time.Minute
	}
	if ropt.Log == nil {
		ropt.Log = io.Discard
	}

	fs := factor.Balanced(opt.Width, 3)
	if len(fs) < 2 {
		return nil, fmt.Errorf("harness: width %d has no factorization into balancers (use a composite width >= 4)", opt.Width)
	}
	net, err := core.L(fs...)
	if err != nil {
		return nil, fmt.Errorf("harness: building width-%d sync network: %w", opt.Width, err)
	}

	hub := syncsrv.NewHub(net)
	srv := syncsrv.NewServer(hub)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // teardown of a run-scoped server
	}()

	r := &runner{
		opt:  opt,
		ropt: ropt,
		hub:  hub,
		url:  srv.URL(),
	}
	defer r.reap()

	steps := sc.Steps(opt, rand.New(rand.NewSource(opt.Seed)))
	fmt.Fprintf(ropt.Log, "harness: scenario %s: %d workers, width %d (L%v), %d phases, seed %d, sync %s\n",
		sc.Name, opt.Workers, opt.Width, fs, len(steps), opt.Seed, r.url)

	for i := 0; i < opt.Workers; i++ {
		if err := r.spawn(); err != nil {
			return nil, err
		}
	}
	for i, step := range steps {
		if err := r.runStep(i, step); err != nil {
			return nil, fmt.Errorf("harness: scenario %s phase %d (%s): %w", sc.Name, i, step.Name, err)
		}
	}
	if err := r.retireAll(); err != nil {
		return nil, err
	}
	// Every barrier call has returned: the barrier counters are
	// quiescent, so their tickets must be gap-free.
	if err := hub.Quiesce(); err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", sc.Name, err)
	}

	res := &RunResult{
		Scenario: sc.Name,
		Seed:     opt.Seed,
		Width:    opt.Width,
		Steps:    steps,
		Records:  map[string][]PhaseRecord{},
		Issued:   hub.IssueLog(),
		Lost:     map[string]bool{},
		Fleet:    map[int]*obs.Snapshot{},
		Flights:  map[string][]obs.FlightEvent{},
	}
	for _, p := range r.all {
		res.Records[p.id] = p.records
		if p.lost {
			res.Lost[p.id] = true
		}
		// Fold each worker's latest per-phase snapshot into the fleet
		// view. Snapshots are cumulative per worker, so only the latest
		// one per (worker, phase) enters the merge — merging two
		// snapshots of the same registry would double-count.
		for idx, s := range p.snaps {
			res.Fleet[idx] = obs.Merge(res.Fleet[idx], s)
		}
		if p.flight != nil {
			res.Flights[p.id] = p.flight
		}
	}
	if ropt.OutDir != "" {
		if err := writeArtifacts(res, ropt.OutDir); err != nil {
			return nil, err
		}
	}
	if ropt.FlightDir != "" && len(res.Lost) > 0 {
		// A kill scenario fired: leave every worker's post-mortem ring
		// on disk beside the run artifacts.
		paths, err := res.WriteFlightDumps(ropt.FlightDir)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(ropt.Log, "harness: scenario %s: wrote %d flight dumps to %s\n", sc.Name, len(paths), ropt.FlightDir)
	}
	return res, nil
}

// writeArtifacts writes one WorkerFile per worker into dir.
func writeArtifacts(res *RunResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := make([]string, 0, len(res.Records))
	for id := range res.Records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wf := &WorkerFile{
			Worker:   id,
			Scenario: res.Scenario,
			Seed:     res.Seed,
			Width:    res.Width,
			Lost:     res.Lost[id],
			Records:  res.Records[id],
		}
		path := filepath.Join(dir, fmt.Sprintf("worker-%s-%s.json", res.Scenario, id))
		if err := WriteWorkerFile(path, wf); err != nil {
			return err
		}
		res.Files = append(res.Files, path)
	}
	return nil
}

// runner supervises the worker set across one run.
type runner struct {
	opt    Options
	ropt   RunnerOptions
	hub    *syncsrv.Hub
	url    string
	nextID int
	live   []*proc // phase participants, spawn order
	all    []*proc // including retired and killed workers
}

// proc is one worker, in-process or forked.
type proc struct {
	id      string
	in      io.WriteCloser
	lines   chan Message
	cmd     *exec.Cmd          // nil for in-process workers
	cancel  context.CancelFunc // kills in-process workers
	done    chan struct{}
	lost    bool
	records []PhaseRecord
	// snaps holds the worker's latest obs snapshot per phase index;
	// flight its latest flight-recorder dump. Both are fed by next()
	// as the lines arrive; access is serialized because exactly one
	// goroutine awaits a given worker at a time.
	snaps  map[int]*obs.Snapshot
	flight []obs.FlightEvent
}

// spawn starts the next worker and waits for its ready line.
func (r *runner) spawn() error {
	id := WorkerID(r.nextID)
	r.nextID++
	p := &proc{id: id, lines: make(chan Message, 4), done: make(chan struct{}), snaps: map[int]*obs.Snapshot{}}

	var out io.Reader
	if r.ropt.Bin == "" {
		ctx, cancel := context.WithCancel(context.Background())
		p.cancel = cancel
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		p.in = inW
		out = outR
		go func() {
			defer close(p.done)
			defer outW.Close()
			RunWorker(ctx, inR, outW, WorkerOptions{ID: id, SyncURL: r.url}) //nolint:errcheck // surfaced via protocol
		}()
	} else {
		args := append(append([]string{}, r.ropt.BinArgs...), "-sync", r.url, "-id", id)
		cmd := exec.Command(r.ropt.Bin, args...)
		cmd.Stderr = r.ropt.Log
		in, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("harness: starting worker %s (%s): %w", id, r.ropt.Bin, err)
		}
		p.cmd = cmd
		p.in = in
		out = stdout
		go func() {
			defer close(p.done)
			cmd.Wait() //nolint:errcheck // kill paths exit nonzero by design
		}()
	}

	// One reader goroutine per worker lifetime: decode protocol lines
	// into the message channel until the stream ends.
	go func() {
		defer close(p.lines)
		sc := bufio.NewScanner(out)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
		for sc.Scan() {
			var m Message
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				p.lines <- Message{Op: "error", Worker: p.id, Err: fmt.Sprintf("undecodable line %q: %v", sc.Text(), err)}
				return
			}
			p.lines <- m
		}
	}()

	m, err := p.next(r.ropt.PhaseTimeout)
	if err != nil {
		return fmt.Errorf("harness: worker %s never became ready: %w", id, err)
	}
	if m.Op != "ready" {
		return fmt.Errorf("harness: worker %s: expected ready, got %q (%s)", id, m.Op, m.Err)
	}
	fmt.Fprintf(r.ropt.Log, "harness: worker %s up (%s)\n", id, procKind(p))
	r.live = append(r.live, p)
	r.all = append(r.all, p)
	return nil
}

func procKind(p *proc) string {
	if p.cmd == nil {
		return "in-process"
	}
	return fmt.Sprintf("pid %d", p.cmd.Process.Pid)
}

// next awaits the worker's next protocol message. Observability lines
// ("obs" snapshots, flight dumps riding other ops) are stashed on the
// proc as they pass through, so callers only ever see the control
// flow: ready/record/dying/bye.
func (p *proc) next(timeout time.Duration) (Message, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		select {
		case m, ok := <-p.lines:
			if !ok {
				return Message{}, fmt.Errorf("worker %s output ended", p.id)
			}
			if len(m.Flight) > 0 {
				// Dumps are cumulative ring contents; the latest wins.
				p.flight = m.Flight
			}
			if m.Op == "obs" {
				if m.Snapshot != nil {
					p.snaps[m.PhaseIndex] = m.Snapshot
				}
				continue
			}
			if m.Op == "error" {
				return m, fmt.Errorf("worker %s failed: %s", p.id, m.Err)
			}
			return m, nil
		case <-t.C:
			return Message{}, fmt.Errorf("worker %s: no message within %s", p.id, timeout)
		}
	}
}

// send writes one command line to the worker.
func (p *proc) send(cmd Command) error {
	data, err := json.Marshal(cmd)
	if err != nil {
		return err
	}
	if _, err := p.in.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("worker %s stdin: %w", p.id, err)
	}
	return nil
}

// kill forcibly terminates the worker (SIGKILL for processes, context
// cancel for in-process goroutines) and waits for it to be reaped.
func (p *proc) kill() {
	if p.cmd != nil {
		p.cmd.Process.Kill() //nolint:errcheck // already-dead is fine
	}
	if p.cancel != nil {
		p.cancel()
	}
	<-p.done
}

// runStep performs one scenario step: membership changes, then the
// phase with its per-worker overrides and fault injections.
func (r *runner) runStep(index int, step Step) error {
	for j := 0; j < step.Join; j++ {
		if err := r.spawn(); err != nil {
			return err
		}
	}
	for l := 0; l < step.Leave; l++ {
		if len(r.live) <= 1 {
			return fmt.Errorf("leave would empty the worker set")
		}
		p := r.live[len(r.live)-1]
		if err := r.retire(p); err != nil {
			return err
		}
		r.live = r.live[:len(r.live)-1]
	}

	parties := len(r.live)
	duration := step.Duration
	if duration <= 0 {
		duration = r.opt.PhaseDuration
	}
	fmt.Fprintf(r.ropt.Log, "harness: phase %d (%s): %d workers, %d kills, %s\n",
		index, step.Name, parties, len(step.Kill), duration)

	// Send every worker its personalized spec, then collect each
	// worker's phase outcome concurrently: records for survivors, the
	// dying handshake (kill + end-barrier stand-in) for victims. The
	// stand-ins must run while survivors are still blocked on the end
	// barrier, hence one goroutine per worker.
	var wg sync.WaitGroup
	errs := make(chan error, len(r.live))
	for _, p := range r.live {
		spec := &PhaseSpec{
			Index:     index,
			Name:      step.Name,
			Parties:   parties,
			Duration:  duration,
			Block:     r.opt.Block,
			TargetOps: step.TargetOps,
		}
		if b, ok := step.Blocks[p.id]; ok {
			spec.Block = b
		} else if step.Block > 0 {
			spec.Block = step.Block
		}
		if t, ok := step.Throttle[p.id]; ok {
			spec.Throttle = t
		} else if t, ok := step.Throttle[""]; ok {
			spec.Throttle = t
		}
		spec.DieAfterOps = step.Kill[p.id]
		if err := p.send(Command{Op: "phase", Phase: spec}); err != nil {
			return err
		}
		wg.Add(1)
		go func(p *proc, spec *PhaseSpec) {
			defer wg.Done()
			if err := r.awaitPhase(p, spec); err != nil {
				errs <- err
			}
		}(p, spec)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// Drop killed workers from the live set.
	alive := r.live[:0]
	for _, p := range r.live {
		if !p.lost {
			alive = append(alive, p)
		}
	}
	r.live = alive
	if len(r.live) == 0 {
		return fmt.Errorf("every worker died")
	}
	return nil
}

// awaitPhase consumes one worker's outcome for the phase.
func (r *runner) awaitPhase(p *proc, spec *PhaseSpec) error {
	m, err := p.next(r.ropt.PhaseTimeout + spec.Duration)
	if err != nil {
		return err
	}
	switch m.Op {
	case "record":
		if m.Record == nil {
			return fmt.Errorf("worker %s: record message without record", p.id)
		}
		p.records = append(p.records, *m.Record)
		return nil
	case "dying":
		if spec.DieAfterOps <= 0 {
			return fmt.Errorf("worker %s died without an injected crash", p.id)
		}
		p.kill()
		p.lost = true
		fmt.Fprintf(r.ropt.Log, "harness: killed worker %s after %d draws; standing in at end barrier\n",
			p.id, spec.DieAfterOps)
		// Take the dead worker's place so the phase's end barrier
		// still sees all parties. The stand-in arrives through the
		// hub directly — same counting-network ticket path.
		if _, err := r.hub.Barrier(BarrierState(spec.Index, spec.Name, "end"), spec.Parties); err != nil {
			return fmt.Errorf("stand-in for %s: %w", p.id, err)
		}
		return nil
	default:
		return fmt.Errorf("worker %s: expected record or dying, got %q", p.id, m.Op)
	}
}

// retire gracefully exits one worker.
func (r *runner) retire(p *proc) error {
	if err := p.send(Command{Op: "exit"}); err != nil {
		return err
	}
	m, err := p.next(r.ropt.PhaseTimeout)
	if err != nil {
		return err
	}
	if m.Op != "bye" {
		return fmt.Errorf("worker %s: expected bye, got %q", p.id, m.Op)
	}
	p.in.Close()
	<-p.done
	fmt.Fprintf(r.ropt.Log, "harness: worker %s retired\n", p.id)
	return nil
}

// retireAll gracefully exits every live worker.
func (r *runner) retireAll() error {
	for _, p := range r.live {
		if err := r.retire(p); err != nil {
			return err
		}
	}
	r.live = nil
	return nil
}

// reap force-kills anything still running (error paths).
func (r *runner) reap() {
	for _, p := range r.all {
		select {
		case <-p.done:
		default:
			p.kill()
		}
	}
}
