package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"countnet/internal/core"
	"countnet/internal/factor"
	"countnet/internal/harness/syncsrv"
	"countnet/internal/obs"
)

// fastOptions keeps e2e runs brisk: short phases, small network.
func fastOptions(workers int) Options {
	return Options{Workers: workers, Width: 8, PhaseDuration: 40 * time.Millisecond, Block: 4, Seed: 1}
}

// TestScenariosEndToEnd runs every registered scenario with in-process
// workers over the real sync server and line protocol, and requires
// the cross-process oracle to pass. This is the harness's own tier-1
// gate; `make scenario-smoke` repeats it with forked OS processes.
func TestScenariosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-phase scenario runs")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc, fastOptions(3), RunnerOptions{PhaseTimeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Check(); err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if len(res.Steps) < 3 {
				t.Fatalf("scenario ran %d phases, want >= 3", len(res.Steps))
			}
			total := 0
			for _, vals := range res.Issued {
				total += len(vals)
			}
			if total == 0 {
				t.Fatal("no values issued")
			}
			if sc.Name == "kill" && len(res.Lost) != 1 {
				t.Fatalf("kill scenario lost %d workers, want 1", len(res.Lost))
			}
			if sc.Name != "kill" && len(res.Lost) != 0 {
				t.Fatalf("scenario %s lost workers: %v", sc.Name, res.Lost)
			}
		})
	}
}

// TestRunWritesArtifacts: OutDir receives one well-formed worker file
// per worker, round-trippable and mergeable.
func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	sc, err := LookupScenario("uniform")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, fastOptions(2), RunnerOptions{OutDir: dir, PhaseTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 2 {
		t.Fatalf("wrote %d files, want 2: %v", len(res.Files), res.Files)
	}
	for _, path := range res.Files {
		wf, err := ReadWorkerFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Scenario != "uniform" || wf.Width != 8 || wf.Seed != 1 {
			t.Fatalf("worker file context = %+v", wf)
		}
		if len(wf.Records) != 3 {
			t.Fatalf("%s has %d records, want 3", filepath.Base(path), len(wf.Records))
		}
	}
	rows, err := MergeFiles(res.Files)
	if err != nil {
		t.Fatal(err)
	}
	// 3 phases x (2 workers + 1 aggregate).
	if len(rows) != 9 {
		t.Fatalf("merged %d rows, want 9", len(rows))
	}
}

// TestScenarioPlansReproducible: the same seed must yield the same
// plan (victim choice, skew deal), and a different seed a different
// plan for the randomized scenarios — the property that makes a
// recorded seed enough to reproduce a failing run.
func TestScenarioPlansReproducible(t *testing.T) {
	opt := fastOptions(4)
	for _, name := range []string{"straggler", "kill", "skew"} {
		sc, err := LookupScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		a := sc.Steps(opt, rand.New(rand.NewSource(7)))
		b := sc.Steps(opt, rand.New(rand.NewSource(7)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different plans:\n%v\n%v", name, a, b)
		}
		differs := false
		for seed := int64(0); seed < 16 && !differs; seed++ {
			c := sc.Steps(opt, rand.New(rand.NewSource(seed)))
			differs = !reflect.DeepEqual(a, c)
		}
		if !differs {
			t.Fatalf("%s: plan ignores its seed", name)
		}
	}
}

// TestLookupScenario covers the registry lookups the CLI depends on.
func TestLookupScenario(t *testing.T) {
	if _, err := LookupScenario("uniform"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupScenario("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v", err)
	}
	names := map[string]bool{}
	for _, sc := range Scenarios() {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		names[sc.Name] = true
	}
	for _, want := range []string{"uniform", "burst", "skew", "joinleave", "straggler", "kill"} {
		if !names[want] {
			t.Fatalf("registry lacks %q (have %v)", want, names)
		}
	}
}

// startTestServer boots a run-scoped sync server on an ephemeral port
// and returns its base URL.
func startTestServer(t *testing.T) string {
	t.Helper()
	net, err := core.L(factor.Balanced(8, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	hub := syncsrv.NewHub(net)
	srv := syncsrv.NewServer(hub)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // test teardown
	})
	return srv.URL()
}

// TestWorkerProtocol drives one RunWorker directly over pipes against
// a live sync server: ready handshake, a deterministic TargetOps
// phase, then exit/bye.
func TestWorkerProtocol(t *testing.T) {
	srv := startTestServer(t)

	inR, inW := io.Pipe()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		// out is only read after done delivers, so the worker goroutine's
		// writes happen-before the reads.
		done <- RunWorker(context.Background(), inR, &out, WorkerOptions{ID: "w0", SyncURL: srv})
	}()

	spec := &PhaseSpec{Index: 0, Name: "solo", Parties: 1, Block: 2, TargetOps: 5, Duration: time.Second}
	send := func(c Command) {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inW.Write(append(data, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	send(Command{Op: "phase", Phase: spec})
	send(Command{Op: "exit"})
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var msgs []Message
	var obsMsgs []Message
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var m Message
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("undecodable %q: %v", line, err)
		}
		if m.Op == "obs" {
			// Snapshot streaming rides the same pipe; the control
			// protocol below is checked without it.
			obsMsgs = append(obsMsgs, m)
			continue
		}
		msgs = append(msgs, m)
	}
	if len(msgs) != 3 || msgs[0].Op != "ready" || msgs[1].Op != "record" || msgs[2].Op != "bye" {
		t.Fatalf("protocol = %+v", msgs)
	}
	// The end-of-phase snapshot always precedes the record; it must
	// describe this worker's draw traffic, tagged with its identity.
	if len(obsMsgs) == 0 {
		t.Fatal("worker sent no obs snapshots")
	}
	last := obsMsgs[len(obsMsgs)-1]
	if last.Snapshot == nil || last.PhaseIndex != 0 {
		t.Fatalf("obs message = %+v", last)
	}
	g := last.Snapshot.Group("worker")
	if g == nil || g.Origin != "w0" {
		t.Fatalf("obs snapshot group = %+v", g)
	}
	var draws int64
	for _, c := range g.Counters {
		if c.Name == "draws" {
			draws = c.Value
		}
	}
	if draws != 5 {
		t.Fatalf("obs snapshot draws = %d, want 5", draws)
	}
	// The bye line carries the flight dump: phase edges, barrier
	// arrivals, and one block lease per draw.
	flight := msgs[2].Flight
	if len(flight) == 0 {
		t.Fatal("bye carried no flight dump")
	}
	kinds := map[obs.FlightKind]int{}
	for _, e := range flight {
		kinds[e.Kind]++
	}
	if kinds[obs.FlightPhaseStart] != 1 || kinds[obs.FlightPhaseEnd] != 1 ||
		kinds[obs.FlightBlockLease] != 5 || kinds[obs.FlightBarrierArrive] != 2 {
		t.Fatalf("flight kind counts = %v", kinds)
	}
	rec := msgs[1].Record
	if rec == nil || rec.Ops != 5 || rec.ValuesDrawn != 10 || len(rec.Values) != 10 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Worker != "w0" || rec.Phase != "solo" {
		t.Fatalf("record identity = %+v", rec)
	}
	if err := CheckValues(8, rec.Values, 0); err != nil {
		t.Fatalf("solo worker values: %v", err)
	}
}

// TestWorkerRejectsBadOptions: a worker without identity or server
// must fail before touching the protocol.
func TestWorkerRejectsBadOptions(t *testing.T) {
	var out bytes.Buffer
	if err := RunWorker(context.Background(), strings.NewReader(""), &out, WorkerOptions{ID: "", SyncURL: "http://x"}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := RunWorker(context.Background(), strings.NewReader(""), &out, WorkerOptions{ID: "w0", SyncURL: ""}); err == nil {
		t.Fatal("empty sync URL accepted")
	}
}

// TestBarrierStateNames pins the phase state naming both sides of the
// protocol must agree on.
func TestBarrierStateNames(t *testing.T) {
	spec := PhaseSpec{Index: 2, Name: "crash"}
	if got := spec.startState(); got != BarrierState(2, "crash", "start") {
		t.Fatalf("startState = %q", got)
	}
	if got, want := BarrierState(2, "crash", "end"), "phase2:crash:end"; got != want {
		t.Fatalf("BarrierState = %q, want %q", got, want)
	}
}
