// Package harness is the multi-process traffic harness: a scenario
// plan runner that launches N worker processes, phase-synchronizes
// them through a syncsrv coordination server whose barrier runs on a
// counting network, injects faults (stragglers, node join/leave,
// worker kill with rejoin), and checks the counting invariants —
// step property and gap bounds — over the union of the values the
// workers actually drew across process boundaries.
//
// Runner and worker speak a line-oriented JSON protocol over the
// worker's stdin/stdout (one object per line), so any binary
// implementing the loop in RunWorker can serve as a worker; the
// shipped one is `countbench -worker`. See docs/TESTING.md, "Layer 6".
package harness

import (
	"strconv"
	"time"

	"countnet/internal/obs"
)

// PhaseSpec tells a worker how to run one measurement phase. The
// worker arrives at the phase's start barrier, draws value blocks from
// the sync server until the phase ends, arrives at the end barrier,
// and reports a PhaseRecord.
type PhaseSpec struct {
	// Index is the 0-based phase number within the run; it namespaces
	// the barrier states, so every phase synchronizes on fresh states.
	Index int `json:"index"`
	// Name labels the phase in records and barrier states.
	Name string `json:"name"`
	// Parties is the number of arrivals each phase barrier waits for —
	// every live worker, plus the runner standing in for workers it
	// killed mid-phase.
	Parties int `json:"parties"`
	// Duration bounds the draw loop (wall time between the barriers).
	// Ignored when TargetOps is set.
	Duration time.Duration `json:"duration"`
	// TargetOps, when positive, ends the loop after exactly that many
	// draw calls instead of after Duration.
	TargetOps int `json:"target_ops,omitempty"`
	// Block is the number of values leased per draw call.
	Block int `json:"block"`
	// Throttle injects a per-draw delay — the slow-node fault: a
	// straggler sleeps this long after every draw.
	Throttle time.Duration `json:"throttle,omitempty"`
	// DieAfterOps, when positive, injects a crash: after that many
	// draws the worker reports "dying" and freezes (never arriving at
	// the end barrier, never reporting the phase); the runner then
	// SIGKILLs the process and stands in at the end barrier.
	DieAfterOps int `json:"die_after_ops,omitempty"`
}

// startState and endState name the barrier states of a phase.
func (p *PhaseSpec) startState() string { return barrierState(p.Index, p.Name, "start") }
func (p *PhaseSpec) endState() string   { return barrierState(p.Index, p.Name, "end") }

// BarrierState builds the canonical barrier state name for phase index
// i named name at point ("start" or "end"). Exported for the runner's
// stand-in arrivals.
func BarrierState(i int, name, point string) string { return barrierState(i, name, point) }

func barrierState(i int, name, point string) string {
	return "phase" + strconv.Itoa(i) + ":" + name + ":" + point
}

// Command is one runner-to-worker line.
type Command struct {
	// Op is "phase" (run Phase) or "exit" (report bye and return).
	Op    string     `json:"op"`
	Phase *PhaseSpec `json:"phase,omitempty"`
}

// Message is one worker-to-runner line.
type Message struct {
	// Op is "ready" (registration done), "record" (phase finished,
	// Record set), "obs" (Snapshot set — a periodic or end-of-phase
	// observability report), "dying" (injected crash point reached;
	// Flight carries the recorder's last events), "bye" (exit
	// acknowledged; Flight set), or "error" (Err set; worker is
	// giving up).
	Op     string       `json:"op"`
	Worker string       `json:"worker"`
	Record *PhaseRecord `json:"record,omitempty"`
	// Snapshot is the worker's local obs registry state ("obs" lines).
	// PhaseIndex says which phase it describes; the runner merges
	// same-phase snapshots across workers into the fleet table.
	Snapshot   *obs.Snapshot `json:"snapshot,omitempty"`
	PhaseIndex int           `json:"phase_index,omitempty"`
	// Flight is the worker's flight-recorder dump, attached to dying
	// (forensics before the SIGKILL lands) and bye (final dump).
	Flight []obs.FlightEvent `json:"flight,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// PhaseRecord is one worker's measurement of one phase: the values it
// drew (the checker's evidence) and the per-draw latency/throughput
// summary (the benchmark lane's payload).
type PhaseRecord struct {
	Worker   string        `json:"worker"`
	Phase    string        `json:"phase"`
	Index    int           `json:"index"`
	Block    int           `json:"block"`
	Throttle time.Duration `json:"throttle,omitempty"`
	// Ops counts completed draw calls; ValuesDrawn = Ops * Block.
	Ops         int   `json:"ops"`
	ValuesDrawn int   `json:"values_drawn"`
	ElapsedNs   int64 `json:"elapsed_ns"`
	// StartGen/EndGen are the barrier generations observed (0 unless a
	// state is reused across generations).
	StartGen int64 `json:"start_gen"`
	EndGen   int64 `json:"end_gen"`
	// Draw-latency summary over the phase's draw calls, nanoseconds
	// per call (one call leases Block values).
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MaxNs  float64 `json:"max_ns"`
	// Values lists every value drawn, in draw order.
	Values []int64 `json:"values"`
}

// OpsPerSec returns the phase's values-per-second throughput.
func (r *PhaseRecord) OpsPerSec() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.ValuesDrawn) / (float64(r.ElapsedNs) / 1e9)
}
