package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"countnet/internal/obs"
)

// WorkerFile is the per-worker artifact a run leaves on disk: every
// phase record one worker produced, plus enough context (scenario,
// seed, width) to reproduce the run and re-check its values. The
// collector (`benchjson file...`) merges these into the
// BENCH_scenarios.json lane.
type WorkerFile struct {
	Worker   string        `json:"worker"`
	Scenario string        `json:"scenario"`
	Seed     int64         `json:"seed"`
	Width    int           `json:"width"`
	Lost     bool          `json:"lost,omitempty"` // killed mid-run
	Records  []PhaseRecord `json:"records"`
}

// WriteWorkerFile writes the artifact as indented JSON.
func WriteWorkerFile(path string, wf *WorkerFile) error {
	data, err := json.MarshalIndent(wf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FlightFile is the per-worker post-mortem artifact: the worker's
// flight-recorder dump (ordered fixed-size events — phase edges,
// barrier arrivals, block leases, epoch transitions) plus the run
// coordinates needed to line it up against the other workers' dumps.
// Written by RunResult.WriteFlightDumps when a kill scenario fires or
// the post-run oracle fails.
type FlightFile struct {
	Worker   string            `json:"worker"`
	Scenario string            `json:"scenario"`
	Seed     int64             `json:"seed"`
	Lost     bool              `json:"lost,omitempty"` // killed mid-run
	Events   []obs.FlightEvent `json:"events"`
}

// WriteFlightFile writes the dump as indented JSON.
func WriteFlightFile(path string, ff *FlightFile) error {
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFlightFile reads an artifact written by WriteFlightFile.
func ReadFlightFile(path string) (*FlightFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff FlightFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("harness: %s is not a flight dump file: %w", path, err)
	}
	return &ff, nil
}

// ReadWorkerFile reads an artifact written by WriteWorkerFile.
func ReadWorkerFile(path string) (*WorkerFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wf WorkerFile
	if err := json.Unmarshal(data, &wf); err != nil {
		return nil, fmt.Errorf("harness: %s is not a worker record file: %w", path, err)
	}
	return &wf, nil
}

// MergedRow is one line of the merged scenario table: a per-worker
// phase measurement, or a per-phase aggregate over all workers (the
// rows whose name ends in "/all").
type MergedRow struct {
	// Name is "scenario/pNN-phase/worker" (or ".../all"); the zero-
	// padded phase index pins lexicographic order to run order.
	Name string
	// NsPerOp is the mean draw latency in nanoseconds (ops-weighted
	// across workers for aggregate rows).
	NsPerOp float64
	// Extra carries ops, values, values_per_sec, p50_ns, p99_ns,
	// block, throttle_ns (workers instead of block/throttle for
	// aggregates).
	Extra map[string]float64
}

// MergeFiles reads worker record files and merges them into one
// deterministically ordered table: rows sorted by name, one row per
// (phase, worker) plus one "/all" aggregate per phase. The drawn
// values are summarized away — the merged table is the benchmark
// artifact; correctness checking happens against the raw files.
func MergeFiles(paths []string) ([]MergedRow, error) {
	var files []*WorkerFile
	for _, p := range paths {
		wf, err := ReadWorkerFile(p)
		if err != nil {
			return nil, err
		}
		files = append(files, wf)
	}
	return MergeWorkerFiles(files)
}

// MergeWorkerFiles is MergeFiles over already-loaded artifacts.
func MergeWorkerFiles(files []*WorkerFile) ([]MergedRow, error) {
	type agg struct {
		ops, values  float64
		latWeighted  float64 // sum of ops*mean
		valuesPerSec float64
		workers      int
	}
	var rows []MergedRow
	aggs := map[string]*agg{}
	for _, wf := range files {
		for i := range wf.Records {
			r := &wf.Records[i]
			base := fmt.Sprintf("%s/p%02d-%s", wf.Scenario, r.Index, r.Phase)
			rows = append(rows, MergedRow{
				Name:    base + "/" + r.Worker,
				NsPerOp: r.MeanNs,
				Extra: map[string]float64{
					"ops":            float64(r.Ops),
					"values":         float64(r.ValuesDrawn),
					"values_per_sec": r.OpsPerSec(),
					"p50_ns":         r.P50Ns,
					"p99_ns":         r.P99Ns,
					"block":          float64(r.Block),
					"throttle_ns":    float64(r.Throttle),
				},
			})
			a := aggs[base]
			if a == nil {
				a = &agg{}
				aggs[base] = a
			}
			a.ops += float64(r.Ops)
			a.values += float64(r.ValuesDrawn)
			a.latWeighted += float64(r.Ops) * r.MeanNs
			a.valuesPerSec += r.OpsPerSec()
			a.workers++
		}
	}
	for base, a := range aggs {
		mean := 0.0
		if a.ops > 0 {
			mean = a.latWeighted / a.ops
		}
		rows = append(rows, MergedRow{
			Name:    base + "/all",
			NsPerOp: mean,
			Extra: map[string]float64{
				"ops":            a.ops,
				"values":         a.values,
				"values_per_sec": a.valuesPerSec,
				"workers":        float64(a.workers),
			},
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	for i := 1; i < len(rows); i++ {
		if rows[i].Name == rows[i-1].Name {
			return nil, fmt.Errorf("harness: duplicate merged row %q (same worker file passed twice?)", rows[i].Name)
		}
	}
	return rows, nil
}
