package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleFiles() []*WorkerFile {
	rec := func(worker string, idx int, phase string, ops int, mean float64) PhaseRecord {
		return PhaseRecord{
			Worker: worker, Phase: phase, Index: idx, Block: 2,
			Ops: ops, ValuesDrawn: ops * 2,
			ElapsedNs: 1e9, MeanNs: mean,
		}
	}
	return []*WorkerFile{
		{Worker: "w0", Scenario: "demo", Seed: 7, Width: 4, Records: []PhaseRecord{
			rec("w0", 0, "warm", 10, 100),
			rec("w0", 1, "steady", 30, 200),
		}},
		{Worker: "w1", Scenario: "demo", Seed: 7, Width: 4, Records: []PhaseRecord{
			rec("w1", 0, "warm", 20, 400),
			rec("w1", 1, "steady", 10, 600),
		}},
	}
}

// TestMergeWorkerFilesDeterministic: row order is pinned by name, and
// input file order must not matter.
func TestMergeWorkerFilesDeterministic(t *testing.T) {
	files := sampleFiles()
	a, err := MergeWorkerFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeWorkerFiles([]*WorkerFile{files[1], files[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 || len(b) != 6 { // 2 phases x (2 workers + aggregate)
		t.Fatalf("merged %d and %d rows, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].NsPerOp != b[i].NsPerOp {
			t.Fatalf("row %d differs across input orders: %+v vs %+v", i, a[i], b[i])
		}
	}
	wantOrder := []string{
		"demo/p00-warm/all", "demo/p00-warm/w0", "demo/p00-warm/w1",
		"demo/p01-steady/all", "demo/p01-steady/w0", "demo/p01-steady/w1",
	}
	for i, want := range wantOrder {
		if a[i].Name != want {
			t.Fatalf("row %d = %q, want %q", i, a[i].Name, want)
		}
	}
}

// TestMergeAggregates: the "/all" row carries ops-weighted mean
// latency and the worker count.
func TestMergeAggregates(t *testing.T) {
	rows, err := MergeWorkerFiles(sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	var warm *MergedRow
	for i := range rows {
		if rows[i].Name == "demo/p00-warm/all" {
			warm = &rows[i]
		}
	}
	if warm == nil {
		t.Fatal("no warm aggregate row")
	}
	// (10*100 + 20*400) / 30 = 300.
	if warm.NsPerOp != 300 {
		t.Fatalf("aggregate mean = %v, want 300", warm.NsPerOp)
	}
	if warm.Extra["ops"] != 30 || warm.Extra["values"] != 60 || warm.Extra["workers"] != 2 {
		t.Fatalf("aggregate extras = %v", warm.Extra)
	}
}

// TestMergeRejectsDuplicates: the same worker file twice is a caller
// bug the merge must refuse, not silently double-count.
func TestMergeRejectsDuplicates(t *testing.T) {
	files := sampleFiles()
	if _, err := MergeWorkerFiles([]*WorkerFile{files[0], files[0]}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

// TestWorkerFileRoundTrip: write/read preserves the artifact.
func TestWorkerFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "worker-demo-w0.json")
	want := sampleFiles()[0]
	want.Lost = true
	want.Records[0].Values = []int64{0, 2, 4}
	if err := WriteWorkerFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != "w0" || !got.Lost || got.Seed != 7 || len(got.Records) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Records[0].Values) != 3 || got.Records[0].Values[1] != 2 {
		t.Fatalf("values lost in round trip: %+v", got.Records[0])
	}
	if _, err := ReadWorkerFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("absent file read")
	}
}
