package harness

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"countnet/internal/harness/syncsrv"
	"countnet/internal/stats"
)

// WorkerOptions configures one worker process (or in-process worker
// goroutine — the runner uses goroutines in unit tests and real
// processes everywhere else).
type WorkerOptions struct {
	// ID is the worker's identity at the sync server (e.g. "w0").
	ID string
	// SyncURL is the base URL of the syncsrv coordination server.
	SyncURL string
}

// RunWorker is the worker side of the harness protocol: register with
// the sync server, announce readiness, then execute one Command per
// line of in, writing one Message per event to out. It returns when an
// exit command arrives, when in closes, or when ctx is canceled. This
// is what `countbench -worker` runs.
func RunWorker(ctx context.Context, in io.Reader, out io.Writer, opt WorkerOptions) error {
	w := &worker{
		id:     opt.ID,
		client: syncsrv.NewClient(opt.SyncURL),
		enc:    json.NewEncoder(out),
	}
	if opt.ID == "" {
		return w.fail(fmt.Errorf("harness: worker needs an id"))
	}
	if opt.SyncURL == "" {
		return w.fail(fmt.Errorf("harness: worker needs a sync server URL"))
	}
	if _, err := w.client.Register(opt.ID); err != nil {
		return w.fail(err)
	}
	w.send(Message{Op: "ready", Worker: w.id})

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var cmd Command
		if err := json.Unmarshal(sc.Bytes(), &cmd); err != nil {
			return w.fail(fmt.Errorf("harness: bad command line: %v", err))
		}
		switch cmd.Op {
		case "phase":
			if cmd.Phase == nil {
				return w.fail(fmt.Errorf("harness: phase command without spec"))
			}
			rec, died, err := w.runPhase(ctx, cmd.Phase)
			if err != nil {
				return w.fail(err)
			}
			if died {
				// Injected crash: report the point of death and freeze
				// until killed (process workers) or canceled
				// (in-process workers). No record, no end barrier —
				// from the coordination system's point of view this
				// worker just vanished mid-phase.
				w.send(Message{Op: "dying", Worker: w.id})
				<-ctx.Done()
				return ctx.Err()
			}
			w.send(Message{Op: "record", Worker: w.id, Record: rec})
		case "exit":
			w.send(Message{Op: "bye", Worker: w.id})
			return nil
		default:
			return w.fail(fmt.Errorf("harness: unknown command op %q", cmd.Op))
		}
	}
	if err := sc.Err(); err != nil {
		return w.fail(err)
	}
	return nil
}

type worker struct {
	id     string
	client *syncsrv.Client
	enc    *json.Encoder
}

// runPhase executes one phase: start barrier, draw loop, end barrier.
// died reports that the injected crash point was reached (the end
// barrier was not taken and rec is nil).
func (w *worker) runPhase(ctx context.Context, p *PhaseSpec) (rec *PhaseRecord, died bool, err error) {
	if p.Block < 1 {
		p.Block = 1
	}
	startGen, err := w.client.Barrier(p.startState(), p.Parties)
	if err != nil {
		return nil, false, fmt.Errorf("harness: %s start barrier: %w", p.Name, err)
	}

	var (
		values   []int64
		latNs    []float64
		ops      int
		start    = time.Now()
		deadline = start.Add(p.Duration)
	)
	for ctx.Err() == nil {
		if p.TargetOps > 0 {
			if ops >= p.TargetOps {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		t0 := time.Now()
		vals, err := w.client.Draw(w.id, p.Block)
		if err != nil {
			return nil, false, fmt.Errorf("harness: %s draw: %w", p.Name, err)
		}
		latNs = append(latNs, float64(time.Since(t0).Nanoseconds()))
		values = append(values, vals...)
		ops++
		if p.DieAfterOps > 0 && ops >= p.DieAfterOps {
			return nil, true, nil
		}
		if p.Throttle > 0 {
			select {
			case <-time.After(p.Throttle):
			case <-ctx.Done():
			}
		}
	}
	elapsed := time.Since(start)

	endGen, err := w.client.Barrier(p.endState(), p.Parties)
	if err != nil {
		return nil, false, fmt.Errorf("harness: %s end barrier: %w", p.Name, err)
	}

	s := stats.Summarize(latNs)
	return &PhaseRecord{
		Worker:      w.id,
		Phase:       p.Name,
		Index:       p.Index,
		Block:       p.Block,
		Throttle:    p.Throttle,
		Ops:         ops,
		ValuesDrawn: len(values),
		ElapsedNs:   elapsed.Nanoseconds(),
		StartGen:    startGen,
		EndGen:      endGen,
		MeanNs:      s.Mean,
		P50Ns:       s.P50,
		P90Ns:       s.P90,
		P99Ns:       s.P99,
		MaxNs:       s.Max,
		Values:      values,
	}, false, nil
}

// send writes one protocol line; encoding errors surface on the next
// send or at exit (a dead runner pipe ends the worker anyway).
func (w *worker) send(m Message) { w.enc.Encode(m) } //nolint:errcheck

// fail reports the error on the protocol stream (so the runner sees
// it) and returns it (so the process exits nonzero).
func (w *worker) fail(err error) error {
	w.send(Message{Op: "error", Worker: w.id, Err: err.Error()})
	return err
}
