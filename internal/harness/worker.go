package harness

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"countnet/internal/harness/syncsrv"
	"countnet/internal/obs"
	"countnet/internal/stats"
)

// WorkerOptions configures one worker process (or in-process worker
// goroutine — the runner uses goroutines in unit tests and real
// processes everywhere else).
type WorkerOptions struct {
	// ID is the worker's identity at the sync server (e.g. "w0").
	ID string
	// SyncURL is the base URL of the syncsrv coordination server.
	SyncURL string
	// ObsEvery is the period of mid-phase "obs" snapshot lines
	// (default 50ms; negative disables periodic lines — the
	// end-of-phase snapshot is always sent).
	ObsEvery time.Duration
}

// DefaultObsEvery is the default mid-phase snapshot streaming period.
const DefaultObsEvery = 50 * time.Millisecond

// workerObs is the worker's own obs group: its draw traffic and
// latency, registered as group "worker" in the worker-local registry
// so every worker's contribution merges into one fleet group keyed by
// Origin.
type workerObs struct {
	draws  obs.PaddedCount
	values obs.PaddedCount
	phases obs.PaddedCount
	drawNs *obs.Hist
}

func newWorkerObs() *workerObs { return &workerObs{drawNs: obs.NewHist()} }

func (o *workerObs) GroupSnapshot() obs.GroupSnapshot {
	return obs.GroupSnapshot{
		Kind: "worker",
		Counters: []obs.Metric{
			{Name: "draws", Value: o.draws.Load()},
			{Name: "phases", Value: o.phases.Load()},
			{Name: "values", Value: o.values.Load()},
		},
		Hists: []obs.HistMetric{{Name: "draw_ns", Hist: o.drawNs.Snapshot()}},
	}
}

// RunWorker is the worker side of the harness protocol: register with
// the sync server, announce readiness, then execute one Command per
// line of in, writing one Message per event to out. It returns when an
// exit command arrives, when in closes, or when ctx is canceled. This
// is what `countbench -worker` runs.
func RunWorker(ctx context.Context, in io.Reader, out io.Writer, opt WorkerOptions) error {
	obsEvery := opt.ObsEvery
	if obsEvery == 0 {
		obsEvery = DefaultObsEvery
	}
	w := &worker{
		id:       opt.ID,
		client:   syncsrv.NewClient(opt.SyncURL),
		enc:      json.NewEncoder(out),
		reg:      obs.NewRegistry(),
		flight:   obs.NewFlightRecorder(obs.DefaultFlightSlots),
		wobs:     newWorkerObs(),
		obsEvery: obsEvery,
	}
	w.reg.Register("worker", w.wobs)
	if opt.ID == "" {
		return w.fail(fmt.Errorf("harness: worker needs an id"))
	}
	if opt.SyncURL == "" {
		return w.fail(fmt.Errorf("harness: worker needs a sync server URL"))
	}
	if _, err := w.client.Register(opt.ID); err != nil {
		return w.fail(err)
	}
	w.send(Message{Op: "ready", Worker: w.id})

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var cmd Command
		if err := json.Unmarshal(sc.Bytes(), &cmd); err != nil {
			return w.fail(fmt.Errorf("harness: bad command line: %v", err))
		}
		switch cmd.Op {
		case "phase":
			if cmd.Phase == nil {
				return w.fail(fmt.Errorf("harness: phase command without spec"))
			}
			rec, died, err := w.runPhase(ctx, cmd.Phase)
			if err != nil {
				return w.fail(err)
			}
			if died {
				// Injected crash: report the point of death and freeze
				// until killed (process workers) or canceled
				// (in-process workers). No record, no end barrier —
				// from the coordination system's point of view this
				// worker just vanished mid-phase. The flight dump rides
				// the dying line: the forensics leave the process
				// before the SIGKILL lands.
				w.send(Message{Op: "dying", Worker: w.id, Flight: w.flight.Dump()})
				<-ctx.Done()
				return ctx.Err()
			}
			w.sendObs(cmd.Phase.Index)
			w.send(Message{Op: "record", Worker: w.id, Record: rec})
		case "exit":
			w.send(Message{Op: "bye", Worker: w.id, Flight: w.flight.Dump()})
			return nil
		default:
			return w.fail(fmt.Errorf("harness: unknown command op %q", cmd.Op))
		}
	}
	if err := sc.Err(); err != nil {
		return w.fail(err)
	}
	return nil
}

type worker struct {
	id       string
	client   *syncsrv.Client
	enc      *json.Encoder
	reg      *obs.Registry
	flight   *obs.FlightRecorder
	wobs     *workerObs
	obsEvery time.Duration
	lastObs  time.Time
}

// sendObs ships the worker's current obs snapshot, tagged with its
// identity, as one "obs" protocol line for the given phase.
func (w *worker) sendObs(phase int) {
	s := w.reg.Snapshot()
	s.TagOrigin(w.id)
	w.send(Message{Op: "obs", Worker: w.id, Snapshot: &s, PhaseIndex: phase})
	w.lastObs = time.Now()
}

// runPhase executes one phase: start barrier, draw loop, end barrier.
// died reports that the injected crash point was reached (the end
// barrier was not taken and rec is nil).
func (w *worker) runPhase(ctx context.Context, p *PhaseSpec) (rec *PhaseRecord, died bool, err error) {
	if p.Block < 1 {
		p.Block = 1
	}
	w.flight.Record(obs.FlightPhaseStart, int64(p.Index), int64(p.Parties))
	startGen, err := w.client.Barrier(p.startState(), p.Parties)
	if err != nil {
		return nil, false, fmt.Errorf("harness: %s start barrier: %w", p.Name, err)
	}
	w.flight.Record(obs.FlightBarrierArrive, int64(p.Index), startGen)

	var (
		values   []int64
		latNs    []float64
		ops      int
		start    = time.Now()
		deadline = start.Add(p.Duration)
	)
	for ctx.Err() == nil {
		if p.TargetOps > 0 {
			if ops >= p.TargetOps {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		t0 := time.Now()
		vals, err := w.client.Draw(w.id, p.Block)
		if err != nil {
			return nil, false, fmt.Errorf("harness: %s draw: %w", p.Name, err)
		}
		drawNs := time.Since(t0).Nanoseconds()
		latNs = append(latNs, float64(drawNs))
		values = append(values, vals...)
		ops++
		w.flight.Record(obs.FlightBlockLease, vals[0], int64(len(vals)))
		w.wobs.draws.Inc()
		w.wobs.values.Add(int64(len(vals)))
		w.wobs.drawNs.Observe(drawNs)
		if w.obsEvery > 0 && time.Since(w.lastObs) >= w.obsEvery {
			w.sendObs(p.Index)
		}
		if p.DieAfterOps > 0 && ops >= p.DieAfterOps {
			w.flight.Record(obs.FlightPhaseEnd, int64(p.Index), int64(ops))
			return nil, true, nil
		}
		if p.Throttle > 0 {
			select {
			case <-time.After(p.Throttle):
			case <-ctx.Done():
			}
		}
	}
	elapsed := time.Since(start)
	w.flight.Record(obs.FlightPhaseEnd, int64(p.Index), int64(ops))
	w.wobs.phases.Inc()

	endGen, err := w.client.Barrier(p.endState(), p.Parties)
	if err != nil {
		return nil, false, fmt.Errorf("harness: %s end barrier: %w", p.Name, err)
	}
	w.flight.Record(obs.FlightBarrierArrive, int64(p.Index), endGen)

	s := stats.Summarize(latNs)
	return &PhaseRecord{
		Worker:      w.id,
		Phase:       p.Name,
		Index:       p.Index,
		Block:       p.Block,
		Throttle:    p.Throttle,
		Ops:         ops,
		ValuesDrawn: len(values),
		ElapsedNs:   elapsed.Nanoseconds(),
		StartGen:    startGen,
		EndGen:      endGen,
		MeanNs:      s.Mean,
		P50Ns:       s.P50,
		P90Ns:       s.P90,
		P99Ns:       s.P99,
		MaxNs:       s.Max,
		Values:      values,
	}, false, nil
}

// send writes one protocol line; encoding errors surface on the next
// send or at exit (a dead runner pipe ends the worker anyway).
func (w *worker) send(m Message) { w.enc.Encode(m) } //nolint:errcheck

// fail reports the error on the protocol stream (so the runner sees
// it) and returns it (so the process exits nonzero).
func (w *worker) fail(err error) error {
	w.send(Message{Op: "error", Worker: w.id, Err: err.Error()})
	return err
}
