// Package optnet embeds verified small-width sorting networks — the
// comparator sequences behind the generated compare-exchange kernels
// (internal/runner zkernels.go) and the optimal-base variants of the
// paper's constructions (core.KOpt/LOpt/ROpt).
//
// Each entry lists a width-w comparator network grouped into parallel
// layers, together with its size (comparator count), depth (layer
// count) and provenance. Widths 2–8 are at the proven-optimal depth
// AND size; width 9 matches the best-known joint size/depth point
// (25 comparators, depth 7); widths 10–16 are within one layer of the
// proven depth optimum at or near the best-known size (the proven
// depth optima for 9–16 are those of
// Bundala & Závodný, "Optimal Sorting Networks", arXiv:1310.6271; the
// joint size/depth frontier is surveyed by Fonollosa,
// arXiv:1806.00305). Every entry is verified exhaustively against the
// 0-1 principle — all 2^w binary patterns — by Verify, which the
// kernel generator (cmd/kernelgen) and the package tests both run, so
// an entry that sorts incorrectly or whose declared metadata drifts
// from its layers cannot ship.
//
// Comparators follow the repository's step-property orientation: a
// compare-exchange on channels (A, B) with A < B routes the LARGER
// value to channel A, so a full network leaves channel 0 holding the
// maximum — the descending order produced by every gate in package
// runner and the ordering in which counting-network outputs satisfy
// the step property.
package optnet

import (
	"fmt"
	"sort"
)

// MinWidth and MaxWidth bound the embedded table: For(w) succeeds
// exactly for MinWidth <= w <= MaxWidth.
const (
	MinWidth = 2
	MaxWidth = 16
)

// Comparator is one compare-exchange between channels A < B. Executed
// descending: A receives max, B receives min.
type Comparator struct {
	A, B int
}

// Network is one embedded comparator network.
type Network struct {
	// Width is the number of channels.
	Width int
	// Size is the total comparator count; always equals the sum of
	// the layer lengths (asserted by Verify).
	Size int
	// Depth is the layer count; always equals len(Layers) and the
	// recomputed earliest-legal layering depth (asserted by Verify).
	Depth int
	// OptimalDepth is the proven minimal depth for any sorting
	// network of this width (Bundala & Závodný for 9–16, classical
	// results below). Depth == OptimalDepth for widths 2–9.
	OptimalDepth int
	// Source records provenance of the comparator list.
	Source string
	// Layers groups the comparators into parallel layers: within one
	// layer no channel is touched twice.
	Layers [][]Comparator
}

// For returns the embedded network of the given width, or false when
// the width is outside [MinWidth, MaxWidth].
func For(width int) (*Network, bool) {
	if width < MinWidth || width > MaxWidth {
		return nil, false
	}
	return &table[width-MinWidth], true
}

// Comparators returns the flattened comparator sequence, layer by
// layer. The returned slice is fresh; callers may mutate it.
func (n *Network) Comparators() []Comparator {
	out := make([]Comparator, 0, n.Size)
	for _, l := range n.Layers {
		out = append(out, l...)
	}
	return out
}

// ApplyDesc runs the network over vals (len == Width) in place,
// sorting descending: vals[0] ends with the maximum.
func (n *Network) ApplyDesc(vals []int64) {
	for _, l := range n.Layers {
		for _, c := range l {
			a, b := vals[c.A], vals[c.B]
			if a < b {
				vals[c.A], vals[c.B] = b, a
			}
		}
	}
}

// Verify checks the entry end to end: structural soundness (channel
// ranges, A < B, no channel touched twice within a layer), declared
// metadata (Size and Depth against the layers, with the layering
// confirmed maximally compact by recomputing earliest-legal layers),
// and full 0-1 correctness — all 2^Width binary patterns sort
// descending, which by the 0-1 principle proves the network sorts
// every input. It returns the first violation found, or nil.
func (n *Network) Verify() error {
	if n.Width < 2 || n.Width > 31 {
		return fmt.Errorf("optnet: width %d out of range", n.Width)
	}
	size := 0
	chDepth := make([]int, n.Width)
	for li, layer := range n.Layers {
		seen := make(map[int]bool, 2*len(layer))
		for _, c := range layer {
			if c.A < 0 || c.B >= n.Width || c.A >= c.B {
				return fmt.Errorf("optnet: width %d layer %d: bad comparator (%d,%d)", n.Width, li, c.A, c.B)
			}
			if seen[c.A] || seen[c.B] {
				return fmt.Errorf("optnet: width %d layer %d: channel reused by (%d,%d)", n.Width, li, c.A, c.B)
			}
			seen[c.A], seen[c.B] = true, true
			// Earliest legal layer for this comparator given the
			// channels' previous use; a smaller value means the
			// declared layering is not maximally compacted.
			el := chDepth[c.A]
			if chDepth[c.B] > el {
				el = chDepth[c.B]
			}
			if el != li {
				return fmt.Errorf("optnet: width %d layer %d: comparator (%d,%d) schedulable at layer %d", n.Width, li, c.A, c.B, el)
			}
			chDepth[c.A], chDepth[c.B] = li+1, li+1
			size++
		}
	}
	if size != n.Size {
		return fmt.Errorf("optnet: width %d declares size %d, layers hold %d", n.Width, n.Size, size)
	}
	if len(n.Layers) != n.Depth {
		return fmt.Errorf("optnet: width %d declares depth %d, has %d layers", n.Width, n.Depth, len(n.Layers))
	}
	if n.Depth < n.OptimalDepth {
		return fmt.Errorf("optnet: width %d declares depth %d below the proven optimum %d", n.Width, n.Depth, n.OptimalDepth)
	}
	vals := make([]int64, n.Width)
	for pat := 0; pat < 1<<n.Width; pat++ {
		ones := 0
		for i := range vals {
			vals[i] = int64(pat>>i) & 1
			ones += int(vals[i])
		}
		n.ApplyDesc(vals)
		for i, v := range vals {
			want := int64(0)
			if i < ones {
				want = 1
			}
			if v != want {
				return fmt.Errorf("optnet: width %d fails 0-1 pattern %#x at position %d", n.Width, pat, i)
			}
		}
	}
	return nil
}

// VerifyAll verifies every embedded width and returns the first
// failure, or nil.
func VerifyAll() error {
	for w := MinWidth; w <= MaxWidth; w++ {
		n, _ := For(w)
		if err := n.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Widths lists the embedded widths in increasing order.
func Widths() []int {
	out := make([]int, 0, MaxWidth-MinWidth+1)
	for w := MinWidth; w <= MaxWidth; w++ {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
