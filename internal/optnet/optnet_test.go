package optnet

import (
	"math/rand"
	"sort"
	"testing"
)

// TestVerifyAll is the table's own gate: every embedded width passes
// structural checks, declared-metadata checks, the earliest-legal
// layering check and the exhaustive 2^w 0-1 sweep.
func TestVerifyAll(t *testing.T) {
	if err := VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestTableMetadata pins the size/depth/optimal-depth triple of every
// width: a silent table edit that changes any of them must show up in
// review as a test diff, not only as regenerated kernels.
func TestTableMetadata(t *testing.T) {
	want := map[int][3]int{ // width -> {size, depth, optimal depth}
		2:  {1, 1, 1},
		3:  {3, 3, 3},
		4:  {5, 3, 3},
		5:  {9, 5, 5},
		6:  {12, 5, 5},
		7:  {16, 6, 6},
		8:  {19, 6, 6},
		9:  {25, 7, 7},
		10: {29, 8, 7},
		11: {37, 9, 8},
		12: {41, 9, 8},
		13: {46, 10, 9},
		14: {51, 10, 9},
		15: {56, 10, 9},
		16: {60, 10, 9},
	}
	for w := MinWidth; w <= MaxWidth; w++ {
		n, ok := For(w)
		if !ok {
			t.Fatalf("For(%d) missing", w)
		}
		if n.Width != w {
			t.Fatalf("For(%d) returned width %d", w, n.Width)
		}
		got := [3]int{n.Size, n.Depth, n.OptimalDepth}
		if got != want[w] {
			t.Errorf("width %d: size/depth/opt = %v, want %v", w, got, want[w])
		}
		if n.Source == "" {
			t.Errorf("width %d: empty Source", w)
		}
	}
	if _, ok := For(MinWidth - 1); ok {
		t.Error("For(1) should fail")
	}
	if _, ok := For(MaxWidth + 1); ok {
		t.Error("For(17) should fail")
	}
}

// TestComparatorsFlatten checks Comparators returns the layers in
// order and with the declared size.
func TestComparatorsFlatten(t *testing.T) {
	for w := MinWidth; w <= MaxWidth; w++ {
		n, _ := For(w)
		flat := n.Comparators()
		if len(flat) != n.Size {
			t.Fatalf("width %d: %d flattened comparators, size %d", w, len(flat), n.Size)
		}
		i := 0
		for _, l := range n.Layers {
			for _, c := range l {
				if flat[i] != c {
					t.Fatalf("width %d: flattened comparator %d = %v, want %v", w, i, flat[i], c)
				}
				i++
			}
		}
	}
}

// TestApplyDescRandom cross-checks the reference executor against
// sort.Slice on arbitrary (non-0-1) inputs, including duplicates.
func TestApplyDescRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for w := MinWidth; w <= MaxWidth; w++ {
		n, _ := For(w)
		for trial := 0; trial < 200; trial++ {
			vals := make([]int64, w)
			for i := range vals {
				vals[i] = int64(rng.Intn(8)) // small range forces duplicates
			}
			want := append([]int64(nil), vals...)
			sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
			n.ApplyDesc(vals)
			for i := range vals {
				if vals[i] != want[i] {
					t.Fatalf("width %d trial %d: got %v want %v", w, trial, vals, want)
				}
			}
		}
	}
}

// TestVerifyCatchesCorruption mutates copies of table entries and
// checks Verify rejects each corruption class.
func TestVerifyCatchesCorruption(t *testing.T) {
	base, _ := For(8)
	clone := func() *Network {
		c := *base
		c.Layers = make([][]Comparator, len(base.Layers))
		for i, l := range base.Layers {
			c.Layers[i] = append([]Comparator(nil), l...)
		}
		return &c
	}

	n := clone()
	n.Layers[2][0] = Comparator{3, 1} // A >= B
	if n.Verify() == nil {
		t.Error("inverted comparator not caught")
	}

	n = clone()
	n.Layers[0] = append(n.Layers[0], Comparator{0, 1}) // channel reuse in layer
	if n.Verify() == nil {
		t.Error("in-layer channel reuse not caught")
	}

	n = clone()
	n.Layers[len(n.Layers)-1] = n.Layers[len(n.Layers)-1][:1] // drop comparators
	if n.Verify() == nil {
		t.Error("size drift not caught")
	}

	n = clone()
	// Append a redundant layer: the extra comparator is schedulable
	// earlier than its declared layer (channels 0 and 7 are idle
	// after layer 3), so the compaction check must reject it.
	n.Layers = append(n.Layers, []Comparator{{0, 7}})
	n.Size++
	n.Depth++
	if n.Verify() == nil {
		t.Error("non-compact layering not caught")
	}
}

func TestWidths(t *testing.T) {
	ws := Widths()
	if len(ws) != MaxWidth-MinWidth+1 || ws[0] != MinWidth || ws[len(ws)-1] != MaxWidth {
		t.Fatalf("Widths() = %v", ws)
	}
}
