package optnet

// The embedded table. Layer lists use the ascending (A,B) A<B form;
// execution (ApplyDesc, the generated kernels, the construction-layer
// bases) routes max to A, giving the repository's descending/step
// orientation.
//
// Provenance, by width:
//
//   - 2–4: the classical optimal networks (Knuth, TAOCP vol. 3,
//     section 5.3.4); optimal in both size and depth.
//   - 5–8: best-known networks achieving optimal size AND depth
//     (Knuth, TAOCP vol. 3, Fig. 47/49 family); depth optimality for
//     these widths is classical.
//   - 9: 25-comparator, depth-7 network — the joint size/depth
//     optimum (depth optimality: Bundala & Závodný, arXiv:1310.6271;
//     joint frontier: Fonollosa, arXiv:1806.00305).
//   - 10: 29-comparator, depth-8 network found by in-repo local
//     search (hill-climbing over exhaustively verified candidates);
//     matches the optimal size, one layer above the proven depth
//     optimum of 7.
//   - 11–15: networks derived from Green's 16-channel sorter by
//     repeated last-channel deletion (deleting every comparator on
//     the top channel of an n-sorter leaves an (n-1)-sorter) followed
//     by local-search compaction; all exhaustively verified.
//   - 16: Green's 60-comparator sorter (Green 1969; Knuth, TAOCP
//     vol. 3, Fig. 49), depth 10 — still the best-known size; the
//     proven depth optimum is 9 (Bundala & Závodný).
//
// Every entry is re-verified exhaustively (all 2^w binary patterns)
// by Verify; see optnet_test.go and cmd/kernelgen.
var table = [MaxWidth - MinWidth + 1]Network{
	{
		Width: 2, Size: 1, Depth: 1, OptimalDepth: 1,
		Source: "trivial",
		Layers: [][]Comparator{
			{{0, 1}},
		},
	},
	{
		Width: 3, Size: 3, Depth: 3, OptimalDepth: 3,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 1}},
			{{1, 2}},
			{{0, 1}},
		},
	},
	{
		Width: 4, Size: 5, Depth: 3, OptimalDepth: 3,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}},
			{{0, 2}, {1, 3}},
			{{1, 2}},
		},
	},
	{
		Width: 5, Size: 9, Depth: 5, OptimalDepth: 5,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 3}, {1, 4}},
			{{0, 2}, {1, 3}},
			{{0, 1}, {2, 4}},
			{{1, 2}, {3, 4}},
			{{2, 3}},
		},
	},
	{
		Width: 6, Size: 12, Depth: 5, OptimalDepth: 5,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 5}, {1, 3}, {2, 4}},
			{{1, 2}, {3, 4}},
			{{0, 3}, {2, 5}},
			{{0, 1}, {2, 3}, {4, 5}},
			{{1, 2}, {3, 4}},
		},
	},
	{
		Width: 7, Size: 16, Depth: 6, OptimalDepth: 6,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 6}, {2, 3}, {4, 5}},
			{{0, 2}, {1, 4}, {3, 6}},
			{{0, 1}, {2, 5}, {3, 4}},
			{{1, 2}, {4, 6}},
			{{2, 3}, {4, 5}},
			{{1, 2}, {3, 4}, {5, 6}},
		},
	},
	{
		Width: 8, Size: 19, Depth: 6, OptimalDepth: 6,
		Source: "Knuth TAOCP 5.3.4 (optimal size and depth)",
		Layers: [][]Comparator{
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}},
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
			{{2, 4}, {3, 5}},
			{{1, 4}, {3, 6}},
			{{1, 2}, {3, 4}, {5, 6}},
		},
	},
	{
		Width: 9, Size: 25, Depth: 7, OptimalDepth: 7,
		Source: "joint size/depth optimum (Bundala-Zavodny arXiv:1310.6271; Fonollosa arXiv:1806.00305)",
		Layers: [][]Comparator{
			{{0, 3}, {1, 7}, {2, 5}, {4, 8}},
			{{0, 7}, {2, 4}, {3, 8}, {5, 6}},
			{{0, 2}, {1, 3}, {4, 5}, {7, 8}},
			{{1, 4}, {3, 6}, {5, 7}},
			{{0, 1}, {2, 4}, {3, 5}, {6, 8}},
			{{2, 3}, {4, 5}, {6, 7}},
			{{1, 2}, {3, 4}, {5, 6}},
		},
	},
	{
		Width: 10, Size: 29, Depth: 8, OptimalDepth: 7,
		Source: "in-repo local search, optimal size (proven depth optimum 7: Bundala-Zavodny)",
		Layers: [][]Comparator{
			{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}},
			{{0, 3}, {1, 4}, {5, 8}, {7, 9}},
			{{0, 2}, {5, 7}, {6, 9}},
			{{0, 1}, {2, 4}, {3, 6}, {8, 9}},
			{{1, 2}, {3, 5}, {4, 6}, {7, 8}},
			{{1, 3}, {2, 5}, {4, 7}, {6, 8}},
			{{2, 3}, {4, 5}, {6, 7}},
			{{3, 4}, {5, 6}},
		},
	},
	{
		Width: 11, Size: 37, Depth: 9, OptimalDepth: 8,
		Source: "in-repo depth-targeted search (depth 9, one above the proven optimum 8; best-known size is 35)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}},
			{{0, 8}, {1, 9}, {2, 10}},
			{{1, 2}, {4, 8}, {5, 10}, {6, 9}},
			{{1, 4}, {3, 8}, {5, 6}, {7, 9}},
			{{2, 4}, {3, 5}, {6, 10}, {7, 8}},
			{{2, 3}, {4, 5}, {6, 7}, {8, 10}},
			{{3, 4}, {5, 6}, {7, 8}, {9, 10}},
		},
	},
	{
		Width: 12, Size: 41, Depth: 9, OptimalDepth: 8,
		Source: "in-repo depth-targeted search (depth 9, one above the proven optimum 8; best-known size is 39)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}},
			{{0, 8}, {1, 9}, {2, 10}, {3, 11}},
			{{1, 2}, {4, 8}, {5, 10}, {6, 9}, {7, 11}},
			{{2, 4}, {3, 8}, {5, 6}, {9, 10}},
			{{1, 2}, {3, 4}, {6, 8}, {7, 9}},
			{{2, 3}, {4, 5}, {6, 7}, {8, 10}},
			{{3, 4}, {5, 6}, {7, 8}, {9, 10}},
		},
	},
	{
		Width: 13, Size: 46, Depth: 10, OptimalDepth: 9,
		Source: "Green-16 channel deletion + local-search compaction (proven depth optimum 9)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}},
			{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}},
			{{1, 2}, {3, 12}, {4, 8}, {5, 10}, {6, 9}, {7, 11}},
			{{1, 4}, {2, 8}, {5, 6}, {7, 12}, {9, 10}},
			{{2, 4}, {3, 8}, {7, 9}, {10, 12}},
			{{3, 5}, {6, 8}, {9, 10}, {11, 12}},
			{{3, 4}, {5, 6}, {7, 8}},
			{{6, 7}, {8, 9}},
		},
	},
	{
		Width: 14, Size: 51, Depth: 10, OptimalDepth: 9,
		Source: "Green-16 channel deletion + local-search compaction (proven depth optimum 9)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}, {9, 13}},
			{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}},
			{{1, 2}, {3, 12}, {4, 8}, {5, 10}, {6, 9}, {7, 11}},
			{{1, 4}, {2, 8}, {5, 6}, {7, 13}, {9, 10}},
			{{2, 4}, {3, 8}, {7, 12}, {11, 13}},
			{{3, 5}, {6, 8}, {7, 9}, {10, 12}},
			{{3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
			{{6, 7}, {8, 9}},
		},
	},
	{
		Width: 15, Size: 56, Depth: 10, OptimalDepth: 9,
		Source: "Green-16 channel deletion + local-search compaction (proven depth optimum 9)",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}, {12, 14}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}, {9, 13}, {10, 14}},
			{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}},
			{{1, 2}, {3, 12}, {4, 8}, {5, 10}, {6, 9}, {7, 11}, {13, 14}},
			{{1, 4}, {2, 8}, {5, 6}, {7, 13}, {9, 10}, {11, 14}},
			{{2, 4}, {3, 8}, {7, 12}, {11, 13}},
			{{3, 5}, {6, 8}, {7, 9}, {10, 12}},
			{{3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
			{{6, 7}, {8, 9}},
		},
	},
	{
		Width: 16, Size: 60, Depth: 10, OptimalDepth: 9,
		Source: "Green 1969 (Knuth TAOCP Fig. 49); best-known size 60, proven depth optimum 9",
		Layers: [][]Comparator{
			{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}, {14, 15}},
			{{0, 2}, {1, 3}, {4, 6}, {5, 7}, {8, 10}, {9, 11}, {12, 14}, {13, 15}},
			{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}, {9, 13}, {10, 14}, {11, 15}},
			{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}, {7, 15}},
			{{1, 2}, {3, 12}, {4, 8}, {5, 10}, {6, 9}, {7, 11}, {13, 14}},
			{{1, 4}, {2, 8}, {5, 6}, {7, 13}, {9, 10}, {11, 14}},
			{{2, 4}, {3, 8}, {7, 12}, {11, 13}},
			{{3, 5}, {6, 8}, {7, 9}, {10, 12}},
			{{3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
			{{6, 7}, {8, 9}},
		},
	},
}
