package counter

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/runner"
)

// CombiningCounter is a Fetch&Increment counter that flat-combines over
// a counting network: instead of every goroutine shepherding its own
// token through the balancers (one contended RMW per gate per token),
// goroutines publish requests to padded per-handle slots and whichever
// of them holds the combiner lock drains all pending requests, pushes
// them through the network as ONE batch (runner.TraverseBatch — a
// single fetch-and-add per touched gate), claims a value range from
// each exit wire's local counter with one Add(k), and distributes the
// claimed blocks back to the waiters. Under contention the per-token
// cost drops from O(depth) contended RMWs to an amortized O(gates /
// batch) uncontended ones.
//
// The combined batch is one legal execution of its tokens (see the
// batching argument in runner/batch.go), so the counter keeps the
// NetworkCounter contract: values are distinct always, and exactly
// 0..N-1 once quiescent — whether requests arrive one value at a time
// (Next) or in blocks (NextBlock).
type CombiningCounter struct {
	async   *runner.Async
	width   int64
	locals  []padded
	slots   atomic.Pointer[[]*combineSlot] // registered handles, copy-on-write
	regMu   sync.Mutex                     // guards slot registration
	combine sync.Mutex                     // combiner lock; guards the fields below
	cursor  int                            // next entry wire for round-robin injection
	entry   []int64                        // scratch: per-wire entry counts
	exits   []int64                        // scratch: per-position exit counts
	scratch *runner.BatchScratch
	pending []*combineSlot // scratch: slots drained this pass
	vals    []int64        // scratch: values minted this pass

	// watch is the observability hook, nil unless EnableObs was called;
	// the combine pass and the handle spin loop pay one nil-check each
	// when disabled.
	watch *obs.CombineObs

	// hookHeld is the cooperative combiner lock for controlled runs:
	// hooked passes cannot take c.combine across yield points (a sched
	// ready() predicate must be side-effect free, so TryLock is out),
	// so they park on this flag via Yield.Block instead. Never mixed
	// with the production lock within one controlled run.
	hookHeld bool
}

// slot states. Only the owning handle moves idle->pending and
// done->idle; only a combiner holding the lock moves pending->done.
const (
	slotIdle int32 = iota
	slotPending
	slotDone
)

// combineSlot is one handle's request mailbox, padded so no two slots
// (nor a slot and its neighbours' traffic) share a cache line. The
// owner fills buf and n, publishes with state; the combiner writes n
// values into buf before flipping state to done.
//
//netvet:padalign 128
type combineSlot struct {
	state atomic.Int32
	n     int32   // values requested
	buf   []int64 // owner-provided destination, len >= n
	one   [1]int64
	_     [128 - 40]byte
}

// NewCombiningCounter builds a combining counter over the given
// counting network.
func NewCombiningCounter(net *network.Network) *CombiningCounter {
	a := runner.Compile(net)
	c := &CombiningCounter{
		async:   a,
		width:   int64(net.Width()),
		locals:  make([]padded, net.Width()),
		entry:   make([]int64, net.Width()),
		exits:   make([]int64, net.Width()),
		scratch: a.NewBatchScratch(),
	}
	empty := []*combineSlot{}
	c.slots.Store(&empty)
	return c
}

// Width returns the width of the underlying network.
func (c *CombiningCounter) Width() int { return int(c.width) }

// EnableObs attaches observability under the given group name and
// registers it with r (obs.Default when nil). Idempotent; call before
// the counter sees concurrent traffic. When enabled, each combine pass
// records its queue depth, values served and latency, handles count
// their spin retries, and the underlying network records per-gate
// token counts and batch sizes.
func (c *CombiningCounter) EnableObs(name string, r *obs.Registry) *obs.CombineObs {
	if c.watch == nil {
		c.watch = obs.NewCombineObs(name, c.async.EnableObs(name))
	}
	if r == nil {
		r = obs.Default
	}
	r.Register(name, c.watch)
	return c.watch
}

// Next issues one value. Prefer Handle in concurrent loops: a direct
// Next always blocks on the combiner lock, while handles publish their
// request and let whichever goroutine holds the lock serve it.
func (c *CombiningCounter) Next() int64 {
	var one [1]int64
	c.NextBlock(one[:])
	return one[0]
}

// NextBlock fills dst with len(dst) fresh values in one combined pass.
func (c *CombiningCounter) NextBlock(dst []int64) {
	if len(dst) == 0 {
		return
	}
	c.combine.Lock()
	c.combineLocked(dst)
	c.combine.Unlock()
}

// Handle returns a goroutine-local view backed by a freshly registered
// combining slot. Handles must not be shared between goroutines; id is
// accepted for symmetry with NetworkCounter.Handle and does not affect
// behaviour. Each call permanently registers one slot, so create one
// handle per worker, not one per operation.
func (c *CombiningCounter) Handle(id int) Counter {
	s := &combineSlot{}
	c.regMu.Lock()
	old := *c.slots.Load()
	next := make([]*combineSlot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	c.slots.Store(&next)
	c.regMu.Unlock()
	return &CombiningHandle{c: c, slot: s}
}

// CombiningHandle is a single-goroutine view of a CombiningCounter.
type CombiningHandle struct {
	c    *CombiningCounter
	slot *combineSlot
}

// Next issues one value.
//
//netvet:hotpath
func (h *CombiningHandle) Next() int64 {
	s := h.slot
	s.n = 1
	s.buf = s.one[:]
	h.await()
	return s.one[0]
}

// NextBlock fills dst with len(dst) fresh values. The whole block is
// claimed by one combined pass, amortizing the network traversal over
// every value the pass serves.
//
//netvet:hotpath
func (h *CombiningHandle) NextBlock(dst []int64) {
	if len(dst) == 0 {
		return
	}
	s := h.slot
	s.n = int32(len(dst))
	s.buf = dst
	h.await()
}

// await publishes the prepared request and blocks until it is served —
// by this goroutine becoming the combiner, or by another combiner
// draining the slot.
//
//netvet:hotpath
func (h *CombiningHandle) await() {
	s, c := h.slot, h.c
	o := c.watch
	s.state.Store(slotPending)
	for {
		if c.combine.TryLock() {
			// We are the combiner. combineLocked serves every pending
			// slot it finds; ours is pending (or was just served by the
			// previous combiner, in which case it is done and skipped).
			if s.state.Load() == slotPending {
				c.combineLocked(nil)
			}
			c.combine.Unlock()
		}
		if s.state.Load() == slotDone {
			s.state.Store(slotIdle)
			return
		}
		// Another combiner holds the lock but had already collected its
		// batch before our publish. Yield and retry.
		if o != nil {
			o.SpinRetries.Inc()
		}
		// Production-only spin; controlled runs use the hooked paths,
		// which park via Yield.Block instead of spinning.
		//netvet:allow gosched
		runtime.Gosched()
	}
}

// NextBlockHooked fills dst with len(dst) fresh values under schedule
// instrumentation: the combiner lock becomes a cooperative flag parked
// on via block, and the batch traversal and per-exit claims yield
// before every shared atomic step. Hooked passes serve only their own
// request (no slot draining — controlled runs drive each goroutine's
// demand directly), which is still one legal execution of the batch.
// For package sched; do not mix with unhooked calls in a controlled
// run.
func (c *CombiningCounter) NextBlockHooked(dst []int64, yield func(op string), block func(op string, ready func() bool)) {
	if len(dst) == 0 {
		return
	}
	block("combine lock", func() bool { return !c.hookHeld })
	c.hookHeld = true
	// Round-robin injection from the cursor, as in combineLocked.
	w := int(c.width)
	for i := range c.entry {
		c.entry[i] = 0
	}
	n, q := c.cursor, int64(len(dst))
	if q >= int64(w) {
		for i := range c.entry {
			c.entry[i] += q / int64(w)
		}
		q %= int64(w)
	}
	for ; q > 0; q-- {
		c.entry[n]++
		n++
		if n == w {
			n = 0
		}
	}
	c.cursor = n
	out := c.async.TraverseBatchHooked(c.entry, yield)
	i := 0
	for pos, k := range out {
		if k == 0 {
			continue
		}
		yield(fmt.Sprintf("local claim %d", pos))
		base := c.locals[pos].v.Add(k) - k
		for m := int64(0); m < k; m++ {
			dst[i] = (base+m)*c.width + int64(pos)
			i++
		}
	}
	c.hookHeld = false
}

// issued returns the number of values handed out (see
// NetworkCounter.issued), exact at quiescence.
func (c *CombiningCounter) issued() int64 {
	var n int64
	for i := range c.locals {
		n += c.locals[i].v.Load()
	}
	return n
}

// combineLocked drains every pending slot plus the combiner's own
// direct request (extra, nil for handle-driven passes), pushes the
// whole demand through the network as one batch, and distributes the
// minted values. Caller must hold c.combine.
//
//netvet:hotpath
func (c *CombiningCounter) combineLocked(extra []int64) {
	// Observability is woven into this one body (unlike Traverse's
	// split) because a pass already amortizes a whole batch traversal:
	// the nil-checks below are noise next to the work they guard.
	o := c.watch
	var start int64
	if o != nil {
		start = obs.Now()
	}
	pend := c.pending[:0]
	total := int64(len(extra))
	for _, s := range *c.slots.Load() {
		if s.state.Load() == slotPending {
			//netvet:allow append -- grows into c.pending's scratch backing; amortized to zero once the slot set stabilizes
			pend = append(pend, s)
			total += int64(s.n)
		}
	}
	if total == 0 {
		c.pending = pend
		return
	}
	var region *obs.TraceRegion
	if o != nil {
		o.Passes.Inc()
		o.PassQueue.Observe(int64(len(pend)))
		o.PassServed.Observe(total)
		// The region and clock close explicitly at the bottom of the
		// pass (control flow past this point is straight-line), so the
		// sample covers the full pass without a defer on the hot path.
		//netvet:allow escape -- context.Background's zero-size boxing at trace.StartRegion; no runtime allocation (BenchmarkObsOverhead alloc guard)
		region = obs.Region("countnet.combine-pass")
	}
	// Inject the batch round-robin from the entry cursor. The counting
	// property holds for any distribution of tokens over input wires,
	// so the cursor only spreads load, it does not affect correctness.
	w := int(c.width)
	for i := range c.entry {
		c.entry[i] = 0
	}
	n, q := c.cursor, total
	if q >= int64(w) {
		for i := range c.entry {
			c.entry[i] += q / int64(w)
		}
		q %= int64(w)
	}
	for ; q > 0; q-- {
		c.entry[n]++
		n++
		if n == w {
			n = 0
		}
	}
	c.cursor = n
	c.async.TraverseBatchInto(c.exits, c.entry, c.scratch)
	// Claim one value range per touched exit wire and mint the values.
	vals := c.vals[:0]
	for pos, k := range c.exits {
		if k == 0 {
			continue
		}
		base := c.locals[pos].v.Add(k) - k
		for m := int64(0); m < k; m++ {
			//netvet:allow append -- grows into c.vals' scratch backing; amortized to zero once pass sizes stabilize
			vals = append(vals, (base+m)*c.width+int64(pos))
		}
	}
	// Token conservation guarantees len(vals) == total. Hand each
	// waiter its block, then the direct request takes the rest.
	i := 0
	for _, s := range pend {
		i += copy(s.buf[:s.n], vals[i:])
		s.buf = nil // release the waiter's buffer before waking it
		s.state.Store(slotDone)
	}
	copy(extra, vals[i:])
	c.pending = pend[:0]
	c.vals = vals[:0]
	if o != nil {
		region.End()
		// The clock reads here, start bound at entry: the sample covers
		// the full pass. The region bracketed the same span for traces.
		o.PassNs.ObserveSince(start)
	}
}
