// Package counter implements concurrent Fetch&Increment counters, the
// application domain of counting networks: a width-w counting network
// with a local counter on each output wire yields a low-contention
// shared counter. A token traverses the network, exits on output
// position i having previously seen k tokens exit there, and is
// assigned the value k*w + i; in any quiescent state the issued values
// are exactly 0..N-1.
//
// The package also provides centralized baselines (a single atomic
// fetch-and-add and a mutex-protected counter) used by the E9
// experiment to reproduce the shape of the shared-memory measurements
// of Felten, LaMarca & Ladner, which the paper cites as evidence that
// intermediate balancer widths perform best.
package counter

// The concurrent paths in this package are explored by the
// internal/sched harness; executions must replay deterministically
// from a recorded schedule (see docs/TESTING.md).
//
//netvet:sched-instrumented

import (
	"fmt"
	"sync"
	"sync/atomic"

	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/runner"
)

// Counter issues distinct non-negative values. Implementations are safe
// for concurrent use; NetworkCounter additionally guarantees that after
// the network quiesces the issued values are gap-free.
type Counter interface {
	// Next returns the next value.
	Next() int64
}

// Handled is implemented by counters that benefit from per-goroutine
// handles (to avoid a shared entry-dispatch hotspot). Generic code can
// fall back to the counter itself, which must also implement Counter.
type Handled interface {
	Counter
	// Handle returns a Counter view for a single goroutine. Handles
	// must not be shared between goroutines.
	Handle(id int) Counter
}

// BlockCounter is implemented by counters that can issue a block of
// values in one call, cheaper than len(dst) separate Nexts. The values
// are distinct and all consumed by the caller on return, so block
// requests preserve the gap-free-at-quiescence guarantee; they are not
// necessarily consecutive integers (a network counter hands out value
// progressions from several exit wires).
type BlockCounter interface {
	Counter
	// NextBlock fills dst with len(dst) fresh values.
	NextBlock(dst []int64)
}

// padded spaces local counters a full cache line apart: the 64 bytes
// of leading padding keep consecutive slice elements' counters on
// distinct lines regardless of the slice's base alignment.
//
//netvet:padalign 72
type padded struct {
	_ [64]byte
	v atomic.Int64
}

// NetworkCounter is a Fetch&Increment counter built on a counting
// network.
type NetworkCounter struct {
	async   *runner.Async
	width   int
	width64 int64 // int64(width), cached off the per-value paths
	useMu   bool
	entry   atomic.Int64
	locals  []padded

	// watch is the observability hook, nil unless EnableObs was
	// called; the value paths pay one nil-check when disabled.
	watch *obs.CounterObs
}

// NewNetworkCounter builds a counter over the given counting network.
// If mutexBalancers is true, tokens traverse lock-based balancers
// instead of fetch-and-add balancers.
func NewNetworkCounter(net *network.Network, mutexBalancers bool) *NetworkCounter {
	return &NetworkCounter{
		async:   runner.Compile(net),
		width:   net.Width(),
		width64: int64(net.Width()),
		useMu:   mutexBalancers,
		locals:  make([]padded, net.Width()),
	}
}

// Width returns the width of the underlying network.
func (c *NetworkCounter) Width() int { return c.width }

// EnableObs attaches observability under the given group name and
// registers it with r (obs.Default when nil). Idempotent; call before
// the counter sees concurrent traffic. When enabled, every issued
// value records an ops count and a Next-latency sample, and the
// underlying network records per-gate token counts.
func (c *NetworkCounter) EnableObs(name string, r *obs.Registry) *obs.CounterObs {
	if c.watch == nil {
		c.watch = obs.NewCounterObs(name, c.async.EnableObs(name))
	}
	if r == nil {
		r = obs.Default
	}
	r.Register(name, c.watch)
	return c.watch
}

// Next issues a value, dispatching the entry wire from a shared
// round-robin counter. This is the slow path: every call pays a
// fetch-and-add and a modulo on one shared dispatch word before the
// token even enters the network. Handle is the fast path — it cycles
// entry wires privately, touching no shared state outside the network
// itself (pinned by TestHandleBypassesSharedDispatch).
//
//netvet:hotpath
func (c *NetworkCounter) Next() int64 {
	wire := int((c.entry.Add(1) - 1) % c.width64)
	return c.nextOn(wire)
}

// NextBlock fills dst with len(dst) values via the shared dispatcher.
//
//netvet:hotpath
func (c *NetworkCounter) NextBlock(dst []int64) {
	for i := range dst {
		dst[i] = c.Next()
	}
}

//netvet:hotpath
func (c *NetworkCounter) nextOn(wire int) int64 {
	if o := c.watch; o != nil {
		return c.nextOnObs(wire, o)
	}
	var pos int
	if c.useMu {
		pos = c.async.TraverseMutex(wire)
	} else {
		pos = c.async.Traverse(wire)
	}
	k := c.locals[pos].v.Add(1) - 1
	return k*c.width64 + int64(pos)
}

// nextOnObs is nextOn with observability: same traversal and value
// arithmetic (the traversal's own recording happens inside Async),
// plus the end-to-end latency sample and ops count.
//
//netvet:hotpath
func (c *NetworkCounter) nextOnObs(wire int, o *obs.CounterObs) int64 {
	start := obs.Now()
	var pos int
	if c.useMu {
		pos = c.async.TraverseMutex(wire)
	} else {
		pos = c.async.Traverse(wire)
	}
	k := c.locals[pos].v.Add(1) - 1
	o.Ops.Inc()
	o.NextNs.ObserveSince(start)
	return k*c.width64 + int64(pos)
}

// NextOnHooked issues a value entering on the given wire with schedule
// instrumentation: yield runs immediately before every atomic step (each
// balancer access and the local-counter fetch). Hooked traversal always
// uses the atomic balancers. For package sched; do not mix with
// unhooked calls within one controlled run.
func (c *NetworkCounter) NextOnHooked(wire int, yield func(op string)) int64 {
	pos := c.async.TraverseHooked(wire, yield)
	yield(fmt.Sprintf("local %d", pos))
	k := c.locals[pos].v.Add(1) - 1
	return k*c.width64 + int64(pos)
}

// NextHooked is Next with schedule instrumentation (see NextOnHooked);
// the shared entry-dispatch fetch-and-add is itself a yield point.
func (c *NetworkCounter) NextHooked(yield func(op string)) int64 {
	yield("entry dispatch")
	wire := int((c.entry.Add(1) - 1) % c.width64)
	return c.NextOnHooked(wire, yield)
}

// Handle returns a goroutine-local view whose entry wires cycle
// privately, starting at an offset derived from id. The counting
// property holds for any distribution of tokens over input wires, so
// private cycling is safe.
func (c *NetworkCounter) Handle(id int) Counter {
	if id < 0 {
		id = -id
	}
	return &handle{c: c, pos: id % c.width}
}

type handle struct {
	c   *NetworkCounter
	pos int
}

//netvet:hotpath
func (h *handle) Next() int64 {
	wire := h.pos
	h.pos++
	if h.pos == h.c.width {
		h.pos = 0
	}
	return h.c.nextOn(wire)
}

// NextBlock fills dst with len(dst) values, one token each.
//
//netvet:hotpath
func (h *handle) NextBlock(dst []int64) {
	for i := range dst {
		dst[i] = h.Next()
	}
}

// NextHooked is Next with schedule instrumentation (the private wire
// cursor needs no yield — it is goroutine-local). For package sched.
func (h *handle) NextHooked(yield func(op string)) int64 {
	wire := h.pos
	h.pos++
	if h.pos == h.c.width {
		h.pos = 0
	}
	return h.c.NextOnHooked(wire, yield)
}

// issued returns the number of values this counter has handed out,
// exact once no Next/NextBlock is in flight. The adaptive front-end
// reads it as the fence value when sealing an epoch: after draining,
// issued() is the count the incoming engine must continue from.
func (c *NetworkCounter) issued() int64 {
	var n int64
	for i := range c.locals {
		n += c.locals[i].v.Load()
	}
	return n
}

// AtomicCounter is the centralized baseline: one fetch-and-add word.
type AtomicCounter struct {
	_ [64]byte
	v atomic.Int64
}

// NewAtomicCounter returns a zeroed atomic counter.
func NewAtomicCounter() *AtomicCounter { return &AtomicCounter{} }

// Next returns the next value.
//
//netvet:hotpath
func (c *AtomicCounter) Next() int64 { return c.v.Add(1) - 1 }

// NextBlock claims len(dst) consecutive values with one fetch-and-add.
//
//netvet:hotpath
func (c *AtomicCounter) NextBlock(dst []int64) {
	k := int64(len(dst))
	base := c.v.Add(k) - k
	for i := range dst {
		dst[i] = base + int64(i)
	}
}

// issued returns the number of values handed out (see
// NetworkCounter.issued); for the atomic baseline it is the word
// itself.
func (c *AtomicCounter) issued() int64 { return c.v.Load() }

// MutexCounter is the lock-based centralized baseline.
type MutexCounter struct {
	mu sync.Mutex
	v  int64
}

// NewMutexCounter returns a zeroed mutex counter.
func NewMutexCounter() *MutexCounter { return &MutexCounter{} }

// Next returns the next value.
//
//netvet:hotpath
func (c *MutexCounter) Next() int64 {
	c.mu.Lock()
	v := c.v
	c.v++
	c.mu.Unlock()
	return v
}

// NextBlock claims len(dst) consecutive values under one lock hold.
//
//netvet:hotpath
func (c *MutexCounter) NextBlock(dst []int64) {
	c.mu.Lock()
	base := c.v
	c.v += int64(len(dst))
	c.mu.Unlock()
	for i := range dst {
		dst[i] = base + int64(i)
	}
}
