// Schedule-exploration suite for the adaptive counter's engine
// transitions: the real epoch-handoff code (seal → drain → fence →
// install racing against publish → seal-check draws) runs under
// controlled interleavings, and at quiescence the issued values must
// be exactly 0..N-1 across atomic↔network↔combining switches. Lives in
// package counter_test because sched imports counter.
package counter_test

import (
	"strings"
	"testing"

	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/sched"
)

// adaptiveBuild returns a builder for a fresh adaptive counter on the
// given initial engine over K(2,2).
func adaptiveBuild(t *testing.T, initial counter.EngineKind) func() *counter.AdaptiveCounter {
	t.Helper()
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return func() *counter.AdaptiveCounter {
		return counter.NewAdaptiveCounter(net, initial, nil)
	}
}

// TestAdaptiveTransitionsExplored explores random, PCT, and
// bounded-preemption-exhaustive interleavings of concurrent draws with
// a switcher walking every engine: no value may be lost or duplicated
// across a transition.
func TestAdaptiveTransitionsExplored(t *testing.T) {
	plans := []struct {
		name    string
		initial counter.EngineKind
		plan    []counter.EngineKind
	}{
		{"atomic->network->combining", counter.EngineAtomic,
			[]counter.EngineKind{counter.EngineNetwork, counter.EngineCombining}},
		{"combining->atomic", counter.EngineCombining,
			[]counter.EngineKind{counter.EngineAtomic}},
		{"network->combining->network", counter.EngineNetwork,
			[]counter.EngineKind{counter.EngineCombining, counter.EngineNetwork}},
	}
	for _, tc := range plans {
		sys := sched.AdaptiveSystem(adaptiveBuild(t, tc.initial), 2, 2, tc.plan)
		if rep := sched.ExploreRandom(sys, 0xadab, 200, 30_000); rep.Failure != nil {
			t.Errorf("%s random: %s", tc.name, rep.Failure)
		}
		if rep := sched.ExplorePCT(sys, 0xadab, 200, 30_000, 3, 3); rep.Failure != nil {
			t.Errorf("%s pct: %s", tc.name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 1, 20_000, 30_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", tc.name, rep.Failure)
		}
	}
}

// TestAdaptiveRevisitsEngineExplored re-enters an engine already used
// in an earlier epoch (atomic → network → atomic), the case where the
// fence arithmetic must account for the engine's non-zero issued count
// from its previous epoch.
func TestAdaptiveRevisitsEngineExplored(t *testing.T) {
	plan := []counter.EngineKind{counter.EngineNetwork, counter.EngineAtomic}
	sys := sched.AdaptiveSystem(adaptiveBuild(t, counter.EngineAtomic), 2, 2, plan)
	if rep := sched.ExploreRandom(sys, 0xcafe, 300, 30_000); rep.Failure != nil {
		t.Errorf("random: %s", rep.Failure)
	}
	if rep := sched.ExploreDFS(sys, 1, 20_000, 30_000); rep.Failure != nil {
		t.Errorf("dfs: %s", rep.Failure)
	}
}

// TestAdaptiveUndrainedSwitchRefuted proves the harness has teeth: a
// switch that skips the drain step reads its fence while draws are
// still in flight, and exploration must find a schedule that loses or
// duplicates a value.
func TestAdaptiveUndrainedSwitchRefuted(t *testing.T) {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *counter.AdaptiveCounter {
		c := counter.NewAdaptiveCounter(net, counter.EngineAtomic, nil)
		c.UnsafeDisableDrainForTest()
		return c
	}
	plan := []counter.EngineKind{counter.EngineNetwork}
	sys := sched.AdaptiveSystem(build, 2, 2, plan)
	rep := sched.ExploreRandom(sys, 7, 10_000, 30_000)
	if rep.Failure == nil {
		t.Fatal("undrained engine switch not detected by exploration")
	}
	if !strings.Contains(rep.Failure.Err.Error(), "gap-free") {
		t.Fatalf("unexpected failure: %v", rep.Failure.Err)
	}
	t.Logf("detected in %d schedule(s): %v", rep.Schedules, rep.Failure.Err)
}
