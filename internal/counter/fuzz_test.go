package counter_test

import (
	"testing"

	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/sched"
)

// FuzzCounterSchedules feeds arbitrary byte strings through the
// internal/sched ByteDecoder: every input denotes a valid interleaving
// of concurrent NetworkCounter.Next calls, and mutating bytes mutates
// the schedule locally. Whatever the interleaving, the values issued
// at quiescence must be exactly 0..N-1; the counter workload never
// blocks, so any error at all is a real bug. Failing inputs replay
// byte-for-byte from the corpus file.
func FuzzCounterSchedules(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 0, 1, 2})
	f.Add([]byte{255, 127, 63, 31, 15, 7, 3, 1})
	net, err := core.K(2, 2)
	if err != nil {
		f.Fatal(err)
	}
	sys := sched.CounterSystem(net, 3, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, check := sys()
		tr, err := sched.Run(&sched.ByteDecoder{Data: data}, 20_000, tasks)
		if err == nil {
			err = check(tr)
		}
		if err != nil {
			t.Fatalf("schedule bytes %x: %v", data, err)
		}
	})
}

// FuzzAdaptiveSchedules drives the adaptive counter's transition
// window — concurrent draws racing a switcher that walks atomic →
// network → combining → atomic — through fuzz-chosen interleavings.
// Unlike the plain counter workload the adaptive one blocks (epoch
// turnover, drain), so the decoder only ever picks among runnable
// tasks; any reported error is still a real bug, and the gap-free
// check at quiescence is the oracle.
func FuzzAdaptiveSchedules(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 0, 1, 2})
	f.Add([]byte{255, 127, 63, 31, 15, 7, 3, 1})
	net, err := core.K(2, 2)
	if err != nil {
		f.Fatal(err)
	}
	plan := []counter.EngineKind{
		counter.EngineNetwork, counter.EngineCombining, counter.EngineAtomic,
	}
	sys := sched.AdaptiveSystem(func() *counter.AdaptiveCounter {
		return counter.NewAdaptiveCounter(net, counter.EngineAtomic, nil)
	}, 2, 2, plan)
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, check := sys()
		tr, err := sched.Run(&sched.ByteDecoder{Data: data}, 30_000, tasks)
		if err == nil {
			err = check(tr)
		}
		if err != nil {
			t.Fatalf("schedule bytes %x: %v", data, err)
		}
	})
}
