package counter

// Tests for the counters' observability integration: obs-off value
// streams must match the seed bit for bit, obs-off and obs-on hot
// paths must stay allocation-free, and the recorded metrics must
// account for the operations actually performed.

import (
	"testing"

	"countnet/internal/obs"
)

// TestNetworkCounterObsDifferential: enabling observability changes no
// issued value. Two counters over the same network, driven by the same
// single-threaded request sequence, must produce identical streams.
func TestNetworkCounterObsDifferential(t *testing.T) {
	net := testNetwork(t)
	for _, mutex := range []bool{false, true} {
		plain := NewNetworkCounter(net, mutex)
		seen := NewNetworkCounter(net, mutex)
		seen.EnableObs("ctr-diff", obs.NewRegistry())
		ph, sh := plain.Handle(1), seen.Handle(1)
		for i := 0; i < 300; i++ {
			if p, s := ph.Next(), sh.Next(); p != s {
				t.Fatalf("mutex=%v op %d: plain issued %d, observed issued %d", mutex, i, p, s)
			}
		}
	}
}

// TestCombiningCounterObsDifferential: same for the flat-combining
// counter, over a mixed Next/NextBlock sequence.
func TestCombiningCounterObsDifferential(t *testing.T) {
	net := testNetwork(t)
	plain := NewCombiningCounter(net)
	seen := NewCombiningCounter(net)
	o := seen.EnableObs("cmb-diff", obs.NewRegistry())
	ph, sh := plain.Handle(0).(*CombiningHandle), seen.Handle(0).(*CombiningHandle)
	served := int64(0)
	for i := 0; i < 100; i++ {
		if p, s := ph.Next(), sh.Next(); p != s {
			t.Fatalf("op %d: plain issued %d, observed issued %d", i, p, s)
		}
		served++
		n := 1 + i%7
		pb, sb := make([]int64, n), make([]int64, n)
		ph.NextBlock(pb)
		sh.NextBlock(sb)
		for k := range pb {
			if pb[k] != sb[k] {
				t.Fatalf("block %d slot %d: plain %d, observed %d", i, k, pb[k], sb[k])
			}
		}
		served += int64(n)
	}
	g := o.GroupSnapshot()
	var passes, ops int64
	for _, c := range g.Counters {
		if c.Name == "passes" {
			passes = c.Value
		}
	}
	for _, h := range g.Hists {
		if h.Name == "pass_served" {
			ops = h.Hist.Sum
		}
	}
	if passes != 200 {
		t.Errorf("passes = %d, want 200 (one per request, single-threaded)", passes)
	}
	if ops != served {
		t.Errorf("pass_served sum = %d, want %d (every value accounted)", ops, served)
	}
}

// TestCounterObsOffAllocFree: with observability never enabled, the
// per-value hot paths allocate nothing.
func TestCounterObsOffAllocFree(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	h := c.Handle(0)
	if n := testing.AllocsPerRun(200, func() { h.Next() }); n != 0 {
		t.Errorf("obs-off handle Next allocates %v per run", n)
	}
	cc := NewCombiningCounter(testNetwork(t))
	ch := cc.Handle(0).(*CombiningHandle)
	if n := testing.AllocsPerRun(200, func() { ch.Next() }); n != 0 {
		t.Errorf("obs-off combining Next allocates %v per run", n)
	}
}

// TestCounterObsOnAllocFree: the instrumented paths allocate nothing
// either — histograms and padded counters are fixed-size atomics.
func TestCounterObsOnAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewNetworkCounter(testNetwork(t), false)
	c.EnableObs("alloc-ctr", reg)
	h := c.Handle(0)
	if n := testing.AllocsPerRun(200, func() { h.Next() }); n != 0 {
		t.Errorf("obs-on handle Next allocates %v per run", n)
	}
	cc := NewCombiningCounter(testNetwork(t))
	cc.EnableObs("alloc-cmb", reg)
	ch := cc.Handle(0).(*CombiningHandle)
	if n := testing.AllocsPerRun(200, func() { ch.Next() }); n != 0 {
		t.Errorf("obs-on combining Next allocates %v per run", n)
	}
}

// TestCounterObsConcurrent: the Fetch&Increment contract survives with
// observability on, concurrent snapshots included, and the ops counter
// accounts for every issued value. Doubles as the race-lane check.
func TestCounterObsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewNetworkCounter(testNetwork(t), false)
	o := c.EnableObs("conc-ctr", reg)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()

	const workers, perWorker = 8, 400
	vals := collectConcurrent(c, workers, perWorker)
	close(stop)
	<-done
	assertExactRange(t, vals)
	if got := o.Ops.Load(); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
	if n := o.NextNs.Snapshot().Count; n != workers*perWorker {
		t.Errorf("next_ns samples = %d, want %d", n, workers*perWorker)
	}
}

// TestCombiningCounterObsConcurrent: same for the combining counter;
// pass_served must account for every value across all combine passes.
func TestCombiningCounterObsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCombiningCounter(testNetwork(t))
	o := c.EnableObs("conc-cmb", reg)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()

	const workers, perWorker = 8, 400
	vals := collectConcurrent(c, workers, perWorker)
	close(stop)
	<-done
	assertExactRange(t, vals)
	s := o.PassServed.Snapshot()
	if s.Sum != workers*perWorker {
		t.Errorf("pass_served sum = %d, want %d", s.Sum, workers*perWorker)
	}
	if passes := o.Passes.Load(); passes != s.Count {
		t.Errorf("passes = %d but pass_served has %d samples", passes, s.Count)
	}
}

// TestCounterEnableObsRegisters: EnableObs registers the group under
// the given name (defaulting to the package registry when nil is
// passed would pollute global state, so tests use a private one), and
// re-enabling replaces rather than duplicates.
func TestCounterEnableObsRegisters(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewNetworkCounter(testNetwork(t), false)
	o1 := c.EnableObs("lane", reg)
	o2 := c.EnableObs("lane", reg)
	if o1 != o2 {
		t.Fatal("EnableObs must be idempotent")
	}
	s := reg.Snapshot()
	if len(s.Groups) != 1 || s.Groups[0].Name != "lane" {
		t.Fatalf("registry groups: %+v", s.Groups)
	}
	if s.Groups[0].Kind != "counter" {
		t.Fatalf("kind = %q, want counter", s.Groups[0].Kind)
	}
}
