// Schedule exploration with observability enabled: the instrumented
// hooked paths record counts only (no clock reads), so controlled
// runs must stay deterministic and the counter invariants must hold
// unchanged. Lives in package counter_test because sched imports
// counter.
package counter_test

import (
	"fmt"
	"sort"
	"testing"

	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/obs"
	"countnet/internal/sched"
)

// observedCounterSystem mirrors sched.CounterSystem but enables
// observability on every fresh counter, registering into a throwaway
// registry so explored schedules never touch global state.
func observedCounterSystem(t *testing.T, goroutines, opsPer int) sched.System {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Width()
	return func() ([]sched.TaskFunc, func(tr *sched.Trace) error) {
		c := counter.NewNetworkCounter(net, false)
		c.EnableObs("explored", obs.NewRegistry())
		values := make([]int64, 0, goroutines*opsPer)
		tasks := make([]sched.TaskFunc, goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			tasks[g] = func(y *sched.Yield) {
				wire := g % w
				for k := 0; k < opsPer; k++ {
					values = append(values, c.NextOnHooked(wire, y.Step))
					wire++
					if wire == w {
						wire = 0
					}
				}
			}
		}
		check := func(tr *sched.Trace) error {
			got := append([]int64(nil), values...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for i, v := range got {
				if v != int64(i) {
					return fmt.Errorf("observed counter not gap-free: sorted[%d] = %d (values %v)", i, v, got)
				}
			}
			return nil
		}
		return tasks, check
	}
}

// TestCounterObsUnderExploredSchedules: random and bounded-exhaustive
// exploration over an observed counter — observability must not break
// the gap-free invariant or deterministic replay.
func TestCounterObsUnderExploredSchedules(t *testing.T) {
	sys := observedCounterSystem(t, 3, 2)
	if rep := sched.ExploreRandom(sys, 0xcafe, 150, 20_000); rep.Failure != nil {
		t.Errorf("random: %s", rep.Failure)
	}
	if rep := sched.ExploreDFS(sys, 1, 20_000, 20_000); rep.Failure != nil {
		t.Errorf("dfs: %s", rep.Failure)
	}
}
