package counter

import "sync"

// Barrier is a reusable n-party synchronization barrier driven by a
// Fetch&Increment counter — the classic barrier construction counting
// networks were proposed for: arrivals take a ticket; the n-th arrival
// of each generation releases everyone in it. With a NetworkCounter
// underneath, ticket contention spreads over the network's balancers.
type Barrier struct {
	n   int64
	ctr Counter

	mu   sync.Mutex
	cond *sync.Cond
	done int64 // highest fully-released generation boundary (in tickets)
}

// NewBarrier builds a barrier for n parties over the given counter
// (which must start at 0 and be used by nothing else).
func NewBarrier(n int, ctr Counter) *Barrier {
	if n < 1 {
		panic("counter: barrier size < 1")
	}
	b := &Barrier{n: int64(n), ctr: ctr}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n parties (including the caller) have arrived in
// the caller's generation, and returns the caller's generation number
// (0-based). Reusable across generations. Arrival tickets come from the
// barrier's shared counter; parties calling Await in a loop should hold
// a Handle instead, so ticket draws skip the counter's shared entry
// dispatcher.
func (b *Barrier) Await() int64 {
	return b.arrive(b.ctr.Next())
}

// Handle returns a single-goroutine view of the barrier whose arrival
// tickets are drawn through a private counter handle (when the
// underlying counter supports them); id disperses the handles' entry
// wires. Handles must not be shared between goroutines.
func (b *Barrier) Handle(id int) *BarrierHandle {
	ctr := b.ctr
	if h, ok := ctr.(Handled); ok {
		ctr = h.Handle(id)
	}
	return &BarrierHandle{b: b, ctr: ctr}
}

// BarrierHandle is a single-goroutine view of a Barrier.
type BarrierHandle struct {
	b   *Barrier
	ctr Counter
}

// Await is Barrier.Await drawing the arrival ticket from the handle's
// private counter view.
func (h *BarrierHandle) Await() int64 {
	return h.b.arrive(h.ctr.Next())
}

// arrive completes an Await given the caller's arrival ticket.
func (b *Barrier) arrive(t int64) int64 {
	gen := t / b.n
	boundary := (gen + 1) * b.n
	b.mu.Lock()
	defer b.mu.Unlock()
	if t == boundary-1 {
		// Last arrival of this generation: release it (and any earlier
		// stragglers still waking up).
		if boundary > b.done {
			b.done = boundary
		}
		b.cond.Broadcast()
		return gen
	}
	for b.done < boundary {
		b.cond.Wait()
	}
	return gen
}
