package counter

import "sync"

// Barrier is a reusable n-party synchronization barrier driven by a
// Fetch&Increment counter — the classic barrier construction counting
// networks were proposed for: arrivals take a ticket; the n-th arrival
// of each generation releases everyone in it. With a NetworkCounter
// underneath, ticket contention spreads over the network's balancers.
type Barrier struct {
	n   int64
	ctr Counter

	mu   sync.Mutex
	cond *sync.Cond
	done int64 // highest fully-released generation boundary (in tickets)
}

// NewBarrier builds a barrier for n parties over the given counter
// (which must start at 0 and be used by nothing else).
func NewBarrier(n int, ctr Counter) *Barrier {
	if n < 1 {
		panic("counter: barrier size < 1")
	}
	b := &Barrier{n: int64(n), ctr: ctr}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n parties (including the caller) have arrived in
// the caller's generation, and returns the caller's generation number
// (0-based). Reusable across generations.
func (b *Barrier) Await() int64 {
	t := b.ctr.Next()
	gen := t / b.n
	boundary := (gen + 1) * b.n
	b.mu.Lock()
	defer b.mu.Unlock()
	if t == boundary-1 {
		// Last arrival of this generation: release it (and any earlier
		// stragglers still waking up).
		if boundary > b.done {
			b.done = boundary
		}
		b.cond.Broadcast()
		return gen
	}
	for b.done < boundary {
		b.cond.Wait()
	}
	return gen
}
