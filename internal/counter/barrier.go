package counter

import "sync"

// Barrier is a reusable n-party synchronization barrier driven by a
// Fetch&Increment counter — the classic barrier application counting
// networks were proposed for: every arrival takes a ticket, so with a
// NetworkCounter underneath the arrival contention spreads over the
// network's balancers instead of one hot spot.
//
// Generation membership is decided by arrival order under the lock,
// not by the ticket value. Counting networks are not linearizable: a
// token entering the network later can exit with a smaller value, so
// under reuse a party re-arriving for generation g+1 can draw a ticket
// belonging to generation g. Releasing on "ticket == boundary-1" then
// deadlocks, because the generation-closing ticket can rest with a
// party that never arrives again; the schedule-exploration test
// TestTicketGenerationRefuted (internal/harness/syncsrv) replays a
// minimal such interleaving against this very construction.
type Barrier struct {
	n   int64
	ctr Counter

	mu       sync.Mutex
	cond     *sync.Cond
	arrivals int64 // total arrivals that have taken a ticket
	done     int64 // arrivals of the highest fully-released generation
}

// NewBarrier builds a barrier for n parties over the given counter
// (which must start at 0 and be used by nothing else).
func NewBarrier(n int, ctr Counter) *Barrier {
	if n < 1 {
		panic("counter: barrier size < 1")
	}
	b := &Barrier{n: int64(n), ctr: ctr}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until n parties (including the caller) have arrived in
// the caller's generation, and returns the caller's generation number
// (0-based). Reusable across generations. Arrival tickets come from the
// barrier's shared counter; parties calling Await in a loop should hold
// a Handle instead, so ticket draws skip the counter's shared entry
// dispatcher.
func (b *Barrier) Await() int64 {
	b.ctr.Next()
	return b.arrive()
}

// Handle returns a single-goroutine view of the barrier whose arrival
// tickets are drawn through a private counter handle (when the
// underlying counter supports them); id disperses the handles' entry
// wires. Handles must not be shared between goroutines.
func (b *Barrier) Handle(id int) *BarrierHandle {
	ctr := b.ctr
	if h, ok := ctr.(Handled); ok {
		ctr = h.Handle(id)
	}
	return &BarrierHandle{b: b, ctr: ctr}
}

// BarrierHandle is a single-goroutine view of a Barrier.
type BarrierHandle struct {
	b   *Barrier
	ctr Counter
}

// Await is Barrier.Await drawing the arrival ticket from the handle's
// private counter view.
func (h *BarrierHandle) Await() int64 {
	h.ctr.Next()
	return h.b.arrive()
}

// arrive completes an Await after the caller drew its ticket.
func (b *Barrier) arrive() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrivals++
	gen := (b.arrivals - 1) / b.n
	if b.arrivals%b.n == 0 {
		// Last arrival of this generation: release it.
		if b.arrivals > b.done {
			b.done = b.arrivals
		}
		b.cond.Broadcast()
		return gen
	}
	boundary := (gen + 1) * b.n
	for b.done < boundary {
		b.cond.Wait()
	}
	return gen
}
