package counter

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"countnet/internal/core"
)

func barrierCounter(t *testing.T) Counter {
	t.Helper()
	n, err := core.L(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewNetworkCounter(n, false)
}

// TestBarrierPhases: no party enters phase k+1 before every party
// finished phase k — the barrier contract — across many generations.
func TestBarrierPhases(t *testing.T) {
	const parties, generations = 6, 40
	b := NewBarrier(parties, barrierCounter(t))
	var phaseCount [generations]atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				phaseCount[g].Add(1)
				gen := b.Await()
				if gen != int64(g) {
					t.Errorf("party saw generation %d in phase %d", gen, g)
					return
				}
				// After the barrier, every party must have entered
				// this phase.
				if got := phaseCount[g].Load(); got != parties {
					t.Errorf("phase %d released with %d/%d arrivals", g, got, parties)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBarrierBlocksUntilFull: early arrivals park.
func TestBarrierBlocksUntilFull(t *testing.T) {
	b := NewBarrier(3, NewAtomicCounter())
	released := make(chan int64, 3)
	for i := 0; i < 2; i++ {
		go func() { released <- b.Await() }()
	}
	select {
	case g := <-released:
		t.Fatalf("released generation %d with 2/3 arrivals", g)
	case <-time.After(20 * time.Millisecond):
	}
	go func() { released <- b.Await() }()
	for i := 0; i < 3; i++ {
		select {
		case g := <-released:
			if g != 0 {
				t.Fatalf("generation %d, want 0", g)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("barrier never released")
		}
	}
}

// TestBarrierSingleParty: degenerate n=1 never blocks.
func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1, NewAtomicCounter())
	for g := int64(0); g < 5; g++ {
		if got := b.Await(); got != g {
			t.Fatalf("generation %d, want %d", got, g)
		}
	}
}

func TestBarrierRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0, NewAtomicCounter())
}

// TestBarrierHandles: the phases contract holds when every party draws
// arrival tickets through a private barrier handle, and handles unwrap
// to counter handles when the counter supports them.
func TestBarrierHandles(t *testing.T) {
	const parties, generations = 5, 30
	b := NewBarrier(parties, barrierCounter(t))
	var phaseCount [generations]atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := b.Handle(p)
			for g := 0; g < generations; g++ {
				phaseCount[g].Add(1)
				gen := h.Await()
				if gen != int64(g) {
					t.Errorf("party saw generation %d in phase %d", gen, g)
					return
				}
				if got := phaseCount[g].Load(); got != parties {
					t.Errorf("phase %d released with %d/%d arrivals", g, got, parties)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

// TestBarrierHandlePlainCounter: Handle over a counter without handle
// support falls back to the shared counter.
func TestBarrierHandlePlainCounter(t *testing.T) {
	b := NewBarrier(1, NewMutexCounter())
	h := b.Handle(0)
	for g := int64(0); g < 5; g++ {
		if got := h.Await(); got != g {
			t.Fatalf("generation %d, want %d", got, g)
		}
	}
}
