package counter

// Adaptive counting front-end: one Fetch&Increment counter that tracks
// the measured lower envelope of the three static engines. The
// crossover structure is the paper's contention analysis made concrete
// (and measured in BENCH_counter.json / BENCH_adaptive.json): a raw
// atomic word wins while contention is low, a counting network spreads
// load once a single word saturates, and flat combining wins once
// there is enough concurrent demand to amortize whole batches. No
// static choice is fastest across a load sweep, so AdaptiveCounter
// watches its own observability signals and switches engine live.
//
// # Epoch handoff
//
// Correctness across a switch is the interesting part: the counter
// must keep the gap-free step property (exactly 0..N-1 issued at
// quiescence) even though the underlying engine changes mid-stream.
// Draws are routed by an atomic epoch pointer:
//
//	value = epoch.offset + engineValue
//
// where engineValue is whatever the epoch's engine hands out. A switch
// seals the current epoch, drains it (waits until no handle is mid-
// draw in it), reads the outgoing engine's issued count as the fence,
// folds it into the running base, and installs a fresh epoch whose
// offset makes the incoming engine continue exactly at the base:
//
//	base      = outgoing.offset + issued(outgoing engine)
//	new epoch = {kind, offset: base - issued(incoming engine)}
//
// Handles publish the epoch they are about to draw from in a padded
// per-handle slot and then re-check the seal (both seq-cst, a Dekker
// handshake with the switcher's seal-then-scan), so a draw either
// lands entirely in an unsealed epoch or retries in the next one — no
// value is minted against a stale offset. The scheme is explored under
// internal/sched (see adaptiveexplore_test.go) and stressed under
// -race; disabling the drain demonstrably loses the property.
//
// # Prefetch
//
// Handles amortize the epoch protocol (and, under the atomic engine,
// the contended fetch-and-add itself) by drawing small blocks into a
// fixed per-handle buffer and serving Next from it. Buffered values
// count as issued: they were handed to that handle. Gap-free oracles
// account for them via Unserved.
//
// # Governor
//
// StartGovernor runs a background loop that estimates the offered
// load from two self-measured signals: the aggregate draw rate (per-
// handle slot counters, owner-written, no shared RMW) and the current
// per-value latency (timed probe draws through the governor's own
// handle). Their product is, by Little's law, the mean number of
// concurrent requesters inside the counter — the x-axis of the
// BENCH_counter crossover plot. The estimate picks the engine band
// (with hysteresis and a dwell requirement so jitter cannot thrash),
// and while combining is active the prefetch block grows or shrinks
// with the observed combiner pass occupancy.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/network"
	"countnet/internal/obs"
)

// EngineKind identifies one of the static engines the adaptive counter
// switches between, ordered from lightest to heaviest machinery.
type EngineKind int32

const (
	// EngineAtomic is the centralized fetch-and-add word.
	EngineAtomic EngineKind = iota
	// EngineNetwork is the per-token counting-network counter.
	EngineNetwork
	// EngineCombining is the flat-combining counter.
	EngineCombining

	numEngineKinds = 3
)

// String returns the engine's name as used in obs status and bench
// lane labels.
func (k EngineKind) String() string {
	switch k {
	case EngineAtomic:
		return "atomic"
	case EngineNetwork:
		return "network"
	case EngineCombining:
		return "combining"
	}
	return fmt.Sprintf("engine(%d)", int32(k))
}

// maxPrefetch bounds the per-handle buffer (and thus the combining
// block); 64 matches the block size the static combining lane is
// benchmarked at.
const maxPrefetch = 64

// AdaptivePolicy tunes the governor. The zero value is not valid; use
// DefaultAdaptivePolicy (whose thresholds are calibrated against the
// committed BENCH_counter.json crossovers) and override fields.
type AdaptivePolicy struct {
	// Interval between governor ticks.
	Interval time.Duration
	// AtomicMaxLoad and NetworkMaxLoad band the load estimate
	// (mean concurrent requesters): at or below AtomicMaxLoad the
	// atomic engine wins, above NetworkMaxLoad combining wins, the
	// network counter takes the band between.
	AtomicMaxLoad  float64
	NetworkMaxLoad float64
	// Hysteresis is the fractional margin the estimate must clear
	// beyond a band edge before a switch is considered.
	Hysteresis float64
	// DwellTicks is how many consecutive ticks must agree on the
	// same target engine before switching.
	DwellTicks int
	// ProbeDraws is the number of timed probe blocks per tick.
	ProbeDraws int
	// Prefetch is the per-engine refill size for handle Next; the
	// combining entry is the starting block, governed live between
	// CombineBlockMin and CombineBlockMax afterwards.
	Prefetch [numEngineKinds]int
	// CombineBlockMin/Max bound the governed combining block.
	CombineBlockMin int
	CombineBlockMax int
	// GrowOccupancy / ShrinkOccupancy are mean-pending-slots-per-
	// combiner-pass thresholds: above the first the block doubles,
	// below the second it halves.
	GrowOccupancy   float64
	ShrinkOccupancy float64
}

// DefaultAdaptivePolicy returns the policy tuned on the committed
// benchmark data (BENCH_counter.json crossovers, BENCH_adaptive.json
// sweep: the atomic prefetch of 32 keeps the per-value lane inside
// 15% of the best block lane across the whole g sweep).
func DefaultAdaptivePolicy() AdaptivePolicy {
	return AdaptivePolicy{
		Interval:        2 * time.Millisecond,
		AtomicMaxLoad:   2.0,
		NetworkMaxLoad:  6.0,
		Hysteresis:      0.3,
		DwellTicks:      2,
		ProbeDraws:      4,
		Prefetch:        [numEngineKinds]int{32, 8, 16},
		CombineBlockMin: 8,
		CombineBlockMax: maxPrefetch,
		GrowOccupancy:   1.5,
		ShrinkOccupancy: 0.75,
	}
}

// adaptiveEpoch routes draws to one engine with one value offset. A
// fresh epoch is allocated per switch, so pointer identity
// distinguishes generations.
type adaptiveEpoch struct {
	offset int64
	kind   EngineKind
	sealed atomic.Bool
}

// adaptiveSlot is one handle's epoch-participation record: active
// publishes the epoch a draw is in flight against (nil when idle), ops
// counts values drawn through the handle (the governor's rate signal,
// owner-written so it never bounces between cores).
//
//netvet:padalign 128
type adaptiveSlot struct {
	active atomic.Pointer[adaptiveEpoch]
	ops    atomic.Int64
	_      [112]byte
}

// AdaptiveCounter is a Fetch&Increment counter that switches between
// an atomic word, a counting-network counter, and a flat-combining
// counter at runtime, preserving the gap-free step property across
// switches (values handed to handles — including their prefetch
// buffers, see AdaptiveHandle.Unserved — are exactly 0..N-1 at
// quiescence).
type AdaptiveCounter struct {
	atomicEng    *AtomicCounter
	networkEng   *NetworkCounter
	combiningEng *CombiningCounter

	cur          atomic.Pointer[adaptiveEpoch]
	combineBlock atomic.Int32 // governed combining prefetch block

	// hookSwitching is the cooperative switch lock for controlled
	// runs (see SwitchToHooked); unsafeNoDrain disables the drain
	// step so tests can prove the exploration harness catches the
	// resulting lost/duplicated values.
	hookSwitching bool
	unsafeNoDrain bool

	switches atomic.Int64

	slots atomic.Pointer[[]*adaptiveSlot] // registered handles, copy-on-write
	regMu sync.Mutex                      // guards slot registration

	switchMu sync.Mutex // serializes switches; guards base
	base     int64      // values issued across completed epochs

	pol AdaptivePolicy

	dirMu sync.Mutex // guards dir, the counter-level direct handle
	dir   *AdaptiveHandle

	govMu     sync.Mutex
	govStop   chan struct{}
	govDone   chan struct{}
	govHandle *AdaptiveHandle

	// watch is the observability hook, nil unless EnableObs was
	// called; the draw path itself never writes to it.
	watch   *obs.AdaptiveObs
	combObs *obs.CombineObs
}

// NewAdaptiveCounter builds an adaptive counter over the given
// counting network (used by the network and combining engines),
// starting on the given engine. A nil policy uses
// DefaultAdaptivePolicy. The governor is off until StartGovernor;
// until then the counter stays on its engine unless SwitchTo is
// called.
func NewAdaptiveCounter(net *network.Network, initial EngineKind, pol *AdaptivePolicy) *AdaptiveCounter {
	if initial < 0 || initial >= numEngineKinds {
		panic(fmt.Sprintf("countnet/counter: unknown engine kind %d", initial))
	}
	p := DefaultAdaptivePolicy()
	if pol != nil {
		p = *pol
	}
	if p.CombineBlockMax > maxPrefetch {
		p.CombineBlockMax = maxPrefetch
	}
	for k := range p.Prefetch {
		if p.Prefetch[k] < 1 {
			p.Prefetch[k] = 1
		}
		if p.Prefetch[k] > maxPrefetch {
			p.Prefetch[k] = maxPrefetch
		}
	}
	c := &AdaptiveCounter{
		atomicEng:    NewAtomicCounter(),
		networkEng:   NewNetworkCounter(net, false),
		combiningEng: NewCombiningCounter(net),
		pol:          p,
	}
	c.combineBlock.Store(int32(p.Prefetch[EngineCombining]))
	empty := []*adaptiveSlot{}
	c.slots.Store(&empty)
	// base is 0 and every engine is fresh, so the initial offset is 0.
	c.cur.Store(&adaptiveEpoch{kind: initial})
	c.dir = c.Handle(0).(*AdaptiveHandle)
	return c
}

// Width returns the width of the underlying network.
func (c *AdaptiveCounter) Width() int { return c.networkEng.Width() }

// Strategy returns the currently active engine.
func (c *AdaptiveCounter) Strategy() EngineKind { return c.cur.Load().kind }

// Switches returns the number of completed engine transitions.
func (c *AdaptiveCounter) Switches() int64 { return c.switches.Load() }

// CombineBlock returns the current governed combining prefetch block.
func (c *AdaptiveCounter) CombineBlock() int { return int(c.combineBlock.Load()) }

// LoadEstimate returns the governor's latest load estimate (mean
// concurrent requesters), 0 before the first tick or without obs.
func (c *AdaptiveCounter) LoadEstimate() float64 {
	if o := c.watch; o != nil {
		return float64(o.LoadMilli.Load()) / 1000
	}
	return 0
}

// EnableObs attaches observability under the given group name and
// registers it with r (obs.Default when nil). Idempotent; call before
// the counter sees concurrent traffic. The adaptive group carries the
// strategy gauges (active engine, switch count, last switch reason,
// load estimate, combining block) and the governor's probe latencies;
// the network and combining engines are registered as sub-groups
// name.network and name.combining so their per-gate and per-pass
// signals stay readable.
func (c *AdaptiveCounter) EnableObs(name string, r *obs.Registry) *obs.AdaptiveObs {
	if c.watch == nil {
		w := obs.NewAdaptiveObs(name)
		w.OpsFn = c.totalOps
		w.StrategyFn = func(id int64) string { return EngineKind(id).String() }
		w.Strategy.Store(int64(c.cur.Load().kind))
		w.Block.Store(int64(c.combineBlock.Load()))
		c.watch = w
		c.networkEng.EnableObs(name+".network", r)
		c.combObs = c.combiningEng.EnableObs(name+".combining", r)
	}
	if r == nil {
		r = obs.Default
	}
	r.Register(name, c.watch)
	return c.watch
}

// totalOps sums the per-handle slot counters: every value drawn out of
// an engine (including values still buffered in a handle).
func (c *AdaptiveCounter) totalOps() int64 {
	var n int64
	for _, s := range *c.slots.Load() {
		n += s.ops.Load()
	}
	return n
}

// prefetch returns the refill size for the given engine.
func (c *AdaptiveCounter) prefetch(k EngineKind) int {
	if k == EngineCombining {
		return int(c.combineBlock.Load())
	}
	return c.pol.Prefetch[k]
}

// engineIssued returns the given engine's issued-value count, exact
// while the engine is drained (no draw in flight).
func (c *AdaptiveCounter) engineIssued(k EngineKind) int64 {
	switch k {
	case EngineAtomic:
		return c.atomicEng.issued()
	case EngineNetwork:
		return c.networkEng.issued()
	default:
		return c.combiningEng.issued()
	}
}

// Next issues one value through a counter-level handle under a mutex.
// Prefer Handle in concurrent loops.
func (c *AdaptiveCounter) Next() int64 {
	c.dirMu.Lock()
	v := c.dir.Next()
	c.dirMu.Unlock()
	return v
}

// NextBlock fills dst with len(dst) fresh values through a counter-
// level handle under a mutex. Prefer Handle in concurrent loops.
func (c *AdaptiveCounter) NextBlock(dst []int64) {
	c.dirMu.Lock()
	c.dir.NextBlock(dst)
	c.dirMu.Unlock()
}

// Handle returns a goroutine-local view. Handles must not be shared
// between goroutines; each call permanently registers one epoch slot
// (and one combining slot), so create one handle per worker, not one
// per operation.
func (c *AdaptiveCounter) Handle(id int) Counter {
	s := &adaptiveSlot{}
	c.regMu.Lock()
	old := *c.slots.Load()
	next := make([]*adaptiveSlot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	c.slots.Store(&next)
	c.regMu.Unlock()
	return &AdaptiveHandle{
		c:     c,
		slot:  s,
		netH:  c.networkEng.Handle(id).(*handle),
		combH: c.combiningEng.Handle(id).(*CombiningHandle),
	}
}

// AdaptiveHandle is a single-goroutine view of an AdaptiveCounter.
type AdaptiveHandle struct {
	c     *AdaptiveCounter
	slot  *adaptiveSlot
	netH  *handle
	combH *CombiningHandle
	pos   int
	n     int
	buf   [maxPrefetch]int64
}

// Next returns the next value, serving from the handle's prefetch
// buffer and refilling it from the active engine when empty.
//
//netvet:hotpath
func (h *AdaptiveHandle) Next() int64 {
	if h.n > 0 {
		v := h.buf[h.pos]
		h.pos++
		h.n--
		return v
	}
	return h.refill()
}

// refill draws one prefetch block through the epoch protocol, serves
// the first value and buffers the rest.
//
//netvet:hotpath
func (h *AdaptiveHandle) refill() int64 {
	e := h.enter()
	b := h.c.prefetch(e.kind)
	buf := h.buf[:b]
	h.draw(e, buf)
	h.slot.active.Store(nil)
	h.slot.ops.Add(int64(b))
	off := e.offset
	for i := range buf {
		buf[i] += off
	}
	h.pos, h.n = 1, b-1
	return buf[0]
}

// NextBlock fills dst with len(dst) fresh values in one draw against
// the active engine (bypassing the prefetch buffer).
//
//netvet:hotpath
func (h *AdaptiveHandle) NextBlock(dst []int64) {
	if len(dst) == 0 {
		return
	}
	e := h.enter()
	h.draw(e, dst)
	h.slot.active.Store(nil)
	h.slot.ops.Add(int64(len(dst)))
	off := e.offset
	for i := range dst {
		dst[i] += off
	}
}

// Unserved returns a copy of the values sitting in the prefetch buffer
// — drawn from an engine but not yet returned by Next. Gap-free
// oracles union these with the consumed values: at quiescence,
// consumed ∪ unserved over all handles is exactly 0..N-1.
func (h *AdaptiveHandle) Unserved() []int64 {
	return append([]int64(nil), h.buf[h.pos:h.pos+h.n]...)
}

// enter pins the current epoch for a draw: publish the epoch in the
// handle's slot, then re-check the seal. Both sides are seq-cst, and
// the switcher seals before scanning slots, so either we see the seal
// and retry, or the switcher sees our publish and waits for us to
// retire (Dekker handshake).
//
//netvet:hotpath
func (h *AdaptiveHandle) enter() *adaptiveEpoch {
	s, c := h.slot, h.c
	for {
		e := c.cur.Load()
		s.active.Store(e)
		if !e.sealed.Load() {
			return e
		}
		s.active.Store(nil)
		// Production-only spin while the switch completes; controlled
		// runs use the hooked paths, which park via Yield.Block.
		//netvet:allow gosched
		runtime.Gosched()
	}
}

// draw routes a pinned draw to the epoch's engine.
//
//netvet:hotpath
func (h *AdaptiveHandle) draw(e *adaptiveEpoch, dst []int64) {
	switch e.kind {
	case EngineAtomic:
		h.c.atomicEng.NextBlock(dst)
	case EngineNetwork:
		h.netH.NextBlock(dst)
	default:
		h.combH.NextBlock(dst)
	}
}

// SwitchTo switches the active engine, preserving the gap-free step
// property via the seal → drain → fence → install sequence documented
// on the package. A switch to the already-active engine is a no-op.
// Safe to call concurrently with draws and other switches.
func (c *AdaptiveCounter) SwitchTo(kind EngineKind) { c.switchTo(kind, "manual") }

// switchTo performs the epoch handoff. The step markers below are
// checked by netvet's epochorder analyzer: every path to a later step
// must pass through the earlier ones, so a reordering (or a branch
// that skips the drain) fails `make lint`.
//
//netvet:epochorder seal drain fence install
func (c *AdaptiveCounter) switchTo(kind EngineKind, reason string) bool {
	if kind < 0 || kind >= numEngineKinds {
		panic(fmt.Sprintf("countnet/counter: unknown engine kind %d", kind))
	}
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	e := c.cur.Load()
	if e.kind == kind {
		return false
	}
	//netvet:epoch seal
	e.sealed.Store(true)
	obs.RecordFlight(obs.FlightEpochSeal, int64(e.kind), int64(kind))
	// Drain: every handle mid-draw in e has published e in its slot
	// (publish precedes its seal check, seq-cst); wait until each has
	// retired. Handles that published after seeing the seal unpublish
	// and retry, so this terminates as soon as in-flight draws finish.
	//netvet:epoch drain
	for _, s := range *c.slots.Load() {
		for s.active.Load() == e {
			//netvet:allow gosched
			runtime.Gosched()
		}
	}
	obs.RecordFlight(obs.FlightEpochDrain, int64(e.kind), int64(len(*c.slots.Load())))
	//netvet:epoch fence install
	c.install(e, kind, reason)
	return true
}

// install reads the sealed epoch's fence, folds it into the base, and
// publishes the next epoch. Caller must have sealed e and drained
// every slot (holding either switchMu or the cooperative hook lock).
// The fence read must precede the epoch publish — installing first
// would let new draws move the outgoing engine's issued count after
// the base was computed, minting duplicate values.
//
//netvet:epochorder fence install
func (c *AdaptiveCounter) install(e *adaptiveEpoch, kind EngineKind, reason string) {
	//netvet:epoch fence
	c.base = e.offset + c.engineIssued(e.kind)
	obs.RecordFlight(obs.FlightEpochFence, int64(e.kind), c.base)
	//netvet:epoch install
	c.cur.Store(&adaptiveEpoch{kind: kind, offset: c.base - c.engineIssued(kind)})
	obs.RecordFlight(obs.FlightEpochInstall, int64(kind), c.base)
	obs.RecordFlight(obs.FlightStrategySwitch, int64(e.kind), int64(kind))
	c.switches.Add(1)
	if o := c.watch; o != nil {
		o.Switches.Inc()
		o.Strategy.Store(int64(kind))
		o.SetReason(reason)
	}
}

// --- controlled-run (internal/sched) paths ---

// NextHooked is Next with schedule instrumentation and without
// prefetch: every shared atomic step of the epoch protocol and of the
// underlying engine yields first, and waiting parks via block instead
// of spinning. For package sched; do not mix with unhooked calls in a
// controlled run.
func (h *AdaptiveHandle) NextHooked(yield func(op string), block func(op string, ready func() bool)) int64 {
	s, c := h.slot, h.c
	for {
		yield("epoch load")
		e := c.cur.Load()
		yield("slot publish")
		s.active.Store(e)
		yield("seal check")
		if e.sealed.Load() {
			yield("slot clear")
			s.active.Store(nil)
			block("epoch turnover", func() bool { return c.cur.Load() != e })
			continue
		}
		var v int64
		switch e.kind {
		case EngineAtomic:
			yield("atomic draw")
			v = c.atomicEng.Next()
		case EngineNetwork:
			v = h.netH.NextHooked(yield)
		default:
			var one [1]int64
			c.combiningEng.NextBlockHooked(one[:], yield, block)
			v = one[0]
		}
		yield("slot clear")
		s.active.Store(nil)
		s.ops.Add(1)
		return e.offset + v
	}
}

// SwitchToHooked is SwitchTo with schedule instrumentation: the switch
// lock becomes a cooperative flag, the drain parks on each slot via
// block. For package sched; do not mix with unhooked switches in a
// controlled run. The drain marker sits on the unsafeNoDrain guard:
// the guard itself is on every path (the skip is a runtime flag tests
// flip deliberately, not a code-level reordering).
//
//netvet:epochorder seal drain fence install
func (c *AdaptiveCounter) SwitchToHooked(kind EngineKind, yield func(op string), block func(op string, ready func() bool)) {
	block("switch lock", func() bool { return !c.hookSwitching })
	c.hookSwitching = true
	yield("epoch load")
	e := c.cur.Load()
	if e.kind == kind {
		c.hookSwitching = false
		return
	}
	yield("seal")
	//netvet:epoch seal
	e.sealed.Store(true)
	//netvet:epoch drain
	if !c.unsafeNoDrain {
		for i, s := range *c.slots.Load() {
			s := s
			block(fmt.Sprintf("drain slot %d", i), func() bool { return s.active.Load() != e })
		}
	}
	yield("install")
	//netvet:epoch fence install
	c.install(e, kind, "hooked")
	c.hookSwitching = false
}

// --- governor ---

// StartGovernor starts the background strategy loop. Requires
// EnableObs (the governor both reads and publishes through obs).
// Idempotent while running; Close stops it.
func (c *AdaptiveCounter) StartGovernor() error {
	if c.watch == nil {
		return errors.New("countnet/counter: StartGovernor requires EnableObs")
	}
	c.govMu.Lock()
	defer c.govMu.Unlock()
	if c.govStop != nil {
		return nil
	}
	if c.govHandle == nil {
		c.govHandle = c.Handle(1).(*AdaptiveHandle)
	}
	c.govStop = make(chan struct{})
	c.govDone = make(chan struct{})
	// The governor is infrastructure around the engines, not part of
	// any explored schedule; controlled runs never start it.
	//netvet:allow spawn
	go c.govern(c.govStop, c.govDone)
	return nil
}

// Close stops the governor, if running. The counter remains usable on
// its current engine.
func (c *AdaptiveCounter) Close() {
	c.govMu.Lock()
	stop, done := c.govStop, c.govDone
	c.govStop, c.govDone = nil, nil
	c.govMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// govState is the governor's between-tick memory.
type govState struct {
	lastT          int64
	lastOps        int64
	lastQueueSum   int64
	lastQueueCount int64
	streak         int
	want           EngineKind
	probe          [maxPrefetch]int64
}

func (c *AdaptiveCounter) govern(stop, done chan struct{}) {
	defer close(done)
	// Wall-clock pacing is inherently nondeterministic; the governor
	// never runs under the replay harness.
	//netvet:allow nondeterminism
	tick := time.NewTicker(c.pol.Interval)
	defer tick.Stop()
	var g govState
	g.lastT = obs.Now()
	g.lastOps = c.totalOps()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			c.govTick(&g)
		}
	}
}

// govTick runs one governor step: estimate the load, retune the
// combining block, and switch engines when the estimate has cleared a
// band edge (plus hysteresis) for DwellTicks consecutive ticks.
// Exported to tests via export_test.go.
func (c *AdaptiveCounter) govTick(g *govState) {
	now := obs.Now()
	ops := c.totalOps()
	dt := now - g.lastT
	dOps := ops - g.lastOps
	g.lastT, g.lastOps = now, ops
	if dt <= 0 {
		return
	}
	e := c.cur.Load()
	// Timed probe draws measure the current per-value latency. The
	// probes are real draws (they count as issued values); the rate
	// signal above already includes previous ticks' probes.
	b := c.prefetch(e.kind)
	n := c.pol.ProbeDraws
	if n < 1 {
		n = 1
	}
	t0 := obs.Now()
	for i := 0; i < n; i++ {
		c.govHandle.NextBlock(g.probe[:b])
	}
	perVal := float64(obs.Now()-t0) / float64(n*b)
	c.watch.ProbeNs.Observe(int64(perVal))
	// Little's law: rate × per-value time = mean concurrent
	// requesters inside the counter.
	load := float64(dOps) / float64(dt) * perVal
	c.watch.LoadMilli.Store(int64(load * 1000))

	if e.kind == EngineCombining {
		c.govBlock(g)
	}

	want := chooseEngine(e.kind, load, &c.pol)
	if want == e.kind {
		g.streak = 0
		return
	}
	if want != g.want {
		g.want, g.streak = want, 1
	} else {
		g.streak++
	}
	if g.streak >= c.pol.DwellTicks {
		g.streak = 0
		c.switchTo(want, fmt.Sprintf("load %.2f -> %s", load, want))
	}
}

// govBlock retunes the combining prefetch block from the combiner's
// observed pass occupancy (mean pending slots per pass since the last
// tick): sustained queueing means bigger blocks amortize better,
// single-requester passes mean the block can shrink.
func (c *AdaptiveCounter) govBlock(g *govState) {
	o := c.combObs
	if o == nil {
		return
	}
	s := o.PassQueue.Snapshot()
	dSum, dCount := s.Sum-g.lastQueueSum, s.Count-g.lastQueueCount
	g.lastQueueSum, g.lastQueueCount = s.Sum, s.Count
	if dCount <= 0 {
		return
	}
	occ := float64(dSum) / float64(dCount)
	b := int(c.combineBlock.Load())
	switch {
	case occ >= c.pol.GrowOccupancy && b*2 <= c.pol.CombineBlockMax:
		b *= 2
	case occ <= c.pol.ShrinkOccupancy && b/2 >= c.pol.CombineBlockMin:
		b /= 2
	default:
		return
	}
	c.combineBlock.Store(int32(b))
	c.watch.Block.Store(int64(b))
}

// chooseEngine maps a load estimate to the engine band, with
// hysteresis relative to the current engine: crossing into a heavier
// engine requires clearing the band edge by (1+h), dropping to a
// lighter one requires falling below it by (1-h).
func chooseEngine(cur EngineKind, load float64, pol *AdaptivePolicy) EngineKind {
	target := EngineAtomic
	switch {
	case load > pol.NetworkMaxLoad:
		target = EngineCombining
	case load > pol.AtomicMaxLoad:
		target = EngineNetwork
	}
	if target == cur {
		return cur
	}
	h := pol.Hysteresis
	if target > cur {
		// The edge crossed into the target band is the higher of the
		// two when jumping straight from atomic to combining.
		edge := pol.AtomicMaxLoad
		if target == EngineCombining {
			edge = pol.NetworkMaxLoad
		}
		if load <= edge*(1+h) {
			return cur
		}
	} else {
		edge := pol.NetworkMaxLoad
		if target == EngineAtomic {
			edge = pol.AtomicMaxLoad
		}
		if load >= edge*(1-h) {
			return cur
		}
	}
	return target
}
