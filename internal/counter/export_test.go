package counter

// Test-only accessors. UnsafeDisableDrainForTest removes the drain
// step from hooked switches so the exploration tests can prove the
// sched harness catches the resulting lost/duplicated values — the
// refutation that gives the gap-free transition tests their teeth.
func (c *AdaptiveCounter) UnsafeDisableDrainForTest() { c.unsafeNoDrain = true }

// ChooseEngineForTest exposes the governor's banding decision.
func ChooseEngineForTest(cur EngineKind, load float64, pol *AdaptivePolicy) EngineKind {
	return chooseEngine(cur, load, pol)
}
