// Schedule-exploration property suite for NetworkCounter: the real
// fetch-and-add balancer and local-counter code paths run under
// controlled interleavings (internal/sched), and at quiescence the
// issued values must be exactly 0..N-1. Lives in package counter_test
// because sched imports counter.
package counter_test

import (
	"strings"
	"testing"

	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/sched"
	"countnet/internal/verify"
)

// TestCounterGapFreeUnderExploredSchedules explores random and
// bounded-preemption-exhaustive interleavings of concurrent Next calls
// on K(2,2) and R(2,3) counters.
func TestCounterGapFreeUnderExploredSchedules(t *testing.T) {
	for _, tc := range []struct {
		name        string
		build       func() (*network.Network, error)
		gor, opsPer int
	}{
		{"K(2,2)", func() (*network.Network, error) { return core.K(2, 2) }, 3, 2},
		{"R(2,3)", func() (*network.Network, error) { return core.R(2, 3) }, 2, 2},
	} {
		net, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sys := sched.CounterSystem(net, tc.gor, tc.opsPer)
		if rep := sched.ExploreRandom(sys, 0xfeed, 150, 20_000); rep.Failure != nil {
			t.Errorf("%s random: %s", tc.name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 1, 20_000, 20_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", tc.name, rep.Failure)
		}
	}
}

// TestCounterDetectsBrokenNetwork: a counter built over a broken
// "counting" network must trip the gap-free invariant — proof the
// counter harness, not just the token harness, has teeth.
func TestCounterDetectsBrokenNetwork(t *testing.T) {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mut := verify.MutateReverseGate(net, 0)
	sys := sched.CounterSystem(mut, 3, 1)
	rep := sched.ExploreRandom(sys, 5, 10_000, 20_000)
	if rep.Failure == nil {
		t.Fatal("counter over reversed K(2,2) not detected")
	}
	if !strings.Contains(rep.Failure.Err.Error(), "gap-free") {
		t.Fatalf("unexpected failure: %v", rep.Failure.Err)
	}
	t.Logf("detected in %d schedule(s): %v", rep.Schedules, rep.Failure.Err)
}
