//go:build soak

// Combining-counter stress soak, run by the nightly CI lane:
//
//	go test -tags soak -run Soak -timeout 20m ./internal/counter
//
// High-volume mixed Next/NextBlock traffic from many goroutines over
// several network shapes; any duplicated or dropped value surfaces as
// a gap in the quiescent range.
package counter

import (
	"sync"
	"testing"

	"countnet/internal/core"
	"countnet/internal/network"
)

func TestSoakCombiningCounter(t *testing.T) {
	nets := map[string]func() (*network.Network, error){
		"L(2,2,2)": func() (*network.Network, error) { return core.L(2, 2, 2) },
		"K(4,4,4)": func() (*network.Network, error) { return core.K(4, 4, 4) },
		"R(4,8)":   func() (*network.Network, error) { return core.R(4, 8) },
	}
	for name, build := range nets {
		n, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := NewCombiningCounter(n)
		const workers, rounds = 16, 2000
		out := make([][]int64, workers)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				h := c.Handle(g).(*CombiningHandle)
				block := make([]int64, 1+g%8)
				for r := 0; r < rounds; r++ {
					if g%4 == 0 {
						out[g] = append(out[g], h.Next())
					} else {
						h.NextBlock(block)
						out[g] = append(out[g], block...)
					}
				}
			}(g)
		}
		wg.Wait()
		var all []int64
		for _, vs := range out {
			all = append(all, vs...)
		}
		assertExactRange(t, all)
		t.Logf("%s: %d values gap-free", name, len(all))
	}
}
