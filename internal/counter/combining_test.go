package counter

import (
	"sync"
	"testing"

	"countnet/internal/core"
)

// TestCombiningCounterConcurrentNext: the headline guarantee — after
// quiescence the issued values are exactly 0..N-1 — under real
// concurrency with per-goroutine handles (collectConcurrent uses the
// Handled fast path).
func TestCombiningCounterConcurrentNext(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	vals := collectConcurrent(c, 8, 500)
	assertExactRange(t, vals)
}

// TestCombiningCounterConcurrentBlocks: block requests of mixed sizes
// from concurrent handles stay gap-free — the combiner must hand every
// waiter exactly its n values and never split or duplicate a range.
func TestCombiningCounterConcurrentBlocks(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	const workers, rounds = 8, 60
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := c.Handle(g).(*CombiningHandle)
			block := make([]int64, 1+g%5) // sizes 1..5
			for r := 0; r < rounds; r++ {
				h.NextBlock(block)
				out[g] = append(out[g], block...)
			}
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	assertExactRange(t, all)
}

// TestCombiningCounterMixed: handle Next, handle NextBlock, direct
// Next, and direct NextBlock interleaved across goroutines still mint
// each value exactly once.
func TestCombiningCounterMixed(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	const workers, rounds = 6, 80
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // handle, single values
				h := c.Handle(g)
				for r := 0; r < rounds; r++ {
					out[g] = append(out[g], h.Next())
				}
			case 1: // handle, blocks
				h := c.Handle(g).(*CombiningHandle)
				block := make([]int64, 3)
				for r := 0; r < rounds/3; r++ {
					h.NextBlock(block)
					out[g] = append(out[g], block...)
				}
			default: // no handle: direct combiner-lock path
				block := make([]int64, 2)
				for r := 0; r < rounds/2; r++ {
					c.NextBlock(block)
					out[g] = append(out[g], block...)
				}
			}
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	assertExactRange(t, all)
}

// TestCombiningCounterSequential: single-goroutine issuance through
// every entry point is a permutation of 0..N-1.
func TestCombiningCounterSequential(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	h := c.Handle(0).(*CombiningHandle)
	var vals []int64
	block := make([]int64, 7)
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			vals = append(vals, c.Next())
		case 1:
			vals = append(vals, h.Next())
		default:
			h.NextBlock(block)
			vals = append(vals, block...)
		}
	}
	assertExactRange(t, vals)
}

// TestCombiningCounterWider: a wider network with mixed balancer sizes.
func TestCombiningCounterWider(t *testing.T) {
	n, err := core.L(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCombiningCounter(n)
	vals := collectConcurrent(c, 5, 600)
	assertExactRange(t, vals)
}

func TestCombiningCounterWidth(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	if c.Width() != 8 {
		t.Errorf("width %d, want 8", c.Width())
	}
}

// TestCombiningCounterEmptyBlock: a zero-length block request returns
// immediately and mints nothing.
func TestCombiningCounterEmptyBlock(t *testing.T) {
	c := NewCombiningCounter(testNetwork(t))
	c.NextBlock(nil)
	h := c.Handle(0).(*CombiningHandle)
	h.NextBlock(nil)
	if v := c.Next(); v != 0 {
		t.Errorf("first value %d after empty blocks, want 0", v)
	}
}
