package counter

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"countnet/internal/obs"
)

// collectAdaptive runs workers goroutines drawing perWorker values
// each through adaptive handles and returns consumed ∪ unserved: the
// prefetch buffers hold values that were drawn from an engine but not
// yet returned by Next, and the gap-free contract covers both.
func collectAdaptive(c *AdaptiveCounter, workers, perWorker int, block int) []int64 {
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := c.Handle(g).(*AdaptiveHandle)
			vals := make([]int64, 0, perWorker)
			for len(vals) < perWorker {
				if block > 1 && len(vals)%3 == 0 && perWorker-len(vals) >= block {
					dst := make([]int64, block)
					h.NextBlock(dst)
					vals = append(vals, dst...)
				} else {
					vals = append(vals, h.Next())
				}
			}
			out[g] = append(vals, h.Unserved()...)
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	return all
}

// TestAdaptiveFetchIncrement: the headline guarantee on each fixed
// engine — consumed ∪ unserved is exactly 0..N-1 under real
// concurrency.
func TestAdaptiveFetchIncrement(t *testing.T) {
	for _, k := range []EngineKind{EngineAtomic, EngineNetwork, EngineCombining} {
		c := NewAdaptiveCounter(testNetwork(t), k, nil)
		vals := collectAdaptive(c, 8, 300, 5)
		assertExactRange(t, vals)
	}
}

// TestAdaptiveSwitchStress is the race-lane stress test: workers draw
// while the main goroutine cycles the engine through every kind many
// times. No value may be lost or duplicated across any transition.
func TestAdaptiveSwitchStress(t *testing.T) {
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, nil)
	const workers, perWorker = 8, 400
	var stop atomic.Bool
	var sw sync.WaitGroup
	sw.Add(1)
	go func() {
		defer sw.Done()
		kinds := []EngineKind{EngineNetwork, EngineCombining, EngineAtomic}
		for i := 0; !stop.Load(); i++ {
			c.SwitchTo(kinds[i%len(kinds)])
		}
	}()
	vals := collectAdaptive(c, workers, perWorker, 7)
	stop.Store(true)
	sw.Wait()
	if c.Switches() == 0 {
		t.Fatal("stress run completed without a single engine switch")
	}
	assertExactRange(t, vals)
	t.Logf("%d switches across %d values", c.Switches(), len(vals))
}

// TestAdaptiveSequentialSwitchAccounting pins the fence arithmetic
// single-threaded, including re-entering an engine whose issued count
// is already non-zero.
func TestAdaptiveSequentialSwitchAccounting(t *testing.T) {
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, nil)
	h := c.Handle(0).(*AdaptiveHandle)
	var vals []int64
	draw := func(n int) {
		for i := 0; i < n; i++ {
			vals = append(vals, h.Next())
		}
	}
	draw(10)
	c.SwitchTo(EngineNetwork)
	draw(7)
	c.SwitchTo(EngineCombining)
	draw(23)
	c.SwitchTo(EngineAtomic) // revisit: atomic engine resumes mid-count
	draw(5)
	c.SwitchTo(EngineNetwork) // revisit
	draw(9)
	vals = append(vals, h.Unserved()...)
	assertExactRange(t, vals)
	if got, want := c.Switches(), int64(4); got != want {
		t.Fatalf("Switches() = %d, want %d", got, want)
	}
}

// TestAdaptiveSwitchToSameEngineIsNoop: no epoch churn, no switch
// counted.
func TestAdaptiveSwitchToSameEngineIsNoop(t *testing.T) {
	c := NewAdaptiveCounter(testNetwork(t), EngineNetwork, nil)
	c.SwitchTo(EngineNetwork)
	if c.Switches() != 0 {
		t.Fatalf("Switches() = %d after no-op switch", c.Switches())
	}
	if c.Strategy() != EngineNetwork {
		t.Fatalf("Strategy() = %v", c.Strategy())
	}
}

// TestAdaptiveObsOffDifferential pins the obs-off adaptive counter to
// the seed oracles: on a fixed engine, the handle's Next stream equals
// the corresponding static counter's handle stream, and NextBlock
// equals block-for-block.
func TestAdaptiveObsOffDifferential(t *testing.T) {
	net := testNetwork(t)
	t.Run("next/atomic", func(t *testing.T) {
		c := NewAdaptiveCounter(net, EngineAtomic, nil)
		h := c.Handle(0).(*AdaptiveHandle)
		oracle := NewAtomicCounter()
		for i := 0; i < 500; i++ {
			if got, want := h.Next(), oracle.Next(); got != want {
				t.Fatalf("value %d: adaptive %d != oracle %d", i, got, want)
			}
		}
	})
	t.Run("next/network", func(t *testing.T) {
		c := NewAdaptiveCounter(net, EngineNetwork, nil)
		h := c.Handle(0).(*AdaptiveHandle)
		oracle := NewNetworkCounter(net, false).Handle(0)
		for i := 0; i < 500; i++ {
			if got, want := h.Next(), oracle.Next(); got != want {
				t.Fatalf("value %d: adaptive %d != oracle %d", i, got, want)
			}
		}
	})
	for _, k := range []EngineKind{EngineAtomic, EngineNetwork, EngineCombining} {
		t.Run("block/"+k.String(), func(t *testing.T) {
			c := NewAdaptiveCounter(net, k, nil)
			h := c.Handle(0).(*AdaptiveHandle)
			var oracle BlockCounter
			switch k {
			case EngineAtomic:
				oracle = NewAtomicCounter()
			case EngineNetwork:
				oracle = NewNetworkCounter(net, false).Handle(0).(*handle)
			default:
				oracle = NewCombiningCounter(net).Handle(0).(*CombiningHandle)
			}
			got := make([]int64, 64)
			want := make([]int64, 64)
			for _, n := range []int{1, 3, 16, 64, 5, 2} {
				h.NextBlock(got[:n])
				oracle.NextBlock(want[:n])
				for i := 0; i < n; i++ {
					if got[i] != want[i] {
						t.Fatalf("block %d value %d: adaptive %d != oracle %d", n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestAdaptiveUnserved: after one Next the rest of the prefetch block
// sits in the buffer, and consumed ∪ unserved is gap-free.
func TestAdaptiveUnserved(t *testing.T) {
	pol := DefaultAdaptivePolicy()
	pol.Prefetch[EngineAtomic] = 16
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, &pol)
	h := c.Handle(0).(*AdaptiveHandle)
	vals := []int64{h.Next()}
	un := h.Unserved()
	if len(un) != 15 {
		t.Fatalf("Unserved() has %d values, want 15", len(un))
	}
	assertExactRange(t, append(vals, un...))
}

// TestAdaptiveAllocFree pins the zero-allocation contract on the
// steady-state Next and NextBlock fast paths, obs off and on.
func TestAdaptiveAllocFree(t *testing.T) {
	net := testNetwork(t)
	for _, withObs := range []bool{false, true} {
		name := "obs=off"
		if withObs {
			name = "obs=on"
		}
		t.Run(name, func(t *testing.T) {
			for _, k := range []EngineKind{EngineAtomic, EngineNetwork, EngineCombining} {
				c := NewAdaptiveCounter(net, k, nil)
				if withObs {
					c.EnableObs("alloc-"+k.String(), obs.NewRegistry())
				}
				h := c.Handle(0).(*AdaptiveHandle)
				h.Next() // warm the buffer and any lazy engine state
				if n := testing.AllocsPerRun(500, func() { h.Next() }); n != 0 {
					t.Errorf("%s Next: %v allocs/op", k, n)
				}
				dst := make([]int64, 32)
				if n := testing.AllocsPerRun(200, func() { h.NextBlock(dst) }); n != 0 {
					t.Errorf("%s NextBlock: %v allocs/op", k, n)
				}
			}
		})
	}
}

// TestChooseEngineBands pins the governor's banding, including the
// hysteresis margins that prevent thrashing at a band edge.
func TestChooseEngineBands(t *testing.T) {
	pol := DefaultAdaptivePolicy() // atomic ≤ 2, network ≤ 6, h = 0.3
	cases := []struct {
		cur  EngineKind
		load float64
		want EngineKind
	}{
		{EngineAtomic, 0.5, EngineAtomic},
		{EngineAtomic, 2.2, EngineAtomic},    // in network band but within hysteresis
		{EngineAtomic, 3.0, EngineNetwork},   // clears 2.0*1.3
		{EngineAtomic, 9.0, EngineCombining}, // clears 6.0*1.3
		{EngineNetwork, 5.0, EngineNetwork},
		{EngineNetwork, 1.8, EngineNetwork}, // below 2.0 but within hysteresis
		{EngineNetwork, 1.0, EngineAtomic},  // below 2.0*0.7
		{EngineNetwork, 8.5, EngineCombining},
		{EngineCombining, 10, EngineCombining},
		{EngineCombining, 5.0, EngineCombining}, // within hysteresis of 6.0
		{EngineCombining, 4.0, EngineNetwork},   // below 6.0*0.7
		{EngineCombining, 0.5, EngineAtomic},
	}
	for _, tc := range cases {
		if got := ChooseEngineForTest(tc.cur, tc.load, &pol); got != tc.want {
			t.Errorf("chooseEngine(%v, %.1f) = %v, want %v", tc.cur, tc.load, got, tc.want)
		}
	}
}

// TestAdaptiveGovernorRequiresObs: the governor reads and publishes
// through obs, so starting it blind is an error.
func TestAdaptiveGovernorRequiresObs(t *testing.T) {
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, nil)
	if err := c.StartGovernor(); err == nil {
		t.Fatal("StartGovernor without EnableObs did not error")
	}
}

// TestAdaptiveGovernorLive runs the governor against real load and
// checks the live signals without asserting timing-dependent switch
// behaviour: values stay distinct (the probes draw real values, so
// exact-range doesn't apply), the estimate publishes, and Close stops
// the loop.
func TestAdaptiveGovernorLive(t *testing.T) {
	pol := DefaultAdaptivePolicy()
	pol.Interval = 200 * time.Microsecond
	pol.DwellTicks = 1
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, &pol)
	reg := obs.NewRegistry()
	c.EnableObs("governed", reg)
	if err := c.StartGovernor(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers, perWorker = 8, 2000
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := c.Handle(g + 2).(*AdaptiveHandle)
			vals := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				vals = append(vals, h.Next())
			}
			out[g] = append(vals, h.Unserved()...)
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate value %d issued under governed switching", all[i])
		}
	}
	if k := c.Strategy(); k < 0 || k >= 3 {
		t.Fatalf("Strategy() = %v out of range", k)
	}
	s := reg.Snapshot()
	g := s.Group("governed")
	if g == nil {
		t.Fatal("governed group missing from snapshot")
	}
	if g.Kind != "adaptive" {
		t.Fatalf("group kind = %q, want adaptive", g.Kind)
	}
	c.Close() // idempotent with the deferred Close
}

// TestAdaptiveObsSnapshot checks the strategy gauges and status
// strings the netmon table and Prometheus exposition rely on.
func TestAdaptiveObsSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewAdaptiveCounter(testNetwork(t), EngineAtomic, nil)
	c.EnableObs("adapt", reg)
	h := c.Handle(0).(*AdaptiveHandle)
	for i := 0; i < 40; i++ {
		h.Next()
	}
	c.SwitchTo(EngineCombining)
	for i := 0; i < 40; i++ {
		h.Next()
	}
	s := reg.Snapshot()
	g := s.Group("adapt")
	if g == nil {
		t.Fatal("adapt group missing")
	}
	want := map[string]int64{}
	for _, m := range g.Counters {
		want[m.Name] = m.Value
	}
	if want["switches"] != 1 {
		t.Fatalf("switches counter = %d, want 1", want["switches"])
	}
	if want["ops"] < 80 {
		t.Fatalf("ops counter = %d, want >= 80", want["ops"])
	}
	gauges := map[string]int64{}
	for _, m := range g.Gauges {
		gauges[m.Name] = m.Value
	}
	if gauges["strategy"] != int64(EngineCombining) {
		t.Fatalf("strategy gauge = %d, want %d", gauges["strategy"], int64(EngineCombining))
	}
	if gauges["combine_block"] == 0 {
		t.Fatal("combine_block gauge missing or zero")
	}
	status := map[string]string{}
	for _, m := range g.Status {
		status[m.Name] = m.Value
	}
	if status["strategy"] != "combining" {
		t.Fatalf("strategy status = %q, want combining", status["strategy"])
	}
	if status["last_switch_reason"] != "manual" {
		t.Fatalf("last_switch_reason = %q, want manual", status["last_switch_reason"])
	}
	// Sub-engines are registered as their own groups.
	if s.Group("adapt.network") == nil || s.Group("adapt.combining") == nil {
		t.Fatal("sub-engine groups missing from snapshot")
	}
}
