package counter

import (
	"sort"
	"sync"
	"testing"

	"countnet/internal/core"
	"countnet/internal/network"
)

func testNetwork(t *testing.T) *network.Network {
	t.Helper()
	n, err := core.L(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// collectConcurrent runs workers goroutines, each drawing perWorker
// values (via a handle if available), and returns every issued value.
func collectConcurrent(c Counter, workers, perWorker int) []int64 {
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := c
			if h, ok := c.(Handled); ok {
				local = h.Handle(g)
			}
			vals := make([]int64, perWorker)
			for i := range vals {
				vals[i] = local.Next()
			}
			out[g] = vals
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	return all
}

func assertExactRange(t *testing.T, vals []int64) {
	t.Helper()
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != int64(i) {
			t.Fatalf("values are not exactly 0..%d: position %d holds %d", len(vals)-1, i, v)
		}
	}
}

// TestNetworkCounterFetchIncrement: the headline guarantee — after
// quiescence the issued values are exactly 0..N-1 — under real
// concurrency, for both balancer implementations.
func TestNetworkCounterFetchIncrement(t *testing.T) {
	for _, mutex := range []bool{false, true} {
		c := NewNetworkCounter(testNetwork(t), mutex)
		vals := collectConcurrent(c, 8, 500)
		assertExactRange(t, vals)
	}
}

// TestNetworkCounterSequential: single-goroutine issuance is gap-free
// at every prefix length that is a multiple of nothing in particular —
// values must still be a permutation of 0..N-1.
func TestNetworkCounterSequential(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	var vals []int64
	for i := 0; i < 777; i++ {
		vals = append(vals, c.Next())
	}
	assertExactRange(t, vals)
}

// TestNetworkCounterSharedNext: Next (shared dispatcher) is safe and
// gap-free too.
func TestNetworkCounterSharedNext(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	var wg sync.WaitGroup
	out := make([][]int64, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]int64, 300)
			for i := range vals {
				vals[i] = c.Next() // deliberately not using handles
			}
			out[g] = vals
		}(g)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	assertExactRange(t, all)
}

func TestNetworkCounterWidth(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	if c.Width() != 8 {
		t.Errorf("width %d, want 8", c.Width())
	}
}

func TestHandleNegativeID(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	h := c.Handle(-3)
	if v := h.Next(); v < 0 {
		t.Errorf("negative value %d", v)
	}
}

func TestAtomicCounter(t *testing.T) {
	c := NewAtomicCounter()
	vals := collectConcurrent(c, 8, 1000)
	assertExactRange(t, vals)
}

func TestMutexCounter(t *testing.T) {
	c := NewMutexCounter()
	vals := collectConcurrent(c, 8, 1000)
	assertExactRange(t, vals)
}

// TestCountersOnWiderNetwork: a wider L network with mixed balancer
// sizes still yields a correct counter.
func TestCountersOnWiderNetwork(t *testing.T) {
	n, err := core.L(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetworkCounter(n, false)
	vals := collectConcurrent(c, 5, 600)
	assertExactRange(t, vals)
}

// TestCounterOnBalancerOnly: a single balancer is a width-p counting
// network; its counter must behave.
func TestCounterOnBalancerOnly(t *testing.T) {
	n, err := core.K(6)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetworkCounter(n, false)
	vals := collectConcurrent(c, 4, 300)
	assertExactRange(t, vals)
}

// TestHandleBypassesSharedDispatch pins the documented contract that
// Handle is the fast path: drawing values through a handle must not
// touch the counter's shared entry-dispatch word, while direct Next
// calls pay one fetch-and-add on it per value.
func TestHandleBypassesSharedDispatch(t *testing.T) {
	c := NewNetworkCounter(testNetwork(t), false)
	h := c.Handle(1)
	var vals []int64
	for i := 0; i < 100; i++ {
		vals = append(vals, h.Next())
	}
	if got := c.entry.Load(); got != 0 {
		t.Errorf("handle Next moved the shared dispatch word to %d, want 0", got)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, c.Next())
	}
	if got := c.entry.Load(); got != 10 {
		t.Errorf("shared dispatch word at %d after 10 direct Nexts, want 10", got)
	}
	assertExactRange(t, vals)
}
