package core

import (
	"fmt"

	"countnet/internal/network"
	"countnet/internal/optnet"
)

// Optimal-base variants of the paper's families. The paper's Section 4
// construction is generic over the bounded-width base C(p,q); the Kopt
// and Lopt variants plug in the embedded best-known sorting networks
// of internal/optnet whenever p*q <= optnet.MaxWidth, replacing the
// single pq-balancer (family K) or the depth-16 R(p,q) (family L) in
// that slot. The substituted base trades balancer width for depth: a
// width-16 base drops from one 16-balancer to sixty 2-balancers in ten
// layers, so every gate in the construction becomes a 2-balancer (plan
// execution then runs entirely on the branchless pair fast path) at
// the cost of the extra base layers.
//
// SORTING ONLY: the embedded networks are optimal *sorting* networks,
// not counting networks, so the counting proof of Section 4 (which
// requires a counting base) does not carry over — like NewBubble and
// NewOddEvenMergeSort, the opt variants are verified under comparator
// semantics only. On 0-1 inputs balancer and comparator semantics
// coincide gate for gate, so the 0-1 principle still certifies the
// full construction as a sorting network; cmd/verifyall and the core
// tests do exactly that.

// OptBalancerBase is the family-K base with the embedded optimal
// sorter substituted: C(p,q) is the best-known width-pq sorting
// network when pq <= optnet.MaxWidth, and the single pq-balancer of
// BalancerBase otherwise.
func OptBalancerBase(b *network.Builder, in []int, p, q int, label string) []int {
	return newEnv(b, Config{Base: OptBalancerBase}).optBalancerBase(in, p, q, label)
}

// OptRBase is the family-L base with the embedded optimal sorter
// substituted: C(p,q) is the best-known width-pq sorting network when
// pq <= optnet.MaxWidth, and R(p,q) otherwise.
func OptRBase(b *network.Builder, in []int, p, q int, label string) []int {
	return newEnv(b, Config{Base: OptRBase}).optRBase(in, p, q, label)
}

// KOptConfig returns the configuration of the Kopt variant: family K's
// staircase with the optimal-sorter base.
func KOptConfig() Config {
	return Config{Base: OptBalancerBase, Staircase: StaircaseOptBase}
}

// LOptConfig returns the configuration of the Lopt variant: family L's
// staircase with the optimal-sorter base.
func LOptConfig() Config {
	return Config{Base: OptRBase, Staircase: StaircaseOptBitonic}
}

// KOpt builds the sorting network Kopt(p0,...,pn-1): family K with
// every base C(p,q) of width p*q <= optnet.MaxWidth replaced by the
// embedded optimal sorter. Every gate is then a 2-balancer as long as
// all pairwise factor products stay within optnet.MaxWidth. Sorting
// network only; see the package note above.
func KOpt(factors ...int) (*network.Network, error) {
	return build(KOptConfig(), factorsName("Kopt", factors), factors)
}

// LOpt builds the sorting network Lopt(p0,...,pn-1): family L with the
// embedded optimal sorter substituted for R(p,q) wherever it fits.
// Sorting network only; see the package note above.
func LOpt(factors ...int) (*network.Network, error) {
	return build(LOptConfig(), factorsName("Lopt", factors), factors)
}

// ROpt builds the standalone optimal-base C(p,q): the embedded sorter
// when p*q <= optnet.MaxWidth, R(p,q) otherwise. Sorting network only.
func ROpt(p, q int) (*network.Network, error) {
	if err := ValidateFactors([]int{p, q}); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("Ropt(%d,%d)", p, q)
	b := network.NewBuilder(p * q)
	out := newEnv(b, Config{Base: OptRBase}).optRBase(network.Identity(p*q), p, q, name)
	return b.Build(name, out), nil
}

// OptSortNetwork builds the embedded best-known sorting network of
// width w (optnet.MinWidth <= w <= optnet.MaxWidth) as a standalone
// network of 2-balancers.
func OptSortNetwork(w int) (*network.Network, error) {
	if _, ok := optnet.For(w); !ok {
		return nil, fmt.Errorf("core: no embedded optimal network for width %d (have %d..%d)", w, optnet.MinWidth, optnet.MaxWidth)
	}
	name := fmt.Sprintf("Opt(%d)", w)
	b := network.NewBuilder(w)
	e := newEnv(b, Config{Base: OptBalancerBase})
	out := e.optSorter(network.Identity(w), name)
	return b.Build(name, out), nil
}

// optBalancerBase dispatches the Kopt base within a build env so the
// sorter's gates are memoized like every other construction.
func (e *buildEnv) optBalancerBase(in []int, p, q int, label string) []int {
	if p*q <= optnet.MaxWidth {
		return e.optSorter(in, label)
	}
	e.b.Add(in, label)
	return in
}

// optRBase dispatches the Lopt base within a build env.
func (e *buildEnv) optRBase(in []int, p, q int, label string) []int {
	if p*q <= optnet.MaxWidth {
		return e.optSorter(in, label)
	}
	return e.buildR(in, p, q, label)
}

// optSorter appends the embedded width-len(in) sorting network over
// the wires `in` as one 2-balancer per comparator and returns `in`:
// gate (A,B) routes its larger value to in[A], so position 0 ends with
// the maximum — the step ordering every base function returns.
func (e *buildEnv) optSorter(in []int, label string) []int {
	n, ok := optnet.For(len(in))
	if !ok {
		panic(fmt.Sprintf("core: optSorter %q over %d wires, want %d..%d", label, len(in), optnet.MinWidth, optnet.MaxWidth))
	}
	return e.cached(e.key3("O", len(in), 0, 0, false), in, label, func(e *buildEnv, in []int, label string) []int {
		for _, layer := range n.Layers {
			for _, c := range layer {
				e.b.Add([]int{in[c.A], in[c.B]}, label+"/opt")
			}
		}
		return in
	})
}
