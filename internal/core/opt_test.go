package core

import (
	"testing"

	"countnet/internal/optnet"
	"countnet/internal/verify"
)

var optFactorSweep = [][]int{
	{2, 2}, {2, 3}, {2, 8}, {3, 3}, {3, 5}, {4, 4},
	{2, 2, 2}, {2, 2, 3}, {2, 2, 4}, {2, 3, 4}, {3, 3, 3}, {4, 4, 4},
	{2, 2, 2, 2}, {2, 2, 2, 2, 2},
	{5, 5}, {6, 6}, // pair product beyond the table: fallback bases
}

// TestOptVariantsSort certifies every opt-base construction in the
// sweep as a sorting network (exhaustive 0-1 up to width 20,
// randomized beyond). The opt variants carry no counting guarantee —
// the embedded bases are sorting networks, not counting networks —
// so sorting is the property asserted, exactly as for the sort-only
// baselines.
func TestOptVariantsSort(t *testing.T) {
	for _, f := range optFactorSweep {
		ko, err := KOpt(f...)
		if err != nil {
			t.Fatalf("KOpt(%v): %v", f, err)
		}
		if err := verify.IsSortingNetworkSeeded(ko, 0x5eed); err != nil {
			t.Errorf("KOpt(%v): %v", f, err)
		}
		lo, err := LOpt(f...)
		if err != nil {
			t.Fatalf("LOpt(%v): %v", f, err)
		}
		if err := verify.IsSortingNetworkSeeded(lo, 0x5eed); err != nil {
			t.Errorf("LOpt(%v): %v", f, err)
		}
	}
	for _, pq := range [][2]int{{2, 2}, {2, 8}, {3, 5}, {4, 4}, {4, 5}, {5, 5}} {
		ro, err := ROpt(pq[0], pq[1])
		if err != nil {
			t.Fatalf("ROpt(%d,%d): %v", pq[0], pq[1], err)
		}
		if err := verify.IsSortingNetworkSeeded(ro, 0x5eed); err != nil {
			t.Errorf("ROpt(%d,%d): %v", pq[0], pq[1], err)
		}
	}
	for w := optnet.MinWidth; w <= optnet.MaxWidth; w++ {
		n, err := OptSortNetwork(w)
		if err != nil {
			t.Fatalf("OptSortNetwork(%d): %v", w, err)
		}
		if err := verify.IsSortingNetworkSeeded(n, 0x5eed); err != nil {
			t.Errorf("OptSortNetwork(%d): %v", w, err)
		}
		if n.Depth() != mustFor(t, w).Depth {
			t.Errorf("OptSortNetwork(%d): built depth %d, table depth %d", w, n.Depth(), mustFor(t, w).Depth)
		}
		if n.Size() != mustFor(t, w).Size {
			t.Errorf("OptSortNetwork(%d): built size %d, table size %d", w, n.Size(), mustFor(t, w).Size)
		}
		if n.MaxGateWidth() != 2 {
			t.Errorf("OptSortNetwork(%d): max gate width %d, want 2", w, n.MaxGateWidth())
		}
	}
}

func mustFor(t *testing.T, w int) *optnet.Network {
	t.Helper()
	n, ok := optnet.For(w)
	if !ok {
		t.Fatalf("optnet.For(%d) missing", w)
	}
	return n
}

// TestOptDepthBounds asserts the additive depth recursion bounds the
// built networks, and pins the measured depths of the sweep — the
// recorded depth deltas against the constant-base families.
func TestOptDepthBounds(t *testing.T) {
	// factors -> {measured KOpt depth, measured LOpt depth}. K's exact
	// depth is KDepth(n) and L's is covered by its own golden tests;
	// the deltas are visible directly: e.g. {4,4} K=1 vs KOpt=10
	// (balancer widths 16 vs 2), {4,4,4} L=39 vs LOpt=33.
	pinned := map[string][2]int{
		"K(4,4)":       {10, 10},
		"K(2,8)":       {10, 10},
		"K(3,5)":       {10, 10},
		"K(2,2,2)":     {13, 12},
		"K(2,2,4)":     {22, 18},
		"K(2,3,4)":     {30, 23},
		"K(4,4,4)":     {41, 33},
		"K(2,2,2,2)":   {30, 27},
		"K(3,3,3)":     {29, 24},
		"K(2,2,2,2,2)": {54, 48},
		"K(5,5)":       {1, 16}, // fallback: balancer / R(5,5)
		"K(6,6)":       {1, 16},
		"K(2,2,3)":     {19, 16},
	}
	for _, f := range optFactorSweep {
		ko, err := KOpt(f...)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := LOpt(f...)
		if err != nil {
			t.Fatal(err)
		}
		if kb := KOptDepthBound(f); ko.Depth() > kb {
			t.Errorf("KOpt(%v) depth %d exceeds bound %d", f, ko.Depth(), kb)
		}
		if lb := LOptDepthBound(f); lo.Depth() > lb {
			t.Errorf("LOpt(%v) depth %d exceeds bound %d", f, lo.Depth(), lb)
		}
		if want, ok := pinned[factorsName("K", f)]; ok {
			if ko.Depth() != want[0] || lo.Depth() != want[1] {
				t.Errorf("depths for %v: KOpt=%d LOpt=%d, pinned %v", f, ko.Depth(), lo.Depth(), want)
			}
		}
	}
}

// TestOptBaseGateWidths pins the headline structural win: when every
// pairwise factor product embeds, the whole Kopt network is built of
// 2-balancers, against family K's max(pi*pj) balancers.
func TestOptBaseGateWidths(t *testing.T) {
	for _, f := range [][]int{{2, 2}, {4, 4}, {2, 3, 4}, {4, 4, 4}, {2, 2, 2, 2}} {
		ko, err := KOpt(f...)
		if err != nil {
			t.Fatal(err)
		}
		if got := ko.MaxGateWidth(); got != 2 {
			t.Errorf("KOpt(%v): max gate width %d, want 2", f, got)
		}
		k, err := K(f...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := k.MaxGateWidth(), MaxPairProduct(f); got != want {
			t.Errorf("K(%v): max gate width %d, want %d", f, got, want)
		}
	}
	// Beyond the table the base falls back to a bare balancer.
	ko, err := KOpt(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := ko.MaxGateWidth(); got != 25 {
		t.Errorf("KOpt(5,5): max gate width %d, want 25 (fallback balancer)", got)
	}
}

// TestOptMemoizedEqualsDirect pins replay correctness for the new
// base kinds: building the same construction twice (memo warm within
// one build via repeated sub-structures) must equal a gate-for-gate
// rebuild through the public BaseFunc without the env dispatch.
func TestOptMemoizedEqualsDirect(t *testing.T) {
	for _, f := range [][]int{{2, 2, 4}, {3, 3, 3}, {2, 2, 2, 2}} {
		a, err := KOpt(f...)
		if err != nil {
			t.Fatal(err)
		}
		b, err := KOpt(f...)
		if err != nil {
			t.Fatal(err)
		}
		if a.Size() != b.Size() || a.Depth() != b.Depth() {
			t.Fatalf("KOpt(%v) not deterministic: %d/%d vs %d/%d", f, a.Size(), a.Depth(), b.Size(), b.Depth())
		}
		for i := range a.Gates {
			ga, gb := &a.Gates[i], &b.Gates[i]
			if ga.Label != gb.Label || len(ga.Wires) != len(gb.Wires) {
				t.Fatalf("KOpt(%v) gate %d differs across builds", f, i)
			}
			for j := range ga.Wires {
				if ga.Wires[j] != gb.Wires[j] {
					t.Fatalf("KOpt(%v) gate %d wires differ", f, i)
				}
			}
		}
	}
	// The generic construction with the opt base as a plain Config
	// (memoized via the recognized base kind) must equal KOpt exactly.
	n1, err := New(Config{Base: OptBalancerBase, Staircase: StaircaseOptBase}, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := KOpt(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Size() != n2.Size() || n1.Depth() != n2.Depth() {
		t.Fatalf("New(opt cfg) %d/%d vs KOpt %d/%d", n1.Size(), n1.Depth(), n2.Size(), n2.Depth())
	}
}

// TestOptSortNetworkErrors covers the out-of-table widths.
func TestOptSortNetworkErrors(t *testing.T) {
	if _, err := OptSortNetwork(optnet.MaxWidth + 1); err == nil {
		t.Error("OptSortNetwork(17) should fail")
	}
	if _, err := OptSortNetwork(1); err == nil {
		t.Error("OptSortNetwork(1) should fail")
	}
	if _, err := KOpt(); err == nil {
		t.Error("KOpt() should fail")
	}
	if _, err := ROpt(1, 4); err == nil {
		t.Error("ROpt(1,4) should fail")
	}
}

// TestOptBasePositional guards the memoization contract: the base
// must be positional (gates depend only on wire positions within its
// input), which record() re-checks at runtime — a template recorded
// over one input slice must replay onto shifted wires without
// touching wires outside the construction. Building a wide network
// whose sub-blocks reuse the same template exercises exactly that.
func TestOptBasePositional(t *testing.T) {
	// Kopt(2,2,4): four copies of C(2,2) = the 4-wide sorter replay
	// across disjoint wire blocks, then mergers.
	n, err := KOpt(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IsSortingNetworkSeeded(n, 1); err != nil {
		t.Fatal(err)
	}
	// Every gate must stay within the builder's width (record/replay
	// translation bug would show as wild wire indices).
	for i := range n.Gates {
		for _, w := range n.Gates[i].Wires {
			if w < 0 || w >= n.Width() {
				t.Fatalf("gate %d touches wire %d outside width %d", i, w, n.Width())
			}
		}
	}
}
