package core

import "testing"

// TestKGateCountMatchesBuiltNetworks: the recurrence must reproduce the
// builder's gate count exactly for every factorization — a structural
// check that the implementation follows the paper's recursion shape.
func TestKGateCountMatchesBuiltNetworks(t *testing.T) {
	cases := [][]int{
		{2}, {5}, {2, 2}, {3, 5}, {2, 2, 2}, {2, 3, 5}, {5, 3, 2},
		{4, 4, 4}, {2, 2, 2, 2}, {3, 3, 3, 3}, {2, 3, 4, 5},
		{2, 2, 2, 2, 2}, {5, 4, 3, 2, 2}, {2, 2, 2, 2, 2, 2},
	}
	for _, fs := range cases {
		n, err := K(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := n.Size(), KGateCount(fs); got != want {
			t.Errorf("K%v: built %d gates, recurrence %d", fs, got, want)
		}
	}
}

// TestKMergerGatesMatchesBuilt: the merger-level recurrence too.
func TestKMergerGatesMatchesBuilt(t *testing.T) {
	for _, fs := range [][]int{{2, 2}, {2, 3, 4}, {3, 3, 3}, {2, 2, 2, 2}, {2, 3, 4, 5}} {
		m, err := MergerNetwork(KConfig(), fs...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.Size(), kMergerGates(fs); got != want {
			t.Errorf("M%v: built %d gates, recurrence %d", fs, got, want)
		}
	}
}

// TestKStaircaseGates: and the staircase level.
func TestKStaircaseGates(t *testing.T) {
	for _, c := range [][3]int{{1, 2, 2}, {2, 2, 2}, {3, 2, 2}, {2, 3, 3}, {4, 3, 2}, {3, 3, 5}} {
		s, err := StaircaseNetwork(KConfig(), c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Size(), kStaircaseGates(c[0], c[1], c[2]); got != want {
			t.Errorf("S(%d,%d,%d): built %d gates, recurrence %d", c[0], c[1], c[2], got, want)
		}
	}
}

// TestRGateCountMatchesBuilt: the R recurrence must reproduce the
// builder exactly across the structural sweep range.
func TestRGateCountMatchesBuilt(t *testing.T) {
	for p := 2; p <= 24; p++ {
		for q := 2; q <= 24; q++ {
			n, err := R(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := n.Size(), RGateCount(p, q); got != want {
				t.Errorf("R(%d,%d): built %d gates, recurrence %d", p, q, got, want)
			}
		}
	}
}

// TestLGateCountMatchesBuilt: and the full L recurrence.
func TestLGateCountMatchesBuilt(t *testing.T) {
	cases := [][]int{
		{2}, {2, 2}, {3, 5}, {2, 2, 2}, {2, 3, 5}, {5, 3, 2},
		{4, 4, 4}, {2, 2, 2, 2}, {3, 3, 2, 2}, {2, 3, 4, 5},
		{2, 2, 2, 2, 2},
	}
	for _, fs := range cases {
		n, err := L(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := n.Size(), LGateCount(fs); got != want {
			t.Errorf("L%v: built %d gates, recurrence %d", fs, got, want)
		}
	}
}

// TestKGateCountDegenerate covers the trivial arities.
func TestKGateCountDegenerate(t *testing.T) {
	if KGateCount(nil) != 0 {
		t.Error("empty factorization should have 0 gates")
	}
	if KGateCount([]int{7}) != 1 || KGateCount([]int{3, 9}) != 1 {
		t.Error("n<=2 is a single balancer")
	}
}
