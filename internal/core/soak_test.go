package core

import (
	"math/rand"
	"testing"

	"countnet/internal/runner"
	"countnet/internal/seq"
	"countnet/internal/verify"
)

// Soak tests: heavier sweeps that earn their runtime. All skipped
// under -short.

func TestSoakLargeFactorizationsCount(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(1001))
	cases := [][]int{
		{7, 6, 5},          // width 210
		{4, 4, 4, 4},       // width 256
		{3, 3, 3, 3, 3},    // width 243
		{2, 2, 2, 2, 2, 2}, // width 64, n=6
		{11, 13},           // large prime pair
		{9, 8, 7},          // width 504
	}
	for _, fs := range cases {
		k, err := K(fs...)
		if err != nil {
			t.Fatal(err)
		}
		l, err := L(fs...)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			in := make([]int64, k.Width())
			for i := range in {
				in[i] = int64(rng.Intn(1000))
			}
			if out := runner.ApplyTokens(k, in); !seq.IsStep(out) {
				t.Fatalf("K%v fails on trial %d", fs, trial)
			}
			if out := runner.ApplyTokens(l, in); !seq.IsStep(out) {
				t.Fatalf("L%v fails on trial %d", fs, trial)
			}
		}
		if err := verify.CheckBalancerWidth(l, MaxFactor(fs)); err != nil {
			t.Errorf("L%v: %v", fs, err)
		}
		if got, want := k.Depth(), KDepth(len(fs)); got != want {
			t.Errorf("K%v: depth %d != %d", fs, got, want)
		}
	}
}

func TestSoakRBigGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(1002))
	for p := 13; p <= 19; p++ {
		for q := 13; q <= 19; q++ {
			n, err := R(p, q)
			if err != nil {
				t.Fatal(err)
			}
			m := p
			if q > m {
				m = q
			}
			if n.Depth() > RDepthBound {
				t.Errorf("R(%d,%d) depth %d", p, q, n.Depth())
			}
			if err := verify.CheckBalancerWidth(n, m); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
			for trial := 0; trial < 30; trial++ {
				in := make([]int64, n.Width())
				for i := range in {
					in[i] = int64(rng.Intn(500))
				}
				if out := runner.ApplyTokens(n, in); !seq.IsStep(out) {
					t.Fatalf("R(%d,%d) fails on %v", p, q, in)
				}
			}
		}
	}
}

func TestSoakSortingLargeWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(1003))
	l, err := L(5, 5, 5) // width 125
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		in := make([]int64, 125)
		for i := range in {
			in[i] = int64(rng.Intn(3)) // many duplicates stress stability of ranking
		}
		out := runner.ApplyComparators(l, in)
		for i := 1; i < len(out); i++ {
			if out[i-1] < out[i] {
				t.Fatalf("not sorted at trial %d", trial)
			}
		}
	}
}
