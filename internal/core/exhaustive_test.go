package core

import (
	"testing"

	"countnet/internal/network"
	"countnet/internal/verify"
)

// TestFamiliesSortAllZeroOneInputs: the 0-1 principle, exhaustively,
// for family networks of width <= 14 — 2^w batches each, the strongest
// per-network sorting guarantee that can be checked completely.
func TestFamiliesSortAllZeroOneInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 0-1 sweep")
	}
	cases := []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"K(2,2)", func() (*network.Network, error) { return K(2, 2) }},
		{"K(2,3)", func() (*network.Network, error) { return K(2, 3) }},
		{"K(3,4)", func() (*network.Network, error) { return K(3, 4) }},
		{"K(2,2,3)", func() (*network.Network, error) { return K(2, 2, 3) }},
		{"L(2,2)", func() (*network.Network, error) { return L(2, 2) }},
		{"L(2,5)", func() (*network.Network, error) { return L(2, 5) }},
		{"L(3,4)", func() (*network.Network, error) { return L(3, 4) }},
		{"L(2,2,3)", func() (*network.Network, error) { return L(2, 2, 3) }},
		{"R(3,4)", func() (*network.Network, error) { return R(3, 4) }},
		{"R(2,7)", func() (*network.Network, error) { return R(2, 7) }},
		{"R(2,6)", func() (*network.Network, error) { return R(2, 6) }},
	}
	for _, c := range cases {
		built, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		bad, err := verify.SortsZeroOne(built, 14)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if bad != nil {
			t.Errorf("%s fails to sort 0-1 input %v", c.name, bad)
		}
	}
}

// TestFamiliesCountExhaustiveTinyWide: bounded-exhaustive token sweeps
// with a deeper per-wire range than the standard battery uses.
func TestFamiliesCountExhaustiveTinyWide(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive token sweep")
	}
	cases := []struct {
		name  string
		build func() (*network.Network, error)
		max   int
	}{
		{"K(2,2)", func() (*network.Network, error) { return K(2, 2) }, 7},
		{"L(2,2)", func() (*network.Network, error) { return L(2, 2) }, 7},
		{"R(2,3)", func() (*network.Network, error) { return R(2, 3) }, 5},
		{"K(2,3)", func() (*network.Network, error) { return K(2, 3) }, 5},
		{"L(3,2)", func() (*network.Network, error) { return L(3, 2) }, 5},
	}
	for _, c := range cases {
		built, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if bad := verify.CountsExhaustive(built, c.max); bad != nil {
			t.Errorf("%s fails step property on %v", c.name, bad)
		}
	}
}
