package core

import (
	"math/rand"
	"testing"

	"countnet/internal/runner"
	"countnet/internal/seq"
)

// mergerInput builds token counts for a standalone merger network:
// p(n-1) contiguous step sequences of length w(n-2) with arbitrary,
// independent sums (the merger requires only the step property of each
// input, no staircase relation).
func mergerInput(factors []int, sums []int64) []int64 {
	n := len(factors)
	each := Product(factors[:n-1])
	in := make([]int64, 0, each*factors[n-1])
	for _, s := range sums {
		in = append(in, seq.MakeStep(each, s)...)
	}
	return in
}

// TestMergerExhaustiveSmall: M(p0,p1,p2) over all sum tuples in a box.
func TestMergerExhaustiveSmall(t *testing.T) {
	for _, fs := range [][]int{{2, 2, 2}, {2, 2, 3}, {3, 2, 2}, {2, 3, 2}} {
		for _, cfg := range []Config{KConfig(), LConfig()} {
			net, err := MergerNetwork(cfg, fs...)
			if err != nil {
				t.Fatalf("M%v: %v", fs, err)
			}
			if err := net.Validate(); err != nil {
				t.Fatalf("M%v invalid: %v", fs, err)
			}
			n := len(fs)
			each := Product(fs[:n-1])
			numIn := fs[n-1]
			sums := make([]int64, numIn)
			var rec func(i int) bool
			rec = func(i int) bool {
				if i == numIn {
					in := mergerInput(fs, sums)
					out := runner.ApplyTokens(net, in)
					if !seq.IsStep(out) {
						t.Errorf("M%v on sums %v: output %v not step", fs, sums, out)
						return false
					}
					return true
				}
				for s := int64(0); s <= int64(2*each+1); s++ {
					sums[i] = s
					if !rec(i + 1) {
						return false
					}
				}
				return true
			}
			rec(0)
		}
	}
}

// TestMergerRandomLarger: randomized sums on 4- and 5-factor mergers.
func TestMergerRandomLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, fs := range [][]int{{2, 2, 2, 2}, {2, 3, 2, 2}, {3, 2, 2, 3}, {2, 2, 2, 2, 2}} {
		for _, cfg := range []Config{KConfig(), LConfig()} {
			net, err := MergerNetwork(cfg, fs...)
			if err != nil {
				t.Fatalf("M%v: %v", fs, err)
			}
			n := len(fs)
			each := Product(fs[:n-1])
			for trial := 0; trial < 400; trial++ {
				sums := make([]int64, fs[n-1])
				for i := range sums {
					sums[i] = int64(rng.Intn(4 * each))
				}
				in := mergerInput(fs, sums)
				out := runner.ApplyTokens(net, in)
				if !seq.IsStep(out) {
					t.Fatalf("M%v on sums %v: output %v not step", fs, sums, out)
				}
				if seq.Sum(out) != seq.Sum(in) {
					t.Fatalf("M%v: token loss", fs)
				}
			}
		}
	}
}

// TestMergerDepthProposition3: for the K base (d=1, sd=3) the merger
// depth matches d + (n-2)*sd exactly on uniform factorizations.
func TestMergerDepthProposition3(t *testing.T) {
	for _, fs := range [][]int{{2, 2}, {2, 2, 2}, {2, 2, 2, 2}, {3, 3, 3}, {2, 3, 4, 5}} {
		net, err := MergerNetwork(KConfig(), fs...)
		if err != nil {
			t.Fatal(err)
		}
		want := MDepth(len(fs), 1, 3)
		if net.Depth() != want {
			t.Errorf("M%v depth %d, want %d (Prop 3)", fs, net.Depth(), want)
		}
	}
}

// TestMergerBaseCase: M(p0,p1) is exactly the base network.
func TestMergerBaseCase(t *testing.T) {
	net, err := MergerNetwork(KConfig(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 1 || net.MaxGateWidth() != 12 {
		t.Errorf("M(3,4) with balancer base: %d gates, max width %d", net.Size(), net.MaxGateWidth())
	}
}

// TestMergerStepInputRequired documents the precondition has teeth:
// non-step inputs can produce non-step outputs.
func TestMergerStepInputRequired(t *testing.T) {
	net, err := MergerNetwork(KConfig(), 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed step sequences (ascending) violate the precondition.
	in := []int64{0, 5, 0, 0, 0, 0, 0, 0}
	out := runner.ApplyTokens(net, in)
	if seq.IsStep(out) {
		t.Log("note: M(2,2,2) fixed this non-step input anyway")
	}
}

// TestMergerRejectsBadParams covers validation.
func TestMergerRejectsBadParams(t *testing.T) {
	if _, err := MergerNetwork(KConfig(), 5); err == nil {
		t.Error("single-factor merger accepted")
	}
	if _, err := MergerNetwork(KConfig(), 1, 2); err == nil {
		t.Error("factor 1 accepted")
	}
	if _, err := MergerNetwork(Config{}, 2, 2); err == nil {
		t.Error("nil base accepted")
	}
}

// TestMergerProposition2 checks the staircase lemma on live data: run
// the sub-mergers of M(p0,p1,p2) and confirm their outputs satisfy the
// p2-staircase property for random step inputs.
func TestMergerProposition2(t *testing.T) {
	// Build only the sub-merger stage by hand: inputs X_j split by
	// stride across p1 copies of M(p0,p2)=C(p0,p2).
	fs := []int{2, 3, 2} // p0=2, p1=3, p2=2
	w := Product(fs)
	b := newTestBuilder(w)
	id := identity(w)
	each := Product(fs[:2]) // 6
	inputs := [][]int{id[0:each], id[each : 2*each]}
	pn1, pn2 := fs[2], fs[1]
	ys := make([][]int, pn2)
	for i := 0; i < pn2; i++ {
		var sub []int
		for j := 0; j < pn1; j++ {
			sub = append(sub, seq.Stride(inputs[j], i, pn2)...)
		}
		b.Add(sub, "subM")
		ys[i] = sub
	}
	net := b.Build("subMergers", nil)

	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 500; trial++ {
		in := make([]int64, w)
		s0, s1 := int64(rng.Intn(20)), int64(rng.Intn(20))
		copy(in[0:each], seq.MakeStep(each, s0))
		copy(in[each:], seq.MakeStep(each, s1))
		outWires := runner.ApplyTokens(net, in) // identity order: counts per wire
		ysCounts := make([][]int64, pn2)
		for i, y := range ys {
			ysCounts[i] = make([]int64, len(y))
			for k, wire := range y {
				ysCounts[i][k] = outWires[wire]
			}
		}
		if !seq.IsStaircase(ysCounts, int64(pn1)) {
			t.Fatalf("Proposition 2 violated on sums (%d,%d): %v", s0, s1, ysCounts)
		}
	}
}
