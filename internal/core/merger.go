package core

import (
	"fmt"

	"countnet/internal/network"
	"countnet/internal/seq"
)

// merger appends the merger network M(p0,...,pn-1) of Section 4.2.
// inputs holds the p(n-1) input orderings X_0..X_{p(n-1)-1}, each of
// length w(n-2) = p0*...*p(n-2). If each input carries a step sequence,
// the returned ordering of all w(n-1) wires carries a step sequence.
//
// For n == 2 the merger is the base network C(p0,p1). For n > 2, take
// p(n-2) copies of M(p0,..,p(n-3),p(n-1)); copy i receives the strided
// subsequences X_j[i, p(n-2)]; their outputs Y_0..Y_{p(n-2)-1} satisfy
// the p(n-1)-staircase property (Proposition 2) and are merged by the
// staircase-merger S(w(n-3), p(n-1), p(n-2)).
func (e *buildEnv) merger(factors []int, inputs [][]int, label string) []int {
	n := len(factors)
	if n < 2 {
		panic(fmt.Sprintf("core: merger %q with %d factors", label, n))
	}
	if len(inputs) != factors[n-1] {
		panic(fmt.Sprintf("core: merger %q got %d inputs, want p(n-1)=%d", label, len(inputs), factors[n-1]))
	}
	wEach := Product(factors[:n-1]) // w(n-2): length of each input sequence
	for i, x := range inputs {
		if len(x) != wEach {
			panic(fmt.Sprintf("core: merger %q input %d has length %d, want w(n-2)=%d", label, i, len(x), wEach))
		}
	}
	if n == 2 {
		return e.callBase(seq.Concat(inputs...), factors[0], factors[1], label+"/M.base")
	}
	flat := seq.Concat(inputs...)
	return e.cached(e.keyFactors("M", factors, true), flat, label, func(e *buildEnv, in []int, label string) []int {
		parts := make([][]int, len(inputs))
		for i := range parts {
			parts[i] = in[i*wEach : (i+1)*wEach]
		}
		return e.mergerRaw(factors, parts, label)
	})
}

// mergerRaw derives the recursive merger; merger memoizes around it.
func (e *buildEnv) mergerRaw(factors []int, inputs [][]int, label string) []int {
	n := len(factors)

	pn1 := factors[n-1] // p(n-1): number of input sequences
	pn2 := factors[n-2] // p(n-2): number of sub-merger copies

	// Sub-merger factor list: p0,...,p(n-3),p(n-1).
	subFactors := append(append([]int(nil), factors[:n-2]...), pn1)
	ys := make([][]int, pn2)
	for i := 0; i < pn2; i++ {
		subInputs := make([][]int, pn1)
		for j := 0; j < pn1; j++ {
			subInputs[j] = seq.Stride(inputs[j], i, pn2)
		}
		ys[i] = e.merger(subFactors, subInputs, label)
	}

	// S(w(n-3), p(n-1), p(n-2)).
	r := Product(factors[:n-2])
	return e.staircase(r, pn1, pn2, ys, label)
}

// buildCounting appends the counting network C(p0,...,pn-1) of Section
// 4.1 over the wires `in` and returns the output ordering. For n == 1
// the network is a single balancer; for n == 2 it is the base network;
// for n > 2 it is p(n-1) copies of C(p0..p(n-2)) followed by the merger
// M(p0..p(n-1)).
func (e *buildEnv) counting(in []int, factors []int, label string) []int {
	n := len(factors)
	switch {
	case n == 0:
		panic("core: counting with no factors")
	case n == 1:
		e.b.Add(in, label+"/C.balancer")
		return in
	case n == 2:
		return e.callBase(in, factors[0], factors[1], label+"/C.base")
	}
	return e.cached(e.keyFactors("C", factors, true), in, label, func(e *buildEnv, in []int, label string) []int {
		pn1 := factors[n-1]
		blockLen := len(in) / pn1
		outs := make([][]int, pn1)
		for i := 0; i < pn1; i++ {
			outs[i] = e.counting(in[i*blockLen:(i+1)*blockLen], factors[:n-1], label)
		}
		return e.merger(factors, outs, label)
	})
}

// MergerNetwork builds a standalone M(p0,...,pn-1) under cfg. Input
// sequence X_i occupies the contiguous wires [i*w(n-2), (i+1)*w(n-2)).
func MergerNetwork(cfg Config, factors ...int) (*network.Network, error) {
	if err := ValidateFactors(factors); err != nil {
		return nil, err
	}
	if len(factors) < 2 {
		return nil, fmt.Errorf("core: merger needs at least two factors")
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("core: config without base network")
	}
	w := Product(factors)
	n := len(factors)
	each := w / factors[n-1]
	b := network.NewBuilder(w)
	id := network.Identity(w)
	inputs := make([][]int, factors[n-1])
	for i := range inputs {
		inputs[i] = id[i*each : (i+1)*each]
	}
	name := factorsName("M", factors)
	out := newEnv(b, cfg).merger(factors, inputs, name)
	return b.Build(name, out), nil
}
