package core

import (
	"fmt"

	"countnet/internal/network"
)

// staircase appends the staircase-merger S(r,p,q) of Section 4.3 to the
// builder. xs holds the q input orderings X_0..X_{q-1}, each of length
// r*p. If each X_i carries a step sequence and together they satisfy
// the p-staircase property, the returned ordering of all r*p*q wires
// carries a step sequence.
//
// The input sequences are the columns of an (r*p) x q matrix A, which
// is partitioned into r blocks A_0..A_{r-1} of p rows each; block
// sequences are read in row-major order, and the output is A in
// row-major order, i.e. the concatenation of the final block orderings.
func (e *buildEnv) staircase(r, p, q int, xs [][]int, label string) []int {
	if len(xs) != q {
		panic(fmt.Sprintf("core: staircase %q got %d inputs, want q=%d", label, len(xs), q))
	}
	for i, x := range xs {
		if len(x) != r*p {
			panic(fmt.Sprintf("core: staircase %q input %d has length %d, want r*p=%d", label, i, len(x), r*p))
		}
	}
	flat := make([]int, 0, r*p*q)
	for _, x := range xs {
		flat = append(flat, x...)
	}
	return e.cached(e.key3("S", r, p, q, true), flat, label, func(e *buildEnv, in []int, label string) []int {
		parts := make([][]int, q)
		for i := range parts {
			parts[i] = in[i*r*p : (i+1)*r*p]
		}
		return e.staircaseRaw(r, p, q, parts, label)
	})
}

// staircaseRaw derives the staircase gate-by-gate; staircase memoizes
// around it.
func (e *buildEnv) staircaseRaw(r, p, q int, xs [][]int, label string) []int {
	b, cfg := e.b, e.cfg

	// Block i, read in row-major order: element j of the block sits in
	// absolute row i*p + j/q, column j%q; column c of A is xs[c].
	blocks := make([][]int, r)
	for i := 0; i < r; i++ {
		blk := make([]int, p*q)
		for j := 0; j < p*q; j++ {
			blk[j] = xs[j%q][i*p+j/q]
		}
		blocks[i] = blk
	}

	// First layer: give each block the step property with the base
	// counting network C(p,q).
	for i := 0; i < r; i++ {
		blocks[i] = e.callBase(blocks[i], p, q, label+"/S.base")
	}
	if r == 1 {
		// A single block: the base network already produced the step
		// property over the whole output.
		return blocks[0]
	}

	switch cfg.Staircase {
	case StaircaseOptBase, StaircaseOptBitonic:
		// Section 4.3.1: a layer ell of 2-balancers connects the lower
		// half of each block with the upper half of the cyclically next
		// block: element pq-1-j of A_i with element j of A_{i+1 mod r},
		// first output (north) to the A_i side. Afterwards the
		// discrepancy is confined to a single block as a bitonic
		// sequence (Proposition 4).
		s := (p * q) / 2
		for i := 0; i < r; i++ {
			up := blocks[i]         // block A_i: lower half participates
			down := blocks[(i+1)%r] // block A_{i+1 mod r}: upper half participates
			for j := 0; j < s; j++ {
				// North (the balancer's first output) is the element in the
				// lower-indexed block: A_i for interior boundaries, A_0 for
				// the cyclic wrap boundary between A_{r-1} and A_0.
				if i == r-1 {
					b.Add([]int{down[j], up[p*q-1-j]}, label+"/S.ell")
				} else {
					b.Add([]int{up[p*q-1-j], down[j]}, label+"/S.ell")
				}
			}
		}
		// Final layer: fix the bitonic discrepancy in every block.
		for i := 0; i < r; i++ {
			if cfg.Staircase == StaircaseOptBase {
				blocks[i] = e.callBase(blocks[i], p, q, label+"/S.fin")
			} else {
				blocks[i] = e.bitonic(p, blocks[i], label+"/S.D")
			}
		}

	case StaircaseBasic, StaircaseBasicSub:
		// Section 4.3: merge adjacent blocks with two-mergers T(p,q,q),
		// odd-even-transposition style over blocks, wrapping cyclically.
		sub := cfg.Staircase == StaircaseBasicSub
		mergePair := func(upper, lower int) {
			// The cyclic wrap pair is (A_{r-1}, A_0); globally A_0 is the
			// top block, so it takes the excess.
			if upper > lower {
				upper, lower = lower, upper
			}
			out := e.twoMerger(p, blocks[upper], blocks[lower], sub, label+"/S.T")
			blocks[upper] = out[:p*q]
			blocks[lower] = out[p*q:]
		}
		// First layer: (A_0,A_1), (A_2,A_3), ...
		for i := 0; 2*i+1 < r; i++ {
			mergePair(2*i, 2*i+1)
		}
		// Second layer: (A_1,A_2), (A_3,A_4), ..., wrapping to A_0 when
		// r is even.
		for i := 0; 2*i+1 < r; i++ {
			if u, l := 2*i+1, (2*i+2)%r; u != l {
				mergePair(u, l)
			}
		}
		// Third layer for odd r: the wrap pair (A_{r-1}, A_0).
		if r%2 == 1 && r > 1 {
			mergePair(r-1, 0)
		}

	default:
		panic(fmt.Sprintf("core: unknown staircase kind %v", cfg.Staircase))
	}

	out := make([]int, 0, r*p*q)
	for i := 0; i < r; i++ {
		out = append(out, blocks[i]...)
	}
	return out
}

// StaircaseNetwork builds a standalone S(r,p,q) under cfg. Input
// sequence X_i occupies the contiguous wires [i*r*p, (i+1)*r*p).
func StaircaseNetwork(cfg Config, r, p, q int) (*network.Network, error) {
	if r < 1 || p < 1 || q < 1 {
		return nil, fmt.Errorf("core: invalid staircase S(%d,%d,%d)", r, p, q)
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("core: config without base network")
	}
	width := r * p * q
	b := network.NewBuilder(width)
	xs := make([][]int, q)
	for i := 0; i < q; i++ {
		xs[i] = network.Identity(width)[i*r*p : (i+1)*r*p]
	}
	name := fmt.Sprintf("S(%d,%d,%d)", r, p, q)
	out := newEnv(b, cfg).staircase(r, p, q, xs, name)
	return b.Build(name, out), nil
}
