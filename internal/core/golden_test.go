package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"countnet/internal/network"
)

var updateGolden = flag.Bool("update", false, "rewrite golden network files")

// goldenNetworks pins the exact gate-level structure of representative
// constructions. Any change to the construction code that alters
// wiring — even behaviour-preserving — shows up here and must be
// deliberate (regenerate with `go test ./internal/core -run Golden -update`).
func goldenNetworks() map[string]func() (*network.Network, error) {
	return map[string]func() (*network.Network, error){
		"K_2_2_2":  func() (*network.Network, error) { return K(2, 2, 2) },
		"L_2_3":    func() (*network.Network, error) { return L(2, 3) },
		"R_3_3":    func() (*network.Network, error) { return R(3, 3) },
		"R_5_7":    func() (*network.Network, error) { return R(5, 7) },
		"T_3_2_2":  func() (*network.Network, error) { return TwoMergerNetwork(3, 2, 2) },
		"D_3_4":    func() (*network.Network, error) { return BitonicConverterNetwork(3, 4) },
		"S_3_2_2K": func() (*network.Network, error) { return StaircaseNetwork(KConfig(), 3, 2, 2) },
		"S_2_2_2L": func() (*network.Network, error) { return StaircaseNetwork(LConfig(), 2, 2, 2) },
	}
}

func TestGoldenNetworks(t *testing.T) {
	for name, build := range goldenNetworks() {
		t.Run(name, func(t *testing.T) {
			n, err := build()
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.MarshalIndent(n, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != string(data) {
				t.Errorf("construction drifted from golden file %s;\nif intentional, regenerate with -update", path)
			}
			// Golden files must themselves decode into valid networks.
			var back network.Network
			if err := json.Unmarshal(want, &back); err != nil {
				t.Fatalf("golden file does not decode: %v", err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("golden network invalid: %v", err)
			}
		})
	}
}
