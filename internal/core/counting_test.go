package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
	"countnet/internal/verify"
)

func TestValidateFactors(t *testing.T) {
	ok := [][]int{{2}, {2, 2}, {7, 3, 2}}
	for _, fs := range ok {
		if err := ValidateFactors(fs); err != nil {
			t.Errorf("ValidateFactors(%v) = %v", fs, err)
		}
	}
	bad := [][]int{nil, {}, {1}, {0, 2}, {2, -3}, {1 << 20, 1 << 20}}
	for _, fs := range bad {
		if err := ValidateFactors(fs); err == nil {
			t.Errorf("ValidateFactors(%v) accepted", fs)
		}
	}
}

func TestProductAndBounds(t *testing.T) {
	if Product([]int{2, 3, 5}) != 30 || Product(nil) != 1 {
		t.Error("Product wrong")
	}
	if MaxPairProduct([]int{2, 3, 5}) != 15 {
		t.Errorf("MaxPairProduct = %d", MaxPairProduct([]int{2, 3, 5}))
	}
	if MaxPairProduct([]int{4, 4, 2}) != 16 {
		t.Errorf("MaxPairProduct duplicate = %d", MaxPairProduct([]int{4, 4, 2}))
	}
	if MaxPairProduct([]int{7}) != 7 {
		t.Errorf("MaxPairProduct single = %d", MaxPairProduct([]int{7}))
	}
	if MaxFactor([]int{2, 9, 5}) != 9 {
		t.Error("MaxFactor wrong")
	}
}

func TestDepthFormulas(t *testing.T) {
	// Spot values from the paper.
	if KDepth(2) != 1 {
		t.Errorf("KDepth(2) = %d, want 1", KDepth(2))
	}
	if KDepth(3) != 5 {
		t.Errorf("KDepth(3) = %d, want 5", KDepth(3))
	}
	if KDepth(4) != 12 {
		t.Errorf("KDepth(4) = %d, want 12 (used by R's quadrant A)", KDepth(4))
	}
	if LDepthBound(2) != 16 {
		t.Errorf("LDepthBound(2) = %d, want 16", LDepthBound(2))
	}
	if LDepthBound(3) != 51 {
		t.Errorf("LDepthBound(3) = %d, want 9.5*9-12.5*3+3 = 51", LDepthBound(3))
	}
	// Consistency with the generic Proposition 1 accounting.
	for n := 2; n <= 9; n++ {
		if KDepth(n) != CDepth(n, 1, 3) {
			t.Errorf("KDepth(%d) = %d != CDepth(%d,1,3) = %d", n, KDepth(n), n, CDepth(n, 1, 3))
		}
		if LDepthBound(n) != CDepth(n, 16, 19) {
			t.Errorf("LDepthBound(%d) = %d != CDepth(%d,16,19) = %d", n, LDepthBound(n), n, CDepth(n, 16, 19))
		}
	}
	if MDepth(5, 1, 3) != 10 {
		t.Errorf("MDepth(5,1,3) = %d", MDepth(5, 1, 3))
	}
	if CDepth(1, 7, 3) != 7 || MDepth(1, 7, 3) != 7 {
		t.Error("n<2 depth accounting should return d")
	}
}

// TestKDepthExact reproduces Proposition 6 as an equality over a broad
// factorization sweep: the critical-path depth of K equals the formula.
func TestKDepthExact(t *testing.T) {
	sweeps := [][]int{
		{2, 2}, {9, 5}, {2, 2, 2}, {5, 3, 2}, {2, 3, 5}, {4, 4, 4},
		{2, 2, 2, 2}, {3, 4, 5, 6}, {6, 5, 4, 3}, {2, 2, 2, 2, 2},
		{3, 2, 3, 2, 3}, {2, 2, 2, 2, 2, 2}, {2, 2, 3, 3, 2, 2},
		{2, 2, 2, 2, 2, 2, 2},
	}
	for _, fs := range sweeps {
		n, err := K(fs...)
		if err != nil {
			t.Fatalf("K%v: %v", fs, err)
		}
		want := KDepth(len(fs))
		if n.Depth() != want {
			t.Errorf("K%v depth %d, want exactly %d (Prop 6)", fs, n.Depth(), want)
		}
		if err := verify.CheckBalancerWidth(n, MaxPairProduct(fs)); err != nil {
			t.Errorf("K%v: %v", fs, err)
		}
	}
}

// TestLBounds verifies Theorem 7's depth bound and the max(pi) balancer
// width bound over a broad sweep.
func TestLBounds(t *testing.T) {
	sweeps := [][]int{
		{2, 2}, {7, 5}, {13, 11}, {2, 2, 2}, {5, 3, 2}, {7, 6, 5},
		{2, 2, 2, 2}, {3, 4, 5, 6}, {9, 2, 9, 2}, {2, 2, 2, 2, 2},
		{2, 3, 2, 3, 2, 3},
	}
	for _, fs := range sweeps {
		n, err := L(fs...)
		if err != nil {
			t.Fatalf("L%v: %v", fs, err)
		}
		if n.Depth() > LDepthBound(len(fs)) {
			t.Errorf("L%v depth %d > bound %d (Thm 7)", fs, n.Depth(), LDepthBound(len(fs)))
		}
		if err := verify.CheckBalancerWidth(n, MaxFactor(fs)); err != nil {
			t.Errorf("L%v: %v", fs, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("L%v: %v", fs, err)
		}
	}
}

// TestKCountsExhaustiveTiny: bounded-exhaustive token check on the
// smallest interesting K networks.
func TestKCountsExhaustiveTiny(t *testing.T) {
	for _, fs := range [][]int{{2, 2}, {2, 3}, {3, 2}, {2, 2, 2}} {
		n, err := K(fs...)
		if err != nil {
			t.Fatal(err)
		}
		maxPer := 3
		if n.Width() > 6 {
			maxPer = 2
		}
		if bad := verify.CountsExhaustive(n, maxPer); bad != nil {
			t.Errorf("K%v fails on %v", fs, bad)
		}
	}
}

// TestLCountsExhaustiveTiny: the same for L.
func TestLCountsExhaustiveTiny(t *testing.T) {
	for _, fs := range [][]int{{2, 2}, {2, 3}, {3, 2}} {
		n, err := L(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if bad := verify.CountsExhaustive(n, 3); bad != nil {
			t.Errorf("L%v fails on %v", fs, bad)
		}
	}
}

// TestSingleFactorNetworks: n == 1 degenerates to one balancer.
func TestSingleFactorNetworks(t *testing.T) {
	k, err := K(5)
	if err != nil {
		t.Fatal(err)
	}
	if k.Size() != 1 || k.Depth() != 1 || k.MaxGateWidth() != 5 {
		t.Errorf("K(5) should be a single 5-balancer: %v", k)
	}
	l, err := L(4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 1 || l.Depth() != 1 {
		t.Errorf("L(4) should be a single balancer: %v", l)
	}
	if bad := verify.CountsExhaustive(k, 3); bad != nil {
		t.Errorf("K(5) fails on %v", bad)
	}
}

// TestConstructorsRejectBadFactors: public constructors validate.
func TestConstructorsRejectBadFactors(t *testing.T) {
	if _, err := K(); err == nil {
		t.Error("K() accepted")
	}
	if _, err := K(1, 2); err == nil {
		t.Error("K(1,2) accepted")
	}
	if _, err := L(0); err == nil {
		t.Error("L(0) accepted")
	}
	if _, err := R(1, 2); err == nil {
		t.Error("R(1,2) accepted")
	}
	if _, err := New(Config{Staircase: StaircaseOptBase}, 2, 2); err == nil {
		t.Error("New without base accepted")
	}
}

// TestAllStaircaseVariantsYieldCountingNetworks: the generic C is a
// counting network under every staircase variant and both bases.
func TestAllStaircaseVariantsYieldCountingNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, base := range []struct {
		name string
		fn   BaseFunc
	}{{"balancer", BalancerBase}, {"R", RBase}} {
		for _, kind := range allStaircaseKinds {
			cfg := Config{Base: base.fn, Staircase: kind}
			for _, fs := range [][]int{{2, 2, 2}, {2, 3, 2}, {3, 2, 3}, {2, 2, 2, 2}} {
				n, err := New(cfg, fs...)
				if err != nil {
					t.Fatalf("C%v (%s, %v): %v", fs, base.name, kind, err)
				}
				if err := verify.IsCountingNetwork(n, rng); err != nil {
					t.Errorf("C%v (%s, %v): %v", fs, base.name, kind, err)
				}
			}
		}
	}
}

// TestOutputOrderIsPermutation across constructions.
func TestOutputOrderIsPermutation(t *testing.T) {
	nets := []func() (interface{ Validate() error }, error){
		func() (interface{ Validate() error }, error) { return K(2, 3, 4) },
		func() (interface{ Validate() error }, error) { return L(3, 4, 5) },
		func() (interface{ Validate() error }, error) { return R(7, 9) },
	}
	for i, mk := range nets {
		n, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("net %d: %v", i, err)
		}
	}
}

// TestKQuickProperty: random 3-factor K networks count on random
// inputs (testing/quick drives factor and input selection).
func TestKQuickProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, seed uint8) bool {
		fs := []int{int(aRaw%3) + 2, int(bRaw%3) + 2, int(cRaw%3) + 2}
		n, err := K(fs...)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		in := make([]int64, n.Width())
		for i := range in {
			in[i] = int64(rng.Intn(9))
		}
		out := runner.ApplyTokens(n, in)
		return seq.IsStep(out) && seq.Sum(out) == seq.Sum(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLQuickProperty: the same for L.
func TestLQuickProperty(t *testing.T) {
	f := func(aRaw, bRaw, seed uint8) bool {
		fs := []int{int(aRaw%4) + 2, int(bRaw%4) + 2}
		n, err := L(fs...)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		in := make([]int64, n.Width())
		for i := range in {
			in[i] = int64(rng.Intn(11))
		}
		out := runner.ApplyTokens(n, in)
		return seq.IsStep(out) && seq.Sum(out) == seq.Sum(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFamiliesCrossCheck: the step distribution for a given input total
// is unique, so every width-16 counting network — K, L, R, across
// factorizations — must produce byte-identical outputs on the same
// inputs.
func TestFamiliesCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var nets []*network.Network
	for _, fs := range [][]int{{16}, {8, 2}, {4, 4}, {2, 2, 4}, {2, 2, 2, 2}} {
		k, err := K(fs...)
		if err != nil {
			t.Fatal(err)
		}
		l, err := L(fs...)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, k, l)
	}
	r, err := R(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, r)
	if err := verify.CrossCheck(nets, 400, rng); err != nil {
		t.Error(err)
	}
}

// TestFactorOrderIndependence: the paper notes every ordering of a
// factor multiset yields a (different) counting network with the same
// formula depth; for K the measured depth must be identical across
// orderings.
func TestFactorOrderIndependence(t *testing.T) {
	orders := [][]int{
		{2, 3, 5}, {2, 5, 3}, {3, 2, 5}, {3, 5, 2}, {5, 2, 3}, {5, 3, 2},
	}
	rng := rand.New(rand.NewSource(77))
	var depth0 int
	for i, fs := range orders {
		n, err := K(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			depth0 = n.Depth()
		} else if n.Depth() != depth0 {
			t.Errorf("K%v depth %d differs from K%v depth %d", fs, n.Depth(), orders[0], depth0)
		}
		if err := verify.IsCountingNetwork(n, rng); err != nil {
			t.Errorf("K%v: %v", fs, err)
		}
	}
}

// TestIsomorphismSortingSide: the constructed counting networks also
// sort (0-1 principle exhaustively for small widths).
func TestIsomorphismSortingSide(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	nets := []struct {
		name string
		fs   []int
	}{
		{"K", []int{2, 3}}, {"K", []int{2, 2, 2}}, {"K", []int{2, 2, 3}},
		{"L", []int{2, 3}}, {"L", []int{2, 2, 2}}, {"L", []int{3, 3}},
	}
	for _, c := range nets {
		build := K
		if c.name == "L" {
			build = L
		}
		n, err := build(c.fs...)
		if err != nil {
			t.Fatalf("%s%v: %v", c.name, c.fs, err)
		}
		if verr := verify.IsSortingNetwork(n, rng); verr != nil {
			t.Errorf("%s%v: %v", c.name, c.fs, verr)
		}
	}
}
