// Package core implements every construction of Busch & Herlihy,
// "Sorting and Counting Networks of Small Depth and Arbitrary Width"
// (SPAA 1999):
//
//   - the two-merger network T(p,q0,q1) and the bitonic-converter
//     D(p,q) of Section 4.4,
//   - the staircase-merger S(r,p,q) of Section 4.3 in all four variants
//     (basic, basic with substituted wide balancers, and the two
//     optimized variants of Section 4.3.1),
//   - the merger M(p0..pn-1) of Section 4.2,
//   - the counting network C(p0..pn-1) of Section 4.1, generic over the
//     base-case network C(p,q),
//   - the concrete families K (Section 5.1), R(p,q) (Section 5.3) and
//     L (Section 5.2), together with their closed-form depth formulas
//     (Propositions 1, 3, 6 and Theorem 7).
//
// Everything is expressed over wire orderings: a "sequence" is an
// ordered list of wire indices, and each construction appends gates to
// a network.Builder and returns the ordering in which its output
// satisfies the step property. The networks are simultaneously sorting
// networks (comparator semantics) and counting networks (balancer
// semantics); see package runner.
package core

import (
	"fmt"

	"countnet/internal/network"
)

// BaseFunc builds a base-case counting network C(p,q) over the p*q
// wires listed in `in` (in input-sequence order) and returns the
// ordering in which the output satisfies the step property. The paper's
// Section 4 assumes such a network "is given"; Section 5 instantiates
// it as a single pq-balancer (family K) or as R(p,q) (family L).
type BaseFunc func(b *network.Builder, in []int, p, q int, label string) []int

// StaircaseKind selects the staircase-merger variant of Sections 4.3
// and 4.3.1.
type StaircaseKind int

const (
	// StaircaseOptBase is the Section 4.3.1 optimization with a final
	// layer of C(p,q): a layer of base networks, one layer of
	// 2-balancers, and a second layer of base networks.
	// depth(S) = 2d + 1. Family K uses this (d = 1, depth 3).
	StaircaseOptBase StaircaseKind = iota
	// StaircaseOptBitonic is the Section 4.3.1 optimization with a
	// final layer of bitonic-converters D(p,q) instead of base
	// networks. depth(S) = d + 3. Family L uses this.
	StaircaseOptBitonic
	// StaircaseBasic is the Section 4.3 construction: a layer of base
	// networks followed by two (or three, for odd r) layers of
	// two-mergers T(p,q,q). depth(S) <= d + 6. Its two-mergers use
	// balancers of width 2q, which may exceed max(p,q).
	StaircaseBasic
	// StaircaseBasicSub is StaircaseBasic with each width-2q balancer
	// substituted by a two-merger T(q,1,1) built from balancers of
	// width 2 and q, as described at the end of Section 4.3.
	// depth(S) <= d + 9.
	StaircaseBasicSub
)

// String names the variant.
func (k StaircaseKind) String() string {
	switch k {
	case StaircaseOptBase:
		return "opt-base(2d+1)"
	case StaircaseOptBitonic:
		return "opt-bitonic(d+3)"
	case StaircaseBasic:
		return "basic(d+6)"
	case StaircaseBasicSub:
		return "basic-sub(d+9)"
	}
	return fmt.Sprintf("StaircaseKind(%d)", int(k))
}

// Config selects the pluggable pieces of the generic construction.
type Config struct {
	// Base builds the assumed-given C(p,q). Required.
	Base BaseFunc
	// Staircase selects the staircase-merger variant.
	Staircase StaircaseKind
}

// BalancerBase is the family-K base: C(p,q) is a single balancer of
// width p*q (depth d = 1).
func BalancerBase(b *network.Builder, in []int, p, q int, label string) []int {
	b.Add(in, label)
	return in
}

// RBase is the family-L base: C(p,q) is the constant-depth network
// R(p,q) of Section 5.3, built from balancers of width at most
// max(p,q).
func RBase(b *network.Builder, in []int, p, q int, label string) []int {
	return newEnv(b, Config{}).buildR(in, p, q, label)
}

// KConfig returns the configuration of family K (Section 5.1).
func KConfig() Config {
	return Config{Base: BalancerBase, Staircase: StaircaseOptBase}
}

// LConfig returns the configuration of family L (Section 5.2).
func LConfig() Config {
	return Config{Base: RBase, Staircase: StaircaseOptBitonic}
}

// ValidateFactors checks a factorization: at least one factor, every
// factor at least 2, and a total width that fits in an int.
func ValidateFactors(factors []int) error {
	if len(factors) == 0 {
		return fmt.Errorf("core: empty factorization")
	}
	w := 1
	for i, p := range factors {
		if p < 2 {
			return fmt.Errorf("core: factor p%d = %d, want >= 2", i, p)
		}
		if w > (1<<31)/p {
			return fmt.Errorf("core: width overflow at factor p%d", i)
		}
		w *= p
	}
	return nil
}

// Product returns the product of the factors.
func Product(factors []int) int {
	w := 1
	for _, p := range factors {
		w *= p
	}
	return w
}

func factorsName(prefix string, factors []int) string {
	s := prefix + "("
	for i, p := range factors {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(p)
	}
	return s + ")"
}

// K builds the counting network K(p0,...,pn-1) of Section 5.1: width
// p0*...*pn-1, balancers of width at most max(pi*pj), and depth exactly
// 1.5n^2 - 3.5n + 2 (Proposition 6) for n >= 2. For n == 1 it is a
// single balancer.
func K(factors ...int) (*network.Network, error) {
	return build(KConfig(), factorsName("K", factors), factors)
}

// L builds the counting network L(p0,...,pn-1) of Section 5.2: width
// p0*...*pn-1, balancers of width at most max(pi), and depth at most
// 9.5n^2 - 12.5n + 3 (Theorem 7).
func L(factors ...int) (*network.Network, error) {
	return build(LConfig(), factorsName("L", factors), factors)
}

// R builds the constant-depth counting network R(p,q) of Section 5.3:
// width p*q, balancers of width at most max(p,q), depth at most 16.
func R(p, q int) (*network.Network, error) {
	if err := ValidateFactors([]int{p, q}); err != nil {
		return nil, err
	}
	b := network.NewBuilder(p * q)
	out := newEnv(b, Config{}).buildR(network.Identity(p*q), p, q, fmt.Sprintf("R(%d,%d)", p, q))
	return b.Build(fmt.Sprintf("R(%d,%d)", p, q), out), nil
}

// New builds the generic counting network C(p0,...,pn-1) of Section 4
// under the given configuration.
func New(cfg Config, factors ...int) (*network.Network, error) {
	return build(cfg, factorsName("C", factors), factors)
}

func build(cfg Config, name string, factors []int) (*network.Network, error) {
	if err := ValidateFactors(factors); err != nil {
		return nil, err
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("core: config without base network")
	}
	w := Product(factors)
	b := network.NewBuilder(w)
	out := newEnv(b, cfg).counting(network.Identity(w), factors, name)
	return b.Build(name, out), nil
}

// KDepth is the exact depth of K(p0..pn-1) from Proposition 6:
// 1.5n^2 - 3.5n + 2 for n >= 2, and 1 for n == 1.
func KDepth(n int) int {
	if n <= 1 {
		return 1
	}
	return (3*n*n - 7*n + 4) / 2
}

// LDepthBound is the depth upper bound for L(p0..pn-1) from Theorem 7:
// 9.5n^2 - 12.5n + 3 for n >= 2, and 16 for n == 1 (a single R would
// not arise, but a lone balancer certainly fits).
func LDepthBound(n int) int {
	if n <= 1 {
		return 16
	}
	return (19*n*n - 25*n + 6) / 2
}

// CDepth is Proposition 1: the depth of the generic C(p0..pn-1) given
// base depth d and staircase depth sd, for n >= 2:
// (n-1)d + (n^2/2 - 3n/2 + 1)sd.
func CDepth(n, d, sd int) int {
	if n < 2 {
		return d
	}
	return (n-1)*d + (n*n-3*n+2)/2*sd
}

// MDepth is Proposition 3: the depth of the merger M(p0..pn-1) given
// base depth d and staircase depth sd: d + (n-2)sd.
func MDepth(n, d, sd int) int {
	if n < 2 {
		return d
	}
	return d + (n-2)*sd
}

// RDepthBound is the Section 5.3 bound on depth(R(p,q)).
const RDepthBound = 16

// MaxPairProduct returns max(pi*pj) over all ordered pairs i != j —
// the balancer width bound of family K. With a single factor it
// returns that factor.
func MaxPairProduct(factors []int) int {
	if len(factors) == 1 {
		return factors[0]
	}
	// The maximum product of two distinct positions is the product of
	// the two largest factors (duplicated values occupy two positions).
	a, bst := 0, 0
	for _, p := range factors {
		if p >= a {
			bst = a
			a = p
		} else if p > bst {
			bst = p
		}
	}
	return a * bst
}

// MaxFactor returns max(pi) — the balancer width bound of family L.
func MaxFactor(factors []int) int {
	m := 0
	for _, p := range factors {
		if p > m {
			m = p
		}
	}
	return m
}
