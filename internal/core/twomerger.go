package core

import (
	"fmt"

	"countnet/internal/network"
)

// twoMerger appends the two-merger network T(p, q0, q1) of Section 4.4
// to the builder. x0 and x1 are the input orderings (lengths p*q0 and
// p*q1, both multiples of p); if each carries a step sequence, the
// returned ordering of the p*(q0+q1) wires carries a step sequence.
//
// Construction (Proposition 5): arrange x0 as a p x q0 matrix in
// column-major form and x1 as a p x q1 matrix in reverse column-major
// form, align them side by side, place a (q0+q1)-balancer across each
// row and then a p-balancer across each column; the output is the
// combined matrix read in column-major order.
//
// When subRows is true, each row balancer of width 2k (requiring
// q0 == q1 == k) is substituted by a two-merger T(k,1,1) made of
// balancers of width 2 and k, as described at the end of Section 4.3.
// The substitution preserves the row invariant (the row ordering it
// returns carries a step sequence) at the cost of two extra layers.
//
// Degenerate widths are handled naturally: empty inputs pass the other
// input through, and width-1 gates are skipped by the builder.
func (e *buildEnv) twoMerger(p int, x0, x1 []int, subRows bool, label string) []int {
	if len(x0) == 0 {
		return x1
	}
	if len(x1) == 0 {
		return x0
	}
	if p < 1 {
		panic(fmt.Sprintf("core: twoMerger %q with p=%d", label, p))
	}
	if len(x0)%p != 0 || len(x1)%p != 0 {
		panic(fmt.Sprintf("core: twoMerger %q inputs %d,%d not multiples of p=%d", label, len(x0), len(x1), p))
	}
	q0, q1 := len(x0)/p, len(x1)/p
	kind := "T"
	if subRows {
		kind = "Ts"
	}
	key := e.key3(kind, p, q0, q1, false)
	flat := make([]int, 0, len(x0)+len(x1))
	flat = append(append(flat, x0...), x1...)
	return e.cached(key, flat, label, func(e *buildEnv, in []int, label string) []int {
		return e.twoMergerRaw(p, in[:p*q0], in[p*q0:], subRows, label)
	})
}

// twoMergerRaw derives the two-merger gate-by-gate; twoMerger memoizes
// around it.
func (e *buildEnv) twoMergerRaw(p int, x0, x1 []int, subRows bool, label string) []int {
	b := e.b
	q0, q1 := len(x0)/p, len(x1)/p
	cols := q0 + q1

	// w[r][c]: the wire in row r, column c of the combined matrix.
	w := make([][]int, p)
	for r := 0; r < p; r++ {
		w[r] = make([]int, cols)
		for c := 0; c < q0; c++ {
			w[r][c] = x0[c*p+r] // column major
		}
		for c := 0; c < q1; c++ {
			w[r][q0+c] = x1[(q1-c-1)*p+(p-r-1)] // reverse column major
		}
	}

	// First layer: one balancer across each row.
	for r := 0; r < p; r++ {
		if subRows && q0 == q1 && cols >= 4 {
			w[r] = e.substituteRow(w[r], label)
		} else {
			b.Add(w[r], label+"/row")
		}
	}
	// Second layer: one balancer across each column.
	col := make([]int, p)
	for c := 0; c < cols; c++ {
		for r := 0; r < p; r++ {
			col[r] = w[r][c]
		}
		b.Add(col, label+"/col")
	}
	// Output: the combined matrix in column-major order.
	out := make([]int, 0, p*cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < p; r++ {
			out = append(out, w[r][c])
		}
	}
	return out
}

// substituteRow replaces a width-2k row balancer by the two-merger
// T(k,1,1). The row holds the left half as a step sequence (stride of a
// column-major step matrix) and the right half as a reversed step
// sequence (stride of a reverse-column-major matrix); T(k,1,1) needs
// two step inputs, so the right half is fed reversed. The returned
// ordering replaces the row left to right.
func (e *buildEnv) substituteRow(row []int, label string) []int {
	k := len(row) / 2
	left := append([]int(nil), row[:k]...)
	right := make([]int, k)
	for i := 0; i < k; i++ {
		right[i] = row[len(row)-1-i]
	}
	return e.twoMerger(k, left, right, false, label+"/rowsub")
}

// TwoMergerNetwork builds a standalone T(p,q0,q1) whose first input
// sequence occupies wires 0..p*q0-1 and second the remaining wires.
// Exposed for direct testing and for the experiment harness.
func TwoMergerNetwork(p, q0, q1 int) (*network.Network, error) {
	if p < 1 || q0 < 0 || q1 < 0 || q0+q1 < 1 {
		return nil, fmt.Errorf("core: invalid two-merger T(%d,%d,%d)", p, q0, q1)
	}
	width := p * (q0 + q1)
	b := network.NewBuilder(width)
	all := network.Identity(width)
	name := fmt.Sprintf("T(%d,%d,%d)", p, q0, q1)
	out := newEnv(b, Config{}).twoMerger(p, all[:p*q0], all[p*q0:], false, name)
	return b.Build(name, out), nil
}
