package core

import "countnet/internal/network"

// Test shorthands.
func newTestBuilder(w int) *network.Builder { return network.NewBuilder(w) }
func identity(w int) []int                  { return network.Identity(w) }
