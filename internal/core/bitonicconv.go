package core

import (
	"fmt"

	"countnet/internal/network"
)

// bitonicConverter appends the bitonic-converter D(p,q) of Section 4.4:
// if the input ordering x (length p*q) carries a sequence with the
// bitonic property (1-smooth with at most two transitions), the
// returned ordering carries a step sequence.
//
// Construction: arrange x as a p x q matrix in column-major form, place
// a q-balancer across each row and then a p-balancer across each
// column; read the result in column-major order. Depth 2, balancers of
// width q and p.
func (e *buildEnv) bitonic(p int, x []int, label string) []int {
	if len(x) == 0 {
		return x
	}
	if p < 1 || len(x)%p != 0 {
		panic(fmt.Sprintf("core: bitonicConverter %q length %d not a multiple of p=%d", label, len(x), p))
	}
	return e.cached(e.key3("D", p, len(x), 0, false), x, label, func(e *buildEnv, in []int, label string) []int {
		return e.bitonicRaw(p, in, label)
	})
}

// bitonicRaw derives the converter gate-by-gate; bitonic memoizes
// around it.
func (e *buildEnv) bitonicRaw(p int, x []int, label string) []int {
	b := e.b
	q := len(x) / p

	w := make([][]int, p)
	for r := 0; r < p; r++ {
		w[r] = make([]int, q)
		for c := 0; c < q; c++ {
			w[r][c] = x[c*p+r] // column major
		}
	}
	for r := 0; r < p; r++ {
		b.Add(w[r], label+"/row")
	}
	col := make([]int, p)
	for c := 0; c < q; c++ {
		for r := 0; r < p; r++ {
			col[r] = w[r][c]
		}
		b.Add(col, label+"/col")
	}
	out := make([]int, 0, p*q)
	for c := 0; c < q; c++ {
		for r := 0; r < p; r++ {
			out = append(out, w[r][c])
		}
	}
	return out
}

// BitonicConverterNetwork builds a standalone D(p,q) over wires
// 0..p*q-1 in input-sequence order.
func BitonicConverterNetwork(p, q int) (*network.Network, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("core: invalid bitonic-converter D(%d,%d)", p, q)
	}
	b := network.NewBuilder(p * q)
	name := fmt.Sprintf("D(%d,%d)", p, q)
	out := newEnv(b, Config{}).bitonic(p, network.Identity(p*q), name)
	return b.Build(name, out), nil
}
