package core

import (
	"reflect"
	"strconv"
	"strings"

	"countnet/internal/network"
)

// The constructions are heavily self-similar: C(p0..pn-1) instantiates
// p(n-1) identical copies of C(p0..pn-2), every merger instantiates
// p(n-2) identical sub-mergers, and every staircase row repeats the
// same base network. All of them are *positional*: the gates a call
// appends depend only on the construction parameters and the order of
// its input wires, never on the wire numbers themselves. A build can
// therefore derive each distinct (construction, parameters) pair once —
// over the identity input 0..m-1, into a throwaway builder — and replay
// the recorded gate list through a wire translation for every further
// occurrence, instead of re-deriving the matrix arithmetic, slicing and
// recursion each time.
//
// The cache is build-scoped: created in the public entry points,
// threaded through the recursion via buildEnv, and dropped when the
// network is built. Replay is gate-for-gate identical to derivation
// (same Add order, same wires, same labels), so golden networks are
// bit-identical with and without the cache.

// tmplGate is one recorded gate: wire positions local to the
// construction's flattened input, plus the label suffix.
type tmplGate struct {
	wires  []int
	suffix string
}

// template is a recorded construction over local input positions
// 0..len-1. lastPrefix/lastLabels cache the per-gate label strings of
// the most recent replay prefix: within one build almost every replay
// of a template shares the same prefix (the top-level network name), so
// the label concatenation is paid once per template, not per gate.
type template struct {
	gates []tmplGate
	out   []int // output ordering in local positions

	lastPrefix string
	lastLabels []string
	hasLast    bool
}

// buildEnv threads one build's builder, configuration and memo cache
// through the construction recursion.
type buildEnv struct {
	b   *network.Builder
	cfg Config
	// memo caches templates by construction key; nil disables
	// memoization (unknown user base functions, whose positional
	// determinism we cannot vouch for).
	memo    map[string]*template
	shared  *envShared
	scratch []int
	tag     string // precomputed cfgTag
	// baseKind routes cfg.Base calls to memoizable implementations:
	// known functions are dispatched directly so their sub-structure
	// lands in the cache too.
	baseKind int
}

// envShared holds build-wide scratch reused across withConfig views:
// the key buffer (keys are built in place and looked up without
// allocating a string) and the wire→local-position stamp table used by
// record (a width-sized array with generation marks, replacing a map
// allocation per recorded template).
type envShared struct {
	keyBuf []byte
	invPos []int32
	invGen []uint32
	gen    uint32
	// outArena backs the output orderings produced by replay: tens of
	// thousands of short-lived slices per build collapse into a few
	// chunk allocations. Exhausted chunks are abandoned, not grown.
	outArena []int
}

// allocOut carves an n-int slice out of the arena.
func (sh *envShared) allocOut(n int) []int {
	if cap(sh.outArena)-len(sh.outArena) < n {
		c := 2 * cap(sh.outArena)
		if c < 1024 {
			c = 1024
		}
		if c > 1<<16 {
			c = 1 << 16
		}
		for c < n {
			c *= 2
		}
		sh.outArena = make([]int, 0, c)
	}
	lo := len(sh.outArena)
	sh.outArena = sh.outArena[:lo+n]
	return sh.outArena[lo : lo+n : lo+n]
}

const (
	baseUnknown = iota
	baseBalancer
	baseRNet
	baseNone // zero Config: construction never calls the base
	// Optimal-sorter bases (optbase.go). Appended after baseNone so
	// the cfgTag strings of the original kinds stay stable.
	baseOptBalancer
	baseOptRNet
)

func funcPtr(f BaseFunc) uintptr {
	if f == nil {
		return 0
	}
	return reflect.ValueOf(f).Pointer()
}

func baseKindOf(f BaseFunc) int {
	switch funcPtr(f) {
	case 0:
		return baseNone
	case funcPtr(BaseFunc(BalancerBase)):
		return baseBalancer
	case funcPtr(BaseFunc(RBase)):
		return baseRNet
	case funcPtr(BaseFunc(OptBalancerBase)):
		return baseOptBalancer
	case funcPtr(BaseFunc(OptRBase)):
		return baseOptRNet
	default:
		return baseUnknown
	}
}

// newEnv prepares a build environment. Memoization is enabled for the
// known base functions (BalancerBase, RBase) and for base-free
// constructions; an unrecognized user base disables it.
func newEnv(b *network.Builder, cfg Config) *buildEnv {
	e := &buildEnv{b: b, cfg: cfg, baseKind: baseKindOf(cfg.Base)}
	e.tag = cfgTag(e.baseKind, cfg)
	if e.baseKind != baseUnknown {
		e.memo = make(map[string]*template)
		e.shared = &envShared{
			invPos: make([]int32, b.Width()),
			invGen: make([]uint32, b.Width()),
		}
	}
	return e
}

// withConfig returns an env over the same builder and cache but a
// different configuration (buildR nests family-K sub-networks inside
// any outer family). Keys embed the configuration, so sharing the
// cache across configs is sound; an unknown base still disables it.
func (e *buildEnv) withConfig(cfg Config) *buildEnv {
	ne := &buildEnv{b: e.b, cfg: cfg, memo: e.memo, shared: e.shared, baseKind: baseKindOf(cfg.Base)}
	ne.tag = cfgTag(ne.baseKind, cfg)
	if ne.baseKind == baseUnknown {
		ne.memo = nil
		ne.shared = nil
	}
	return ne
}

// cfgTag keys the parts of the configuration that shape construction.
func cfgTag(baseKind int, cfg Config) string {
	return "b" + strconv.Itoa(baseKind) + "s" + strconv.Itoa(int(cfg.Staircase))
}

// callBase builds the base network C(p,q) over in, routing the known
// base functions through the env so their internals are memoized.
func (e *buildEnv) callBase(in []int, p, q int, label string) []int {
	switch e.baseKind {
	case baseBalancer:
		e.b.Add(in, label)
		return in
	case baseRNet:
		return e.buildR(in, p, q, label)
	case baseOptBalancer:
		return e.optBalancerBase(in, p, q, label)
	case baseOptRNet:
		return e.optRBase(in, p, q, label)
	default:
		return e.cfg.Base(e.b, in, p, q, label)
	}
}

// cached runs derive for the construction identified by key over the
// flattened input `in`, recording it into a template on first use and
// replaying the template afterwards. Recording is free: the first
// occurrence derives straight into the real builder and the gates it
// appended are translated to input-local positions after the fact.
// derive must be positional: its gates and output ordering may depend
// only on len(in) and the positions of its wires within in, plus
// whatever key encodes.
func (e *buildEnv) cached(key []byte, in []int, label string, derive func(e *buildEnv, in []int, label string) []int) []int {
	if e.memo == nil {
		return derive(e, in, label)
	}
	t, seen := e.memo[string(key)] // no-alloc map lookup
	if t != nil {
		return e.replay(t, in, label)
	}
	// Materialize the key before derive: nested cached calls reuse the
	// shared key buffer that `key` points into.
	k := string(key)
	g0 := e.b.GateCount()
	out := derive(e, in, label)
	// Full-width constructions are usually one-shot (the top-level
	// network and its outermost merger); recording them would burn time
	// and memory on templates that never replay. A nil entry marks the
	// first occurrence, so genuinely recurring full-width shapes (the
	// merge towers of R) are recorded from their second miss on.
	if seen || len(in) < e.b.Width() {
		if t := e.record(g0, in, out, label); t != nil {
			e.memo[k] = t
		}
	} else {
		e.memo[k] = nil
	}
	return out
}

// record translates gates [g0, b.GateCount()) and the output ordering
// into input-local positions. It returns nil — caching nothing — if a
// gate or output wire falls outside `in`, which no positional
// construction produces; the check keeps a misbehaving base function
// from corrupting the cache. The wire→position table is a build-wide
// generation-stamped array and all recorded wire slices share one
// backing array, so recording costs a handful of allocations however
// many gates it covers.
func (e *buildEnv) record(g0 int, in, out []int, label string) *template {
	b, sh := e.b, e.shared
	sh.gen++
	gen := sh.gen
	for i, w := range in {
		sh.invPos[w] = int32(i)
		sh.invGen[w] = gen
	}
	nGates := b.GateCount() - g0
	total := 0
	for gi := g0; gi < b.GateCount(); gi++ {
		wires, _ := b.GateAt(gi)
		total += len(wires)
	}
	backing := make([]int, 0, total)
	t := &template{gates: make([]tmplGate, 0, nGates), out: make([]int, len(out))}
	for gi := g0; gi < b.GateCount(); gi++ {
		wires, gl := b.GateAt(gi)
		lo := len(backing)
		for _, w := range wires {
			if sh.invGen[w] != gen {
				return nil
			}
			backing = append(backing, int(sh.invPos[w]))
		}
		if !strings.HasPrefix(gl, label) {
			return nil
		}
		t.gates = append(t.gates, tmplGate{wires: backing[lo:len(backing):len(backing)], suffix: gl[len(label):]})
	}
	for i, w := range out {
		if sh.invGen[w] != gen {
			return nil
		}
		t.out[i] = int(sh.invPos[w])
	}
	return t
}

// replay clones a recorded template onto the actual input wires. The
// gate list was validated by the builder when recorded, so the clone
// takes the builder's unchecked path.
func (e *buildEnv) replay(t *template, in []int, label string) []int {
	if !t.hasLast || t.lastPrefix != label {
		if t.lastLabels == nil {
			t.lastLabels = make([]string, len(t.gates))
		}
		for i := range t.gates {
			t.lastLabels[i] = label + t.gates[i].suffix
		}
		t.lastPrefix = label
		t.hasLast = true
	}
	for gi := range t.gates {
		g := &t.gates[gi]
		if cap(e.scratch) < len(g.wires) {
			e.scratch = make([]int, 2*len(g.wires))
		}
		w := e.scratch[:len(g.wires)]
		for i, li := range g.wires {
			w[i] = in[li]
		}
		e.b.AddValidated(w, t.lastLabels[gi])
	}
	out := e.shared.allocOut(len(t.out))
	for i, li := range t.out {
		out[i] = in[li]
	}
	return out
}

// key builders ------------------------------------------------------------
//
// Keys are assembled in the build-wide key buffer and passed to cached
// as a byte slice: lookups convert with the compiler's no-alloc
// map[string(b)] form, and only a cache miss pays for a real string.
// With memoization disabled (nil shared scratch) the key is irrelevant
// and nil is returned.

func (e *buildEnv) keyFactors(kind string, factors []int, tagged bool) []byte {
	if e.shared == nil {
		return nil
	}
	k := append(e.shared.keyBuf[:0], kind...)
	for _, f := range factors {
		k = append(k, '|')
		k = strconv.AppendInt(k, int64(f), 10)
	}
	if tagged {
		k = append(k, '|')
		k = append(k, e.tag...)
	}
	e.shared.keyBuf = k
	return k
}

func (e *buildEnv) key3(kind string, a, b, c int, tagged bool) []byte {
	if e.shared == nil {
		return nil
	}
	k := append(e.shared.keyBuf[:0], kind...)
	k = append(k, '|')
	k = strconv.AppendInt(k, int64(a), 10)
	k = append(k, '|')
	k = strconv.AppendInt(k, int64(b), 10)
	k = append(k, '|')
	k = strconv.AppendInt(k, int64(c), 10)
	if tagged {
		k = append(k, '|')
		k = append(k, e.tag...)
	}
	e.shared.keyBuf = k
	return k
}
