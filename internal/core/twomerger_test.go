package core

import (
	"testing"

	"countnet/internal/runner"
	"countnet/internal/seq"
)

// TestTwoMergerExhaustive checks Proposition 5 exhaustively: for every
// pair of step input sequences (a step sequence of given length is
// determined by its sum, so sums enumerate all inputs), the output of
// T(p,q0,q1) has the step property. Sums range far enough to cover all
// level combinations (a0 vs a1 arbitrary).
func TestTwoMergerExhaustive(t *testing.T) {
	for p := 1; p <= 4; p++ {
		for q0 := 1; q0 <= 3; q0++ {
			for q1 := 1; q1 <= 3; q1++ {
				net, err := TwoMergerNetwork(p, q0, q1)
				if err != nil {
					t.Fatalf("T(%d,%d,%d): %v", p, q0, q1, err)
				}
				if err := net.Validate(); err != nil {
					t.Fatalf("T(%d,%d,%d) invalid: %v", p, q0, q1, err)
				}
				if net.Depth() > 2 {
					t.Errorf("T(%d,%d,%d) depth %d > 2", p, q0, q1, net.Depth())
				}
				l0, l1 := p*q0, p*q1
				for s0 := int64(0); s0 <= int64(4*l0); s0++ {
					for s1 := int64(0); s1 <= int64(4*l1); s1++ {
						in := append(seq.MakeStep(l0, s0), seq.MakeStep(l1, s1)...)
						out := runner.ApplyTokens(net, in)
						if !seq.IsStep(out) {
							t.Fatalf("T(%d,%d,%d) on sums (%d,%d): output %v not step",
								p, q0, q1, s0, s1, out)
						}
						if seq.Sum(out) != s0+s1 {
							t.Fatalf("T(%d,%d,%d): token loss", p, q0, q1)
						}
					}
				}
			}
		}
	}
}

// TestTwoMergerGateWidths verifies the structural claim: balancers of
// width q0+q1 (rows) and p (columns) only.
func TestTwoMergerGateWidths(t *testing.T) {
	net, err := TwoMergerNetwork(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	hist := net.GateWidthHistogram()
	if hist[6] != 3 { // 3 rows of width q0+q1=6
		t.Errorf("row balancers: %v", hist)
	}
	if hist[3] != 6 { // 6 columns of width p=3
		t.Errorf("column balancers: %v", hist)
	}
	if net.Size() != 9 {
		t.Errorf("gate count %d, want 9", net.Size())
	}
}

// TestTwoMergerDegenerate checks the edge cases the R construction
// relies on: empty sides pass through, p == 1 is a single balancer row.
func TestTwoMergerDegenerate(t *testing.T) {
	n, err := TwoMergerNetwork(2, 0, 3)
	if err != nil {
		t.Fatalf("T(2,0,3): %v", err)
	}
	if n.Size() != 0 {
		t.Errorf("empty first input should add no gates, got %d", n.Size())
	}
	n, err = TwoMergerNetwork(1, 2, 2)
	if err != nil {
		t.Fatalf("T(1,2,2): %v", err)
	}
	if n.Depth() != 1 || n.MaxGateWidth() != 4 {
		t.Errorf("T(1,2,2): depth %d maxGate %d, want single width-4 layer", n.Depth(), n.MaxGateWidth())
	}
	for s0 := int64(0); s0 <= 8; s0++ {
		for s1 := int64(0); s1 <= 8; s1++ {
			in := append(seq.MakeStep(2, s0), seq.MakeStep(2, s1)...)
			out := runner.ApplyTokens(n, in)
			if !seq.IsStep(out) {
				t.Fatalf("T(1,2,2) on (%d,%d): %v", s0, s1, out)
			}
		}
	}
	if _, err := TwoMergerNetwork(0, 1, 1); err == nil {
		t.Error("T(0,1,1) should be rejected")
	}
	if _, err := TwoMergerNetwork(2, 0, 0); err == nil {
		t.Error("T(2,0,0) should be rejected")
	}
}

// TestTwoMergerSubstitutedRows checks the Section 4.3 substitution: a
// T(p,q,q) whose 2q-wide row balancers are replaced by T(q,1,1)
// networks must still merge, using only balancers of width <= max(p,q,2).
func TestTwoMergerSubstitutedRows(t *testing.T) {
	for p := 2; p <= 3; p++ {
		for q := 2; q <= 3; q++ {
			b := newTestBuilder(p * 2 * q)
			all := identity(p * 2 * q)
			out := newEnv(b, Config{}).twoMerger(p, all[:p*q], all[p*q:], true, "sub")
			net := b.Build("Tsub", out)
			if err := net.Validate(); err != nil {
				t.Fatalf("T-sub(%d,%d,%d): %v", p, q, q, err)
			}
			maxW := p
			if q > maxW {
				maxW = q
			}
			if maxW < 2 {
				maxW = 2
			}
			if net.MaxGateWidth() > maxW {
				t.Errorf("T-sub(%d,%d,%d): gate width %d > %d", p, q, q, net.MaxGateWidth(), maxW)
			}
			for s0 := int64(0); s0 <= int64(3*p*q); s0++ {
				for s1 := int64(0); s1 <= int64(3*p*q); s1++ {
					in := append(seq.MakeStep(p*q, s0), seq.MakeStep(p*q, s1)...)
					got := runner.ApplyTokens(net, in)
					if !seq.IsStep(got) {
						t.Fatalf("T-sub(%d,%d,%d) on sums (%d,%d): %v", p, q, q, s0, s1, got)
					}
				}
			}
		}
	}
}

// TestTwoMergerAsSorter checks the comparator-semantics side of the
// isomorphism on the merger: two descending batches merge into one.
func TestTwoMergerAsSorter(t *testing.T) {
	net, err := TwoMergerNetwork(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []int64{9, 7, 4, 2, 8, 6, 5, 1} // two descending runs
	out := runner.ApplyComparators(net, in)
	for i := 1; i < len(out); i++ {
		if out[i-1] < out[i] {
			t.Fatalf("merged output not descending: %v", out)
		}
	}
}
