package core

import (
	"testing"

	"countnet/internal/runner"
	"countnet/internal/seq"
)

// bitonicInputs enumerates every sequence of length n with the paper's
// bitonic property at base levels a and a+1: 1-smooth, at most two
// transitions. Both shapes (high-low-high and low-high-low) occur.
func bitonicInputs(n int, a int64) [][]int64 {
	var out [][]int64
	add := func(s []int64) {
		if !seq.IsBitonic(s) {
			panic("generator produced non-bitonic sequence")
		}
		out = append(out, s)
	}
	// Shape hi^i lo^j hi^k for all compositions i+j+k == n (covers
	// constants, single-transition steps, and both two-transition forms
	// when combined with the lo-hi-lo shape below).
	for i := 0; i <= n; i++ {
		for j := 0; i+j <= n; j++ {
			k := n - i - j
			s := make([]int64, 0, n)
			for x := 0; x < i; x++ {
				s = append(s, a+1)
			}
			for x := 0; x < j; x++ {
				s = append(s, a)
			}
			for x := 0; x < k; x++ {
				s = append(s, a+1)
			}
			add(s)
			s2 := make([]int64, 0, n)
			for x := 0; x < i; x++ {
				s2 = append(s2, a)
			}
			for x := 0; x < j; x++ {
				s2 = append(s2, a+1)
			}
			for x := 0; x < k; x++ {
				s2 = append(s2, a)
			}
			add(s2)
		}
	}
	return out
}

// TestBitonicConverterExhaustive: for every bitonic input, D(p,q)
// produces a step sequence with the same total.
func TestBitonicConverterExhaustive(t *testing.T) {
	for p := 1; p <= 4; p++ {
		for q := 1; q <= 4; q++ {
			net, err := BitonicConverterNetwork(p, q)
			if err != nil {
				t.Fatalf("D(%d,%d): %v", p, q, err)
			}
			if err := net.Validate(); err != nil {
				t.Fatalf("D(%d,%d) invalid: %v", p, q, err)
			}
			if net.Depth() > 2 {
				t.Errorf("D(%d,%d) depth %d > 2", p, q, net.Depth())
			}
			for _, a := range []int64{0, 3} {
				for _, in := range bitonicInputs(p*q, a) {
					out := runner.ApplyTokens(net, in)
					if !seq.IsStep(out) {
						t.Fatalf("D(%d,%d) on %v: output %v not step", p, q, in, out)
					}
					if seq.Sum(out) != seq.Sum(in) {
						t.Fatalf("D(%d,%d): token loss on %v", p, q, in)
					}
				}
			}
		}
	}
}

// TestBitonicConverterGateWidths: balancers of width q (rows) and p
// (columns) only.
func TestBitonicConverterGateWidths(t *testing.T) {
	net, err := BitonicConverterNetwork(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	hist := net.GateWidthHistogram()
	if hist[5] != 3 || hist[3] != 5 {
		t.Errorf("gate widths: %v, want 3 rows of 5 and 5 columns of 3", hist)
	}
	if net.MaxGateWidth() != 5 {
		t.Errorf("max gate %d", net.MaxGateWidth())
	}
}

// TestBitonicConverterRejectsBadParams covers constructor validation.
func TestBitonicConverterRejectsBadParams(t *testing.T) {
	if _, err := BitonicConverterNetwork(0, 3); err == nil {
		t.Error("D(0,3) should be rejected")
	}
	if _, err := BitonicConverterNetwork(3, 0); err == nil {
		t.Error("D(3,0) should be rejected")
	}
}
