package core

import (
	"fmt"
	"testing"

	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
)

var allStaircaseKinds = []StaircaseKind{
	StaircaseOptBase, StaircaseOptBitonic, StaircaseBasic, StaircaseBasicSub,
}

// staircaseInputs enumerates valid inputs for S(r,p,q): q step
// sequences of length r*p whose sums are non-increasing with spread at
// most p (the p-staircase property). Step sequences are determined by
// their sums, so enumerating sum tuples is exhaustive. Sums are offset
// by several bases to cover all level alignments of the blocks.
func staircaseInputs(r, p, q int) [][]int64 {
	l := r * p
	var out [][]int64
	var rec func(prev int, deltas []int)
	bases := []int64{0, 1, int64(l) - 1, int64(l), int64(2*l + 1)}
	rec = func(prev int, deltas []int) {
		if len(deltas) == q {
			for _, base := range bases {
				in := make([]int64, 0, l*q)
				ok := true
				for _, d := range deltas {
					s := base + int64(d)
					if s < 0 {
						ok = false
						break
					}
					in = append(in, seq.MakeStep(l, s)...)
				}
				if ok {
					out = append(out, in)
				}
			}
			return
		}
		for d := prev; d >= 0; d-- {
			rec(d, append(deltas, d))
		}
	}
	rec(p, nil)
	return out
}

// TestStaircaseExhaustive: every variant, over every valid staircase
// input, yields a step output, for a grid of (r,p,q).
func TestStaircaseExhaustive(t *testing.T) {
	cases := [][3]int{
		{1, 2, 2}, {2, 2, 2}, {3, 2, 2}, {2, 3, 2}, {2, 2, 3},
		{3, 3, 2}, {4, 2, 2}, {2, 3, 3}, {3, 2, 3}, {5, 2, 2},
	}
	for _, kind := range allStaircaseKinds {
		cfg := Config{Base: BalancerBase, Staircase: kind}
		for _, c := range cases {
			r, p, q := c[0], c[1], c[2]
			net, err := StaircaseNetwork(cfg, r, p, q)
			if err != nil {
				t.Fatalf("%v S(%d,%d,%d): %v", kind, r, p, q, err)
			}
			if err := net.Validate(); err != nil {
				t.Fatalf("%v S(%d,%d,%d) invalid: %v", kind, r, p, q, err)
			}
			for _, in := range staircaseInputs(r, p, q) {
				out := runner.ApplyTokens(net, in)
				if !seq.IsStep(out) {
					t.Fatalf("%v S(%d,%d,%d) on %v: output %v not step", kind, r, p, q, in, out)
				}
				if seq.Sum(out) != seq.Sum(in) {
					t.Fatalf("%v S(%d,%d,%d): token loss", kind, r, p, q)
				}
			}
		}
	}
}

// TestStaircaseDepths reproduces the per-variant depth accounting with
// the balancer base (d = 1): 2d+1 = 3, d+3 = 4, d+6 = 7, d+9 = 10.
func TestStaircaseDepths(t *testing.T) {
	bounds := map[StaircaseKind]int{
		StaircaseOptBase:    3,
		StaircaseOptBitonic: 4,
		StaircaseBasic:      7,
		StaircaseBasicSub:   10,
	}
	for _, kind := range allStaircaseKinds {
		cfg := Config{Base: BalancerBase, Staircase: kind}
		for _, c := range [][3]int{{2, 2, 2}, {3, 3, 2}, {4, 2, 3}, {5, 3, 3}} {
			net, err := StaircaseNetwork(cfg, c[0], c[1], c[2])
			if err != nil {
				t.Fatal(err)
			}
			if net.Depth() > bounds[kind] {
				t.Errorf("%v S(%d,%d,%d): depth %d > bound %d",
					kind, c[0], c[1], c[2], net.Depth(), bounds[kind])
			}
		}
	}
}

// TestStaircaseOptBaseIsExactlyThreeLayers: with the single-balancer
// base, the K-family staircase is exactly 3 deep for r >= 2 (the layer
// accounting Proposition 6 relies on).
func TestStaircaseOptBaseIsExactlyThreeLayers(t *testing.T) {
	cfg := KConfig()
	for _, c := range [][3]int{{2, 2, 2}, {3, 2, 2}, {2, 3, 4}, {4, 4, 3}} {
		net, err := StaircaseNetwork(cfg, c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		if net.Depth() != 3 {
			t.Errorf("S(%d,%d,%d): depth %d, want exactly 3", c[0], c[1], c[2], net.Depth())
		}
	}
}

// TestStaircaseWithRBase: the L-family staircase (R base + bitonic
// converter) on random staircase inputs, including wider params than
// the exhaustive grid.
func TestStaircaseWithRBase(t *testing.T) {
	cfg := LConfig()
	for _, c := range [][3]int{{2, 2, 2}, {2, 3, 2}, {3, 2, 3}, {2, 4, 3}} {
		r, p, q := c[0], c[1], c[2]
		net, err := StaircaseNetwork(cfg, r, p, q)
		if err != nil {
			t.Fatal(err)
		}
		maxW := p
		if q > maxW {
			maxW = q
		}
		if net.MaxGateWidth() > maxW {
			t.Errorf("S(%d,%d,%d) with R base: gate width %d > max(p,q)=%d",
				r, p, q, net.MaxGateWidth(), maxW)
		}
		for _, in := range staircaseInputs(r, p, q) {
			out := runner.ApplyTokens(net, in)
			if !seq.IsStep(out) {
				t.Fatalf("L-staircase S(%d,%d,%d) on %v: %v", r, p, q, in, out)
			}
		}
	}
}

// TestStaircaseSingleBlock: r == 1 degenerates to the base network.
func TestStaircaseSingleBlock(t *testing.T) {
	net, err := StaircaseNetwork(KConfig(), 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 1 || net.Depth() != 1 {
		t.Errorf("S(1,3,2): %d gates depth %d, want a single balancer", net.Size(), net.Depth())
	}
}

// TestStaircaseRejectsBadParams covers constructor validation.
func TestStaircaseRejectsBadParams(t *testing.T) {
	if _, err := StaircaseNetwork(KConfig(), 0, 2, 2); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := StaircaseNetwork(Config{}, 2, 2, 2); err == nil {
		t.Error("nil base accepted")
	}
}

// TestStaircasePreconditionMatters documents that the staircase
// property is a real precondition: there exist per-block-step inputs
// violating the p-staircase bound for which the (cheapest) staircase
// variant does NOT produce a step output. This guards against the test
// suite silently testing a vacuous property.
func TestStaircasePreconditionMatters(t *testing.T) {
	r, p, q := 3, 2, 2
	net, err := StaircaseNetwork(KConfig(), r, p, q)
	if err != nil {
		t.Fatal(err)
	}
	l := r * p
	found := false
	for s0 := int64(0); s0 <= int64(4*l) && !found; s0++ {
		for s1 := int64(0); s1 <= int64(4*l) && !found; s1++ {
			// Violations: increasing sums or spread > p.
			if s0 >= s1 && s0-s1 <= int64(p) {
				continue
			}
			in := append(seq.MakeStep(l, s0), seq.MakeStep(l, s1)...)
			out := runner.ApplyTokens(net, in)
			if !seq.IsStep(out) {
				found = true
			}
		}
	}
	if !found {
		t.Log("note: S(3,2,2) happened to fix all tested precondition-violating inputs")
	}
}

// TestStaircaseNames ensures variants render distinctly (used in the E8
// ablation table).
func TestStaircaseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range allStaircaseKinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate variant name %q", s)
		}
		seen[s] = true
	}
	if StaircaseKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	_ = fmt.Sprint(allStaircaseKinds)
}

// TestStaircaseAllWiresCovered: the output ordering is a permutation of
// the input wires.
func TestStaircaseAllWiresCovered(t *testing.T) {
	for _, kind := range allStaircaseKinds {
		cfg := Config{Base: BalancerBase, Staircase: kind}
		b := network.NewBuilder(12)
		xs := [][]int{identity(12)[0:6], identity(12)[6:12]}
		out := newEnv(b, cfg).staircase(3, 2, 2, xs, "perm")
		seen := make([]bool, 12)
		for _, w := range out {
			if w < 0 || w >= 12 || seen[w] {
				t.Fatalf("%v: output ordering not a permutation: %v", kind, out)
			}
			seen[w] = true
		}
	}
}
