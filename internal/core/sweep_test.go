package core

import (
	"testing"

	"countnet/internal/factor"
	"countnet/internal/verify"
)

// TestFormulaSweepAllFactorizations drives Propositions 6 and Theorem 7
// across EVERY multiset factorization of a set of widths — several
// hundred networks — checking depth formulas, balancer-width bounds and
// the gate-count recurrence on each.
func TestFormulaSweepAllFactorizations(t *testing.T) {
	widths := []int{8, 12, 16, 24, 30, 36}
	if !testing.Short() {
		widths = append(widths, 48, 60, 64, 72, 96)
	}
	networks := 0
	for _, w := range widths {
		for _, fs := range factor.Factorizations(w, 2) {
			n := len(fs)
			k, err := K(fs...)
			if err != nil {
				t.Fatal(err)
			}
			if k.Depth() != KDepth(n) {
				t.Errorf("K%v depth %d != formula %d", fs, k.Depth(), KDepth(n))
			}
			if k.Size() != KGateCount(fs) {
				t.Errorf("K%v gates %d != recurrence %d", fs, k.Size(), KGateCount(fs))
			}
			if err := verify.CheckBalancerWidth(k, MaxPairProduct(fs)); err != nil {
				t.Errorf("K%v: %v", fs, err)
			}

			l, err := L(fs...)
			if err != nil {
				t.Fatal(err)
			}
			if l.Depth() > LDepthBound(n) {
				t.Errorf("L%v depth %d > bound %d", fs, l.Depth(), LDepthBound(n))
			}
			if l.Size() != LGateCount(fs) {
				t.Errorf("L%v gates %d != recurrence %d", fs, l.Size(), LGateCount(fs))
			}
			if err := verify.CheckBalancerWidth(l, MaxFactor(fs)); err != nil {
				t.Errorf("L%v: %v", fs, err)
			}
			if err := k.Validate(); err != nil {
				t.Errorf("K%v: %v", fs, err)
			}
			if err := l.Validate(); err != nil {
				t.Errorf("L%v: %v", fs, err)
			}
			networks += 2
		}
	}
	t.Logf("swept %d networks", networks)
}

// TestOrderingSweepDepthInvariance: for several multisets, every
// ordering yields the same K depth and formula-conforming L depth.
func TestOrderingSweepDepthInvariance(t *testing.T) {
	for _, multiset := range [][]int{{2, 3, 4}, {2, 2, 5}, {3, 3, 2, 2}} {
		var kDepth = -1
		for _, ord := range factor.Permutations(multiset) {
			k, err := K(ord...)
			if err != nil {
				t.Fatal(err)
			}
			if kDepth == -1 {
				kDepth = k.Depth()
			} else if k.Depth() != kDepth {
				t.Errorf("K%v depth %d != %d", ord, k.Depth(), kDepth)
			}
			l, err := L(ord...)
			if err != nil {
				t.Fatal(err)
			}
			if l.Depth() > LDepthBound(len(ord)) {
				t.Errorf("L%v depth %d > bound", ord, l.Depth())
			}
		}
	}
}
