package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"countnet/internal/verify"
)

func TestIsqrt(t *testing.T) {
	for n := 0; n <= 10000; n++ {
		r := isqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("isqrt(%d) = %d", n, r)
		}
	}
}

func TestIsqrtQuick(t *testing.T) {
	f := func(raw uint32) bool {
		n := int(raw % (1 << 30))
		r := isqrt(n)
		return r*r <= n && (r+1)*(r+1) > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsqrtPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	isqrt(-1)
}

// TestAppendixEquations verifies Equations 1-3 of the appendix, which
// R's balancer-width bound rests on, over a wide numeric range.
func TestAppendixEquations(t *testing.T) {
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	for p := 2; p <= 300; p++ {
		for q := 2; q <= 300; q += 7 {
			ph, qh := isqrt(p), isqrt(q)
			pb, qb := p-ph*ph, q-qh*qh
			m := max(p, q)
			r := max(ph, qh)
			s := max(pb, qb)
			if r*r > m {
				t.Fatalf("Eq1 fails at p=%d q=%d", p, q)
			}
			if r*((s+1)/2) > m {
				t.Fatalf("Eq2 fails at p=%d q=%d: %d * %d > %d", p, q, r, (s+1)/2, m)
			}
			if ((s+1)/2)*((s+1)/2) > m {
				t.Fatalf("Eq3 fails at p=%d q=%d", p, q)
			}
		}
	}
}

// TestRStructuralSweep: depth <= 16 and balancer width <= max(p,q) for
// a large (p,q) grid — the paper's headline claim for R.
func TestRStructuralSweep(t *testing.T) {
	for p := 2; p <= 40; p++ {
		for q := 2; q <= 40; q++ {
			n, err := R(p, q)
			if err != nil {
				t.Fatalf("R(%d,%d): %v", p, q, err)
			}
			if err := n.Validate(); err != nil {
				t.Fatalf("R(%d,%d) invalid: %v", p, q, err)
			}
			if n.Depth() > RDepthBound {
				t.Errorf("R(%d,%d) depth %d > 16", p, q, n.Depth())
			}
			m := p
			if q > m {
				m = q
			}
			if err := verify.CheckBalancerWidth(n, m); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
		}
	}
}

// TestRCounting: randomized counting checks across a representative
// grid (the exhaustive structural sweep above covers bounds; this
// covers behaviour).
func TestRCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for p := 2; p <= 12; p++ {
		for q := 2; q <= 12; q++ {
			if (p+q)%3 != 0 && p != q && q != p+1 {
				continue // representative subset to keep runtime sane
			}
			n, err := R(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.IsCountingNetwork(n, rng); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
		}
	}
}

// TestRSquares: perfect-square and near-square widths exercise the
// degenerate-quadrant paths (pbar or qbar zero or one).
func TestRSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	cases := [][2]int{
		{4, 4}, {4, 9}, {9, 4}, {9, 9}, {16, 16}, {4, 5}, {5, 4},
		{9, 10}, {10, 9}, {16, 17}, {2, 2}, {2, 3}, {3, 2}, {3, 3},
	}
	for _, c := range cases {
		n, err := R(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IsCountingNetwork(n, rng); err != nil {
			t.Errorf("R(%d,%d): %v", c[0], c[1], err)
		}
	}
}

// TestRsEmbeddedKDepth: the dominant path of R is K(ph,ph,qh,qh) with
// depth 12 plus two two-merger layers (4), totaling 16 when no
// degenerate shortcut applies; check a case that exercises it fully.
func TestRsEmbeddedKDepth(t *testing.T) {
	// p = q = 9: ph = qh = 3, pbar = qbar = 0 -> R(9,9) = K(3,3,3,3),
	// depth exactly KDepth(4) = 12.
	n, err := R(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() != 12 {
		t.Errorf("R(9,9) depth %d, want 12 (pure quadrant A)", n.Depth())
	}
	// p = q = 12: ph = 3, pbar = 3 -> all quadrants active; depth <= 16.
	n, err = R(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if n.Depth() > 16 || n.Depth() < 13 {
		t.Errorf("R(12,12) depth %d, want in (12,16]", n.Depth())
	}
}

// TestRBaseUsableInsideC: RBase slots into the generic construction as
// the assumed-given C(p,q).
func TestRBaseUsableInsideC(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	n, err := New(Config{Base: RBase, Staircase: StaircaseOptBitonic}, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckBalancerWidth(n, 6); err != nil {
		t.Error(err)
	}
	if err := verify.IsCountingNetwork(n, rng); err != nil {
		t.Error(err)
	}
}

// TestRDegenerateBuildPanics: buildR requires p,q >= 2 (the public R
// validates before calling it).
func TestRDegenerateBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := newTestBuilder(2)
	newEnv(b, Config{}).buildR(identity(2), 1, 2, "bad")
}
