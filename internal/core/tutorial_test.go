package core

// This file is a narrative walk through Section 4 of the paper, bottom
// up, asserting at each stage exactly the property the next stage
// consumes. It doubles as executable documentation: read it next to
// docs/ALGORITHMS.md.

import (
	"testing"

	"countnet/internal/runner"
	"countnet/internal/seq"
)

// Stage 1 (§4.4). A two-merger T(p,q0,q1) turns two step sequences
// into one. Its precondition is weak (any two step sequences, any
// levels) which is why every later stage can lean on it.
func TestTutorialStage1TwoMerger(t *testing.T) {
	net, err := TwoMergerNetwork(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two step sequences at different levels: (3,3,2,2) and (9,8).
	in := append(seq.MakeStep(4, 10), seq.MakeStep(2, 17)...)
	out := runner.ApplyTokens(net, in)
	if !seq.IsStep(out) {
		t.Fatalf("merged output %v", out)
	}
	if seq.Sum(out) != 27 {
		t.Fatalf("token loss: %v", out)
	}
}

// Stage 2 (§4.4). The bitonic-converter D(p,q) repairs a sequence that
// is 1-smooth with at most two transitions — the exact damage pattern
// the optimized staircase's 2-balancer layer leaves behind.
func TestTutorialStage2BitonicConverter(t *testing.T) {
	net, err := BitonicConverterNetwork(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// hi-lo-hi: 5 5 4 4 5 5 (two transitions, 1-smooth).
	in := []int64{5, 5, 4, 4, 5, 5}
	if !seq.IsBitonic(in) {
		t.Fatal("test input is not bitonic")
	}
	out := runner.ApplyTokens(net, in)
	if !seq.IsStep(out) {
		t.Fatalf("converted output %v", out)
	}
}

// Stage 3 (§4.3). The staircase-merger S(r,p,q) merges q step columns
// whose totals lie within p of each other. Its internals are exactly
// stages 1-2 plus a base network per block.
func TestTutorialStage3Staircase(t *testing.T) {
	net, err := StaircaseNetwork(KConfig(), 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two columns of length 6 whose sums differ by at most p=2:
	// sums 8 and 7.
	in := append(seq.MakeStep(6, 8), seq.MakeStep(6, 7)...)
	out := runner.ApplyTokens(net, in)
	if !seq.IsStep(out) {
		t.Fatalf("staircase output %v", out)
	}
}

// Stage 4 (§4.2, Proposition 2). The merger M splits its inputs into
// strides; the sub-merger outputs then satisfy the staircase
// precondition automatically — that is the theorem making stage 3
// composable.
func TestTutorialStage4StridesMakeStaircases(t *testing.T) {
	// Any two step sequences of length 6, strided by 3, give stride
	// sums within 2 (= number of inputs) of each other.
	x0 := seq.MakeStep(6, 11)
	x1 := seq.MakeStep(6, 7)
	for i := 0; i < 3; i++ {
		yi := seq.Sum(seq.Stride(x0, i, 3)) + seq.Sum(seq.Stride(x1, i, 3))
		for j := i + 1; j < 3; j++ {
			yj := seq.Sum(seq.Stride(x0, j, 3)) + seq.Sum(seq.Stride(x1, j, 3))
			if d := yi - yj; d < 0 || d > 2 {
				t.Fatalf("stride sums %d vs %d violate the staircase bound", yi, yj)
			}
		}
	}
}

// Stage 5 (§4.1). The counting network C: independent sub-counters per
// block, then one merger. With the base and staircase from the stages
// above, any input becomes step.
func TestTutorialStage5Counting(t *testing.T) {
	net, err := New(KConfig(), 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, net.Width())
	in[0], in[5], in[7] = 19, 3, 8 // arbitrary lopsided arrival
	out := runner.ApplyTokens(net, in)
	if !seq.IsStep(out) {
		t.Fatalf("counting output %v", out)
	}
	// And by the isomorphism, the same network sorts.
	vals := []int64{5, 2, 8, 1, 9, 3, 7, 4, 6, 0, 11, 10}
	sorted := runner.ApplyComparators(net, vals)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] < sorted[i] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
}

// Stage 6 (§5). The two instantiations: K spends wide balancers for
// exactly-known small depth; R bootstraps narrow balancers into
// constant depth, and L composes R into arbitrary widths.
func TestTutorialStage6Families(t *testing.T) {
	k, _ := K(2, 3, 2)
	if k.MaxGateWidth() != 6 || k.Depth() != 5 {
		t.Errorf("K(2,3,2): gate %d depth %d, want 6 and 5", k.MaxGateWidth(), k.Depth())
	}
	l, _ := L(2, 3, 2)
	if l.MaxGateWidth() > 3 {
		t.Errorf("L(2,3,2): gate %d, want <= 3", l.MaxGateWidth())
	}
	r, _ := R(11, 13)
	if r.Depth() > 16 || r.MaxGateWidth() > 13 {
		t.Errorf("R(11,13): depth %d gate %d", r.Depth(), r.MaxGateWidth())
	}
}
