package core

// Gate-count accounting for family K, derived from the construction's
// recursive structure (the paper gives depth accounting only; the gate
// counts below follow the same recurrences and are verified against
// built networks in tests — a structural-fidelity check independent of
// depth).

// kStaircaseGates counts the gates of S(r,p,q) under the K
// instantiation (balancer base, optimized staircase with base
// finisher): r base balancers, r*floor(pq/2) 2-balancers in layer ell,
// and r finisher balancers — except that a single block needs only its
// base.
func kStaircaseGates(r, p, q int) int {
	if r == 1 {
		return 1
	}
	return 2*r + r*(p*q/2)
}

// kMergerGates counts the gates of M(p0..pn-1) under the K
// instantiation.
func kMergerGates(factors []int) int {
	n := len(factors)
	if n == 2 {
		return 1
	}
	pn1, pn2 := factors[n-1], factors[n-2]
	sub := append(append([]int(nil), factors[:n-2]...), pn1)
	r := Product(factors[:n-2])
	return pn2*kMergerGates(sub) + kStaircaseGates(r, pn1, pn2)
}

// KGateCount returns the number of balancers in K(p0..pn-1), by the
// construction recurrence.
func KGateCount(factors []int) int {
	n := len(factors)
	switch {
	case n == 0:
		return 0
	case n <= 2:
		return 1
	}
	pn1 := factors[n-1]
	return pn1*KGateCount(factors[:n-1]) + kMergerGates(factors)
}

// twoMergerGates counts the gates of T(p, q0, q1), honoring the same
// degenerate-case elisions as the builder (empty sides pass through,
// width-1 gates are skipped).
func twoMergerGates(p, q0, q1 int) int {
	if q0 == 0 || q1 == 0 || p == 0 {
		return 0
	}
	g := 0
	if q0+q1 >= 2 {
		g += p // row balancers
	}
	if p >= 2 {
		g += q0 + q1 // column balancers
	}
	return g
}

// bitonicConverterGates counts the gates of D(p,q).
func bitonicConverterGates(p, q int) int {
	if p == 0 || q == 0 {
		return 0
	}
	g := 0
	if q >= 2 {
		g += p
	}
	if p >= 2 {
		g += q
	}
	return g
}

// RGateCount mirrors buildR's region logic to predict the number of
// balancers in R(p,q).
func RGateCount(p, q int) int {
	m := p
	if q > m {
		m = q
	}
	ph, qh := isqrt(p), isqrt(q)
	pb, qb := p-ph*ph, q-qh*qh
	pb0, pb1 := pb/2, pb-pb/2
	qb0, qb1 := qb/2, qb-qb/2

	step := func(size int, kFactors []int) int {
		if size <= 1 {
			return 0
		}
		if size <= m {
			return 1
		}
		return KGateCount(kFactors)
	}
	g := 0
	g += step(ph*ph*qh*qh, []int{ph, ph, qh, qh})
	g += step(ph*ph*qb0, []int{qb0, ph, ph})
	g += step(ph*ph*qb1, []int{qb1, ph, ph})
	g += twoMergerGates(ph*ph, qb0, qb1)
	g += step(pb0*qh*qh, []int{pb0, qh, qh})
	g += step(pb1*qh*qh, []int{pb1, qh, qh})
	g += twoMergerGates(qh*qh, pb0, pb1)
	g += step(pb0*qb0, nil)
	g += step(pb0*qb1, nil)
	g += step(pb1*qb0, nil)
	g += step(pb1*qb1, nil)
	g += twoMergerGates(pb0, qb0, qb1)
	g += twoMergerGates(pb1, qb0, qb1)
	g += twoMergerGates(qb, pb0, pb1)
	g += twoMergerGates(ph*ph, qh*qh, qb)
	g += twoMergerGates(pb, qh*qh, qb)
	g += twoMergerGates(q, ph*ph, pb)
	return g
}

// lStaircaseGates counts the gates of S(r,p,q) under the L
// instantiation (R base, optimized staircase with bitonic-converter
// finisher).
func lStaircaseGates(r, p, q int) int {
	if r == 1 {
		return RGateCount(p, q)
	}
	return r*RGateCount(p, q) + r*(p*q/2) + r*bitonicConverterGates(p, q)
}

// lMergerGates counts the gates of M(p0..pn-1) under the L
// instantiation.
func lMergerGates(factors []int) int {
	n := len(factors)
	if n == 2 {
		return RGateCount(factors[0], factors[1])
	}
	pn1, pn2 := factors[n-1], factors[n-2]
	sub := append(append([]int(nil), factors[:n-2]...), pn1)
	r := Product(factors[:n-2])
	return pn2*lMergerGates(sub) + lStaircaseGates(r, pn1, pn2)
}

// LGateCount returns the number of balancers in L(p0..pn-1), by the
// construction recurrence.
func LGateCount(factors []int) int {
	n := len(factors)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return RGateCount(factors[0], factors[1])
	}
	pn1 := factors[n-1]
	return pn1*LGateCount(factors[:n-1]) + lMergerGates(factors)
}
