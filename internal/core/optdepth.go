package core

import "countnet/internal/optnet"

// Depth accounting for the optimal-base variants. The closed forms of
// Propositions 1/3/6 assume a constant base depth d; with the
// substituted sorters d varies per (p,q) slot (e.g. d(2,2)=3 but
// d(4,4)=10), so the bounds below re-run the paper's additive
// recursion with the per-slot depths instead of a constant:
//
//	C(p0)            = 1                            (single balancer)
//	C(p0,p1)         = d(p0,p1)                     (one base)
//	C(p0..pn-1)     <= C(p0..pn-2) + M(p0..pn-1)
//	M(p0,p1)         = d(p0,p1)
//	M(p0..pn-1)     <= M(p0..pn-3,pn-1) + S(r, pn-1, pn-2)
//	S, r == 1        = d(p,q)                       (base layer only)
//	S, opt-base      = 2*d(p,q) + 1                 (Section 4.3.1)
//	S, opt-bitonic   = d(p,q) + 3
//
// Concatenated stages add at most their individual depths, so each
// bound is a genuine upper bound on the built network's depth; the
// builder's earliest-legal layer compaction can (and does) come in
// under it when adjacent stages interleave. netcheck's ProveKOpt and
// ProveLOpt assert the built depth never exceeds these bounds, and the
// netcheck tests pin the exact measured depths (the "depth delta"
// record vs. the constant-base families).

// OptBaseDepth returns the depth of the substituted base C(p,q): the
// embedded sorter's depth when p*q <= optnet.MaxWidth, fallback
// otherwise (1 for the K-family balancer base, RDepthBound for the
// L-family R base).
func OptBaseDepth(p, q, fallback int) int {
	if n, ok := optnet.For(p * q); ok {
		return n.Depth
	}
	return fallback
}

// KOptDepthBound bounds the depth of KOpt(factors).
func KOptDepthBound(factors []int) int {
	return cOptDepth(factors,
		func(p, q int) int { return OptBaseDepth(p, q, 1) },
		func(d int) int { return 2*d + 1 })
}

// LOptDepthBound bounds the depth of LOpt(factors).
func LOptDepthBound(factors []int) int {
	return cOptDepth(factors,
		func(p, q int) int { return OptBaseDepth(p, q, RDepthBound) },
		func(d int) int { return d + 3 })
}

// cOptDepth is the counting-network recursion with per-slot base
// depths; d(p,q) is the base depth, sd(d) the staircase depth given
// its base's depth.
func cOptDepth(factors []int, d func(p, q int) int, sd func(int) int) int {
	n := len(factors)
	switch n {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return d(factors[0], factors[1])
	}
	return cOptDepth(factors[:n-1], d, sd) + mOptDepth(factors, d, sd)
}

// mOptDepth is the merger recursion: M(p0..pn-1) runs sub-mergers
// M(p0..pn-3,pn-1) in parallel, then S(prod(p0..pn-3), pn-1, pn-2).
func mOptDepth(factors []int, d func(p, q int) int, sd func(int) int) int {
	n := len(factors)
	if n == 2 {
		return d(factors[0], factors[1])
	}
	sub := append(append([]int(nil), factors[:n-2]...), factors[n-1])
	base := d(factors[n-1], factors[n-2])
	s := base
	if Product(factors[:n-2]) > 1 {
		s = sd(base)
	}
	return mOptDepth(sub, d, sd) + s
}
