package core

import (
	"fmt"
)

// isqrt returns the integer square root floor(sqrt(n)) for n >= 0.
func isqrt(n int) int {
	if n < 0 {
		panic("core: isqrt of negative")
	}
	x := n
	if x > 1 {
		// Newton's method on integers converges in a handful of steps
		// for the widths that arise here.
		y := (x + 1) / 2
		for y < x {
			x = y
			y = (x + n/x) / 2
		}
	}
	return x
}

// buildR appends the counting network R(p,q) of Section 5.3 over the
// p*q wires `in` (p, q >= 2) and returns the output ordering: a
// constant-depth (<= 16) counting network built only from balancers of
// width at most max(p,q).
//
// Construction: with phat = floor(sqrt(p)), pbar = p - phat^2 (and
// likewise for q), arrange the input as a p x q matrix and divide it
// into quadrants
//
//	A (phat^2 x qhat^2)  B (phat^2 x qbar)
//	C (pbar   x qhat^2)  D (pbar   x qbar)
//
// A gains the step property via K(phat,phat,qhat,qhat); B and C are
// halved, stepped with three-factor K networks, and two-merged; D is
// quartered into single balancers and two-merged; finally two-mergers
// combine A'B', C'D' and the two halves. Appendix equations 1-3
// guarantee every balancer has width at most max(p,q). Degenerate
// regions (width 0 or 1, or small enough for one balancer) collapse to
// nothing or a single balancer, which can only reduce depth.
func (e *buildEnv) buildR(in []int, p, q int, label string) []int {
	if p < 2 || q < 2 {
		panic(fmt.Sprintf("core: R(%d,%d) requires p,q >= 2", p, q))
	}
	if len(in) != p*q {
		panic(fmt.Sprintf("core: R(%d,%d) over %d wires", p, q, len(in)))
	}
	return e.cached(e.key3("R", p, q, 0, false), in, label, func(e *buildEnv, in []int, label string) []int {
		return e.buildRRaw(in, p, q, label)
	})
}

// buildRRaw derives R(p,q) gate-by-gate; buildR memoizes around it.
func (e *buildEnv) buildRRaw(in []int, p, q int, label string) []int {
	b := e.b
	m := p
	if q > m {
		m = q
	}

	ph := isqrt(p)
	pb := p - ph*ph
	qh := isqrt(q)
	qb := q - qh*qh
	pb0, pb1 := pb/2, pb-pb/2
	qb0, qb1 := qb/2, qb-qb/2

	// region lists the wires of rows [r0,r1) x cols [c0,c1) of the
	// p x q row-major arrangement of `in`, in row-major order.
	region := func(r0, r1, c0, c1 int) []int {
		out := make([]int, 0, (r1-r0)*(c1-c0))
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				out = append(out, in[r*q+c])
			}
		}
		return out
	}

	// step gives a region the step property: a single balancer when it
	// fits within the width budget, otherwise the K network with the
	// given factors (all guaranteed >= 2 exactly when the region is too
	// large for one balancer; see the appendix equations).
	step := func(wires []int, kFactors []int, what string) []int {
		if len(wires) <= 1 {
			return wires
		}
		if len(wires) <= m {
			b.Add(wires, label+"/"+what+".bal")
			return wires
		}
		for _, f := range kFactors {
			if f < 2 {
				panic(fmt.Sprintf("core: R(%d,%d) region %s of size %d needs K%v with factor < 2",
					p, q, what, len(wires), kFactors))
			}
		}
		return e.withConfig(KConfig()).counting(wires, kFactors, label+"/"+what+".K")
	}

	// Quadrant A: phat^2 x qhat^2 via K(phat,phat,qhat,qhat).
	aOut := step(region(0, ph*ph, 0, qh*qh), []int{ph, ph, qh, qh}, "A")

	// Quadrant B: phat^2 x qbar, split by columns into B0 | B1.
	b0Out := step(region(0, ph*ph, qh*qh, qh*qh+qb0), []int{qb0, ph, ph}, "B0")
	b1Out := step(region(0, ph*ph, qh*qh+qb0, q), []int{qb1, ph, ph}, "B1")
	bOut := e.twoMerger(ph*ph, b0Out, b1Out, false, label+"/T.B")

	// Quadrant C: pbar x qhat^2, split by rows into C0 / C1.
	c0Out := step(region(ph*ph, ph*ph+pb0, 0, qh*qh), []int{pb0, qh, qh}, "C0")
	c1Out := step(region(ph*ph+pb0, p, 0, qh*qh), []int{pb1, qh, qh}, "C1")
	cOut := e.twoMerger(qh*qh, c0Out, c1Out, false, label+"/T.C")

	// Quadrant D: pbar x qbar, quartered; each quarter fits in a single
	// balancer (appendix equation 3).
	d00 := step(region(ph*ph, ph*ph+pb0, qh*qh, qh*qh+qb0), nil, "D00")
	d01 := step(region(ph*ph, ph*ph+pb0, qh*qh+qb0, q), nil, "D01")
	d10 := step(region(ph*ph+pb0, p, qh*qh, qh*qh+qb0), nil, "D10")
	d11 := step(region(ph*ph+pb0, p, qh*qh+qb0, q), nil, "D11")
	dTop := e.twoMerger(pb0, d00, d01, false, label+"/T.D0")
	dBot := e.twoMerger(pb1, d10, d11, false, label+"/T.D1")
	dOut := e.twoMerger(qb, dTop, dBot, false, label+"/T.D")

	// Merge A'B' and C'D', then the halves.
	abOut := e.twoMerger(ph*ph, aOut, bOut, false, label+"/T.AB")
	cdOut := e.twoMerger(pb, cOut, dOut, false, label+"/T.CD")
	return e.twoMerger(q, abOut, cdOut, false, label+"/T.fin")
}
