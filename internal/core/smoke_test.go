package core

import (
	"math/rand"
	"testing"

	"countnet/internal/verify"
)

// TestSmokeEverything is an early broad sweep: K, L, R over assorted
// factorizations must be counting networks within their structural
// bounds. The dedicated per-construction test files dig deeper.
func TestSmokeEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	factorLists := [][]int{
		{2, 2}, {2, 3}, {3, 2}, {2, 2, 2}, {2, 3, 2}, {3, 3},
		{2, 2, 3}, {4, 3}, {5, 2}, {2, 2, 2, 2}, {3, 2, 4},
		{5, 3, 2}, {2, 5, 3},
	}
	for _, fs := range factorLists {
		k, err := K(fs...)
		if err != nil {
			t.Fatalf("K%v: %v", fs, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("K%v invalid: %v", fs, err)
		}
		if err := verify.IsCountingNetwork(k, rng); err != nil {
			t.Errorf("K%v: %v", fs, err)
		}
		if err := verify.CheckBalancerWidth(k, MaxPairProduct(fs)); err != nil {
			t.Errorf("K%v: %v", fs, err)
		}
		if got, want := k.Depth(), KDepth(len(fs)); got > want {
			t.Errorf("K%v: depth %d > formula %d", fs, got, want)
		}

		l, err := L(fs...)
		if err != nil {
			t.Fatalf("L%v: %v", fs, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("L%v invalid: %v", fs, err)
		}
		if err := verify.IsCountingNetwork(l, rng); err != nil {
			t.Errorf("L%v: %v", fs, err)
		}
		if err := verify.CheckBalancerWidth(l, MaxFactor(fs)); err != nil {
			t.Errorf("L%v: %v", fs, err)
		}
		if got, want := l.Depth(), LDepthBound(len(fs)); got > want {
			t.Errorf("L%v: depth %d > bound %d", fs, got, want)
		}
	}

	for p := 2; p <= 9; p++ {
		for q := 2; q <= 9; q++ {
			r, err := R(p, q)
			if err != nil {
				t.Fatalf("R(%d,%d): %v", p, q, err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("R(%d,%d) invalid: %v", p, q, err)
			}
			if err := verify.IsCountingNetwork(r, rng); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
			maxpq := p
			if q > maxpq {
				maxpq = q
			}
			if err := verify.CheckBalancerWidth(r, maxpq); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
			if err := verify.CheckDepth(r, RDepthBound); err != nil {
				t.Errorf("R(%d,%d): %v", p, q, err)
			}
		}
	}
}
