package runner

// Tests for the observability integration: the obs-off paths must be
// allocation-free and bit-identical to the uninstrumented seed
// behaviour, and the obs-on paths must route tokens identically while
// recording accurate per-gate counts.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestTraverseObsOffAllocFree: with EnableObs never called, the hot
// traversal paths stay allocation-free — the zero-cost contract's
// first half.
func TestTraverseObsOffAllocFree(t *testing.T) {
	a := Compile(counting4())
	if n := testing.AllocsPerRun(200, func() { a.Traverse(1) }); n != 0 {
		t.Errorf("obs-off Traverse allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() { a.TraverseMutex(2) }); n != 0 {
		t.Errorf("obs-off TraverseMutex allocates %v per run", n)
	}
}

// TestTraverseObsOnAllocFree: recording per-gate counts and latency
// samples allocates nothing either, so enabling observability never
// perturbs the allocator behaviour it is trying to measure.
func TestTraverseObsOnAllocFree(t *testing.T) {
	a := Compile(counting4())
	a.EnableObs("alloc-probe")
	if n := testing.AllocsPerRun(200, func() { a.Traverse(1) }); n != 0 {
		t.Errorf("obs-on Traverse allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(200, func() { a.TraverseMutex(2) }); n != 0 {
		t.Errorf("obs-on TraverseMutex allocates %v per run", n)
	}
	s := a.NewBatchScratch()
	dst := make([]int64, a.Width())
	in := []int64{3, 0, 1, 2}
	if n := testing.AllocsPerRun(200, func() { a.TraverseBatchInto(dst, in, s) }); n != 0 {
		t.Errorf("obs-on TraverseBatchInto allocates %v per run", n)
	}
}

// TestTraverseObsDifferential: an observed network routes every token
// exactly as an unobserved one — same exits for the same arrival
// sequence, for all three traversal modes — and the recorded per-gate
// token totals account for precisely the tokens pushed.
func TestTraverseObsDifferential(t *testing.T) {
	net := counting4()
	plain := Compile(net)
	seen := Compile(net)
	o := seen.EnableObs("diff")

	rng := rand.New(rand.NewSource(7))
	tokens := 0
	for i := 0; i < 200; i++ {
		wire := rng.Intn(net.Width())
		if p, s := plain.Traverse(wire), seen.Traverse(wire); p != s {
			t.Fatalf("token %d on wire %d: plain exits %d, observed exits %d", i, wire, p, s)
		}
		tokens++
	}
	for i := 0; i < 50; i++ {
		in := randomTokenCounts(rng, net.Width())
		p := plain.TraverseBatch(in)
		s := seen.TraverseBatch(in)
		if !reflect.DeepEqual(p, s) {
			t.Fatalf("batch %d (%v): plain %v, observed %v", i, in, p, s)
		}
		for _, v := range in {
			tokens += int(v)
		}
	}

	g := o.GroupSnapshot()
	// Every token crosses exactly one gate per layer it traverses; the
	// first layer alone sees each token exactly once in counting4.
	var layer1 int64
	for _, l := range g.Layers {
		if l.Layer == 1 {
			layer1 = l.Tokens
		}
	}
	if layer1 != int64(tokens) {
		t.Errorf("layer-1 token count = %d, want %d (one per injected token)", layer1, tokens)
	}
	if g.Hists[0].Name != "traverse_ns" || g.Hists[0].Hist.Count != 200 {
		t.Errorf("traverse_ns samples = %+v, want 200", g.Hists[0].Hist.Count)
	}

	// Mutex mode, fresh pair (modes must not mix on one Async).
	plainMu, seenMu := Compile(net), Compile(net)
	seenMu.EnableObs("diff-mu")
	for i := 0; i < 100; i++ {
		wire := rng.Intn(net.Width())
		if p, s := plainMu.TraverseMutex(wire), seenMu.TraverseMutex(wire); p != s {
			t.Fatalf("mutex token %d on wire %d: plain exits %d, observed exits %d", i, wire, p, s)
		}
	}
}

// TestTraverseObsConcurrent: observed concurrent traversal still lands
// on the seed quiescent state, and snapshots taken mid-flight are safe
// (the race lane makes this a data-race check too).
func TestTraverseObsConcurrent(t *testing.T) {
	net := counting4()
	a := Compile(net)
	o := a.EnableObs("conc")

	const perWire, workers = 200, 8
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = o.GroupSnapshot()
			}
		}
	}()

	got := a.ExitCounts(perWire, workers)
	close(stop)
	snaps.Wait()

	in := make([]int64, net.Width())
	for i := range in {
		in[i] = perWire
	}
	want := ApplyTokens(net, in)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observed concurrent exits %v, want %v", got, want)
	}
	total := int64(perWire * net.Width())
	g := o.GroupSnapshot()
	if g.Layers[0].Tokens != total {
		t.Errorf("layer-1 tokens = %d, want %d", g.Layers[0].Tokens, total)
	}
}

// TestEnableObsIdempotent: repeated enables return the same state, and
// Obs reflects it.
func TestEnableObsIdempotent(t *testing.T) {
	a := Compile(counting4())
	if a.Obs() != nil {
		t.Fatal("fresh Async must have nil obs")
	}
	o1 := a.EnableObs("once")
	o2 := a.EnableObs("twice")
	if o1 != o2 || a.Obs() != o1 {
		t.Fatal("EnableObs must be idempotent")
	}
}

// TestTraverseHookedObsCountsOnly: hooked traversal under observation
// records gate counts but no latency samples — clock reads would break
// deterministic replay of controlled schedules.
func TestTraverseHookedObsCountsOnly(t *testing.T) {
	a := Compile(counting4())
	o := a.EnableObs("hooked")
	a.TraverseHooked(0, func(string) {})
	a.TraverseBatchHooked([]int64{0, 2, 1, 0}, func(string) {})
	g := o.GroupSnapshot()
	if g.Layers[0].Tokens != 4 {
		t.Errorf("hooked layer-1 tokens = %d, want 4", g.Layers[0].Tokens)
	}
	for _, h := range g.Hists {
		if h.Hist.Count != 0 {
			t.Errorf("hooked path recorded %d %s samples; hooked runs must not read the clock", h.Hist.Count, h.Name)
		}
	}
}
