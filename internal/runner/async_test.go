package runner

import (
	"reflect"
	"sync"
	"testing"
	"unsafe"

	"countnet/internal/network"
	"countnet/internal/seq"
)

// counting4 builds the 4-wire bitonic counting network.
func counting4() *network.Network {
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	return b.Build("count4", nil)
}

func TestTraverseMatchesSerialSimulation(t *testing.T) {
	n := counting4()
	a := Compile(n)
	tokens := []int{0, 1, 2, 3, 0, 0, 2, 1, 3, 3, 3}
	_, wantExits := ApplyTokensSerial(n, tokens)
	for i, entry := range tokens {
		got := a.Traverse(entry)
		if got != wantExits[i] {
			t.Fatalf("token %d (wire %d): exit %d, want %d", i, entry, got, wantExits[i])
		}
	}
}

func TestTraverseMutexMatchesAtomicSequentially(t *testing.T) {
	n := counting4()
	a1 := Compile(n)
	a2 := Compile(n)
	for i := 0; i < 40; i++ {
		w := i % 4
		if g1, g2 := a1.Traverse(w), a2.TraverseMutex(w); g1 != g2 {
			t.Fatalf("token %d: atomic exit %d, mutex exit %d", i, g1, g2)
		}
	}
}

func TestExitCountsStepProperty(t *testing.T) {
	a := Compile(counting4())
	counts := a.ExitCounts(250, 8)
	if !seq.IsStep(counts) {
		t.Fatalf("concurrent exit counts %v lack step property", counts)
	}
	if seq.Sum(counts) != 1000 {
		t.Fatalf("token loss: %v", counts)
	}
}

func TestConcurrentTraversalQuiescentCounts(t *testing.T) {
	// Fire a known token multiset from many goroutines; at quiescence
	// the exit distribution must equal the deterministic transfer.
	n := counting4()
	a := Compile(n)
	perWire := 123
	in := []int64{int64(perWire), int64(perWire), int64(perWire), int64(perWire)}
	want := ApplyTokens(n, in)

	var mu sync.Mutex
	got := make([]int64, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make([]int64, 4)
			for k := g; k < 4*perWire; k += 8 {
				local[a.Traverse(k%4)]++
			}
			mu.Lock()
			for i, v := range local {
				got[i] += v
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent quiescent counts %v, want %v", got, want)
	}
}

func TestConcurrentMutexTraversal(t *testing.T) {
	a := Compile(counting4())
	var wg sync.WaitGroup
	counts := make([]int64, 4)
	var mu sync.Mutex
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make([]int64, 4)
			for k := 0; k < 300; k++ {
				local[a.TraverseMutex((g+k)%4)]++
			}
			mu.Lock()
			for i, v := range local {
				counts[i] += v
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if !seq.IsStep(counts) {
		t.Fatalf("mutex-balancer exit counts %v lack step property", counts)
	}
}

func TestReset(t *testing.T) {
	a := Compile(counting4())
	first := a.Traverse(0)
	a.Traverse(1)
	a.Traverse(2)
	a.Reset()
	if got := a.Traverse(0); got != first {
		t.Errorf("after Reset, first token exits %d, want %d", got, first)
	}
}

func TestTraversePanicsOnBadWire(t *testing.T) {
	a := Compile(counting4())
	for _, w := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Traverse(%d) did not panic", w)
				}
			}()
			a.Traverse(w)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TraverseMutex(-1) did not panic")
			}
		}()
		a.TraverseMutex(-1)
	}()
}

func TestCompileGatelessNetwork(t *testing.T) {
	n := network.NewBuilder(3).Build("empty", []int{2, 0, 1})
	a := Compile(n)
	if a.Width() != 3 {
		t.Fatalf("width %d", a.Width())
	}
	// Tokens pass straight through; exits follow the output order.
	if a.Traverse(2) != 0 || a.Traverse(0) != 1 || a.Traverse(1) != 2 {
		t.Error("gateless traversal should map wires by output order")
	}
}

func TestExitCountsSingleWorkerDeterministic(t *testing.T) {
	n := counting4()
	want := ApplyTokens(n, []int64{5, 5, 5, 5})
	a := Compile(n)
	got := a.ExitCounts(5, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-worker ExitCounts %v, want %v", got, want)
	}
}

// TestAsyncHotIsolation pins the layout contract of asyncHot: each
// gate's contended state must start a fresh 128-byte element, so no
// two counters can share a cache line (or an adjacent-line prefetch
// pair) whatever the slice's base alignment.
func TestAsyncHotIsolation(t *testing.T) {
	size := unsafe.Sizeof(asyncHot{})
	if size != 128 {
		t.Fatalf("asyncHot is %d bytes, want exactly 128", size)
	}
	if off := unsafe.Offsetof(asyncHot{}.count); off != 0 {
		t.Fatalf("count at offset %d, want 0", off)
	}
	var hs [2]asyncHot
	delta := uintptr(unsafe.Pointer(&hs[1].count)) - uintptr(unsafe.Pointer(&hs[0].count))
	if delta < 128 {
		t.Fatalf("adjacent counters %d bytes apart, want >= 128", delta)
	}
}
