// Schedule-exploration property suite for the real async traversal:
// internal/sched serializes Async.TraverseHooked goroutines at every
// balancer access and checks the paper's quiescent guarantees over
// many adversarial interleavings. Lives in package runner_test because
// sched imports runner.
package runner_test

import (
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/sched"
)

// TestAsyncStepPropertyUnderExploredSchedules: for every explored
// interleaving of real concurrent traversals, the quiescent exit
// counts satisfy the step property and match the transfer function.
func TestAsyncStepPropertyUnderExploredSchedules(t *testing.T) {
	nets := map[string]*network.Network{}
	if n, err := core.K(2, 2); err == nil {
		nets["K(2,2)"] = n
	}
	if n, err := core.R(2, 3); err == nil {
		nets["R(2,3)"] = n
	}
	if n, err := baseline.Bitonic(4); err == nil {
		nets["bitonic4"] = n
	}
	for name, net := range nets {
		// Skewed load: two tokens on wire 0, one on the last wire.
		entries := []int{0, 0, net.Width() - 1}
		sys := sched.TokenSystem(net, entries)
		if rep := sched.ExploreRandom(sys, 0xc0de, 200, 10_000); rep.Failure != nil {
			t.Errorf("%s random: %s", name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 2, 50_000, 10_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", name, rep.Failure)
		} else {
			t.Logf("%s: DFS covered %d schedules (preemption bound 2)", name, rep.Schedules)
		}
	}
}

// TestAsyncHookedAgreesWithTraverse: the instrumented traversal is the
// same machine as the production one — a serial hooked run and a
// serial plain run land every token on the same exit.
func TestAsyncHookedAgreesWithTraverse(t *testing.T) {
	net, err := baseline.Bitonic(8)
	if err != nil {
		t.Fatal(err)
	}
	plain := runner.Compile(net)
	hooked := runner.Compile(net)
	noop := func(string) {}
	for i := 0; i < 3*net.Width(); i++ {
		wire := i % net.Width()
		p := plain.Traverse(wire)
		h := hooked.TraverseHooked(wire, noop)
		if p != h {
			t.Fatalf("token %d on wire %d: plain exit %d, hooked exit %d", i, wire, p, h)
		}
	}
}

// TestBatchStepPropertyUnderExploredSchedules: for every explored
// interleaving of batched traversals with single-token traversals,
// the quiescent exit counts satisfy the step property and match the
// transfer function of the combined load. This is the concurrency-side
// evidence for TraverseBatch's claim that one Add(t) per gate is a legal
// serialization of t tokens even while other tokens are mid-flight.
func TestBatchStepPropertyUnderExploredSchedules(t *testing.T) {
	nets := map[string]*network.Network{}
	if n, err := core.K(2, 2); err == nil {
		nets["K(2,2)"] = n
	}
	if n, err := core.R(2, 3); err == nil {
		nets["R(2,3)"] = n
	}
	for name, net := range nets {
		w := net.Width()
		// Two single tokens racing two batches (one skewed, one spread).
		entries := []int{0, w - 1}
		skewed := make([]int64, w)
		skewed[0] = 3
		spread := make([]int64, w)
		for i := range spread {
			spread[i] = 1
		}
		sys := sched.BatchTokenSystem(net, entries, [][]int64{skewed, spread})
		if rep := sched.ExploreRandom(sys, 0xbadc, 200, 10_000); rep.Failure != nil {
			t.Errorf("%s random: %s", name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 2, 50_000, 10_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", name, rep.Failure)
		} else {
			t.Logf("%s: DFS covered %d schedules (preemption bound 2)", name, rep.Schedules)
		}
	}
}
