package runner

import (
	"math/rand"
	"reflect"
	"testing"

	"countnet/internal/network"
)

func TestSorterMatchesApplyComparators(t *testing.T) {
	net := twoSorter()
	s := NewSorter(net)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		in := make([]int64, 4)
		for i := range in {
			in[i] = int64(rng.Intn(50))
		}
		want := ApplyComparators(net, in)
		got := s.Sort(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Sorter.Sort(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSorterWithOutputOrder(t *testing.T) {
	b := network.NewBuilder(2)
	b.Add([]int{0, 1}, "")
	net := b.Build("rev", []int{1, 0})
	s := NewSorter(net)
	got := s.Sort([]int64{1, 9})
	if !reflect.DeepEqual(got, []int64{1, 9}) {
		t.Errorf("Sort with reversed order = %v", got)
	}
}

func TestSorterReusesBuffer(t *testing.T) {
	s := NewSorter(twoSorter())
	a := s.Sort([]int64{4, 3, 2, 1})
	b := s.Sort([]int64{1, 2, 3, 4})
	if &a[0] != &b[0] {
		t.Error("Sorter allocated a fresh output slice per call")
	}
}

func TestSorterPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSorter(twoSorter()).Sort([]int64{1})
}

func TestInsertionSortDesc(t *testing.T) {
	cases := [][]int64{
		{}, {1}, {1, 2}, {2, 1}, {3, 1, 2}, {5, 5, 5}, {1, 2, 3, 4, 5},
	}
	for _, c := range cases {
		cp := append([]int64(nil), c...)
		insertionSortDesc(cp)
		for i := 1; i < len(cp); i++ {
			if cp[i-1] < cp[i] {
				t.Fatalf("insertionSortDesc(%v) = %v", c, cp)
			}
		}
	}
}

func TestPipelineSortsStream(t *testing.T) {
	net := twoSorter()
	p := NewPipeline(net, 4)
	rng := rand.New(rand.NewSource(2))
	const batches = 64
	inputs := make([][]int64, batches)
	for i := range inputs {
		inputs[i] = make([]int64, 4)
		for j := range inputs[i] {
			inputs[i][j] = int64(rng.Intn(100))
		}
	}
	want := make([][]int64, batches)
	for i, in := range inputs {
		// Pipeline results stay in wire order; compute the wire-order
		// expectation by undoing the output-order remap (identity here).
		want[i] = ApplyComparators(net, in)
	}
	go func() {
		for _, in := range inputs {
			batch := append([]int64(nil), in...)
			p.Submit(batch)
		}
		p.Close()
	}()
	i := 0
	for got := range p.Results() {
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("batch %d: %v, want %v", i, got, want[i])
		}
		i++
	}
	p.Wait()
	if i != batches {
		t.Fatalf("received %d batches, want %d", i, batches)
	}
}

func TestPipelineOrderPreserved(t *testing.T) {
	net := twoSorter()
	p := NewPipeline(net, 1)
	go func() {
		for k := 0; k < 20; k++ {
			p.Submit([]int64{int64(k), int64(k), int64(k), int64(k)})
		}
		p.Close()
	}()
	k := int64(0)
	for got := range p.Results() {
		if got[0] != k {
			t.Fatalf("batch order broken: got %v at position %d", got, k)
		}
		k++
	}
	p.Wait()
}

func TestPipelineSubmitPanicsOnWidth(t *testing.T) {
	p := NewPipeline(twoSorter(), 1)
	defer func() {
		p.Close()
		p.Wait()
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Submit([]int64{1, 2})
}

func TestSortBatches(t *testing.T) {
	net := twoSorter()
	rng := rand.New(rand.NewSource(7))
	for _, workers := range []int{1, 2, 5, 100} {
		batches := make([][]int64, 37)
		wants := make([][]int64, len(batches))
		for i := range batches {
			batches[i] = make([]int64, 4)
			for j := range batches[i] {
				batches[i][j] = int64(rng.Intn(100))
			}
			wants[i] = ApplyComparators(net, batches[i])
		}
		SortBatches(net, batches, workers)
		for i := range batches {
			if !reflect.DeepEqual(batches[i], wants[i]) {
				t.Fatalf("workers=%d batch %d: %v, want %v", workers, i, batches[i], wants[i])
			}
		}
	}
	// Degenerate inputs.
	SortBatches(net, nil, 4)
	SortBatches(net, [][]int64{}, 0)
}

func TestPipelineOutputOrderExposed(t *testing.T) {
	p := NewPipeline(twoSorter(), 1)
	if len(p.OutputOrder()) != 4 {
		t.Error("output order missing")
	}
	p.Close()
	p.Wait()
}
