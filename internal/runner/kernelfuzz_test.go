package runner

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzKernelVsSort drives every generated kernel width (5..16) with
// arbitrary int64 inputs decoded from the fuzz data and checks the
// kernel output against the stdlib sort, descending. Registered in
// the Makefile fuzz targets and the CI fuzz-smoke job.
func FuzzKernelVsSort(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(11), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 1, 0, 0, 0, 0, 0, 0, 0x80})
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		w := 5 + int(sel)%(maxKernelWidth-4)
		kern := wideKernel[w]
		if kern == nil {
			t.Fatalf("no kernel for width %d", w)
		}
		vals := make([]int64, w)
		for i := range vals {
			if len(data) >= 8 {
				vals[i] = int64(binary.LittleEndian.Uint64(data[:8]))
				data = data[8:]
			} else if len(data) > 0 {
				vals[i] = int64(data[0]) - 128
				data = data[1:]
			}
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		wires := make([]int32, w)
		for i := range wires {
			wires[i] = int32(i)
		}
		kern(vals, wires)
		for i := range vals {
			if vals[i] != want[i] {
				t.Fatalf("width %d: kernel %v, stdlib sort %v", w, vals, want)
			}
		}
	})
}
