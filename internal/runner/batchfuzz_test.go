// Fuzz differential for the batched propagation engine: arbitrary
// interleavings (serial, but over LIVE balancer state) of
// Async.TraverseBatch calls and single-token Async.Traverse calls must
// quiesce on the step property and on the transfer function of the
// combined load. Lives in package runner_test so it can certify the
// subjects with internal/verify (which itself imports runner).
package runner_test

import (
	"reflect"
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
	"countnet/internal/verify"
)

// fuzzSubjects returns the fixed counting networks the fuzzer drives —
// a power-of-two width (exercising the mask/shift fast path in the
// batch engine) and a non-power-of-two width (the DIV path) — each
// certified as a counting network via internal/verify up front, so a
// fuzz failure indicts the engines, not the subject.
func fuzzSubjects(tb testing.TB) []*network.Network {
	tb.Helper()
	bitonic, err := baseline.Bitonic(4)
	if err != nil {
		tb.Fatal(err)
	}
	r23, err := core.R(2, 3)
	if err != nil {
		tb.Fatal(err)
	}
	nets := []*network.Network{bitonic, r23}
	for _, n := range nets {
		if err := verify.IsCountingNetworkSeeded(n, 0xba7c4); err != nil {
			tb.Fatalf("fuzz subject is not a counting network: %v", err)
		}
	}
	return nets
}

// FuzzBatchVsSerial decodes the input bytes into a program of batch
// and single-token traversals, runs it against one live Async, and
// checks the quiescent step property plus equality with
// runner.ApplyTokens on the combined input.
func FuzzBatchVsSerial(f *testing.F) {
	nets := fuzzSubjects(f)
	f.Add(uint8(0), []byte{})
	f.Add(uint8(0), []byte{2, 4, 6})                // singles only
	f.Add(uint8(0), []byte{1, 7, 0, 0, 7})          // one batch
	f.Add(uint8(1), []byte{1, 3, 3, 3, 3, 3, 3})    // batch on width 6
	f.Add(uint8(1), []byte{0, 1, 5, 5, 5, 5, 2, 4}) // mixed
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		net := nets[int(sel)%len(nets)]
		w := net.Width()
		a := runner.Compile(net)
		total := make([]int64, w)
		counts := make([]int64, w)
		in := make([]int64, w)
		for i, ops := 0, 0; i < len(data) && ops < 64; ops++ {
			b := data[i]
			i++
			if b&1 == 0 {
				wire := int(b>>1) % w
				total[wire]++
				counts[a.Traverse(wire)]++
				continue
			}
			for j := 0; j < w; j++ {
				in[j] = 0
				if i < len(data) {
					in[j] = int64(data[i] % 8)
					i++
				}
				total[j] += in[j]
			}
			for pos, v := range a.TraverseBatch(in) {
				counts[pos] += v
			}
		}
		if !seq.IsStep(counts) {
			t.Fatalf("quiescent exit counts %v violate the step property (net %s, input %v)",
				counts, net.Name, total)
		}
		if want := runner.ApplyTokens(net, total); !reflect.DeepEqual(counts, want) {
			t.Fatalf("quiescent exit counts %v differ from transfer function %v (net %s, input %v)",
				counts, want, net.Name, total)
		}
	})
}
