package runner

import (
	"testing"

	"countnet/internal/network"
	"countnet/internal/seq"
)

// fuzzNet is a fixed counting network (the 4-wide bitonic) used as the
// fuzzing subject; building networks per-input would fuzz the builder,
// not the engines.
func fuzzNet() *network.Network {
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	return b.Build("fuzz4", nil)
}

// FuzzApplyTokensStep: for any non-negative token input, the counting
// network's quiescent output has the step property and conserves
// tokens, and the serial simulator agrees with the transfer function.
func FuzzApplyTokensStep(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0), uint16(0))
	f.Add(uint16(1), uint16(0), uint16(0), uint16(0))
	f.Add(uint16(65535), uint16(1), uint16(500), uint16(3))
	f.Add(uint16(7), uint16(7), uint16(7), uint16(7))
	net := fuzzNet()
	f.Fuzz(func(t *testing.T, a, b, c, d uint16) {
		in := []int64{int64(a), int64(b), int64(c), int64(d)}
		out := ApplyTokens(net, in)
		if !seq.IsStep(out) {
			t.Fatalf("output %v of %v not step", out, in)
		}
		if seq.Sum(out) != seq.Sum(in) {
			t.Fatalf("token loss: %v -> %v", in, out)
		}
		// Serial cross-check on a bounded version of the same multiset.
		var tokens []int
		for wire, cnt := range in {
			for k := int64(0); k < cnt%8; k++ {
				tokens = append(tokens, wire)
			}
		}
		small := make([]int64, 4)
		for _, w := range tokens {
			small[w]++
		}
		serial, _ := ApplyTokensSerial(net, tokens)
		quiesced := ApplyTokens(net, small)
		for i := range serial {
			if serial[i] != quiesced[i] {
				t.Fatalf("serial %v != quiescent %v for %v", serial, quiesced, small)
			}
		}
	})
}

// FuzzComparatorsSort: for any batch, the output is descending and a
// permutation of the input.
func FuzzComparatorsSort(f *testing.F) {
	f.Add(int16(0), int16(0), int16(0), int16(0))
	f.Add(int16(-5), int16(3), int16(32767), int16(-32768))
	f.Add(int16(1), int16(2), int16(3), int16(4))
	net := fuzzNet()
	f.Fuzz(func(t *testing.T, a, b, c, d int16) {
		in := []int64{int64(a), int64(b), int64(c), int64(d)}
		out := ApplyComparators(net, in)
		for i := 1; i < len(out); i++ {
			if out[i-1] < out[i] {
				t.Fatalf("not descending: %v -> %v", in, out)
			}
		}
		var sumIn, sumOut int64
		var xorIn, xorOut int64
		for i := range in {
			sumIn += in[i]
			sumOut += out[i]
			xorIn ^= in[i]
			xorOut ^= out[i]
		}
		if sumIn != sumOut || xorIn != xorOut {
			t.Fatalf("multiset changed: %v -> %v", in, out)
		}
	})
}
