package runner

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"countnet/internal/network"
)

// twoSorter builds the 4-wire bitonic sorter out of 2-gates.
func twoSorter() *network.Network {
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	return b.Build("sorter4", nil)
}

func TestApplyComparatorsSingleGate(t *testing.T) {
	b := network.NewBuilder(3)
	b.Add([]int{0, 1, 2}, "")
	n := b.Build("g3", nil)
	out := ApplyComparators(n, []int64{1, 3, 2})
	if !reflect.DeepEqual(out, []int64{3, 2, 1}) {
		t.Errorf("3-comparator output %v, want descending [3 2 1]", out)
	}
}

func TestApplyComparatorsSorts(t *testing.T) {
	n := twoSorter()
	for _, in := range [][]int64{
		{1, 2, 3, 4}, {4, 3, 2, 1}, {2, 4, 1, 3}, {7, 7, 0, 7}, {0, 0, 0, 0},
	} {
		out := ApplyComparators(n, in)
		for i := 1; i < len(out); i++ {
			if out[i-1] < out[i] {
				t.Errorf("ApplyComparators(%v) = %v not descending", in, out)
			}
		}
	}
}

func TestApplyComparatorsPreservesMultiset(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		in := []int64{int64(a), int64(b), int64(c), int64(d)}
		out := ApplyComparators(twoSorter(), in)
		x := append([]int64(nil), in...)
		y := append([]int64(nil), out...)
		sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
		sort.Slice(y, func(i, j int) bool { return y[i] < y[j] })
		return reflect.DeepEqual(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyComparatorsDoesNotMutateInput(t *testing.T) {
	in := []int64{3, 1, 2, 0}
	saved := append([]int64(nil), in...)
	ApplyComparators(twoSorter(), in)
	if !reflect.DeepEqual(in, saved) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestApplyComparatorsOutputOrder(t *testing.T) {
	// With a reversed output order, a single gate's output reads back
	// ascending.
	b := network.NewBuilder(2)
	b.Add([]int{0, 1}, "")
	n := b.Build("rev", []int{1, 0})
	out := ApplyComparators(n, []int64{9, 1})
	if !reflect.DeepEqual(out, []int64{1, 9}) {
		t.Errorf("output-order remap: %v", out)
	}
}

func TestApplyComparatorsPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyComparators(twoSorter(), []int64{1, 2})
}

func TestSortAscending(t *testing.T) {
	out := SortAscending(twoSorter(), []int64{4, 1, 3, 2})
	if !reflect.DeepEqual(out, []int64{1, 2, 3, 4}) {
		t.Errorf("SortAscending = %v", out)
	}
}

func TestApplyComparatorsFunc(t *testing.T) {
	type kv struct {
		k int
		v string
	}
	in := []kv{{3, "c"}, {1, "a"}, {4, "d"}, {2, "b"}}
	out := ApplyComparatorsFunc(twoSorter(), in, func(a, b kv) bool { return a.k < b.k })
	wantKeys := []int{4, 3, 2, 1}
	for i, e := range out {
		if e.k != wantKeys[i] {
			t.Fatalf("generic sort order: %v", out)
		}
	}
	// Payloads must travel with keys.
	if out[0].v != "d" || out[3].v != "a" {
		t.Errorf("payloads detached: %v", out)
	}
}

func TestApplyComparatorsFuncStable(t *testing.T) {
	// Equal keys keep their relative order within each gate (SliceStable);
	// at minimum the multiset of payloads must survive.
	type kv struct {
		k int
		v int
	}
	in := []kv{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	out := ApplyComparatorsFunc(twoSorter(), in, func(a, b kv) bool { return a.k < b.k })
	seen := map[int]bool{}
	for _, e := range out {
		seen[e.v] = true
	}
	if len(seen) != 4 {
		t.Errorf("payload multiset damaged: %v", out)
	}
}

func TestApplyComparatorsFuncAllocBound(t *testing.T) {
	// The generic path may allocate its working copy, gate buffer and
	// output — nothing more (in particular no per-gate closures or
	// sort.SliceStable machinery).
	net := twoSorter()
	in := []int64{4, 1, 3, 2}
	less := func(a, b int64) bool { return a < b }
	allocs := testing.AllocsPerRun(100, func() { ApplyComparatorsFunc(net, in, less) })
	if allocs > 3 {
		t.Errorf("ApplyComparatorsFunc allocates %v times per run, want <= 3", allocs)
	}
}

func TestApplyComparatorsEmptyNetwork(t *testing.T) {
	n := network.NewBuilder(3).Build("empty", nil)
	in := []int64{3, 1, 2}
	out := ApplyComparators(n, in)
	if !reflect.DeepEqual(out, in) {
		t.Errorf("empty network should be identity: %v", out)
	}
}
