package runner

import (
	"math/rand"
	"reflect"
	"testing"

	"countnet/internal/seq"
)

func randomTokenCounts(rng *rand.Rand, w int) []int64 {
	in := make([]int64, w)
	for i := range in {
		if rng.Intn(3) > 0 { // leave some wires empty
			in[i] = int64(rng.Intn(40))
		}
	}
	return in
}

// TestTraverseBatchMatchesApplyTokens: on a fresh network state, one
// batched traversal must land on exactly the quiescent transfer
// function — for every golden network and constructed K/L/R instance.
func TestTraverseBatchMatchesApplyTokens(t *testing.T) {
	for name, net := range allPlanNetworks(t) {
		t.Run(name, func(t *testing.T) {
			a := Compile(net)
			s := a.NewBatchScratch()
			dst := make([]int64, net.Width())
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 25; trial++ {
				in := randomTokenCounts(rng, net.Width())
				want := ApplyTokens(net, in)
				got := a.TraverseBatch(in)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: batch %v, transfer function %v, input %v", trial, got, want, in)
				}
				a.Reset()
				// Reusable form agrees and returns dst.
				if out := a.TraverseBatchInto(dst, in, s); &out[0] != &dst[0] || !reflect.DeepEqual(out, want) {
					t.Fatalf("trial %d: TraverseBatchInto %v, want %v", trial, out, want)
				}
				a.Reset()
			}
		})
	}
}

// TestTraverseBatchComposes: splitting a load into batches and single
// tokens, pushed through one LIVE network in any order, must sum to the
// transfer function of the combined load — the property that lets the
// combining counter mix batches with per-token traffic.
func TestTraverseBatchComposes(t *testing.T) {
	for name, net := range allPlanNetworks(t) {
		t.Run(name, func(t *testing.T) {
			w := net.Width()
			a := Compile(net)
			s := a.NewBatchScratch()
			rng := rand.New(rand.NewSource(13))
			for trial := 0; trial < 10; trial++ {
				a.Reset()
				total := make([]int64, w)
				counts := make([]int64, w)
				dst := make([]int64, w)
				for op := 0; op < 8; op++ {
					if rng.Intn(2) == 0 {
						wire := rng.Intn(w)
						total[wire]++
						counts[a.Traverse(wire)]++
					} else {
						in := randomTokenCounts(rng, w)
						for i, v := range in {
							total[i] += v
						}
						a.TraverseBatchInto(dst, in, s)
						for i, v := range dst {
							counts[i] += v
						}
					}
				}
				want := ApplyTokens(net, total)
				if !reflect.DeepEqual(counts, want) {
					t.Fatalf("trial %d: mixed exits %v, transfer function %v (input %v)", trial, counts, want, total)
				}
				if !seq.IsStep(counts) && seq.IsStep(want) {
					t.Fatalf("trial %d: mixed exits %v lost the step property", trial, counts)
				}
			}
		})
	}
}

// TestTraverseBatchHookedAgrees: the instrumented batch traversal is
// the same machine as the production one.
func TestTraverseBatchHookedAgrees(t *testing.T) {
	for name, net := range constructedPlanNetworks(t) {
		plain := Compile(net)
		hooked := Compile(net)
		rng := rand.New(rand.NewSource(17))
		hooks := 0
		for trial := 0; trial < 5; trial++ {
			in := randomTokenCounts(rng, net.Width())
			p := plain.TraverseBatch(in)
			h := hooked.TraverseBatchHooked(in, func(string) { hooks++ })
			if !reflect.DeepEqual(p, h) {
				t.Fatalf("%s trial %d: plain %v, hooked %v", name, trial, p, h)
			}
		}
		if hooks == 0 {
			t.Errorf("%s: hooked traversal never yielded", name)
		}
	}
}

// TestTraverseBatchZero: an all-zero batch touches no gate — the next
// real batch still sees a fresh network.
func TestTraverseBatchZero(t *testing.T) {
	net := fuzzNet()
	a := Compile(net)
	out := a.TraverseBatch(make([]int64, net.Width()))
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero batch exited tokens: %v", out)
		}
	}
	in := []int64{3, 1, 0, 2}
	if got, want := a.TraverseBatch(in), ApplyTokens(net, in); !reflect.DeepEqual(got, want) {
		t.Fatalf("zero batch moved balancer state: %v, want %v", got, want)
	}
}

// TestTraverseBatchIntoAllocationFree: the reusable form performs zero
// allocations.
func TestTraverseBatchIntoAllocationFree(t *testing.T) {
	net := fuzzNet()
	a := Compile(net)
	s := a.NewBatchScratch()
	dst := make([]int64, net.Width())
	in := []int64{5, 0, 7, 2}
	if allocs := testing.AllocsPerRun(100, func() {
		a.TraverseBatchInto(dst, in, s)
	}); allocs != 0 {
		t.Errorf("TraverseBatchInto allocates %v per run", allocs)
	}
}

func TestTraverseBatchPanics(t *testing.T) {
	a := Compile(fuzzNet())
	for name, bad := range map[string]func(){
		"short input":    func() { a.TraverseBatch([]int64{1, 2}) },
		"negative count": func() { a.TraverseBatch([]int64{1, -1, 0, 0}) },
		"short dst":      func() { a.TraverseBatchInto(make([]int64, 2), []int64{1, 0, 0, 0}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			bad()
		}()
	}
}
