package runner

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"countnet/internal/network"
	"countnet/internal/seq"
)

func singleBalancer(p int) *network.Network {
	b := network.NewBuilder(p)
	b.Add(network.Identity(p), "")
	return b.Build("bal", nil)
}

func TestApplyTokensSingleBalancer(t *testing.T) {
	cases := []struct {
		p    int
		in   []int64
		want []int64
	}{
		{2, []int64{5, 0}, []int64{3, 2}},
		{2, []int64{2, 2}, []int64{2, 2}},
		{3, []int64{7, 0, 0}, []int64{3, 2, 2}},
		{3, []int64{0, 0, 8}, []int64{3, 3, 2}},
		{4, []int64{1, 1, 1, 0}, []int64{1, 1, 1, 0}},
	}
	for _, c := range cases {
		got := ApplyTokens(singleBalancer(c.p), c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("balancer(%d) on %v = %v, want %v", c.p, c.in, got, c.want)
		}
	}
}

func TestApplyTokensBalancerOutputAlwaysStep(t *testing.T) {
	f := func(a, b, c uint8) bool {
		in := []int64{int64(a), int64(b), int64(c)}
		out := ApplyTokens(singleBalancer(3), in)
		return seq.IsStep(out) && seq.Sum(out) == seq.Sum(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyTokensPreservesSum(t *testing.T) {
	// Random layered networks must conserve tokens.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		w := 3 + rng.Intn(8)
		b := network.NewBuilder(w)
		for g := 0; g < 10; g++ {
			k := 2 + rng.Intn(w-1)
			b.Add(rng.Perm(w)[:k], "")
		}
		n := b.Build("rand", nil)
		in := make([]int64, w)
		for i := range in {
			in[i] = int64(rng.Intn(50))
		}
		out := ApplyTokens(n, in)
		if seq.Sum(out) != seq.Sum(in) {
			t.Fatalf("tokens not conserved: in %v out %v", in, out)
		}
	}
}

func TestApplyTokensPanics(t *testing.T) {
	n := singleBalancer(2)
	for _, in := range [][]int64{{1}, {1, 2, 3}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ApplyTokens(%v) did not panic", in)
				}
			}()
			ApplyTokens(n, in)
		}()
	}
}

func TestApplyTokensSerialMatchesQuiescent(t *testing.T) {
	// For any network and any token injection, per-wire exit counts from
	// one-at-a-time simulation equal the quiescent transfer function.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		w := 2 + rng.Intn(7)
		b := network.NewBuilder(w)
		for g := 0; g < 8; g++ {
			k := 2 + rng.Intn(w-1)
			b.Add(rng.Perm(w)[:k], "")
		}
		n := b.Build("rand", nil)
		nTokens := rng.Intn(60)
		tokens := make([]int, nTokens)
		counts := make([]int64, w)
		for i := range tokens {
			tokens[i] = rng.Intn(w)
			counts[tokens[i]]++
		}
		serial, exits := ApplyTokensSerial(n, tokens)
		quiesced := ApplyTokens(n, counts)
		if !reflect.DeepEqual(serial, quiesced) {
			t.Fatalf("trial %d: serial %v != quiescent %v", trial, serial, quiesced)
		}
		// Exits must be consistent with the counts.
		recount := make([]int64, w)
		for _, pos := range exits {
			if pos < 0 || pos >= w {
				t.Fatalf("exit position %d out of range", pos)
			}
			recount[pos]++
		}
		if !reflect.DeepEqual(recount, serial) {
			t.Fatalf("exit positions inconsistent: %v vs %v", recount, serial)
		}
	}
}

func TestApplyTokensSerialTokenOrderIrrelevantForCounts(t *testing.T) {
	// The multiset of entry wires determines exit counts: shuffling the
	// injection order must not change them (balancers are deterministic
	// in arrival rank only, and serial injection fixes ranks per gate by
	// path; this property is what makes the quiescent engine exact).
	rng := rand.New(rand.NewSource(9))
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 2}, "")
	b.Add([]int{1, 3}, "")
	n := b.Build("small", nil)
	tokens := []int{0, 0, 1, 2, 3, 3, 3, 1, 0}
	want, _ := ApplyTokensSerial(n, tokens)
	for trial := 0; trial < 30; trial++ {
		shuffled := append([]int(nil), tokens...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, _ := ApplyTokensSerial(n, shuffled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("counts depend on injection order: %v vs %v", got, want)
		}
	}
}

func TestApplyTokensSerialPanicsOnBadWire(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyTokensSerial(singleBalancer(2), []int{5})
}

func TestStepperMatchesApplyTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := network.NewBuilder(6)
	b.Add([]int{0, 1, 2}, "")
	b.Add([]int{3, 4, 5}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{2, 5}, "")
	n := b.Build("mix", []int{5, 4, 3, 2, 1, 0})
	s := NewStepper(n)
	for trial := 0; trial < 300; trial++ {
		in := make([]int64, 6)
		for i := range in {
			in[i] = int64(rng.Intn(40))
		}
		want := ApplyTokens(n, in)
		got := s.Step(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Stepper(%v) = %v, want %v", in, got, want)
		}
	}
	// Buffer reuse.
	a := s.Step(make([]int64, 6))
	bb := s.Step(make([]int64, 6))
	if &a[0] != &bb[0] {
		t.Error("Stepper allocated per call")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("width mismatch accepted")
			}
		}()
		s.Step([]int64{1})
	}()
}

func TestApplyTokensEmptyNetwork(t *testing.T) {
	n := network.NewBuilder(3).Build("empty", nil)
	in := []int64{4, 0, 2}
	out := ApplyTokens(n, in)
	if !reflect.DeepEqual(out, in) {
		t.Errorf("empty network should be identity: %v", out)
	}
}
