package runner

import (
	"fmt"
	"runtime"
	"sync"

	"countnet/internal/network"
)

// The straight-line compare-exchange kernels for gate widths 5..16
// (zkernels.go) are generated from the verified sorting-network table
// in internal/optnet. make generate-check gates drift in CI.
//go:generate go run countnet/cmd/kernelgen -out zkernels.go

// Plan is a network compiled for comparator-semantics execution: a flat
// structure-of-arrays form with int32 wire indices, gates grouped by
// layer, and the dominant 2-comparators segregated from wide gates so
// the hot loop dispatches without per-gate branching on gate width.
//
// A Plan is immutable after CompilePlan and safe for concurrent use;
// all mutable state lives in per-caller Scratch (or in a Parallel
// runner's workers). Three execution modes share the compiled form:
//
//   - Apply: one batch, allocation-free with caller-provided Scratch;
//   - ApplyBatches: many batches streamed through the plan in blocks,
//     so the plan's layer data stays cache-hot across a block;
//   - Parallel.Apply: one batch with each layer's independent gates
//     fanned across a reusable worker pool.
//
// All three produce output identical to ApplyComparators: element k of
// the result is the value leaving on wire OutputOrder[k], gates route
// their largest input to their first wire.
type Plan struct {
	width     int
	numLayers int
	maxWide   int // width of the widest non-2 gate, 0 if none

	// 2-comparators, layer-major: layer l owns pair indices
	// pairOff[l]..pairOff[l+1], pair j is wires pairs[2j], pairs[2j+1].
	pairs   []int32
	pairOff []int32

	// Wide gates (width >= 3), layer-major: layer l owns wide-gate
	// indices layerWide[l]..layerWide[l+1]; wide gate g touches wires
	// wideWires[wideOff[g]:wideOff[g+1]].
	wideWires []int32
	wideOff   []int32
	layerWide []int32

	out      []int32 // output position -> wire
	outIdent bool

	// noKernels forces the gather/insertion-sort/scatter path for
	// every gate wider than 4, disabling the generated straight-line
	// kernels (zkernels.go). Off in production; the differential
	// tests and the kernel-vs-fallback benchmarks flip it via
	// SetWideKernels to pin both engines against each other.
	noKernels bool
}

// CompilePlan compiles the network once; the result may be reused for
// any number of batches from any number of goroutines.
func CompilePlan(net *network.Network) *Plan {
	p := &Plan{
		width:     net.Width(),
		numLayers: net.Depth(),
		pairOff:   make([]int32, 1, net.Depth()+1),
		wideOff:   make([]int32, 1),
		layerWide: make([]int32, 1, net.Depth()+1),
		out:       make([]int32, net.Width()),
		outIdent:  true,
	}
	for li, ids := range net.Layers() {
		for _, id := range ids {
			g := &net.Gates[id]
			if g.Width() == 2 {
				p.pairs = append(p.pairs, int32(g.Wires[0]), int32(g.Wires[1]))
				continue
			}
			if g.Width() > p.maxWide {
				p.maxWide = g.Width()
			}
			for _, w := range g.Wires {
				p.wideWires = append(p.wideWires, int32(w))
			}
			p.wideOff = append(p.wideOff, int32(len(p.wideWires)))
		}
		p.pairOff = append(p.pairOff, int32(len(p.pairs)/2))
		p.layerWide = append(p.layerWide, int32(len(p.wideOff)-1))
		_ = li
	}
	for pos, wire := range net.OutputOrder {
		p.out[pos] = int32(wire)
		if pos != wire {
			p.outIdent = false
		}
	}
	return p
}

// Width returns the batch size the plan executes.
func (p *Plan) Width() int { return p.width }

// SetWideKernels toggles the generated straight-line kernels for wide
// gates of width 5..16 (on by default). With on=false every gate
// wider than 4 takes the gather/insertion-sort/scatter path — the
// reference engine the kernels are differential-tested and
// benchmarked against. Call before the plan is shared: the flag is
// read by concurrent Apply/ApplyBatches/Parallel runs without
// synchronization.
func (p *Plan) SetWideKernels(on bool) { p.noKernels = !on }

// NumLayers returns the number of compiled layers (the network depth).
func (p *Plan) NumLayers() int { return p.numLayers }

// Scratch is the per-caller mutable state of plan execution: the wire
// values and the wide-gate sorting buffer. A Scratch may be reused
// across calls but not shared between concurrent ones.
type Scratch struct {
	vals []int64
	gate []int64
}

// NewScratch returns scratch sized for the plan.
func (p *Plan) NewScratch() *Scratch {
	return &Scratch{vals: make([]int64, p.width), gate: make([]int64, p.maxWide)}
}

// Apply runs one batch through the plan: src enters on wires 0..w-1 and
// dst receives the output sequence (element k is the value on wire
// OutputOrder[k], i.e. descending for a sorting network). dst and src
// must have length Width and may alias each other. With a Scratch from
// NewScratch, Apply performs no allocation; a nil Scratch allocates one.
//
//netvet:hotpath
func (p *Plan) Apply(dst, src []int64, s *Scratch) {
	if len(src) != p.width || len(dst) != p.width {
		panic(fmt.Sprintf("runner: plan batch %d/%d for width-%d network", len(src), len(dst), p.width))
	}
	if s == nil {
		//netvet:allow escape -- cold nil-scratch fallback; steady-state callers pass s (pinned by the zero-alloc tests)
		s = p.NewScratch()
	}
	copy(s.vals, src)
	for l := 0; l < p.numLayers; l++ {
		p.runLayer(l, s.vals, s.gate)
	}
	//netvet:allow escape -- inlined emit re-attributes its panic string's boxing here; a constant string boxes to static data, no runtime allocation
	p.emit(dst, s.vals)
}

// emit writes the wire values to dst in output order.
//
//netvet:hotpath
func (p *Plan) emit(dst, vals []int64) {
	if p.outIdent {
		copy(dst, vals)
		return
	}
	if &dst[0] == &vals[0] {
		panic("runner: plan emit cannot permute in place")
	}
	for k, wire := range p.out {
		dst[k] = vals[wire]
	}
}

// runLayer applies one layer to vals in wire order.
//
//netvet:hotpath
func (p *Plan) runLayer(l int, vals, gate []int64) {
	p.runPairs(int(p.pairOff[l]), int(p.pairOff[l+1]), vals)
	p.runWide(int(p.layerWide[l]), int(p.layerWide[l+1]), vals, gate)
}

// runWide applies wide gates [g0,g1) to vals. Widths 3 and 4 — the
// bulk of every small-factor construction — run as fixed
// compare-exchange networks on registers; widths 5..16 dispatch to
// the generated straight-line kernels (zkernels.go, built from the
// verified internal/optnet table); only gates wider than
// maxKernelWidth gather into the scratch buffer and insertion-sort.
//
//netvet:hotpath
func (p *Plan) runWide(g0, g1 int, vals, gate []int64) {
	for g := g0; g < g1; g++ {
		wires := p.wideWires[p.wideOff[g]:p.wideOff[g+1]]
		switch len(wires) {
		case 3:
			a, b, c := wires[0], wires[1], wires[2]
			va, vb, vc := vals[a], vals[b], vals[c]
			va, vb = max(va, vb), min(va, vb)
			vb, vc = max(vb, vc), min(vb, vc)
			va, vb = max(va, vb), min(va, vb)
			vals[a], vals[b], vals[c] = va, vb, vc
		case 4:
			a, b, c, d := wires[0], wires[1], wires[2], wires[3]
			va, vb, vc, vd := vals[a], vals[b], vals[c], vals[d]
			va, vc = max(va, vc), min(va, vc)
			vb, vd = max(vb, vd), min(vb, vd)
			va, vb = max(va, vb), min(va, vb)
			vc, vd = max(vc, vd), min(vc, vd)
			vb, vc = max(vb, vc), min(vb, vc)
			vals[a], vals[b], vals[c], vals[d] = va, vb, vc, vd
		default:
			if len(wires) <= maxKernelWidth && !p.noKernels {
				wideKernel[len(wires)](vals, wires)
				continue
			}
			t := gate[:len(wires)]
			for i, w := range wires {
				t[i] = vals[w]
			}
			insertionSortDesc(t)
			for i, w := range wires {
				vals[w] = t[i]
			}
		}
	}
}

// runPairs applies 2-comparator pairs [j0,j1) (pair indices) to vals.
// The branchless min/max form compiles to conditional moves, immune to
// the ~50% mispredict rate a data-dependent swap suffers on random
// input.
//
//netvet:hotpath
func (p *Plan) runPairs(j0, j1 int, vals []int64) {
	pairs := p.pairs[2*j0 : 2*j1]
	for i := 0; i+1 < len(pairs); i += 2 {
		a, b := pairs[i], pairs[i+1]
		va, vb := vals[a], vals[b]
		vals[a], vals[b] = max(va, vb), min(va, vb)
	}
}

// DefaultBatchBlock is the number of batches ApplyBatches streams
// through each layer per pass. Chosen so a block of 64-wide int64
// batches stays within L1 alongside the plan's own arrays.
const DefaultBatchBlock = 16

// ApplyBatches runs every batch through the plan in place: each batch
// is replaced by its output sequence (descending for a sorting
// network). Batches are processed in blocks of `block` (<= 0 selects
// DefaultBatchBlock): within a block the plan advances layer by layer
// across all block members, so each layer's wire indices are loaded
// once per block rather than once per batch. Every batch must have
// length Width.
func (p *Plan) ApplyBatches(batches [][]int64, block int) {
	for i, b := range batches {
		if len(b) != p.width {
			panic(fmt.Sprintf("runner: plan batch %d has %d values for width-%d network", i, len(b), p.width))
		}
	}
	if block <= 0 {
		block = DefaultBatchBlock
	}
	gate := make([]int64, p.maxWide)
	var tmp []int64
	if !p.outIdent {
		tmp = make([]int64, p.width)
	}
	for lo := 0; lo < len(batches); lo += block {
		hi := lo + block
		if hi > len(batches) {
			hi = len(batches)
		}
		for l := 0; l < p.numLayers; l++ {
			for _, vals := range batches[lo:hi] {
				p.runLayer(l, vals, gate)
			}
		}
		if !p.outIdent {
			for _, vals := range batches[lo:hi] {
				copy(tmp, vals)
				for k, wire := range p.out {
					vals[k] = tmp[wire]
				}
			}
		}
	}
}

// Parallel executes one batch at a time with each layer's independent
// gates fanned across a persistent worker pool: goroutine startup is
// paid once at NewParallel, and each worker keeps private wide-gate
// scratch. Gates within a layer touch disjoint wires, so the workers
// never conflict; a barrier separates layers.
//
// A Parallel is not safe for concurrent Apply calls (it owns one set of
// wire values); create one per concurrent caller, or use ApplyBatches
// for data parallelism across batches instead. Close releases the
// workers.
//
// Layer parallelism pays off when layers are wide (hundreds of gates);
// for narrow networks the per-layer barrier dominates and Apply is
// faster.
type Parallel struct {
	plan    *Plan
	workers int
	vals    []int64
	work    []chan int // per-worker: layer index to run
	wg      sync.WaitGroup
	closed  bool
}

// NewParallel starts a worker pool for the plan. workers <= 0 selects
// GOMAXPROCS.
func (p *Plan) NewParallel(workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pl := &Parallel{
		plan:    p,
		workers: workers,
		vals:    make([]int64, p.width),
		work:    make([]chan int, workers),
	}
	for w := 0; w < workers; w++ {
		pl.work[w] = make(chan int, 1)
		// Production-only worker pool for the synchronous plan engine;
		// the sched harness explores the asynchronous token paths.
		//netvet:allow spawn
		go pl.worker(w)
	}
	return pl
}

func (pl *Parallel) worker(id int) {
	p := pl.plan
	gate := make([]int64, p.maxWide)
	for l := range pl.work[id] {
		// Static partition of the layer's pairs and wide gates.
		j0, j1 := int(p.pairOff[l]), int(p.pairOff[l+1])
		lo, hi := chunk(j0, j1, id, pl.workers)
		p.runPairs(lo, hi, pl.vals)
		g0, g1 := int(p.layerWide[l]), int(p.layerWide[l+1])
		lo, hi = chunk(g0, g1, id, pl.workers)
		p.runWide(lo, hi, pl.vals, gate)
		pl.wg.Done()
	}
}

// chunk splits [lo,hi) into n near-equal parts and returns part id.
func chunk(lo, hi, id, n int) (int, int) {
	span := hi - lo
	a := lo + span*id/n
	b := lo + span*(id+1)/n
	return a, b
}

// Apply runs one batch through the plan using the worker pool. The
// contract matches Plan.Apply: dst receives the output sequence and may
// alias src.
func (pl *Parallel) Apply(dst, src []int64) {
	p := pl.plan
	if len(src) != p.width || len(dst) != p.width {
		panic(fmt.Sprintf("runner: plan batch %d/%d for width-%d network", len(src), len(dst), p.width))
	}
	if pl.closed {
		panic("runner: Apply on closed Parallel")
	}
	copy(pl.vals, src)
	for l := 0; l < p.numLayers; l++ {
		pl.wg.Add(pl.workers)
		for _, ch := range pl.work {
			ch <- l
		}
		pl.wg.Wait()
	}
	p.emit(dst, pl.vals)
}

// Close stops the workers. The Parallel must not be used afterwards.
func (pl *Parallel) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	for _, ch := range pl.work {
		close(ch)
	}
}
