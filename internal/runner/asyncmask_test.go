package runner

import (
	"testing"

	"countnet/internal/network"
)

// maskDiffNets builds traversal subjects mixing power-of-two gate
// widths (mask fast path) with non-pow2 widths (DIV path), including
// multi-layer routes.
func maskDiffNets(t testing.TB) []*network.Network {
	t.Helper()
	var nets []*network.Network

	b := network.NewBuilder(8)
	b.Add([]int{0, 1, 2, 3}, "a")
	b.Add([]int{4, 5, 6, 7}, "b")
	b.Add([]int{0, 4}, "c")
	b.Add([]int{1, 5}, "d")
	b.Add([]int{2, 6}, "e")
	b.Add([]int{3, 7}, "f")
	b.Add([]int{0, 1, 2, 3, 4, 5, 6, 7}, "g")
	nets = append(nets, b.Build("pow2", nil))

	b = network.NewBuilder(6)
	b.Add([]int{0, 1, 2}, "a") // width 3: DIV path
	b.Add([]int{3, 4, 5}, "b")
	b.Add([]int{0, 3}, "c") // width 2: mask path
	b.Add([]int{1, 2, 4, 5}, "d")
	b.Add([]int{0, 1, 2, 3, 4}, "e") // width 5: DIV path
	nets = append(nets, b.Build("mixed", []int{5, 4, 3, 2, 1, 0}))

	return nets
}

// TestTraverseMaskVsModulo pins the pow2 mask fast path against plain
// modulo routing: the same serial token sequence through an Async with
// masks force-disabled (every gate takes the DIV path) must exit on
// identical positions, for Traverse, traverseObs and TraverseHooked,
// with TraverseMutex's independent arithmetic as a third oracle.
func TestTraverseMaskVsModulo(t *testing.T) {
	for _, net := range maskDiffNets(t) {
		t.Run(net.Name, func(t *testing.T) {
			fast := Compile(net)
			slow := Compile(net)
			masked := 0
			for i := range slow.gates {
				if slow.gates[i].mask >= 0 {
					masked++
				}
				slow.gates[i].mask = -1 // force the modulo path
			}
			if masked == 0 {
				t.Fatal("subject has no pow2 gates; differential is vacuous")
			}
			hooked := Compile(net)
			mutex := Compile(net)
			obsd := Compile(net)
			obsd.EnableObs("maskdiff")
			yield := func(string) {}
			const tokens = 500
			for k := 0; k < tokens; k++ {
				wire := k % net.Width()
				want := slow.Traverse(wire)
				if got := fast.Traverse(wire); got != want {
					t.Fatalf("token %d wire %d: mask path exits %d, modulo path %d", k, wire, got, want)
				}
				if got := obsd.Traverse(wire); got != want {
					t.Fatalf("token %d wire %d: observed path exits %d, modulo path %d", k, wire, got, want)
				}
				if got := hooked.TraverseHooked(wire, yield); got != want {
					t.Fatalf("token %d wire %d: hooked path exits %d, modulo path %d", k, wire, got, want)
				}
				if got := mutex.TraverseMutex(wire); got != want {
					t.Fatalf("token %d wire %d: mutex path exits %d, modulo path %d", k, wire, got, want)
				}
			}
		})
	}
}
