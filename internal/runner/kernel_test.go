// Tests for the generated straight-line compare-exchange kernels
// (zkernels.go): exhaustive 0-1 verification of every embedded width
// through the kernel AND the raw comparator table, differential runs
// of the kernel engine against the gather/insertion-sort/scatter
// reference across all three plan execution modes, and wire-mapping
// (scatter/gather indirection) coverage.
package runner

import (
	"math/rand"
	"reflect"
	"testing"

	"countnet/internal/network"
	"countnet/internal/optnet"
)

// TestKernelExhaustive01 runs all 2^w binary patterns of every
// embedded width through the generated kernel and through the raw
// comparator list, asserting both agree with insertionSortDesc — the
// 0-1 principle then guarantees the kernels sort every input.
func TestKernelExhaustive01(t *testing.T) {
	for w := 5; w <= maxKernelWidth; w++ {
		kern := wideKernel[w]
		if kern == nil {
			t.Fatalf("no kernel for width %d", w)
		}
		net, ok := optnet.For(w)
		if !ok {
			t.Fatalf("no embedded network for width %d", w)
		}
		wires := make([]int32, w)
		for i := range wires {
			wires[i] = int32(i)
		}
		kvals := make([]int64, w)
		rvals := make([]int64, w)
		want := make([]int64, w)
		for pat := 0; pat < 1<<w; pat++ {
			for i := 0; i < w; i++ {
				bit := int64(pat>>i) & 1
				kvals[i], rvals[i], want[i] = bit, bit, bit
			}
			insertionSortDesc(want)
			kern(kvals, wires)
			if !reflect.DeepEqual(kvals, want) {
				t.Fatalf("width %d pattern %#x: kernel %v, insertionSortDesc %v", w, pat, kvals, want)
			}
			for i := 1; i < w; i++ {
				if kvals[i] > kvals[i-1] {
					t.Fatalf("width %d pattern %#x: kernel output %v not descending", w, pat, kvals)
				}
			}
			net.ApplyDesc(rvals)
			if !reflect.DeepEqual(rvals, want) {
				t.Fatalf("width %d pattern %#x: raw comparator list %v, insertionSortDesc %v", w, pat, rvals, want)
			}
		}
	}
}

// TestKernelWireIndirection checks the kernels honor arbitrary wire
// mappings: the gate's values live scattered through a larger wire
// array and only the mapped positions may change.
func TestKernelWireIndirection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const total = 40
	for w := 5; w <= maxKernelWidth; w++ {
		kern := wideKernel[w]
		for trial := 0; trial < 100; trial++ {
			perm := rng.Perm(total)[:w]
			wires := make([]int32, w)
			for i, p := range perm {
				wires[i] = int32(p)
			}
			vals := make([]int64, total)
			for i := range vals {
				vals[i] = rng.Int63n(32) - 16
			}
			before := append([]int64(nil), vals...)
			want := make([]int64, w)
			for i, p := range perm {
				want[i] = before[p]
			}
			insertionSortDesc(want)
			kern(vals, wires)
			onGate := make(map[int]bool, w)
			for i, p := range perm {
				onGate[p] = true
				if vals[p] != want[i] {
					t.Fatalf("width %d trial %d: wire %d has %d, want %d", w, trial, p, vals[p], want[i])
				}
			}
			for i := range vals {
				if !onGate[i] && vals[i] != before[i] {
					t.Fatalf("width %d trial %d: off-gate wire %d changed %d -> %d", w, trial, i, before[i], vals[i])
				}
			}
		}
	}
}

// wideGateNet builds a width-w network holding a few overlapping
// w'-wide gates plus some pairs, exercising the kernel dispatch next
// to the pair fast path within single layers.
func wideGateNet(t testing.TB, width int, gateWidths ...int) *network.Network {
	t.Helper()
	b := network.NewBuilder(width)
	rng := rand.New(rand.NewSource(int64(width)))
	for _, gw := range gateWidths {
		wires := rng.Perm(width)[:gw]
		b.Add(wires, "wide")
		pair := rng.Perm(width)[:2]
		b.Add(pair, "pair")
	}
	return b.Build("widegate", nil)
}

// TestPlanKernelVsInsertionSort differentially runs the generated
// kernels against the insertion-sort reference engine
// (SetWideKernels(false)) and the gate-by-gate evaluator, across all
// three plan execution modes and every kernel width.
func TestPlanKernelVsInsertionSort(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for gw := 5; gw <= maxKernelWidth; gw++ {
		net := wideGateNet(t, gw+4, gw, gw, gw)
		w := net.Width()
		fast := CompilePlan(net)
		slow := CompilePlan(net)
		slow.SetWideKernels(false)
		s1, s2 := fast.NewScratch(), slow.NewScratch()
		for trial := 0; trial < 200; trial++ {
			in := randomBatch(rng, w)
			want := ApplyComparators(net, in)
			got := make([]int64, w)
			fast.Apply(got, in, s1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("gate width %d trial %d: kernel Apply %v, comparators %v", gw, trial, got, want)
			}
			ref := make([]int64, w)
			slow.Apply(ref, in, s2)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("gate width %d trial %d: kernel %v, insertion-sort engine %v", gw, trial, got, ref)
			}
		}

		batches := make([][]int64, 13)
		want := make([][]int64, len(batches))
		for i := range batches {
			batches[i] = randomBatch(rng, w)
			want[i] = ApplyComparators(net, batches[i])
		}
		fast.ApplyBatches(batches, 4)
		for i := range batches {
			if !reflect.DeepEqual(batches[i], want[i]) {
				t.Fatalf("gate width %d batch %d: kernel batches %v, want %v", gw, i, batches[i], want[i])
			}
		}

		pl := fast.NewParallel(3)
		in := randomBatch(rng, w)
		got := make([]int64, w)
		pl.Apply(got, in)
		pl.Close()
		if wantP := ApplyComparators(net, in); !reflect.DeepEqual(got, wantP) {
			t.Fatalf("gate width %d: kernel parallel %v, want %v", gw, got, wantP)
		}
	}
}

// TestPlanKernelAboveCutoff pins the fallback: a gate wider than
// maxKernelWidth takes the insertion-sort path and still matches the
// reference evaluator.
func TestPlanKernelAboveCutoff(t *testing.T) {
	net := wideGateNet(t, maxKernelWidth+3, maxKernelWidth+1, maxKernelWidth+2)
	plan := CompilePlan(net)
	rng := rand.New(rand.NewSource(31))
	s := plan.NewScratch()
	for trial := 0; trial < 100; trial++ {
		in := randomBatch(rng, net.Width())
		want := ApplyComparators(net, in)
		got := make([]int64, net.Width())
		plan.Apply(got, in, s)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: %v, want %v", trial, got, want)
		}
	}
}
