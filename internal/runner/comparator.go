// Package runner executes networks under the three semantics the paper
// uses:
//
//   - Comparator: synchronous sorting. Each gate routes its i-th largest
//     input value to its i-th wire. Applying a width-w sorting network
//     to a batch of w values sorts them.
//   - Quiescent: exact token-count flow. Each wire carries a count of
//     tokens that have traversed it; a width-p balancer that has seen t
//     tokens in total has emitted ceil((t-j)/p) on its j-th wire. This
//     deterministic transfer is exact for any balancing network in a
//     quiescent state and is the workhorse for verifying the step
//     property.
//   - Async (see async.go): real concurrent execution with one goroutine
//     per token stream and atomic per-balancer state, used by the
//     Fetch&Increment counter and the contention experiments.
package runner

import (
	"fmt"

	"countnet/internal/network"
)

// ApplyComparators runs the network under comparator semantics on one
// batch of values, one per wire: in[i] enters on wire i. The returned
// slice is the network's output sequence: element k is the value leaving
// on wire net.OutputOrder[k].
//
// Gates sort descending (largest value to the gate's first wire),
// matching the step-property orientation: a sorted 0/1 batch reads as a
// step sequence on the output order.
func ApplyComparators(net *network.Network, in []int64) []int64 {
	if len(in) != net.Width() {
		panic(fmt.Sprintf("runner: %d inputs for width-%d network", len(in), net.Width()))
	}
	vals := append([]int64(nil), in...)
	buf := make([]int64, net.MaxGateWidth())
	for gi := range net.Gates {
		g := &net.Gates[gi]
		if len(g.Wires) == 2 {
			// Fast path: the overwhelmingly common 2-comparator.
			a, b := g.Wires[0], g.Wires[1]
			if vals[a] < vals[b] {
				vals[a], vals[b] = vals[b], vals[a]
			}
			continue
		}
		t := buf[:len(g.Wires)]
		for i, wire := range g.Wires {
			t[i] = vals[wire]
		}
		insertionSortDesc(t)
		for i, wire := range g.Wires {
			vals[wire] = t[i]
		}
	}
	out := make([]int64, len(vals))
	for k, wire := range net.OutputOrder {
		out[k] = vals[wire]
	}
	return out
}

// ApplyComparatorsFunc is the generic form of ApplyComparators for
// arbitrary element types: less defines the order and gates route the
// greatest element (per less) to their first wire.
func ApplyComparatorsFunc[T any](net *network.Network, in []T, less func(a, b T) bool) []T {
	if len(in) != net.Width() {
		panic(fmt.Sprintf("runner: %d inputs for width-%d network", len(in), net.Width()))
	}
	vals := append([]T(nil), in...)
	buf := make([]T, net.MaxGateWidth())
	for gi := range net.Gates {
		g := &net.Gates[gi]
		w := g.Width()
		t := buf[:w]
		for i, wire := range g.Wires {
			t[i] = vals[wire]
		}
		insertionSortDescFunc(t, less)
		for i, wire := range g.Wires {
			vals[wire] = t[i]
		}
	}
	out := make([]T, len(vals))
	for k, wire := range net.OutputOrder {
		out[k] = vals[wire]
	}
	return out
}

// SortAscending sorts values using the network as a sorting network and
// returns them smallest-first. It panics unless len(values) equals the
// network width. This is a convenience wrapper over ApplyComparators,
// which produces largest-first output per the step convention.
func SortAscending(net *network.Network, values []int64) []int64 {
	out := ApplyComparators(net, values)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
