package runner

// The concurrent paths in this package are explored by the
// internal/sched harness; executions must replay deterministically
// from a recorded schedule (see docs/TESTING.md).
//
//netvet:sched-instrumented

import (
	"fmt"
	"sync"
	"sync/atomic"

	"countnet/internal/network"
	"countnet/internal/obs"
)

// Async is a compiled form of a balancing network for real concurrent
// execution: many goroutines shepherd tokens through the network at
// once, contending on per-balancer state exactly as the distributed
// data structure of the paper intends.
//
// Two balancer implementations are provided. The atomic implementation
// realizes a p-balancer as a single fetch-and-add counter: the i-th
// arriving token leaves on port i mod p, which is precisely the
// balancer specification. The mutex implementation guards a plain
// counter with a sync.Mutex; it exists to measure how lock-based
// balancers behave under contention (the regime studied by the
// shared-memory counting network literature the paper cites).
type Async struct {
	width     int
	entry     []int32 // first gate per wire, -1 if none
	hot       []asyncHot
	gates     []asyncGate
	outPos    []int32 // wire -> position in the output order
	gateLayer []int32 // gate -> 1-based layer, for observability

	// watch is the observability hook, nil unless EnableObs was
	// called. Every hot entry point pays exactly one nil-check for it;
	// the instrumented bodies live in separate functions so the
	// disabled path's code is byte-for-byte the uninstrumented loop
	// (pinned by the obs-off differential and alloc tests and the
	// BenchmarkObsOverhead guard lane).
	watch *obs.NetObs
}

// asyncHot is a gate's contended state, isolated from everything else:
// the atomic count (lock-free mode) and the mutex-guarded seq (lock
// mode) sit at the front of a 128-byte element, so in the hot slice no
// two gates' counters ever share a 64-byte cache line — regardless of
// the slice's base alignment — and a gate's read-only routing data
// (asyncGate) is never invalidated by counter traffic. The previous
// layout padded only *before* the counter inside a 144-byte struct,
// leaving each gate's counter on the same line as its routing slice
// headers. 128 rather than 64 also defeats adjacent-line prefetching
// between neighbouring counters.
//
//netvet:padalign 128
type asyncHot struct {
	count atomic.Int64
	mu    sync.Mutex
	seq   int64 // counter used under mutex traversal
	_     [128 - 24]byte
}

// asyncGate is the gate's immutable routing data, packed separately
// from the contended counters so concurrent readers share these lines
// cleanly.
type asyncGate struct {
	width int64
	mask  int64 // width-1 if width is a power of two, else -1
	shift uint8 // log2(width) when mask >= 0
	wires []int32
	next  []int32 // next gate per port, -1 if the token exits
}

// Compile prepares a network for concurrent traversal.
func Compile(net *network.Network) *Async {
	w := net.Width()
	a := &Async{
		width:     w,
		entry:     make([]int32, w),
		hot:       make([]asyncHot, net.Size()),
		gates:     make([]asyncGate, net.Size()),
		outPos:    make([]int32, w),
		gateLayer: make([]int32, net.Size()),
	}
	for gi := range net.Gates {
		a.gateLayer[gi] = int32(net.Gates[gi].Layer)
	}
	wireGates := net.WireGates()
	for wire := 0; wire < w; wire++ {
		a.entry[wire] = -1
		if len(wireGates[wire]) > 0 {
			a.entry[wire] = int32(wireGates[wire][0])
		}
	}
	for gi := range net.Gates {
		g := &net.Gates[gi]
		ag := &a.gates[gi]
		ag.width = int64(g.Width())
		ag.mask = -1
		if w := ag.width; w&(w-1) == 0 {
			ag.mask = w - 1
			for 1<<ag.shift < w {
				ag.shift++
			}
		}
		ag.wires = make([]int32, g.Width())
		ag.next = make([]int32, g.Width())
		for port, wire := range g.Wires {
			ag.wires[port] = int32(wire)
			ag.next[port] = -1
			lst := wireGates[wire]
			for k, id := range lst {
				if id == gi {
					if k+1 < len(lst) {
						ag.next[port] = int32(lst[k+1])
					}
					break
				}
			}
		}
	}
	for pos, wire := range net.OutputOrder {
		a.outPos[wire] = int32(pos)
	}
	return a
}

// Width returns the network width.
func (a *Async) Width() int { return a.width }

// EnableObs attaches observability state under the given group name
// and returns it; subsequent calls return the existing state. Call
// before the network sees concurrent traffic — the hook is installed
// with a plain store. When enabled, traversals record per-gate token
// counts and latency histograms; when never called, every hot path
// pays one nil-check only.
func (a *Async) EnableObs(name string) *obs.NetObs {
	if a.watch == nil {
		a.watch = obs.NewNetObs(name, a.gateLayer)
	}
	return a.watch
}

// Obs returns the observability state, nil when disabled.
func (a *Async) Obs() *obs.NetObs { return a.watch }

// Traverse pushes one token into the network on the given entry wire
// using atomic fetch-and-add balancers, and returns the output-order
// position on which the token exits. Safe for concurrent use.
//
//netvet:hotpath
func (a *Async) Traverse(entryWire int) int {
	if o := a.watch; o != nil {
		return a.traverseObs(entryWire, o)
	}
	if entryWire < 0 || entryWire >= a.width {
		panic(fmt.Sprintf("runner: entry wire %d outside width %d", entryWire, a.width))
	}
	wire := int32(entryWire)
	gid := a.entry[wire]
	for gid >= 0 {
		g := &a.gates[gid]
		i := a.hot[gid].count.Add(1) - 1
		// Same pow2 fast path as the batch engine (batch.go): the AND
		// replaces a 64-bit DIV on the single hottest instruction of
		// the traversal loop. Counters are non-negative, so mask and
		// modulo agree; TestTraverseMaskVsModulo pins the equality.
		var port int64
		if m := g.mask; m >= 0 {
			port = i & m
		} else {
			port = i % g.width
		}
		wire = g.wires[port]
		gid = g.next[port]
	}
	return int(a.outPos[wire])
}

// traverseObs is Traverse with observability recording: identical
// routing (same balancer accesses in the same order), plus a per-gate
// token count and a latency sample.
//
//netvet:hotpath
func (a *Async) traverseObs(entryWire int, o *obs.NetObs) int {
	if entryWire < 0 || entryWire >= a.width {
		panic(fmt.Sprintf("runner: entry wire %d outside width %d", entryWire, a.width))
	}
	start := obs.Now()
	wire := int32(entryWire)
	gid := a.entry[wire]
	for gid >= 0 {
		g := &a.gates[gid]
		o.GateToken(gid)
		i := a.hot[gid].count.Add(1) - 1
		// Pow2 fast path, matching Traverse exactly.
		var port int64
		if m := g.mask; m >= 0 {
			port = i & m
		} else {
			port = i % g.width
		}
		wire = g.wires[port]
		gid = g.next[port]
	}
	o.TraverseNs.ObserveSince(start)
	return int(a.outPos[wire])
}

// TraverseHooked is Traverse instrumented for controlled scheduling:
// yield is called immediately before every atomic balancer access, so
// a scheduler that serializes its tasks (package sched) fully
// determines the interleaving of balancer operations. It shares the
// atomic balancer state with Traverse; do not mix hooked and unhooked
// traversals within one controlled run.
func (a *Async) TraverseHooked(entryWire int, yield func(op string)) int {
	if entryWire < 0 || entryWire >= a.width {
		panic(fmt.Sprintf("runner: entry wire %d outside width %d", entryWire, a.width))
	}
	o := a.watch
	wire := int32(entryWire)
	gid := a.entry[wire]
	for gid >= 0 {
		g := &a.gates[gid]
		yield(fmt.Sprintf("gate %d", gid))
		if o != nil {
			// Counting only — no clock reads, so an observed
			// controlled run stays deterministic under replay.
			o.GateToken(gid)
		}
		i := a.hot[gid].count.Add(1) - 1
		// Pow2 fast path, matching Traverse exactly — a controlled
		// schedule replays identically whichever path computed the port.
		var port int64
		if m := g.mask; m >= 0 {
			port = i & m
		} else {
			port = i % g.width
		}
		wire = g.wires[port]
		gid = g.next[port]
	}
	return int(a.outPos[wire])
}

// TraverseMutex is Traverse with lock-based balancers. The two modes
// share no state; do not mix them on one Async instance within a run.
// The lock path keeps the plain modulo port computation: it is a
// measurement baseline, not a hot path in the micro-architectural
// sense (the independent arithmetic makes it an oracle for the mask
// fast path in the atomic traversals), but it still must not allocate
// per token, so it carries the same proof annotation.
//
//netvet:hotpath
func (a *Async) TraverseMutex(entryWire int) int {
	if o := a.watch; o != nil {
		return a.traverseMutexObs(entryWire, o)
	}
	if entryWire < 0 || entryWire >= a.width {
		panic(fmt.Sprintf("runner: entry wire %d outside width %d", entryWire, a.width))
	}
	wire := int32(entryWire)
	gid := a.entry[wire]
	for gid >= 0 {
		g := &a.gates[gid]
		h := &a.hot[gid]
		h.mu.Lock()
		i := h.seq
		h.seq++
		h.mu.Unlock()
		port := i % g.width
		wire = g.wires[port]
		gid = g.next[port]
	}
	return int(a.outPos[wire])
}

// traverseMutexObs is TraverseMutex with observability recording. In
// lock mode contention is directly measurable: a TryLock that fails
// means the token found the balancer held, counted per gate before
// falling back to the blocking Lock.
//
//netvet:hotpath
func (a *Async) traverseMutexObs(entryWire int, o *obs.NetObs) int {
	if entryWire < 0 || entryWire >= a.width {
		panic(fmt.Sprintf("runner: entry wire %d outside width %d", entryWire, a.width))
	}
	start := obs.Now()
	wire := int32(entryWire)
	gid := a.entry[wire]
	for gid >= 0 {
		g := &a.gates[gid]
		h := &a.hot[gid]
		o.GateToken(gid)
		if !h.mu.TryLock() {
			o.GateContended(gid)
			h.mu.Lock()
		}
		i := h.seq
		h.seq++
		h.mu.Unlock()
		port := i % g.width
		wire = g.wires[port]
		gid = g.next[port]
	}
	o.TraverseNs.ObserveSince(start)
	return int(a.outPos[wire])
}

// Reset clears all balancer state (both modes), returning the network
// to its initial quiescent configuration.
func (a *Async) Reset() {
	for i := range a.hot {
		a.hot[i].count.Store(0)
		a.hot[i].seq = 0
	}
}

// ExitCounts runs tokensPerWire tokens on every input wire from
// workers concurrent goroutines using atomic balancers, waits for
// quiescence, and returns the per-position exit counts in output order.
// It is the concurrent analogue of ApplyTokens on a uniform input and
// is used by tests to check the step property under real interleaving.
func (a *Async) ExitCounts(tokensPerWire int, workers int) []int64 {
	if workers < 1 {
		workers = 1
	}
	total := tokensPerWire * a.width
	var next atomic.Int64
	counts := make([]atomic.Int64, a.width)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Production-only worker pool; controlled runs drive tokens as
		// harness tasks through TraverseHooked instead.
		//netvet:allow spawn
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(total) {
					return
				}
				pos := a.Traverse(int(k) % a.width)
				counts[pos].Add(1)
			}
		}()
	}
	wg.Wait()
	out := make([]int64, a.width)
	for i := range counts {
		out[i] = counts[i].Load()
	}
	return out
}
