package runner

import (
	"fmt"

	"countnet/internal/obs"
)

// Batched token propagation.
//
// Traverse moves one token per call: one atomic fetch-and-add per gate
// on the token's path. TraverseBatch moves an arbitrary multiset of
// tokens — entryCounts[i] tokens entering on wire i — with one atomic
// fetch-and-add per *touched gate per batch*: a single count.Add(t)
// reserves t consecutive arrival indices at a gate, and the balancer
// specification (index i leaves on port i mod p) fixes exactly how many
// of those t tokens leave on each port. The whole batch is propagated
// as per-wire counts, gate by gate in topological order, exactly as the
// quiescent transfer function runner.ApplyTokens does — but against the
// network's live counters, so batches compose correctly with concurrent
// single-token Traverse calls and with other batches.
//
// Correctness: the network's quiescent output distribution depends only
// on how many tokens passed through each gate, never on arrival
// interleaving (quiescent consistency — Section 6 of the paper). A
// batch's Add(t) hands its t tokens the next t indices of the gate
// atomically, which is one legal serialization of t single-token Adds;
// every index at every gate is still claimed exactly once across all
// concurrent callers, so any mix of batches and single tokens lands on
// the same quiescent state as the serial execution of the same token
// multiset. The differential suite (batch vs ApplyTokens on every
// golden network) and FuzzBatchVsSerial pin this down.

// BatchScratch holds the per-wire propagation state of a batched
// traversal, so hot callers can reuse it allocation-free. Not safe for
// concurrent use; the Async it came from may be shared freely.
type BatchScratch struct {
	cur []int64
}

// NewBatchScratch returns scratch sized for the network.
func (a *Async) NewBatchScratch() *BatchScratch {
	return &BatchScratch{cur: make([]int64, a.width)}
}

// TraverseBatch pushes entryCounts[i] tokens into the network on each
// wire i using one atomic fetch-and-add per touched gate, and returns
// the number of tokens exiting at each output-order position. Safe for
// concurrent use, including mixed with Traverse and other batches.
func (a *Async) TraverseBatch(entryCounts []int64) []int64 {
	return a.TraverseBatchInto(make([]int64, a.width), entryCounts, nil)
}

// TraverseBatchInto is TraverseBatch writing exit counts into dst
// (length Width) and reusing s; it performs zero allocations when s is
// non-nil. A nil s allocates a fresh scratch. Returns dst.
//
//netvet:hotpath
func (a *Async) TraverseBatchInto(dst, entryCounts []int64, s *BatchScratch) []int64 {
	if s == nil {
		//netvet:allow escape -- cold nil-scratch fallback; steady-state callers pass s (pinned by the zero-alloc tests)
		s = a.NewBatchScratch()
	}
	a.batchArgs(dst, entryCounts)
	copy(s.cur, entryCounts)
	if o := a.watch; o != nil {
		var total int64
		for _, t := range entryCounts {
			total += t
		}
		start := obs.Now()
		//netvet:allow escape -- context.Background's zero-size boxing at trace.StartRegion; no runtime allocation (BenchmarkObsOverhead alloc guard)
		r := obs.Region("countnet.batch")
		a.propagate(s.cur, nil, o)
		r.End()
		o.BatchNs.ObserveSince(start)
		o.BatchTokens.Observe(total)
	} else {
		a.propagate(s.cur, nil, nil)
	}
	for wire, pos := range a.outPos {
		dst[pos] = s.cur[wire]
	}
	return dst
}

// TraverseBatchHooked is TraverseBatch instrumented for controlled
// scheduling: yield runs immediately before each touched gate's atomic
// fetch-and-add, so a serializing scheduler (package sched) fully
// determines how batch reservations interleave with concurrent
// single-token traversals. It shares the atomic balancer state with
// Traverse/TraverseBatch; do not mix hooked and unhooked calls within
// one controlled run.
func (a *Async) TraverseBatchHooked(entryCounts []int64, yield func(op string)) []int64 {
	dst := make([]int64, a.width)
	a.batchArgs(dst, entryCounts)
	cur := make([]int64, a.width)
	copy(cur, entryCounts)
	// Counting only under controlled scheduling (see TraverseHooked).
	a.propagate(cur, yield, a.watch)
	for wire, pos := range a.outPos {
		dst[pos] = cur[wire]
	}
	return dst
}

//netvet:hotpath
func (a *Async) batchArgs(dst, entryCounts []int64) {
	if len(entryCounts) != a.width {
		panic(fmt.Sprintf("runner: %d entry counts for width-%d network", len(entryCounts), a.width))
	}
	if len(dst) != a.width {
		panic(fmt.Sprintf("runner: %d-element dst for width-%d network", len(dst), a.width))
	}
	for wire, t := range entryCounts {
		if t < 0 {
			panic(fmt.Sprintf("runner: negative token count %d on wire %d", t, wire))
		}
	}
}

// propagate advances cur (tokens per wire) across every gate in
// topological order. Gate order mirrors ApplyTokens: once a gate is
// processed, every token later placed on its wires can only meet later
// gates, so a single in-order pass moves the whole batch. A non-nil o
// records per-gate token counts (the batch analogue of traverseObs).
//
//netvet:hotpath
func (a *Async) propagate(cur []int64, yield func(op string), o *obs.NetObs) {
	for gi := range a.gates {
		g := &a.gates[gi]
		var t int64
		for _, w := range g.wires {
			t += cur[w]
		}
		if t == 0 {
			continue // untouched gate: no atomic traffic at all
		}
		if yield != nil {
			//netvet:allow hotpath escape -- sched-hooked lane only; production callers pass a nil yield
			yield(fmt.Sprintf("gate %d", gi))
		}
		if o != nil {
			o.GateTokens(gi, t)
		}
		p := g.width
		// Reserve arrival indices i0..i0+t-1 in one fetch-and-add.
		i0 := a.hot[gi].count.Add(t) - t
		// Index i0+j leaves on port (i0+j) mod p, so the port with
		// residue s = (port - i0) mod p receives ceil((t - s) / p)
		// tokens: q per port, plus one for the first r residues.
		var q, r, off int64
		if g.mask >= 0 {
			q, r, off = t>>g.shift, t&g.mask, i0&g.mask
		} else {
			q, r, off = t/p, t%p, i0%p
		}
		for j, w := range g.wires {
			s := int64(j) - off
			if s < 0 {
				s += p
			}
			if s < r {
				cur[w] = q + 1
			} else {
				cur[w] = q
			}
		}
	}
}
