package runner

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"countnet/internal/core"
	"countnet/internal/network"
)

// goldenPlanNetworks loads every pinned construction from the core
// golden files, so the plan compiler is differentially tested against
// the exact gate-level structures the constructions are pinned to.
func goldenPlanNetworks(t testing.TB) map[string]*network.Network {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "core", "testdata", "*.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden networks found")
	}
	nets := make(map[string]*network.Network, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var n network.Network
		if err := json.Unmarshal(data, &n); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		nets[filepath.Base(p)] = &n
	}
	return nets
}

// constructedPlanNetworks builds fresh K/L/R networks so widths beyond
// the goldens are covered too.
func constructedPlanNetworks(t testing.TB) map[string]*network.Network {
	t.Helper()
	nets := make(map[string]*network.Network)
	for _, c := range []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"K(2,3,4)", func() (*network.Network, error) { return core.K(2, 3, 4) }},
		{"K(4,4,4)", func() (*network.Network, error) { return core.K(4, 4, 4) }},
		{"L(2,2,2,2)", func() (*network.Network, error) { return core.L(2, 2, 2, 2) }},
		{"R(4,8)", func() (*network.Network, error) { return core.R(4, 8) }},
	} {
		n, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		nets[c.name] = n
	}
	return nets
}

func allPlanNetworks(t testing.TB) map[string]*network.Network {
	nets := goldenPlanNetworks(t)
	for name, n := range constructedPlanNetworks(t) {
		nets[name] = n
	}
	return nets
}

func randomBatch(rng *rand.Rand, w int) []int64 {
	b := make([]int64, w)
	for i := range b {
		b[i] = rng.Int63n(64) - 32
	}
	return b
}

func TestPlanApplyMatchesComparators(t *testing.T) {
	for name, net := range allPlanNetworks(t) {
		t.Run(name, func(t *testing.T) {
			plan := CompilePlan(net)
			if plan.Width() != net.Width() || plan.NumLayers() != net.Depth() {
				t.Fatalf("plan %d/%d, network %d/%d", plan.Width(), plan.NumLayers(), net.Width(), net.Depth())
			}
			rng := rand.New(rand.NewSource(1))
			s := plan.NewScratch()
			for trial := 0; trial < 50; trial++ {
				in := randomBatch(rng, net.Width())
				want := ApplyComparators(net, in)
				got := make([]int64, len(in))
				plan.Apply(got, in, s)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: plan %v, comparators %v, input %v", trial, got, want, in)
				}
				// Nil scratch allocates its own.
				got2 := make([]int64, len(in))
				plan.Apply(got2, in, nil)
				if !reflect.DeepEqual(got2, want) {
					t.Fatalf("trial %d (nil scratch): plan %v, want %v", trial, got2, want)
				}
				// In-place: dst aliasing src.
				inPlace := append([]int64(nil), in...)
				plan.Apply(inPlace, inPlace, s)
				if !reflect.DeepEqual(inPlace, want) {
					t.Fatalf("trial %d (in place): plan %v, want %v", trial, inPlace, want)
				}
			}
		})
	}
}

func TestPlanApplyBatchesMatchesComparators(t *testing.T) {
	for name, net := range allPlanNetworks(t) {
		t.Run(name, func(t *testing.T) {
			plan := CompilePlan(net)
			rng := rand.New(rand.NewSource(2))
			for _, block := range []int{0, 1, 3, DefaultBatchBlock, 100} {
				batches := make([][]int64, 37)
				want := make([][]int64, len(batches))
				for i := range batches {
					batches[i] = randomBatch(rng, net.Width())
					want[i] = ApplyComparators(net, batches[i])
				}
				plan.ApplyBatches(batches, block)
				for i := range batches {
					if !reflect.DeepEqual(batches[i], want[i]) {
						t.Fatalf("block %d, batch %d: plan %v, want %v", block, i, batches[i], want[i])
					}
				}
			}
		})
	}
}

func TestPlanParallelMatchesComparators(t *testing.T) {
	for name, net := range allPlanNetworks(t) {
		t.Run(name, func(t *testing.T) {
			plan := CompilePlan(net)
			for _, workers := range []int{1, 3, 0} {
				pl := plan.NewParallel(workers)
				rng := rand.New(rand.NewSource(3))
				for trial := 0; trial < 10; trial++ {
					in := randomBatch(rng, net.Width())
					want := ApplyComparators(net, in)
					got := make([]int64, len(in))
					pl.Apply(got, in)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("workers %d trial %d: parallel %v, want %v", workers, trial, got, want)
					}
				}
				pl.Close()
				pl.Close() // idempotent
			}
		})
	}
}

func TestPlanWidthMismatchPanics(t *testing.T) {
	plan := CompilePlan(fuzzNet())
	for _, c := range []struct {
		name string
		f    func()
	}{
		{"apply-src", func() { plan.Apply(make([]int64, 4), make([]int64, 3), nil) }},
		{"apply-dst", func() { plan.Apply(make([]int64, 5), make([]int64, 4), nil) }},
		{"batches", func() { plan.ApplyBatches([][]int64{make([]int64, 2)}, 0) }},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			c.f()
		})
	}
}

func TestParallelApplyAfterClosePanics(t *testing.T) {
	pl := CompilePlan(fuzzNet()).NewParallel(2)
	pl.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	pl.Apply(make([]int64, 4), make([]int64, 4))
}

func TestPlanGatelessNetwork(t *testing.T) {
	b := network.NewBuilder(3)
	net := b.Build("empty", []int{2, 0, 1})
	plan := CompilePlan(net)
	in := []int64{10, 20, 30}
	got := make([]int64, 3)
	plan.Apply(got, in, nil)
	if want := []int64{30, 10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("gateless plan = %v, want %v", got, want)
	}
}

func TestPlanApplyAllocationFree(t *testing.T) {
	net, err := core.K(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := CompilePlan(net)
	s := plan.NewScratch()
	in := randomBatch(rand.New(rand.NewSource(4)), net.Width())
	dst := make([]int64, net.Width())
	if n := testing.AllocsPerRun(100, func() { plan.Apply(dst, in, s) }); n != 0 {
		t.Errorf("Plan.Apply allocates %v times per run, want 0", n)
	}
	sorter := NewPlanSorter(plan)
	if n := testing.AllocsPerRun(100, func() { sorter.Sort(in) }); n != 0 {
		t.Errorf("Sorter.Sort allocates %v times per run, want 0", n)
	}
}

// randomPlanNetwork derives an arbitrary (not necessarily sorting)
// network and batch from fuzz input: the engines must agree on any
// topology, sorted output or not.
func randomPlanNetwork(seed int64, width, gates int) (*network.Network, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	b := network.NewBuilder(width)
	perm := rng.Perm(width)
	for g := 0; g < gates; g++ {
		gw := 2 + rng.Intn(width-1)
		wires := rng.Perm(width)[:gw]
		b.Add(wires, "fuzz")
	}
	var out []int
	if rng.Intn(2) == 0 {
		out = perm
	}
	return b.Build("fuzz", out), rng
}

// FuzzPlanVsComparators cross-checks every plan execution mode against
// the reference gate-by-gate evaluator on arbitrary networks and
// inputs.
func FuzzPlanVsComparators(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(6))
	f.Add(int64(2), uint8(2), uint8(1))
	f.Add(int64(3), uint8(13), uint8(40))
	f.Add(int64(99), uint8(31), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, width, gates uint8) {
		w := 2 + int(width)%30
		net, rng := randomPlanNetwork(seed, w, int(gates))
		plan := CompilePlan(net)
		in := randomBatch(rng, w)
		want := ApplyComparators(net, in)

		got := make([]int64, w)
		plan.Apply(got, in, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Apply %v, comparators %v (net %v)", got, want, net)
		}

		batch := [][]int64{append([]int64(nil), in...), randomBatch(rng, w), append([]int64(nil), in...)}
		wantB := make([][]int64, len(batch))
		for i := range batch {
			wantB[i] = ApplyComparators(net, batch[i])
		}
		plan.ApplyBatches(batch, 2)
		for i := range batch {
			if !reflect.DeepEqual(batch[i], wantB[i]) {
				t.Fatalf("ApplyBatches[%d] %v, want %v", i, batch[i], wantB[i])
			}
		}

		pl := plan.NewParallel(2)
		defer pl.Close()
		pl.Apply(got, in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Parallel.Apply %v, want %v", got, want)
		}
	})
}
