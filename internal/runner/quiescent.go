package runner

import (
	"fmt"

	"countnet/internal/network"
)

// ApplyTokens runs the network under quiescent balancer semantics.
// in[i] is the number of tokens entering on wire i. The result is the
// network's output sequence of token counts: element k is the number of
// tokens leaving on wire net.OutputOrder[k].
//
// The transfer function at a width-p balancer with input counts summing
// to t is exact for any quiescent execution: output j carries
// ceil((t-j)/p) tokens, because the i-th token to enter leaves on wire
// i mod p regardless of arrival interleaving.
func ApplyTokens(net *network.Network, in []int64) []int64 {
	if len(in) != net.Width() {
		panic(fmt.Sprintf("runner: %d token counts for width-%d network", len(in), net.Width()))
	}
	counts := append([]int64(nil), in...)
	for gi := range net.Gates {
		g := &net.Gates[gi]
		p := int64(g.Width())
		var t int64
		for _, wire := range g.Wires {
			if counts[wire] < 0 {
				panic(fmt.Sprintf("runner: negative token count on wire %d", wire))
			}
			t += counts[wire]
		}
		q, r := t/p, t%p
		for j, wire := range g.Wires {
			counts[wire] = q
			if int64(j) < r {
				counts[wire]++
			}
		}
	}
	out := make([]int64, len(counts))
	for k, wire := range net.OutputOrder {
		out[k] = counts[wire]
	}
	return out
}

// Stepper is a reusable, allocation-free version of ApplyTokens for
// hot verification loops. Not safe for concurrent use.
type Stepper struct {
	net    *network.Network
	counts []int64
	out    []int64
}

// NewStepper prepares a Stepper for the network.
func NewStepper(net *network.Network) *Stepper {
	return &Stepper{
		net:    net,
		counts: make([]int64, net.Width()),
		out:    make([]int64, net.Width()),
	}
}

// Step computes the quiescent output distribution for the given input
// token counts. The returned slice is reused by the next call.
func (s *Stepper) Step(in []int64) []int64 {
	if len(in) != s.net.Width() {
		panic(fmt.Sprintf("runner: %d token counts for width-%d network", len(in), s.net.Width()))
	}
	copy(s.counts, in)
	counts := s.counts
	for gi := range s.net.Gates {
		g := &s.net.Gates[gi]
		p := int64(g.Width())
		var t int64
		for _, wire := range g.Wires {
			t += counts[wire]
		}
		q, r := t/p, t%p
		for j, wire := range g.Wires {
			counts[wire] = q
			if int64(j) < r {
				counts[wire]++
			}
		}
	}
	for k, wire := range s.net.OutputOrder {
		s.out[k] = counts[wire]
	}
	return s.out
}

// ApplyTokensSerial simulates a balancing network one token at a time:
// tokens[k] is the entry wire of the k-th token to enter the network
// (tokens on distinct wires may be injected in any order in a real
// execution; serial order is one legal schedule). It returns per-wire
// exit counts in output order, plus the exit wire position (index into
// the output order) of each token in injection order.
//
// This engine exists to cross-check ApplyTokens — the per-wire exit
// counts must agree — and to let tests observe individual token paths.
func ApplyTokensSerial(net *network.Network, tokens []int) (counts []int64, exits []int) {
	w := net.Width()
	// Precomputed routing: first gate per wire, successor gate per
	// (gate, port), and each wire's output-order position. One pass over
	// the wire/gate incidence replaces the per-token linear scans the
	// walk used to do (a gate-position search per hop and an O(w)
	// OutputOrder search per exit), which made large networks quadratic.
	entry := make([]int, w)
	for wire := range entry {
		entry[wire] = -1
	}
	succ := make([][]int, net.Size()) // next gate per port, -1 if the token exits
	for gi := range net.Gates {
		s := make([]int, net.Gates[gi].Width())
		for j := range s {
			s[j] = -1
		}
		succ[gi] = s
	}
	for wire, lst := range net.WireGates() {
		prev := -1 // previous gate on this wire, with prevPort its port
		prevPort := 0
		for _, gid := range lst {
			port := portOf(&net.Gates[gid], wire)
			if prev < 0 {
				entry[wire] = gid
			} else {
				succ[prev][prevPort] = gid
			}
			prev, prevPort = gid, port
		}
	}
	outPos := make([]int, w)
	for pos, wire := range net.OutputOrder {
		outPos[wire] = pos
	}

	state := make([]int, net.Size()) // tokens seen per gate
	wireCounts := make([]int64, w)
	exits = make([]int, len(tokens))
	for k, wire := range tokens {
		if wire < 0 || wire >= w {
			panic(fmt.Sprintf("runner: token enters on wire %d outside width %d", wire, w))
		}
		gid := entry[wire]
		for gid >= 0 {
			g := &net.Gates[gid]
			i := state[gid]
			state[gid]++
			port := i % g.Width()
			wire = g.Wires[port]
			gid = succ[gid][port]
		}
		wireCounts[wire]++
		exits[k] = outPos[wire]
	}
	counts = make([]int64, w)
	for pos, wire := range net.OutputOrder {
		counts[pos] = wireCounts[wire]
	}
	return counts, exits
}

// portOf returns the port index of wire within the gate.
func portOf(g *network.Gate, wire int) int {
	for j, gw := range g.Wires {
		if gw == wire {
			return j
		}
	}
	panic("runner: gate not on wire")
}
