package runner

import (
	"fmt"
	"sync"
	"sync/atomic"

	"countnet/internal/network"
)

// Sorter is a reusable comparator-semantics executor with a compiled
// plan and preallocated scratch, for hot loops where ApplyComparators'
// per-call allocation matters. Not safe for concurrent use; create one
// per goroutine (they can share one Plan via NewPlanSorter).
type Sorter struct {
	plan *Plan
	s    *Scratch
	out  []int64
}

// NewSorter compiles the network and prepares a Sorter for it.
func NewSorter(net *network.Network) *Sorter {
	return NewPlanSorter(CompilePlan(net))
}

// NewPlanSorter prepares a Sorter over an already-compiled plan,
// sharing the immutable plan across goroutines.
func NewPlanSorter(plan *Plan) *Sorter {
	return &Sorter{plan: plan, s: plan.NewScratch(), out: make([]int64, plan.Width())}
}

// Sort sorts one batch into the internal buffer and returns it in
// network output order (descending). The returned slice is reused by
// the next call; copy it if you keep it. Sort performs no allocation.
func (s *Sorter) Sort(in []int64) []int64 {
	s.plan.Apply(s.out, in, s.s)
	return s.out
}

func insertionSortDesc(t []int64) {
	for i := 1; i < len(t); i++ {
		v := t[i]
		j := i - 1
		for j >= 0 && t[j] < v {
			t[j+1] = t[j]
			j--
		}
		t[j+1] = v
	}
}

// insertionSortDescFunc sorts t descending by less, stably: among
// elements neither of which is less than the other, input order is
// kept. Gate widths are bounded by MaxGateWidth, where insertion sort
// beats the allocation and indirection of the sort package.
func insertionSortDescFunc[T any](t []T, less func(a, b T) bool) {
	for i := 1; i < len(t); i++ {
		v := t[i]
		j := i - 1
		for j >= 0 && less(t[j], v) {
			t[j+1] = t[j]
			j--
		}
		t[j+1] = v
	}
}

// Pipeline executes a stream of batches through the network with one
// goroutine per layer — the deployment mode sorting networks are
// designed for: batch k can be in layer 3 while batch k+1 is in layer
// 2. Throughput approaches one batch per layer-latency instead of one
// batch per network-latency.
type Pipeline struct {
	net    *network.Network
	stages []chan []int64
	out    chan []int64
	wg     sync.WaitGroup
}

// NewPipeline starts the layer goroutines. Close the pipeline with
// Close after the last Submit; results arrive on Results in submission
// order.
func NewPipeline(net *network.Network, buffer int) *Pipeline {
	layers := net.Layers()
	p := &Pipeline{net: net}
	p.stages = make([]chan []int64, len(layers)+1)
	for i := range p.stages {
		p.stages[i] = make(chan []int64, buffer)
	}
	p.out = p.stages[len(layers)]
	for li, ids := range layers {
		li, ids := li, ids
		p.wg.Add(1)
		// Production-only stage goroutine; the sched harness explores the
		// pipeline through the hooked token paths, not these workers.
		//netvet:allow spawn
		go func() {
			defer p.wg.Done()
			defer close(p.stages[li+1])
			buf := make([]int64, net.MaxGateWidth())
			for vals := range p.stages[li] {
				for _, id := range ids {
					g := &net.Gates[id]
					t := buf[:g.Width()]
					for i, wire := range g.Wires {
						t[i] = vals[wire]
					}
					insertionSortDesc(t)
					for i, wire := range g.Wires {
						vals[wire] = t[i]
					}
				}
				p.stages[li+1] <- vals
			}
		}()
	}
	return p
}

// Submit feeds one batch (length Width) into the pipeline. The slice is
// owned by the pipeline until it reappears on Results (rearranged to
// output order). Submit blocks when the pipeline is full.
func (p *Pipeline) Submit(batch []int64) {
	if len(batch) != p.net.Width() {
		panic(fmt.Sprintf("runner: %d inputs for width-%d network", len(batch), p.net.Width()))
	}
	p.stages[0] <- batch
}

// Results returns the channel of completed batches, in submission
// order. Batches stay in wire order (zero-copy); when the network's
// OutputOrder is not the identity, index batch[OutputOrder[k]] for the
// k-th ranked value.
func (p *Pipeline) Results() <-chan []int64 { return p.out }

// Close signals the end of input; Results closes after the last batch
// drains.
func (p *Pipeline) Close() {
	close(p.stages[0])
}

// Wait blocks until all stages exit (call after Close and draining
// Results).
func (p *Pipeline) Wait() { p.wg.Wait() }

// OutputOrder exposes the network's output ordering so consumers can
// interpret Results batches (which stay in wire order for zero-copy).
func (p *Pipeline) OutputOrder() []int { return p.net.OutputOrder }

// SortBatches sorts every batch through the network using `workers`
// data-parallel goroutines over one shared compiled plan, each worker
// with private scratch. Batches are replaced in place with their sorted
// contents in network output order (descending). It complements
// Pipeline: data parallelism across batches rather than pipeline
// parallelism across layers.
func SortBatches(net *network.Network, batches [][]int64, workers int) {
	CompilePlan(net).SortBatches(batches, workers)
}

// SortBatches is the plan-level SortBatches: callers holding a compiled
// plan skip recompilation.
func (plan *Plan) SortBatches(batches [][]int64, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers == 0 {
		return
	}
	if workers == 1 {
		plan.ApplyBatches(batches, 0)
		return
	}
	// Hand out contiguous blocks so each worker streams its share
	// through the cache-blocked path.
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		// Production-only worker pool (see NewParallel); not a replayed path.
		//netvet:allow spawn
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)-1) * DefaultBatchBlock
				if k >= len(batches) {
					return
				}
				hi := k + DefaultBatchBlock
				if hi > len(batches) {
					hi = len(batches)
				}
				plan.ApplyBatches(batches[k:hi], 0)
			}
		}()
	}
	wg.Wait()
}
