// Package seq implements the sequence machinery of Section 3.1 of
// Busch & Herlihy, "Sorting and Counting Networks of Small Depth and
// Arbitrary Width" (SPAA 1999): the step property, k-smoothness, the
// bitonic property, the k-staircase property, step points, and the four
// matrix arrangements (row major, reverse row major, column major,
// reverse column major) used throughout the constructions.
//
// Sequences are slices of int64 token counts (or values). The paper's
// convention, which this whole repository follows, is that excess tokens
// appear on lower-indexed wires: a step sequence is non-increasing and
// its elements differ by at most one.
package seq

import (
	"fmt"
	"strings"
)

// Sum returns the sum of the elements of x.
func Sum(x []int64) int64 {
	var s int64
	for _, v := range x {
		s += v
	}
	return s
}

// IsStep reports whether x has the step property: for any i < j,
// 0 <= x[i] - x[j] <= 1. Empty and single-element sequences trivially
// have the step property.
func IsStep(x []int64) bool {
	for i := 1; i < len(x); i++ {
		d := x[i-1] - x[i]
		if d < 0 || d > 1 {
			return false
		}
	}
	if len(x) > 1 {
		d := x[0] - x[len(x)-1]
		if d < 0 || d > 1 {
			return false
		}
	}
	return true
}

// StepPoint returns the step point of a step sequence x: the unique index
// i such that x[i] > x[i+1] — i.e. the boundary after which the lower
// value begins — or 0 if all elements are equal. It panics if x does not
// have the step property.
//
// Note the paper defines the step point as the unique i with
// x[i] < x[i+1] reading the transition; under our "excess on lower
// wires" orientation the transition is a decrease.
func StepPoint(x []int64) int {
	if !IsStep(x) {
		panic("seq: StepPoint on non-step sequence")
	}
	for i := 1; i < len(x); i++ {
		if x[i-1] > x[i] {
			return i - 1
		}
	}
	return 0
}

// MakeStep returns the unique step sequence of length w whose elements
// sum to total: element i receives ceil((total-i)/w) tokens.
func MakeStep(w int, total int64) []int64 {
	if w <= 0 {
		return nil
	}
	out := make([]int64, w)
	q, r := total/int64(w), total%int64(w)
	if r < 0 { // not meaningful for token counts, but keep it total-preserving
		q--
		r += int64(w)
	}
	for i := range out {
		out[i] = q
		if int64(i) < r {
			out[i]++
		}
	}
	return out
}

// IsSmooth reports whether x is k-smooth: |x[i] - x[j]| <= k for all i, j.
func IsSmooth(x []int64, k int64) bool {
	if len(x) == 0 {
		return true
	}
	mn, mx := x[0], x[0]
	for _, v := range x[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mx-mn <= k
}

// Transitions returns the number of positions i with x[i] != x[i+1].
func Transitions(x []int64) int {
	t := 0
	for i := 1; i < len(x); i++ {
		if x[i] != x[i-1] {
			t++
		}
	}
	return t
}

// IsBitonic reports whether x has the bitonic property of the paper:
// x is 1-smooth and has at most two transitions.
func IsBitonic(x []int64) bool {
	return IsSmooth(x, 1) && Transitions(x) <= 2
}

// IsStaircase reports whether the sequences xs satisfy the k-staircase
// property: 0 <= Sum(xs[i]) - Sum(xs[j]) <= k for all i < j.
func IsStaircase(xs [][]int64, k int64) bool {
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			d := Sum(xs[i]) - Sum(xs[j])
			if d < 0 || d > k {
				return false
			}
		}
	}
	return true
}

// Arrangement identifies one of the four ways Section 3.1 lays a
// sequence of length r*c out as an r x c matrix.
type Arrangement int

const (
	// RowMajor places x[i] at row i/c, column i%c.
	RowMajor Arrangement = iota
	// ReverseRowMajor places x[i] at row r-1-i/c, column c-1-i%c.
	ReverseRowMajor
	// ColMajor places x[i] at row i%r, column i/r.
	ColMajor
	// ReverseColMajor places x[i] at row r-1-i%r, column c-1-i/r.
	ReverseColMajor
)

// String returns the paper's name for the arrangement.
func (a Arrangement) String() string {
	switch a {
	case RowMajor:
		return "row major"
	case ReverseRowMajor:
		return "reverse row major"
	case ColMajor:
		return "column major"
	case ReverseColMajor:
		return "reverse column major"
	}
	return fmt.Sprintf("Arrangement(%d)", int(a))
}

// Position returns the (row, col) cell that element i of a sequence of
// length r*c occupies under arrangement a.
func (a Arrangement) Position(i, r, c int) (row, col int) {
	switch a {
	case RowMajor:
		return i / c, i % c
	case ReverseRowMajor:
		return r - i/c - 1, c - i%c - 1
	case ColMajor:
		return i % r, i / r
	case ReverseColMajor:
		return r - i%r - 1, c - i/r - 1
	default:
		panic("seq: unknown arrangement")
	}
}

// Index is the inverse of Position: the sequence index of cell (row, col)
// in an r x c matrix under arrangement a.
func (a Arrangement) Index(row, col, r, c int) int {
	switch a {
	case RowMajor:
		return row*c + col
	case ReverseRowMajor:
		return (r-row-1)*c + (c - col - 1)
	case ColMajor:
		return col*r + row
	case ReverseColMajor:
		return (c-col-1)*r + (r - row - 1)
	default:
		panic("seq: unknown arrangement")
	}
}

// Matrix is a rectangular view over a sequence of elements of type T
// (typically wire identifiers or token counts) under an Arrangement.
// It does not copy: cell access maps to sequence indices.
type Matrix[T any] struct {
	Seq  []T
	Rows int
	Cols int
	Arr  Arrangement
}

// NewMatrix arranges x as an r x c matrix under arrangement a.
// It panics if len(x) != r*c.
func NewMatrix[T any](x []T, r, c int, a Arrangement) Matrix[T] {
	if len(x) != r*c {
		panic(fmt.Sprintf("seq: matrix %dx%d over sequence of length %d", r, c, len(x)))
	}
	return Matrix[T]{Seq: x, Rows: r, Cols: c, Arr: a}
}

// At returns the element at (row, col).
func (m Matrix[T]) At(row, col int) T {
	return m.Seq[m.Arr.Index(row, col, m.Rows, m.Cols)]
}

// Set stores v at (row, col).
func (m Matrix[T]) Set(row, col int, v T) {
	m.Seq[m.Arr.Index(row, col, m.Rows, m.Cols)] = v
}

// Row returns a fresh slice holding row i in column order.
func (m Matrix[T]) Row(i int) []T {
	out := make([]T, m.Cols)
	for c := 0; c < m.Cols; c++ {
		out[c] = m.At(i, c)
	}
	return out
}

// Col returns a fresh slice holding column j in row order.
func (m Matrix[T]) Col(j int) []T {
	out := make([]T, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, j)
	}
	return out
}

// Flatten reads the matrix out under arrangement a into a fresh slice:
// element i of the result is the cell that index i maps to under a.
func (m Matrix[T]) Flatten(a Arrangement) []T {
	out := make([]T, m.Rows*m.Cols)
	for i := range out {
		r, c := a.Position(i, m.Rows, m.Cols)
		out[i] = m.At(r, c)
	}
	return out
}

// RenderArrangement draws a 1-smooth sequence laid out as an r x c
// matrix under arrangement a, in the style of the paper's Figure 5:
// '#' marks the high value, '.' the low. Useful for eyeballing how the
// four arrangements place a step sequence's boundary.
func RenderArrangement(x []int64, r, c int, a Arrangement) string {
	if len(x) != r*c {
		panic(fmt.Sprintf("seq: render %dx%d over sequence of length %d", r, c, len(x)))
	}
	var hi int64
	for _, v := range x {
		if v > hi {
			hi = v
		}
	}
	m := NewMatrix(x, r, c, a)
	var sb strings.Builder
	for row := 0; row < r; row++ {
		for col := 0; col < c; col++ {
			if m.At(row, col) == hi {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Stride returns the subsequence X[i, k] of the paper: elements
// x[i], x[i+k], x[i+2k], ... It panics if k <= 0 or i < 0.
func Stride[T any](x []T, i, k int) []T {
	if k <= 0 || i < 0 {
		panic("seq: invalid stride")
	}
	var out []T
	for j := i; j < len(x); j += k {
		out = append(out, x[j])
	}
	return out
}

// Split cuts x into contiguous blocks of size block. It panics if
// len(x) is not a multiple of block.
func Split[T any](x []T, block int) [][]T {
	if block <= 0 || len(x)%block != 0 {
		panic(fmt.Sprintf("seq: cannot split length %d into blocks of %d", len(x), block))
	}
	out := make([][]T, 0, len(x)/block)
	for i := 0; i < len(x); i += block {
		out = append(out, x[i:i+block])
	}
	return out
}

// Concat concatenates the given slices into a fresh slice.
func Concat[T any](xs ...[]T) []T {
	n := 0
	for _, x := range xs {
		n += len(x)
	}
	out := make([]T, 0, n)
	for _, x := range xs {
		out = append(out, x...)
	}
	return out
}
