package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{nil, 0},
		{[]int64{}, 0},
		{[]int64{5}, 5},
		{[]int64{1, 2, 3}, 6},
		{[]int64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Sum(c.in); got != c.want {
			t.Errorf("Sum(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsStep(t *testing.T) {
	cases := []struct {
		in   []int64
		want bool
	}{
		{nil, true},
		{[]int64{7}, true},
		{[]int64{3, 3, 3}, true},
		{[]int64{4, 3, 3}, true},
		{[]int64{4, 4, 3}, true},
		{[]int64{3, 4}, false},    // increasing
		{[]int64{5, 3}, false},    // drop of 2
		{[]int64{4, 3, 4}, false}, // rises again
		{[]int64{4, 4, 3, 3}, true},
		{[]int64{4, 3, 3, 2}, false}, // total drop 2
	}
	for _, c := range cases {
		if got := IsStep(c.in); got != c.want {
			t.Errorf("IsStep(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMakeStepIsStepAndSums(t *testing.T) {
	for w := 1; w <= 9; w++ {
		for total := int64(0); total <= int64(4*w); total++ {
			s := MakeStep(w, total)
			if len(s) != w {
				t.Fatalf("MakeStep(%d,%d) has length %d", w, total, len(s))
			}
			if !IsStep(s) {
				t.Errorf("MakeStep(%d,%d) = %v not step", w, total, s)
			}
			if Sum(s) != total {
				t.Errorf("MakeStep(%d,%d) sums to %d", w, total, Sum(s))
			}
		}
	}
}

func TestMakeStepUnique(t *testing.T) {
	// The step sequence of a given length and sum is unique: verify by
	// enumerating all step sequences of width 4 with values in [0,3].
	seen := map[int64][]int64{}
	var rec func(prefix []int64)
	rec = func(prefix []int64) {
		if len(prefix) == 4 {
			if IsStep(prefix) {
				total := Sum(prefix)
				if prev, ok := seen[total]; ok && !reflect.DeepEqual(prev, prefix) {
					t.Fatalf("two step sequences with sum %d: %v and %v", total, prev, prefix)
				}
				seen[total] = append([]int64(nil), prefix...)
				if got := MakeStep(4, total); !reflect.DeepEqual(got, seen[total]) {
					t.Fatalf("MakeStep(4,%d) = %v, enumerated %v", total, got, seen[total])
				}
			}
			return
		}
		for v := int64(0); v <= 3; v++ {
			rec(append(prefix, v))
		}
	}
	rec(nil)
	if len(seen) == 0 {
		t.Fatal("enumeration found no step sequences")
	}
}

func TestStepPoint(t *testing.T) {
	cases := []struct {
		in   []int64
		want int
	}{
		{[]int64{2, 2, 2}, 0},
		{[]int64{3, 2, 2}, 0},
		{[]int64{3, 3, 2}, 1},
		{[]int64{3, 3, 3, 2}, 2},
		{[]int64{9}, 0},
	}
	for _, c := range cases {
		if got := StepPoint(c.in); got != c.want {
			t.Errorf("StepPoint(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStepPointPanicsOnNonStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StepPoint([]int64{1, 2})
}

func TestIsSmooth(t *testing.T) {
	cases := []struct {
		in   []int64
		k    int64
		want bool
	}{
		{nil, 0, true},
		{[]int64{5}, 0, true},
		{[]int64{5, 5}, 0, true},
		{[]int64{5, 6}, 0, false},
		{[]int64{5, 6}, 1, true},
		{[]int64{5, 7, 6}, 1, false},
		{[]int64{5, 7, 6}, 2, true},
	}
	for _, c := range cases {
		if got := IsSmooth(c.in, c.k); got != c.want {
			t.Errorf("IsSmooth(%v,%d) = %v, want %v", c.in, c.k, got, c.want)
		}
	}
}

func TestStepImpliesOneSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s := MakeStep(1+rng.Intn(12), int64(rng.Intn(100)))
		if !IsSmooth(s, 1) {
			t.Fatalf("step sequence %v not 1-smooth", s)
		}
	}
}

func TestTransitionsAndBitonic(t *testing.T) {
	cases := []struct {
		in      []int64
		trans   int
		bitonic bool
	}{
		{nil, 0, true},
		{[]int64{1, 1, 1}, 0, true},
		{[]int64{1, 0, 0}, 1, true},
		{[]int64{0, 1, 0}, 2, true},
		{[]int64{1, 0, 1}, 2, true},
		{[]int64{1, 0, 1, 0}, 3, false},
		{[]int64{2, 0, 2}, 2, false}, // not 1-smooth
	}
	for _, c := range cases {
		if got := Transitions(c.in); got != c.trans {
			t.Errorf("Transitions(%v) = %d, want %d", c.in, got, c.trans)
		}
		if got := IsBitonic(c.in); got != c.bitonic {
			t.Errorf("IsBitonic(%v) = %v, want %v", c.in, got, c.bitonic)
		}
	}
}

func TestIsStaircase(t *testing.T) {
	xs := [][]int64{{3, 3}, {3, 2}, {2, 2}}
	if !IsStaircase(xs, 2) {
		t.Error("sums 6,5,4 should satisfy 2-staircase")
	}
	if IsStaircase(xs, 1) {
		t.Error("sums 6,5,4 should fail 1-staircase")
	}
	if IsStaircase([][]int64{{1}, {2}}, 5) {
		t.Error("increasing sums must fail the staircase property")
	}
	if !IsStaircase(nil, 0) {
		t.Error("no sequences is trivially a staircase")
	}
}

func TestArrangementRoundTrip(t *testing.T) {
	arrs := []Arrangement{RowMajor, ReverseRowMajor, ColMajor, ReverseColMajor}
	for _, a := range arrs {
		for r := 1; r <= 5; r++ {
			for c := 1; c <= 5; c++ {
				seen := make(map[[2]int]bool)
				for i := 0; i < r*c; i++ {
					row, col := a.Position(i, r, c)
					if row < 0 || row >= r || col < 0 || col >= c {
						t.Fatalf("%v.Position(%d,%d,%d) = (%d,%d) out of range", a, i, r, c, row, col)
					}
					if seen[[2]int{row, col}] {
						t.Fatalf("%v maps two indices to (%d,%d) in %dx%d", a, row, col, r, c)
					}
					seen[[2]int{row, col}] = true
					if back := a.Index(row, col, r, c); back != i {
						t.Fatalf("%v.Index(%d,%d,%d,%d) = %d, want %d", a, row, col, r, c, back, i)
					}
				}
			}
		}
	}
}

func TestArrangementPaperTable(t *testing.T) {
	// The Section 3.1 table, spot-checked for a 2x3 matrix (r=2, c=3).
	r, c := 2, 3
	check := func(a Arrangement, i, wantRow, wantCol int) {
		t.Helper()
		row, col := a.Position(i, r, c)
		if row != wantRow || col != wantCol {
			t.Errorf("%v: element %d at (%d,%d), want (%d,%d)", a, i, row, col, wantRow, wantCol)
		}
	}
	check(RowMajor, 0, 0, 0)
	check(RowMajor, 4, 1, 1)
	check(ReverseRowMajor, 0, 1, 2)
	check(ReverseRowMajor, 5, 0, 0)
	check(ColMajor, 0, 0, 0)
	check(ColMajor, 3, 1, 1)
	check(ReverseColMajor, 0, 1, 2)
	check(ReverseColMajor, 5, 0, 0)
}

func TestArrangementString(t *testing.T) {
	if RowMajor.String() != "row major" || ReverseColMajor.String() != "reverse column major" {
		t.Error("unexpected arrangement names")
	}
	if Arrangement(42).String() == "" {
		t.Error("unknown arrangement should still render")
	}
}

func TestMatrixAccess(t *testing.T) {
	x := []int{0, 1, 2, 3, 4, 5}
	m := NewMatrix(x, 2, 3, RowMajor)
	if m.At(0, 2) != 2 || m.At(1, 0) != 3 {
		t.Errorf("row-major At wrong: %d %d", m.At(0, 2), m.At(1, 0))
	}
	m.Set(1, 1, 42)
	if x[4] != 42 {
		t.Error("Set did not write through to the sequence")
	}
	if got := m.Row(0); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Row(0) = %v", got)
	}
	if got := m.Col(1); !reflect.DeepEqual(got, []int{1, 42}) {
		t.Errorf("Col(1) = %v", got)
	}
	cm := NewMatrix(x, 2, 3, ColMajor)
	if cm.At(1, 2) != 5 {
		t.Errorf("col-major At(1,2) = %d, want 5", cm.At(1, 2))
	}
}

func TestMatrixFlattenInverse(t *testing.T) {
	// Flattening under the same arrangement recovers the sequence.
	x := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	for _, a := range []Arrangement{RowMajor, ReverseRowMajor, ColMajor, ReverseColMajor} {
		m := NewMatrix(x, 3, 4, a)
		if got := m.Flatten(a); !reflect.DeepEqual(got, x) {
			t.Errorf("%v: Flatten not inverse: %v", a, got)
		}
	}
}

func TestMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix([]int{1, 2, 3}, 2, 2, RowMajor)
}

func TestStride(t *testing.T) {
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got := Stride(x, 1, 3); !reflect.DeepEqual(got, []int{1, 4, 7}) {
		t.Errorf("Stride = %v", got)
	}
	if got := Stride(x, 0, 1); !reflect.DeepEqual(got, x) {
		t.Errorf("Stride identity = %v", got)
	}
	if got := Stride(x, 9, 2); got != nil {
		t.Errorf("out-of-range start should be empty, got %v", got)
	}
}

func TestStridePartition(t *testing.T) {
	// The strides X[0,k] .. X[k-1,k] partition X.
	x := make([]int, 24)
	for i := range x {
		x[i] = i
	}
	for k := 1; k <= 6; k++ {
		if 24%k != 0 {
			continue
		}
		seen := make([]bool, 24)
		for i := 0; i < k; i++ {
			for _, v := range Stride(x, i, k) {
				if seen[v] {
					t.Fatalf("k=%d: element %d in two strides", k, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: element %d in no stride", k, v)
			}
		}
	}
}

func TestStrideOfStepIsStep(t *testing.T) {
	// Quick property: any stride of a step sequence is a step sequence.
	cfg := &quick.Config{MaxCount: 300}
	f := func(wRaw, totalRaw, kRaw uint8) bool {
		w := int(wRaw%20) + 1
		total := int64(totalRaw)
		k := int(kRaw%5) + 1
		s := MakeStep(w, total)
		for i := 0; i < k; i++ {
			if !IsStep(Stride(s, i, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSplitAndConcat(t *testing.T) {
	x := []int{1, 2, 3, 4, 5, 6}
	parts := Split(x, 2)
	if len(parts) != 3 || !reflect.DeepEqual(parts[1], []int{3, 4}) {
		t.Errorf("Split = %v", parts)
	}
	if got := Concat(parts...); !reflect.DeepEqual(got, x) {
		t.Errorf("Concat(Split) = %v", got)
	}
	if got := Concat[int](); len(got) != 0 {
		t.Errorf("empty Concat = %v", got)
	}
}

func TestRenderArrangement(t *testing.T) {
	// A step sequence of sum 5 over 6 elements: 1 1 1 1 1 0.
	x := MakeStep(6, 5)
	got := RenderArrangement(x, 2, 3, RowMajor)
	if got != "###\n##.\n" {
		t.Errorf("row major:\n%s", got)
	}
	got = RenderArrangement(x, 2, 3, ColMajor)
	if got != "###\n##.\n" {
		t.Errorf("column major:\n%s", got)
	}
	got = RenderArrangement(x, 2, 3, ReverseRowMajor)
	if got != ".##\n###\n" {
		t.Errorf("reverse row major:\n%s", got)
	}
	// Constant sequences render as all-high.
	if got := RenderArrangement([]int64{2, 2, 2, 2}, 2, 2, RowMajor); got != "##\n##\n" {
		t.Errorf("constant:\n%s", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shape mismatch accepted")
			}
		}()
		RenderArrangement(x, 2, 2, RowMajor)
	}()
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split([]int{1, 2, 3}, 2)
}
