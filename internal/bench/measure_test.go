package bench

import (
	"testing"
	"time"

	"countnet/internal/counter"
)

// TestMeasureCounterInterrupt: a closed Interrupt channel aborts the
// window promptly — countbench relies on this for clean SIGINT
// shutdown mid-sweep.
func TestMeasureCounterInterrupt(t *testing.T) {
	ch := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(ch)
	}()
	start := time.Now()
	MeasureCounter(counter.NewAtomicCounter(), ThroughputOptions{
		Goroutines: 2, Duration: time.Hour, Interrupt: ch,
	})
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("interrupted measurement returned after %v", e)
	}
}

// TestMeasureCounterInterruptDuringWarmup: interrupt before the window
// opens reports a zero rate rather than hanging or dividing by zero.
func TestMeasureCounterInterruptDuringWarmup(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	rate := MeasureCounter(counter.NewAtomicCounter(), ThroughputOptions{
		Goroutines: 1, Duration: time.Hour, Warmup: time.Hour, Interrupt: ch,
	})
	if rate != 0 {
		t.Fatalf("warmup-interrupted rate = %v, want 0", rate)
	}
}
