// Package bench is the experiment harness: it regenerates, as text
// tables, every quantitative claim of the paper (see DESIGN.md's
// experiment index E1..E18) plus the throughput behaviour of the
// shared-memory counters the paper cites as practical motivation.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Note holds the paper claim being reproduced and the acceptance
	// criterion.
	Note string
	// Header names the columns.
	Header []string
	// Rows holds the cells, already formatted.
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV returns the table as RFC-4180-ish CSV (header row first); cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown returns the table as GitHub-flavored markdown, used when
// regenerating EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n\n", t.Note)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	sb.WriteString("\n")
	return sb.String()
}
