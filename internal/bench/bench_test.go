package bench

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "demo",
		Note:   "line one\nline two",
		Header: []string{"a", "bee"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow("longer", 3.14159)
	out := tbl.Render()
	for _, frag := range []string{"== EX: demo ==", "line one", "line two", "a", "bee", "longer", "3.14"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | bee |") || !strings.Contains(md, "### EX: demo") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

func TestE1AllRowsPassAndDepthExact(t *testing.T) {
	tbl := E1DepthK()
	if len(tbl.Rows) == 0 {
		t.Fatal("E1 empty")
	}
	for _, row := range tbl.Rows {
		// columns: factors width n depth formula maxGate bound gates counts
		if row[3] != row[4] {
			t.Errorf("E1 %s: depth %s != formula %s", row[0], row[3], row[4])
		}
		if row[8] != "ok" {
			t.Errorf("E1 %s: %s", row[0], row[8])
		}
	}
}

func TestE2AllRowsPass(t *testing.T) {
	tbl := E2DepthL()
	for _, row := range tbl.Rows {
		if row[8] != "ok" {
			t.Errorf("E2 %s: %s", row[0], row[8])
		}
	}
}

func TestE3AllRowsOK(t *testing.T) {
	tbl := E3DepthR(10)
	if len(tbl.Rows) == 0 {
		t.Fatal("E3 empty")
	}
	for _, row := range tbl.Rows {
		if row[7] != "ok" {
			t.Errorf("E3 p=%s q=%s: %s", row[0], row[1], row[7])
		}
	}
}

func TestE4TradeoffShape(t *testing.T) {
	tbl := E4Tradeoff(64)
	if len(tbl.Rows) < 5 {
		t.Fatalf("E4 has %d factorizations of 64, want >= 5", len(tbl.Rows))
	}
	// First row is the coarsest ({64}), last the finest ({2^6}); depth
	// must not decrease from first to last and balancer width must not
	// increase.
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if first[1] != "1" || last[1] != "6" {
		t.Fatalf("E4 ordering unexpected: %v ... %v", first, last)
	}
	if atoi(t, first[2]) > atoi(t, last[2]) {
		t.Errorf("E4: coarse depth %s > fine depth %s", first[2], last[2])
	}
	if atoi(t, first[4]) < atoi(t, last[4]) {
		t.Errorf("E4: coarse balancer width %s < fine %s", first[4], last[4])
	}
}

func TestE5BitonicWins(t *testing.T) {
	// The Section 6 claim compares networks of the same balancer width:
	// bitonic (2-balancers) must beat L(2,..,2) (2-balancers) by a
	// constant factor. K uses wider balancers (max pi*pj = 4) and is
	// reported for context only — at k=3 it is even shallower than
	// bitonic because each 4-balancer does more per layer.
	tbl := E5VsBitonic(7)
	for _, row := range tbl.Rows[1:] { // skip k=2 edge
		bitonic, ld := atoi(t, row[2]), atoi(t, row[5])
		if bitonic >= ld {
			t.Errorf("E5 w=%s: bitonic %d not shallower than L %d", row[0], bitonic, ld)
		}
		if ld > 12*bitonic {
			t.Errorf("E5 w=%s: L/bitonic ratio %d/%d not a small constant", row[0], ld, bitonic)
		}
	}
}

func TestE6CounterexampleShape(t *testing.T) {
	tbl := E6Counterexample()
	want := map[string][2]string{
		"Bubble[4]":   {"true", "false"},
		"OddEven[4]":  {"true", "false"},
		"Bitonic[4]":  {"true", "true"},
		"Periodic[4]": {"true", "true"},
		"Bubble[6]":   {"true", "false"},
	}
	for _, row := range tbl.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected row %v", row)
			continue
		}
		if row[3] != w[0] || row[4] != w[1] {
			t.Errorf("E6 %s: sorts=%s counts=%s, want %v", row[0], row[3], row[4], w)
		}
		if w[1] == "false" && row[5] == "" {
			t.Errorf("E6 %s: no witness recorded", row[0])
		}
	}
}

func TestE7AllPass(t *testing.T) {
	tbl := E7Isomorphism()
	for _, row := range tbl.Rows {
		if row[3] != "ok" || row[4] != "ok" {
			t.Errorf("E7 %s: counts=%s sorts=%s", row[0], row[3], row[4])
		}
	}
}

func TestE8WithinBounds(t *testing.T) {
	tbl := E8Staircase()
	for _, row := range tbl.Rows {
		if atoi(t, row[5]) > atoi(t, row[6]) {
			t.Errorf("E8 %s %s %s: depth %s > bound %s", row[0], row[1], row[2], row[5], row[6])
		}
		if row[7] != "ok" {
			t.Errorf("E8 %s %s %s: %s", row[0], row[1], row[2], row[7])
		}
	}
}

func TestE10KEquality(t *testing.T) {
	tbl := E10Recursive()
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Errorf("E10 %s: depth %s != formula %s", row[0], row[3], row[4])
		}
	}
}

func TestE11Runs(t *testing.T) {
	tbl := E11Construction()
	if len(tbl.Rows) < 4 {
		t.Fatal("E11 too small")
	}
	for _, row := range tbl.Rows {
		if atoi(t, row[3]) <= 0 {
			t.Errorf("E11 %s: no gates", row[0])
		}
	}
}

func TestE9RunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep in -short mode")
	}
	tbl := E9Throughput(4, 10*time.Millisecond)
	if len(tbl.Rows) < 3 {
		t.Fatalf("E9 rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "k") {
				t.Errorf("E9 cell %q not a throughput", cell)
			}
		}
	}
}

func TestMeasureCounterCountsSomething(t *testing.T) {
	ops := MeasureCounter(fakeCounter{}, ThroughputOptions{Goroutines: 2, Duration: 20 * time.Millisecond})
	if ops <= 0 {
		t.Errorf("throughput %f", ops)
	}
}

type fakeCounter struct{}

func (fakeCounter) Next() int64 { return 0 }

func TestAllExperimentsWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	tables := All(true)
	if len(tables) < 16 {
		t.Fatalf("expected >= 16 experiments, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("experiment missing ID or title: %+v", tbl)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate experiment ID %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.ID)
		}
		for i, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", tbl.ID, i, len(row), len(tbl.Header))
			}
		}
		if tbl.Render() == "" || tbl.Markdown() == "" || tbl.CSV() == "" {
			t.Errorf("%s: a renderer produced nothing", tbl.ID)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Header: []string{"a", "b"}}
	tbl.AddRow("plain", `has "quotes", and commas`)
	csv := tbl.CSV()
	want := "a,b\nplain,\"has \"\"quotes\"\", and commas\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestDefaultGoroutineSteps(t *testing.T) {
	steps := DefaultGoroutineSteps()
	if len(steps) == 0 || steps[0] != 1 {
		t.Fatalf("steps = %v", steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] != steps[i-1]*2 {
			t.Fatalf("steps not doubling: %v", steps)
		}
	}
}

func TestStaircaseInputValid(t *testing.T) {
	// The generator must satisfy its own contract.
	rngTrials := 100
	for trial := 0; trial < rngTrials; trial++ {
		in := StaircaseInput(3, 2, 2, randSource(trial))
		if len(in) != 12 {
			t.Fatalf("length %d", len(in))
		}
		for b := 0; b < 2; b++ {
			blk := in[b*6 : (b+1)*6]
			if !isStep(blk) {
				t.Fatalf("block %d of %v not step", b, in)
			}
		}
		s0 := sum(in[0:6])
		s1 := sum(in[6:12])
		if s0 < s1 || s0-s1 > 2 {
			t.Fatalf("sums %d,%d violate 2-staircase", s0, s1)
		}
	}
}

func sum(x []int64) int64 {
	var s int64
	for _, v := range x {
		s += v
	}
	return s
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	neg := false
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n
}

func randSource(seed int) *rand.Rand { return rand.New(rand.NewSource(int64(seed))) }
