package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/factor"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/verify"
)

// mustNet unwraps a constructor result whose arguments are fixed
// literals in this file; construction errors are programming errors.
func mustNet(n *network.Network, err error) *network.Network {
	if err != nil {
		panic(err)
	}
	return n
}

func mustK(fs ...int) *network.Network {
	n, err := core.K(fs...)
	if err != nil {
		panic(err)
	}
	return n
}

func mustL(fs ...int) *network.Network {
	n, err := core.L(fs...)
	if err != nil {
		panic(err)
	}
	return n
}

func factorsString(fs []int) string {
	s := ""
	for i, f := range fs {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(f)
	}
	return s
}

func okErr(err error) string {
	if err == nil {
		return "ok"
	}
	return "FAIL: " + err.Error()
}

// e1Factorizations is the factorization suite shared by E1 and E2.
var e1Factorizations = [][]int{
	{2, 2}, {3, 5}, {2, 2, 2}, {2, 3, 5}, {4, 4, 4}, {2, 2, 2, 2},
	{3, 3, 3, 3}, {2, 3, 4, 5}, {2, 2, 2, 2, 2}, {5, 4, 3, 2, 2},
	{2, 2, 2, 2, 2, 2}, {3, 3, 2, 2, 2, 2},
}

// E1DepthK reproduces Proposition 6: depth(K(p0..pn-1)) = 1.5n^2-3.5n+2
// exactly, with balancers of width at most max(pi*pj).
func E1DepthK() *Table {
	t := &Table{
		ID:    "E1",
		Title: "Proposition 6: depth of family K",
		Note: "Paper: depth(K) = 1.5n^2 - 3.5n + 2, balancer width <= max(pi*pj).\n" +
			"Accept: measured == formula, width bound holds, network counts.",
		Header: []string{"factors", "width", "n", "depth", "formula", "maxGate", "bound", "gates", "counts"},
	}
	rng := rand.New(rand.NewSource(101))
	for _, fs := range e1Factorizations {
		n := mustK(fs...)
		countsErr := verify.IsCountingNetwork(n, rng)
		t.AddRow(factorsString(fs), n.Width(), len(fs), n.Depth(), core.KDepth(len(fs)),
			n.MaxGateWidth(), core.MaxPairProduct(fs), n.Size(), okErr(countsErr))
	}
	return t
}

// E2DepthL reproduces Theorem 7: depth(L(p0..pn-1)) <= 9.5n^2-12.5n+3
// with balancers of width at most max(pi).
func E2DepthL() *Table {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 7: depth of family L",
		Note: "Paper: depth(L) <= 9.5n^2 - 12.5n + 3, balancer width <= max(pi).\n" +
			"Accept: measured <= bound, width bound holds, network counts.",
		Header: []string{"factors", "width", "n", "depth", "bound", "maxGate", "widthBound", "gates", "counts"},
	}
	rng := rand.New(rand.NewSource(102))
	for _, fs := range e1Factorizations {
		n := mustL(fs...)
		countsErr := verify.IsCountingNetwork(n, rng)
		t.AddRow(factorsString(fs), n.Width(), len(fs), n.Depth(), core.LDepthBound(len(fs)),
			n.MaxGateWidth(), core.MaxFactor(fs), n.Size(), okErr(countsErr))
	}
	return t
}

// E3DepthR reproduces the Section 5.3 bound depth(R(p,q)) <= 16 with
// balancers of width at most max(p,q), sweeping p,q.
func E3DepthR(maxPQ int) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Section 5.3: constant-depth R(p,q)",
		Note: "Paper: depth(R(p,q)) <= 16, balancer width <= max(p,q).\n" +
			"Accept: both bounds hold for every p,q; spot-checked networks count.",
		Header: []string{"p", "q", "width", "depth", "maxGate", "max(p,q)", "gates", "counts"},
	}
	rng := rand.New(rand.NewSource(103))
	for p := 2; p <= maxPQ; p++ {
		for q := 2; q <= maxPQ; q++ {
			if p != 2 && q != 2 && p != q && q != maxPQ && p != maxPQ && (p*q)%5 != 0 {
				continue // keep the printed table representative, not exhaustive
			}
			n, err := core.R(p, q)
			if err != nil {
				panic(err)
			}
			m := p
			if q > m {
				m = q
			}
			status := "ok"
			if err := verify.CheckDepth(n, core.RDepthBound); err != nil {
				status = "DEPTH>16"
			}
			if err := verify.CheckBalancerWidth(n, m); err != nil {
				status = "WIDE GATE"
			}
			if n.Width() <= 64 {
				if err := verify.IsCountingNetwork(n, rng); err != nil {
					status = "NOT COUNTING"
				}
			}
			t.AddRow(p, q, n.Width(), n.Depth(), n.MaxGateWidth(), m, n.Size(), status)
		}
	}
	return t
}

// E4Tradeoff reproduces the family trade-off of Sections 1 and 6: for a
// fixed width, each factorization yields a network; coarse
// factorizations give shallow networks with wide balancers, fine ones
// deep networks with narrow balancers.
func E4Tradeoff(width int) *Table {
	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("family trade-off at fixed width %d", width),
		Note: "Paper: one network per factorization of w; max(pi) large & n small => small depth,\n" +
			"max(pi) small & n large => narrow balancers. Accept: depth grows with n, balancer width shrinks.",
		Header: []string{"factorization", "n", "L depth", "L bound", "L maxGate", "L gates", "K depth", "K maxGate"},
	}
	fss := factor.Factorizations(width, 2)
	for _, fs := range fss {
		l := mustL(fs...)
		k := mustK(fs...)
		t.AddRow(factorsString(fs), len(fs), l.Depth(), core.LDepthBound(len(fs)),
			l.MaxGateWidth(), l.Size(), k.Depth(), k.MaxGateWidth())
	}
	return t
}

// E5VsBitonic reproduces the Section 6 comparison: at widths 2^k the
// bitonic network is shallower than K and L by a constant factor.
func E5VsBitonic(maxLog int) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Section 6: depth vs the bitonic network at w = 2^k",
		Note: "Paper: the bitonic network has smaller depth by a constant factor (same 2-balancers as L).\n" +
			"Accept: bitonic depth < L(2,..,2) depth for all k >= 3 with a roughly constant ratio.\n" +
			"K(2,..,2) uses width-4 balancers, so its smaller depth at low k is not a like-for-like win.",
		Header: []string{"w", "k", "bitonic", "periodic", "K(2..2)", "L(2..2)", "K/bitonic", "L/bitonic"},
	}
	for k := 2; k <= maxLog; k++ {
		w := 1 << uint(k)
		fs := make([]int, k)
		for i := range fs {
			fs[i] = 2
		}
		bi := mustNet(baseline.Bitonic(w))
		kn := mustK(fs...)
		ln := mustL(fs...)
		t.AddRow(w, k, bi.Depth(), baseline.PeriodicDepth(w), kn.Depth(), ln.Depth(),
			float64(kn.Depth())/float64(bi.Depth()), float64(ln.Depth())/float64(bi.Depth()))
	}
	return t
}

// E6Counterexample reproduces Figure 3: the bubble-sort network sorts
// but is not a counting network, so sorting networks are not counting
// networks in general.
func E6Counterexample() *Table {
	t := &Table{
		ID:    "E6",
		Title: "Figure 3: sorting does not imply counting",
		Note: "Paper: replacing comparators with balancers in a sorting network need not yield a counting network.\n" +
			"Accept: every network sorts; bubble and odd-even fail the step property, bitonic and periodic pass.",
		Header: []string{"network", "width", "depth", "sorts", "counts", "witness (token input)"},
	}
	rng := rand.New(rand.NewSource(106))
	add := func(n *network.Network) {
		sortErr := verify.IsSortingNetwork(n, rng)
		countErr := verify.IsCountingNetwork(n, rng)
		witness := ""
		if countErr != nil {
			if bad := verify.CountsExhaustive(n, 3); bad != nil {
				witness = fmt.Sprint(bad)
			} else {
				witness = "(randomized witness)"
			}
		}
		t.AddRow(n.Name, n.Width(), n.Depth(), okErr(sortErr) == "ok", okErr(countErr) == "ok", witness)
	}
	bu := mustNet(baseline.Bubble(4))
	oe := mustNet(baseline.OddEvenMergeSort(4))
	bi := mustNet(baseline.Bitonic(4))
	pe := mustNet(baseline.Periodic(4))
	add(bu)
	add(oe)
	add(bi)
	add(pe)
	bu6 := mustNet(baseline.Bubble(6))
	add(bu6)
	return t
}

// E7Isomorphism reproduces the Section 1 isomorphism: every counting
// network, run under comparator semantics, is a sorting network. The
// same Network value is executed under both engines.
func E7Isomorphism() *Table {
	t := &Table{
		ID:    "E7",
		Title: "Section 1 / Figure 2: every counting network is a sorting network",
		Note: "Accept: each constructed counting network passes both the step-property battery and\n" +
			"the 0-1-principle / randomized sorting battery.",
		Header: []string{"network", "width", "depth", "counts", "sorts"},
	}
	rng := rand.New(rand.NewSource(107))
	nets := []*network.Network{
		mustK(2, 3), mustK(2, 3, 5), mustK(3, 3, 2),
		mustL(2, 3), mustL(2, 3, 5), mustL(4, 3, 2),
	}
	r53 := mustNet(core.R(5, 3))
	r77 := mustNet(core.R(7, 7))
	nets = append(nets, r53, r77)
	bi := mustNet(baseline.Bitonic(16))
	pe := mustNet(baseline.Periodic(8))
	nets = append(nets, bi, pe)
	for _, n := range nets {
		t.AddRow(n.Name, n.Width(), n.Depth(),
			okErr(verify.IsCountingNetwork(n, rng)), okErr(verify.IsSortingNetwork(n, rng)))
	}
	return t
}

// E8Staircase reproduces the staircase-merger depth accounting of
// Sections 4.3 and 4.3.1: variants cost d+6 / d+9 / 2d+1 / d+3 layers.
func E8Staircase() *Table {
	t := &Table{
		ID:    "E8",
		Title: "Sections 4.3/4.3.1: staircase-merger variants",
		Note: "Paper depths: basic <= d+6, substituted <= d+9, optimized+base = 2d+1, optimized+D = d+3.\n" +
			"Accept: measured <= variant bound for both the K base (d=1) and the R base (d = depth(R)).",
		Header: []string{"base", "variant", "S(r,p,q)", "width", "d", "depth", "bound", "counts"},
	}
	rng := rand.New(rand.NewSource(108))
	type variant struct {
		kind  core.StaircaseKind
		bound func(d int) int
	}
	variants := []variant{
		{core.StaircaseOptBase, func(d int) int { return 2*d + 1 }},
		{core.StaircaseOptBitonic, func(d int) int { return d + 3 }},
		{core.StaircaseBasic, func(d int) int { return d + 6 }},
		{core.StaircaseBasicSub, func(d int) int { return d + 9 }},
	}
	cases := [][3]int{{2, 2, 2}, {3, 2, 2}, {2, 3, 2}, {4, 3, 3}, {3, 4, 2}}
	for _, baseName := range []string{"balancer", "R"} {
		for _, v := range variants {
			cfg := core.Config{Base: core.BalancerBase, Staircase: v.kind}
			if baseName == "R" {
				cfg.Base = core.RBase
			}
			for _, c := range cases {
				r, p, q := c[0], c[1], c[2]
				s, err := core.StaircaseNetwork(cfg, r, p, q)
				if err != nil {
					panic(err)
				}
				d := 1
				if baseName == "R" {
					rn := mustNet(core.R(p, q))
					d = rn.Depth()
				}
				status := okErr(verifyStaircase(s, r, p, q, rng))
				t.AddRow(baseName, v.kind.String(), fmt.Sprintf("S(%d,%d,%d)", r, p, q),
					s.Width(), d, s.Depth(), v.bound(d), status)
			}
		}
	}
	return t
}

// verifyStaircase feeds the staircase network random inputs satisfying
// its precondition (each input step, inputs p-staircase) and checks the
// step property of the output.
func verifyStaircase(net *network.Network, r, p, q int, rng *rand.Rand) error {
	for trial := 0; trial < 300; trial++ {
		in := StaircaseInput(r, p, q, rng)
		out := runner.ApplyTokens(net, in)
		if !isStep(out) {
			return fmt.Errorf("step property fails on staircase input %v", in)
		}
	}
	return nil
}

// StaircaseInput generates token counts for a standalone staircase
// network: q contiguous step sequences of length r*p whose sums satisfy
// the p-staircase property.
func StaircaseInput(r, p, q int, rng *rand.Rand) []int64 {
	base := int64(rng.Intn(5 * r * p))
	sums := make([]int64, q)
	for i := range sums {
		sums[i] = base + int64(rng.Intn(p+1))
	}
	sort.Slice(sums, func(a, b int) bool { return sums[a] > sums[b] })
	in := make([]int64, 0, r*p*q)
	for i := 0; i < q; i++ {
		in = append(in, stepSeq(r*p, sums[i])...)
	}
	return in
}

func stepSeq(w int, total int64) []int64 {
	out := make([]int64, w)
	q, rr := total/int64(w), total%int64(w)
	for i := range out {
		out[i] = q
		if int64(i) < rr {
			out[i]++
		}
	}
	return out
}

func isStep(x []int64) bool {
	for i := 1; i < len(x); i++ {
		if d := x[i-1] - x[i]; d < 0 || d > 1 {
			return false
		}
	}
	return len(x) < 2 || x[0]-x[len(x)-1] <= 1
}

// E10Recursive reproduces Propositions 1 and 3: the recursive depth
// accounting of C and M against the closed forms, for both bases.
func E10Recursive() *Table {
	t := &Table{
		ID:    "E10",
		Title: "Propositions 1 & 3: recursive depth accounting",
		Note: "Paper: depth(C) = (n-1)d + (n^2/2-3n/2+1)sd and depth(M) = d + (n-2)sd.\n" +
			"Accept: measured <= formula (critical-path packing can only shrink depth); equality for K.",
		Header: []string{"network", "base", "n", "depth", "formula", "equal"},
	}
	for _, fs := range [][]int{{2, 2, 2}, {2, 3, 4}, {3, 3, 3, 3}, {2, 2, 2, 2, 2}} {
		n := len(fs)
		k := mustK(fs...)
		f := core.CDepth(n, 1, 3)
		t.AddRow("C"+factorsString(fs), "balancer", n, k.Depth(), f, k.Depth() == f)

		mk, err := core.MergerNetwork(core.KConfig(), fs...)
		if err != nil {
			panic(err)
		}
		fm := core.MDepth(n, 1, 3)
		t.AddRow("M"+factorsString(fs), "balancer", n, mk.Depth(), fm, mk.Depth() == fm)
	}
	return t
}

// E11Construction measures construction cost: wall time and gate counts
// for large widths, demonstrating the builder scales.
func E11Construction() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "construction cost at scale",
		Note:   "Not a paper claim; records builder throughput and network sizes downstream users can expect.",
		Header: []string{"network", "width", "depth", "gates", "build time"},
	}
	cases := []struct {
		name  string
		build func() *network.Network
	}{
		{"K(2^10)", func() *network.Network { return mustK(2, 2, 2, 2, 2, 2, 2, 2, 2, 2) }},
		{"L(2^8)", func() *network.Network { return mustL(2, 2, 2, 2, 2, 2, 2, 2) }},
		{"L(6,5,4,3)", func() *network.Network { return mustL(6, 5, 4, 3) }},
		{"K(10,9,8,7)", func() *network.Network { return mustK(10, 9, 8, 7) }},
		{"Bitonic(1024)", func() *network.Network { return mustNet(baseline.Bitonic(1024)) }},
		{"Periodic(256)", func() *network.Network { return mustNet(baseline.Periodic(256)) }},
	}
	for _, c := range cases {
		start := time.Now()
		n := c.build()
		el := time.Since(start)
		t.AddRow(c.name, n.Width(), n.Depth(), n.Size(), el.Round(time.Microsecond).String())
	}
	return t
}

// E12SortThroughput compares batch sorting against the depth
// structure: deeper networks do more work per batch. Each network is
// measured through the gate-list walker and through its compiled
// evaluation plan, so the table doubles as a report of what plan
// compilation buys per factorization. (Absolute throughput is
// machine-dependent; the shape — wider gates, fewer layers, fewer gate
// visits — is the point.)
func E12SortThroughput(batches int) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "sort throughput by factorization: gate walker vs compiled plan",
		Note:   "Not a paper table; sanity-checks the sorting semantics and shows the depth/gate-count trade-off in engine time.",
		Header: []string{"network", "width", "depth", "gates", "ns/batch gates", "ns/batch plan"},
	}
	rng := rand.New(rand.NewSource(112))
	nets := []*network.Network{
		mustL(2, 2, 2, 2, 2, 2), mustL(4, 4, 4), mustL(8, 8), mustK(8, 8), mustK(4, 4, 4),
	}
	bi := mustNet(baseline.Bitonic(64))
	nets = append(nets, bi)
	for _, n := range nets {
		in := make([]int64, n.Width())
		for i := range in {
			in[i] = int64(rng.Intn(1000))
		}
		start := time.Now()
		for b := 0; b < batches; b++ {
			runner.ApplyComparators(n, in)
		}
		gateNs := time.Since(start).Nanoseconds() / int64(batches)

		plan := runner.CompilePlan(n)
		s := plan.NewScratch()
		out := make([]int64, n.Width())
		start = time.Now()
		for b := 0; b < batches; b++ {
			plan.Apply(out, in, s)
		}
		planNs := time.Since(start).Nanoseconds() / int64(batches)
		t.AddRow(n.Name, n.Width(), n.Depth(), n.Size(), fmt.Sprint(gateNs), fmt.Sprint(planNs))
	}
	return t
}

// E9Throughput reproduces the shape of the Felten-LaMarca-Ladner
// measurements the paper cites ([9]): Fetch&Increment throughput for a
// fixed width w as balancer width varies, against centralized counters,
// across thread counts. The paper's motivating observation is that
// intermediate balancer widths perform best for shared-memory counting
// networks under contention.
func E9Throughput(width int, duration time.Duration) *Table {
	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("[9]-style counter throughput, network width %d (ops/sec)", width),
		Note: "Paper-cited claim: optimal performance at intermediate balancer width.\n" +
			"Accept: centralized counters win uncontended; network counters degrade more slowly with threads.",
		Header: []string{"counter"},
	}
	steps := DefaultGoroutineSteps()
	for _, g := range steps {
		t.Header = append(t.Header, fmt.Sprintf("g=%d", g))
	}
	addRow := func(name string, mk func() counter.Counter) {
		row := []interface{}{name}
		for _, g := range steps {
			ops := MeasureCounter(mk(), ThroughputOptions{Goroutines: g, Duration: duration})
			row = append(row, fmt.Sprintf("%.0f", ops/1000)+"k")
		}
		t.AddRow(row...)
	}
	addRow("atomic", func() counter.Counter { return counter.NewAtomicCounter() })
	addRow("mutex", func() counter.Counter { return counter.NewMutexCounter() })
	for _, fs := range factor.Factorizations(width, 2) {
		fs := fs
		name := fmt.Sprintf("L[%s] (bal<=%d)", factorsString(fs), core.MaxFactor(fs))
		addRow(name, func() counter.Counter {
			return counter.NewNetworkCounter(mustL(fs...), false)
		})
	}
	// Combining front-end over one representative network (the coarsest
	// factorization: widest balancers, smallest depth — the shape batching
	// amortizes best), per value and in blocks.
	coarse := factor.Factorizations(width, 2)[0]
	combName := fmt.Sprintf("combining L[%s]", factorsString(coarse))
	addRow(combName, func() counter.Counter {
		return counter.NewCombiningCounter(mustL(coarse...))
	})
	addBlockRow := func(name string, block int, mk func() counter.Counter) {
		row := []interface{}{name}
		for _, g := range steps {
			ops := MeasureCounter(mk(), ThroughputOptions{Goroutines: g, Duration: duration, Block: block})
			row = append(row, fmt.Sprintf("%.0f", ops/1000)+"k")
		}
		t.AddRow(row...)
	}
	addBlockRow(combName+" block=16", 16, func() counter.Counter {
		return counter.NewCombiningCounter(mustL(coarse...))
	})
	return t
}

// All runs the full experiment suite with default parameters. quick
// shrinks the slow experiments for CI-style runs.
func All(quick bool) []*Table {
	e3Max, e5Max := 24, 8
	e9Dur := 150 * time.Millisecond
	e12Batches := 2000
	if quick {
		e3Max, e5Max = 12, 6
		e9Dur = 40 * time.Millisecond
		e12Batches = 200
	}
	return []*Table{
		E1DepthK(),
		E2DepthL(),
		E3DepthR(e3Max),
		E4Tradeoff(64),
		E5VsBitonic(e5Max),
		E6Counterexample(),
		E7Isomorphism(),
		E8Staircase(),
		E9Throughput(16, e9Dur),
		E10Recursive(),
		E11Construction(),
		E12SortThroughput(e12Batches),
		E13Orderings([]int{2, 3, 4}),
		E14Linearizability(),
		E15AcyclicVsWrapped(),
		E16ArbitraryWidthSorting(),
		E17VerifierSensitivity(),
		E18WeightedDepth(48),
	}
}
