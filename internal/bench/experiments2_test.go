package bench

import (
	"strings"
	"testing"
)

func TestE13DepthInvariantAcrossOrderings(t *testing.T) {
	tbl := E13Orderings([]int{2, 3, 4})
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d orderings, want 6", len(tbl.Rows))
	}
	kd := tbl.Rows[0][1]
	gateCounts := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[1] != kd {
			t.Errorf("K depth differs across orderings: %s vs %s", row[1], kd)
		}
		gateCounts[row[2]] = true
	}
	if len(gateCounts) < 2 {
		t.Error("expected K gate counts to vary across orderings (found all equal)")
	}
	if !strings.Contains(tbl.Note, "Cheapest L ordering") {
		t.Error("note missing the BestOrdering result")
	}
}

func TestE15WrappedPaysExtraPasses(t *testing.T) {
	tbl := E15AcyclicVsWrapped()
	for _, row := range tbl.Rows {
		w, innerW := atoi(t, row[0]), atoi(t, row[3])
		mean := row[5]
		if w == innerW {
			if mean != "1.00" {
				t.Errorf("w=%d: power-of-two width should not wrap, mean passes %s", w, mean)
			}
		} else if !(mean > "1.00") { // lexicographic works for fixed %.2f >= 1
			t.Errorf("w=%d: expected mean passes > 1, got %s", w, mean)
		}
	}
}

func TestE16Shape(t *testing.T) {
	tbl := E16ArbitraryWidthSorting()
	for _, row := range tbl.Rows {
		mergeX, kd, ld := atoi(t, row[1]), atoi(t, row[3]), atoi(t, row[5])
		if kd > mergeX {
			t.Errorf("w=%s: K depth %d deeper than merge-exchange %d", row[0], kd, mergeX)
		}
		if ld > 2*mergeX {
			t.Errorf("w=%s: L depth %d more than 2x merge-exchange %d", row[0], ld, mergeX)
		}
	}
}

func TestE17TightNetworkFullyCaught(t *testing.T) {
	tbl := E17VerifierSensitivity()
	var sawBitonic bool
	for _, row := range tbl.Rows {
		if row[0] == "Bitonic[8]" {
			sawBitonic = true
			if row[2] != "24/24" || row[3] != "24/24" {
				t.Errorf("bitonic mutants not fully caught: removals %s reversals %s", row[2], row[3])
			}
		}
		if row[0] == "R(3,3)" {
			if row[2] < "19" { // at least 19/20 in fixed formatting
				t.Errorf("R(3,3) removals caught: %s", row[2])
			}
		}
	}
	if !sawBitonic {
		t.Error("bitonic row missing")
	}
}

func TestE18CostModelShapes(t *testing.T) {
	tbl := E18WeightedDepth(48)
	// Column minima carry a '*'. Unit, log2 and linear L-costs must
	// minimize at the trivial factorization (first row); the quadratic
	// minimum must NOT be the trivial factorization.
	first := tbl.Rows[0]
	for _, c := range []int{1, 2, 3} {
		if !strings.HasSuffix(first[c], "*") {
			t.Errorf("column %d: trivial factorization not minimal (%s)", c, first[c])
		}
	}
	if strings.HasSuffix(first[4], "*") {
		t.Error("quadratic cost should not favor the trivial factorization")
	}
	starred := 0
	for _, row := range tbl.Rows[1:] {
		if strings.HasSuffix(row[4], "*") {
			starred++
		}
	}
	if starred == 0 {
		t.Error("no interior factorization minimizes quadratic cost")
	}
}

func TestE14WitnessesWhereExpected(t *testing.T) {
	tbl := E14Linearizability()
	for _, row := range tbl.Rows {
		depthOne := row[1] == "1"
		hasWitness := row[2] != "none found"
		if depthOne && hasWitness {
			t.Errorf("%s: depth-1 network should be linearizable, got %s", row[0], row[2])
		}
		if !depthOne && !hasWitness {
			t.Errorf("%s: expected a linearizability violation witness", row[0])
		}
	}
}
