package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/counter"
)

// ThroughputOptions controls a counter throughput measurement.
type ThroughputOptions struct {
	// Goroutines is the number of concurrent incrementers.
	Goroutines int
	// Duration is the measurement window (after a brief warmup).
	Duration time.Duration
	// Warmup precedes the measurement; defaults to Duration/5.
	Warmup time.Duration
	// Block > 1 makes each worker draw values in blocks of that size
	// via counter.BlockCounter (falling back to a Next loop when the
	// counter lacks block support). Throughput counts values, not
	// calls, so block and per-value runs are directly comparable.
	Block int
	// Interrupt, when non-nil, aborts the measurement early once it
	// becomes receivable (e.g. a context's Done channel): workers stop
	// and the rate covers only the time actually measured. A window
	// interrupted during warmup reports 0.
	Interrupt <-chan struct{}
}

// MeasureCounter runs Goroutines workers hammering the counter for the
// configured duration and returns the aggregate operations per second.
// Counters implementing counter.Handled get a private handle per
// worker, mirroring how a shared-memory counting network is deployed
// (one entry cursor per processor).
func MeasureCounter(c counter.Counter, opt ThroughputOptions) float64 {
	if opt.Goroutines < 1 {
		opt.Goroutines = 1
	}
	if opt.Duration <= 0 {
		opt.Duration = 100 * time.Millisecond
	}
	if opt.Warmup <= 0 {
		opt.Warmup = opt.Duration / 5
	}
	var stop atomic.Bool
	var measuring atomic.Bool
	counts := make([]int64, opt.Goroutines*8) // padded by spacing
	var wg sync.WaitGroup
	for g := 0; g < opt.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := c
			if h, ok := c.(counter.Handled); ok {
				local = h.Handle(g)
			}
			var n int64
			if bc, ok := local.(counter.BlockCounter); ok && opt.Block > 1 {
				dst := make([]int64, opt.Block)
				for !stop.Load() {
					bc.NextBlock(dst)
					if measuring.Load() {
						n += int64(opt.Block)
					}
				}
			} else {
				for !stop.Load() {
					local.Next()
					if measuring.Load() {
						n++
					}
				}
			}
			counts[g*8] = n
		}(g)
	}
	if !sleepInterruptible(opt.Warmup, opt.Interrupt) {
		stop.Store(true)
		wg.Wait()
		return 0
	}
	measuring.Store(true)
	start := time.Now()
	sleepInterruptible(opt.Duration, opt.Interrupt)
	stop.Store(true)
	elapsed := time.Since(start)
	wg.Wait()
	var total int64
	for g := 0; g < opt.Goroutines; g++ {
		total += counts[g*8]
	}
	return float64(total) / elapsed.Seconds()
}

// sleepInterruptible sleeps for d, returning early (false) as soon as
// interrupt is receivable. A nil interrupt is a plain sleep.
func sleepInterruptible(d time.Duration, interrupt <-chan struct{}) bool {
	if interrupt == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-interrupt:
		return false
	}
}

// Environment returns a one-line description of the measurement
// environment, stamped at the top of experiment runs so recorded
// numbers carry their context.
func Environment() string {
	return fmt.Sprintf("go %s, %s/%s, GOMAXPROCS=%d, %d CPUs",
		runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// DefaultGoroutineSteps returns the goroutine counts used by the
// contention sweep: 1, 2, ... up to twice the machine parallelism,
// doubling.
func DefaultGoroutineSteps() []int {
	max := runtime.GOMAXPROCS(0) * 2
	var out []int
	for g := 1; g <= max; g *= 2 {
		out = append(out, g)
	}
	return out
}
