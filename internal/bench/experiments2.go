package bench

import (
	"fmt"
	"math/rand"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/factor"
	"countnet/internal/network"
	"countnet/internal/sim"
	"countnet/internal/verify"
)

// E13Orderings quantifies a remark in the paper's introduction: "each
// distinct ordering of a fixed set of factors also yields a different
// counting network, but all such networks have the same depth". Depth
// is indeed invariant; gate count is not — orderings differ in cost,
// and BestOrdering exploits that.
func E13Orderings(multiset []int) *Table {
	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("factor-ordering effects for multiset %v", multiset),
		Note: "Paper (Section 1): every ordering yields a different network of the same depth.\n" +
			"Measured: depth invariant across orderings; gate count varies — a free optimization knob.",
		Header: []string{"ordering", "K depth", "K gates", "L depth", "L gates"},
	}
	for _, ord := range factor.Permutations(multiset) {
		k := mustK(ord...)
		l := mustL(ord...)
		t.AddRow(factorsString(ord), k.Depth(), k.Size(), l.Depth(), l.Size())
	}
	bestL := factor.BestOrdering(multiset, func(ord []int) int { return mustL(ord...).Size() })
	t.Note += fmt.Sprintf("\nCheapest L ordering by gate count: %s (%d gates).",
		factorsString(bestL), mustL(bestL...).Size())
	return t
}

// E14Linearizability reports the Section 6 discussion: counting
// networks are quiescently consistent but not linearizable. For each
// network it searches three/four-token scripted executions for a
// violation — an operation B that starts strictly after operation A
// finishes yet receives a smaller value — and prints the witness.
// Depth-1 networks (single balancers) admit no violation.
func E14Linearizability() *Table {
	t := &Table{
		ID:    "E14",
		Title: "Section 6: quiescent consistency without linearizability",
		Note: "A witness is an execution where B starts after A completes yet value(B) < value(A).\n" +
			"Expect: witnesses for every multi-layer network; none for a single balancer (depth 1).",
		Header: []string{"network", "depth", "witness"},
	}
	add := func(n *network.Network) {
		w, vA, vB, ok := linearizabilityWitness(n)
		cell := "none found"
		if ok {
			cell = fmt.Sprintf("A=%d then B=%d (%s)", vA, vB, w)
		}
		t.AddRow(n.Name, n.Depth(), cell)
	}
	if n, err := core.K(4); err == nil {
		add(n)
	}
	if n, err := baseline.Bitonic(4); err == nil {
		add(n)
	}
	if n, err := core.L(2, 2); err == nil {
		add(n)
	}
	if n, err := baseline.Periodic(4); err == nil {
		add(n)
	}
	return t
}

// E15AcyclicVsWrapped quantifies why the paper insists on an acyclic
// construction (Section 2: Aharonson & Attiya "construct networks of
// arbitrary width by taking a standard counting network and linking the
// excess output wires to the excess input wires, resulting in a cyclic
// network (ours is acyclic)"). The wrapped scheme makes tokens pay
// multiple traversals of a power-of-two network; L pays one traversal
// of a (deeper-per-pass but single-pass) arbitrary-width network.
func E15AcyclicVsWrapped() *Table {
	t := &Table{
		ID:    "E15",
		Title: "Section 2: acyclic L vs cyclic wrapped bitonic at arbitrary widths",
		Note: "Wrapped = bitonic of the next power of two with excess outputs fed back to inputs.\n" +
			"'effective depth' = mean traversals x inner depth (balancer visits per token).\n" +
			"Accept: wrapped tokens pay > 1 traversal whenever w is not a power of two; L pays exactly 1.",
		Header: []string{"w", "L factors", "L depth", "inner W", "inner depth", "mean passes", "wrapped eff. depth"},
	}
	for _, w := range []int{6, 10, 12, 15, 20, 24, 30} {
		fs := factor.Balanced(w, 3)
		l := mustL(fs...)
		c, err := baseline.NewWrapped(w)
		if err != nil {
			panic(err)
		}
		tokens := make([]int64, w)
		for i := range tokens {
			tokens[i] = 40
		}
		_, mean := c.Step(tokens)
		t.AddRow(w, factorsString(fs), l.Depth(), c.InnerWidth(), c.Depth(),
			fmt.Sprintf("%.2f", mean), fmt.Sprintf("%.1f", mean*float64(c.Depth())))
	}
	return t
}

// E16ArbitraryWidthSorting compares the paper's families against
// Batcher's merge-exchange network — the classical arbitrary-width
// sorting construction (the role Section 2 assigns to the Lee–Batcher
// multiway merge) — at widths that are not powers of two. Merge-exchange
// is shallower but sorts only; K and L additionally count, and K gets
// close by spending wider switches.
func E16ArbitraryWidthSorting() *Table {
	t := &Table{
		ID:    "E16",
		Title: "Section 2: arbitrary-width sorting baselines",
		Note: "MergeX = Batcher merge-exchange (2-comparators, sorts only, not counting).\n" +
			"Accept: all networks sort; only K/L count; K (wider switches) is never deeper than MergeX,\n" +
			"and L (2-comparator-comparable switch widths) stays within a small factor of MergeX while also counting.",
		Header: []string{"w", "MergeX depth", "K factors", "K depth", "K maxGate", "L depth", "L maxGate"},
	}
	for _, w := range []int{6, 12, 24, 30, 60, 120} {
		me, err := baseline.MergeExchange(w)
		if err != nil {
			panic(err)
		}
		fs := factor.Balanced(w, 3)
		k := mustK(fs...)
		l := mustL(fs...)
		t.AddRow(w, me.Depth(), factorsString(fs), k.Depth(), k.MaxGateWidth(), l.Depth(), l.MaxGateWidth())
	}
	return t
}

// E17VerifierSensitivity is a meta-experiment: mutation analysis of the
// counting battery itself. For representative networks it removes or
// reverses each gate in turn and reports how many single-fault mutants
// the battery catches. A harness that misses mutants cannot be trusted
// to certify the constructions; this table is the evidence it can.
func E17VerifierSensitivity() *Table {
	t := &Table{
		ID:    "E17",
		Title: "mutation analysis: verifier sensitivity and construction slack",
		Note: "Each gate is removed (or reversed) in turn and the battery re-run. Two readings:\n" +
			"tight networks (bitonic: every gate load-bearing) measure the verifier — expect ~100% caught;\n" +
			"family networks measure construction slack — K(2,2,2) survives most single removals because\n" +
			"its wide balancers leave redundancy (surviving mutants pass the bounded-exhaustive check, so\n" +
			"they genuinely still count). The paper's family is not gate-minimal, and this quantifies it.",
		Header: []string{"network", "gates", "removals caught", "reversals caught"},
	}
	rng := rand.New(rand.NewSource(117))
	nets := []*network.Network{}
	if n, err := core.K(2, 2, 2); err == nil {
		nets = append(nets, n)
	}
	if n, err := core.L(2, 3); err == nil {
		nets = append(nets, n)
	}
	if n, err := core.R(3, 3); err == nil {
		nets = append(nets, n)
	}
	if n, err := baseline.Bitonic(8); err == nil {
		nets = append(nets, n)
	}
	for _, n := range nets {
		rem, rev := 0, 0
		for i := 0; i < n.Size(); i++ {
			if verify.IsCountingNetwork(verify.MutateRemoveGate(n, i), rng) != nil {
				rem++
			}
			if verify.IsCountingNetwork(verify.MutateReverseGate(n, i), rng) != nil {
				rev++
			}
		}
		t.AddRow(n.Name, n.Size(),
			fmt.Sprintf("%d/%d", rem, n.Size()), fmt.Sprintf("%d/%d", rev, n.Size()))
	}
	return t
}

// E18WeightedDepth evaluates the family trade-off under hardware cost
// models where a width-p switch is not unit-cost: logarithmic (cost
// ceil(log2 p), a tree-structured switch), linear (cost p, a sequential
// switch) and quadratic (cost p^2, crossbar-style arbitration). A
// perhaps-surprising outcome: even at LINEAR switch cost the single
// wide balancer stays latency-optimal (one width-w switch costs w, and
// any decomposition's critical path costs more) — latency alone never
// justifies the family. Only superlinear switch cost (quadratic) moves
// the optimum to an interior factorization. The real-world case for
// intermediate widths is therefore contention/throughput ([9], our E9),
// plus hard constraints on available switch sizes — exactly the
// regime the paper positions the construction for.
func E18WeightedDepth(width int) *Table {
	t := &Table{
		ID:    "E18",
		Title: fmt.Sprintf("family latency under switch-cost models, width %d", width),
		Note: "Costs per width-p switch: unit 1, log2 ceil(log2 p), linear p, quad p^2.\n" +
			"'*' marks each column's minimum. Accept: unit/log2/linear minimize at the trivial\n" +
			"factorization; quadratic cost moves the optimum to an interior factorization.",
		Header: []string{"factorization", "L unit", "L log2", "L linear", "L quad", "K unit", "K linear"},
	}
	unit := func(int) int { return 1 }
	linear := func(p int) int { return p }
	quad := func(p int) int { return p * p }
	logCost := func(p int) int {
		c := 0
		for 1<<uint(c) < p {
			c++
		}
		if c == 0 {
			c = 1
		}
		return c
	}
	type row struct {
		name string
		vals [6]int
	}
	var rows []row
	for _, fs := range factor.Factorizations(width, 2) {
		l := mustL(fs...)
		k := mustK(fs...)
		rows = append(rows, row{factorsString(fs), [6]int{
			l.WeightedDepth(unit), l.WeightedDepth(logCost), l.WeightedDepth(linear), l.WeightedDepth(quad),
			k.WeightedDepth(unit), k.WeightedDepth(linear),
		}})
	}
	var mins [6]int
	for c := 0; c < 6; c++ {
		mins[c] = rows[0].vals[c]
		for _, r := range rows[1:] {
			if r.vals[c] < mins[c] {
				mins[c] = r.vals[c]
			}
		}
	}
	for _, r := range rows {
		cells := make([]interface{}, 0, 7)
		cells = append(cells, r.name)
		for c := 0; c < 6; c++ {
			s := fmt.Sprint(r.vals[c])
			if r.vals[c] == mins[c] {
				s += "*"
			}
			cells = append(cells, s)
		}
		t.AddRow(cells...)
	}
	return t
}

// linearizabilityWitness searches scripted executions with two stalled
// tokens for a violation; it requires a uniform-path-length network
// (all the candidates above qualify).
func linearizabilityWitness(n *network.Network) (desc string, vA, vB int, found bool) {
	w := n.Width()
	steps := n.Depth() + 1
	for c0 := 0; c0 < w; c0++ {
		for c1 := 0; c1 < w; c1++ {
			for s0 := 1; s0 < steps; s0++ {
				for s1 := 1; s1 < steps; s1++ {
					for ae := 0; ae < w; ae++ {
						for be := 0; be < w; be++ {
							var order []int
							for i := 0; i < s0; i++ {
								order = append(order, 0)
							}
							for i := 0; i < s1; i++ {
								order = append(order, 1)
							}
							for i := 0; i < steps; i++ {
								order = append(order, 2)
							}
							for i := 0; i < steps; i++ {
								order = append(order, 3)
							}
							res := sim.Run(n, []int{c0, c1, ae, be}, &sim.Script{Order: order})
							a := res.ExitRanks[2]*w + res.Exits[2]
							b := res.ExitRanks[3]*w + res.Exits[3]
							if b < a {
								return fmt.Sprintf("stalled on wires %d,%d after %d,%d steps; A on %d, B on %d",
									c0, c1, s0, s1, ae, be), a, b, true
							}
						}
					}
				}
			}
		}
	}
	return "", 0, 0, false
}
