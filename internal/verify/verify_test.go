package verify

import (
	"math/rand"
	"testing"

	"countnet/internal/network"
)

// sorter4 is a correct 4-wire sorting+counting network (bitonic).
func sorter4() *network.Network {
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	return b.Build("sorter4", nil)
}

// nonSorter4 misses the final exchange layer.
func nonSorter4() *network.Network {
	b := network.NewBuilder(4)
	b.Add([]int{0, 1}, "")
	b.Add([]int{2, 3}, "")
	b.Add([]int{0, 3}, "")
	b.Add([]int{1, 2}, "")
	return b.Build("nonsorter4", nil)
}

// bubble4 sorts but does not count (paper Figure 3).
func bubble4() *network.Network {
	b := network.NewBuilder(4)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 3-pass; i++ {
			b.Add([]int{i, i + 1}, "")
		}
	}
	return b.Build("bubble4", nil)
}

func TestSortsZeroOne(t *testing.T) {
	bad, err := SortsZeroOne(sorter4(), 20)
	if err != nil || bad != nil {
		t.Errorf("sorter4 rejected: %v %v", bad, err)
	}
	bad, err = SortsZeroOne(nonSorter4(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if bad == nil {
		t.Error("nonSorter4 accepted")
	}
}

func TestSortsZeroOneWidthLimit(t *testing.T) {
	b := network.NewBuilder(25)
	n := b.Build("wide", nil)
	if _, err := SortsZeroOne(n, 20); err == nil {
		t.Error("width 25 should exceed the exhaustive limit")
	}
}

func TestSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if bad, trial := SortsRandom(sorter4(), 100, rng); bad != nil {
		t.Errorf("sorter4 rejected on %v (trial %d)", bad, trial)
	}
	bad, trial := SortsRandom(nonSorter4(), 500, rng)
	if bad == nil {
		t.Error("nonSorter4 accepted")
	}
	if trial < 0 {
		t.Error("failure did not report its trial index")
	}
}

func TestCountsExhaustive(t *testing.T) {
	if bad := CountsExhaustive(sorter4(), 3); bad != nil {
		t.Errorf("sorter4 (bitonic) rejected on %v", bad)
	}
	if bad := CountsExhaustive(bubble4(), 3); bad == nil {
		t.Error("bubble4 accepted as counting")
	}
}

func TestCountsExhaustiveCoversAllInputs(t *testing.T) {
	// The odometer must enumerate (max+1)^w inputs; count via a probe
	// network with no gates (every input trivially steps only when
	// constant-ish, so instead count calls through a wrapper).
	// Simpler: width 2, max 2 -> 9 inputs; a gateless network of width 2
	// fails exactly on inputs that are not step, e.g. (0,1),(0,2),(2,0).
	b := network.NewBuilder(2)
	n := b.Build("probe", nil)
	bad := CountsExhaustive(n, 2)
	if bad == nil {
		t.Fatal("gateless width-2 network cannot satisfy step on all inputs")
	}
	// The odometer counts wire 0 fastest: [0 0] and [1 0] are step, the
	// first failure is [2 0].
	if bad[0] != 2 || bad[1] != 0 {
		t.Errorf("first failure = %v, want [2 0]", bad)
	}
}

func TestCountsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if bad, trial := CountsRandom(sorter4(), 200, 10, rng); bad != nil {
		t.Errorf("sorter4 rejected on %v (trial %d)", bad, trial)
	}
	bad, trial := CountsRandom(bubble4(), 500, 10, rng)
	if bad == nil {
		t.Error("bubble4 accepted")
	}
	if trial < 0 {
		t.Error("failure did not report its trial index")
	}
}

func TestIsCountingNetworkBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if err := IsCountingNetwork(sorter4(), rng); err != nil {
		t.Errorf("sorter4: %v", err)
	}
	if err := IsCountingNetwork(bubble4(), rng); err == nil {
		t.Error("bubble4 passed the counting battery")
	}
}

func TestIsSortingNetworkBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := IsSortingNetwork(sorter4(), rng); err != nil {
		t.Errorf("sorter4: %v", err)
	}
	if err := IsSortingNetwork(nonSorter4(), rng); err == nil {
		t.Error("nonSorter4 passed the sorting battery")
	}
	if err := IsSortingNetwork(bubble4(), rng); err != nil {
		t.Errorf("bubble4 must sort: %v", err)
	}
}

func TestStructuralChecks(t *testing.T) {
	n := sorter4()
	if err := CheckBalancerWidth(n, 2); err != nil {
		t.Errorf("width bound 2: %v", err)
	}
	if err := CheckBalancerWidth(n, 1); err == nil {
		t.Error("width bound 1 should fail")
	}
	if err := CheckDepth(n, 3); err != nil {
		t.Errorf("depth bound 3: %v", err)
	}
	if err := CheckDepth(n, 2); err == nil {
		t.Error("depth bound 2 should fail")
	}
}

func TestVerifyWiderNetworkPath(t *testing.T) {
	// Exercise the width > 10 branch of IsCountingNetwork and the
	// width > 20 branch of IsSortingNetwork with a wide correct
	// network: a single balancer is a counting network of any width,
	// and an odd-even transposition cascade sorts any width; combine
	// a 24-wide bubble-ish sorter.
	rng := rand.New(rand.NewSource(5))
	b := network.NewBuilder(24)
	b.Add(network.Identity(24), "bal")
	n := b.Build("wide-balancer", nil)
	if err := IsCountingNetwork(n, rng); err != nil {
		t.Errorf("single 24-balancer: %v", err)
	}

	b2 := network.NewBuilder(22)
	for layer := 0; layer < 22; layer++ {
		for i := layer % 2; i+1 < 22; i += 2 {
			b2.Add([]int{i, i + 1}, "")
		}
	}
	sorter := b2.Build("oet22", nil)
	if err := IsSortingNetwork(sorter, rng); err != nil {
		t.Errorf("OET(22): %v", err)
	}
}
