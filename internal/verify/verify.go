// Package verify provides the correctness machinery used throughout the
// repository: the 0-1 principle for sorting networks, bounded-exhaustive
// and randomized step-property checks for counting networks, structural
// bound checks, and the counting-to-sorting isomorphism of Section 1 of
// the paper.
package verify

import (
	"fmt"
	"math/rand"

	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
)

// SortsZeroOne exhaustively applies the 0-1 principle: a comparator
// network sorts every input iff it sorts every 0/1 input. For width w
// this tests all 2^w batches; it refuses widths above maxWidth (use
// SortsRandom beyond that). It returns the first failing input, or nil.
func SortsZeroOne(net *network.Network, maxWidth int) (failing []int64, err error) {
	w := net.Width()
	if w > maxWidth {
		return nil, fmt.Errorf("verify: width %d exceeds exhaustive limit %d", w, maxWidth)
	}
	in := make([]int64, w)
	for mask := 0; mask < 1<<uint(w); mask++ {
		ones := 0
		for i := 0; i < w; i++ {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
				ones++
			} else {
				in[i] = 0
			}
		}
		out := runner.ApplyComparators(net, in)
		if !sortedDesc(out) {
			return append([]int64(nil), in...), nil
		}
		_ = ones
	}
	return nil, nil
}

// SortsRandom applies trials random permutations of 0..w-1 plus random
// multisets and checks the output is sorted (descending, per the step
// orientation). It returns the first failing input and its 0-based
// trial index (so callers can report a one-line repro: same rng seed,
// same trial, same input), or (nil, -1).
func SortsRandom(net *network.Network, trials int, rng *rand.Rand) ([]int64, int) {
	w := net.Width()
	in := make([]int64, w)
	for t := 0; t < trials; t++ {
		if t%2 == 0 {
			perm := rng.Perm(w)
			for i := range in {
				in[i] = int64(perm[i])
			}
		} else {
			for i := range in {
				in[i] = int64(rng.Intn(w/2 + 1))
			}
		}
		out := runner.ApplyComparators(net, in)
		if !sortedDesc(out) {
			return append([]int64(nil), in...), t
		}
	}
	return nil, -1
}

func sortedDesc(x []int64) bool {
	for i := 1; i < len(x); i++ {
		if x[i-1] < x[i] {
			return false
		}
	}
	return true
}

// CountsExhaustive checks the step property of the output for every
// input token assignment with per-wire counts in [0, maxPerWire]. The
// number of cases is (maxPerWire+1)^w, so this is for small widths.
// It returns the first failing input, or nil.
func CountsExhaustive(net *network.Network, maxPerWire int) []int64 {
	w := net.Width()
	in := make([]int64, w)
	stepper := runner.NewStepper(net)
	for {
		out := stepper.Step(in)
		if !seq.IsStep(out) {
			return append([]int64(nil), in...)
		}
		// Odometer increment.
		i := 0
		for i < w {
			in[i]++
			if in[i] <= int64(maxPerWire) {
				break
			}
			in[i] = 0
			i++
		}
		if i == w {
			return nil
		}
	}
}

// CountsRandom checks the step property on trials random inputs with
// per-wire counts in [0, maxPerWire], mixing sparse, dense and skewed
// distributions. It returns the first failing input and its 0-based
// trial index (for one-line repros), or (nil, -1).
func CountsRandom(net *network.Network, trials, maxPerWire int, rng *rand.Rand) ([]int64, int) {
	w := net.Width()
	in := make([]int64, w)
	stepper := runner.NewStepper(net)
	for t := 0; t < trials; t++ {
		switch t % 4 {
		case 0: // uniform
			for i := range in {
				in[i] = int64(rng.Intn(maxPerWire + 1))
			}
		case 1: // sparse
			for i := range in {
				in[i] = 0
			}
			for k := 0; k < w/2+1; k++ {
				in[rng.Intn(w)] += int64(rng.Intn(maxPerWire + 1))
			}
		case 2: // single hot wire
			for i := range in {
				in[i] = 0
			}
			in[rng.Intn(w)] = int64(rng.Intn(maxPerWire*w + 1))
		case 3: // heavy uniform
			base := int64(rng.Intn(maxPerWire + 1))
			for i := range in {
				in[i] = base + int64(rng.Intn(maxPerWire+1))
			}
		}
		out := stepper.Step(in)
		if !seq.IsStep(out) {
			return append([]int64(nil), in...), t
		}
	}
	return nil, -1
}

// IsCountingNetwork runs a practical battery: bounded-exhaustive token
// checks for tiny widths plus randomized checks, and cross-checks the
// quiescent engine against the serial token simulator on one input.
// It returns a descriptive error for the first violation found.
//
// (Deciding the counting property exactly is infeasible in general —
// the input space is unbounded — but this battery reliably catches
// construction mistakes: the Figure 3 bubble-sort network, which sorts
// but does not count, fails it immediately.)
func IsCountingNetwork(net *network.Network, rng *rand.Rand) error {
	w := net.Width()
	if w <= 6 {
		if bad := CountsExhaustive(net, 4); bad != nil {
			return fmt.Errorf("verify: step property fails on token input %v", bad)
		}
	} else if w <= 10 {
		if bad := CountsExhaustive(net, 2); bad != nil {
			return fmt.Errorf("verify: step property fails on token input %v", bad)
		}
	}
	trials := 400
	if w > 256 {
		trials = 100
	}
	if bad, trial := CountsRandom(net, trials, 3*w, rng); bad != nil {
		return fmt.Errorf("verify: step property fails on token input %v (random trial %d)", bad, trial)
	}
	// Cross-check quiescent transfer against serial token simulation.
	perWire := 3
	tokens := make([]int, 0, w*perWire)
	counts := make([]int64, w)
	for k := 0; k < w*perWire; k++ {
		wire := rng.Intn(w)
		tokens = append(tokens, wire)
		counts[wire]++
	}
	serial, _ := runner.ApplyTokensSerial(net, tokens)
	quiesced := runner.ApplyTokens(net, counts)
	for i := range serial {
		if serial[i] != quiesced[i] {
			return fmt.Errorf("verify: serial simulation disagrees with quiescent transfer at position %d: %d vs %d",
				i, serial[i], quiesced[i])
		}
	}
	if !seq.IsStep(serial) {
		return fmt.Errorf("verify: serial execution output %v lacks step property", serial)
	}
	return nil
}

// IsSortingNetwork runs the sorting battery: exhaustive 0-1 up to
// width 20, randomized beyond.
func IsSortingNetwork(net *network.Network, rng *rand.Rand) error {
	if net.Width() <= 20 {
		bad, err := SortsZeroOne(net, 20)
		if err != nil {
			return err
		}
		if bad != nil {
			return fmt.Errorf("verify: fails to sort 0-1 input %v", bad)
		}
		return nil
	}
	if bad, trial := SortsRandom(net, 200, rng); bad != nil {
		return fmt.Errorf("verify: fails to sort input %v (random trial %d)", bad, trial)
	}
	return nil
}

// IsCountingNetworkSeeded is IsCountingNetwork over a freshly seeded
// generator; any failure carries the seed, so the error message alone
// is a one-line repro (same seed, same trial, same input).
func IsCountingNetworkSeeded(net *network.Network, seed int64) error {
	if err := IsCountingNetwork(net, rand.New(rand.NewSource(seed))); err != nil {
		return fmt.Errorf("%w (repro: seed=%d)", err, seed)
	}
	return nil
}

// IsSortingNetworkSeeded is IsSortingNetwork with seed-carrying
// failure messages; see IsCountingNetworkSeeded.
func IsSortingNetworkSeeded(net *network.Network, seed int64) error {
	if err := IsSortingNetwork(net, rand.New(rand.NewSource(seed))); err != nil {
		return fmt.Errorf("%w (repro: seed=%d)", err, seed)
	}
	return nil
}

// CrossCheck exploits uniqueness of the step distribution: for a given
// total of tokens, every counting network of the same width must emit
// the *identical* output vector. It feeds the same random inputs to all
// networks and reports the first disagreement or non-step output. All
// networks must share one width.
func CrossCheck(nets []*network.Network, trials int, rng *rand.Rand) error {
	if len(nets) < 2 {
		return nil
	}
	w := nets[0].Width()
	for _, n := range nets[1:] {
		if n.Width() != w {
			return fmt.Errorf("verify: width mismatch %d vs %d", n.Width(), w)
		}
	}
	in := make([]int64, w)
	for t := 0; t < trials; t++ {
		for i := range in {
			in[i] = int64(rng.Intn(4 * w))
		}
		ref := runner.ApplyTokens(nets[0], in)
		if !seq.IsStep(ref) {
			return fmt.Errorf("verify: %s not step on %v", nets[0].Name, in)
		}
		for _, n := range nets[1:] {
			out := runner.ApplyTokens(n, in)
			for i := range out {
				if out[i] != ref[i] {
					return fmt.Errorf("verify: %s and %s disagree on input %v: %v vs %v",
						nets[0].Name, n.Name, in, ref, out)
				}
			}
		}
	}
	return nil
}

// MutateRemoveGate returns a copy of the network with gate `idx`
// removed — a standard single-fault mutant for gauging verifier
// sensitivity.
func MutateRemoveGate(n *network.Network, idx int) *network.Network {
	b := network.NewBuilder(n.Width())
	for i := range n.Gates {
		if i == idx {
			continue
		}
		b.Add(n.Gates[i].Wires, n.Gates[i].Label)
	}
	return b.Build(n.Name+"-del", n.OutputOrder)
}

// MutateReverseGate returns a copy with gate `idx`'s wire order
// reversed, flipping which wire receives the excess at that balancer.
func MutateReverseGate(n *network.Network, idx int) *network.Network {
	b := network.NewBuilder(n.Width())
	for i := range n.Gates {
		wires := append([]int(nil), n.Gates[i].Wires...)
		if i == idx {
			for a, z := 0, len(wires)-1; a < z; a, z = a+1, z-1 {
				wires[a], wires[z] = wires[z], wires[a]
			}
		}
		b.Add(wires, n.Gates[i].Label)
	}
	return b.Build(n.Name+"-rev", n.OutputOrder)
}

// CheckBalancerWidth verifies every gate has width at most bound.
func CheckBalancerWidth(net *network.Network, bound int) error {
	for i := range net.Gates {
		if w := net.Gates[i].Width(); w > bound {
			return fmt.Errorf("verify: gate %d (%s) has width %d > bound %d",
				i, net.Gates[i].Label, w, bound)
		}
	}
	return nil
}

// CheckDepth verifies the network depth is at most bound.
func CheckDepth(net *network.Network, bound int) error {
	if d := net.Depth(); d > bound {
		return fmt.Errorf("verify: depth %d > bound %d", d, bound)
	}
	return nil
}
