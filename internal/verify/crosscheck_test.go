package verify

import (
	"math/rand"
	"testing"

	"countnet/internal/network"
)

// bitonic8 builds the 8-wide bitonic counting network inline (verify
// cannot import baseline without a cycle in tests' spirit; the wiring
// is short enough to spell out via the recursive helper).
func bitonic8() *network.Network {
	b := network.NewBuilder(8)
	var sortRec func(in []int) []int
	var merge func(x, y []int) []int
	merge = func(x, y []int) []int {
		if len(x) == 1 {
			b.Add([]int{x[0], y[0]}, "")
			return []int{x[0], y[0]}
		}
		var xe, xo, ye, yo []int
		for i, v := range x {
			if i%2 == 0 {
				xe = append(xe, v)
			} else {
				xo = append(xo, v)
			}
		}
		for i, v := range y {
			if i%2 == 0 {
				ye = append(ye, v)
			} else {
				yo = append(yo, v)
			}
		}
		m0 := merge(xe, yo)
		m1 := merge(xo, ye)
		var out []int
		for i := range m0 {
			b.Add([]int{m0[i], m1[i]}, "")
			out = append(out, m0[i], m1[i])
		}
		return out
	}
	sortRec = func(in []int) []int {
		if len(in) == 1 {
			return in
		}
		h := len(in) / 2
		return merge(sortRec(in[:h]), sortRec(in[h:]))
	}
	out := sortRec(network.Identity(8))
	return b.Build("bitonic8", out)
}

// oneBalancer8 is the trivial width-8 counting network.
func oneBalancer8() *network.Network {
	b := network.NewBuilder(8)
	b.Add(network.Identity(8), "")
	return b.Build("balancer8", nil)
}

func TestCrossCheckAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := CrossCheck([]*network.Network{bitonic8(), oneBalancer8()}, 300, rng); err != nil {
		t.Errorf("two counting networks disagreed: %v", err)
	}
}

func TestCrossCheckCatchesNonCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A bubble-ish width-8 sorting network is not counting; CrossCheck
	// against a real counting network must fail.
	b := network.NewBuilder(8)
	for pass := 0; pass < 7; pass++ {
		for i := 0; i < 7-pass; i++ {
			b.Add([]int{i, i + 1}, "")
		}
	}
	bubble := b.Build("bubble8", nil)
	if err := CrossCheck([]*network.Network{oneBalancer8(), bubble}, 500, rng); err == nil {
		t.Error("bubble agreed with a counting network on all inputs")
	}
}

func TestCrossCheckWidthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := network.NewBuilder(4).Build("w4", nil)
	if err := CrossCheck([]*network.Network{oneBalancer8(), small}, 10, rng); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestCrossCheckDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := CrossCheck(nil, 10, rng); err != nil {
		t.Error("empty set should pass vacuously")
	}
	if err := CrossCheck([]*network.Network{oneBalancer8()}, 10, rng); err != nil {
		t.Error("singleton should pass vacuously")
	}
}
