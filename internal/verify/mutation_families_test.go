// Mutation coverage for the paper's constructions: every single-gate
// mutant of K(2,2), L(2,3) and R(2,3) must either be killed — by the
// IsCountingNetwork battery or by the schedule-exploration invariants
// of internal/sched — or be proven equivalent to the original.
// Equivalence here is evidence, not proof (the counting property is
// undecidable over unbounded inputs): a surviving mutant must produce
// the exact step output of the unmutated network on a bounded
// exhaustive sweep plus a large random battery, which is how a
// redundant gate behaves. Lives in package verify_test because sched
// imports verify.
package verify_test

import (
	"math/rand"
	"testing"

	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/sched"
	"countnet/internal/verify"
)

// schedKills reports whether the schedule-exploration harness detects
// the mutant: it searches for a token load whose quiescent counts
// break the step property and, if one exists, runs the real concurrent
// traversal under explored interleavings.
func schedKills(t *testing.T, mut *network.Network) bool {
	t.Helper()
	bad := verify.CountsExhaustive(mut, 2)
	if bad == nil {
		return false
	}
	var entries []int
	for wire, cnt := range bad {
		for k := int64(0); k < cnt; k++ {
			entries = append(entries, wire)
		}
	}
	rep := sched.ExploreRandom(sched.TokenSystem(mut, entries), 0x10ad, 100, 50_000)
	return rep.Failure != nil
}

// equivalentToOriginal gathers evidence that a surviving mutant
// computes the same counting function as the original: identical
// quiescent outputs on an exhaustive bounded sweep and on 2000 random
// inputs. (Step-distribution uniqueness makes output equality the
// right notion: any two counting networks of one width agree, so a
// mutant agreeing with the original everywhere we look is a redundant
// gate, not a hidden fault.)
func equivalentToOriginal(orig, mut *network.Network, rng *rand.Rand) bool {
	w := orig.Width()
	in := make([]int64, w)
	for {
		a := runner.ApplyTokens(orig, in)
		b := runner.ApplyTokens(mut, in)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		i := 0
		for i < w {
			in[i]++
			if in[i] <= 2 {
				break
			}
			in[i] = 0
			i++
		}
		if i == w {
			break
		}
	}
	for trial := 0; trial < 2000; trial++ {
		for i := range in {
			in[i] = int64(rng.Intn(4 * w))
		}
		a := runner.ApplyTokens(orig, in)
		b := runner.ApplyTokens(mut, in)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// TestEverySingleGateMutantCaughtOrEquivalent is the mutation table:
// for each family and each gate, both the removal and the reversal
// mutant must be killed or proven (in the bounded sense above)
// equivalent. Surviving equivalents are logged so a construction
// change that introduces new redundancy is visible in test output.
func TestEverySingleGateMutantCaughtOrEquivalent(t *testing.T) {
	families := []struct {
		name  string
		build func() (*network.Network, error)
	}{
		{"K(2,2)", func() (*network.Network, error) { return core.K(2, 2) }},
		{"L(2,3)", func() (*network.Network, error) { return core.L(2, 3) }},
		{"R(2,3)", func() (*network.Network, error) { return core.R(2, 3) }},
	}
	mutations := []struct {
		name string
		make func(*network.Network, int) *network.Network
	}{
		{"remove", verify.MutateRemoveGate},
		{"reverse", verify.MutateReverseGate},
	}
	for _, fam := range families {
		orig, err := fam.build()
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		if err := verify.IsCountingNetworkSeeded(orig, 7); err != nil {
			t.Fatalf("%s baseline: %v", fam.name, err)
		}
		killed, survived := 0, 0
		for _, mu := range mutations {
			for i := 0; i < orig.Size(); i++ {
				mut := mu.make(orig, i)
				if verify.IsCountingNetworkSeeded(mut, 7) != nil || schedKills(t, mut) {
					killed++
					continue
				}
				rng := rand.New(rand.NewSource(int64(i)))
				if !equivalentToOriginal(orig, mut, rng) {
					t.Errorf("%s: %s gate %d (%s) survives the battery yet differs from the original",
						fam.name, mu.name, i, orig.Gates[i].Label)
					continue
				}
				survived++
				t.Logf("%s: %s gate %d (%s) is an equivalent mutant (redundant gate)",
					fam.name, mu.name, i, orig.Gates[i].Label)
			}
		}
		t.Logf("%s: %d gates, %d mutants killed, %d equivalent survivors",
			fam.name, orig.Size(), killed, survived)
	}
}
