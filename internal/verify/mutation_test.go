package verify

import (
	"math/rand"
	"testing"

	"countnet/internal/network"
)

// TestBatterySensitivityToMutations gauges the counting battery's
// ability to catch single-gate damage in a real construction: removing
// or reversing gates of the 8-wide bitonic network. Not every single
// mutation must be fatal (some reversals are absorbed downstream), but
// the battery must catch a solid majority — this is the test that keeps
// the verifier honest.
func TestBatterySensitivityToMutations(t *testing.T) {
	base := bitonic8()
	rng := rand.New(rand.NewSource(99))
	if err := IsCountingNetwork(base, rng); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	caughtRemoval := 0
	for i := 0; i < base.Size(); i++ {
		mut := verifyRemove(base, i)
		if IsCountingNetwork(mut, rng) != nil {
			caughtRemoval++
		}
	}
	if caughtRemoval < base.Size()*3/4 {
		t.Errorf("battery caught only %d/%d gate removals", caughtRemoval, base.Size())
	}

	caughtReversal := 0
	for i := 0; i < base.Size(); i++ {
		mut := verifyReverse(base, i)
		if IsCountingNetwork(mut, rng) != nil {
			caughtReversal++
		}
	}
	if caughtReversal < base.Size()/2 {
		t.Errorf("battery caught only %d/%d gate reversals", caughtReversal, base.Size())
	}
	t.Logf("sensitivity: %d/%d removals, %d/%d reversals caught",
		caughtRemoval, base.Size(), caughtReversal, base.Size())
}

// Thin aliases keeping the test body readable.
func verifyRemove(n *network.Network, i int) *network.Network  { return MutateRemoveGate(n, i) }
func verifyReverse(n *network.Network, i int) *network.Network { return MutateReverseGate(n, i) }
