package obs

import (
	"fmt"
	"strings"
	"time"
)

// RenderTable renders a snapshot as the per-layer contention /
// throughput table cmd/netmon shows live and countbench prints on
// exit. When prev is non-nil the token columns show the delta since
// prev and a rate over elapsed; a nil prev renders cumulative totals.
//
// Layer rows read in the paper's terms: each layer is one depth step,
// its gates are balancers, "max%" is the busiest balancer's share of
// the layer's tokens (1/gates == perfectly spread, 100% == one
// balancer soaking the whole layer — centralized-counter behaviour).
func RenderTable(prev *Snapshot, cur Snapshot, elapsed time.Duration) string {
	var b strings.Builder
	for _, g := range cur.Groups {
		var pg *GroupSnapshot
		if prev != nil {
			pg = prev.Group(g.Name)
		}
		fmt.Fprintf(&b, "== %s (%s) ==\n", g.Name, g.Kind)
		renderStatus(&b, g)
		renderCounters(&b, g, pg, elapsed)
		renderGauges(&b, g)
		renderHists(&b, g)
		renderLayers(&b, g, pg, elapsed)
		b.WriteByte('\n')
	}
	if len(cur.Groups) == 0 {
		b.WriteString("(no observed groups registered)\n")
	}
	return b.String()
}

func renderCounters(b *strings.Builder, g GroupSnapshot, pg *GroupSnapshot, elapsed time.Duration) {
	for _, c := range g.Counters {
		line := fmt.Sprintf("  %-14s %12d", c.Name, c.Value)
		if pg != nil {
			if d, ok := counterDelta(pg, c); ok {
				line += fmt.Sprintf("  (+%d, %s)", d, FormatRate(d, elapsed))
			}
		}
		b.WriteString(line + "\n")
	}
}

// renderStatus renders the string-valued gauges (active strategy,
// last switch reason) ahead of the numeric columns so netmon's table
// leads with what the engine is currently doing.
func renderStatus(b *strings.Builder, g GroupSnapshot) {
	for _, s := range g.Status {
		if s.Value == "" {
			continue
		}
		fmt.Fprintf(b, "  %-14s %s\n", s.Name, s.Value)
	}
}

func renderGauges(b *strings.Builder, g GroupSnapshot) {
	for _, c := range g.Gauges {
		fmt.Fprintf(b, "  %-14s %12d  (gauge)\n", c.Name, c.Value)
	}
}

// counterDelta returns the growth of counter c since the previous
// group snapshot; ok is false when the counter is new or went
// backwards (the engine was replaced between scrapes).
func counterDelta(pg *GroupSnapshot, c Metric) (int64, bool) {
	for _, p := range pg.Counters {
		if p.Name == c.Name {
			if d := c.Value - p.Value; d >= 0 {
				return d, true
			}
			return 0, false
		}
	}
	return 0, false
}

func renderHists(b *strings.Builder, g GroupSnapshot) {
	for _, h := range g.Hists {
		if h.Hist.Count == 0 {
			continue
		}
		s := h.Hist.Summary()
		fmt.Fprintf(b, "  %-14s n=%-10d mean=%-9.3g p50=%-9.3g p90=%-9.3g p99=%-9.3g max=%.3g\n",
			h.Name, s.N, s.Mean, s.P50, s.P90, s.P99, s.Max)
	}
}

func renderLayers(b *strings.Builder, g GroupSnapshot, pg *GroupSnapshot, elapsed time.Duration) {
	if len(g.Layers) == 0 {
		return
	}
	fmt.Fprintf(b, "  %-6s %-6s %-12s %-10s %-6s %s\n",
		"layer", "gates", "tokens", "rate", "max%", "contended")
	for i, l := range g.Layers {
		tokens, contended := l.Tokens, l.Contended
		rate := "-"
		if pg != nil && i < len(pg.Layers) && pg.Layers[i].Tokens <= l.Tokens {
			d := l.Tokens - pg.Layers[i].Tokens
			tokens = d
			contended = l.Contended - pg.Layers[i].Contended
			rate = FormatRate(d, elapsed)
		}
		maxShare := "-"
		if l.Tokens > 0 && l.Gates > 0 {
			maxShare = fmt.Sprintf("%.0f%%", 100*float64(l.MaxGateTokens)/float64(l.Tokens))
		}
		fmt.Fprintf(b, "  %-6d %-6d %-12d %-10s %-6s %d\n",
			l.Layer, l.Gates, tokens, rate, maxShare, contended)
	}
}
