// Package obs is the engine's sampling, allocation-free observability
// layer: padded per-gate/per-layer counters, lock-free power-of-two
// latency histograms, and snapshot exposition (expvar, Prometheus
// text, JSON over HTTP) for the concurrent counting substrates.
//
// The design contract is zero cost when disabled: instrumented hot
// paths hold a nil pointer to their obs state and pay exactly one
// nil-check per operation (pinned by AllocsPerRun==0 tests and the
// BenchmarkObsOverhead guard lane, recorded in BENCH_obs.json). When
// enabled, every recording primitive is wait-free or bounded-CAS and
// allocation-free, so profiles of an observed run still describe the
// engine rather than its instrumentation.
//
// Terminology follows the paper: a *gate* is a balancer, a *layer* is
// one depth step of the network; per-gate token counts are the
// distributed-contention evidence the paper's throughput argument
// rests on. See docs/OBSERVABILITY.md for how to read the metrics.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors Now. Using a monotonic base keeps differences immune
// to wall-clock steps.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start, the timebase
// of every latency histogram. Centralizing the clock read here keeps
// the sched-instrumented packages free of direct time calls.
//
//netvet:hotpath
func Now() int64 { return int64(time.Since(epoch)) }

// PaddedCount is a cache-line-isolated event counter: 128 bytes so two
// counters embedded side by side (or in adjacent slice elements) never
// share a 64-byte line and adjacent-line prefetching never couples
// neighbours — the same layout discipline as runner's gate state.
//
//netvet:padalign 128
type PaddedCount struct {
	v atomic.Int64
	_ [120]byte
}

// Add adds d to the counter.
//
//netvet:hotpath
func (c *PaddedCount) Add(d int64) { c.v.Add(d) }

// Inc adds one.
//
//netvet:hotpath
func (c *PaddedCount) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *PaddedCount) Load() int64 { return c.v.Load() }

// Metric is one named counter value in a snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// StatusMetric is one named string-valued state in a snapshot — the
// textual side of a gauge (e.g. the adaptive engine's active strategy
// name or its last switch reason). Strings are snapshot-only: hot
// paths record integer gauge values, and exposition resolves them to
// labels here.
type StatusMetric struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// HistMetric is one named histogram in a snapshot.
type HistMetric struct {
	Name string       `json:"name"`
	Hist HistSnapshot `json:"hist"`
}

// GateSnapshot is one gate's (balancer's) counters.
type GateSnapshot struct {
	Gate      int   `json:"gate"`
	Layer     int   `json:"layer"` // 1-based depth step
	Tokens    int64 `json:"tokens"`
	Contended int64 `json:"contended,omitempty"`
}

// LayerSnapshot aggregates one layer (depth step) of the network.
type LayerSnapshot struct {
	Layer     int   `json:"layer"`
	Gates     int   `json:"gates"`
	Tokens    int64 `json:"tokens"`
	Contended int64 `json:"contended,omitempty"`
	// MaxGateTokens is the busiest gate's token count — against
	// Tokens/Gates it shows how evenly the layer spreads its load,
	// the paper's distributed-contention claim made measurable.
	MaxGateTokens int64 `json:"max_gate_tokens"`
}

// GroupSnapshot is the full state of one observed engine instance.
// Counters are monotone event counts (rendered with deltas); Gauges
// are instantaneous levels (current strategy id, block size) and
// Status their string-valued companions.
type GroupSnapshot struct {
	Name     string          `json:"name"`
	Kind     string          `json:"kind"`             // network, counter, combining, pool, adaptive
	Origin   string          `json:"origin,omitempty"` // worker/process the group came from; set by TagOrigin, unioned by Merge
	Counters []Metric        `json:"counters,omitempty"`
	Gauges   []Metric        `json:"gauges,omitempty"`
	Status   []StatusMetric  `json:"status,omitempty"`
	Hists    []HistMetric    `json:"hists,omitempty"`
	Gates    []GateSnapshot  `json:"gates,omitempty"`
	Layers   []LayerSnapshot `json:"layers,omitempty"`
}

// Snapshot is a point-in-time copy of every registered group, sorted
// by group name.
type Snapshot struct {
	TakenUnixNano int64           `json:"taken_unix_nano"`
	Groups        []GroupSnapshot `json:"groups"`
}

// Group returns the named group, or nil.
func (s *Snapshot) Group(name string) *GroupSnapshot {
	for i := range s.Groups {
		if s.Groups[i].Name == name {
			return &s.Groups[i]
		}
	}
	return nil
}

// Source is anything that can contribute a group to a snapshot.
type Source interface {
	// GroupSnapshot copies the source's current state. Implementations
	// must be safe to call concurrently with recording.
	GroupSnapshot() GroupSnapshot
}

// Registry holds the observed engine instances of a process (or test).
// Registration replaces any previous source with the same group name,
// so benchmark sweeps that rebuild a counter per cell keep exactly one
// live group per lane instead of accreting dead ones.
type Registry struct {
	mu      sync.Mutex
	sources []Source
	names   []string
}

// Default is the process-wide registry; the public countnet surface
// and cmd/countbench register into it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds src under the given group name, replacing any earlier
// source registered with the same name.
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.names {
		if n == name {
			r.sources[i] = src
			return
		}
	}
	r.names = append(r.names, name)
	r.sources = append(r.sources, src)
}

// Snapshot copies every registered group, sorted by name. The group
// name recorded at Register time overrides the name the source
// reports, so one obs object may be registered under several lanes.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	sources := append([]Source(nil), r.sources...)
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	s := Snapshot{TakenUnixNano: time.Now().UnixNano()}
	for i, src := range sources {
		g := src.GroupSnapshot()
		g.Name = names[i]
		s.Groups = append(s.Groups, g)
	}
	sort.Slice(s.Groups, func(i, j int) bool { return s.Groups[i].Name < s.Groups[j].Name })
	return s
}
