package obs

import (
	"math"
	"sync"
	"testing"
	"unsafe"
)

func TestHistObserveBasics(t *testing.T) {
	h := NewHist()
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1106 || s.Min != 0 || s.Max != 1000 {
		t.Fatalf("snapshot: %+v", s)
	}
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 100 -> 7; 1000 -> 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 7: 1, 10: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if len(s.Buckets) != 11 {
		t.Errorf("buckets trimmed to %d, want 11", len(s.Buckets))
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative sample not clamped: %+v", s)
	}
}

func TestHistEmptySnapshot(t *testing.T) {
	s := NewHist().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	if q := s.Quantile(50); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if sum := s.Summary(); sum.N != 0 {
		t.Errorf("empty summary: %+v", sum)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	// 1000 identical samples: every quantile must equal the sample.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if q := s.Quantile(p); q != 100 {
			t.Errorf("uniform Quantile(%v) = %v, want 100", p, q)
		}
	}

	// Two spread buckets: the quantile estimate must stay within the
	// recorded watermark range and be monotone in p.
	h2 := NewHist()
	for i := 0; i < 90; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(100000)
	}
	s2 := h2.Snapshot()
	last := -1.0
	for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
		q := s2.Quantile(p)
		if q < float64(s2.Min) || q > float64(s2.Max) {
			t.Errorf("Quantile(%v) = %v outside [%d, %d]", p, q, s2.Min, s2.Max)
		}
		if q < last {
			t.Errorf("Quantile not monotone at p=%v: %v < %v", p, q, last)
		}
		last = q
	}
	if q := s2.Quantile(50); q > 16 { // rank 49.5 sits in the 10s bucket [8,15]
		t.Errorf("P50 = %v, want within the low bucket", q)
	}
	if q := s2.Quantile(99); q < 65536 { // rank 989.01 sits in the 100000s bucket
		t.Errorf("P99 = %v, want within the high bucket", q)
	}
}

func TestHistSummaryUsesStats(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Observe(64) // exact bucket boundary region
	}
	s := h.Snapshot().Summary()
	if s.N != 100 || s.Mean != 64 || s.Min != 64 || s.Max != 64 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 64 || s.P90 != 64 || s.P99 != 64 || s.Median != s.P50 {
		t.Fatalf("summary quantiles: %+v", s)
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(4) != 15 {
		t.Error("bucket bounds wrong")
	}
	if BucketUpper(histBuckets-1) != math.MaxInt64 {
		t.Error("last bucket must be unbounded")
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}()
	}
	// Snapshot concurrently with the writers (race detector coverage).
	for i := 0; i < 100; i++ {
		_ = h.Snapshot()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	if s.Min != 0 || s.Max != int64((workers-1)*1000+per-1) {
		t.Fatalf("watermarks: %+v", s)
	}
}

func TestHistObserveAllocFree(t *testing.T) {
	h := NewHist()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1234) }); n != 0 {
		t.Fatalf("Observe allocates %v per run", n)
	}
}

// TestPaddedLayouts pins the sizes the padalign directives promise, on
// the host platform too (padalign proves gc/amd64; this catches a
// drifted directive before CI's vet lane does).
func TestPaddedLayouts(t *testing.T) {
	if s := unsafe.Sizeof(Hist{}); s != 576 {
		t.Errorf("Hist is %d bytes, want 576", s)
	}
	if s := unsafe.Sizeof(PaddedCount{}); s != 128 {
		t.Errorf("PaddedCount is %d bytes, want 128", s)
	}
	if s := unsafe.Sizeof(GateObs{}); s != 128 {
		t.Errorf("GateObs is %d bytes, want 128", s)
	}
}
