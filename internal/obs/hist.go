package obs

import (
	"math"
	"math/bits"
	"sync/atomic"

	"countnet/internal/stats"
)

// histBuckets is the number of power-of-two buckets. Bucket i counts
// samples v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]
// (bucket 0 holds exactly v == 0); the last bucket additionally
// absorbs everything wider. 64 buckets cover the full int64 range.
const histBuckets = 64

// Hist is a lock-free histogram over non-negative int64 samples
// (latencies in nanoseconds, batch sizes, queue depths) with
// power-of-two bucket boundaries. Observe is wait-free on count, sum
// and the bucket counters; the min/max watermarks use a CAS loop whose
// retries are themselves counted (casRetries) — the only place the obs
// layer can spin, surfaced so it can never hide contention of its own.
//
// The struct is padded to a whole number of cache lines so adjacent
// histograms in a containing struct or slice never share a line.
//
//netvet:padalign 576
type Hist struct {
	count      atomic.Int64
	sum        atomic.Int64
	min        atomic.Int64 // valid only when count > 0; NewHist seeds MaxInt64
	max        atomic.Int64
	casRetries atomic.Int64
	buckets    [histBuckets]atomic.Int64
	_          [24]byte
}

// NewHist returns an empty histogram. Hist must be constructed through
// NewHist (the min watermark needs a non-zero seed).
func NewHist() *Hist {
	h := &Hist{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIdx maps a non-negative sample to its bucket.
func bucketIdx(v int64) int {
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i: the
// largest sample the bucket can hold (0 for bucket 0, 2^i - 1
// otherwise; the last bucket is unbounded and reports MaxInt64).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one sample. Negative samples are clamped to zero
// (they can only arise from clock anomalies). Safe for concurrent use;
// performs no allocation.
//
//netvet:hotpath
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
		h.casRetries.Add(1)
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
		h.casRetries.Add(1)
	}
}

// ObserveSince records Now() - start, the standard latency pattern:
//
//	start := obs.Now()
//	... phase ...
//	h.ObserveSince(start)
//
//netvet:hotpath
func (h *Hist) ObserveSince(start int64) { h.Observe(Now() - start) }

// HistSnapshot is an atomic-free copy of a histogram's state. Buckets
// are trimmed to the highest non-empty one.
type HistSnapshot struct {
	Count      int64   `json:"count"`
	Sum        int64   `json:"sum"`
	Min        int64   `json:"min"`
	Max        int64   `json:"max"`
	CASRetries int64   `json:"cas_retries,omitempty"`
	Buckets    []int64 `json:"buckets"` // Buckets[i] = samples with bucketIdx == i
}

// Snapshot copies the current state. Concurrent Observes may straddle
// the copy (count/sum/buckets are read independently); the result is a
// consistent-enough monitoring view, exact at quiescence.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:      h.count.Load(),
		Sum:        h.sum.Load(),
		CASRetries: h.casRetries.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	top := 0
	var b [histBuckets]int64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		if b[i] > 0 {
			top = i + 1
		}
	}
	s.Buckets = append([]int64(nil), b[:top]...)
	return s
}

// Quantile estimates the p-th percentile (0..100) from the bucket
// counts: the target rank's bucket is found by cumulative count and
// the value interpolated linearly inside the bucket's range, clamped
// to the recorded min/max watermarks. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(s.Count-1)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		// Bucket i spans ranks [cum, cum+n-1].
		if rank <= float64(cum+n-1) {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(BucketUpper(i))
			if i >= histBuckets-1 {
				hi = float64(s.Max)
			}
			frac := 0.0
			if n > 1 {
				frac = (rank - float64(cum)) / float64(n-1)
			}
			est := lo + (hi-lo)*frac
			if est < float64(s.Min) {
				est = float64(s.Min)
			}
			if est > float64(s.Max) {
				est = float64(s.Max)
			}
			return est
		}
		cum += n
	}
	return float64(s.Max)
}

// Summary renders the histogram as a stats.Summary, the same shape the
// benchmark harness reports: exact N/Mean/Min/Max, bucket-interpolated
// P50/P90/P99 (Stddev is not tracked and reads 0).
func (s HistSnapshot) Summary() stats.Summary {
	if s.Count == 0 {
		return stats.Summary{}
	}
	out := stats.Summary{
		N:    int(s.Count),
		Mean: float64(s.Sum) / float64(s.Count),
		Min:  float64(s.Min),
		Max:  float64(s.Max),
		P50:  s.Quantile(50),
		P90:  s.Quantile(90),
		P99:  s.Quantile(99),
	}
	out.Median = out.P50
	return out
}
