package obs

// Engine-specific observation state. Each engine (per-token counter,
// flat-combining counter, pool) owns one of these structs, nil when
// observation is off; the structs embed a NetObs for the underlying
// network so one group snapshot carries an engine's whole story —
// operation latency at the top, per-gate contention underneath.

// CounterObs observes a per-token network counter (NetworkCounter):
// operation count, Next latency, plus the underlying network's
// per-gate traffic.
type CounterObs struct {
	Net    *NetObs
	Ops    PaddedCount // values issued
	NextNs *Hist       // end-to-end Next latency (dispatch + walk + local counter)
}

// NewCounterObs builds counter obs over the network obs (which must
// not be nil; the counter owns its compiled network).
func NewCounterObs(name string, net *NetObs) *CounterObs {
	net.name = name
	net.kind = "counter"
	return &CounterObs{Net: net, NextNs: NewHist()}
}

// GroupSnapshot implements Source.
func (o *CounterObs) GroupSnapshot() GroupSnapshot {
	g := o.Net.GroupSnapshot()
	g.Counters = append(g.Counters, Metric{Name: "ops", Value: o.Ops.Load()})
	g.Hists = append([]HistMetric{{Name: "next_ns", Hist: o.NextNs.Snapshot()}}, g.Hists...)
	return g
}

// CombineObs observes a flat-combining counter: combiner passes, the
// spin retries of waiting handles (the front-end's contention signal),
// per-pass service latency and batch shape, plus the underlying
// network's per-gate traffic.
type CombineObs struct {
	Net         *NetObs
	Passes      PaddedCount // combiner passes executed
	SpinRetries PaddedCount // handle await loops that found the slot unserved
	PassNs      *Hist       // latency of one combine pass
	PassServed  *Hist       // values minted per pass
	PassQueue   *Hist       // pending slots drained per pass (queue depth)
}

// NewCombineObs builds combining obs over the network obs.
func NewCombineObs(name string, net *NetObs) *CombineObs {
	net.name = name
	net.kind = "combining"
	return &CombineObs{
		Net:        net,
		PassNs:     NewHist(),
		PassServed: NewHist(),
		PassQueue:  NewHist(),
	}
}

// GroupSnapshot implements Source.
func (o *CombineObs) GroupSnapshot() GroupSnapshot {
	g := o.Net.GroupSnapshot()
	g.Counters = append(g.Counters,
		Metric{Name: "passes", Value: o.Passes.Load()},
		Metric{Name: "spin_retries", Value: o.SpinRetries.Load()},
	)
	g.Hists = append([]HistMetric{
		{Name: "pass_ns", Hist: o.PassNs.Snapshot()},
		{Name: "pass_served", Hist: o.PassServed.Snapshot()},
		{Name: "pass_queue", Hist: o.PassQueue.Snapshot()},
	}, g.Hists...)
	return g
}

// PoolObs observes the producer/consumer pool: operation counts and
// how often a Get had to block for its item.
type PoolObs struct {
	name     string
	Puts     PaddedCount
	Gets     PaddedCount
	GetWaits PaddedCount // Gets that blocked before their item arrived
}

// NewPoolObs builds pool obs.
func NewPoolObs(name string) *PoolObs { return &PoolObs{name: name} }

// GroupSnapshot implements Source.
func (o *PoolObs) GroupSnapshot() GroupSnapshot {
	return GroupSnapshot{
		Name: o.name,
		Kind: "pool",
		Counters: []Metric{
			{Name: "puts", Value: o.Puts.Load()},
			{Name: "gets", Value: o.Gets.Load()},
			{Name: "get_waits", Value: o.GetWaits.Load()},
		},
	}
}
