package obs

import "sync/atomic"

// Engine-specific observation state. Each engine (per-token counter,
// flat-combining counter, pool) owns one of these structs, nil when
// observation is off; the structs embed a NetObs for the underlying
// network so one group snapshot carries an engine's whole story —
// operation latency at the top, per-gate contention underneath.

// CounterObs observes a per-token network counter (NetworkCounter):
// operation count, Next latency, plus the underlying network's
// per-gate traffic.
type CounterObs struct {
	Net    *NetObs
	Ops    PaddedCount // values issued
	NextNs *Hist       // end-to-end Next latency (dispatch + walk + local counter)
}

// NewCounterObs builds counter obs over the network obs (which must
// not be nil; the counter owns its compiled network).
func NewCounterObs(name string, net *NetObs) *CounterObs {
	net.name = name
	net.kind = "counter"
	return &CounterObs{Net: net, NextNs: NewHist()}
}

// GroupSnapshot implements Source.
func (o *CounterObs) GroupSnapshot() GroupSnapshot {
	g := o.Net.GroupSnapshot()
	g.Counters = append(g.Counters, Metric{Name: "ops", Value: o.Ops.Load()})
	g.Hists = append([]HistMetric{{Name: "next_ns", Hist: o.NextNs.Snapshot()}}, g.Hists...)
	return g
}

// CombineObs observes a flat-combining counter: combiner passes, the
// spin retries of waiting handles (the front-end's contention signal),
// per-pass service latency and batch shape, plus the underlying
// network's per-gate traffic.
type CombineObs struct {
	Net         *NetObs
	Passes      PaddedCount // combiner passes executed
	SpinRetries PaddedCount // handle await loops that found the slot unserved
	PassNs      *Hist       // latency of one combine pass
	PassServed  *Hist       // values minted per pass
	PassQueue   *Hist       // pending slots drained per pass (queue depth)
}

// NewCombineObs builds combining obs over the network obs.
func NewCombineObs(name string, net *NetObs) *CombineObs {
	net.name = name
	net.kind = "combining"
	return &CombineObs{
		Net:        net,
		PassNs:     NewHist(),
		PassServed: NewHist(),
		PassQueue:  NewHist(),
	}
}

// GroupSnapshot implements Source.
func (o *CombineObs) GroupSnapshot() GroupSnapshot {
	g := o.Net.GroupSnapshot()
	g.Counters = append(g.Counters,
		Metric{Name: "passes", Value: o.Passes.Load()},
		Metric{Name: "spin_retries", Value: o.SpinRetries.Load()},
	)
	g.Hists = append([]HistMetric{
		{Name: "pass_ns", Hist: o.PassNs.Snapshot()},
		{Name: "pass_served", Hist: o.PassServed.Snapshot()},
		{Name: "pass_queue", Hist: o.PassQueue.Snapshot()},
	}, g.Hists...)
	return g
}

// AdaptiveObs observes the adaptive counter front-end: which engine is
// active, how often and why it switched, the governor's load estimate,
// and the probe latencies the estimate rests on. The draw fast path
// writes nothing here — issued-value totals come from the counter's
// own per-handle slots via OpsFn, so observation stays allocation- and
// contention-free while the strategy gauges track the governor.
type AdaptiveObs struct {
	name string
	// OpsFn reports total values issued (sum of per-handle slot
	// counters); set by the owning counter when obs is enabled.
	OpsFn func() int64
	// StrategyFn resolves the current engine id to its name; set by
	// the owning counter (keeps obs free of an engine-name table).
	StrategyFn func(int64) string

	Strategy  atomic.Int64 // active engine id (gauge)
	Switches  PaddedCount  // completed strategy transitions
	LoadMilli atomic.Int64 // governor load estimate ×1000 (gauge)
	Block     atomic.Int64 // current combining prefetch block (gauge)
	ProbeNs   *Hist        // governor probe: per-value draw latency

	reason atomic.Pointer[string] // last switch reason
}

// NewAdaptiveObs builds adaptive obs.
func NewAdaptiveObs(name string) *AdaptiveObs {
	return &AdaptiveObs{name: name, ProbeNs: NewHist()}
}

// SetReason records why the last switch happened.
func (o *AdaptiveObs) SetReason(r string) { o.reason.Store(&r) }

// Reason returns the last switch reason, or "" before any switch.
func (o *AdaptiveObs) Reason() string {
	if p := o.reason.Load(); p != nil {
		return *p
	}
	return ""
}

// GroupSnapshot implements Source.
func (o *AdaptiveObs) GroupSnapshot() GroupSnapshot {
	g := GroupSnapshot{
		Name: o.name,
		Kind: "adaptive",
		Counters: []Metric{
			{Name: "switches", Value: o.Switches.Load()},
		},
		Gauges: []Metric{
			{Name: "strategy", Value: o.Strategy.Load()},
			{Name: "est_load_milli", Value: o.LoadMilli.Load()},
			{Name: "combine_block", Value: o.Block.Load()},
		},
		Hists: []HistMetric{{Name: "probe_ns", Hist: o.ProbeNs.Snapshot()}},
	}
	if o.OpsFn != nil {
		g.Counters = append([]Metric{{Name: "ops", Value: o.OpsFn()}}, g.Counters...)
	}
	strategy := ""
	if o.StrategyFn != nil {
		strategy = o.StrategyFn(o.Strategy.Load())
	}
	g.Status = []StatusMetric{
		{Name: "strategy", Value: strategy},
		{Name: "last_switch_reason", Value: o.Reason()},
	}
	return g
}

// PoolObs observes the producer/consumer pool: operation counts and
// how often a Get had to block for its item.
type PoolObs struct {
	name     string
	Puts     PaddedCount
	Gets     PaddedCount
	GetWaits PaddedCount // Gets that blocked before their item arrived
}

// NewPoolObs builds pool obs.
func NewPoolObs(name string) *PoolObs { return &PoolObs{name: name} }

// GroupSnapshot implements Source.
func (o *PoolObs) GroupSnapshot() GroupSnapshot {
	return GroupSnapshot{
		Name: o.name,
		Kind: "pool",
		Counters: []Metric{
			{Name: "puts", Value: o.Puts.Load()},
			{Name: "gets", Value: o.Gets.Load()},
			{Name: "get_waits", Value: o.GetWaits.Load()},
		},
	}
}
