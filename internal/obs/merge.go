package obs

// Snapshot merging: the fleet aggregation primitive.
//
// One process's Snapshot describes one registry; a fleet run (N
// harness workers today, N countd nodes tomorrow) produces N of them.
// Merge folds any two into the snapshot a single process would have
// produced had it done all the work: counters, gauges, gate/layer
// token counts, and histogram buckets sum; watermarks take min/max;
// string-valued fields (Kind, Origin, Status values) take set unions.
//
// Merge is a commutative, associative monoid operation with the empty
// snapshot as identity — proven by property tests and FuzzSnapshotMerge
// in merge_test.go. That algebra is the point: the runner can fold
// worker snapshots in arrival order, netmon -fleet can fold endpoint
// scrapes in poll order, and a future cmd/countd tier can fold
// sub-aggregates, all producing the same fleet view. Output is always
// in canonical form (groups and metrics sorted, histogram buckets
// trimmed, union strings sorted), so equal aggregates are deeply equal.

import (
	"sort"
	"strings"
)

// Merge combines two snapshots into one fleet snapshot. Either input
// may be nil or empty (the identity); inputs are not modified.
//
// Per same-named group: Counters, Gauges, gate/layer Tokens and
// Contended sum; histogram Count/Sum/CASRetries/buckets sum while
// Min/Max merge as watermarks over the inputs that actually saw
// samples; LayerSnapshot.MaxGateTokens is recomputed from the merged
// per-gate sums whenever the merged group retains gates for that
// layer (the exact busiest-gate figure), falling back to max of the
// inputs' values otherwise; Kind, Origin and Status values union.
// TakenUnixNano is the latest of the two.
func Merge(a, b *Snapshot) *Snapshot {
	acc := newSnapAcc()
	acc.add(a)
	acc.add(b)
	return acc.render()
}

// MergeAll folds any number of snapshots (the runner's per-phase fleet
// fold and netmon's endpoint fold). Returns the canonical empty
// snapshot when given nothing.
func MergeAll(snaps ...*Snapshot) *Snapshot {
	acc := newSnapAcc()
	for _, s := range snaps {
		acc.add(s)
	}
	return acc.render()
}

// TagOrigin stamps origin onto every group that does not already carry
// one — the worker calls this on its own snapshot before shipping it,
// so the merged fleet view can say which processes fed each group.
func (s *Snapshot) TagOrigin(origin string) {
	if s == nil {
		return
	}
	for i := range s.Groups {
		if s.Groups[i].Origin == "" {
			s.Groups[i].Origin = origin
		}
	}
}

// snapAcc accumulates any number of snapshots before rendering one
// canonical result.
type snapAcc struct {
	taken  int64
	groups map[string]*groupAcc
}

type groupAcc struct {
	kinds    map[string]bool
	origins  map[string]bool
	counters map[string]int64
	gauges   map[string]int64
	status   map[string]map[string]bool
	hists    map[string]*histAcc
	gates    map[int]*gateAcc
	layers   map[int]*layerAcc
}

type histAcc struct {
	count, sum, casRetries int64
	sampled                bool // any input had Count > 0
	min, max               int64
	buckets                []int64
}

type gateAcc struct {
	layer             int
	tokens, contended int64
}

type layerAcc struct {
	gates             int
	tokens, contended int64
	maxGate           int64 // fallback when no merged gate maps to the layer
}

func newSnapAcc() *snapAcc {
	return &snapAcc{groups: map[string]*groupAcc{}}
}

func (sa *snapAcc) add(s *Snapshot) {
	if s == nil {
		return
	}
	if s.TakenUnixNano > sa.taken {
		sa.taken = s.TakenUnixNano
	}
	for i := range s.Groups {
		sa.addGroup(&s.Groups[i])
	}
}

func (sa *snapAcc) addGroup(g *GroupSnapshot) {
	acc := sa.groups[g.Name]
	if acc == nil {
		acc = &groupAcc{
			kinds:    map[string]bool{},
			origins:  map[string]bool{},
			counters: map[string]int64{},
			gauges:   map[string]int64{},
			status:   map[string]map[string]bool{},
			hists:    map[string]*histAcc{},
			gates:    map[int]*gateAcc{},
			layers:   map[int]*layerAcc{},
		}
		sa.groups[g.Name] = acc
	}
	unionInto(acc.kinds, g.Kind)
	unionInto(acc.origins, g.Origin)
	for _, c := range g.Counters {
		acc.counters[c.Name] += c.Value
	}
	for _, c := range g.Gauges {
		acc.gauges[c.Name] += c.Value
	}
	for _, st := range g.Status {
		set := acc.status[st.Name]
		if set == nil {
			set = map[string]bool{}
			acc.status[st.Name] = set
		}
		unionInto(set, st.Value)
	}
	for _, h := range g.Hists {
		ha := acc.hists[h.Name]
		if ha == nil {
			ha = &histAcc{}
			acc.hists[h.Name] = ha
		}
		ha.add(h.Hist)
	}
	for _, gt := range g.Gates {
		ga := acc.gates[gt.Gate]
		if ga == nil {
			ga = &gateAcc{layer: gt.Layer}
			acc.gates[gt.Gate] = ga
		}
		if gt.Layer > ga.layer {
			ga.layer = gt.Layer
		}
		ga.tokens += gt.Tokens
		ga.contended += gt.Contended
	}
	for _, l := range g.Layers {
		la := acc.layers[l.Layer]
		if la == nil {
			la = &layerAcc{}
			acc.layers[l.Layer] = la
		}
		if l.Gates > la.gates {
			la.gates = l.Gates
		}
		la.tokens += l.Tokens
		la.contended += l.Contended
		if l.MaxGateTokens > la.maxGate {
			la.maxGate = l.MaxGateTokens
		}
	}
}

func (ha *histAcc) add(h HistSnapshot) {
	ha.count += h.Count
	ha.sum += h.Sum
	ha.casRetries += h.CASRetries
	if h.Count > 0 {
		if !ha.sampled || h.Min < ha.min {
			ha.min = h.Min
		}
		if !ha.sampled || h.Max > ha.max {
			ha.max = h.Max
		}
		ha.sampled = true
	}
	for len(ha.buckets) < len(h.Buckets) {
		ha.buckets = append(ha.buckets, 0)
	}
	for i, n := range h.Buckets {
		ha.buckets[i] += n
	}
}

// unionInto splits a comma-joined value set and adds its atoms.
func unionInto(set map[string]bool, v string) {
	for _, part := range strings.Split(v, ",") {
		if part != "" {
			set[part] = true
		}
	}
}

// joinSet renders a value set canonically: sorted atoms, comma-joined.
func joinSet(set map[string]bool) string {
	if len(set) == 0 {
		return ""
	}
	atoms := make([]string, 0, len(set))
	for a := range set {
		atoms = append(atoms, a)
	}
	sort.Strings(atoms)
	return strings.Join(atoms, ",")
}

func (sa *snapAcc) render() *Snapshot {
	out := &Snapshot{TakenUnixNano: sa.taken}
	names := make([]string, 0, len(sa.groups))
	for n := range sa.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Groups = append(out.Groups, sa.groups[n].render(n))
	}
	return out
}

func (acc *groupAcc) render(name string) GroupSnapshot {
	g := GroupSnapshot{
		Name:     name,
		Kind:     joinSet(acc.kinds),
		Origin:   joinSet(acc.origins),
		Counters: renderMetrics(acc.counters),
		Gauges:   renderMetrics(acc.gauges),
	}
	statusNames := sortedKeys(acc.status)
	for _, n := range statusNames {
		v := joinSet(acc.status[n])
		if v == "" {
			continue
		}
		g.Status = append(g.Status, StatusMetric{Name: n, Value: v})
	}
	histNames := sortedKeys(acc.hists)
	for _, n := range histNames {
		g.Hists = append(g.Hists, HistMetric{Name: n, Hist: acc.hists[n].render()})
	}
	gateIdx := sortedKeys(acc.gates)
	// maxByLayer tracks the busiest merged gate per layer: exact
	// cross-worker busiest-gate figures, since per-gate tokens summed
	// before the max is taken.
	maxByLayer := map[int]int64{}
	for _, i := range gateIdx {
		ga := acc.gates[i]
		g.Gates = append(g.Gates, GateSnapshot{Gate: i, Layer: ga.layer, Tokens: ga.tokens, Contended: ga.contended})
		if m, ok := maxByLayer[ga.layer]; !ok || ga.tokens > m {
			maxByLayer[ga.layer] = ga.tokens
		}
	}
	layerIdx := sortedKeys(acc.layers)
	for _, l := range layerIdx {
		la := acc.layers[l]
		mgt := la.maxGate
		if m, ok := maxByLayer[l]; ok {
			mgt = m
		}
		g.Layers = append(g.Layers, LayerSnapshot{
			Layer: l, Gates: la.gates, Tokens: la.tokens, Contended: la.contended,
			MaxGateTokens: mgt,
		})
	}
	return g
}

func (ha *histAcc) render() HistSnapshot {
	h := HistSnapshot{Count: ha.count, Sum: ha.sum, CASRetries: ha.casRetries}
	if ha.sampled {
		h.Min, h.Max = ha.min, ha.max
	}
	top := 0
	for i, n := range ha.buckets {
		if n != 0 {
			top = i + 1
		}
	}
	h.Buckets = append([]int64(nil), ha.buckets[:top]...)
	return h
}

func renderMetrics(m map[string]int64) []Metric {
	if len(m) == 0 {
		return nil
	}
	out := make([]Metric, 0, len(m))
	for _, n := range sortedKeys(m) {
		out = append(out, Metric{Name: n, Value: m[n]})
	}
	return out
}

// sortedKeys returns a map's keys in sorted order (string or int).
func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
