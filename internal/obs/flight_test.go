package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFlightRecordDumpOrdered(t *testing.T) {
	f := NewFlightRecorder(256)
	for i := int64(0); i < 100; i++ {
		f.Record(FlightBlockLease, i*64, 64)
	}
	events := f.Dump()
	if len(events) != 100 {
		t.Fatalf("Dump returned %d events, want 100", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d, want %d (dump must be seq-ordered and gap-free pre-wrap)", i, e.Seq, i)
		}
		if e.Kind != FlightBlockLease || e.A != int64(i)*64 || e.B != 64 {
			t.Fatalf("event %d payload mismatch: %+v", i, e)
		}
		if e.TS <= 0 {
			t.Fatalf("event %d has non-positive timestamp %d", i, e.TS)
		}
	}
	if got := f.NextSeq(); got != 100 {
		t.Fatalf("NextSeq = %d, want 100", got)
	}
}

func TestFlightWraparoundKeepsTail(t *testing.T) {
	f := NewFlightRecorder(64)
	capacity := f.Cap()
	total := capacity * 4
	for i := 0; i < total; i++ {
		f.Record(FlightPhaseStart, int64(i), 0)
	}
	events := f.Dump()
	if len(events) == 0 || len(events) > capacity {
		t.Fatalf("Dump after wrap returned %d events, want 1..%d", len(events), capacity)
	}
	// Single-goroutine writes land on one shard, so the retained window
	// is that shard's ring: exactly the last ring-size events.
	last := events[len(events)-1]
	if last.Seq != uint64(total-1) {
		t.Fatalf("last event seq = %d, want %d (newest event must survive wrap)", last.Seq, total-1)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("dump not strictly seq-ordered at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestFlightDumpSince(t *testing.T) {
	f := NewFlightRecorder(256)
	for i := int64(0); i < 20; i++ {
		f.Record(FlightBarrierArrive, i, 7)
	}
	mid := f.NextSeq()
	for i := int64(20); i < 30; i++ {
		f.Record(FlightBarrierArrive, i, 7)
	}
	tail := f.DumpSince(mid)
	if len(tail) != 10 {
		t.Fatalf("DumpSince(%d) returned %d events, want 10", mid, len(tail))
	}
	for _, e := range tail {
		if e.Seq < mid {
			t.Fatalf("DumpSince(%d) leaked earlier event seq=%d", mid, e.Seq)
		}
	}
}

func TestFlightNilRecorderSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightOracleViolation, 1, 2) // must not panic
	if got := f.Dump(); got != nil {
		t.Fatalf("nil Dump = %v, want nil", got)
	}
	if got := f.DumpSince(5); got != nil {
		t.Fatalf("nil DumpSince = %v, want nil", got)
	}
	if f.NextSeq() != 0 || f.Cap() != 0 {
		t.Fatal("nil recorder must report zero NextSeq and Cap")
	}
}

func TestFlightDefaultLifecycle(t *testing.T) {
	DisableFlight()
	t.Cleanup(DisableFlight)
	RecordFlight(FlightPhaseStart, 0, 0) // off: one nil-check, no-op
	if DefaultFlight() != nil {
		t.Fatal("DefaultFlight non-nil before EnableFlight")
	}
	f := EnableFlight(128)
	if DefaultFlight() != f {
		t.Fatal("EnableFlight did not install the returned recorder")
	}
	RecordFlight(FlightPhaseStart, 3, 4)
	events := f.Dump()
	if len(events) != 1 || events[0].Kind != FlightPhaseStart || events[0].A != 3 {
		t.Fatalf("default recorder missed RecordFlight event: %+v", events)
	}
	DisableFlight()
	if DefaultFlight() != nil {
		t.Fatal("DisableFlight left a recorder installed")
	}
}

func TestFlightConcurrentRecordAndDump(t *testing.T) {
	f := NewFlightRecorder(1024)
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader: dumps must stay ordered and untorn
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			events := f.Dump()
			for i := 1; i < len(events); i++ {
				if events[i].Seq <= events[i-1].Seq {
					t.Errorf("concurrent dump out of order at %d", i)
					return
				}
			}
			for _, e := range events {
				if e.Kind != FlightBlockLease || e.B != e.A+1 {
					t.Errorf("torn event read: %+v", e)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				a := int64(w*perWriter + i)
				f.Record(FlightBlockLease, a, a+1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()
	if got := f.NextSeq(); got != writers*perWriter {
		t.Fatalf("NextSeq = %d, want %d", got, writers*perWriter)
	}
}

func TestFlightRecordAllocFree(t *testing.T) {
	f := NewFlightRecorder(256)
	if allocs := testing.AllocsPerRun(1000, func() {
		f.Record(FlightEpochSeal, 1, 2)
	}); allocs != 0 {
		t.Fatalf("Record (on) allocates %v per op, want 0", allocs)
	}
	var off *FlightRecorder
	if allocs := testing.AllocsPerRun(1000, func() {
		off.Record(FlightEpochSeal, 1, 2)
	}); allocs != 0 {
		t.Fatalf("Record (nil) allocates %v per op, want 0", allocs)
	}
	DisableFlight()
	if allocs := testing.AllocsPerRun(1000, func() {
		RecordFlight(FlightEpochSeal, 1, 2)
	}); allocs != 0 {
		t.Fatalf("RecordFlight (off) allocates %v per op, want 0", allocs)
	}
	EnableFlight(256)
	t.Cleanup(DisableFlight)
	if allocs := testing.AllocsPerRun(1000, func() {
		RecordFlight(FlightEpochSeal, 1, 2)
	}); allocs != 0 {
		t.Fatalf("RecordFlight (on) allocates %v per op, want 0", allocs)
	}
}

func TestFlightKindTextRoundTrip(t *testing.T) {
	kinds := []FlightKind{
		FlightStrategySwitch, FlightEpochSeal, FlightEpochDrain,
		FlightEpochFence, FlightEpochInstall, FlightBarrierArrive,
		FlightBlockLease, FlightPhaseStart, FlightPhaseEnd,
		FlightOracleViolation, FlightKind(200),
	}
	for _, k := range kinds {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", k, err)
		}
		var back FlightKind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != k {
			t.Fatalf("kind %d round-tripped to %d via %q", k, back, text)
		}
	}
	var bad FlightKind
	if err := bad.UnmarshalText([]byte("not-a-kind")); err == nil {
		t.Fatal("UnmarshalText accepted junk")
	}
	// JSON round trip through FlightEvent, the wire shape flight dumps use.
	e := FlightEvent{Seq: 9, TS: 123, Kind: FlightEpochFence, A: -1, B: 5}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got FlightEvent
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("event round-trip: got %+v want %+v", got, e)
	}
}

func TestFlightHTTPHandler(t *testing.T) {
	DisableFlight()
	t.Cleanup(DisableFlight)
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var resp flightDump
	getJSON(t, srv.URL+"/debug/flight", &resp)
	if resp.Enabled || len(resp.Events) != 0 {
		t.Fatalf("disabled recorder should report enabled=false, no events: %+v", resp)
	}

	f := EnableFlight(128)
	f.Record(FlightPhaseStart, 0, 2)
	f.Record(FlightPhaseEnd, 0, 100)
	getJSON(t, srv.URL+"/debug/flight", &resp)
	if !resp.Enabled || len(resp.Events) != 2 || resp.NextSeq != 2 {
		t.Fatalf("enabled dump wrong: %+v", resp)
	}
	if resp.Events[0].Kind != FlightPhaseStart || resp.Events[1].Kind != FlightPhaseEnd {
		t.Fatalf("events out of order: %+v", resp.Events)
	}

	getJSON(t, srv.URL+"/debug/flight?since=1", &resp)
	if len(resp.Events) != 1 || resp.Events[0].Seq != 1 {
		t.Fatalf("since=1 dump wrong: %+v", resp)
	}
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
