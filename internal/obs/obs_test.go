package obs

import (
	"strings"
	"testing"
	"time"
)

func testNetObs() *NetObs {
	// Four gates on two layers: gates 0,1 on layer 1; gates 2,3 on 2.
	return NewNetObs("test-net", []int32{1, 1, 2, 2})
}

func TestNetObsSnapshot(t *testing.T) {
	o := testNetObs()
	o.GateToken(0)
	o.GateToken(0)
	o.GateTokens(2, 5)
	o.GateContended(3)
	o.TraverseNs.Observe(100)

	g := o.GroupSnapshot()
	if g.Name != "test-net" || g.Kind != "network" {
		t.Fatalf("group header: %+v", g)
	}
	if len(g.Gates) != 4 || g.Gates[0].Tokens != 2 || g.Gates[2].Tokens != 5 || g.Gates[3].Contended != 1 {
		t.Fatalf("gates: %+v", g.Gates)
	}
	if len(g.Layers) != 2 {
		t.Fatalf("layers: %+v", g.Layers)
	}
	l1, l2 := g.Layers[0], g.Layers[1]
	if l1.Layer != 1 || l1.Gates != 2 || l1.Tokens != 2 || l1.MaxGateTokens != 2 {
		t.Errorf("layer 1: %+v", l1)
	}
	if l2.Layer != 2 || l2.Gates != 2 || l2.Tokens != 5 || l2.Contended != 1 || l2.MaxGateTokens != 5 {
		t.Errorf("layer 2: %+v", l2)
	}
	if len(g.Hists) != 3 || g.Hists[0].Name != "traverse_ns" || g.Hists[0].Hist.Count != 1 {
		t.Errorf("hists: %+v", g.Hists)
	}
}

func TestCounterObsSnapshot(t *testing.T) {
	o := NewCounterObs("ctr", testNetObs())
	o.Ops.Add(3)
	o.NextNs.Observe(50)
	g := o.GroupSnapshot()
	if g.Kind != "counter" || g.Name != "ctr" {
		t.Fatalf("group header: %+v", g)
	}
	if len(g.Counters) != 1 || g.Counters[0].Name != "ops" || g.Counters[0].Value != 3 {
		t.Fatalf("counters: %+v", g.Counters)
	}
	if g.Hists[0].Name != "next_ns" || g.Hists[0].Hist.Count != 1 {
		t.Fatalf("next_ns must lead the hists: %+v", g.Hists)
	}
}

func TestCombineObsSnapshot(t *testing.T) {
	o := NewCombineObs("cmb", testNetObs())
	o.Passes.Inc()
	o.SpinRetries.Add(7)
	o.PassServed.Observe(16)
	o.PassQueue.Observe(3)
	g := o.GroupSnapshot()
	if g.Kind != "combining" {
		t.Fatalf("kind: %q", g.Kind)
	}
	byName := map[string]int64{}
	for _, c := range g.Counters {
		byName[c.Name] = c.Value
	}
	if byName["passes"] != 1 || byName["spin_retries"] != 7 {
		t.Fatalf("counters: %+v", g.Counters)
	}
	names := make([]string, len(g.Hists))
	for i, h := range g.Hists {
		names[i] = h.Name
	}
	want := "pass_ns pass_served pass_queue traverse_ns batch_ns batch_tokens"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("hist order = %q, want %q", got, want)
	}
}

func TestPoolObsSnapshot(t *testing.T) {
	o := NewPoolObs("pool")
	o.Puts.Add(2)
	o.Gets.Inc()
	o.GetWaits.Inc()
	g := o.GroupSnapshot()
	if g.Kind != "pool" || len(g.Counters) != 3 {
		t.Fatalf("pool group: %+v", g)
	}
}

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	a, b := NewPoolObs("x"), NewPoolObs("x")
	b.Puts.Add(9)
	r.Register("lane", a)
	r.Register("lane", b)
	r.Register("other", NewPoolObs("y"))
	s := r.Snapshot()
	if len(s.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (replace, not append)", len(s.Groups))
	}
	g := s.Group("lane")
	if g == nil || g.Counters[0].Value != 9 {
		t.Fatalf("replacement not visible: %+v", s.Groups)
	}
	// Registration name overrides the source's own name, and groups
	// are sorted.
	if s.Groups[0].Name != "lane" || s.Groups[1].Name != "other" {
		t.Fatalf("names/order: %+v", s.Groups)
	}
	if s.TakenUnixNano == 0 {
		t.Error("snapshot must be timestamped")
	}
}

func TestSnapshotGroupMissing(t *testing.T) {
	s := NewRegistry().Snapshot()
	if s.Group("nope") != nil {
		t.Error("missing group must be nil")
	}
}

func TestNow(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	if b := Now(); b <= a {
		t.Errorf("Now not monotone: %d then %d", a, b)
	}
}

func TestDoRunsWithLabels(t *testing.T) {
	ran := false
	Do("L(4,4)", "traverse", func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f")
	}
}

func TestRegionNoTrace(t *testing.T) {
	r := Region("combine-pass")
	if r == nil {
		t.Fatal("Region returned nil")
	}
	r.End()
}

func TestRenderTable(t *testing.T) {
	r := NewRegistry()
	n := testNetObs()
	n.GateToken(0)
	n.GateTokens(2, 4)
	n.TraverseNs.Observe(120)
	r.Register("net-lane", n)
	cur := r.Snapshot()

	out := RenderTable(nil, cur, 0)
	for _, want := range []string{"net-lane", "layer", "gates", "traverse_ns", "max%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	// Delta rendering: second snapshot after more traffic.
	n.GateTokens(2, 6)
	next := r.Snapshot()
	out = RenderTable(&cur, next, time.Second)
	if !strings.Contains(out, "6") {
		t.Errorf("delta table missing per-interval tokens:\n%s", out)
	}

	if out := RenderTable(nil, Snapshot{}, 0); !strings.Contains(out, "no observed groups") {
		t.Errorf("empty table: %q", out)
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(2_000_000, time.Second); got != "2.00M/s" {
		t.Errorf("rate = %q", got)
	}
	if got := FormatRate(1500, time.Second); got != "1.5k/s" {
		t.Errorf("rate = %q", got)
	}
	if got := FormatRate(5, time.Second); got != "5/s" {
		t.Errorf("rate = %q", got)
	}
	if got := FormatRate(5, 0); got != "-" {
		t.Errorf("zero-elapsed rate = %q", got)
	}
}
