package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// canon normalizes a snapshot by merging it with the identity: all
// property tests compare canonical forms, which Merge always emits.
func canon(s *Snapshot) *Snapshot { return Merge(s, &Snapshot{}) }

// genSnapshot builds a pseudo-random but semantically valid snapshot:
// group names drawn from a small pool (so merges overlap), histogram
// counts consistent with their buckets, min <= max when sampled.
func genSnapshot(r *rand.Rand) *Snapshot {
	groupNames := []string{"adaptive", "net", "worker", "combining"}
	kinds := []string{"adaptive", "network", "counter", "combining"}
	s := &Snapshot{TakenUnixNano: r.Int63n(1 << 40)}
	for i := 0; i < 1+r.Intn(3); i++ {
		g := GroupSnapshot{
			Name: groupNames[r.Intn(len(groupNames))],
			Kind: kinds[r.Intn(len(kinds))],
		}
		if r.Intn(2) == 0 {
			g.Origin = []string{"w1", "w2", "w3"}[r.Intn(3)]
		}
		for j := 0; j < r.Intn(4); j++ {
			g.Counters = append(g.Counters, Metric{Name: []string{"ops", "draws", "switches"}[r.Intn(3)], Value: r.Int63n(1e6)})
		}
		for j := 0; j < r.Intn(3); j++ {
			g.Gauges = append(g.Gauges, Metric{Name: []string{"load", "block"}[r.Intn(2)], Value: r.Int63n(1e3)})
		}
		if r.Intn(2) == 0 {
			g.Status = append(g.Status, StatusMetric{Name: "strategy", Value: []string{"atomic", "network", "combining"}[r.Intn(3)]})
		}
		for j := 0; j < r.Intn(3); j++ {
			g.Hists = append(g.Hists, HistMetric{Name: []string{"draw_ns", "probe_ns"}[r.Intn(2)], Hist: genHist(r)})
		}
		if r.Intn(2) == 0 {
			layers := 1 + r.Intn(3)
			for gi := 0; gi < 2*layers; gi++ {
				g.Gates = append(g.Gates, GateSnapshot{
					Gate: gi, Layer: gi/2 + 1,
					Tokens: r.Int63n(1e4), Contended: r.Int63n(100),
				})
			}
			for l := 1; l <= layers; l++ {
				var tok, cont, mgt int64
				for _, gt := range g.Gates {
					if gt.Layer != l {
						continue
					}
					tok += gt.Tokens
					cont += gt.Contended
					if gt.Tokens > mgt {
						mgt = gt.Tokens
					}
				}
				g.Layers = append(g.Layers, LayerSnapshot{Layer: l, Gates: 2, Tokens: tok, Contended: cont, MaxGateTokens: mgt})
			}
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

func genHist(r *rand.Rand) HistSnapshot {
	h := HistSnapshot{}
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		c := r.Int63n(100)
		h.Buckets = append(h.Buckets, c)
		h.Count += c
	}
	if h.Count > 0 {
		h.Min = r.Int63n(100)
		h.Max = h.Min + r.Int63n(1000)
		h.Sum = h.Count * (h.Min + h.Max) / 2
		h.CASRetries = r.Int63n(10)
	}
	return h
}

func checkMergeProperties(t *testing.T, a, b, c *Snapshot) {
	t.Helper()
	// Commutativity: a+b == b+a.
	ab, ba := Merge(a, b), Merge(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("Merge not commutative:\n a+b=%+v\n b+a=%+v", ab, ba)
	}
	// Associativity: (a+b)+c == a+(b+c).
	left, right := Merge(ab, c), Merge(a, Merge(b, c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("Merge not associative:\n (a+b)+c=%+v\n a+(b+c)=%+v", left, right)
	}
	// Identity: canonical a merged with empty is unchanged (both ways).
	ca := canon(a)
	if got := Merge(ca, &Snapshot{}); !reflect.DeepEqual(got, ca) {
		t.Fatalf("empty is not right identity:\n got=%+v\n want=%+v", got, ca)
	}
	if got := Merge(&Snapshot{}, ca); !reflect.DeepEqual(got, ca) {
		t.Fatalf("empty is not left identity:\n got=%+v\n want=%+v", got, ca)
	}
	// nil behaves as the identity too.
	if got := Merge(ca, nil); !reflect.DeepEqual(got, ca) {
		t.Fatalf("nil is not identity: got=%+v want=%+v", got, ca)
	}
}

func TestMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		checkMergeProperties(t, genSnapshot(r), genSnapshot(r), genSnapshot(r))
	}
}

func TestMergeIdempotentCanonicalization(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s := genSnapshot(r)
		c1 := canon(s)
		c2 := canon(c1)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("canonicalization not idempotent:\n c1=%+v\n c2=%+v", c1, c2)
		}
	}
}

func TestMergeSumsAndWatermarks(t *testing.T) {
	a := &Snapshot{TakenUnixNano: 100, Groups: []GroupSnapshot{{
		Name: "adaptive", Kind: "adaptive", Origin: "w1",
		Counters: []Metric{{Name: "ops", Value: 10}},
		Gauges:   []Metric{{Name: "load", Value: 3}},
		Status:   []StatusMetric{{Name: "strategy", Value: "atomic"}},
		Hists: []HistMetric{{Name: "draw_ns", Hist: HistSnapshot{
			Count: 2, Sum: 30, Min: 10, Max: 20, Buckets: []int64{0, 0, 0, 0, 2},
		}}},
		Gates:  []GateSnapshot{{Gate: 0, Layer: 1, Tokens: 5}, {Gate: 1, Layer: 1, Tokens: 3}},
		Layers: []LayerSnapshot{{Layer: 1, Gates: 2, Tokens: 8, MaxGateTokens: 5}},
	}}}
	b := &Snapshot{TakenUnixNano: 200, Groups: []GroupSnapshot{{
		Name: "adaptive", Kind: "adaptive", Origin: "w2",
		Counters: []Metric{{Name: "ops", Value: 7}, {Name: "draws", Value: 1}},
		Gauges:   []Metric{{Name: "load", Value: 4}},
		Status:   []StatusMetric{{Name: "strategy", Value: "combining"}},
		Hists: []HistMetric{{Name: "draw_ns", Hist: HistSnapshot{
			Count: 1, Sum: 5, Min: 5, Max: 5, Buckets: []int64{0, 0, 1},
		}}},
		Gates:  []GateSnapshot{{Gate: 0, Layer: 1, Tokens: 2}, {Gate: 1, Layer: 1, Tokens: 6}},
		Layers: []LayerSnapshot{{Layer: 1, Gates: 2, Tokens: 8, MaxGateTokens: 6}},
	}}}
	m := Merge(a, b)
	if m.TakenUnixNano != 200 {
		t.Fatalf("TakenUnixNano = %d, want 200 (max)", m.TakenUnixNano)
	}
	g := m.Group("adaptive")
	if g == nil {
		t.Fatal("merged snapshot lost the adaptive group")
	}
	if g.Origin != "w1,w2" {
		t.Fatalf("Origin = %q, want union w1,w2", g.Origin)
	}
	if g.Kind != "adaptive" {
		t.Fatalf("Kind = %q, want adaptive", g.Kind)
	}
	wantCounters := []Metric{{Name: "draws", Value: 1}, {Name: "ops", Value: 17}}
	if !reflect.DeepEqual(g.Counters, wantCounters) {
		t.Fatalf("Counters = %+v, want %+v", g.Counters, wantCounters)
	}
	if len(g.Gauges) != 1 || g.Gauges[0].Value != 7 {
		t.Fatalf("Gauges = %+v, want load=7", g.Gauges)
	}
	if len(g.Status) != 1 || g.Status[0].Value != "atomic,combining" {
		t.Fatalf("Status = %+v, want strategy=atomic,combining", g.Status)
	}
	h := g.Hists[0].Hist
	if h.Count != 3 || h.Sum != 35 || h.Min != 5 || h.Max != 20 {
		t.Fatalf("hist merge wrong: %+v", h)
	}
	wantBuckets := []int64{0, 0, 1, 0, 2}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Fatalf("hist buckets = %v, want %v", h.Buckets, wantBuckets)
	}
	// Per-gate token sums: gate0 = 5+2 = 7, gate1 = 3+6 = 9, so the
	// exact fleet busiest-gate figure is 9 — not max(5,6)=6 of the
	// per-worker figures. This is the recompute-from-merged-gates rule.
	if g.Gates[0].Tokens != 7 || g.Gates[1].Tokens != 9 {
		t.Fatalf("gate sums wrong: %+v", g.Gates)
	}
	l := g.Layers[0]
	if l.Tokens != 16 || l.MaxGateTokens != 9 {
		t.Fatalf("layer merge wrong (want tokens=16, maxGate=9 recomputed): %+v", l)
	}
}

func TestMergeHistDifferential(t *testing.T) {
	// N workers observe into private registries; merging their
	// snapshots must preserve total count, sum, bucket sums, and the
	// global min/max — the same totals one shared histogram would show.
	const workers = 5
	r := rand.New(rand.NewSource(11))
	ref := NewHist()
	var snaps []*Snapshot
	for w := 0; w < workers; w++ {
		reg := NewRegistry()
		h := NewHist()
		reg.Register("lane", histSource{h: h})
		for i := 0; i < 500; i++ {
			v := r.Int63n(1 << uint(r.Intn(20)))
			h.Observe(v)
			ref.Observe(v)
		}
		s := reg.Snapshot()
		s.TagOrigin("w" + string(rune('0'+w)))
		snaps = append(snaps, &s)
	}
	merged := MergeAll(snaps...)
	g := merged.Group("lane")
	if g == nil || len(g.Hists) != 1 {
		t.Fatalf("merged snapshot lost the lane hist: %+v", merged)
	}
	got := g.Hists[0].Hist
	want := ref.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("merged hist totals diverge from shared hist:\n got=%+v\n want=%+v", got, want)
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) {
		t.Fatalf("merged buckets diverge:\n got=%v\n want=%v", got.Buckets, want.Buckets)
	}
	if g.Origin != "w0,w1,w2,w3,w4" {
		t.Fatalf("merged Origin = %q, want all workers", g.Origin)
	}
	// Quantiles computed over the merged buckets must stay in range.
	if q := got.Quantile(99); q < float64(got.Min) || q > float64(got.Max) {
		t.Fatalf("merged P99 %v outside [%d,%d]", q, got.Min, got.Max)
	}
}

// histSource adapts a bare Hist to the Source interface for tests.
type histSource struct{ h *Hist }

func (s histSource) GroupSnapshot() GroupSnapshot {
	return GroupSnapshot{Kind: "counter", Hists: []HistMetric{{Name: "ns", Hist: s.h.Snapshot()}}}
}

// sanitizeSnapshot clamps fuzz-mutated snapshots back into the space
// of snapshots a registry can actually produce: histogram counts are
// event counts and cannot be negative. (With negative counts the
// "only sampled inputs contribute watermarks" rule has no consistent
// reading, so the algebra is only claimed over valid snapshots.)
func sanitizeSnapshot(s *Snapshot) {
	for gi := range s.Groups {
		for hi := range s.Groups[gi].Hists {
			h := &s.Groups[gi].Hists[hi].Hist
			if h.Count < 0 {
				h.Count = 0
			}
		}
	}
}

func FuzzSnapshotMerge(f *testing.F) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		a, _ := json.Marshal(genSnapshot(r))
		b, _ := json.Marshal(genSnapshot(r))
		c, _ := json.Marshal(genSnapshot(r))
		f.Add(a, b, c)
	}
	f.Add([]byte(`{}`), []byte(`{}`), []byte(`{}`))
	f.Fuzz(func(t *testing.T, da, db, dc []byte) {
		var a, b, c Snapshot
		if json.Unmarshal(da, &a) != nil || json.Unmarshal(db, &b) != nil || json.Unmarshal(dc, &c) != nil {
			t.Skip("not snapshot JSON")
		}
		sanitizeSnapshot(&a)
		sanitizeSnapshot(&b)
		sanitizeSnapshot(&c)
		checkMergeProperties(t, &a, &b, &c)
	})
}
