package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Exposition: a registry snapshot rendered three ways —
//
//   - /debug/vars   expvar JSON (the snapshot published as one var)
//   - /metrics      Prometheus text exposition format
//   - /snapshot     the raw Snapshot as JSON (what cmd/netmon consumes)
//
// all served from one http.Handler so countbench needs a single
// -http flag.

// expvar names are global to the process; publishing twice panics.
// publishedVars dedups across registries (first publisher wins) so
// tests with throwaway registries cannot crash the run.
var (
	publishedMu   sync.Mutex
	publishedVars = map[string]bool{}
)

// PublishExpvar publishes the registry's snapshot under the given
// expvar name ("countnet" by convention). Returns false if the name
// was already claimed (by this or any other registry).
func (r *Registry) PublishExpvar(name string) bool {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	if publishedVars[name] {
		return false
	}
	publishedVars[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}

// WritePrometheus renders the registry's current state in the
// Prometheus text exposition format (version 0.0.4):
//
//	countnet_counter_total{group,kind,name}        engine counters
//	countnet_gauge{group,kind,name}                instantaneous levels
//	countnet_status_info{group,name,value}         string-valued states
//	countnet_gate_tokens_total{group,gate,layer}   per-gate traffic
//	countnet_gate_contended_total{group,gate,layer}
//	countnet_layer_tokens_total{group,layer}       per-layer traffic
//	countnet_hist_bucket{group,name,le}            cumulative buckets
//	countnet_hist_sum{group,name}
//	countnet_hist_count{group,name}
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	b.WriteString("# TYPE countnet_counter_total counter\n")
	for _, g := range s.Groups {
		for _, c := range g.Counters {
			fmt.Fprintf(&b, "countnet_counter_total{group=%q,kind=%q,name=%q} %d\n",
				escapeLabel(g.Name), escapeLabel(g.Kind), escapeLabel(c.Name), c.Value)
		}
	}
	b.WriteString("# TYPE countnet_gauge gauge\n")
	for _, g := range s.Groups {
		for _, c := range g.Gauges {
			fmt.Fprintf(&b, "countnet_gauge{group=%q,kind=%q,name=%q} %d\n",
				escapeLabel(g.Name), escapeLabel(g.Kind), escapeLabel(c.Name), c.Value)
		}
	}
	b.WriteString("# TYPE countnet_status_info gauge\n")
	for _, g := range s.Groups {
		for _, st := range g.Status {
			if st.Value == "" {
				continue
			}
			fmt.Fprintf(&b, "countnet_status_info{group=%q,name=%q,value=%q} 1\n",
				escapeLabel(g.Name), escapeLabel(st.Name), escapeLabel(st.Value))
		}
	}
	b.WriteString("# TYPE countnet_gate_tokens_total counter\n")
	b.WriteString("# TYPE countnet_gate_contended_total counter\n")
	for _, g := range s.Groups {
		for _, gt := range g.Gates {
			fmt.Fprintf(&b, "countnet_gate_tokens_total{group=%q,gate=\"%d\",layer=\"%d\"} %d\n",
				escapeLabel(g.Name), gt.Gate, gt.Layer, gt.Tokens)
			if gt.Contended != 0 {
				fmt.Fprintf(&b, "countnet_gate_contended_total{group=%q,gate=\"%d\",layer=\"%d\"} %d\n",
					escapeLabel(g.Name), gt.Gate, gt.Layer, gt.Contended)
			}
		}
	}
	b.WriteString("# TYPE countnet_layer_tokens_total counter\n")
	for _, g := range s.Groups {
		for _, l := range g.Layers {
			fmt.Fprintf(&b, "countnet_layer_tokens_total{group=%q,layer=\"%d\"} %d\n",
				escapeLabel(g.Name), l.Layer, l.Tokens)
		}
	}
	b.WriteString("# TYPE countnet_hist histogram\n")
	for _, g := range s.Groups {
		for _, h := range g.Hists {
			cum := int64(0)
			for i, n := range h.Hist.Buckets {
				cum += n
				if n == 0 && i != len(h.Hist.Buckets)-1 {
					continue // keep the exposition sparse but cumulative-correct
				}
				fmt.Fprintf(&b, "countnet_hist_bucket{group=%q,name=%q,le=\"%d\"} %d\n",
					escapeLabel(g.Name), escapeLabel(h.Name), BucketUpper(i), cum)
			}
			fmt.Fprintf(&b, "countnet_hist_bucket{group=%q,name=%q,le=\"+Inf\"} %d\n",
				escapeLabel(g.Name), escapeLabel(h.Name), h.Hist.Count)
			fmt.Fprintf(&b, "countnet_hist_sum{group=%q,name=%q} %d\n",
				escapeLabel(g.Name), escapeLabel(h.Name), h.Hist.Sum)
			fmt.Fprintf(&b, "countnet_hist_count{group=%q,name=%q} %d\n",
				escapeLabel(g.Name), escapeLabel(h.Name), h.Hist.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// flightDump is the /debug/flight response body: poll NextSeq, then
// fetch deltas with ?since=N (the same pagination netmon -validate
// checks).
type flightDump struct {
	Enabled bool          `json:"enabled"`
	NextSeq uint64        `json:"next_seq"`
	Events  []FlightEvent `json:"events"`
}

// escapeLabel escapes a Prometheus label value (the %q verb handles
// quotes and backslashes; newlines must not survive either way).
func escapeLabel(v string) string {
	return strings.NewReplacer("\n", `\n`).Replace(v)
}

// Handler serves the registry's exposition endpoints: /snapshot
// (JSON), /metrics (Prometheus text), /debug/vars (expvar, including
// this registry if published), and an index at /.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f := DefaultFlight()
		var since uint64
		if q := req.URL.Query().Get("since"); q != "" {
			n, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = n
		}
		resp := flightDump{Enabled: f != nil, NextSeq: f.NextSeq(), Events: f.DumpSince(since)}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "countnet obs endpoints: /snapshot (JSON), /metrics (Prometheus), /debug/vars (expvar), /debug/flight (flight recorder)\n")
	})
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// StartServer listens on addr (":0" picks a free port) and serves the
// registry's Handler in a background goroutine until Shutdown.
func (r *Registry) StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: r.Handler()}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// FormatRate renders an events-per-second rate compactly (1.2M, 340k).
func FormatRate(events int64, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "-"
	}
	r := float64(events) / elapsed.Seconds()
	switch {
	case r >= 1e6:
		return strconv.FormatFloat(r/1e6, 'f', 2, 64) + "M/s"
	case r >= 1e3:
		return strconv.FormatFloat(r/1e3, 'f', 1, 64) + "k/s"
	default:
		return strconv.FormatFloat(r, 'f', 0, 64) + "/s"
	}
}
