package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	n := testNetObs()
	n.GateToken(0)
	n.GateTokens(2, 5)
	n.GateContended(3)
	n.TraverseNs.Observe(100)
	r.Register("net", n)
	c := NewCombineObs("cmb", NewNetObs("cmb", []int32{1}))
	c.Passes.Inc()
	r.Register("cmb", c)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`countnet_counter_total{group="cmb",kind="combining",name="passes"} 1`,
		`countnet_gate_tokens_total{group="net",gate="2",layer="2"} 5`,
		`countnet_gate_contended_total{group="net",gate="3",layer="2"} 1`,
		`countnet_layer_tokens_total{group="net",layer="1"} 1`,
		`countnet_hist_count{group="net",name="traverse_ns"} 1`,
		`countnet_hist_bucket{group="net",name="traverse_ns",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets: the le=127 bucket (holding 100) must count 1.
	if !strings.Contains(out, `countnet_hist_bucket{group="net",name="traverse_ns",le="127"} 1`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := testRegistry()
	srv, err := r.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if len(snap.Groups) != 2 {
		t.Fatalf("/snapshot groups = %d", len(snap.Groups))
	}

	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "countnet_gate_tokens_total") {
		t.Fatalf("/metrics status %d body %q", code, body[:min(len(body), 120)])
	}

	code, body = get("/debug/vars")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("/debug/vars status %d", code)
	}

	if code, _ = get("/"); code != 200 {
		t.Fatalf("index status %d", code)
	}
	if code, _ = get("/bogus"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestPublishExpvarOnce(t *testing.T) {
	r := testRegistry()
	if !r.PublishExpvar("countnet_test_once") {
		t.Fatal("first publish refused")
	}
	if r.PublishExpvar("countnet_test_once") {
		t.Fatal("second publish of the same name must be refused, not panic")
	}
	if NewRegistry().PublishExpvar("countnet_test_once") {
		t.Fatal("other registry must not steal a published name")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
