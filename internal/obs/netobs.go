package obs

import "sync/atomic"

// GateObs is one gate's hot counters, isolated on its own pair of
// cache lines: when observation is on, every traversing token bumps
// its path's gate counters, so adjacent gates' obs state must not
// share lines any more than the gates' own balancer state does. The
// two counters sit on separate 64-byte lines within the element
// (contended is only written in lock mode, tokens in every mode).
//
//netvet:padalign 128
type GateObs struct {
	tokens    atomic.Int64 // tokens routed through the gate
	_         [56]byte
	contended atomic.Int64 // lock-mode acquisitions that found the gate busy
	_         [56]byte
}

// NetObs holds the per-gate/per-layer counters and phase histograms of
// one compiled network. Create with NewNetObs before the network sees
// concurrent traffic; recording methods are safe for concurrent use
// and allocation-free.
type NetObs struct {
	name      string
	kind      string
	gateLayer []int32 // gate -> 1-based layer
	layers    int
	gates     []GateObs

	// TraverseNs is the per-token network walk latency (Traverse,
	// TraverseMutex); BatchNs the whole-batch propagation latency
	// (TraverseBatch); BatchTokens the token count per batch.
	TraverseNs  *Hist
	BatchNs     *Hist
	BatchTokens *Hist
}

// NewNetObs builds obs state for a network whose gate i sits on
// 1-based layer gateLayer[i].
func NewNetObs(name string, gateLayer []int32) *NetObs {
	layers := 0
	for _, l := range gateLayer {
		if int(l) > layers {
			layers = int(l)
		}
	}
	return &NetObs{
		name:        name,
		kind:        "network",
		gateLayer:   append([]int32(nil), gateLayer...),
		layers:      layers,
		gates:       make([]GateObs, len(gateLayer)),
		TraverseNs:  NewHist(),
		BatchNs:     NewHist(),
		BatchTokens: NewHist(),
	}
}

// Name returns the group name given at construction.
func (o *NetObs) Name() string { return o.name }

// GateToken records one token routed through gate g.
//
//netvet:hotpath
func (o *NetObs) GateToken(g int32) { o.gates[g].tokens.Add(1) }

// GateTokens records n tokens routed through gate g in one batch.
//
//netvet:hotpath
func (o *NetObs) GateTokens(g int, n int64) { o.gates[g].tokens.Add(n) }

// GateContended records a lock-mode acquisition of gate g that found
// the balancer already held.
//
//netvet:hotpath
func (o *NetObs) GateContended(g int32) { o.gates[g].contended.Add(1) }

// GroupSnapshot implements Source.
func (o *NetObs) GroupSnapshot() GroupSnapshot {
	g := GroupSnapshot{
		Name: o.name,
		Kind: o.kind,
		Hists: []HistMetric{
			{Name: "traverse_ns", Hist: o.TraverseNs.Snapshot()},
			{Name: "batch_ns", Hist: o.BatchNs.Snapshot()},
			{Name: "batch_tokens", Hist: o.BatchTokens.Snapshot()},
		},
	}
	o.appendGateLayers(&g)
	return g
}

// appendGateLayers fills the per-gate rows and the per-layer
// aggregation of a group snapshot.
func (o *NetObs) appendGateLayers(g *GroupSnapshot) {
	if len(o.gates) == 0 {
		return
	}
	layers := make([]LayerSnapshot, o.layers)
	for i := range layers {
		layers[i].Layer = i + 1
	}
	g.Gates = make([]GateSnapshot, len(o.gates))
	for i := range o.gates {
		gs := GateSnapshot{
			Gate:      i,
			Layer:     int(o.gateLayer[i]),
			Tokens:    o.gates[i].tokens.Load(),
			Contended: o.gates[i].contended.Load(),
		}
		g.Gates[i] = gs
		if gs.Layer >= 1 && gs.Layer <= len(layers) {
			l := &layers[gs.Layer-1]
			l.Gates++
			l.Tokens += gs.Tokens
			l.Contended += gs.Contended
			if gs.Tokens > l.MaxGateTokens {
				l.MaxGateTokens = gs.Tokens
			}
		}
	}
	g.Layers = layers
}
