package obs

// Flight recorder: an always-on, allocation-free crash-forensics ring.
//
// The observability counters answer "how much"; the flight recorder
// answers "what happened, in what order" when a run goes wrong. It is
// a lock-free, sharded ring buffer of fixed-size binary events —
// strategy switches, epoch seal/drain/fence/install transitions,
// barrier arrivals, block leases, scenario phase edges, oracle
// violations — kept small enough (a few thousand events) that the
// tail is always the interesting part: when the cross-process oracle
// fails, every worker dumps its last ~4k events instead of asking for
// a re-run with a seed.
//
// The design contract matches the rest of the obs layer: a disabled
// recorder is a nil pointer and Record costs exactly one nil-check;
// an enabled Record is two fetch-and-adds (global sequence, shard
// slot claim) plus six plain atomic stores into a pre-allocated slot —
// no locks, no allocation, proven by AllocsPerRun tests and the
// escape prover (`make vet-escape`). Shards approximate per-P
// isolation by hashing the caller's stack address, so concurrent
// recorders write distinct cache lines; only the sequence word is
// shared, which is what makes Dump's ordering exact.
//
// Dump reads slots through a per-slot seqlock (the sequence is
// invalidated, the payload stored, the sequence republished), so a
// reader either sees a complete event or skips a slot that was being
// overwritten mid-read. Dumps are best-effort under concurrent wrap —
// exactly the post-mortem contract: the recorder must never perturb
// the run it is describing.

import (
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"unsafe"
)

// FlightKind identifies one event type in the flight ring.
type FlightKind uint8

const (
	// FlightStrategySwitch is an adaptive-counter engine transition:
	// A = outgoing EngineKind, B = incoming EngineKind.
	FlightStrategySwitch FlightKind = iota + 1
	// FlightEpochSeal..FlightEpochInstall are the four steps of the
	// adaptive counter's epoch handoff (seal → drain → fence →
	// install); A/B carry the step's evidence (engine kind, offset,
	// fence base).
	FlightEpochSeal
	FlightEpochDrain
	FlightEpochFence
	FlightEpochInstall
	// FlightBarrierArrive is one barrier arrival: A = phase index (or
	// -1 outside a phase), B = the generation/ticket observed.
	FlightBarrierArrive
	// FlightBlockLease is one leased value block: A = first value of
	// the block, B = block length.
	FlightBlockLease
	// FlightPhaseStart / FlightPhaseEnd are scenario phase edges:
	// A = phase index, B = kind-specific (parties, ops completed).
	FlightPhaseStart
	FlightPhaseEnd
	// FlightOracleViolation marks a failed invariant check: A/B are
	// checker-specific (e.g. the missing value and the issue bound).
	FlightOracleViolation

	flightKindCount
)

// flightKindNames maps kinds to their wire names (MarshalText). Keep
// in sync with the constants above.
var flightKindNames = [flightKindCount]string{
	FlightStrategySwitch:  "strategy-switch",
	FlightEpochSeal:       "epoch-seal",
	FlightEpochDrain:      "epoch-drain",
	FlightEpochFence:      "epoch-fence",
	FlightEpochInstall:    "epoch-install",
	FlightBarrierArrive:   "barrier-arrive",
	FlightBlockLease:      "block-lease",
	FlightPhaseStart:      "phase-start",
	FlightPhaseEnd:        "phase-end",
	FlightOracleViolation: "oracle-violation",
}

// String returns the kind's wire name ("kind(N)" for unknown values).
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) && flightKindNames[k] != "" {
		return flightKindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// MarshalText renders the kind by name, so JSON flight dumps read as
// post-mortems rather than opcode tables.
func (k FlightKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a wire name (or "kind(N)") back to the kind.
func (k *FlightKind) UnmarshalText(text []byte) error {
	s := string(text)
	for i, n := range flightKindNames {
		if n != "" && n == s {
			*k = FlightKind(i)
			return nil
		}
	}
	if rest, ok := cutAffix(s, "kind(", ")"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		*k = FlightKind(n)
		return nil
	}
	return &strconv.NumError{Func: "FlightKind", Num: s, Err: strconv.ErrSyntax}
}

// cutAffix trims prefix and suffix; ok reports both were present.
func cutAffix(s, prefix, suffix string) (string, bool) {
	if len(s) < len(prefix)+len(suffix) || s[:len(prefix)] != prefix || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[len(prefix) : len(s)-len(suffix)], true
}

// FlightEvent is one recorded event. Seq is the global record order
// (gap-free at the recorder, gapped in a dump once the ring wrapped),
// TS the obs.Now timestamp, A/B the kind-specific payload.
type FlightEvent struct {
	Seq  uint64     `json:"seq"`
	TS   int64      `json:"ts"`
	Kind FlightKind `json:"kind"`
	A    int64      `json:"a"`
	B    int64      `json:"b"`
}

// flightSlot is one ring cell: a seqlock (seq, 0 = empty or being
// written, otherwise event-seq+1) over a fixed binary payload.
type flightSlot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	kind atomic.Int64
	a    atomic.Int64
	b    atomic.Int64
}

// flightShard is one writer stripe: its claim counter sits alone on a
// pair of cache lines (the same 128-byte discipline as PaddedCount)
// so shards never bounce each other's claims.
//
//netvet:padalign 128
type flightShard struct {
	next atomic.Uint64
	_    [120]byte
}

// DefaultFlightSlots is the default total ring capacity: the "last 4k
// events" a post-mortem dump reads.
const DefaultFlightSlots = 4096

// FlightRecorder is the sharded event ring. The zero value is not
// usable; construct with NewFlightRecorder. A nil *FlightRecorder is
// a valid disabled recorder: Record returns after one nil-check and
// Dump returns nil.
type FlightRecorder struct {
	shards    []flightShard
	rings     [][]flightSlot // rings[i] belongs to shards[i]
	shardMask uintptr
	slotMask  uint64
	seq       atomic.Uint64
}

// NewFlightRecorder builds a recorder holding at least slots events in
// total (rounded up so every shard gets a power-of-two ring; slots <=
// 0 selects DefaultFlightSlots). Shard count scales with GOMAXPROCS,
// capped at 64.
func NewFlightRecorder(slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	shards := ceilPow2(runtime.GOMAXPROCS(0))
	if shards > 64 {
		shards = 64
	}
	per := ceilPow2((slots + shards - 1) / shards)
	f := &FlightRecorder{
		shards:    make([]flightShard, shards),
		rings:     make([][]flightSlot, shards),
		shardMask: uintptr(shards - 1),
		slotMask:  uint64(per - 1),
	}
	for i := range f.rings {
		f.rings[i] = make([]flightSlot, per)
	}
	return f
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Cap returns the recorder's total event capacity (0 for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.rings) * int(f.slotMask+1)
}

// NextSeq returns the sequence number the next Record will claim; a
// dump taken now contains only events with Seq < NextSeq. 0 for nil.
func (f *FlightRecorder) NextSeq() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// shardHint derives a writer stripe from the goroutine's stack
// address: goroutine stacks are distinct (and at least 2KiB apart),
// so concurrent recorders land on different shards without any
// runtime hook. The address is only hashed, never dereferenced or
// retained, so the probe byte stays on the stack.
//
//netvet:hotpath
func shardHint() uintptr {
	var probe byte
	return uintptr(unsafe.Pointer(&probe)) >> 11
}

// Record appends one event. Safe for concurrent use; allocation-free;
// a nil receiver (recorder off) costs exactly the nil-check.
//
//netvet:hotpath
func (f *FlightRecorder) Record(kind FlightKind, a, b int64) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	f.encode(shardHint()&f.shardMask, seq, Now(), kind, a, b)
}

// encode claims the shard's next slot and publishes the event through
// the slot seqlock: invalidate, store payload, republish. A reader
// that catches the window sees seq==0 and skips the slot.
//
//netvet:hotpath
func (f *FlightRecorder) encode(shard uintptr, seq uint64, ts int64, kind FlightKind, a, b int64) {
	idx := f.shards[shard].next.Add(1) - 1
	s := &f.rings[shard][idx&f.slotMask]
	s.seq.Store(0)
	s.ts.Store(ts)
	s.kind.Store(int64(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq + 1)
}

// Dump returns every event still in the ring, ordered by sequence.
// Safe to call while recording continues; slots being overwritten
// mid-read are skipped (post-mortem best effort).
func (f *FlightRecorder) Dump() []FlightEvent { return f.DumpSince(0) }

// DumpSince returns the retained events with Seq >= since, ordered by
// sequence. A nil recorder returns nil.
func (f *FlightRecorder) DumpSince(since uint64) []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for shard := range f.rings {
		ring := f.rings[shard]
		for i := range ring {
			s := &ring[i]
			// Bounded seqlock read: retry a torn slot a few times, then
			// leave it behind — the writer is mid-overwrite and the old
			// event is gone anyway.
			for attempt := 0; attempt < 3; attempt++ {
				s1 := s.seq.Load()
				if s1 == 0 {
					break
				}
				e := FlightEvent{
					Seq:  s1 - 1,
					TS:   s.ts.Load(),
					Kind: FlightKind(s.kind.Load()),
					A:    s.a.Load(),
					B:    s.b.Load(),
				}
				if s.seq.Load() != s1 {
					continue
				}
				if e.Seq >= since {
					out = append(out, e)
				}
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// defaultFlight is the process-wide recorder RecordFlight writes to;
// nil (the boot state) means recording is off everywhere.
var defaultFlight atomic.Pointer[FlightRecorder]

// EnableFlight installs a fresh default recorder with the given total
// capacity (<= 0 selects DefaultFlightSlots) and returns it. Hot
// paths that were recording into a previous default keep their ring
// reachable only until their next Record — enable once at startup.
func EnableFlight(slots int) *FlightRecorder {
	f := NewFlightRecorder(slots)
	defaultFlight.Store(f)
	return f
}

// DisableFlight removes the default recorder; RecordFlight reverts to
// the one-nil-check disabled path.
func DisableFlight() { defaultFlight.Store(nil) }

// DefaultFlight returns the process-wide recorder, or nil when off.
func DefaultFlight() *FlightRecorder { return defaultFlight.Load() }

// RecordFlight appends one event to the default recorder: one atomic
// pointer load plus Record's nil-check when recording is off.
//
//netvet:hotpath
func RecordFlight(kind FlightKind, a, b int64) { defaultFlight.Load().Record(kind, a, b) }
