package obs

import (
	"context"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler attribution. Two granularities:
//
//   - Do wraps a whole measurement phase (a benchmark lane's worker
//     loop) in pprof labels, so CPU profiles of countbench split
//     samples by network and phase instead of one flat column;
//   - Region marks one traversal phase (a combine pass, a batch
//     propagation) as a runtime/trace region, visible in `go tool
//     trace` when tracing is on and a no-op pointer otherwise.
//
// Neither allocates on the disabled path: Do is called once per
// worker, not per operation, and trace.StartRegion returns a shared
// no-op region when tracing is off.

// LabelNetwork and LabelPhase are the pprof label keys used by Do.
const (
	LabelNetwork = "countnet_network"
	LabelPhase   = "countnet_phase"
)

// Do runs f with pprof labels attributing its CPU samples to the
// given network and phase.
func Do(network, phase string, f func()) {
	pprof.Do(context.Background(), pprof.Labels(LabelNetwork, network, LabelPhase, phase),
		func(context.Context) { f() })
}

// TraceRegion aliases runtime/trace.Region so callers can hold a
// region returned by Region without importing runtime/trace.
type TraceRegion = trace.Region

// Region starts a runtime/trace region for a traversal phase. Callers
// must End the returned region. Cheap when tracing is disabled.
func Region(phase string) *trace.Region {
	return trace.StartRegion(context.Background(), phase)
}
