// Package analysis is a dependency-free reimplementation of the core
// of golang.org/x/tools/go/analysis, just large enough to host this
// repository's custom vet checks (package analyzers) behind both a
// standalone driver and the `go vet -vettool` protocol (see
// unitchecker.go). The module has no external dependencies by policy,
// so the x/tools framework is mirrored rather than imported; the
// Analyzer/Pass/Diagnostic surface is kept source-compatible with the
// subset x/tools defines, which keeps the analyzers trivially portable
// to a real multichecker if the dependency is ever taken.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name must be a valid Go
// identifier: it is used as a diagnostic prefix and a command-line
// selector in cmd/netvet.
type Analyzer struct {
	// Name identifies the analyzer, e.g. "padalign".
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information through an
// Analyzer.Run invocation.
type Pass struct {
	Analyzer *Analyzer

	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report delivers a finding. The drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding pairs a diagnostic with the analyzer that produced it and
// its resolved source position; drivers return these.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String formats the finding in the conventional file:line:col form
// used by go vet.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunAnalyzers applies each analyzer to the package held by pass
// template fields (Fset/Files/Pkg/TypesInfo/TypesSizes) and collects
// sorted findings. It is the shared back half of both drivers.
func RunAnalyzers(analyzers []*Analyzer, tmpl Pass) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := tmpl
		pass.Analyzer = a
		name := a.Name
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: name,
				Position: tmpl.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(&pass); err != nil {
			return out, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	// Insertion sort: finding counts are tiny and this avoids pulling
	// in sort for a comparator we'd write three closures for.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Position.Filename != b.Position.Filename {
		return a.Position.Filename < b.Position.Filename
	}
	if a.Position.Line != b.Position.Line {
		return a.Position.Line < b.Position.Line
	}
	if a.Position.Column != b.Position.Column {
		return a.Position.Column < b.Position.Column
	}
	return a.Message < b.Message
}
