package analysis

import (
	"strings"
	"testing"
)

// TestLoadFailureUnknownPackage: a pattern the go tool cannot resolve
// must surface as an error from Load, not an empty package list.
func TestLoadFailureUnknownPackage(t *testing.T) {
	_, err := Load("", "./this/package/does/not/exist")
	if err == nil {
		t.Fatalf("Load of a nonexistent package succeeded")
	}
	if !strings.Contains(err.Error(), "go list") && !strings.Contains(err.Error(), "load") {
		t.Errorf("error does not identify the loader: %v", err)
	}
}

// TestLoadCgoPackage: the dependency-free loader cannot typecheck
// cgo-generated code. With cgo enabled it must reject the package
// explicitly; with CGO_ENABLED=0 the go tool reports the package as
// unbuildable, which Load must surface as an error too. Either way,
// never a silent partial load.
func TestLoadCgoPackage(t *testing.T) {
	pkgs, err := Load("testdata/cgomod", ".")
	if err == nil {
		t.Fatalf("Load of a cgo package succeeded with %d packages", len(pkgs))
	}
}

// TestLoadMultiFilePackage: Load feeds analyzers every file of a
// package; the escapemod fixture's files and the hotpath annotations
// in them must all be visible in one pass.
func TestLoadMultiFilePackage(t *testing.T) {
	pkgs, err := Load("testdata/escapemod", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (escapemod, escapemod/cold)", len(pkgs))
	}
	hot := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.TrimSpace(c.Text) == hotpathDirective {
						hot++
					}
				}
			}
		}
	}
	// esc.go carries four annotations, ring.go two (Record + the
	// seeded LeakEvent mutant).
	if hot != 6 {
		t.Errorf("saw %d hotpath directives across the fixture, want 6", hot)
	}
}
