package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix is the comment prefix shared by every suppression
// annotation the netvet analyzers understand:
//
//	//netvet:allow <word> [<word>...] [-- free-text reason]
//
// The words name the specific checks being waived on that line
// ("spawn", "gosched", "nondeterminism", "append", "hotpath",
// "escape", "plainaccess", ...); everything after an optional "--"
// separator is a human-readable justification and is ignored by the
// tools. An annotation covers its own line and the next, so both the
// trailing-comment and line-above forms work.
const AllowPrefix = "//netvet:allow"

// Allows indexes every //netvet:allow annotation in a set of files by
// file name and covered line.
type Allows struct {
	m map[string]map[int][]string
}

// CollectAllows scans the comments of files for allow annotations.
func CollectAllows(fset *token.FileSet, files []*ast.File) Allows {
	a := Allows{m: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, AllowPrefix)
				if !ok {
					continue
				}
				words := AllowWords(rest)
				posn := fset.Position(c.Pos())
				m := a.m[posn.Filename]
				if m == nil {
					m = map[int][]string{}
					a.m[posn.Filename] = m
				}
				// The annotation covers its own line and the next: both
				// the trailing-comment and line-above forms.
				m[posn.Line] = append(m[posn.Line], words...)
				m[posn.Line+1] = append(m[posn.Line+1], words...)
			}
		}
	}
	return a
}

// AllowWords splits the text following the //netvet:allow prefix into
// allow words, dropping the optional "-- reason" suffix.
func AllowWords(rest string) []string {
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

// Allowed reports whether word is allowed at pos, i.e. an annotation
// carrying it sits on pos's line or the line above.
func (a Allows) Allowed(fset *token.FileSet, pos token.Pos, word string) bool {
	posn := fset.Position(pos)
	for _, w := range a.m[posn.Filename][posn.Line] {
		if w == word {
			return true
		}
	}
	return false
}

// AllowedLine reports whether word is allowed on the given
// file:line. Line-oriented checkers (the escape prover) resolve
// compiler diagnostics, not token positions.
func (a Allows) AllowedLine(file string, line int, word string) bool {
	for _, w := range a.m[file][line] {
		if w == word {
			return true
		}
	}
	return false
}
