package escapemod

import "sync/atomic"

// Ring is a miniature of the flight recorder's hot path: a fixed ring
// of atomically published slots. Record must stay allocation-free —
// the slot pointer is derived from the receiver and never leaves the
// function.
type Ring struct {
	next  atomic.Uint64
	slots [8]ringSlot
}

type ringSlot struct {
	seq atomic.Int64
	a   atomic.Int64
}

// Record claims the next slot and publishes the payload under a
// seqlock: proved.
//
//netvet:hotpath
func (r *Ring) Record(a int64) {
	i := r.next.Add(1) - 1
	s := &r.slots[i&7]
	s.seq.Store(0)
	s.a.Store(a)
	s.seq.Store(int64(i) + 1)
}

// LeakEvent is the recorder-shaped seeded mutant: boxing the event to
// return it moves the local to the heap, breaking the alloc-free
// contract, and the prover must fail on it.
//
//netvet:hotpath
func (r *Ring) LeakEvent(a int64) *int64 {
	e := a + int64(r.next.Load())
	return &e
}
