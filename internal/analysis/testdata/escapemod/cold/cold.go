// Package cold has no //netvet:hotpath annotations: pointing the
// escape prover at it alone must be an error (a vacuous proof), not a
// pass.
package cold

// Alloc escapes on purpose; nobody claims otherwise.
func Alloc(n int) []byte {
	return make([]byte, n)
}
