// Package escapemod is the escape prover's seeded-mutant fixture: a
// clean hot function, a deliberately heap-escaping one, exempt panic
// and allow-escape lines, and an unannotated allocator the prover
// must ignore.
package escapemod

import "fmt"

// Sum is steady-state allocation-free: the prover must list it as
// proved.
//
//netvet:hotpath
func Sum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// Box is the seeded heap-escape mutant: returning the address of a
// local moves it to the heap, and the prover must fail on it.
//
//netvet:hotpath
func Box(v int64) *int64 {
	local := v
	return &local
}

// Panicky boxes its panic argument, but panic paths are cold and
// exempt: proved.
//
//netvet:hotpath
func Panicky(v int64) int64 {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
	return v + 1
}

// Allowed escapes on an annotated line: proved.
//
//netvet:hotpath
func Allowed(v int64) *int64 {
	//netvet:allow escape -- fixture: audited one-time allocation
	p := new(int64)
	*p = v
	return p
}

// Cold allocates freely but carries no annotation: the prover must
// not mention it.
func Cold(n int) []int64 {
	return make([]int64, n)
}
