module cgomod

go 1.22
