// Package cgomod is a loader edge-case fixture: a cgo package, which
// the dependency-free loader must reject with a clear error (with
// CGO_ENABLED=0 the go tool itself reports no buildable files, which
// Load surfaces instead).
package cgomod

import "C"

// N is exported through cgo solely so the file is a real cgo file.
var N = C.int(0)
