package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath    string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepOnly    bool
	Incomplete bool
}

// Load resolves patterns with the go tool, then parses and
// type-checks every matched (non-dependency) package from source.
// Dependencies — including the standard library — are consumed as
// compiled export data emitted by `go list -export`, so loading works
// fully offline with only the baked-in toolchain. dir is the working
// directory for the go tool ("" for the current one).
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: load %s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := checkPackage(fset, imp.forImportMap(lp.ImportMap), lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -deps -export -json` and returns the matched
// packages plus an import-path → export-file map covering every
// dependency.
func goList(dir string, patterns []string) ([]listedPackage, map[string]string, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,ImportMap,Incomplete,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, exports, nil
}

// checkPackage parses files and type-checks them against imp.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		name := f
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, f)
		}
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", name, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, fset, syntax, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %v", path, firstErr)
	}
	return &Package{
		PkgPath:    path,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
		TypesSizes: sizes,
	}, nil
}

// exportImporter resolves imports from compiled export-data files via
// the gc importer, with an optional per-package import remapping (go
// list's ImportMap, used for vendoring — identity in this module).
type exportImporter struct {
	under types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{under: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.under.ImportFrom(path, "", 0)
}

// forImportMap wraps the importer with a source-path → canonical-path
// remapping; with an empty map the importer itself is returned.
func (e *exportImporter) forImportMap(m map[string]string) types.Importer {
	if len(m) == 0 {
		return e
	}
	return &mappedImporter{under: e, m: m}
}

type mappedImporter struct {
	under types.Importer
	m     map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if c, ok := mi.m[path]; ok {
		path = c
	}
	return mi.under.Import(path)
}

// ListExports resolves the given import paths, plus all their
// dependencies, to compiled export-data files via the go tool run in
// dir ("" for the current directory).
func ListExports(dir string, paths []string) (map[string]string, error) {
	_, exports, err := goList(dir, paths)
	return exports, err
}

// NewExportImporter returns an importer that reads compiled export
// data from the files in exports (import path → file).
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Some analyzers (ctorerr) deliberately exempt tests, where
// discarding a constructor error on a known-good literal is idiomatic.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
