package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration file cmd/go hands a
// -vettool for each package it vets (the x/tools unitchecker.Config
// schema). Fields the checker does not consume are retained so the
// decoder accepts every config cmd/go produces.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point for cmd/netvet. It speaks three
// dialects:
//
//   - `netvet -V=full` and `netvet -flags`: the cmd/go handshake for
//     external vet tools (version fingerprint, supported-flag list);
//   - `netvet <file>.cfg`: the unitchecker protocol — cmd/go invokes
//     the tool once per package with a JSON config naming the source
//     files and the export data of every dependency;
//   - `netvet [patterns]`: a standalone multichecker that loads the
//     named packages (default ./...) itself via Load;
//   - `netvet -escape [patterns]`: the escape prover — compiles the
//     named packages with -gcflags=-m and fails if any heap-escape
//     diagnostic lands inside a //netvet:hotpath function (see
//     escape.go).
//
// It never returns: the process exits 0 with no findings, 2 with
// findings, 1 on operational errors — matching go vet's conventions.
func VetMain(analyzers []*Analyzer) {
	fs := flag.NewFlagSet("netvet", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go tool handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go handshake)")
	jsonFlag := fs.Bool("json", false, "emit findings as JSON")
	escapeFlag := fs.Bool("escape", false, "prove //netvet:hotpath functions allocation-free from compiler escape diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netvet [packages]  |  go vet -vettool=$(command -v netvet) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *versionFlag != "":
		// cmd/go fingerprints external vet tools with `-V=full` and
		// expects a single "<name> version <...>" line.
		fmt.Printf("netvet version 1 buildID=netvet-%d-analyzers\n", len(analyzers))
		os.Exit(0)
	case *flagsFlag:
		// cmd/go asks for the tool's flag schema; netvet exposes none
		// (analyzer selection is compiled in).
		fmt.Println("[]")
		os.Exit(0)
	}

	args := fs.Args()
	if *escapeFlag {
		runEscape(args, *jsonFlag)
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitchecker(args[0], analyzers, *jsonFlag)
		return
	}
	runStandalone(args, analyzers, *jsonFlag)
}

// runEscape drives the escape prover and reports in go vet's exit
// conventions: 0 when every annotated function is proven, 2 with
// findings, 1 on operational errors (including zero annotated
// functions, which would make the proof vacuous).
func runEscape(patterns []string, asJSON bool) {
	rep, err := EscapeCheck("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netvet:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "netvet -escape: %d hot functions proven allocation-free, %d escape findings\n",
		len(rep.Proved), len(rep.Findings))
	emitFindings(rep.Findings, asJSON)
}

func runStandalone(patterns []string, analyzers []*Analyzer, asJSON bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netvet:", err)
		os.Exit(1)
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunAnalyzers(analyzers, Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypesSizes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "netvet:", err)
			os.Exit(1)
		}
		all = append(all, fs...)
	}
	emitFindings(all, asJSON)
}

func runUnitchecker(cfgFile string, analyzers []*Analyzer, asJSON bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("read config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parse config %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	var imp types.Importer = &mappedImporter{
		under: &unsafeAwareImporter{importer.ForCompiler(fset, compiler, lookup).(types.ImporterFrom)},
		m:     cfg.ImportMap,
	}
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			os.Exit(0)
		}
		fatalf("%v", err)
	}

	var findings []Finding
	if !cfg.VetxOnly {
		findings, err = RunAnalyzers(analyzers, Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypesSizes,
		})
		if err != nil {
			fatalf("%v", err)
		}
	}
	// cmd/go requires the facts file to exist for its action cache,
	// even though netvet's analyzers exchange no facts.
	writeVetx(cfg.VetxOutput)
	emitFindings(findings, asJSON)
}

// unsafeAwareImporter resolves "unsafe" without consulting export
// data; cmd/go's PackageFile map has no entry for it.
type unsafeAwareImporter struct {
	under types.ImporterFrom
}

func (u *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.under.ImportFrom(path, "", 0)
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil {
		fatalf("write facts: %v", err)
	}
}

// emitFindings prints findings and exits: 0 when clean, 2 otherwise
// (go vet's "diagnostics reported" status).
func emitFindings(findings []Finding, asJSON bool) {
	if asJSON {
		grouped := map[string][]map[string]string{}
		for _, f := range findings {
			grouped[f.Analyzer] = append(grouped[f.Analyzer], map[string]string{
				"posn":    f.Position.String(),
				"message": f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		_ = enc.Encode(grouped)
		os.Exit(0)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "netvet: "+format+"\n", args...)
	os.Exit(1)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
