package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the escape prover behind `netvet -escape` and `make
// vet-escape`: the compile-time complement to the runtime
// AllocsPerRun==0 tests. It drives `go build -gcflags=-m` over the
// module, parses the compiler's escape diagnostics, and fails if any
// lands inside a function annotated //netvet:hotpath. The Go build
// cache replays -m diagnostics on unchanged packages, so warm runs
// cost roughly a `go list`.
//
// Two classes of diagnostics are exempt:
//
//   - anything on a line spanned by a builtin panic call's arguments:
//     panic paths are cold by definition, and the fmt boxing in a
//     bounds message says nothing about steady state;
//   - lines annotated `//netvet:allow escape -- reason`: the audited
//     static boxings (e.g. context.Background's zero-size value at a
//     trace.StartRegion call) and cold one-time fallbacks (lazy
//     scratch construction) that the runtime alloc tests already pin
//     at zero.

// hotFunc is one annotated function's source extent.
type hotFunc struct {
	Name      string // receiver-qualified, e.g. (*Plan).Apply
	File      string // absolute path
	StartLine int
	EndLine   int

	findings []Finding
}

// EscapeReport is the outcome of one prover run.
type EscapeReport struct {
	// Proved lists annotated functions with no escape diagnostics, as
	// "file:line: name", sorted.
	Proved []string
	// Findings lists escape diagnostics inside annotated functions.
	Findings []Finding
}

// hotpathDirective duplicates the hotpath analyzer's marker here
// rather than importing it: analyzers depend on this package, not the
// reverse.
const hotpathDirective = "//netvet:hotpath"

// EscapeCheck proves the //netvet:hotpath functions of the packages
// matched by patterns allocation-free, from the compiler's escape
// analysis. dir is the working directory for the go tool ("" for the
// current one).
func EscapeCheck(dir string, patterns []string) (*EscapeReport, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	files, err := goListFiles(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var hots []*hotFunc
	exemptLines := map[string]map[int]bool{} // file → exempt lines
	for _, file := range files {
		af, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: escape: parse %s: %v", file, err)
		}
		collectHot(fset, af, file, &hots, exemptLines)
	}
	if len(hots) == 0 {
		return nil, fmt.Errorf("analysis: escape: no %s functions found in %s", hotpathDirective, strings.Join(patterns, " "))
	}

	diags, err := escapeDiagnostics(dir, patterns)
	if err != nil {
		return nil, err
	}

	rep := &EscapeReport{}
	for _, d := range diags {
		if exemptLines[d.Position.Filename][d.Position.Line] {
			continue
		}
		for _, h := range hots {
			if h.File == d.Position.Filename && d.Position.Line >= h.StartLine && d.Position.Line <= h.EndLine {
				d.Message = fmt.Sprintf("%s in //netvet:hotpath function %s", d.Message, h.Name)
				h.findings = append(h.findings, d)
				break
			}
		}
	}
	for _, h := range hots {
		if len(h.findings) == 0 {
			rep.Proved = append(rep.Proved, fmt.Sprintf("%s:%d: %s", h.File, h.StartLine, h.Name))
		} else {
			rep.Findings = append(rep.Findings, h.findings...)
		}
	}
	sort.Strings(rep.Proved)
	sortFindings(rep.Findings)
	return rep, nil
}

// collectHot records file's annotated functions, their panic-spanned
// lines, and its //netvet:allow escape lines.
func collectHot(fset *token.FileSet, af *ast.File, file string, hots *[]*hotFunc, exempt map[string]map[int]bool) {
	lines := exempt[file]
	if lines == nil {
		lines = map[int]bool{}
		exempt[file] = lines
	}
	for _, cg := range af.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, AllowPrefix)
			if !ok {
				continue
			}
			for _, w := range AllowWords(rest) {
				if w == "escape" {
					l := fset.Position(c.Pos()).Line
					lines[l] = true
					lines[l+1] = true
				}
			}
		}
	}
	for _, decl := range af.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
			continue
		}
		*hots = append(*hots, &hotFunc{
			Name:      funcDisplayName(fd),
			File:      file,
			StartLine: fset.Position(fd.Pos()).Line,
			EndLine:   fset.Position(fd.End()).Line,
		})
		// Panic argument spans are cold-path by definition.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				from := fset.Position(call.Pos()).Line
				to := fset.Position(call.End()).Line
				for l := from; l <= to; l++ {
					lines[l] = true
				}
			}
			return true
		})
	}
}

func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// funcDisplayName renders "(*T).Method" / "T.Method" / "Func".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func typeExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return typeExprString(e.X) + "[" + typeExprString(e.Index) + "]"
	case *ast.IndexListExpr:
		parts := make([]string, len(e.Indices))
		for i, ix := range e.Indices {
			parts[i] = typeExprString(ix)
		}
		return typeExprString(e.X) + "[" + strings.Join(parts, ", ") + "]"
	default:
		return "?"
	}
}

// goListFiles resolves patterns to the absolute paths of the matched
// packages' non-test Go files.
func goListFiles(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-json=Dir,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: escape: go list: %v\n%s", err, stderr.String())
	}
	var files []string
	dec := json.NewDecoder(&stdout)
	for {
		var lp struct {
			Dir     string
			GoFiles []string
			DepOnly bool
			Error   *struct{ Err string }
		}
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: escape: go list output: %v", err)
		}
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: escape: %s", lp.Error.Err)
		}
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
	}
	return files, nil
}

var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles the matched packages with -gcflags=-m
// and returns the heap-escape diagnostics, positions resolved to
// absolute paths. The compiler prints -m output to stderr; the build
// cache replays it verbatim for unchanged packages.
func escapeDiagnostics(dir string, patterns []string) ([]Finding, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: escape: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	base := dir
	if base == "" {
		base = "."
	}
	absBase, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := diagRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absBase, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, Finding{
			Analyzer: "escape",
			Position: token.Position{Filename: filepath.Clean(file), Line: lineNo, Column: col},
			Message:  msg,
		})
	}
	return out, nil
}
