// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest for
// the dependency-free framework in internal/analysis.
//
// A fixture line carrying an expectation looks like:
//
//	x, _ := BuildK(2, 2) // want `error .* discarded`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression; the line must produce one matching diagnostic per
// expectation, and every diagnostic must be expected.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"countnet/internal/analysis"
)

var wantRe = regexp.MustCompile("// *want +(.*)$")

// Run applies a to the fixture package at dir/src/pkg and reports
// expectation mismatches through t. Fixture imports are resolved with
// export data from the host toolchain (see analysis.Load), so fixtures
// may import both the standard library and this module's packages.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	src := filepath.Join(dir, "src", pkg)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(src, e.Name())
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", name, err)
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", src)
	}

	expects := parseExpectations(t, fset, files)

	pkgObj, info, sizes := typecheck(t, fset, files)
	findings, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkgObj,
		TypesInfo:  info,
		TypesSizes: sizes,
	})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	matchFindings(t, findings, expects)
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitPatterns(m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want pattern %q: %v", pos, lit, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitPatterns extracts the quoted or backquoted regexps following a
// want marker.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			lit, rest, ok := scanString(s)
			if !ok {
				return out
			}
			out = append(out, lit)
			s = strings.TrimSpace(rest)
		default:
			return out
		}
	}
	return out
}

func scanString(s string) (lit, rest string, ok bool) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", false
			}
			return unq, s[i+1:], true
		}
	}
	return "", "", false
}

func typecheck(t *testing.T, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, types.Sizes) {
	t.Helper()
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	imp, err := exportImporter(fset, paths)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	var tcErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
		Error: func(err error) {
			if tcErr == nil {
				tcErr = err
			}
		},
	}
	pkg, _ := conf.Check(files[0].Name.Name, fset, files, info)
	if tcErr != nil {
		t.Fatalf("analysistest: fixture does not typecheck: %v", tcErr)
	}
	return pkg, info, sizes
}

// exportImporter builds an importer over export data for the given
// import paths (and their dependencies), produced by the host go
// tool. The go tool runs from the test's working directory, which for
// `go test` is the package directory — inside the module, so
// module-internal fixture imports resolve.
func exportImporter(fset *token.FileSet, paths []string) (types.Importer, error) {
	if len(paths) == 0 {
		return noImports{}, nil
	}
	exports, err := analysis.ListExports("", paths)
	if err != nil {
		return nil, err
	}
	return analysis.NewExportImporter(fset, exports), nil
}

type noImports struct{}

func (noImports) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("analysistest: unexpected import %q", path)
}

func matchFindings(t *testing.T, findings []analysis.Finding, expects []*expectation) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != f.Position.Filename || e.line != f.Position.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}
