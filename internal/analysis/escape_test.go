package analysis

import (
	"strings"
	"testing"
)

// TestEscapeCheckSeededMutant runs the prover over the escapemod
// fixture: the clean, panic-exempt, and allow-annotated functions
// must be proved; the seeded heap-escape mutant must be the one
// failure; the unannotated allocator must not appear at all.
func TestEscapeCheckSeededMutant(t *testing.T) {
	rep, err := EscapeCheck("testdata/escapemod", []string{"./..."})
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	proved := strings.Join(rep.Proved, "\n")
	for _, want := range []string{"Sum", "Panicky", "Allowed", "Record"} {
		if !strings.Contains(proved, want) {
			t.Errorf("proved list missing %s:\n%s", want, proved)
		}
	}
	for _, mutant := range []string{"Box", "LeakEvent"} {
		if strings.Contains(proved, mutant) {
			t.Errorf("seeded mutant %s wrongly proved:\n%s", mutant, proved)
		}
	}
	if len(rep.Findings) == 0 {
		t.Fatalf("seeded heap-escape mutants produced no findings")
	}
	caught := map[string]bool{}
	for _, f := range rep.Findings {
		switch {
		case strings.Contains(f.Message, "Box"):
			caught["Box"] = true
		case strings.Contains(f.Message, "LeakEvent"):
			caught["LeakEvent"] = true
		default:
			t.Errorf("unexpected finding outside the seeded mutants: %s", f)
		}
		if !strings.Contains(f.Message, "moved to heap") && !strings.Contains(f.Message, "escapes to heap") {
			t.Errorf("finding does not carry a compiler escape message: %s", f)
		}
		if !strings.HasSuffix(f.Position.Filename, "esc.go") && !strings.HasSuffix(f.Position.Filename, "ring.go") {
			t.Errorf("finding resolved to wrong file: %s", f)
		}
	}
	for _, mutant := range []string{"Box", "LeakEvent"} {
		if !caught[mutant] {
			t.Errorf("seeded mutant %s produced no finding", mutant)
		}
	}
}

// TestEscapeCheckLoadFailure: a pattern matching nothing must surface
// the go tool's error, not a vacuous pass.
func TestEscapeCheckLoadFailure(t *testing.T) {
	_, err := EscapeCheck("testdata/escapemod", []string{"./does-not-exist"})
	if err == nil {
		t.Fatalf("EscapeCheck on a nonexistent package succeeded")
	}
}

// TestEscapeCheckNoAnnotations: proving a package with no hot
// functions is vacuous and must be an error, not success.
func TestEscapeCheckNoAnnotations(t *testing.T) {
	_, err := EscapeCheck("testdata/escapemod", []string{"./cold"})
	if err == nil || !strings.Contains(err.Error(), "netvet:hotpath") {
		t.Fatalf("expected no-annotations error, got %v", err)
	}
}
