// Package a exercises the atomicmix analyzer: mixed atomic/plain
// field access, the plainaccess waiver, and the typed-atomic and
// atomic-only exemptions.
package a

import "sync/atomic"

type mixed struct {
	n     int64
	ready uint32
	clean int64
	typed atomic.Int64
}

func (m *mixed) bump() {
	atomic.AddInt64(&m.n, 1)
	atomic.StoreUint32(&m.ready, 1)
	atomic.AddInt64(&m.clean, 1)
	m.typed.Add(1)
}

func (m *mixed) read() int64 {
	if m.ready == 1 { // want `atomicmix: field ready is accessed via sync/atomic.StoreUint32`
		return m.n // want `atomicmix: field n is accessed via sync/atomic.AddInt64`
	}
	return atomic.LoadInt64(&m.n)
}

func (m *mixed) write(v int64) {
	m.n = v // want `atomicmix: field n`
}

func (m *mixed) sealed() int64 {
	//netvet:allow plainaccess -- sealed+drained: no concurrent writers remain
	return m.n
}

func (m *mixed) cleanOnly() int64 {
	// clean is only ever touched atomically: no finding.
	return atomic.LoadInt64(&m.clean)
}

func (m *mixed) typedOnly() int64 {
	// typed atomics have no plain form; selecting the field to call
	// its methods is not a mix.
	return m.typed.Load()
}

type untouched struct {
	n int64
}

func (u *untouched) plain() int64 {
	// n here is a different field object than mixed.n: never flagged.
	u.n++
	return u.n
}
