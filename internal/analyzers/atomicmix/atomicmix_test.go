package atomicmix_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/atomicmix"
)

func TestAtomicmixFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
