// Package atomicmix flags struct fields that are accessed through
// sync/atomic in one place and by plain load or store in another.
//
// A field touched by both `atomic.AddInt64(&x.f, 1)` and a bare `x.f`
// is a data race waiting for the memory model to collect: the plain
// access carries no happens-before edge, and the race detector only
// catches it on schedules that actually collide. The analyzer finds
// the mix statically: any field passed by address to a sync/atomic
// function anywhere in the package makes every plain selection of
// that field elsewhere a finding.
//
// Deliberate plain accesses exist — the epoch handoff reads a retired
// engine's counters after seal+drain guarantee quiescence — and are
// annotated where they stand:
//
//	//netvet:allow plainaccess -- sealed+drained: no concurrent writers
//
// Fields of the typed atomic kinds (atomic.Int64, atomic.Pointer[T],
// ...) are exempt: they have no plain form to mix with (copying one
// is go vet copylocks' business). Test files are exempt, matching the
// other netvet analyzers: tests freely poke internals under
// single-goroutine setups.
package atomicmix

import (
	"go/ast"
	"go/types"

	"countnet/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both through sync/atomic and by plain load/store\n\n" +
		"A field passed by address to a sync/atomic function anywhere in the package\n" +
		"must not also be read or written plainly; annotate deliberate seal-protected\n" +
		"reads with //netvet:allow plainaccess -- reason.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	allows := analysis.CollectAllows(pass.Fset, pass.Files)

	// Pass 1: fields whose address is taken by a sync/atomic call, and
	// the selector nodes that feed those calls (excluded from pass 2).
	atomicFields := map[*types.Var]string{} // field → atomic func name
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := selectedField(pass, sel)
			if field == nil {
				return true
			}
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = fun.Sel.Name
			}
			atomicSites[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: plain selections of those fields.
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			field := selectedField(pass, sel)
			if field == nil {
				return true
			}
			fn, mixed := atomicFields[field]
			if !mixed {
				return true
			}
			if allows.Allowed(pass.Fset, sel.Pos(), "plainaccess") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"atomicmix: field %s is accessed via sync/atomic.%s elsewhere but plainly here; use the atomic accessor or annotate %s plainaccess -- reason",
				field.Name(), fn, analysis.AllowPrefix)
			return true
		})
	}
	return nil, nil
}

// selectedField resolves sel to the struct field it selects, or nil.
// Fields of sync/atomic's typed kinds are dropped: they have no plain
// access form to mix with.
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if named, ok := field.Type().(interface{ Obj() *types.TypeName }); ok {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
			return nil
		}
	}
	return field
}
