// Package a exercises the hotpath analyzer: every construct the
// check bans, its allow escapes, and the panic-argument exemption.
package a

import "fmt"

// sum is a clean hot path: straight-line integer work; the panic
// argument (an fmt.Sprintf) is exempt because panic paths are cold.
//
//netvet:hotpath
func sum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	if s < 0 {
		panic(fmt.Sprintf("negative sum %d", s))
	}
	return s
}

// cold is unannotated: anything goes.
func cold(m map[string]int) string {
	defer fmt.Println("bye")
	s := ""
	for k := range m {
		s += k
	}
	return s
}

//netvet:hotpath
func deferred(f func()) {
	defer f() // want `hotpath: defer in //netvet:hotpath function deferred`
}

//netvet:hotpath
func mapping(m map[string]int, k string) int {
	return m[k] // want `hotpath: map index`
}

//netvet:hotpath
func mapMake() map[string]int {
	return make(map[string]int) // want `hotpath: map make`
}

//netvet:hotpath
func mapRange(m map[string]int) int {
	t := 0
	for _, v := range m { // want `hotpath: range over map`
		t += v
	}
	delete(m, "k") // want `hotpath: map delete`
	return t
}

//netvet:hotpath
func channels(ch chan int) int {
	ch <- 1   // want `hotpath: channel send`
	v := <-ch // want `hotpath: channel receive`
	close(ch) // want `hotpath: channel close`
	return v
}

//netvet:hotpath
func chanMake() chan int {
	return make(chan int, 1) // want `hotpath: channel make`
}

//netvet:hotpath
func selects() {
	select { // want `hotpath: select`
	default:
	}
}

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

//netvet:hotpath
func converts(i impl) boxer {
	var b boxer
	b = i // want `hotpath: implicit interface conversion \(assignment\)`
	_ = b
	return i // want `hotpath: implicit interface conversion \(return\)`
}

//netvet:hotpath
func explicitConv(i impl) boxer {
	return boxer(i) // want `hotpath: interface conversion`
}

//netvet:hotpath
func argBox(v int64) {
	sink(v) // want `hotpath: implicit interface conversion \(argument\)`
}

func sink(any) {}

//netvet:hotpath
func asserts(b boxer) impl {
	return b.(impl) // want `hotpath: interface type assertion`
}

//netvet:hotpath
func typeswitch(b boxer) int {
	switch b.(type) { // want `hotpath: type switch`
	default:
		return 0
	}
}

//netvet:hotpath
func capture(n int) func() int {
	return func() int { return n } // want `hotpath: closure capturing local "n"`
}

//netvet:hotpath
func nocapture() func() int {
	return func() int { return 42 }
}

//netvet:hotpath
func concat(a, b string) string {
	return a + b // want `hotpath: string concatenation`
}

//netvet:hotpath
func constConcat() string {
	return "a" + "b" // folded at compile time: fine
}

//netvet:hotpath
func formats(v int64) string {
	return fmt.Sprintf("%d", v) // want `hotpath: fmt.Sprintf call` `hotpath: implicit interface conversion \(argument\)`
}

//netvet:hotpath
func appends(dst []int64, v int64) []int64 {
	return append(dst, v) // want `hotpath: append`
}

//netvet:hotpath
func appendAllowed(dst []int64, v int64) []int64 {
	//netvet:allow append -- growth is amortized and audited here
	return append(dst, v)
}

//netvet:hotpath
func allowAll(m map[string]int, k string) int {
	return m[k] //netvet:allow hotpath -- fixture demonstrating the blanket waiver
}
