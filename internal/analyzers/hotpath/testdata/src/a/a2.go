package a

// Second fixture file: directives and //netvet:allow annotations are
// collected package-wide, so multi-file packages behave like
// single-file ones.

//netvet:hotpath
func otherFile(ch chan int) {
	ch <- 2 // want `hotpath: channel send`
}

//netvet:hotpath
func otherFileAllowed(dst []byte, b byte) []byte {
	//netvet:allow append -- scratch buffer growth audited in file two
	return append(dst, b)
}
