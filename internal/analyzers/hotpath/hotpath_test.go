package hotpath_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/hotpath"
)

func TestHotpathFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "a")
}
