// Package hotpath polices functions annotated as steady-state hot
// paths.
//
// A function opts in by carrying
//
//	//netvet:hotpath
//
// in its doc comment. The annotation is a claim: this function is on
// the per-token/per-value fast path, stays a handful of instructions
// per step, and allocates nothing in steady state. The analyzer
// rejects the constructs that silently break that claim:
//
//   - defer: costs a frame record per call even when inlined away of
//     late; hot functions release resources with straight-line code;
//   - map and channel operations (index, range, send, receive,
//     select, make, delete, close, literals): hash work, runtime
//     calls, and potential blocking have no place in a balancer step;
//   - interface conversions, explicit or implicit (call arguments,
//     assignments, returns) and type assertions: boxing a concrete
//     value into an interface is how "zero-alloc" paths grow an
//     allocation per token;
//   - closures capturing enclosing locals: the captured variable is
//     forced to the heap;
//   - string concatenation and any call into fmt: both allocate;
//   - append without an explicit `//netvet:allow append` on the line:
//     growth must be an audited, amortized event (pool storage,
//     pre-sized scratch), never an accident.
//
// Arguments of panic calls are exempt: panic paths are cold by
// definition, and their diagnostics (fmt.Sprintf in a bounds message)
// say nothing about steady state. `//netvet:allow hotpath -- reason`
// waives any finding on its line; `//netvet:allow append -- reason`
// waives specifically the append check.
//
// The static check is one half of the proof; `netvet -escape` replays
// the compiler's escape analysis over the same annotations and fails
// if anything in a hot function escapes to the heap (see
// internal/analysis/escape.go).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"countnet/internal/analysis"
)

// Directive marks a function as a proven hot path in its doc comment.
const Directive = "//netvet:hotpath"

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "reject allocation and runtime-call hazards in //netvet:hotpath functions\n\n" +
		"Annotated functions may not contain defers, map or channel operations,\n" +
		"interface conversions, closures capturing locals, string concatenation,\n" +
		"fmt calls, or un-annotated appends. Panic arguments are exempt (cold path);\n" +
		"//netvet:allow hotpath and //netvet:allow append waive findings per line.",
	Run: run,
}

// HasDirective reports whether doc carries the //netvet:hotpath
// marker. Shared with the escape prover so both tools agree on what
// "annotated" means.
func HasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	allows := analysis.CollectAllows(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !HasDirective(fd.Doc) {
				continue
			}
			c := &checker{pass: pass, fd: fd, allows: allows}
			ast.Inspect(fd.Body, c.visit)
		}
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	allows analysis.Allows
}

// report emits a finding unless the line carries a hotpath allow (or
// the check-specific word, when one exists).
func (c *checker) report(pos token.Pos, word, format string, args ...any) {
	if c.allows.Allowed(c.pass.Fset, pos, "hotpath") {
		return
	}
	if word != "" && c.allows.Allowed(c.pass.Fset, pos, word) {
		return
	}
	args = append(args, c.fd.Name.Name)
	c.pass.Reportf(pos, "hotpath: "+format+" in //netvet:hotpath function %s", args...)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.DeferStmt:
		c.report(n.Pos(), "", "defer")
	case *ast.CallExpr:
		return c.call(n)
	case *ast.TypeAssertExpr:
		// Type-switch guards (Type == nil) are handled via the
		// enclosing TypeSwitchStmt so the message names the construct.
		if n.Type != nil {
			c.report(n.Pos(), "", "interface type assertion")
		}
	case *ast.TypeSwitchStmt:
		c.report(n.Pos(), "", "type switch")
	case *ast.IndexExpr:
		if isMap(c.typeOf(n.X)) {
			c.report(n.Pos(), "", "map index")
		}
	case *ast.RangeStmt:
		if t := c.typeOf(n.X); isMap(t) {
			c.report(n.Pos(), "", "range over map")
		} else if isChan(t) {
			c.report(n.Pos(), "", "range over channel")
		}
	case *ast.SendStmt:
		c.report(n.Pos(), "", "channel send")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			c.report(n.Pos(), "", "channel receive")
		}
	case *ast.SelectStmt:
		c.report(n.Pos(), "", "select")
	case *ast.CompositeLit:
		if isMap(c.typeOf(n)) {
			c.report(n.Pos(), "", "map literal")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isNonConstString(n) {
			c.report(n.Pos(), "", "string concatenation")
		}
	case *ast.AssignStmt:
		c.assign(n)
	case *ast.ReturnStmt:
		c.returnStmt(n)
	case *ast.FuncLit:
		if name := c.captured(n); name != "" {
			c.report(n.Pos(), "", "closure capturing local %q", name)
		}
		// Keep walking: the literal's body runs on the hot path too.
	}
	return true
}

// call checks one call expression; the return value tells ast.Inspect
// whether to descend into the call's children.
func (c *checker) call(call *ast.CallExpr) bool {
	// Builtins first.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// Panic paths are cold by definition; nothing inside
				// the argument list counts against the hot path.
				return false
			case "append":
				c.report(call.Pos(), "append",
					"append (growth must be audited: annotate //netvet:allow append -- reason)")
			case "delete":
				c.report(call.Pos(), "", "map delete")
			case "close":
				c.report(call.Pos(), "", "channel close")
			case "make":
				if t := c.typeOf(call); isMap(t) {
					c.report(call.Pos(), "", "map make")
				} else if isChan(t) {
					c.report(call.Pos(), "", "channel make")
				}
			}
			return true
		}
	}
	// Conversions: T(x) boxing a concrete value into an interface.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && c.boxes(tv.Type, call.Args[0]) {
			c.report(call.Pos(), "", "interface conversion")
		}
		return true
	}
	// fmt is allocation by construction (boxed variadics, buffers).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(call.Pos(), "", "fmt.%s call", sel.Sel.Name)
			}
		}
	}
	// Implicit boxing at call arguments.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			c.callArgs(call, sig)
		}
	}
	return true
}

// callArgs flags concrete arguments passed to interface-typed
// parameters (the hidden allocation of variadic printf-style APIs).
func (c *checker) callArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// s... forwards the slice unchanged.
				continue
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				dst = sl.Elem()
			}
		case i < params.Len():
			dst = params.At(i).Type()
		}
		if c.boxes(dst, arg) {
			c.report(arg.Pos(), "", "implicit interface conversion (argument)")
		}
	}
}

func (c *checker) assign(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		// := gives the variable the RHS type; no boxing possible.
		return
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(c.typeOf(as.Lhs[0])) {
		c.report(as.Pos(), "", "string concatenation")
		return
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if c.boxes(c.typeOf(lhs), as.Rhs[i]) {
			c.report(as.Rhs[i].Pos(), "", "implicit interface conversion (assignment)")
		}
	}
}

func (c *checker) returnStmt(ret *ast.ReturnStmt) {
	if c.fd.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range c.fd.Type.Results.List {
		t := c.typeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // naked return or multi-value forward: nothing new boxed here
	}
	for i, r := range ret.Results {
		if c.boxes(resultTypes[i], r) {
			c.report(r.Pos(), "", "implicit interface conversion (return)")
		}
	}
}

// captured returns the name of an enclosing-function local the
// literal captures by reference, or "".
func (c *checker) captured(fl *ast.FuncLit) string {
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured ⇔ declared inside the enclosing function (receiver,
		// parameters, or body) but outside the literal itself.
		if v.Pos() >= c.fd.Pos() && v.Pos() < c.fd.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// boxes reports whether assigning src into a dst-typed slot converts
// a concrete value to an interface. Type parameters and nil are not
// boxing; interface-to-interface conversions are runtime calls but
// not allocations and are left to the type-assertion check.
func (c *checker) boxes(dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	if _, ok := tv.Type.(*types.TypeParam); ok {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func (c *checker) isNonConstString(e *ast.BinaryExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // folded at compile time
	}
	return isString(tv.Type)
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
