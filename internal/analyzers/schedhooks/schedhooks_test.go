package schedhooks_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/schedhooks"
)

func TestInstrumentedPackage(t *testing.T) {
	analysistest.Run(t, "testdata", schedhooks.Analyzer, "a")
}

func TestUnmarkedPackage(t *testing.T) {
	analysistest.Run(t, "testdata", schedhooks.Analyzer, "b")
}
