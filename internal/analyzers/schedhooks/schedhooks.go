// Package schedhooks polices the deterministic-replay discipline of
// packages instrumented for the internal/sched schedule-exploration
// harness.
//
// A package opts in by carrying the marker comment
//
//	//netvet:sched-instrumented
//
// anywhere in one of its files (the convention is next to the package
// clause of the file defining the Hooked entry points). Inside an
// instrumented package:
//
//   - every `go` statement must be annotated with `//netvet:allow
//     spawn` on its own line or the line above. Instrumented
//     substrates run their logical processes as scheduler-controlled
//     tasks; a raw spawn is either the harness itself or a
//     production-only worker pool, and both must be explicitly
//     acknowledged so new spawns cannot creep onto replayed paths
//     unaudited;
//   - sources of nondeterminism are forbidden unless annotated with
//     `//netvet:allow nondeterminism`: time.Now/Since/After/Tick/
//     Sleep/NewTimer/NewTicker/AfterFunc, and math/rand's package-
//     level functions, which draw from the shared global source.
//     Seeded generators (rand.New, rand.NewSource, ...) are fine:
//     they are pure functions of the recorded seed, which is exactly
//     how the harness's strategies reproduce executions;
//   - runtime.Gosched needs `//netvet:allow gosched`: a controlled
//     task must park through Yield.Step/Block, never by nudging the
//     real scheduler.
//
// The annotations are deliberate friction: each one marks a line the
// next reader must re-audit against docs/TESTING.md's determinism
// rules when touching it.
//
// Test files are exempt: the suites deliberately pair free-running
// stress lanes (raw goroutines, wall-clock timeouts) with the
// sched-controlled lanes, and only shipped code paths are replayed.
package schedhooks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the schedhooks pass.
var Analyzer = &analysis.Analyzer{
	Name: "schedhooks",
	Doc: "check sched-instrumented packages for unhooked spawns and nondeterminism\n\n" +
		"In packages marked //netvet:sched-instrumented, `go` statements, time.Now-style\n" +
		"clock reads, global math/rand draws and runtime.Gosched must carry an explicit\n" +
		"//netvet:allow annotation.",
	Run: run,
}

const (
	marker      = "//netvet:sched-instrumented"
	allowPrefix = analysis.AllowPrefix
)

// forbiddenTime lists the time package functions that read the real
// clock or schedule against it.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"Sleep": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRand lists the math/rand package-level constructors that are
// deterministic given a seed; everything else at package level draws
// from the shared global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	instrumented := false
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == marker {
					instrumented = true
				}
			}
		}
	}
	if !instrumented {
		return nil, nil
	}

	allows := analysis.CollectAllows(pass.Fset, pass.Files)
	allowed := func(pos token.Pos, word string) bool {
		return allows.Allowed(pass.Fset, pos, word)
	}

	for _, f := range pass.Files {
		// Test files are exempt: the suites deliberately pair
		// free-running stress lanes (raw goroutines, timeouts) with the
		// sched-controlled lanes; the discipline binds shipped paths.
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !allowed(n.Pos(), "spawn") {
					pass.Reportf(n.Pos(),
						"schedhooks: goroutine spawned in a sched-instrumented package; run it as a harness task (sched.Runner.Go) or annotate with %s spawn", allowPrefix)
				}
			case *ast.CallExpr:
				checkCall(pass, n, allowed)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, allowed func(token.Pos, string) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgPath := importedPackage(pass, ident)
	name := sel.Sel.Name
	switch {
	case pkgPath == "time" && forbiddenTime[name]:
		if !allowed(call.Pos(), "nondeterminism") {
			pass.Reportf(call.Pos(),
				"schedhooks: time.%s in a sched-instrumented package breaks deterministic replay; thread the value in from the caller or annotate with %s nondeterminism", name, allowPrefix)
		}
	case pkgPath == "math/rand" && !allowedRand[name]:
		if !allowed(call.Pos(), "nondeterminism") {
			pass.Reportf(call.Pos(),
				"schedhooks: rand.%s draws from math/rand's global source; use a seeded rand.New(rand.NewSource(seed)) or annotate with %s nondeterminism", name, allowPrefix)
		}
	case pkgPath == "runtime" && name == "Gosched":
		if !allowed(call.Pos(), "gosched") {
			pass.Reportf(call.Pos(),
				"schedhooks: runtime.Gosched in a sched-instrumented package; controlled tasks park via Yield.Step/Block — annotate with %s gosched if this is a production-only path", allowPrefix)
		}
	}
}

// importedPackage resolves ident to the import path of the package it
// names, or "" if it is not a package qualifier.
func importedPackage(pass *analysis.Pass, ident *ast.Ident) string {
	if pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
