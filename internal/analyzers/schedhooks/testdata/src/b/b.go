// Package b has no sched-instrumented marker: nothing is flagged even
// though it spawns goroutines and reads the clock.
package b

import "time"

func work() {}

func free() time.Time {
	go work()
	return time.Now()
}
