// Package a is a schedhooks fixture: an instrumented package with
// hooked and unhooked concurrency.
//
//netvet:sched-instrumented
package a

import (
	"math/rand"
	"runtime"
	"time"
)

func work() {}

func spawns() {
	go work() // want `schedhooks: goroutine spawned in a sched-instrumented package`

	//netvet:allow spawn
	go work()

	go work() //netvet:allow spawn
}

func clock() time.Time {
	return time.Now() // want `schedhooks: time\.Now in a sched-instrumented package breaks deterministic replay`
}

func pause() {
	time.Sleep(time.Millisecond) // want `schedhooks: time\.Sleep`
	//netvet:allow nondeterminism
	time.Sleep(time.Millisecond)
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // deterministic: allowed
}

func global() int {
	return rand.Intn(10) // want `schedhooks: rand\.Intn draws from math/rand's global source`
}

func spin() {
	runtime.Gosched() // want `schedhooks: runtime\.Gosched in a sched-instrumented package`

	//netvet:allow gosched
	runtime.Gosched()
}

// methodCalls exercises the selector path that must NOT be flagged: a
// method named like a forbidden function on a non-package receiver.
type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func methods() int {
	var c fakeClock
	return c.Now()
}
