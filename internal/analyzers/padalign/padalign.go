// Package padalign enforces the layout contracts of structs that are
// deliberately padded against false sharing.
//
// The concurrent substrates keep their contended per-gate and per-slot
// state in structs whose exact byte size is part of the design:
// runner.asyncHot and counter.combineSlot occupy 128 bytes so that no
// two elements of their hot slices ever share a 64-byte cache line
// (and adjacent-line prefetchers never couple neighbours), and
// counter.padded places 64 bytes of padding before its counter so
// consecutive slice elements' counters land on distinct lines. Those
// sizes silently rot when a field is added or resized: the trailing
// `_ [128 - N]byte` pad is hand-derived from the other fields' sizes.
//
// A struct opts in with a directive in its doc comment:
//
//	//netvet:padalign 128
//
// padalign then proves, at vet time, that
//
//   - the struct's size under gc/amd64 layout is exactly the pinned
//     number of bytes (so any field change forces the author to
//     re-derive the padding and revisit the sharing argument), and
//   - every raw 64-bit field (int64/uint64) is 8-byte aligned under
//     gc/386 layout, where the compiler does not align them naturally
//     and sync/atomic operations on unaligned words fault. Fields of
//     the self-aligning sync/atomic.Int64/Uint64 types are exempt.
//
// Sizes are computed for fixed target layouts, not the host's, so the
// check's verdict is identical on every development machine and in CI.
package padalign

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the padalign pass.
var Analyzer = &analysis.Analyzer{
	Name: "padalign",
	Doc: "check that //netvet:padalign structs keep their pinned size and 64-bit field alignment\n\n" +
		"A struct whose doc comment carries `//netvet:padalign N` must be exactly N\n" +
		"bytes under gc/amd64 layout, and its raw int64/uint64 fields must be 8-byte\n" +
		"aligned under gc/386 layout.",
	Run: run,
}

const directive = "//netvet:padalign"

func run(pass *analysis.Pass) (any, error) {
	sizesAMD64 := types.SizesFor("gc", "amd64")
	sizes386 := types.SizesFor("gc", "386")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				arg, ok := padalignArg(doc)
				if !ok {
					continue
				}
				checkStruct(pass, ts, arg, sizesAMD64, sizes386)
			}
		}
	}
	return nil, nil
}

func padalignArg(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directive); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, arg string, sizes64, sizes32 types.Sizes) {
	want, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || want <= 0 {
		pass.Reportf(ts.Pos(), "padalign: directive needs a positive byte size, got %q", arg)
		return
	}
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "padalign: directive on non-struct type %s", ts.Name.Name)
		return
	}
	if got := sizes64.Sizeof(st); got != want {
		pass.Reportf(ts.Pos(),
			"padalign: struct %s is %d bytes under gc/amd64, but the directive pins %d; re-derive the padding field and the false-sharing argument",
			ts.Name.Name, got, want)
	}

	// 386 alignment of raw 64-bit words: the compiler only 4-aligns
	// them there, and sync/atomic on a misaligned word faults.
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizes32.Offsetsof(fields)
	for i, fv := range fields {
		if !isRaw64(fv.Type()) {
			continue
		}
		if offsets[i]%8 != 0 {
			pass.Reportf(fv.Pos(),
				"padalign: field %s.%s (%s) sits at offset %d under gc/386; 64-bit atomics need 8-byte alignment — move it to the front or use sync/atomic.Int64",
				ts.Name.Name, fv.Name(), fv.Type(), offsets[i])
		}
	}
}

// isRaw64 reports whether t is a plain int64/uint64 (possibly through
// named types), as opposed to the self-aligning sync/atomic wrappers.
func isRaw64(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return false
		}
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}
