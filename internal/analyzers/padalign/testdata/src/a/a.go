// Package a is a padalign fixture: structs that honour and violate
// the pinned-size and 64-bit-alignment contracts.
package a

import "sync/atomic"

// good mirrors runner.asyncHot: contended state first, padding derived
// so the element is exactly 128 bytes.
//
//netvet:padalign 128
type good struct {
	count atomic.Int64
	seq   int64
	_     [112]byte
}

// wrongSize claims 128 bytes but a field was added without re-deriving
// the padding.
//
//netvet:padalign 128
type wrongSize struct { // want `padalign: struct wrongSize is 136 bytes under gc/amd64, but the directive pins 128`
	count atomic.Int64
	seq   int64
	extra int64
	_     [112]byte
}

// misaligned pins the right amd64 size, but its raw counter lands on a
// 4-byte boundary under gc/386, where 64-bit atomics fault.
//
//netvet:padalign 16
type misaligned struct {
	flag bool
	seq  int64 // want `padalign: field misaligned.seq \(int64\) sits at offset 4 under gc/386`
}

// selfAligning is fine everywhere: atomic.Int64 aligns itself.
//
//netvet:padalign 16
type selfAligning struct {
	flag bool
	seq  atomic.Int64
}

//netvet:padalign 8
type notStruct int // want `padalign: directive on non-struct type notStruct`

//netvet:padalign big
type badArg struct { // want `padalign: directive needs a positive byte size, got "big"`
	x int64
}

// unpinned has no directive and is never checked.
type unpinned struct {
	flag bool
	seq  int64
}

// gateObs mirrors obs.GateObs: two independently padded counters in
// one 128-byte element, so a gate's token count and its contention
// count never share a cache line with each other or with neighbours.
//
//netvet:padalign 128
type gateObs struct {
	tokens    atomic.Int64
	_         [56]byte
	contended atomic.Int64
	_         [56]byte
}

// paddedCount mirrors obs.PaddedCount: one counter per 128-byte
// element.
//
//netvet:padalign 128
type paddedCount struct {
	v atomic.Int64
	_ [120]byte
}

// hist mirrors obs.Hist: five leading atomics, a 64-bucket atomic
// array, and trailing padding rounding the element to 576 bytes so
// adjacent histograms in a slice never share the watermark line.
//
//netvet:padalign 576
type hist struct {
	count      atomic.Int64
	sum        atomic.Int64
	min        atomic.Int64
	max        atomic.Int64
	casRetries atomic.Int64
	buckets    [64]atomic.Int64
	_          [24]byte
}

// histShrunk is hist after someone halves the bucket count without
// re-deriving the padding — the directive catches the stale pin.
//
//netvet:padalign 576
type histShrunk struct { // want `padalign: struct histShrunk is 320 bytes under gc/amd64, but the directive pins 576`
	count      atomic.Int64
	sum        atomic.Int64
	min        atomic.Int64
	max        atomic.Int64
	casRetries atomic.Int64
	buckets    [32]atomic.Int64
	_          [24]byte
}
