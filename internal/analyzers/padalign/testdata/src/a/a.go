// Package a is a padalign fixture: structs that honour and violate
// the pinned-size and 64-bit-alignment contracts.
package a

import "sync/atomic"

// good mirrors runner.asyncHot: contended state first, padding derived
// so the element is exactly 128 bytes.
//
//netvet:padalign 128
type good struct {
	count atomic.Int64
	seq   int64
	_     [112]byte
}

// wrongSize claims 128 bytes but a field was added without re-deriving
// the padding.
//
//netvet:padalign 128
type wrongSize struct { // want `padalign: struct wrongSize is 136 bytes under gc/amd64, but the directive pins 128`
	count atomic.Int64
	seq   int64
	extra int64
	_     [112]byte
}

// misaligned pins the right amd64 size, but its raw counter lands on a
// 4-byte boundary under gc/386, where 64-bit atomics fault.
//
//netvet:padalign 16
type misaligned struct {
	flag bool
	seq  int64 // want `padalign: field misaligned.seq \(int64\) sits at offset 4 under gc/386`
}

// selfAligning is fine everywhere: atomic.Int64 aligns itself.
//
//netvet:padalign 16
type selfAligning struct {
	flag bool
	seq  atomic.Int64
}

//netvet:padalign 8
type notStruct int // want `padalign: directive on non-struct type notStruct`

//netvet:padalign big
type badArg struct { // want `padalign: directive needs a positive byte size, got "big"`
	x int64
}

// unpinned has no directive and is never checked.
type unpinned struct {
	flag bool
	seq  int64
}
