package padalign_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/padalign"
)

func TestPadalign(t *testing.T) {
	analysistest.Run(t, "testdata", padalign.Analyzer, "a")
}
