// Package a is a fieldalign fixture.
package a

type waste struct { // want `fieldalign: struct waste is 24 bytes; reordering fields by decreasing alignment shrinks it to 16`
	a byte
	b int64
	c byte
}

type packed struct {
	b int64
	a byte
	c byte
}

// padded layouts are design, not waste: blank fields exempt a struct.
type padded struct {
	a byte
	b int64
	c byte
	_ [40]byte
}

// pinned layouts are padalign's jurisdiction.
//
//netvet:padalign 24
type pinned struct {
	a byte
	b int64
	c byte
}

type tiny struct {
	a byte
	b int64
}
