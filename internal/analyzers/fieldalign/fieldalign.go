// Package fieldalign reports structs whose fields could be reordered
// to occupy fewer bytes, a dependency-free equivalent of the x/tools
// fieldalignment pass (which CI additionally runs at a pinned
// version).
//
// The check is sizing-only and deliberately conservative about the
// layouts this repository pins on purpose:
//
//   - structs containing a blank (`_`) field are skipped — blank
//     fields are always intentional padding (false-sharing isolation,
//     alignment scaffolding), and "optimizing" them away is a bug the
//     padalign analyzer exists to catch from the other direction;
//   - structs whose doc comment carries a //netvet:padalign directive
//     are skipped for the same reason;
//   - zero-sized fields are left alone (their legal placements have
//     subtle aliasing consequences), and structs under three fields
//     cannot be improved by reordering.
//
// A diagnostic is only emitted when a concrete reordering — sort by
// decreasing alignment, then decreasing size — yields a strictly
// smaller struct, so every report is actionable as stated.
package fieldalign

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the fieldalign pass.
var Analyzer = &analysis.Analyzer{
	Name: "fieldalign",
	Doc: "report structs that would shrink if their fields were reordered\n\n" +
		"Skips structs with blank padding fields and //netvet:padalign layouts,\n" +
		"whose ordering is part of the design.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	sizes := pass.TypesSizes
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasPadalign(ts.Doc) || hasPadalign(gd.Doc) {
					continue
				}
				checkStruct(pass, ts, sizes)
			}
		}
	}
	return nil, nil
}

func hasPadalign(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//netvet:padalign") {
			return true
		}
	}
	return false
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, sizes types.Sizes) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() < 3 {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fv := st.Field(i)
		if fv.Name() == "_" || sizes.Sizeof(fv.Type()) == 0 {
			return // intentional padding / zero-size subtleties: skip
		}
		fields[i] = fv
	}
	actual := sizes.Sizeof(st)
	sorted := append([]*types.Var(nil), fields...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ai, aj := sizes.Alignof(sorted[i].Type()), sizes.Alignof(sorted[j].Type())
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(sorted[i].Type()) > sizes.Sizeof(sorted[j].Type())
	})
	if best := layoutSize(sorted, sizes); best < actual {
		pass.Reportf(ts.Pos(),
			"fieldalign: struct %s is %d bytes; reordering fields by decreasing alignment shrinks it to %d",
			ts.Name.Name, actual, best)
	}
}

// layoutSize computes the gc struct size for fields laid out in the
// given order.
func layoutSize(fields []*types.Var, sizes types.Sizes) int64 {
	var off, maxAlign int64 = 0, 1
	for _, fv := range fields {
		a := sizes.Alignof(fv.Type())
		if a > maxAlign {
			maxAlign = a
		}
		off = align(off, a)
		off += sizes.Sizeof(fv.Type())
	}
	return align(off, maxAlign)
}

func align(x, a int64) int64 {
	return (x + a - 1) / a * a
}
