package fieldalign_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/fieldalign"
)

func TestFieldAlign(t *testing.T) {
	analysistest.Run(t, "testdata", fieldalign.Analyzer, "a")
}
