package epochorder

import (
	"go/ast"
	"go/token"
)

// node is one statement in the intraprocedural control-flow graph.
// steps holds the protocol steps bound to the statement's line by
// //netvet:epoch markers.
type node struct {
	pos   token.Pos
	steps []string
	succs []*node
}

func (n *node) has(step string) bool {
	for _, s := range n.steps {
		if s == step {
			return true
		}
	}
	return false
}

// builder constructs a conservative CFG for one function body. The
// supported surface is everything the epoch-handoff code uses — if,
// for, range, switch, type switch, select, return, break, continue —
// plus straight-line statements. goto and labels set unsupported:
// dominance over arbitrary label graphs is not worth the complexity
// for protocol functions that must be simple by design, so the
// analyzer reports them instead of guessing.
type builder struct {
	steps func(token.Pos) []string // line-indexed marker lookup

	entry       *node
	nodes       []*node
	breakDst    []*[]*node // innermost-first break collectors (loops, switch, select)
	continueDst []*node    // innermost-first loop headers
	unsupported bool
}

func buildCFG(body *ast.BlockStmt, steps func(token.Pos) []string) *builder {
	b := &builder{steps: steps}
	b.entry = &node{pos: body.Pos()}
	b.nodes = append(b.nodes, b.entry)
	b.stmts(body.List, []*node{b.entry})
	return b
}

func (b *builder) newNode(s ast.Stmt) *node {
	n := &node{pos: s.Pos(), steps: b.steps(s.Pos())}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *builder) link(from []*node, to *node) {
	for _, f := range from {
		f.succs = append(f.succs, to)
	}
}

func (b *builder) stmts(list []ast.Stmt, in []*node) []*node {
	for _, s := range list {
		in = b.stmt(s, in)
	}
	return in
}

// stmt wires one statement into the graph and returns the frontier of
// nodes from which control falls through to the next statement.
func (b *builder) stmt(s ast.Stmt, in []*node) []*node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, in)

	case *ast.IfStmt:
		n := b.newNode(s)
		b.link(in, n)
		out := b.stmts(s.Body.List, []*node{n})
		if s.Else != nil {
			out = append(out, b.stmt(s.Else, []*node{n})...)
		} else {
			out = append(out, n)
		}
		return out

	case *ast.ForStmt:
		n := b.newNode(s)
		b.link(in, n)
		var breaks []*node
		b.breakDst = append(b.breakDst, &breaks)
		b.continueDst = append(b.continueDst, n)
		bodyOut := b.stmts(s.Body.List, []*node{n})
		b.link(bodyOut, n) // back edge
		b.breakDst = b.breakDst[:len(b.breakDst)-1]
		b.continueDst = b.continueDst[:len(b.continueDst)-1]
		if s.Cond != nil {
			breaks = append(breaks, n) // conditional loops also exit at the header
		}
		return breaks

	case *ast.RangeStmt:
		n := b.newNode(s)
		b.link(in, n)
		var breaks []*node
		b.breakDst = append(b.breakDst, &breaks)
		b.continueDst = append(b.continueDst, n)
		bodyOut := b.stmts(s.Body.List, []*node{n})
		b.link(bodyOut, n)
		b.breakDst = b.breakDst[:len(b.breakDst)-1]
		b.continueDst = b.continueDst[:len(b.continueDst)-1]
		return append(breaks, n) // ranges always terminate at the header

	case *ast.SwitchStmt:
		return b.switchLike(s, s.Body, in)
	case *ast.TypeSwitchStmt:
		return b.switchLike(s, s.Body, in)

	case *ast.SelectStmt:
		n := b.newNode(s)
		b.link(in, n)
		var breaks []*node
		b.breakDst = append(b.breakDst, &breaks)
		var out []*node
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			out = append(out, b.stmts(cc.Body, []*node{n})...)
		}
		b.breakDst = b.breakDst[:len(b.breakDst)-1]
		return append(out, breaks...)

	case *ast.ReturnStmt:
		n := b.newNode(s)
		b.link(in, n)
		return nil

	case *ast.BranchStmt:
		n := b.newNode(s)
		b.link(in, n)
		if s.Label != nil {
			b.unsupported = true
			return nil
		}
		switch s.Tok {
		case token.BREAK:
			if len(b.breakDst) > 0 {
				dst := b.breakDst[len(b.breakDst)-1]
				*dst = append(*dst, n)
			}
			return nil
		case token.CONTINUE:
			if len(b.continueDst) > 0 {
				n.succs = append(n.succs, b.continueDst[len(b.continueDst)-1])
			}
			return nil
		case token.GOTO:
			b.unsupported = true
			return nil
		default: // fallthrough: approximated as falling to the join
			return []*node{n}
		}

	case *ast.LabeledStmt:
		b.unsupported = true
		return b.stmt(s.Stmt, in)

	default:
		// Straight-line statements: expressions, assignments, decls,
		// sends, defers, go statements, empty statements.
		n := b.newNode(s)
		b.link(in, n)
		return []*node{n}
	}
}

// switchLike wires a switch or type switch: header → each clause
// body; a missing default means the header itself falls through.
func (b *builder) switchLike(s ast.Stmt, body *ast.BlockStmt, in []*node) []*node {
	n := b.newNode(s)
	b.link(in, n)
	var breaks []*node
	b.breakDst = append(b.breakDst, &breaks)
	var out []*node
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		out = append(out, b.stmts(cc.Body, []*node{n})...)
	}
	b.breakDst = b.breakDst[:len(b.breakDst)-1]
	out = append(out, breaks...)
	if !hasDefault {
		out = append(out, n)
	}
	return out
}
