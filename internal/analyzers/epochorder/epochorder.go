// Package epochorder proves protocol-step ordering over annotated
// functions by CFG dominance.
//
// The adaptive counter's engine switch (internal/counter/adaptive.go)
// is only gap-free because every switch path performs seal → drain →
// fence → install in exactly that order: sealing redirects new
// arrivals, draining waits out in-flight issuers, the fence reads the
// retired engine's final count, and only then is the new epoch
// installed. Reordering any two steps silently reintroduces the gap
// the handoff tests hunt at runtime; this analyzer refutes such a
// reorder at vet time.
//
// A protocol function declares its step sequence in its doc comment:
//
//	//netvet:epochorder seal drain fence install
//
// and marks the statement performing each step with a line marker on
// the line above (or trailing on the same line):
//
//	//netvet:epoch drain
//	for _, s := range *c.slots.Load() { ... }
//
// A marker may carry several steps when one statement performs them
// together (e.g. `//netvet:epoch fence install` on a call to a helper
// that is itself checked with its own //netvet:epochorder directive);
// multiple words follow the declared order.
//
// For every ordered pair of declared steps (A before B), the analyzer
// walks the function's control-flow graph from the entry and reports
// any B-marked statement reachable without passing an A-marked one.
// Every declared step must be marked at least once, marker words must
// come from the declared list, and markers outside a directive-bearing
// function are flagged. goto and labels make dominance ambiguous and
// are rejected: protocol functions must be simple by construction.
package epochorder

import (
	"go/ast"
	"go/token"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the epochorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochorder",
	Doc: "check that //netvet:epochorder functions perform their protocol steps in order on every path\n\n" +
		"Functions declaring `//netvet:epochorder seal drain fence install` must mark each\n" +
		"step with a `//netvet:epoch <step>` line marker; the analyzer reports any later\n" +
		"step reachable through the CFG before an earlier one (e.g. install before drain).",
	Run: run,
}

const (
	directivePrefix = "//netvet:epochorder"
	markerPrefix    = "//netvet:epoch"
)

// marker is one //netvet:epoch comment.
type marker struct {
	pos   token.Pos
	file  string
	line  int
	steps []string
	used  bool
}

func run(pass *analysis.Pass) (any, error) {
	markers := collectMarkers(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			steps, ok := directiveSteps(fd.Doc)
			if !ok {
				continue
			}
			checkFunc(pass, fd, steps, markers)
		}
	}

	for _, m := range markers {
		if !m.used {
			pass.Reportf(m.pos,
				"epochorder: %s marker outside a %s function", markerPrefix, directivePrefix)
		}
	}
	return nil, nil
}

// collectMarkers gathers every //netvet:epoch comment. Words stop at
// an embedded "//" or "--" so trailing commentary does not become
// step names.
func collectMarkers(pass *analysis.Pass) []*marker {
	var out []*marker
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, markerPrefix)
				if !ok || strings.HasPrefix(rest, "order") {
					continue // not a marker (or the directive itself)
				}
				posn := pass.Fset.Position(c.Pos())
				out = append(out, &marker{
					pos:   c.Pos(),
					file:  posn.Filename,
					line:  posn.Line,
					steps: cutWords(rest),
				})
			}
		}
	}
	return out
}

// directiveSteps extracts the declared step list from a doc comment,
// reporting whether the directive is present.
func directiveSteps(doc *ast.CommentGroup) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, directivePrefix); ok {
			return cutWords(rest), true
		}
	}
	return nil, false
}

// cutWords splits rest into words, stopping at "--" (reason
// separator) or "//" (nested comment, e.g. fixture want markers).
func cutWords(rest string) []string {
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, steps []string, markers []*marker) {
	if len(steps) == 0 {
		pass.Reportf(fd.Pos(), "epochorder: %s directive lists no steps", directivePrefix)
		return
	}
	declared := map[string]int{}
	for i, s := range steps {
		if _, dup := declared[s]; dup {
			pass.Reportf(fd.Pos(), "epochorder: duplicate step %q in %s", s, fd.Name.Name)
			return
		}
		declared[s] = i
	}
	if fd.Body == nil {
		pass.Reportf(fd.Pos(), "epochorder: %s on a function with no body", directivePrefix)
		return
	}

	// Bind markers inside this function's line range. A marker covers
	// its own line (trailing form) and the next (line-above form).
	start := pass.Fset.Position(fd.Body.Pos())
	end := pass.Fset.Position(fd.Body.End())
	byLine := map[int][]string{}
	marked := map[string]bool{}
	for _, m := range markers {
		if m.file != start.Filename || m.line < start.Line || m.line > end.Line {
			continue
		}
		m.used = true
		for _, s := range m.steps {
			if _, ok := declared[s]; !ok {
				pass.Reportf(m.pos,
					"epochorder: step %q is not declared by %s's %s directive", s, fd.Name.Name, directivePrefix)
				continue
			}
			marked[s] = true
			byLine[m.line] = append(byLine[m.line], s)
			byLine[m.line+1] = append(byLine[m.line+1], s)
		}
	}
	for _, s := range steps {
		if !marked[s] {
			pass.Reportf(fd.Pos(),
				"epochorder: step %q declared but never marked in %s (add a %s %s line marker)", s, fd.Name.Name, markerPrefix, s)
		}
	}

	cfg := buildCFG(fd.Body, func(pos token.Pos) []string {
		return byLine[pass.Fset.Position(pos).Line]
	})
	if cfg.unsupported {
		pass.Reportf(fd.Pos(),
			"epochorder: unsupported control flow (goto or label) in %s; cannot prove protocol order", fd.Name.Name)
		return
	}

	for i, a := range steps {
		for _, b := range steps[i+1:] {
			checkPair(pass, fd, cfg.entry, a, b, steps)
		}
	}
}

// checkPair reports the first statement marked b that is reachable
// from the entry without passing a statement marked a. A node marked
// with both performs them in declared order and satisfies the pair.
func checkPair(pass *analysis.Pass, fd *ast.FuncDecl, entry *node, a, b string, steps []string) {
	seen := map[*node]bool{}
	var dfs func(n *node) bool // true once a violation is reported
	dfs = func(n *node) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if n.has(a) {
			return false // a performed: everything beyond is ordered
		}
		if n.has(b) {
			pass.Reportf(n.pos,
				"epochorder: step %q reachable before step %q in %s (protocol order: %s)",
				b, a, fd.Name.Name, strings.Join(steps, " "))
			return true
		}
		for _, s := range n.succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	dfs(entry)
}
