package epochorder_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/epochorder"
)

func TestEpochorderFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", epochorder.Analyzer, "a")
}
