// Package a exercises the epochorder analyzer: in-order protocols
// across branches and loops, the seeded install-before-drain mutant,
// and the directive/marker validity checks.
package a

import "sync/atomic"

type epoch struct {
	sealed atomic.Bool
	active atomic.Int64
}

type ctr struct {
	base int64
	cur  atomic.Pointer[epoch]
}

// good performs the full protocol in order on the straight line.
//
//netvet:epochorder seal drain fence install
func (c *ctr) good(e *epoch) {
	//netvet:epoch seal
	e.sealed.Store(true)
	//netvet:epoch drain
	for e.active.Load() != 0 {
	}
	//netvet:epoch fence
	c.base++
	//netvet:epoch install
	c.cur.Store(&epoch{})
}

// goodBranch: early return before the protocol starts is fine, and a
// combined fence+install marker on one statement follows declared
// order.
//
//netvet:epochorder seal drain fence install
func (c *ctr) goodBranch(e *epoch, skip bool) {
	if skip {
		return
	}
	//netvet:epoch seal
	e.sealed.Store(true)
	if e.active.Load() == 0 {
		//netvet:epoch drain fence install
		c.cur.Store(&epoch{})
		return
	}
	//netvet:epoch drain
	for e.active.Load() != 0 {
	}
	//netvet:epoch fence
	c.base++
	//netvet:epoch install
	c.cur.Store(&epoch{})
}

// viaSwitch: every switch arm installs after the seal.
//
//netvet:epochorder seal install
func (c *ctr) viaSwitch(e *epoch, mode int) {
	//netvet:epoch seal
	e.sealed.Store(true)
	switch mode {
	case 0:
		//netvet:epoch install
		c.cur.Store(&epoch{})
	default:
		//netvet:epoch install
		c.cur.Store(nil)
	}
}

// mutant is the seeded reorder: install runs before drain.
//
//netvet:epochorder seal drain install
func (c *ctr) mutant(e *epoch) {
	//netvet:epoch seal
	e.sealed.Store(true)
	//netvet:epoch install
	c.cur.Store(&epoch{}) // want `epochorder: step "install" reachable before step "drain"`
	//netvet:epoch drain
	for e.active.Load() != 0 {
	}
}

// skipsDrain: one branch bypasses the drain entirely.
//
//netvet:epochorder seal drain install
func (c *ctr) skipsDrain(e *epoch, fast bool) {
	//netvet:epoch seal
	e.sealed.Store(true)
	if !fast {
		//netvet:epoch drain
		for e.active.Load() != 0 {
		}
	}
	//netvet:epoch install
	c.cur.Store(&epoch{}) // want `epochorder: step "install" reachable before step "drain"`
}

//netvet:epochorder seal drain
func (c *ctr) unmarked(e *epoch) { // want `epochorder: step "drain" declared but never marked in unmarked`
	//netvet:epoch seal
	e.sealed.Store(true)
}

//netvet:epochorder seal
func (c *ctr) unknownWord(e *epoch) {
	//netvet:epoch seal sealx // want `epochorder: step "sealx" is not declared`
	e.sealed.Store(true)
}

func (c *ctr) stray(e *epoch) {
	//netvet:epoch seal // want `epochorder: //netvet:epoch marker outside a //netvet:epochorder function`
	e.sealed.Store(true)
}

//netvet:epochorder seal drain
func (c *ctr) gotos(e *epoch) { // want `epochorder: unsupported control flow \(goto or label\) in gotos`
	//netvet:epoch seal
	e.sealed.Store(true)
	goto done
done:
	//netvet:epoch drain
	for e.active.Load() != 0 {
	}
}

//netvet:epochorder seal seal
func (c *ctr) dup(e *epoch) { // want `epochorder: duplicate step "seal" in dup`
	e.sealed.Store(true)
}

//netvet:epochorder
func (c *ctr) empty() { // want `epochorder: //netvet:epochorder directive lists no steps`
}
