// Package analyzers registers the repository's custom vet passes.
// cmd/netvet runs All either standalone or as a `go vet -vettool`;
// docs/TESTING.md documents what each pass enforces.
package analyzers

import (
	"countnet/internal/analysis"
	"countnet/internal/analyzers/atomicmix"
	"countnet/internal/analyzers/ctorerr"
	"countnet/internal/analyzers/epochorder"
	"countnet/internal/analyzers/fieldalign"
	"countnet/internal/analyzers/hotpath"
	"countnet/internal/analyzers/padalign"
	"countnet/internal/analyzers/schedhooks"
)

// All lists every analyzer netvet applies, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctorerr.Analyzer,
		epochorder.Analyzer,
		fieldalign.Analyzer,
		hotpath.Analyzer,
		padalign.Analyzer,
		schedhooks.Analyzer,
	}
}
