package ctorerr_test

import (
	"testing"

	"countnet/internal/analysis/analysistest"
	"countnet/internal/analyzers/ctorerr"
)

func TestCtorErr(t *testing.T) {
	analysistest.Run(t, "testdata", ctorerr.Analyzer, "a")
}
