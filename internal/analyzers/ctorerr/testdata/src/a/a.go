// Package a is a ctorerr fixture: a constructor shaped like the
// repository's network builders, called with its error handled,
// discarded and dropped.
package a

import "errors"

type Network struct{ width int }

// BuildK mimics core.K: (*Network, error) with a factorization check.
func BuildK(factors ...int) (*Network, error) {
	if len(factors) == 0 {
		return nil, errors.New("empty factorization")
	}
	return &Network{width: len(factors)}, nil
}

// Other returns an error without a *Network: not a constructor, never
// flagged.
func Other() (int, error) { return 0, nil }

func dropped() {
	BuildK(2, 2)       // want `ctorerr: result of BuildK is unused: the constructor error is dropped`
	go BuildK(2, 2)    // want `ctorerr: constructor error from BuildK is unreachable in a go statement`
	defer BuildK(2, 2) // want `ctorerr: constructor error from BuildK is unreachable in a defer statement`

	n, _ := BuildK(2, 2) // want `ctorerr: error from BuildK assigned to _`
	_ = n

	Other() // not a constructor
}

func handled() (*Network, error) {
	n, err := BuildK(2, 3)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// forwarded passes the whole result through: the caller owns the error.
func forwarded() (*Network, error) {
	return BuildK(2, 3)
}
