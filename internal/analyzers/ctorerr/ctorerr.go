// Package ctorerr checks that errors returned by network constructors
// are not discarded.
//
// Every construction entry point in this repository — core.K/L/R/New,
// countnet.NewK/NewL/NewR, the baseline family, MergerNetwork,
// BitonicConverterNetwork — returns (*Network, error), and the error
// carries the factorization-validity analysis (empty factorizations,
// factors below 2, width overflow). Discarding it turns a bad
// factorization into a nil-pointer crash far from the call site, or —
// worse — into a network that silently fails the step property.
//
// ctorerr flags any call whose signature ends in error and includes a
// *Network result (from any package) when
//
//   - the call is used as a statement (including `go` / `defer`), or
//   - the error result is assigned to the blank identifier.
//
// Test files are exempt: `n, _ := NewK(2, 2)` on a literal the test
// itself pins is idiomatic, and a nil network fails the test
// immediately anyway.
package ctorerr

import (
	"go/ast"
	"go/types"

	"countnet/internal/analysis"
)

// Analyzer is the ctorerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctorerr",
	Doc: "check that network constructor errors are consumed\n\n" +
		"Calls returning (*Network, ..., error) must not be used as bare statements\n" +
		"or have their error assigned to _. Test files are exempt.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportDropped(pass, call, "result of %s is unused: the constructor error is dropped")
				}
			case *ast.GoStmt:
				reportDropped(pass, n.Call, "constructor error from %s is unreachable in a go statement")
			case *ast.DeferStmt:
				reportDropped(pass, n.Call, "constructor error from %s is unreachable in a defer statement")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// ctorSig reports whether sig looks like a network constructor: the
// last result is error and some result is a pointer to a named type
// called Network. errIdx is the error result's position.
func ctorSig(sig *types.Signature) (errIdx int, ok bool) {
	res := sig.Results()
	if res.Len() < 2 {
		return 0, false
	}
	last := res.At(res.Len() - 1).Type()
	named, isNamed := last.(*types.Named)
	if !isNamed || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return 0, false
	}
	for i := 0; i < res.Len()-1; i++ {
		ptr, isPtr := res.At(i).Type().(*types.Pointer)
		if !isPtr {
			continue
		}
		if n, isN := ptr.Elem().(*types.Named); isN && n.Obj().Name() == "Network" {
			return res.Len() - 1, true
		}
	}
	return 0, false
}

func callSig(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

func reportDropped(pass *analysis.Pass, call *ast.CallExpr, format string) {
	sig := callSig(pass, call)
	if sig == nil {
		return
	}
	if _, ok := ctorSig(sig); ok {
		pass.Reportf(call.Pos(), "ctorerr: "+format, types.ExprString(call.Fun))
	}
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Only the multi-value form `n, err := f(...)` maps results to
	// LHS positions one-to-one.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sig := callSig(pass, call)
	if sig == nil {
		return
	}
	errIdx, ok := ctorSig(sig)
	if !ok || errIdx >= len(as.Lhs) {
		return
	}
	if id, isIdent := as.Lhs[errIdx].(*ast.Ident); isIdent && id.Name == "_" {
		pass.Reportf(as.Pos(),
			"ctorerr: error from %s assigned to _; a bad factorization becomes a nil network here — check it",
			types.ExprString(call.Fun))
	}
}
