// Package factor enumerates the factorizations that parameterize the
// paper's network family: a width w admits one network per (multiset)
// factorization w = p0 * ... * pn-1 with every pi >= 2. Coarser
// factorizations trade wider balancers for smaller depth; finer ones
// the opposite (paper Sections 1 and 6).
package factor

import "sort"

// PrimeFactors returns the prime factorization of w >= 2 in
// non-decreasing order.
func PrimeFactors(w int) []int {
	if w < 2 {
		return nil
	}
	var out []int
	for w%2 == 0 {
		out = append(out, 2)
		w /= 2
	}
	for d := 3; d*d <= w; d += 2 {
		for w%d == 0 {
			out = append(out, d)
			w /= d
		}
	}
	if w > 1 {
		out = append(out, w)
	}
	return out
}

// Factorizations returns every multiset factorization of w into factors
// >= minFactor, each factorization in non-increasing order, including
// the trivial factorization {w}. Factorizations are ordered by length
// then lexicographically, deterministic for a given w.
func Factorizations(w, minFactor int) [][]int {
	if minFactor < 2 {
		minFactor = 2
	}
	if w < minFactor {
		return nil
	}
	var out [][]int
	var cur []int
	var rec func(rem, maxF int)
	rec = func(rem, maxF int) {
		if rem == 1 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for f := min(maxF, rem); f >= minFactor; f-- {
			if rem%f == 0 {
				cur = append(cur, f)
				rec(rem/f, f)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(w, w)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] > out[j][k]
			}
		}
		return false
	})
	return out
}

// Balanced returns, for a width w and a requested number of factors n,
// a factorization of w into at most n factors that minimizes the
// maximum factor: the prime factors of w greedily combined into n
// buckets (smallest product first). If w has fewer than n prime
// factors, the prime factorization itself is returned.
func Balanced(w, n int) []int {
	primes := PrimeFactors(w)
	if len(primes) <= n {
		out := append([]int(nil), primes...)
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
		return out
	}
	buckets := make([]int, n)
	for i := range buckets {
		buckets[i] = 1
	}
	// Largest primes first into the currently smallest bucket.
	for i := len(primes) - 1; i >= 0; i-- {
		mi := 0
		for j := 1; j < n; j++ {
			if buckets[j] < buckets[mi] {
				mi = j
			}
		}
		buckets[mi] *= primes[i]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(buckets)))
	return buckets
}

// Permutations returns all distinct orderings of the multiset fs.
// The paper notes each ordering yields a different network of equal
// formula depth; the E-suite uses this to measure how orderings differ
// in gate count.
func Permutations(fs []int) [][]int {
	sorted := append([]int(nil), fs...)
	sort.Ints(sorted)
	var out [][]int
	used := make([]bool, len(sorted))
	cur := make([]int, 0, len(sorted))
	var rec func()
	rec = func() {
		if len(cur) == len(sorted) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		prev := -1
		for i, v := range sorted {
			if used[i] || v == prev {
				continue
			}
			prev = v
			used[i] = true
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// BestOrdering returns the ordering of the multiset fs minimizing
// metric (ties broken by enumeration order, which is deterministic).
// The paper observes all orderings share the same depth formula, but
// gate counts — and therefore hardware or memory cost — differ; this
// picks the cheapest.
func BestOrdering(fs []int, metric func([]int) int) []int {
	perms := Permutations(fs)
	if len(perms) == 0 {
		return nil
	}
	best := perms[0]
	bestM := metric(best)
	for _, p := range perms[1:] {
		if m := metric(p); m < bestM {
			best, bestM = p, m
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
