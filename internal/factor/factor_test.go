package factor

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		w    int
		want []int
	}{
		{2, []int{2}},
		{12, []int{2, 2, 3}},
		{30, []int{2, 3, 5}},
		{97, []int{97}},
		{1024, []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
		{1, nil},
		{0, nil},
	}
	for _, c := range cases {
		if got := PrimeFactors(c.w); !reflect.DeepEqual(got, c.want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestPrimeFactorsProductProperty(t *testing.T) {
	f := func(raw uint16) bool {
		w := int(raw%5000) + 2
		prod := 1
		for _, p := range PrimeFactors(w) {
			prod *= p
		}
		return prod == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFactorizationsKnownCounts(t *testing.T) {
	// Multiplicative partition counts: 12 -> {12},{6,2},{4,3},{3,2,2}: 4.
	cases := []struct {
		w    int
		want int
	}{
		{2, 1}, {4, 2}, {6, 2}, {8, 3}, {12, 4}, {16, 5}, {24, 7}, {30, 5}, {36, 9},
	}
	for _, c := range cases {
		got := Factorizations(c.w, 2)
		if len(got) != c.want {
			t.Errorf("Factorizations(%d) has %d entries, want %d: %v", c.w, len(got), c.want, got)
		}
	}
}

func TestFactorizationsInvariants(t *testing.T) {
	for _, w := range []int{2, 12, 30, 60, 64, 100} {
		fss := Factorizations(w, 2)
		seen := map[string]bool{}
		for _, fs := range fss {
			prod := 1
			for i, f := range fs {
				if f < 2 {
					t.Fatalf("w=%d: factor %d < 2 in %v", w, f, fs)
				}
				if i > 0 && fs[i-1] < f {
					t.Fatalf("w=%d: %v not non-increasing", w, fs)
				}
				prod *= f
			}
			if prod != w {
				t.Fatalf("w=%d: %v multiplies to %d", w, fs, prod)
			}
			key := ""
			for _, f := range fs {
				key += ":" + string(rune(f))
			}
			if seen[key] {
				t.Fatalf("w=%d: duplicate factorization %v", w, fs)
			}
			seen[key] = true
		}
	}
}

func TestFactorizationsMinFactor(t *testing.T) {
	fss := Factorizations(24, 3)
	for _, fs := range fss {
		for _, f := range fs {
			if f < 3 {
				t.Errorf("minFactor=3 violated in %v", fs)
			}
		}
	}
	// 24 with factors >= 3: {24}, {8,3}, {6,4}: 3 entries.
	if len(fss) != 3 {
		t.Errorf("Factorizations(24,3) = %v", fss)
	}
	if Factorizations(1, 2) != nil {
		t.Error("Factorizations(1) should be empty")
	}
}

func TestBalanced(t *testing.T) {
	cases := []struct {
		w, n int
		want []int
	}{
		{30, 3, []int{5, 3, 2}},
		{30, 2, []int{6, 5}},
		{64, 3, []int{4, 4, 4}},
		{64, 2, []int{8, 8}},
		{7, 3, []int{7}},
		{12, 4, []int{3, 2, 2}}, // fewer primes than n: prime factorization
	}
	for _, c := range cases {
		got := Balanced(c.w, c.n)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Balanced(%d,%d) = %v, want %v", c.w, c.n, got, c.want)
		}
		prod := 1
		for _, f := range got {
			prod *= f
		}
		if prod != c.w {
			t.Errorf("Balanced(%d,%d) product %d", c.w, c.n, prod)
		}
	}
}

func TestBalancedMinimizesSpread(t *testing.T) {
	// For 2^k into n buckets the greedy split is provably balanced.
	got := Balanced(1<<10, 5)
	if len(got) != 5 {
		t.Fatalf("Balanced(1024,5) = %v", got)
	}
	if got[0] != 4 {
		t.Errorf("Balanced(1024,5) max factor %d, want 4", got[0])
	}
}

func TestPermutations(t *testing.T) {
	perms := Permutations([]int{2, 3, 5})
	if len(perms) != 6 {
		t.Errorf("3 distinct factors: %d perms, want 6", len(perms))
	}
	perms = Permutations([]int{2, 2, 3})
	if len(perms) != 3 {
		t.Errorf("multiset {2,2,3}: %d perms, want 3", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		key := ""
		for _, f := range p {
			key += ":" + string(rune('0'+f))
		}
		if seen[key] {
			t.Errorf("duplicate permutation %v", p)
		}
		seen[key] = true
		s := append([]int(nil), p...)
		sort.Ints(s)
		if !reflect.DeepEqual(s, []int{2, 2, 3}) {
			t.Errorf("permutation %v is not of the multiset", p)
		}
	}
	if got := Permutations(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Permutations(nil) = %v, want one empty ordering", got)
	}
}

func TestBestOrdering(t *testing.T) {
	// Metric: prefer the ordering whose first element is largest.
	got := BestOrdering([]int{2, 3, 5}, func(ord []int) int { return -ord[0] })
	if got[0] != 5 {
		t.Errorf("BestOrdering = %v, want 5 first", got)
	}
	// Product invariance.
	prod := 1
	for _, f := range got {
		prod *= f
	}
	if prod != 30 {
		t.Errorf("BestOrdering changed the multiset: %v", got)
	}
	if BestOrdering(nil, func([]int) int { return 0 }) != nil {
		// Permutations(nil) yields one empty ordering, BestOrdering
		// returns it; both nil and empty are acceptable here.
		t.Log("BestOrdering(nil) returned a non-nil empty slice")
	}
	calls := 0
	BestOrdering([]int{2, 2, 3}, func([]int) int { calls++; return calls })
	if calls != 3 {
		t.Errorf("metric called %d times, want once per distinct ordering (3)", calls)
	}
}
