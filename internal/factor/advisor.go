package factor

// Measurement-driven factorization advisor: given an observed
// concurrency profile, recommend the L-family factorization whose
// width/depth point (the paper's Theorem 7 tradeoff) minimizes a
// contention-aware traversal cost. This replaces eyeballing the static
// tradeoff table: the adaptive counter feeds its live load estimate in
// and gets the factorization the measured crossover structure favours.
//
// The cost model is deliberately coarse — a per-layer base cost plus a
// superlinear penalty once the expected tokens per balancer exceed the
// balancer's service capacity — with constants calibrated so the model
// reproduces the orderings in the committed BENCH_counter.json lanes
// (wide shallow networks win at moderate load on one word per
// balancer; finer factorizations only pay off once per-gate queueing
// dominates). It ranks candidates; it does not predict absolute
// nanoseconds.

import (
	"fmt"
	"sort"
)

// Profile is an observed (or target) load profile.
type Profile struct {
	// Concurrency is the mean number of concurrent requesters inside
	// the counter — the adaptive governor's Little's-law estimate, or
	// a capacity-planning target. Values < 1 are treated as 1.
	Concurrency float64
	// Block is the mean number of values drawn per request (>= 1);
	// batched draws divide per-gate contention by the block size
	// because a block reserves a whole range with one RMW per gate.
	Block float64
}

// Candidate is one factorization with the structural facts the cost
// model needs, supplied by the caller (who can build the real network
// and count gates per layer; the advisor stays free of construction
// dependencies).
type Candidate struct {
	// Factors is the factorization, coarsest first (as fed to L).
	Factors []int
	// Depth is the network's comparator depth.
	Depth int
	// LayerGates is the number of balancers in each layer.
	LayerGates []int
	// MaxWidth is the widest balancer in the network.
	MaxWidth int
}

// Recommendation is the advisor's pick.
type Recommendation struct {
	Factors   []int
	Depth     int
	MaxWidth  int
	Cost      float64 // model cost, comparable only within one Advise call
	Rationale string
}

// Model constants: a layer costs layerNs to step through uncontended;
// each balancer serves roughly one token per slotNs, and tokens beyond
// a balancer's concurrent capacity queue quadratically (cache-line
// ping-pong compounds — the shape, not the slope, is what matters for
// ranking). Calibrated against BENCH_counter.json: at g=8 the trivial
// L(16) beats L(2,2,2,2) by ~16x, while a single word saturates
// somewhere past tens of concurrent requesters.
const (
	advLayerNs   = 18.0
	advContendNs = 1.2
)

// Advise picks the candidate with the lowest modeled per-token
// traversal cost for the profile. Candidates must be non-empty; ties
// break toward smaller depth, then fewer factors, then the
// deterministic candidate order.
func Advise(p Profile, cands []Candidate) (Recommendation, error) {
	if len(cands) == 0 {
		return Recommendation{}, fmt.Errorf("factor: Advise requires at least one candidate")
	}
	conc := p.Concurrency
	if conc < 1 {
		conc = 1
	}
	block := p.Block
	if block < 1 {
		block = 1
	}
	best, bestCost := -1, 0.0
	for i, c := range cands {
		cost := modelCost(conc, block, c)
		if best < 0 || cost < bestCost-1e-9 ||
			(cost < bestCost+1e-9 && better(c, cands[best])) {
			best, bestCost = i, cost
		}
	}
	c := cands[best]
	return Recommendation{
		Factors:  append([]int(nil), c.Factors...),
		Depth:    c.Depth,
		MaxWidth: c.MaxWidth,
		Cost:     bestCost,
		Rationale: fmt.Sprintf(
			"concurrency %.1f, block %.1f: %v (depth %d, max balancer %d) minimizes modeled traversal cost %.0f (constants calibrated on BENCH_counter.json)",
			conc, block, c.Factors, c.Depth, c.MaxWidth, bestCost),
	}, nil
}

// modelCost is the per-token traversal cost: each layer's base step
// plus the queueing penalty of its expected per-balancer occupancy.
func modelCost(conc, block float64, c Candidate) float64 {
	cost := 0.0
	for _, gates := range c.LayerGates {
		if gates < 1 {
			gates = 1
		}
		// Expected concurrent tokens per balancer in this layer; block
		// draws hit each gate once per block, dividing the pressure.
		occ := conc / (float64(gates) * block)
		excess := occ - 1
		if excess < 0 {
			excess = 0
		}
		cost += advLayerNs + advContendNs*excess*excess
	}
	if len(c.LayerGates) == 0 {
		// No layer detail: approximate with depth and uniform gates.
		occ := conc / block
		excess := occ - 1
		if excess < 0 {
			excess = 0
		}
		cost = float64(c.Depth) * (advLayerNs + advContendNs*excess*excess)
	}
	return cost
}

// better is the deterministic tie-break: smaller depth, then fewer
// factors.
func better(a, b Candidate) bool {
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	return len(a.Factors) < len(b.Factors)
}

// Sweep returns recommendations across a set of concurrency points
// (deduplicated consecutive picks retain the first point they won at),
// the data behind the "recommended factorization by load" table in the
// tradeoff example and countbench -sweep output.
func Sweep(points []float64, block float64, cands []Candidate) ([]Recommendation, error) {
	sorted := append([]float64(nil), points...)
	sort.Float64s(sorted)
	out := make([]Recommendation, 0, len(sorted))
	for _, c := range sorted {
		r, err := Advise(Profile{Concurrency: c, Block: block}, cands)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
