package factor

import (
	"reflect"
	"testing"
)

// advTestCandidates: the trivial {16} (one 16-wide balancer, depth 1)
// against the binary L(2,2,2,2) (10 layers of 8 2-balancers) and an
// intermediate {4,4} (2 layers-ish shape, simplified for the model).
func advTestCandidates() []Candidate {
	return []Candidate{
		{Factors: []int{16}, Depth: 1, LayerGates: []int{1}, MaxWidth: 16},
		{Factors: []int{4, 4}, Depth: 4, LayerGates: []int{4, 4, 8, 8}, MaxWidth: 4},
		{Factors: []int{2, 2, 2, 2}, Depth: 10,
			LayerGates: []int{8, 8, 8, 8, 8, 8, 8, 8, 8, 8}, MaxWidth: 2},
	}
}

// TestAdviseFollowsLoad: at low concurrency the shallow trivial
// factorization wins (depth dominates); at very high concurrency the
// queueing penalty on one balancer dominates and a finer factorization
// wins — the paper's width/depth tradeoff, ranked from a load profile.
func TestAdviseFollowsLoad(t *testing.T) {
	cands := advTestCandidates()
	low, err := Advise(Profile{Concurrency: 2}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(low.Factors, []int{16}) {
		t.Fatalf("low load recommends %v, want [16]", low.Factors)
	}
	high, err := Advise(Profile{Concurrency: 256}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(high.Factors, []int{16}) {
		t.Fatalf("high load still recommends the trivial factorization (cost %v)", high.Cost)
	}
	if high.Rationale == "" || low.Rationale == "" {
		t.Fatal("recommendations missing rationale")
	}
}

// TestAdviseBlockDividesPressure: batched draws reserve ranges with
// one RMW per gate per block, so a big block keeps the shallow network
// competitive at loads where single-value draws have moved off it.
func TestAdviseBlockDividesPressure(t *testing.T) {
	cands := advTestCandidates()
	single, err := Advise(Profile{Concurrency: 256, Block: 1}, cands)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Advise(Profile{Concurrency: 256, Block: 64}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(single.Factors, []int{16}) {
		t.Fatal("single-value draws at 256 concurrent should not pick the trivial factorization")
	}
	if !reflect.DeepEqual(blocked.Factors, []int{16}) {
		t.Fatalf("block=64 draws recommend %v, want [16]", blocked.Factors)
	}
}

// TestAdviseMaxWidthMonotone: as concurrency grows the recommended
// widest balancer never grows — more load never argues for a more
// centralized network.
func TestAdviseMaxWidthMonotone(t *testing.T) {
	cands := advTestCandidates()
	prev := 1 << 30
	for _, conc := range []float64{1, 4, 16, 64, 256, 1024} {
		r, err := Advise(Profile{Concurrency: conc}, cands)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxWidth > prev {
			t.Fatalf("concurrency %v recommends max balancer %d, wider than %d at lower load",
				conc, r.MaxWidth, prev)
		}
		prev = r.MaxWidth
	}
}

// TestAdviseDeterministic: same inputs, same pick (ties break on
// depth, then factor count).
func TestAdviseDeterministic(t *testing.T) {
	cands := advTestCandidates()
	a, _ := Advise(Profile{Concurrency: 32}, cands)
	b, _ := Advise(Profile{Concurrency: 32}, cands)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic recommendation: %v vs %v", a, b)
	}
}

// TestAdviseEmptyCandidates errors rather than guessing.
func TestAdviseEmptyCandidates(t *testing.T) {
	if _, err := Advise(Profile{Concurrency: 8}, nil); err == nil {
		t.Fatal("Advise with no candidates did not error")
	}
}

// TestSweepCoversPoints: one recommendation per point, in ascending
// concurrency order.
func TestSweepCoversPoints(t *testing.T) {
	recs, err := Sweep([]float64{64, 1, 8}, 1, advTestCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want 3", len(recs))
	}
	if !reflect.DeepEqual(recs[0].Factors, []int{16}) {
		t.Fatalf("lowest point recommends %v, want [16]", recs[0].Factors)
	}
}
