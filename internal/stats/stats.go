// Package stats provides the small measurement-statistics toolkit the
// benchmark harness uses: summaries over repeated samples so throughput
// tables can report central tendency and spread instead of single
// noisy numbers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64 // == P50, kept for existing callers
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	// One sort serves every quantile.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 50)
	s.P90 = percentileSorted(sorted, 90)
	s.P99 = percentileSorted(sorted, 99)
	s.Median = s.P50
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It panics for an empty sample or
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted non-empty
// sample (linear interpolation between closest ranks).
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.Stddev, s.N)
}

// RelStddev returns the coefficient of variation (stddev/mean), or 0
// when the mean is zero.
func (s Summary) RelStddev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Repeat runs f n times and summarizes the results.
func Repeat(n int, f func() float64) Summary {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = f()
	}
	return Summarize(xs)
}
