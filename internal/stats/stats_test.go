package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5) {
		t.Errorf("N=%d mean=%v", s.N, s.Mean)
	}
	if !approx(s.Stddev, math.Sqrt(32.0/7.0)) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !approx(s.Median, 4.5) {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 || s.Median != 42 {
		t.Errorf("singleton summary: %+v", s)
	}
	c := Summarize([]float64{3, 3, 3})
	if c.Stddev != 0 || c.RelStddev() != 0 {
		t.Errorf("constant sample: %+v", c)
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	// 1..100: with linear interpolation over n-1 ranks,
	// Pq = 1 + q/100*99.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if !approx(s.P50, 50.5) || !approx(s.P90, 90.1) || !approx(s.P99, 99.01) {
		t.Errorf("quantiles: P50=%v P90=%v P99=%v", s.P50, s.P90, s.P99)
	}
	if s.Median != s.P50 {
		t.Errorf("Median (%v) != P50 (%v)", s.Median, s.P50)
	}
}

func TestSummarizeQuantilesSingleton(t *testing.T) {
	// n=1: every quantile is the sole sample.
	s := Summarize([]float64{7})
	if s.P50 != 7 || s.P90 != 7 || s.P99 != 7 {
		t.Errorf("singleton quantiles: %+v", s)
	}
}

func TestSummarizeQuantilesTies(t *testing.T) {
	// All ties: quantiles collapse onto the tied value.
	s := Summarize([]float64{5, 5, 5, 5})
	if s.P50 != 5 || s.P90 != 5 || s.P99 != 5 {
		t.Errorf("tied quantiles: %+v", s)
	}
	// Partial ties: the high quantiles sit inside the tied run.
	p := Summarize([]float64{1, 9, 9, 9})
	if !approx(p.P50, 9) || !approx(p.P90, 9) || !approx(p.P99, 9) {
		t.Errorf("partial-tie quantiles: %+v", p)
	}
	// Unsorted input must yield the same quantiles as sorted input.
	a := Summarize([]float64{4, 1, 3, 2})
	b := Summarize([]float64{1, 2, 3, 4})
	if a.P50 != b.P50 || a.P90 != b.P90 || a.P99 != b.P99 {
		t.Errorf("order dependence: %+v vs %+v", a, b)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{10, 12})
	if !strings.Contains(s.String(), "n=2") {
		t.Errorf("String = %q", s.String())
	}
}

func TestRelStddev(t *testing.T) {
	s := Summarize([]float64{9, 11})
	if !approx(s.RelStddev(), s.Stddev/10) {
		t.Errorf("RelStddev = %v", s.RelStddev())
	}
}

func TestRepeat(t *testing.T) {
	i := 0.0
	s := Repeat(5, func() float64 { i++; return i })
	if s.N != 5 || !approx(s.Mean, 3) {
		t.Errorf("Repeat summary: %+v", s)
	}
}

func TestQuickProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Median < s.Min-1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		if s.P50 > s.P90+1e-9 || s.P90 > s.P99+1e-9 || s.P99 > s.Max+1e-9 {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
