package netcheck

import (
	"strings"
	"testing"

	"countnet/internal/core"
	"countnet/internal/factor"
	"countnet/internal/network"
)

// TestProveFamiliesSweep statically proves the paper's propositions
// across the same factorization sweep cmd/verifyall uses dynamically:
// every factorization of widths 12/16/24/30 for K and L, an R(p,q)
// grid, and a D(p,q) grid. This is the compile-time half of the
// construction matrix.
func TestProveFamiliesSweep(t *testing.T) {
	for _, w := range []int{12, 16, 24, 30} {
		for _, fs := range factor.Factorizations(w, 2) {
			k, err := core.K(fs...)
			if err != nil {
				t.Fatal(err)
			}
			if p := ProveK(k, fs); p.Err() != nil {
				t.Errorf("K%v: %v", fs, p.Err())
			}
			l, err := core.L(fs...)
			if err != nil {
				t.Fatal(err)
			}
			if p := ProveL(l, fs); p.Err() != nil {
				t.Errorf("L%v: %v", fs, p.Err())
			}
			if len(fs) >= 2 {
				m, err := core.MergerNetwork(core.KConfig(), fs...)
				if err != nil {
					t.Fatal(err)
				}
				if p := ProveMergerK(m, fs); p.Err() != nil {
					t.Errorf("M%v: %v", fs, p.Err())
				}
			}
		}
	}
	for p := 2; p <= 9; p++ {
		for q := 2; q <= 9; q++ {
			r, err := core.R(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if pr := ProveR(r, p, q); pr.Err() != nil {
				t.Errorf("R(%d,%d): %v", p, q, pr.Err())
			}
			d, err := core.BitonicConverterNetwork(p, q)
			if err != nil {
				t.Fatal(err)
			}
			if pr := ProveD(d, p, q); pr.Err() != nil {
				t.Errorf("D(%d,%d): %v", p, q, pr.Err())
			}
		}
	}
}

// TestProp1Identity pins the arithmetic identity behind ProveK's depth
// claim: Proposition 6's closed form is Proposition 1 instantiated
// with base depth 1 and staircase depth 3.
func TestProp1Identity(t *testing.T) {
	for n := 2; n <= 64; n++ {
		if core.KDepth(n) != core.CDepth(n, 1, 3) {
			t.Fatalf("n=%d: KDepth=%d, CDepth(n,1,3)=%d", n, core.KDepth(n), core.CDepth(n, 1, 3))
		}
	}
}

// corrupt returns a deep copy of n's gates so tests can break wiring
// without touching the shared original.
func corrupt(n *network.Network) *network.Network {
	c := *n
	c.Gates = append([]network.Gate(nil), n.Gates...)
	for i := range c.Gates {
		c.Gates[i].Wires = append([]int(nil), n.Gates[i].Wires...)
	}
	c.OutputOrder = append([]int(nil), n.OutputOrder...)
	return &c
}

func TestLayeringDetectsEarlyRead(t *testing.T) {
	n, err := core.K(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLayering(n); err != nil {
		t.Fatalf("intact network rejected: %v", err)
	}
	// Pull a late gate onto layer 1: it now reads wires before their
	// earlier writers have run.
	c := corrupt(n)
	c.Gates[len(c.Gates)-1].Layer = 1
	if err := CheckLayering(c); err == nil {
		t.Fatal("layer-1 collision not detected")
	}
}

func TestFanDetectsBadWiring(t *testing.T) {
	n, err := core.K(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFanInOut(n); err != nil {
		t.Fatalf("intact network rejected: %v", err)
	}

	oob := corrupt(n)
	oob.Gates[0].Wires[0] = n.Width() + 3
	if err := CheckFanInOut(oob); err == nil {
		t.Fatal("out-of-range wire not detected")
	}

	dup := corrupt(n)
	dup.Gates[0].Wires[0] = dup.Gates[0].Wires[1]
	if err := CheckFanInOut(dup); err == nil {
		t.Fatal("duplicate wire (fan-in != fan-out) not detected")
	}

	badOut := corrupt(n)
	badOut.OutputOrder[0] = badOut.OutputOrder[1]
	if err := CheckFanInOut(badOut); err == nil {
		t.Fatal("non-permutation output order not detected")
	}
}

func TestDepthFormulaDetectsExtraLayer(t *testing.T) {
	fs := []int{2, 3, 5}
	n, err := core.K(fs...)
	if err != nil {
		t.Fatal(err)
	}
	// An extra balancer on wires {0,1} deepens the critical path past
	// Proposition 6's exact value; StaticDepth must see through the
	// recorded Layer fields and refute the formula.
	c := corrupt(n)
	c.Gates = append(c.Gates, network.Gate{
		ID:    len(c.Gates),
		Wires: []int{0, 1},
		Layer: n.Depth() + 1,
		Label: "extra",
	})
	if got, want := StaticDepth(c), core.KDepth(len(fs))+1; got != want {
		t.Fatalf("StaticDepth=%d, want %d", got, want)
	}
	if p := ProveK(c, fs); p.Err() == nil {
		t.Fatal("depth corruption not refuted")
	}
}

func TestWidthBoundDetectsWideGate(t *testing.T) {
	fs := []int{2, 2, 3}
	n, err := core.K(fs...)
	if err != nil {
		t.Fatal(err)
	}
	c := corrupt(n)
	// Widen gate 0 beyond max(pi*pj) = 6.
	c.Gates[0].Wires = []int{0, 1, 2, 3, 4, 5, 6}
	if err := CheckWidthBound(c, core.MaxPairProduct(fs)); err == nil {
		t.Fatal("over-wide balancer not detected")
	}
}

func TestProofReporting(t *testing.T) {
	n, err := core.R(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := ProveR(n, 3, 4)
	if good.Err() != nil {
		t.Fatalf("R(3,4): %v", good.Err())
	}
	if s := good.Summary(); !strings.Contains(s, "layering=ok") || !strings.Contains(s, "width<=4=ok") {
		t.Fatalf("summary %q missing expected cells", s)
	}

	bad := ProveR(n, 3, 3) // wrong family parameters: io + width bound fail
	if bad.Err() == nil {
		t.Fatal("mismatched parameters not refuted")
	}
	if s := bad.Summary(); !strings.Contains(s, "FAIL") {
		t.Fatalf("summary %q does not mark failures", s)
	}
}

// TestProveOptVariants statically proves the optimal-base variants
// over the same factor sweep as the core tests, and records the depth
// deltas against the constant-base families: for each shape it proves
// Kopt/Lopt within their additive bounds and pins Ropt's exact depth
// (the embedded table depth whenever p*q embeds). The deltas make the
// trade explicit — the opt bases buy 2-wide balancers, not always
// shallower networks: R(2,8) is depth 5 with an up-to-16-wide
// balancer but depth 10 as pure 2-balancers, while R(4,4) drops from
// 12 to 10 and Kopt trades K's single p0·p1-balancer (depth 1) for
// the table sorter's depth.
func TestProveOptVariants(t *testing.T) {
	sweep := [][]int{
		{2, 2}, {2, 3}, {2, 8}, {3, 3}, {3, 5}, {4, 4},
		{2, 2, 2}, {2, 2, 3}, {2, 2, 4}, {2, 3, 4}, {3, 3, 3}, {4, 4, 4},
		{2, 2, 2, 2}, {2, 2, 2, 2, 2},
		{5, 5}, {6, 6}, // beyond the table: fallback bases
	}
	for _, fs := range sweep {
		ko, err := core.KOpt(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if p := ProveKOpt(ko, fs); p.Err() != nil {
			t.Errorf("Kopt%v: %v", fs, p.Err())
		}
		lo, err := core.LOpt(fs...)
		if err != nil {
			t.Fatal(err)
		}
		if p := ProveLOpt(lo, fs); p.Err() != nil {
			t.Errorf("Lopt%v: %v", fs, p.Err())
		}
	}

	// Ropt grid with exact pinned depths next to R's Proposition 10
	// depth — the recorded delta. ProveROpt asserts the embedded cases
	// exactly (table depth, 2-balancers only) and the fallback cases
	// via ProveR.
	for _, tc := range []struct {
		p, q            int
		rDepth, roDepth int
	}{
		{2, 2, 3, 3},   // 4 embeds: same depth, already 2-balancers
		{2, 8, 5, 10},  // 16 embeds: Ropt deeper but 2-wide vs 16-wide
		{3, 5, 7, 10},  // 15 embeds
		{4, 4, 12, 10}, // 16 embeds: Ropt shallower AND narrower
		{4, 5, 14, 14}, // 20 beyond the table: falls back to R(4,5)
		{5, 5, 16, 16}, // fallback
		{6, 6, 16, 16}, // fallback
	} {
		r, err := core.R(tc.p, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Depth(); got != tc.rDepth {
			t.Errorf("R(%d,%d) depth %d, want %d", tc.p, tc.q, got, tc.rDepth)
		}
		ro, err := core.ROpt(tc.p, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got := ro.Depth(); got != tc.roDepth {
			t.Errorf("Ropt(%d,%d) depth %d, want %d", tc.p, tc.q, got, tc.roDepth)
		}
		if pr := ProveROpt(ro, tc.p, tc.q); pr.Err() != nil {
			t.Errorf("Ropt(%d,%d): %v", tc.p, tc.q, pr.Err())
		}
	}
}

// TestProveOptRefutes checks the opt proofs refute wrong networks:
// proving a constant-base network under the opt claims must fail
// where the claims genuinely differ.
func TestProveOptRefutes(t *testing.T) {
	// K(4,4) is a single 16-wide balancer; Kopt(4,4)'s claim is
	// 2-balancers only.
	k, err := core.K(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p := ProveKOpt(k, []int{4, 4}); p.Err() == nil {
		t.Error("K(4,4) accepted as Kopt(4,4): 16-wide balancer not refuted")
	}
	// R(2,8) is depth 5 with wide balancers; Ropt(2,8)'s claim is
	// 2-balancers at exactly the table depth.
	r, err := core.R(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p := ProveROpt(r, 2, 8); p.Err() == nil {
		t.Error("R(2,8) accepted as Ropt(2,8)")
	}
}

// TestKOptWidthBound pins the width-bound helper across embedded and
// fallback shapes.
func TestKOptWidthBound(t *testing.T) {
	for _, tc := range []struct {
		fs   []int
		want int
	}{
		{[]int{7}, 7},
		{[]int{2, 2}, 2},
		{[]int{4, 4}, 2},
		{[]int{2, 2, 2, 2, 2}, 2},
		{[]int{5, 5}, 25},
		{[]int{6, 6}, 36},
		{[]int{2, 3, 4}, 2}, // all pair products <= 12 embed
	} {
		if got := KOptWidthBound(tc.fs); got != tc.want {
			t.Errorf("KOptWidthBound(%v) = %d, want %d", tc.fs, got, tc.want)
		}
	}
}
