// Package netcheck proves properties of constructed networks from the
// wiring alone — no tokens are pushed and no values are sorted.
//
// The paper's guarantees are structural: balancer-width bounds
// (max(pi·pj) for family K, max(p,q) for R and the bitonic converter
// D), exact depth formulas (Proposition 1 for the generic counting
// network, Proposition 3 for the merger, Proposition 6's
// 1.5n² − 3.5n + 2 for K, Theorem 7's bound for L), and the validity
// of the layerization itself. All of these are decidable by walking
// the gate list, in the same spirit in which Bundala & Závodný verify
// sorting-network properties statically rather than by simulation.
// cmd/verifyall runs these proofs next to the dynamic (token-pushing,
// value-sorting) batteries of internal/verify, so every construction
// in the matrix is confirmed twice, by independent means.
//
// Checks re-derive everything they assert from Gates/Wires: the
// recorded Layer fields and the cached depth are cross-checked, never
// trusted, so netcheck also guards the Builder's layer assignment
// against regression.
package netcheck

import (
	"fmt"
	"strings"

	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/optnet"
)

// Property is one statically-proven (or refuted) fact.
type Property struct {
	// Name states the claim, e.g. "layering", "width<=15", "depth=5".
	Name string
	// Err is nil when the claim is proven from the wiring.
	Err error
}

// Proof is the result of proving a family's property bundle for one
// network.
type Proof struct {
	Network string
	Props   []Property
}

func (p *Proof) add(name string, err error) {
	p.Props = append(p.Props, Property{Name: name, Err: err})
}

// Err returns the first failed property, or nil if everything is
// proven.
func (p *Proof) Err() error {
	for _, pr := range p.Props {
		if pr.Err != nil {
			return fmt.Errorf("%s: %s: %w", p.Network, pr.Name, pr.Err)
		}
	}
	return nil
}

// Summary renders the proof as a compact one-line table cell:
// "layering=ok fan=ok width<=15=ok depth=5=ok".
func (p *Proof) Summary() string {
	parts := make([]string, len(p.Props))
	for i, pr := range p.Props {
		status := "ok"
		if pr.Err != nil {
			status = "FAIL"
		}
		parts[i] = pr.Name + "=" + status
	}
	return strings.Join(parts, " ")
}

// CheckFanInOut verifies fan-in/fan-out soundness: every gate touches
// at least two distinct in-range wires (a p-balancer has exactly p
// inputs and p outputs — the same wires), gate IDs agree with
// topological positions, and OutputOrder reads every wire exactly
// once.
func CheckFanInOut(n *network.Network) error {
	w := n.Width()
	if w < 0 {
		return fmt.Errorf("negative width %d", w)
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.ID != i {
			return fmt.Errorf("gate at position %d carries ID %d", i, g.ID)
		}
		if g.Width() < 2 {
			return fmt.Errorf("gate %d has fan-in %d < 2", i, g.Width())
		}
		seen := make(map[int]bool, g.Width())
		for _, wire := range g.Wires {
			if wire < 0 || wire >= w {
				return fmt.Errorf("gate %d touches wire %d outside width %d", i, wire, w)
			}
			if seen[wire] {
				return fmt.Errorf("gate %d touches wire %d twice: fan-in != fan-out", i, wire)
			}
			seen[wire] = true
		}
	}
	if len(n.OutputOrder) != w {
		return fmt.Errorf("output order reads %d wires, want %d", len(n.OutputOrder), w)
	}
	read := make([]bool, w)
	for _, wire := range n.OutputOrder {
		if wire < 0 || wire >= w {
			return fmt.Errorf("output order reads wire %d outside width %d", wire, w)
		}
		if read[wire] {
			return fmt.Errorf("output order reads wire %d twice", wire)
		}
		read[wire] = true
	}
	return nil
}

// CheckLayering verifies that the recorded layerization is valid: no
// gate reads a wire before (or at) the layer of the wire's previous
// writer — which also forces gates within one layer to be
// wire-disjoint — and the recorded depth is exactly the maximum layer.
func CheckLayering(n *network.Network) error {
	lastLayer := make([]int, n.Width())
	maxLayer := 0
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Layer < 1 {
			return fmt.Errorf("gate %d at layer %d < 1", i, g.Layer)
		}
		for _, wire := range g.Wires {
			if wire < 0 || wire >= n.Width() {
				return fmt.Errorf("gate %d touches wire %d outside width %d", i, wire, n.Width())
			}
			if g.Layer <= lastLayer[wire] {
				return fmt.Errorf("gate %d at layer %d reads wire %d whose writer is at layer %d",
					i, g.Layer, wire, lastLayer[wire])
			}
		}
		for _, wire := range g.Wires {
			lastLayer[wire] = g.Layer
		}
		if g.Layer > maxLayer {
			maxLayer = g.Layer
		}
	}
	if maxLayer != n.Depth() {
		return fmt.Errorf("recorded depth %d, maximum layer %d", n.Depth(), maxLayer)
	}
	return nil
}

// StaticDepth recomputes the critical-path depth from the wiring
// alone: the length of the longest gate chain, ignoring the recorded
// Layer fields entirely. This is the quantity the paper's depth
// propositions speak about.
func StaticDepth(n *network.Network) int {
	wireDepth := make([]int, n.Width())
	depth := 0
	for i := range n.Gates {
		layer := 0
		for _, wire := range n.Gates[i].Wires {
			if wireDepth[wire] > layer {
				layer = wireDepth[wire]
			}
		}
		layer++
		for _, wire := range n.Gates[i].Wires {
			wireDepth[wire] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// CheckWidthBound verifies every balancer's width against the
// family's bound.
func CheckWidthBound(n *network.Network, bound int) error {
	for i := range n.Gates {
		if w := n.Gates[i].Width(); w > bound {
			return fmt.Errorf("gate %d (%s) has width %d > bound %d", i, n.Gates[i].Label, w, bound)
		}
	}
	return nil
}

// CheckDepthExact verifies the recomputed critical path equals want.
func CheckDepthExact(n *network.Network, want int) error {
	if got := StaticDepth(n); got != want {
		return fmt.Errorf("static depth %d, formula %d", got, want)
	}
	return nil
}

// CheckDepthAtMost verifies the recomputed critical path is within
// bound.
func CheckDepthAtMost(n *network.Network, bound int) error {
	if got := StaticDepth(n); got > bound {
		return fmt.Errorf("static depth %d exceeds bound %d", got, bound)
	}
	return nil
}

// checkIO verifies the network's width matches the factorization.
func checkIO(n *network.Network, wantWidth int) error {
	if n.Width() != wantWidth {
		return fmt.Errorf("width %d, construction promises %d", n.Width(), wantWidth)
	}
	return nil
}

// structural adds the family-independent properties.
func (p *Proof) structural(n *network.Network, wantWidth int) {
	p.add("io", checkIO(n, wantWidth))
	p.add("fan", CheckFanInOut(n))
	p.add("layering", CheckLayering(n))
}

// ProveK proves family K's paper properties for a built network:
// width p0·…·pn−1, balancers of width at most max(pi·pj), and depth
// exactly 1.5n² − 3.5n + 2 (Proposition 6; equivalently Proposition 1
// instantiated with d = 1, sd = 3).
func ProveK(n *network.Network, factors []int) Proof {
	p := Proof{Network: n.Name}
	p.structural(n, core.Product(factors))
	wb := core.MaxPairProduct(factors)
	p.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	d := core.KDepth(len(factors))
	p.add(fmt.Sprintf("depth=%d", d), CheckDepthExact(n, d))
	return p
}

// ProveL proves family L's paper properties: width p0·…·pn−1,
// balancers of width at most max(pi), and depth at most
// 9.5n² − 12.5n + 3 (Theorem 7).
func ProveL(n *network.Network, factors []int) Proof {
	p := Proof{Network: n.Name}
	p.structural(n, core.Product(factors))
	wb := core.MaxFactor(factors)
	p.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	d := core.LDepthBound(len(factors))
	p.add(fmt.Sprintf("depth<=%d", d), CheckDepthAtMost(n, d))
	return p
}

// ProveR proves R(p,q)'s Section 5.3 properties: width p·q, balancers
// of width at most max(p,q), and constant depth at most 16.
func ProveR(n *network.Network, p, q int) Proof {
	pr := Proof{Network: n.Name}
	pr.structural(n, p*q)
	wb := maxInt(p, q)
	pr.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	pr.add(fmt.Sprintf("depth<=%d", core.RDepthBound), CheckDepthAtMost(n, core.RDepthBound))
	return pr
}

// ProveD proves the bitonic converter D(p,q)'s Section 4.4
// properties: width p·q, balancers of width at most max(p,q), depth
// exactly 2.
func ProveD(n *network.Network, p, q int) Proof {
	pr := Proof{Network: n.Name}
	pr.structural(n, p*q)
	wb := maxInt(p, q)
	pr.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	pr.add("depth=2", CheckDepthExact(n, 2))
	return pr
}

// ProveMergerK proves Proposition 3 on the family-K merger
// M(p0..pn−1): depth exactly d + (n−2)·sd with d = 1, sd = 3, and the
// K balancer-width bound.
func ProveMergerK(n *network.Network, factors []int) Proof {
	p := Proof{Network: n.Name}
	p.structural(n, core.Product(factors))
	wb := core.MaxPairProduct(factors)
	p.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	d := core.MDepth(len(factors), 1, 3)
	p.add(fmt.Sprintf("depth=%d", d), CheckDepthExact(n, d))
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// KOptWidthBound is the balancer-width bound of the Kopt variant:
// with every pairwise factor product within optnet.MaxWidth the
// substituted sorters reduce every base to 2-balancers, so the whole
// network is made of 2-balancers; any pair product beyond the table
// falls back to a bare pq-balancer and re-enters the bound. A single
// factor stays the single p0-balancer of family K.
func KOptWidthBound(factors []int) int {
	if len(factors) == 1 {
		return factors[0]
	}
	wb := 2
	for i, pi := range factors {
		for j, pj := range factors {
			if i != j && pi*pj > optnet.MaxWidth && pi*pj > wb {
				wb = pi * pj
			}
		}
	}
	return wb
}

// ProveKOpt proves the Kopt variant's structural properties: width
// p0·…·pn−1, balancer width at most KOptWidthBound (2 when every
// pairwise product embeds), and depth at most core.KOptDepthBound —
// the Proposition 1/3/6 recursion re-run with the per-slot sorter
// depths. The bound is an inequality rather than Proposition 6's
// exact formula because the builder's earliest-legal layer compaction
// interleaves adjacent sorter stages; the netcheck tests pin the
// exact measured depths (and their deltas against family K).
func ProveKOpt(n *network.Network, factors []int) Proof {
	p := Proof{Network: n.Name}
	p.structural(n, core.Product(factors))
	wb := KOptWidthBound(factors)
	p.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	d := core.KOptDepthBound(factors)
	p.add(fmt.Sprintf("depth<=%d", d), CheckDepthAtMost(n, d))
	return p
}

// ProveLOpt proves the Lopt variant's structural properties: width
// p0·…·pn−1, the family-L balancer bound max(pi) (the substituted
// sorters only narrow gates; the bitonic converters D(p,q) still
// reach max(p,q)), and depth at most core.LOptDepthBound.
func ProveLOpt(n *network.Network, factors []int) Proof {
	p := Proof{Network: n.Name}
	p.structural(n, core.Product(factors))
	wb := maxInt(2, core.MaxFactor(factors))
	p.add(fmt.Sprintf("width<=%d", wb), CheckWidthBound(n, wb))
	d := core.LOptDepthBound(factors)
	p.add(fmt.Sprintf("depth<=%d", d), CheckDepthAtMost(n, d))
	return p
}

// ProveROpt proves the standalone optimal base Ropt(p,q): when p·q
// embeds, the network is exactly the table entry — 2-balancers only,
// depth exactly the table depth (the earliest-legal layering of the
// table is asserted compact by optnet.Verify, so the built depth must
// reproduce it). Beyond the table it degrades to R(p,q)'s Section 5.3
// properties.
func ProveROpt(n *network.Network, p, q int) Proof {
	if on, ok := optnet.For(p * q); ok {
		pr := Proof{Network: n.Name}
		pr.structural(n, p*q)
		pr.add("width<=2", CheckWidthBound(n, 2))
		pr.add(fmt.Sprintf("depth=%d", on.Depth), CheckDepthExact(n, on.Depth))
		return pr
	}
	return ProveR(n, p, q)
}
