package netcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"countnet/internal/core"
	"countnet/internal/factor"
	"countnet/internal/network"
	"countnet/internal/verify"
)

const diffSeed = 0xD1FF

// loadGolden decodes one committed golden network.
func loadGolden(t *testing.T, name string) *network.Network {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "core", "testdata", name+".golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var n network.Network
	if err := json.Unmarshal(data, &n); err != nil {
		t.Fatal(err)
	}
	return &n
}

// TestGoldenStaticVsRuntime is the differential test the static layer
// hangs off: for every golden K/L/R (and D) network, the statically
// proven facts must agree with what internal/verify observes by
// pushing tokens — same depth, same width bound verdict, and a
// positive counting verdict wherever the static proof passes.
func TestGoldenStaticVsRuntime(t *testing.T) {
	cases := []struct {
		name     string
		counting bool // D alone converts bitonic inputs only; skip the counting battery
		prove    func(n *network.Network) Proof
	}{
		{"K_2_2_2", true, func(n *network.Network) Proof { return ProveK(n, []int{2, 2, 2}) }},
		{"L_2_3", true, func(n *network.Network) Proof { return ProveL(n, []int{2, 3}) }},
		{"R_3_3", true, func(n *network.Network) Proof { return ProveR(n, 3, 3) }},
		{"R_5_7", true, func(n *network.Network) Proof { return ProveR(n, 5, 7) }},
		{"D_3_4", false, func(n *network.Network) Proof { return ProveD(n, 3, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := loadGolden(t, tc.name)

			proof := tc.prove(n)
			if err := proof.Err(); err != nil {
				t.Fatalf("static proof failed: %v", err)
			}

			// Depth: the statically recomputed critical path, the
			// recorded layerization, and the runtime bound check must
			// all name the same number.
			sd := StaticDepth(n)
			if sd != n.Depth() {
				t.Fatalf("static depth %d != recorded depth %d", sd, n.Depth())
			}
			if err := verify.CheckDepth(n, sd); err != nil {
				t.Fatalf("runtime disagrees static depth %d is enough: %v", sd, err)
			}
			if err := verify.CheckDepth(n, sd-1); err == nil {
				t.Fatalf("runtime accepts depth bound %d below static depth %d", sd-1, sd)
			}

			// Width: the tightest bound that passes statically must be
			// the tightest that passes at runtime, and one below must
			// fail for both.
			maxW := 0
			for i := range n.Gates {
				if w := n.Gates[i].Width(); w > maxW {
					maxW = w
				}
			}
			if err := CheckWidthBound(n, maxW); err != nil {
				t.Fatalf("static width bound %d: %v", maxW, err)
			}
			if err := verify.CheckBalancerWidth(n, maxW); err != nil {
				t.Fatalf("runtime width bound %d: %v", maxW, err)
			}
			if CheckWidthBound(n, maxW-1) == nil || verify.CheckBalancerWidth(n, maxW-1) == nil {
				t.Fatalf("width bound %d should fail both statically and at runtime", maxW-1)
			}

			// Behaviour: wherever the static proof passes, the dynamic
			// battery must too.
			if tc.counting {
				if err := verify.IsCountingNetworkSeeded(n, diffSeed); err != nil {
					t.Fatalf("static proof passed but runtime battery failed: %v", err)
				}
			}
		})
	}
}

// TestSweepStaticVsRuntime extends the agreement beyond the golden
// snapshots: across a K/L factorization sweep, static and runtime
// verdicts must coincide gate-for-gate on depth and width.
func TestSweepStaticVsRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow in -short mode")
	}
	for _, w := range []int{12, 16} {
		for _, fs := range factor.Factorizations(w, 2) {
			for _, fam := range []struct {
				build func(...int) (*network.Network, error)
				prove func(*network.Network, []int) Proof
			}{
				{core.K, ProveK},
				{core.L, ProveL},
			} {
				n, err := fam.build(fs...)
				if err != nil {
					t.Fatal(err)
				}
				if p := fam.prove(n, fs); p.Err() != nil {
					t.Fatalf("%s: static proof failed: %v", n.Name, p.Err())
				}
				sd := StaticDepth(n)
				if sd != n.Depth() {
					t.Fatalf("%s: static depth %d != recorded %d", n.Name, sd, n.Depth())
				}
				if err := verify.CheckDepth(n, sd); err != nil {
					t.Fatalf("%s: runtime depth: %v", n.Name, err)
				}
				if err := verify.IsCountingNetworkSeeded(n, diffSeed); err != nil {
					t.Fatalf("%s: static proof passed but runtime battery failed: %v", n.Name, err)
				}
			}
		}
	}
}

// TestMutantsStaticConsistency mirrors internal/verify's mutation
// tests on the static side. The static layer proves structure, not
// counting semantics, so it need not catch every mutant the token
// battery catches — but on every single-gate deletion mutant the
// static depth must still agree with the Builder's recorded depth,
// and deleting a whole layer must refute Proposition 6's exact depth
// formula.
func TestMutantsStaticConsistency(t *testing.T) {
	n, err := core.K(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs := []int{2, 2, 2}
	if p := ProveK(n, fs); p.Err() != nil {
		t.Fatalf("intact network: %v", p.Err())
	}
	for idx := range n.Gates {
		m := verify.MutateRemoveGate(n, idx)
		if sd := StaticDepth(m); sd != m.Depth() {
			t.Errorf("remove gate %d: static depth %d != recorded %d", idx, sd, m.Depth())
		}
	}
	// Every layer of K(2,2,2) holds parallel critical paths, so no
	// single deletion shortens the network; deleting the whole final
	// layer must.
	b := network.NewBuilder(n.Width())
	for i := range n.Gates {
		if n.Gates[i].Layer == n.Depth() {
			continue
		}
		b.Add(n.Gates[i].Wires, n.Gates[i].Label)
	}
	m := b.Build(n.Name+"-chopped", n.OutputOrder)
	if sd := StaticDepth(m); sd != n.Depth()-1 {
		t.Fatalf("chopped network has static depth %d, want %d", sd, n.Depth()-1)
	}
	if p := ProveK(m, fs); p.Err() == nil {
		t.Fatal("layer deletion not refuted statically")
	}
}
