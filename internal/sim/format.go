package sim

import (
	"fmt"
	"strings"

	"countnet/internal/network"
)

// FormatPaths renders the result of RunTraced as one line per token:
// the wires visited, the gates traversed with arrival ranks, and the
// exit position with the Fetch&Increment value the token would be
// assigned. It is the textual analogue of the token-flow arrows in the
// paper's Figure 3.
func FormatPaths(net *network.Network, entries []int, paths [][]PathStep, res Result) string {
	var sb strings.Builder
	w := net.Width()
	for id, entry := range entries {
		fmt.Fprintf(&sb, "token %d: wire %d", id, entry)
		for _, st := range paths[id] {
			label := net.Gates[st.Gate].Label
			if label == "" {
				label = fmt.Sprintf("g%d", st.Gate)
			}
			fmt.Fprintf(&sb, " -[%s #%d]-> wire %d", label, st.Rank, st.OutWire)
		}
		value := res.ExitRanks[id]*w + res.Exits[id]
		fmt.Fprintf(&sb, "  => exit position %d, value %d\n", res.Exits[id], value)
	}
	fmt.Fprintf(&sb, "exit counts (output order): %v\n", res.Counts)
	return sb.String()
}
