package sim

import (
	"strings"
	"testing"

	"countnet/internal/baseline"
)

func TestRunTracedPathsConsistent(t *testing.T) {
	net, _ := baseline.Bitonic(4)
	entries := []int{0, 1, 2, 3, 0}
	res, paths := RunTraced(net, entries, FIFO{})
	plain := Run(net, entries, FIFO{})
	for i := range res.Counts {
		if res.Counts[i] != plain.Counts[i] {
			t.Fatalf("traced counts differ from plain run")
		}
	}
	for id, path := range paths {
		if len(path) != net.Depth() {
			t.Errorf("token %d traversed %d gates, want %d (uniform bitonic)", id, len(path), net.Depth())
		}
		// Path continuity: each step leaves on the wire the next step
		// arrives on; first step arrives on the entry wire.
		if len(path) > 0 && path[0].InWire != entries[id] {
			t.Errorf("token %d path starts on wire %d, entered %d", id, path[0].InWire, entries[id])
		}
		for k := 1; k < len(path); k++ {
			if path[k].InWire != path[k-1].OutWire {
				t.Errorf("token %d path discontinuous at step %d", id, k)
			}
		}
	}
}

func TestRunTracedRanksPerGateAreSequential(t *testing.T) {
	net, _ := baseline.Bitonic(8)
	entries := make([]int, 32)
	for i := range entries {
		entries[i] = i % 8
	}
	_, paths := RunTraced(net, entries, LIFO{})
	seen := map[int][]bool{} // gate -> ranks seen
	for _, path := range paths {
		for _, st := range path {
			for len(seen[st.Gate]) <= st.Rank {
				seen[st.Gate] = append(seen[st.Gate], false)
			}
			if seen[st.Gate][st.Rank] {
				t.Fatalf("gate %d rank %d assigned twice", st.Gate, st.Rank)
			}
			seen[st.Gate][st.Rank] = true
		}
	}
	for gid, ranks := range seen {
		for r, ok := range ranks {
			if !ok {
				t.Fatalf("gate %d skipped rank %d", gid, r)
			}
		}
	}
}

func TestFormatPaths(t *testing.T) {
	net, _ := baseline.Bitonic(4)
	entries := []int{0, 0}
	res, paths := RunTraced(net, entries, FIFO{})
	out := FormatPaths(net, entries, paths, res)
	for _, frag := range []string{"token 0:", "token 1:", "exit position", "value", "exit counts"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatPaths missing %q:\n%s", frag, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("want 3 lines, got:\n%s", out)
	}
}
