package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
)

func schedulers(rng *rand.Rand) []Scheduler {
	return []Scheduler{
		Random{Rng: rng}, FIFO{}, LIFO{}, &RoundRobin{}, NewLaggard(),
	}
}

func entriesFor(rng *rand.Rand, w, n int) ([]int, []int64) {
	entries := make([]int, n)
	counts := make([]int64, w)
	for i := range entries {
		entries[i] = rng.Intn(w)
		counts[entries[i]]++
	}
	return entries, counts
}

// TestScheduleIndependence: for assorted networks and random token
// multisets, every scheduler produces exactly the quiescent transfer's
// exit counts — the core semantic fact of balancing networks.
func TestScheduleIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nets := []*network.Network{}
	if n, err := core.K(2, 3, 2); err == nil {
		nets = append(nets, n)
	}
	if n, err := core.L(3, 4); err == nil {
		nets = append(nets, n)
	}
	if n, err := core.R(5, 5); err == nil {
		nets = append(nets, n)
	}
	if n, err := baseline.Bitonic(8); err == nil {
		nets = append(nets, n)
	}
	if n, err := baseline.Bubble(5); err == nil {
		nets = append(nets, n) // NOT a counting network; counts must still be schedule-independent
	}
	for _, net := range nets {
		for trial := 0; trial < 10; trial++ {
			entries, counts := entriesFor(rng, net.Width(), 3*net.Width())
			want := runner.ApplyTokens(net, counts)
			for _, sched := range schedulers(rng) {
				got := Run(net, entries, sched)
				if !reflect.DeepEqual(got.Counts, want) {
					t.Fatalf("%s under %s: counts %v, want %v (entries %v)",
						net.Name, sched.Name(), got.Counts, want, entries)
				}
				if got.Steps == 0 && net.Size() > 0 && len(entries) > 0 {
					t.Fatalf("%s under %s: no gate traversals recorded", net.Name, sched.Name())
				}
			}
		}
	}
}

// TestCountingNetworksStepUnderAdversarialSchedules: the step property
// holds for counting networks no matter the interleaving.
func TestCountingNetworksStepUnderAdversarialSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := core.L(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		entries, _ := entriesFor(rng, net.Width(), 5*net.Width())
		for _, sched := range schedulers(rng) {
			got := Run(net, entries, sched)
			if !seq.IsStep(got.Counts) {
				t.Fatalf("%s: output %v not step", sched.Name(), got.Counts)
			}
		}
	}
}

// TestExitsConsistentWithCounts: per-token exits re-aggregate to the
// count vector.
func TestExitsConsistentWithCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, _ := baseline.Bitonic(8)
	entries, _ := entriesFor(rng, 8, 40)
	res := Run(net, entries, Random{Rng: rng})
	recount := make([]int64, 8)
	for _, pos := range res.Exits {
		recount[pos]++
	}
	if !reflect.DeepEqual(recount, res.Counts) {
		t.Fatalf("exits %v inconsistent with counts %v", res.Exits, res.Counts)
	}
}

// TestFIFOMatchesSerialRunner: the FIFO schedule is exactly the serial
// token simulation, including individual exits.
func TestFIFOMatchesSerialRunner(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, err := core.K(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := entriesFor(rng, net.Width(), 30)
	wantCounts, wantExits := runner.ApplyTokensSerial(net, entries)
	got := Run(net, entries, FIFO{})
	if !reflect.DeepEqual(got.Counts, wantCounts) {
		t.Fatalf("counts %v, want %v", got.Counts, wantCounts)
	}
	if !reflect.DeepEqual(got.Exits, wantExits) {
		t.Fatalf("exits %v, want %v", got.Exits, wantExits)
	}
}

// TestTokenPathsDifferButCountsAgree: demonstrate that schedules DO
// change individual exits (otherwise the independence test is vacuous).
func TestTokenPathsDifferButCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _ := baseline.Bitonic(8)
	entries := make([]int, 24)
	for i := range entries {
		entries[i] = i % 8
	}
	fifo := Run(net, entries, FIFO{})
	lifo := Run(net, entries, LIFO{})
	if !reflect.DeepEqual(fifo.Counts, lifo.Counts) {
		t.Fatalf("counts differ: %v vs %v", fifo.Counts, lifo.Counts)
	}
	if reflect.DeepEqual(fifo.Exits, lifo.Exits) {
		t.Log("note: FIFO and LIFO gave identical per-token exits on this input")
	}
	_ = rng
}

// TestStepsEqualsTokensTimesPathLengths: total gate traversals equal
// the sum over gates of tokens passing them.
func TestStepsEqualsTokensTimesPathLengths(t *testing.T) {
	net, _ := baseline.Bitonic(4) // uniform depth 3, every token crosses 3 gates
	entries := []int{0, 1, 2, 3, 0, 1}
	res := Run(net, entries, FIFO{})
	if want := len(entries) * 3; res.Steps != want {
		t.Fatalf("steps %d, want %d", res.Steps, want)
	}
}

// TestRunPanicsOnBadEntry guards the input contract.
func TestRunPanicsOnBadEntry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net, _ := baseline.Bitonic(4)
	Run(net, []int{7}, FIFO{})
}

// TestSchedulerNamesDistinct keeps diagnostics readable.
func TestSchedulerNamesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seen := map[string]bool{}
	for _, s := range schedulers(rng) {
		if seen[s.Name()] {
			t.Errorf("duplicate scheduler name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}
