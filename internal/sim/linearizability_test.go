package sim

import (
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/seq"
)

// pathSteps returns the number of atomic steps token takes from entry
// wire e to completion when it runs alone-ish: gates on its path plus
// the exit step. For the uniform-depth bitonic network every path has
// the same length, which keeps scripts easy to write.
func uniformSteps(net *network.Network) int {
	return net.Depth() + 1
}

// TestCountingNetworksAreNotLinearizable constructs an explicit
// execution witnessing the Section 6 discussion (c.f. Herlihy, Shavit &
// Waarts): counting networks are quiescently consistent but not
// linearizable. We exhibit tokens A and B such that A's Fetch&Increment
// completes strictly before B's begins, yet B receives the smaller
// value — impossible for a linearizable counter.
//
// Construction: a third token C enters first and stalls inside the
// network, holding balancer state. A then runs to completion, B starts
// after A has finished and also runs to completion. For some choice of
// entry wires and stall depth, value(B) < value(A).
func TestCountingNetworksAreNotLinearizable(t *testing.T) {
	// Depth-1 networks (a single balancer, e.g. K(2,2)) ARE linearizable
	// — see TestSingleBalancerIsLinearizable — so the candidates here
	// are the multi-layer constructions.
	nets := []*network.Network{}
	if n, err := baseline.Bitonic(4); err == nil {
		nets = append(nets, n)
	}
	if n, err := core.L(2, 2); err == nil {
		nets = append(nets, n)
	}
	for _, net := range nets {
		w := net.Width()
		found := false
		var report string
		steps := uniformSteps(net)
	search:
		// Two stalled tokens C0, C1 (ids 0,1) hold balancer state while
		// A (id 2) completes and then B (id 3) completes.
		for c0 := 0; c0 < w; c0++ {
			for c1 := 0; c1 < w; c1++ {
				for s0 := 1; s0 < steps; s0++ {
					for s1 := 1; s1 < steps; s1++ {
						for ae := 0; ae < w; ae++ {
							for be := 0; be < w; be++ {
								var order []int
								for i := 0; i < s0; i++ {
									order = append(order, 0)
								}
								for i := 0; i < s1; i++ {
									order = append(order, 1)
								}
								for i := 0; i < steps; i++ {
									order = append(order, 2) // A runs to completion
								}
								for i := 0; i < steps; i++ {
									order = append(order, 3) // B starts strictly after A exits
								}
								// C0, C1 finish afterwards (script drains FIFO).
								res := Run(net, []int{c0, c1, ae, be}, &Script{Order: order})
								vA := res.ExitRanks[2]*w + res.Exits[2]
								vB := res.ExitRanks[3]*w + res.Exits[3]
								if vB < vA {
									found = true
									report = "witness: stalled tokens enter wires " + itoa(c0) + "," + itoa(c1) +
										" (stalling after " + itoa(s0) + "," + itoa(s1) + " steps); A enters wire " +
										itoa(ae) + " and gets value " + itoa(vA) + "; B enters wire " + itoa(be) +
										" strictly after A finishes and gets value " + itoa(vB)
									break search
								}
							}
						}
					}
				}
			}
		}
		if !found {
			t.Errorf("%s: no linearizability violation found (unexpected for depth > 1)", net.Name)
		} else {
			t.Logf("%s: %s", net.Name, report)
		}
	}
}

// TestSingleBalancerIsLinearizable: the width-p balancer alone (the
// degenerate counting network) admits no such violation — tokens leave
// it in arrival order, so the same exhaustive search over three-token
// schedules must find nothing.
func TestSingleBalancerIsLinearizable(t *testing.T) {
	n, err := core.K(4) // one 4-balancer
	if err != nil {
		t.Fatal(err)
	}
	w := n.Width()
	steps := uniformSteps(n)
	for ce := 0; ce < w; ce++ {
		for ae := 0; ae < w; ae++ {
			for be := 0; be < w; be++ {
				for stall := 1; stall < steps; stall++ {
					var order []int
					for i := 0; i < stall; i++ {
						order = append(order, 0)
					}
					for i := 0; i < steps; i++ {
						order = append(order, 1)
					}
					for i := 0; i < steps; i++ {
						order = append(order, 2)
					}
					res := Run(n, []int{ce, ae, be}, &Script{Order: order})
					vA := res.ExitRanks[1]*w + res.Exits[1]
					vB := res.ExitRanks[2]*w + res.Exits[2]
					if vB < vA {
						t.Fatalf("single balancer violated linearizability: C=%d stall=%d A=%d(v%d) B=%d(v%d)",
							ce, stall, ae, vA, be, vB)
					}
				}
			}
		}
	}
}

// TestQuiescentConsistencyAlwaysHolds: whatever the schedule, once all
// tokens have exited, the assigned values are exactly 0..N-1 — the
// guarantee counting networks DO make.
func TestQuiescentConsistencyAlwaysHolds(t *testing.T) {
	net, err := baseline.Bitonic(4)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Width()
	steps := uniformSteps(net)
	entries := []int{0, 2, 1, 3, 0, 0, 3}
	// A pile of scripted interleavings plus the generic schedulers.
	var scripts []Scheduler
	for shift := 0; shift < steps; shift++ {
		var order []int
		for s := 0; s < steps; s++ {
			for id := range entries {
				order = append(order, (id+shift)%len(entries))
			}
		}
		// Round-robin with rotation; invalid orders (picking finished
		// tokens) cannot arise because all paths have equal length.
		scripts = append(scripts, &Script{Order: order})
	}
	scripts = append(scripts, FIFO{}, LIFO{}, &RoundRobin{})
	for _, sched := range scripts {
		res := Run(net, entries, sched)
		if !seq.IsStep(res.Counts) {
			t.Fatalf("%s: counts %v not step", sched.Name(), res.Counts)
		}
		seen := make([]bool, len(entries))
		for id := range entries {
			v := res.ExitRanks[id]*w + res.Exits[id]
			if v < 0 || v >= len(entries) || seen[v] {
				t.Fatalf("%s: values not a permutation of 0..%d", sched.Name(), len(entries)-1)
			}
			seen[v] = true
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
