// Package sim is a schedule-adversarial simulator for balancing
// networks: tokens advance through one gate at a time, and a pluggable
// Scheduler decides which token moves next. This models every possible
// interleaving of an asynchronous execution at balancer granularity
// (each balancer access is atomic, as in the shared-memory
// implementations the paper targets).
//
// Its purpose is to validate the semantic foundation the rest of the
// repository rests on: in a quiescent state the per-wire token counts of
// a balancing network are schedule-independent — a balancer's output
// counts depend only on how many tokens entered it, never on their
// order — so the deterministic transfer function of
// runner.ApplyTokens is exact for every schedule, including adversarial
// ones. Individual token paths DO depend on the schedule; counts do not.
package sim

import (
	"fmt"
	"math/rand"

	"countnet/internal/network"
)

// Scheduler picks which in-flight token advances next. ready holds the
// indices of tokens still inside the network, in token-id order; Pick
// returns a position within ready.
type Scheduler interface {
	Pick(ready []int) int
	Name() string
}

// Random picks uniformly at random.
type Random struct{ Rng *rand.Rand }

// Pick implements Scheduler.
func (s Random) Pick(ready []int) int { return s.Rng.Intn(len(ready)) }

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// FIFO always advances the oldest in-flight token: tokens effectively
// run to completion in injection order (the serial schedule).
type FIFO struct{}

// Pick implements Scheduler.
func (FIFO) Pick(ready []int) int { return 0 }

// Name implements Scheduler.
func (FIFO) Name() string { return "fifo" }

// LIFO always advances the newest in-flight token: maximal overtaking.
type LIFO struct{}

// Pick implements Scheduler.
func (LIFO) Pick(ready []int) int { return len(ready) - 1 }

// Name implements Scheduler.
func (LIFO) Name() string { return "lifo" }

// RoundRobin cycles through the in-flight tokens, one gate each — the
// lock-step schedule of a synchronous execution.
type RoundRobin struct{ next int }

// Pick implements Scheduler.
func (s *RoundRobin) Pick(ready []int) int {
	i := s.next % len(ready)
	s.next++
	return i
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Laggard always advances the token that has traversed the fewest
// gates, keeping the flight maximally spread out.
type Laggard struct{ progress *[]int }

// NewLaggard returns a Laggard scheduler bound to a Run.
func NewLaggard() *Laggard { return &Laggard{} }

// Pick implements Scheduler.
func (s *Laggard) Pick(ready []int) int {
	if s.progress == nil {
		return 0
	}
	best, bestP := 0, int(^uint(0)>>1)
	for i, id := range ready {
		if (*s.progress)[id] < bestP {
			best, bestP = i, (*s.progress)[id]
		}
	}
	return best
}

// Name implements Scheduler.
func (*Laggard) Name() string { return "laggard" }

// Script advances tokens in an exact prescribed order: element k of
// Order names the token that performs the k-th atomic step (a gate
// traversal, or the final local-counter exit step). It panics if the
// named token has already finished — that is a bug in the script.
// Scripts are how directed executions (e.g. linearizability
// counterexamples) are constructed.
type Script struct {
	Order []int
	pos   int
}

// Pick implements Scheduler.
func (s *Script) Pick(ready []int) int {
	if s.pos >= len(s.Order) {
		// Script exhausted: drain in FIFO order.
		return 0
	}
	want := s.Order[s.pos]
	s.pos++
	for i, id := range ready {
		if id == want {
			return i
		}
	}
	panic(fmt.Sprintf("sim: script step %d names finished token %d", s.pos-1, want))
}

// Name implements Scheduler.
func (*Script) Name() string { return "script" }

// Result of a simulation run.
type Result struct {
	// Counts holds per-position exit counts in output order.
	Counts []int64
	// Exits holds each token's exit position, indexed by token id.
	Exits []int
	// ExitRanks holds, per token, how many tokens exited on the same
	// wire before it. Combined with Exits this yields the
	// Fetch&Increment value a counting-network counter would assign:
	// value = ExitRanks[i]*width + Exits[i].
	ExitRanks []int
	// Steps is the total number of gate traversals performed.
	Steps int
}

// PathStep records one gate traversal of one token.
type PathStep struct {
	Gate    int // gate ID
	Rank    int // arrival rank at that gate (0-based)
	InWire  int // wire the token arrived on
	OutWire int // wire the token left on
}

// RunTraced is Run with full per-token path recording: paths[i] lists
// token i's gate traversals in order. It shares Run's semantics.
func RunTraced(net *network.Network, entries []int, sched Scheduler) (Result, [][]PathStep) {
	paths := make([][]PathStep, len(entries))
	res := run(net, entries, sched, paths)
	return res, paths
}

// Run injects one token per entry in entries (token id = slice index)
// and drives them through the network under the scheduler until all
// exit. It panics on out-of-range entry wires.
func Run(net *network.Network, entries []int, sched Scheduler) Result {
	return run(net, entries, sched, nil)
}

func run(net *network.Network, entries []int, sched Scheduler, paths [][]PathStep) Result {
	w := net.Width()
	wireGates := net.WireGates()
	// next[w][k] -> gate list per wire; token state: wire + slot into
	// that wire's gate list.
	type tokState struct {
		wire int
		slot int
		done bool
	}
	toks := make([]tokState, len(entries))
	for i, e := range entries {
		if e < 0 || e >= w {
			panic(fmt.Sprintf("sim: token %d enters on wire %d outside width %d", i, e, w))
		}
		toks[i] = tokState{wire: e}
	}
	gateSeen := make([]int, net.Size())
	progress := make([]int, len(entries))
	if lg, ok := sched.(*Laggard); ok {
		lg.progress = &progress
	}

	ready := make([]int, 0, len(entries))
	for i := range toks {
		ready = append(ready, i)
	}
	steps := 0
	rankOnWire := make([]int, w)
	exitRanks := make([]int, len(entries))
	for len(ready) > 0 {
		pick := sched.Pick(ready)
		id := ready[pick]
		tk := &toks[id]
		if tk.slot >= len(wireGates[tk.wire]) {
			// Exited: the local-counter access is itself a schedulable
			// atomic step, so the exit rank is taken now. Remove from
			// ready (preserving order for FIFO/LIFO).
			ready = append(ready[:pick], ready[pick+1:]...)
			tk.done = true
			exitRanks[id] = rankOnWire[tk.wire]
			rankOnWire[tk.wire]++
			continue
		}
		gid := wireGates[tk.wire][tk.slot]
		g := &net.Gates[gid]
		rank := gateSeen[gid]
		gateSeen[gid]++
		out := g.Wires[rank%g.Width()]
		if paths != nil {
			paths[id] = append(paths[id], PathStep{Gate: gid, Rank: rank, InWire: tk.wire, OutWire: out})
		}
		// Continue after this gate on the output wire.
		pos := 0
		for k, id2 := range wireGates[out] {
			if id2 == gid {
				pos = k + 1
				break
			}
		}
		tk.wire, tk.slot = out, pos
		progress[id]++
		steps++
	}

	wireCounts := make([]int64, w)
	exits := make([]int, len(entries))
	posOf := make(map[int]int, w)
	for pos, wire := range net.OutputOrder {
		posOf[wire] = pos
	}
	for i := range toks {
		wireCounts[toks[i].wire]++
		exits[i] = posOf[toks[i].wire]
	}
	counts := make([]int64, w)
	for pos, wire := range net.OutputOrder {
		counts[pos] = wireCounts[wire]
	}
	return Result{Counts: counts, Exits: exits, ExitRanks: exitRanks, Steps: steps}
}
