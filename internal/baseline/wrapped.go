package baseline

import (
	"fmt"

	"countnet/internal/network"
)

// Wrapped is the cyclic arbitrary-width counting scheme the paper
// attributes to Aharonson & Attiya (Section 2): take an acyclic
// counting network of the next power-of-two width W >= w and link its
// excess output wires (positions w..W-1) back to its excess input
// wires. Tokens exiting on a wrapped position re-enter and traverse
// again; tokens exiting on positions < w leave for good, and the
// distribution over those positions has the step property.
//
// The paper's construction is acyclic precisely to avoid this: wrapped
// tokens pay multiple traversals of the full network. Wrapped exists
// here as the arbitrary-width baseline for experiment E15, which
// measures that extra latency.
//
// Because the network is cyclic it cannot be a network.Network; Wrapped
// carries its own (serial-schedule) execution semantics. Serial
// injection is a legal asynchronous schedule, and by the
// schedule-independence of balancing networks (see internal/sim) the
// quiescent exit counts are the same under any schedule.
type Wrapped struct {
	width int // external width w
	inner *network.Network
	// Balancer state persists across traversals within one Step run.
	state []int
	wires [][]int // per-wire gate lists of the inner network
	posOf []int   // inner wire -> output position
}

// NewWrapped builds a wrapped counting scheme of arbitrary external
// width w >= 1 over a bitonic network of width W = next power of two.
func NewWrapped(w int) (*Wrapped, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: wrapped width %d", w)
	}
	inW := 1
	for inW < w {
		inW *= 2
	}
	inner, err := Bitonic(inW)
	if err != nil {
		return nil, err
	}
	posOf := make([]int, inW)
	for pos, wire := range inner.OutputOrder {
		posOf[wire] = pos
	}
	return &Wrapped{
		width: w,
		inner: inner,
		state: make([]int, inner.Size()),
		wires: inner.WireGates(),
		posOf: posOf,
	}, nil
}

// Width returns the external width w.
func (c *Wrapped) Width() int { return c.width }

// InnerWidth returns the power-of-two width of the underlying network.
func (c *Wrapped) InnerWidth() int { return c.inner.Width() }

// Depth returns the depth of one traversal of the inner network.
func (c *Wrapped) Depth() int { return c.inner.Depth() }

// Reset clears balancer state.
func (c *Wrapped) Reset() {
	for i := range c.state {
		c.state[i] = 0
	}
}

// route sends one token from the given inner entry wire to an output
// position of the inner network, mutating balancer state.
func (c *Wrapped) route(entry int) int {
	wire := entry
	slot := 0
	for slot < len(c.wires[wire]) {
		gid := c.wires[wire][slot]
		g := &c.inner.Gates[gid]
		i := c.state[gid]
		c.state[gid]++
		next := g.Wires[i%g.Width()]
		slot = 0
		for k, id2 := range c.wires[next] {
			if id2 == gid {
				slot = k + 1
				break
			}
		}
		wire = next
	}
	return c.posOf[wire]
}

// Inject routes one token entering on external wire e (< Width) until
// it exits on a non-wrapped position, returning that position and the
// number of full traversals the token made.
func (c *Wrapped) Inject(e int) (pos, passes int) {
	if e < 0 || e >= c.width {
		panic(fmt.Sprintf("baseline: wrapped entry %d outside width %d", e, c.width))
	}
	// External wire e maps to the inner input wire at sequence
	// position e; inner input wires are 0..W-1 in identity order.
	wire := e
	for {
		passes++
		p := c.route(wire)
		if p < c.width {
			return p, passes
		}
		wire = c.inner.OutputOrder[p] // re-enter on the wrapped wire
	}
}

// Step routes tokens[i] tokens entering on each external wire i
// (serially — a legal schedule) and returns the per-position exit
// counts over the w external outputs plus the mean number of
// traversals per token. The exit counts satisfy the step property.
func (c *Wrapped) Step(tokens []int64) (counts []int64, meanPasses float64) {
	if len(tokens) != c.width {
		panic(fmt.Sprintf("baseline: %d token counts for width-%d wrapped network", len(tokens), c.width))
	}
	counts = make([]int64, c.width)
	var totalPasses, totalTokens int64
	for wire, n := range tokens {
		for k := int64(0); k < n; k++ {
			pos, passes := c.Inject(wire)
			counts[pos]++
			totalPasses += int64(passes)
			totalTokens++
		}
	}
	if totalTokens > 0 {
		meanPasses = float64(totalPasses) / float64(totalTokens)
	}
	return counts, meanPasses
}

// Gates returns the number of balancers in the inner network.
func (c *Wrapped) Gates() int { return c.inner.Size() }
