package baseline

import (
	"math/rand"
	"testing"

	"countnet/internal/verify"
)

func TestPowerOfTwoHelpers(t *testing.T) {
	for _, w := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(w) {
			t.Errorf("IsPowerOfTwo(%d) = false", w)
		}
	}
	for _, w := range []int{0, -2, 3, 6, 12, 1000} {
		if IsPowerOfTwo(w) {
			t.Errorf("IsPowerOfTwo(%d) = true", w)
		}
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(64) != 6 {
		t.Error("Log2 wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Log2(3) should panic")
			}
		}()
		Log2(3)
	}()
}

func TestBitonicIsCountingAndSorting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		n, err := Bitonic(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("Bitonic(%d): %v", w, err)
		}
		if n.Depth() != BitonicDepth(w) {
			t.Errorf("Bitonic(%d) depth %d, want %d", w, n.Depth(), BitonicDepth(w))
		}
		if n.MaxGateWidth() != 2 {
			t.Errorf("Bitonic(%d) has a gate of width %d", w, n.MaxGateWidth())
		}
		if err := verify.IsCountingNetwork(n, rng); err != nil {
			t.Errorf("Bitonic(%d): %v", w, err)
		}
		if err := verify.IsSortingNetwork(n, rng); err != nil {
			t.Errorf("Bitonic(%d): %v", w, err)
		}
	}
}

func TestBitonicGateCount(t *testing.T) {
	// Bitonic[2^k] has (k(k+1)/2) * w/2 gates.
	for _, w := range []int{4, 8, 16} {
		n, _ := Bitonic(w)
		k := Log2(w)
		want := k * (k + 1) / 2 * w / 2
		if n.Size() != want {
			t.Errorf("Bitonic(%d) has %d gates, want %d", w, n.Size(), want)
		}
	}
}

func TestPeriodicIsCountingAndSorting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range []int{2, 4, 8, 16, 32} {
		n, err := Periodic(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != PeriodicDepth(w) {
			t.Errorf("Periodic(%d) depth %d, want %d", w, n.Depth(), PeriodicDepth(w))
		}
		if err := verify.IsCountingNetwork(n, rng); err != nil {
			t.Errorf("Periodic(%d): %v", w, err)
		}
		if err := verify.IsSortingNetwork(n, rng); err != nil {
			t.Errorf("Periodic(%d): %v", w, err)
		}
	}
}

func TestPeriodicBlocksNegativeControl(t *testing.T) {
	// A truncated periodic network is not a counting network: this is
	// the sanity check that our counting verifier can fail.
	rng := rand.New(rand.NewSource(3))
	n, err := PeriodicBlocks(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IsCountingNetwork(n, rng); err == nil {
		t.Error("one block of Periodic(8) verified as a counting network")
	}
	full, _ := PeriodicBlocks(8, 3)
	if err := verify.IsCountingNetwork(full, rng); err != nil {
		t.Errorf("three blocks of Periodic(8): %v", err)
	}
}

func TestOddEvenSortsButDoesNotCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, w := range []int{4, 8, 16} {
		n, err := OddEvenMergeSort(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() != BitonicDepth(w) {
			t.Errorf("OddEven(%d) depth %d, want %d", w, n.Depth(), BitonicDepth(w))
		}
		if err := verify.IsSortingNetwork(n, rng); err != nil {
			t.Errorf("OddEven(%d) does not sort: %v", w, err)
		}
		if err := verify.IsCountingNetwork(n, rng); err == nil {
			t.Errorf("OddEven(%d) unexpectedly verified as counting", w)
		}
	}
}

func TestBubbleFigure3(t *testing.T) {
	// The paper's Figure 3 counterexample: sorts, does not count.
	rng := rand.New(rand.NewSource(5))
	for _, w := range []int{3, 4, 5, 6} {
		n, err := Bubble(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IsSortingNetwork(n, rng); err != nil {
			t.Errorf("Bubble(%d) does not sort: %v", w, err)
		}
		if err := verify.IsCountingNetwork(n, rng); err == nil {
			t.Errorf("Bubble(%d) unexpectedly verified as counting", w)
		}
		if w >= 2 && n.Depth() != 2*w-3 {
			t.Errorf("Bubble(%d) depth %d, want %d", w, n.Depth(), 2*w-3)
		}
	}
}

func TestBubbleTrivialWidths(t *testing.T) {
	n, err := Bubble(1)
	if err != nil || n.Size() != 0 {
		t.Errorf("Bubble(1): %v %v", n, err)
	}
	if _, err := Bubble(0); err == nil {
		t.Error("Bubble(0) accepted")
	}
}

func TestOddEvenTransposition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, w := range []int{2, 3, 5, 8} {
		n, err := OddEvenTransposition(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IsSortingNetwork(n, rng); err != nil {
			t.Errorf("OET(%d) does not sort: %v", w, err)
		}
		want := w
		if w == 2 {
			want = 1 // the odd layer is empty at width 2
		}
		if n.Depth() != want {
			t.Errorf("OET(%d) depth %d, want %d", w, n.Depth(), want)
		}
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if _, err := Bitonic(12); err == nil {
		t.Error("Bitonic(12) accepted")
	}
	if _, err := Periodic(3); err == nil {
		t.Error("Periodic(3) accepted")
	}
	if _, err := OddEvenMergeSort(6); err == nil {
		t.Error("OddEven(6) accepted")
	}
	if _, err := PeriodicBlocks(6, 1); err == nil {
		t.Error("PeriodicBlocks(6,1) accepted")
	}
}
