package baseline

import (
	"math/rand"
	"testing"

	"countnet/internal/seq"
)

func TestWrappedCountsArbitraryWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{1, 2, 3, 5, 6, 7, 9, 12, 13} {
		c, err := NewWrapped(w)
		if err != nil {
			t.Fatalf("NewWrapped(%d): %v", w, err)
		}
		for trial := 0; trial < 50; trial++ {
			c.Reset()
			tokens := make([]int64, w)
			for i := range tokens {
				tokens[i] = int64(rng.Intn(12))
			}
			counts, _ := c.Step(tokens)
			if !seq.IsStep(counts) {
				t.Fatalf("Wrapped(%d) on %v: output %v not step", w, tokens, counts)
			}
			if seq.Sum(counts) != seq.Sum(tokens) {
				t.Fatalf("Wrapped(%d): token loss", w)
			}
		}
	}
}

func TestWrappedStatePersistsAcrossSteps(t *testing.T) {
	// Two Step calls without Reset behave like one combined run: the
	// aggregated counts must still be step.
	c, err := NewWrapped(5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Step([]int64{3, 0, 1, 0, 2})
	b, _ := c.Step([]int64{0, 4, 0, 0, 1})
	total := make([]int64, 5)
	for i := range total {
		total[i] = a[i] + b[i]
	}
	if !seq.IsStep(total) {
		t.Fatalf("accumulated counts %v not step", total)
	}
}

func TestWrappedPowerOfTwoNeverWraps(t *testing.T) {
	// When w is already a power of two there are no wrapped wires.
	c, err := NewWrapped(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.InnerWidth() != 8 {
		t.Fatalf("inner width %d, want 8", c.InnerWidth())
	}
	_, mean := c.Step([]int64{5, 5, 5, 5, 5, 5, 5, 5})
	if mean != 1 {
		t.Errorf("mean passes %v, want exactly 1", mean)
	}
}

func TestWrappedTokensDoWrap(t *testing.T) {
	// At w=5 over an 8-wide inner network, enough tokens force wrapping.
	c, err := NewWrapped(5)
	if err != nil {
		t.Fatal(err)
	}
	_, mean := c.Step([]int64{20, 20, 20, 20, 20})
	if mean <= 1 {
		t.Errorf("mean passes %v, expected wrapping (> 1)", mean)
	}
}

func TestWrappedInjectSequentialValues(t *testing.T) {
	// Serial injection on one wire yields exit positions cycling
	// 0,1,...,w-1,0,... — the counter behaviour.
	c, err := NewWrapped(3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		pos, _ := c.Inject(0)
		if pos != k%3 {
			t.Fatalf("token %d exited position %d, want %d", k, pos, k%3)
		}
	}
}

func TestWrappedRejectsBadParams(t *testing.T) {
	if _, err := NewWrapped(0); err == nil {
		t.Error("width 0 accepted")
	}
	c, _ := NewWrapped(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad entry wire accepted")
			}
		}()
		c.Inject(4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad token vector accepted")
			}
		}()
		c.Step([]int64{1})
	}()
}
