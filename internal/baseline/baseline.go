// Package baseline implements the classical networks the paper
// positions its construction against:
//
//   - the bitonic counting network of Aspnes, Herlihy & Shavit [3]
//     (width 2^k, 2-balancers, depth k(k+1)/2), whose overall structure
//     the paper's Section 6 compares to;
//   - the periodic balanced counting network of the same paper
//     (width 2^k, depth k^2);
//   - Batcher's odd-even merge sorting network (width 2^k, depth
//     k(k+1)/2), a sorting baseline;
//   - the bubble-sort network of the paper's Figure 3, a sorting
//     network that is NOT a counting network — the paper's
//     counterexample showing the sorting-to-counting direction of the
//     isomorphism fails;
//   - the odd-even transposition ("brick wall") sorting network.
//
// The AKS-based construction of Klugerman, which the paper cites as
// having enormous constants, is deliberately not implemented; its role
// in the paper is purely asymptotic.
package baseline

import (
	"fmt"

	"countnet/internal/network"
)

// IsPowerOfTwo reports whether w is a positive power of two.
func IsPowerOfTwo(w int) bool { return w > 0 && w&(w-1) == 0 }

// Log2 returns k for w == 2^k; it panics unless w is a power of two.
func Log2(w int) int {
	if !IsPowerOfTwo(w) {
		panic(fmt.Sprintf("baseline: %d is not a power of two", w))
	}
	k := 0
	for 1<<uint(k) < w {
		k++
	}
	return k
}

// Bitonic builds the bitonic counting network of width w = 2^k. Under
// balancer semantics it is a counting network; under comparator
// semantics it is Batcher's bitonic sorting network. Depth k(k+1)/2.
func Bitonic(w int) (*network.Network, error) {
	if !IsPowerOfTwo(w) {
		return nil, fmt.Errorf("baseline: bitonic width %d is not a power of two", w)
	}
	b := network.NewBuilder(w)
	out := bitonicSort(b, network.Identity(w))
	return b.Build(fmt.Sprintf("Bitonic[%d]", w), out), nil
}

func bitonicSort(b *network.Builder, in []int) []int {
	if len(in) <= 1 {
		return in
	}
	h := len(in) / 2
	x := bitonicSort(b, in[:h])
	y := bitonicSort(b, in[h:])
	return bitonicMerge(b, x, y)
}

// bitonicMerge is the Merger[2k] of Aspnes, Herlihy & Shavit: the even
// elements of x and odd elements of y feed one Merger[k], the odd
// elements of x and even elements of y the other, and a final layer of
// 2-balancers joins the two outputs position by position.
func bitonicMerge(b *network.Builder, x, y []int) []int {
	k := len(x)
	if k == 1 {
		b.Add([]int{x[0], y[0]}, "bitonic/merge")
		return []int{x[0], y[0]}
	}
	xe, xo := evenOdd(x)
	ye, yo := evenOdd(y)
	m0 := bitonicMerge(b, xe, yo)
	m1 := bitonicMerge(b, xo, ye)
	out := make([]int, 0, 2*k)
	for i := 0; i < k; i++ {
		b.Add([]int{m0[i], m1[i]}, "bitonic/join")
		out = append(out, m0[i], m1[i])
	}
	return out
}

func evenOdd(s []int) (even, odd []int) {
	for i, v := range s {
		if i%2 == 0 {
			even = append(even, v)
		} else {
			odd = append(odd, v)
		}
	}
	return even, odd
}

// Periodic builds the periodic balanced counting network of width
// w = 2^k: k identical blocks, each a "balanced merger" of depth k, for
// total depth k^2. It is a counting network and a sorting network.
func Periodic(w int) (*network.Network, error) {
	if !IsPowerOfTwo(w) {
		return nil, fmt.Errorf("baseline: periodic width %d is not a power of two", w)
	}
	k := Log2(w)
	b := network.NewBuilder(w)
	id := network.Identity(w)
	for block := 0; block < k; block++ {
		balancedMerger(b, id)
	}
	return b.Build(fmt.Sprintf("Periodic[%d]", w), nil), nil
}

// PeriodicBlocks builds only the first `blocks` blocks of the periodic
// network; with blocks < log2(w) the result is generally not a counting
// network, which tests use to confirm the verifier has teeth.
func PeriodicBlocks(w, blocks int) (*network.Network, error) {
	if !IsPowerOfTwo(w) {
		return nil, fmt.Errorf("baseline: periodic width %d is not a power of two", w)
	}
	b := network.NewBuilder(w)
	id := network.Identity(w)
	for block := 0; block < blocks; block++ {
		balancedMerger(b, id)
	}
	return b.Build(fmt.Sprintf("Periodic[%d]x%d", w, blocks), nil), nil
}

// balancedMerger appends one balanced-merger block: pair wire i with
// wire n-1-i, then recurse on each half.
func balancedMerger(b *network.Builder, s []int) {
	n := len(s)
	if n < 2 {
		return
	}
	for i := 0; i < n/2; i++ {
		b.Add([]int{s[i], s[n-1-i]}, "periodic/reflect")
	}
	balancedMerger(b, s[:n/2])
	balancedMerger(b, s[n/2:])
}

// OddEvenMergeSort builds Batcher's odd-even merge sorting network of
// width w = 2^k, depth k(k+1)/2. It sorts, but it is not in general a
// counting network (see the E6/E7 experiments).
func OddEvenMergeSort(w int) (*network.Network, error) {
	if !IsPowerOfTwo(w) {
		return nil, fmt.Errorf("baseline: odd-even width %d is not a power of two", w)
	}
	b := network.NewBuilder(w)
	id := network.Identity(w)
	oeSort(b, id)
	return b.Build(fmt.Sprintf("OddEven[%d]", w), nil), nil
}

func oeSort(b *network.Builder, s []int) {
	if len(s) <= 1 {
		return
	}
	h := len(s) / 2
	oeSort(b, s[:h])
	oeSort(b, s[h:])
	oeMerge(b, s)
}

// oeMerge merges two sorted halves of s (Batcher): recursively merge
// the even- and odd-indexed subsequences, then compare-exchange
// (s[1],s[2]), (s[3],s[4]), ...
func oeMerge(b *network.Builder, s []int) {
	n := len(s)
	if n == 2 {
		b.Add([]int{s[0], s[1]}, "oddeven/merge")
		return
	}
	even, odd := evenOdd(s)
	oeMerge(b, even)
	oeMerge(b, odd)
	for i := 1; i+1 < n; i += 2 {
		b.Add([]int{s[i], s[i+1]}, "oddeven/fix")
	}
}

// Bubble builds the bubble-sort network of the paper's Figure 3 for any
// width w >= 2: passes of adjacent compare-exchanges. It is a sorting
// network of depth 2w-3 but NOT a counting network.
func Bubble(w int) (*network.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: bubble width %d", w)
	}
	b := network.NewBuilder(w)
	for pass := 0; pass < w-1; pass++ {
		for i := 0; i < w-1-pass; i++ {
			b.Add([]int{i, i + 1}, "bubble")
		}
	}
	return b.Build(fmt.Sprintf("Bubble[%d]", w), nil), nil
}

// OddEvenTransposition builds the width-w, depth-w "brick wall"
// sorting network: alternating layers of (0,1),(2,3),... and
// (1,2),(3,4),... compare-exchanges.
func OddEvenTransposition(w int) (*network.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: transposition width %d", w)
	}
	b := network.NewBuilder(w)
	for layer := 0; layer < w; layer++ {
		for i := layer % 2; i+1 < w; i += 2 {
			b.Add([]int{i, i + 1}, "oet")
		}
	}
	return b.Build(fmt.Sprintf("OET[%d]", w), nil), nil
}

// MergeExchange builds Batcher's merge-exchange sorting network for
// ARBITRARY width w >= 1 (Knuth, TAOCP vol. 3, Algorithm 5.2.2M): the
// iterative form of odd-even merge sort that remains correct when w is
// not a power of two. Depth is at most t(t+1)/2 for t = ceil(log2 w).
//
// It is a sorting network only — like the power-of-two odd-even
// network it is not a counting network — and serves as the
// related-work arbitrary-width sorting baseline (the role the paper's
// Section 2 assigns to Lee & Batcher's multiway generalization).
func MergeExchange(w int) (*network.Network, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: merge-exchange width %d", w)
	}
	b := network.NewBuilder(w)
	t := 0
	for 1<<uint(t) < w {
		t++
	}
	if t > 0 {
		for p := 1 << uint(t-1); p > 0; p >>= 1 {
			q := 1 << uint(t-1)
			r := 0
			d := p
			for {
				for i := 0; i+d < w; i++ {
					if i&p == r {
						b.Add([]int{i, i + d}, "mergex")
					}
				}
				if q == p {
					break
				}
				d = q - p
				q >>= 1
				r = p
			}
		}
	}
	return b.Build(fmt.Sprintf("MergeX[%d]", w), nil), nil
}

// MergeExchangeDepthBound returns t(t+1)/2 for t = ceil(log2 w).
func MergeExchangeDepthBound(w int) int {
	t := 0
	for 1<<uint(t) < w {
		t++
	}
	return t * (t + 1) / 2
}

// BitonicDepth returns the depth formula k(k+1)/2 for width 2^k.
func BitonicDepth(w int) int {
	k := Log2(w)
	return k * (k + 1) / 2
}

// PeriodicDepth returns the depth formula k^2 for width 2^k.
func PeriodicDepth(w int) int {
	k := Log2(w)
	return k * k
}
