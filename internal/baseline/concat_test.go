package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/verify"
)

// TestPeriodicIsConcatOfBlocks: the periodic network is by definition
// k sequentially-composed balanced-merger blocks; Concat must rebuild
// it exactly (same behaviour on all inputs, same structure counts).
func TestPeriodicIsConcatOfBlocks(t *testing.T) {
	w := 16
	k := Log2(w)
	block, err := PeriodicBlocks(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	stages := make([]*network.Network, k)
	for i := range stages {
		stages[i] = block
	}
	cat, err := network.Concat("cat-periodic", stages...)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := Periodic(w)
	if cat.Size() != direct.Size() || cat.Depth() != direct.Depth() {
		t.Errorf("concat: %d gates depth %d; direct: %d gates depth %d",
			cat.Size(), cat.Depth(), direct.Size(), direct.Depth())
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		in := make([]int64, w)
		for i := range in {
			in[i] = int64(rng.Intn(20))
		}
		a := runner.ApplyTokens(cat, in)
		b := runner.ApplyTokens(direct, in)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("concat and direct periodic disagree on %v: %v vs %v", in, a, b)
		}
	}
}

// TestConcatWithCountingSuffixCounts: appending a counting network to
// ANY balancing network yields a counting network (a counting network
// steps arbitrary inputs). The bubble network alone fails the battery;
// bubble followed by bitonic passes.
func TestConcatWithCountingSuffixCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bubble, _ := Bubble(8)
	bitonic, _ := Bitonic(8)
	cat, err := network.Concat("bubble+bitonic", bubble, bitonic)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IsCountingNetwork(bubble, rng); err == nil {
		t.Fatal("bubble alone should fail")
	}
	if err := verify.IsCountingNetwork(cat, rng); err != nil {
		t.Errorf("bubble+bitonic: %v", err)
	}
}
