package baseline

import (
	"math/rand"
	"testing"

	"countnet/internal/verify"
)

// TestMergeExchangeSortsAllWidths: the 0-1 principle exhaustively up to
// width 16, randomized beyond — including every non-power-of-two width
// in range.
func TestMergeExchangeSortsAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for w := 1; w <= 16; w++ {
		n, err := MergeExchange(w)
		if err != nil {
			t.Fatalf("MergeExchange(%d): %v", w, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("MergeExchange(%d) invalid: %v", w, err)
		}
		if w >= 2 {
			bad, err := verify.SortsZeroOne(n, 20)
			if err != nil {
				t.Fatal(err)
			}
			if bad != nil {
				t.Errorf("MergeExchange(%d) fails to sort %v", w, bad)
			}
		}
	}
	for _, w := range []int{17, 23, 30, 45, 64, 100} {
		n, err := MergeExchange(w)
		if err != nil {
			t.Fatal(err)
		}
		if bad, trial := verify.SortsRandom(n, 300, rng); bad != nil {
			t.Errorf("MergeExchange(%d) fails to sort %v (trial %d)", w, bad, trial)
		}
	}
}

// TestMergeExchangeDepth: within the t(t+1)/2 bound, equal to the
// power-of-two odd-even depth when w is a power of two.
func TestMergeExchangeDepth(t *testing.T) {
	for w := 2; w <= 64; w++ {
		n, err := MergeExchange(w)
		if err != nil {
			t.Fatal(err)
		}
		if n.Depth() > MergeExchangeDepthBound(w) {
			t.Errorf("MergeExchange(%d) depth %d > bound %d", w, n.Depth(), MergeExchangeDepthBound(w))
		}
	}
	for _, w := range []int{4, 8, 16, 32} {
		n, _ := MergeExchange(w)
		if n.Depth() != BitonicDepth(w) {
			t.Errorf("MergeExchange(%d) depth %d, want %d at power of two", w, n.Depth(), BitonicDepth(w))
		}
	}
}

// TestMergeExchangeNotCounting: like the recursive odd-even network it
// is not a counting network (checked at a width where that matters).
func TestMergeExchangeNotCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, err := MergeExchange(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IsCountingNetwork(n, rng); err == nil {
		t.Error("MergeExchange(6) verified as counting (unexpected)")
	}
}

// TestMergeExchangeMatchesOddEvenAtPowersOfTwo: at powers of two the
// iterative form must behave identically (as a function) to the
// recursive construction: both sort, same depth, same gate count.
func TestMergeExchangeMatchesOddEvenAtPowersOfTwo(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		me, _ := MergeExchange(w)
		oe, _ := OddEvenMergeSort(w)
		if me.Size() != oe.Size() || me.Depth() != oe.Depth() {
			t.Errorf("w=%d: merge-exchange %d gates depth %d, odd-even %d gates depth %d",
				w, me.Size(), me.Depth(), oe.Size(), oe.Depth())
		}
	}
}

func TestMergeExchangeDegenerate(t *testing.T) {
	n, err := MergeExchange(1)
	if err != nil || n.Size() != 0 {
		t.Errorf("MergeExchange(1): %v, %v", n, err)
	}
	if _, err := MergeExchange(0); err == nil {
		t.Error("width 0 accepted")
	}
}
