package pool

import (
	"sync"
	"testing"
	"time"

	"countnet/internal/core"
	"countnet/internal/network"
)

func testNet(t *testing.T) *network.Network {
	t.Helper()
	n, err := core.L(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPoolExactlyOnce: every item put is got exactly once, under full
// producer/consumer concurrency.
func TestPoolExactlyOnce(t *testing.T) {
	p := New[int](testNet(t))
	const producers, consumers, perProducer = 4, 4, 2000
	total := producers * perProducer

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Handle(g)
			for i := 0; i < perProducer; i++ {
				h.Put(g*perProducer + i)
			}
		}(g)
	}
	got := make([][]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := p.Handle(producers + c)
			for i := 0; i < total/consumers; i++ {
				got[c] = append(got[c], h.Get())
			}
		}(c)
	}
	wg.Wait()

	seen := make([]bool, total)
	for _, vs := range got {
		for _, v := range vs {
			if v < 0 || v >= total {
				t.Fatalf("unknown item %d", v)
			}
			if seen[v] {
				t.Fatalf("item %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("item %d lost", v)
		}
	}
	if p.Len() != 0 {
		t.Errorf("pool should be empty, Len = %d", p.Len())
	}
}

// TestPoolGetBlocksUntilPut: a Get issued first parks until an item
// arrives.
func TestPoolGetBlocksUntilPut(t *testing.T) {
	p := New[string](testNet(t))
	done := make(chan string)
	go func() {
		done <- p.Get()
	}()
	select {
	case v := <-done:
		t.Fatalf("Get returned %q before any Put", v)
	case <-time.After(20 * time.Millisecond):
	}
	p.Put("hello")
	select {
	case v := <-done:
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never woke up")
	}
}

// TestPoolSequential: single-threaded FIFO-ish behaviour sanity (the
// pool is unordered, but with one producer and one consumer using the
// shared dispatchers, buffers and ranks align and items round-trip).
func TestPoolSequential(t *testing.T) {
	p := New[int](testNet(t))
	for i := 0; i < 100; i++ {
		p.Put(i)
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d", p.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		v := p.Get()
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 || p.Len() != 0 {
		t.Fatalf("round trip incomplete: %d items, Len %d", len(seen), p.Len())
	}
}

// TestPoolManyMoreGettersQueued: several blocked getters all wake as
// puts trickle in.
func TestPoolManyMoreGettersQueued(t *testing.T) {
	p := New[int](testNet(t))
	const n = 32
	results := make(chan int, n)
	for c := 0; c < n; c++ {
		go func(c int) {
			h := p.Handle(c)
			results <- h.Get()
		}(c)
	}
	time.Sleep(10 * time.Millisecond)
	h := p.Handle(99)
	for i := 0; i < n; i++ {
		h.Put(i)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		select {
		case v := <-results:
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d getters woke", i, n)
		}
	}
}
