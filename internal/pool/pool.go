// Package pool implements the classic shared-pool application of
// counting networks: a concurrent producer/consumer structure in which
// a "put" counting network spreads insertions over w buffers and a
// "get" counting network spreads removals the same way. Because both
// counters are gap-free at quiescence, the k-th removal overall is
// matched with the k-th insertion into the same buffer slot — every
// item is delivered exactly once, and contention splits across w
// buffer locks plus the networks' balancers instead of one central
// lock.
//
// The paper's Fetch&Increment counters are exactly the coordination
// primitive this uses; the pool is the end-to-end system a downstream
// user would build with them.
package pool

// The concurrent paths in this package are explored by the
// internal/sched harness; executions must replay deterministically
// from a recorded schedule (see docs/TESTING.md).
//
//netvet:sched-instrumented

import (
	"fmt"
	"sync"

	"countnet/internal/counter"
	"countnet/internal/network"
	"countnet/internal/obs"
)

// Pool is an unordered concurrent collection: items Put concurrently
// are each returned by exactly one Get. Get blocks until an item is
// available.
type Pool[T any] struct {
	width int
	put   *counter.NetworkCounter
	get   *counter.NetworkCounter
	bufs  []buffer[T]

	// watch is the observability hook, nil unless EnableObs was
	// called; Put/Get pay one nil-check each when disabled.
	watch *obs.PoolObs
}

type buffer[T any] struct {
	_  [64]byte
	mu sync.Mutex
	cv *sync.Cond
	// items[k] holds the k-th item assigned to this buffer; a slice
	// keeps the rank matching exact (a queue per buffer). taken counts
	// consumed slots (consumption can happen out of rank order when a
	// high-rank getter is scheduled before a low-rank one).
	items []T
	taken int
}

// New builds a pool over the given counting network (its width sets the
// number of buffers). Two independent counters are compiled from the
// same network structure.
func New[T any](net *network.Network) *Pool[T] {
	p := &Pool[T]{
		width: net.Width(),
		put:   counter.NewNetworkCounter(net, false),
		get:   counter.NewNetworkCounter(net, false),
		bufs:  make([]buffer[T], net.Width()),
	}
	for i := range p.bufs {
		p.bufs[i].cv = sync.NewCond(&p.bufs[i].mu)
	}
	return p
}

// EnableObs attaches observability under the given group name and
// registers it with r (obs.Default when nil): one "<name>" pool group
// (puts, gets, get waits) plus "<name>.put" / "<name>.get" counter
// groups exposing the two underlying networks gate by gate.
// Idempotent; call before the pool sees concurrent traffic.
func (p *Pool[T]) EnableObs(name string, r *obs.Registry) *obs.PoolObs {
	if p.watch == nil {
		p.watch = obs.NewPoolObs(name)
	}
	if r == nil {
		r = obs.Default
	}
	r.Register(name, p.watch)
	p.put.EnableObs(name+".put", r)
	p.get.EnableObs(name+".get", r)
	return p.watch
}

// Handle returns a goroutine-local view with private entry cursors for
// both underlying networks. Handles must not be shared.
func (p *Pool[T]) Handle(id int) *Handle[T] {
	return &Handle[T]{
		pool: p,
		put:  p.put.Handle(id),
		get:  p.get.Handle(id),
	}
}

// Handle is a single-goroutine view of a Pool.
type Handle[T any] struct {
	pool *Pool[T]
	put  counter.Counter
	get  counter.Counter
}

// Put inserts an item.
//
//netvet:hotpath
func (h *Handle[T]) Put(item T) {
	v := h.put.Next()
	h.pool.putAt(v, item)
}

// Get removes and returns an item, blocking until one is available.
//
//netvet:hotpath
func (h *Handle[T]) Get() T {
	v := h.get.Next()
	return h.pool.getAt(v)
}

// Put inserts an item via the pool's shared dispatcher (fine outside
// tight loops).
func (p *Pool[T]) Put(item T) { p.putAt(p.put.Next(), item) }

// Get removes an item via the shared dispatcher, blocking until one is
// available.
func (p *Pool[T]) Get() T { return p.getAt(p.get.Next()) }

//netvet:hotpath
func (p *Pool[T]) putAt(v int64, item T) {
	if o := p.watch; o != nil {
		o.Puts.Inc()
	}
	b := &p.bufs[v%int64(p.width)]
	b.mu.Lock()
	//netvet:allow append -- per-buffer queue grows with outstanding items by design; rank matching needs the whole history
	b.items = append(b.items, item)
	b.mu.Unlock()
	b.cv.Broadcast()
}

//netvet:hotpath
func (p *Pool[T]) getAt(v int64) T {
	o := p.watch
	if o != nil {
		o.Gets.Inc()
	}
	b := &p.bufs[v%int64(p.width)]
	rank := int(v / int64(p.width)) // this consumer takes the rank-th item of the buffer
	b.mu.Lock()
	for len(b.items) <= rank {
		if o != nil {
			o.GetWaits.Inc() // counts each park, so futile wakeups show
		}
		b.cv.Wait()
	}
	item := b.items[rank]
	var zero T
	b.items[rank] = zero // release for GC; slots are single-consumer
	b.taken++
	b.mu.Unlock()
	return item
}

// PutHooked is Put with schedule instrumentation: yield runs before
// every atomic step (counter-network accesses and the buffer append).
// For package sched; do not mix with unhooked calls in one controlled
// run.
func (p *Pool[T]) PutHooked(item T, yield func(op string)) {
	v := p.put.NextHooked(yield)
	yield(fmt.Sprintf("append buf %d", v%int64(p.width)))
	p.putAt(v, item)
}

// GetHooked is Get with schedule instrumentation. Instead of blocking
// on the buffer's condition variable it parks through block: the
// controlled scheduler re-evaluates the readiness predicate (under the
// buffer lock) whenever it needs a runnable task, so a schedule in
// which the item never arrives is reported as a deadlock rather than a
// hang.
func (p *Pool[T]) GetHooked(yield func(op string), block func(op string, ready func() bool)) T {
	v := p.get.NextHooked(yield)
	b := &p.bufs[v%int64(p.width)]
	rank := int(v / int64(p.width))
	block(fmt.Sprintf("take buf %d rank %d", v%int64(p.width), rank), func() bool {
		b.mu.Lock()
		ok := len(b.items) > rank
		b.mu.Unlock()
		return ok
	})
	return p.getAt(v)
}

// Len reports the number of items currently buffered and unconsumed
// (a snapshot under concurrency; exact at quiescence).
func (p *Pool[T]) Len() int {
	n := 0
	for i := range p.bufs {
		b := &p.bufs[i]
		b.mu.Lock()
		n += len(b.items) - b.taken
		b.mu.Unlock()
	}
	return n
}
