package pool_test

import (
	"testing"

	"countnet/internal/core"
	"countnet/internal/sched"
)

// FuzzPoolSchedules decodes arbitrary byte strings into interleavings
// of a balanced producer/consumer workload (internal/sched
// ByteDecoder) and checks exactly-once delivery at quiescence. With
// puts and gets balanced, both counting networks issue the same
// gap-free value set, so every take eventually unblocks: a deadlock or
// step-budget error is as much a bug as a lost or duplicated item.
func FuzzPoolSchedules(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 3, 3, 0, 0, 0})
	f.Add([]byte{250, 1, 250, 1, 250, 1, 250, 1, 250})
	net, err := core.K(2, 2)
	if err != nil {
		f.Fatal(err)
	}
	sys := sched.PoolSystem(net, 2, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, check := sys()
		tr, err := sched.Run(&sched.ByteDecoder{Data: data}, 30_000, tasks)
		if err == nil {
			err = check(tr)
		}
		if err != nil {
			t.Fatalf("schedule bytes %x: %v", data, err)
		}
	})
}
