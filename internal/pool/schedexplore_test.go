// Schedule-exploration property suite for the shared pool: real
// Put/Get paths (two counting networks plus per-buffer queues) run
// under controlled interleavings, and every item must be delivered
// exactly once. Lives in package pool_test because sched imports pool.
package pool_test

import (
	"strings"
	"testing"

	"countnet/internal/core"
	"countnet/internal/pool"
	"countnet/internal/sched"
)

// TestPoolExactlyOnceUnderExploredSchedules: random and
// bounded-preemption DFS exploration of balanced producer/consumer
// workloads. Blocked getters park through the scheduler, so schedules
// where a getter overtakes its matching putter are fully covered
// (the getter resumes only once its slot is filled).
func TestPoolExactlyOnceUnderExploredSchedules(t *testing.T) {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := sched.PoolSystem(net, 2, 2) // 2 producers + 2 consumers, 2 items each
	if rep := sched.ExploreRandom(sys, 0xbeef, 150, 30_000); rep.Failure != nil {
		t.Errorf("random: %s", rep.Failure)
	}
	if rep := sched.ExploreDFS(sys, 1, 20_000, 30_000); rep.Failure != nil {
		t.Errorf("dfs: %s", rep.Failure)
	}
}

// TestPoolUnbalancedGetDeadlocksDeterministically: one more Get than
// Put must surface as a deterministic deadlock report naming the
// blocked take, never a hang.
func TestPoolUnbalancedGetDeadlocksDeterministically(t *testing.T) {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New[string](net)
	tasks := []sched.TaskFunc{
		func(y *sched.Yield) { p.PutHooked("only", y.Step) },
		func(y *sched.Yield) { p.GetHooked(y.Step, y.Block) },
		func(y *sched.Yield) { p.GetHooked(y.Step, y.Block) },
	}
	_, err = sched.Run(sched.NewRandomWalk(42), 10_000, tasks)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "take buf") {
		t.Fatalf("deadlock report does not name the blocked take: %v", err)
	}
}

// TestPoolHookedAgreesWithPlain: hooked and plain pools deliver the
// same item set in a serial schedule.
func TestPoolHookedAgreesWithPlain(t *testing.T) {
	net, err := core.K(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New[int](net)
	noop := func(string) {}
	noblock := func(_ string, ready func() bool) {
		if !ready() {
			t.Fatal("serial get blocked")
		}
	}
	for i := 0; i < 6; i++ {
		p.PutHooked(i, noop)
	}
	seen := make(map[int]bool)
	for i := 0; i < 6; i++ {
		seen[p.GetHooked(noop, noblock)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("serial hooked pool lost items: %v", seen)
	}
}
