package sched

import "math/rand"

// Strategy picks which runnable task executes the next scheduling
// slice. runnable holds task ids in ascending order; Pick returns an
// index into runnable. step is the 0-based slice number and prev the
// task that ran the previous slice (-1 for the first).
type Strategy interface {
	Pick(step, prev int, runnable []int) int
	Name() string
}

// defaultIndex is the non-preempting choice: keep running prev if it
// still can, otherwise fall back to the lowest task id.
func defaultIndex(runnable []int, prev int) int {
	for i, id := range runnable {
		if id == prev {
			return i
		}
	}
	return 0
}

// RandomWalk picks uniformly among the runnable tasks from a seeded
// generator: the seed alone reproduces the schedule.
type RandomWalk struct {
	seed uint64
	rng  *rand.Rand
}

// NewRandomWalk returns a RandomWalk for the seed.
func NewRandomWalk(seed uint64) *RandomWalk {
	return &RandomWalk{seed: seed, rng: rand.New(rand.NewSource(int64(seed)))}
}

// Pick implements Strategy.
func (s *RandomWalk) Pick(_, _ int, runnable []int) int { return s.rng.Intn(len(runnable)) }

// Name implements Strategy.
func (s *RandomWalk) Name() string { return "random-walk" }

// Seed returns the seed the walk was built from.
func (s *RandomWalk) Seed() uint64 { return s.seed }

// PCT is a probabilistic concurrency testing scheduler (Burckhardt et
// al., ASPLOS 2010): tasks get random priorities, the highest-priority
// runnable task always runs, and at depth-1 random step indices the
// running task's priority drops below everyone's. For bug depth d the
// probability of hitting a depth-d bug is at least 1/(n·k^(d-1)).
type PCT struct {
	seed    uint64
	prio    []int       // task id -> priority, higher runs first
	change  map[int]int // step -> next demotion priority
	demoted int
}

// NewPCT builds a PCT scheduler for tasks tasks and schedules of at
// most maxSteps slices, with depth-1 priority change points.
func NewPCT(seed uint64, tasks, maxSteps, depth int) *PCT {
	rng := rand.New(rand.NewSource(int64(seed)))
	p := &PCT{seed: seed, prio: make([]int, tasks), change: make(map[int]int)}
	for i, v := range rng.Perm(tasks) {
		p.prio[i] = v + depth // keep room below for demotions
	}
	for d := 1; d < depth; d++ {
		if maxSteps > 0 {
			p.change[rng.Intn(maxSteps)] = depth - d
		}
	}
	return p
}

// Pick implements Strategy.
func (p *PCT) Pick(step, _ int, runnable []int) int {
	best := 0
	for i, id := range runnable {
		if p.prio[id] > p.prio[runnable[best]] {
			best = i
		}
	}
	if newPrio, ok := p.change[step]; ok {
		p.prio[runnable[best]] = newPrio
		// Re-select with the demotion applied.
		best = 0
		for i := range runnable {
			if p.prio[runnable[i]] > p.prio[runnable[best]] {
				best = i
			}
		}
	}
	return best
}

// Name implements Strategy.
func (p *PCT) Name() string { return "pct" }

// Replay re-executes a recorded choice sequence: at step k it picks
// task Choices[k]. If that task is not runnable (or the sequence is
// exhausted — both happen while shrinking), it degrades to the
// non-preempting default, so every choice list denotes *some* valid
// schedule.
type Replay struct{ Choices []int }

// Pick implements Strategy.
func (r *Replay) Pick(step, prev int, runnable []int) int {
	if step < len(r.Choices) {
		want := r.Choices[step]
		for i, id := range runnable {
			if id == want {
				return i
			}
		}
	}
	return defaultIndex(runnable, prev)
}

// Name implements Strategy.
func (r *Replay) Name() string { return "replay" }

// ByteDecoder turns an arbitrary byte string into a schedule: byte k
// (cycling) picks runnable[b mod len(runnable)] at step k. This is the
// bridge from go-fuzz corpora to interleavings: any input is a valid
// schedule, and mutating bytes mutates the interleaving locally.
type ByteDecoder struct{ Data []byte }

// Pick implements Strategy.
func (d *ByteDecoder) Pick(step, prev int, runnable []int) int {
	if len(d.Data) == 0 {
		return defaultIndex(runnable, prev)
	}
	return int(d.Data[step%len(d.Data)]) % len(runnable)
}

// Name implements Strategy.
func (d *ByteDecoder) Name() string { return "byte-decoder" }

// DFS explores the schedule tree exhaustively in depth-first order
// with a preemption bound (Musuvathi & Qadeer, PLDI 2007): a choice
// counts as a preemption when the previously running task was still
// runnable but a different task was picked. Alternatives exceeding
// MaxPreemptions are pruned, which keeps small configurations
// tractable while covering every schedule reachable with few forced
// switches — where the vast majority of real concurrency bugs live.
//
// One DFS value drives many Runs: call Next after each Run to advance
// to the next unexplored schedule; it reports false when the bounded
// tree is exhausted.
type DFS struct {
	MaxPreemptions int
	path           []dfsNode
	pos            int
}

type dfsNode struct {
	runnable []int
	prev     int
	alt      int // 0 = non-preempting default, then the others ascending
}

// choiceFor maps an alternative number to an index into runnable.
func (n *dfsNode) choiceFor(alt int) int {
	def := defaultIndex(n.runnable, n.prev)
	if alt == 0 {
		return def
	}
	k := 1
	for i := range n.runnable {
		if i == def {
			continue
		}
		if k == alt {
			return i
		}
		k++
	}
	return def
}

// preempts reports whether taking alternative alt at this node forces
// a preemption.
func (n *dfsNode) preempts(alt int) bool {
	def := defaultIndex(n.runnable, n.prev)
	if n.prev < 0 || n.runnable[def] != n.prev {
		return false // prev finished or blocked: any pick is a free switch
	}
	return n.choiceFor(alt) != def
}

// Pick implements Strategy.
func (d *DFS) Pick(step, prev int, runnable []int) int {
	if d.pos < len(d.path) {
		n := &d.path[d.pos]
		d.pos++
		return n.choiceFor(n.alt)
	}
	n := dfsNode{runnable: append([]int(nil), runnable...), prev: prev}
	d.path = append(d.path, n)
	d.pos++
	return d.path[len(d.path)-1].choiceFor(0)
}

// Name implements Strategy.
func (d *DFS) Name() string { return "dfs" }

// Next backtracks to the deepest node with an untried alternative
// within the preemption budget and prepares the next Run. It returns
// false when the search space is exhausted.
func (d *DFS) Next() bool {
	for len(d.path) > 0 {
		last := len(d.path) - 1
		n := &d.path[last]
		base := d.preemptionsBefore(last)
		for n.alt+1 < len(n.runnable) {
			n.alt++
			extra := 0
			if n.preempts(n.alt) {
				extra = 1
			}
			if base+extra <= d.MaxPreemptions {
				d.pos = 0
				return true
			}
		}
		d.path = d.path[:last]
	}
	return false
}

// preemptionsBefore counts preemptions on the path strictly above node
// depth.
func (d *DFS) preemptionsBefore(depth int) int {
	p := 0
	for i := 0; i < depth; i++ {
		if d.path[i].preempts(d.path[i].alt) {
			p++
		}
	}
	return p
}
