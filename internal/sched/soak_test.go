//go:build soak

// Long schedule-exploration soak, run by the nightly CI lane:
//
//	go test -tags soak -run Soak -timeout 20m ./internal/sched
//
// It widens every axis the fast suite bounds: larger networks, more
// tokens, more schedules, higher preemption budgets, and a mutation
// sweep asserting detection strength at scale. Any failure prints a
// replay seed; paste it into sched.ReplaySeed to reproduce.
package sched_test

import (
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/sched"
	"countnet/internal/verify"
)

func soakNets(t *testing.T) map[string]*network.Network {
	t.Helper()
	nets := map[string]*network.Network{}
	add := func(name string, n *network.Network, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nets[name] = n
	}
	k, err := core.K(2, 2, 2)
	add("K(2,2,2)", k, err)
	l, err := core.L(2, 3)
	add("L(2,3)", l, err)
	r, err := core.R(3, 3)
	add("R(3,3)", r, err)
	b, err := baseline.Bitonic(8)
	add("bitonic8", b, err)
	return nets
}

// TestSoakTokenSchedules: tens of thousands of random interleavings
// plus deep bounded-preemption DFS per construction family.
func TestSoakTokenSchedules(t *testing.T) {
	for name, net := range soakNets(t) {
		w := net.Width()
		entries := make([]int, 0, 2*w+3)
		for k := 0; k < 2; k++ {
			for wire := 0; wire < w; wire++ {
				entries = append(entries, wire)
			}
		}
		entries = append(entries, 0, 0, w-1) // skew on top of full rounds
		sys := sched.TokenSystem(net, entries)
		if rep := sched.ExploreRandom(sys, 0x50a1, 20_000, 100_000); rep.Failure != nil {
			t.Errorf("%s random: %s", name, rep.Failure)
		}
		if rep := sched.ExplorePCT(sys, 0x50a2, 5_000, 100_000, len(entries), 3); rep.Failure != nil {
			t.Errorf("%s pct: %s", name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 2, 30_000, 100_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", name, rep.Failure)
		} else {
			t.Logf("%s: dfs covered %d schedules", name, rep.Schedules)
		}
	}
}

// TestSoakCounterAndPoolSchedules: heavier concurrent workloads on the
// counter and pool substrates.
func TestSoakCounterAndPoolSchedules(t *testing.T) {
	net, err := core.K(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctr := sched.CounterSystem(net, 4, 3)
	if rep := sched.ExploreRandom(ctr, 0x50a3, 10_000, 200_000); rep.Failure != nil {
		t.Errorf("counter random: %s", rep.Failure)
	}
	pl := sched.PoolSystem(net, 3, 2)
	if rep := sched.ExploreRandom(pl, 0x50a4, 5_000, 200_000); rep.Failure != nil {
		t.Errorf("pool random: %s", rep.Failure)
	}
}

// TestSoakMutationDetection: every counting-breaking single-gate
// mutant of bitonic(8) must be detected by schedule exploration on a
// load the quiescent checker flags (shrunk before reporting, proving
// the shrinker holds up under volume).
func TestSoakMutationDetection(t *testing.T) {
	base, err := baseline.Bitonic(8)
	if err != nil {
		t.Fatal(err)
	}
	detected, breaking := 0, 0
	for i := 0; i < base.Size(); i++ {
		mut := verify.MutateReverseGate(base, i)
		bad := verify.CountsExhaustive(mut, 2)
		if bad == nil {
			continue // absorbed mutation: not counting-breaking at this load bound
		}
		breaking++
		var entries []int
		for wire, cnt := range bad {
			for k := int64(0); k < cnt; k++ {
				entries = append(entries, wire)
			}
		}
		sys := sched.TokenSystem(mut, entries)
		rep := sched.ExploreRandom(sys, sched.Mix(0x50a5, i), 10_000, 100_000)
		if rep.Failure == nil {
			t.Errorf("gate %d reversal not detected in %d schedules", i, rep.Schedules)
			continue
		}
		min := sched.Shrink(sys, rep.Failure, 100_000, 500)
		if min.Err == nil {
			t.Errorf("gate %d: shrink lost the failure", i)
			continue
		}
		detected++
	}
	t.Logf("detected %d/%d counting-breaking reversals of bitonic(8)", detected, breaking)
	if breaking == 0 {
		t.Error("no reversal broke counting — load bound too weak")
	}
}

// TestSoakBatchTokenSchedules: heavier interleavings of batched
// traversals with single-token traversals — the combining front-end's
// core soundness claim, explored at soak scale.
func TestSoakBatchTokenSchedules(t *testing.T) {
	for name, net := range soakNets(t) {
		w := net.Width()
		entries := []int{0, 0, w - 1, w / 2}
		skewed := make([]int64, w)
		skewed[0] = int64(w + 1)
		spread := make([]int64, w)
		for i := range spread {
			spread[i] = 2
		}
		tail := make([]int64, w)
		tail[w-1] = 3
		sys := sched.BatchTokenSystem(net, entries, [][]int64{skewed, spread, tail})
		if rep := sched.ExploreRandom(sys, 0x50a6, 20_000, 200_000); rep.Failure != nil {
			t.Errorf("%s random: %s", name, rep.Failure)
		}
		if rep := sched.ExplorePCT(sys, 0x50a7, 5_000, 200_000, len(entries)+3, 3); rep.Failure != nil {
			t.Errorf("%s pct: %s", name, rep.Failure)
		}
		if rep := sched.ExploreDFS(sys, 2, 30_000, 200_000); rep.Failure != nil {
			t.Errorf("%s dfs: %s", name, rep.Failure)
		} else {
			t.Logf("%s: dfs covered %d schedules", name, rep.Schedules)
		}
	}
}
