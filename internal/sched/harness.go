// This file binds the controlled scheduler to the repository's real
// concurrent substrates, with invariant checks evaluated at
// quiescence. Each System builds fresh substrate state per schedule,
// so explorers and the shrinker can re-run interleavings at will.

package sched

import (
	"fmt"
	"sort"

	"countnet/internal/counter"
	"countnet/internal/network"
	"countnet/internal/pool"
	"countnet/internal/runner"
	"countnet/internal/seq"
	"countnet/internal/sim"
)

// TokenSystem drives one token per listed entry wire through a fresh
// runner.Async compile of net (atomic fetch-and-add balancers, the
// real concurrent traversal code). At quiescence it checks the two
// properties the paper guarantees for counting networks:
//
//   - the step property of the per-position exit counts, and
//   - quiescent consistency: the counts equal the schedule-independent
//     transfer function runner.ApplyTokens — every interleaving must
//     land on the same quiescent state.
//
// Failures embed the token paths of the offending schedule rendered
// via internal/sim, so a violation reads like the paper's Figure 3.
func TokenSystem(net *network.Network, entries []int) System {
	w := net.Width()
	in := make([]int64, w)
	for _, e := range entries {
		in[e]++
	}
	want := runner.ApplyTokens(net, in)
	return func() ([]TaskFunc, func(tr *Trace) error) {
		a := runner.Compile(net)
		counts := make([]int64, w)
		tasks := make([]TaskFunc, len(entries))
		for i := range entries {
			e := entries[i]
			tasks[i] = func(y *Yield) {
				pos := a.TraverseHooked(e, y.Step)
				y.Step("exit")
				counts[pos]++
			}
		}
		check := func(tr *Trace) error {
			if !seq.IsStep(counts) {
				return fmt.Errorf("sched: quiescent exit counts %v violate the step property\n%s",
					counts, FormatTokenSchedule(net, entries, tr))
			}
			for i := range counts {
				if counts[i] != want[i] {
					return fmt.Errorf("sched: quiescent exit counts %v differ from transfer function %v (quiescent consistency)\n%s",
						counts, want, FormatTokenSchedule(net, entries, tr))
				}
			}
			return nil
		}
		return tasks, check
	}
}

// FormatTokenSchedule renders a TokenSystem schedule as per-token gate
// paths: the trace's non-start slices are exactly the atomic steps of
// the abstract token model, so replaying them as a sim.Script
// reconstructs every token's route for sim.FormatPaths.
func FormatTokenSchedule(net *network.Network, entries []int, tr *Trace) string {
	order := make([]int, 0, len(tr.Ops))
	for _, op := range tr.Ops {
		if op.Label == OpStart {
			continue
		}
		order = append(order, op.Task)
	}
	res, paths := sim.RunTraced(net, entries, &sim.Script{Order: order})
	return sim.FormatPaths(net, entries, paths, res)
}

// BatchTokenSystem drives a mix of single tokens (one task per entry
// listed in entries, via Async.TraverseHooked) and count batches (one
// task per element of batches, via Async.TraverseBatchHooked) through
// one fresh compile of net. Every atomic balancer access — a batch's
// per-gate reservation or a token's per-gate step — is a scheduling
// point, so exploration covers arbitrary interleavings of batch RMWs
// with single-token RMWs. At quiescence the combined exit counts must
// satisfy the step property and equal the transfer function of the
// combined input — the invariant that makes TraverseBatch safe to mix
// with per-token traffic (counter.CombiningCounter relies on it).
func BatchTokenSystem(net *network.Network, entries []int, batches [][]int64) System {
	w := net.Width()
	in := make([]int64, w)
	for _, e := range entries {
		in[e]++
	}
	for _, b := range batches {
		for i, v := range b {
			in[i] += v
		}
	}
	want := runner.ApplyTokens(net, in)
	return func() ([]TaskFunc, func(tr *Trace) error) {
		a := runner.Compile(net)
		counts := make([]int64, w)
		tasks := make([]TaskFunc, 0, len(entries)+len(batches))
		for _, e := range entries {
			e := e
			tasks = append(tasks, func(y *Yield) {
				pos := a.TraverseHooked(e, y.Step)
				y.Step("exit")
				counts[pos]++
			})
		}
		for _, b := range batches {
			b := b
			tasks = append(tasks, func(y *Yield) {
				out := a.TraverseBatchHooked(b, y.Step)
				y.Step("exit")
				for pos, v := range out {
					counts[pos] += v
				}
			})
		}
		check := func(tr *Trace) error {
			if !seq.IsStep(counts) {
				return fmt.Errorf("sched: quiescent exit counts %v violate the step property (batch+token mix)", counts)
			}
			for i := range counts {
				if counts[i] != want[i] {
					return fmt.Errorf("sched: quiescent exit counts %v differ from transfer function %v (batch+token mix)", counts, want)
				}
			}
			return nil
		}
		return tasks, check
	}
}

// CounterSystem runs goroutines tasks each issuing opsPer values from
// one fresh NetworkCounter over net (entry wires cycled per task, as
// counter handles do). At quiescence the issued values must be exactly
// 0..N-1 — the Fetch&Increment contract: distinct, gap-free, none
// minted twice. Any atomicity violation in the balancer or
// local-counter path surfaces as a duplicate or gap.
func CounterSystem(net *network.Network, goroutines, opsPer int) System {
	w := net.Width()
	return func() ([]TaskFunc, func(tr *Trace) error) {
		c := counter.NewNetworkCounter(net, false)
		values := make([]int64, 0, goroutines*opsPer)
		tasks := make([]TaskFunc, goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			tasks[g] = func(y *Yield) {
				wire := g % w
				for k := 0; k < opsPer; k++ {
					v := c.NextOnHooked(wire, y.Step)
					values = append(values, v)
					wire++
					if wire == w {
						wire = 0
					}
				}
			}
		}
		check := func(tr *Trace) error {
			got := append([]int64(nil), values...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for i, v := range got {
				if v != int64(i) {
					return fmt.Errorf("sched: counter values not gap-free at quiescence: sorted[%d] = %d (values %v)\nschedule:\n%s",
						i, v, got, tr)
				}
			}
			return nil
		}
		return tasks, check
	}
}

// AdaptiveSystem runs goroutines tasks each issuing opsPer values
// through per-task handles of one counter.AdaptiveCounter (built fresh
// per schedule by build, so tests control the initial engine, policy,
// and failure-injection hooks), while one switcher task walks the
// engine plan via SwitchToHooked. Every shared atomic step of the
// epoch protocol — epoch load, slot publish, seal check, the seal, the
// per-slot drain, the fence/install — is a scheduling point, so
// exploration covers draws racing arbitrarily with transitions. At
// quiescence the issued values must be exactly 0..N-1: a draw minted
// against a stale epoch offset, a fence read before a straggler
// retired, or a switch that skipped the drain surfaces as a duplicate
// or a gap.
func AdaptiveSystem(build func() *counter.AdaptiveCounter, goroutines, opsPer int, plan []counter.EngineKind) System {
	return func() ([]TaskFunc, func(tr *Trace) error) {
		c := build()
		values := make([]int64, 0, goroutines*opsPer)
		tasks := make([]TaskFunc, 0, goroutines+1)
		for g := 0; g < goroutines; g++ {
			h := c.Handle(g).(*counter.AdaptiveHandle)
			tasks = append(tasks, func(y *Yield) {
				for k := 0; k < opsPer; k++ {
					v := h.NextHooked(y.Step, y.Block)
					values = append(values, v)
				}
			})
		}
		if len(plan) > 0 {
			plan := plan
			tasks = append(tasks, func(y *Yield) {
				for _, kind := range plan {
					c.SwitchToHooked(kind, y.Step, y.Block)
				}
			})
		}
		check := func(tr *Trace) error {
			got := append([]int64(nil), values...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for i, v := range got {
				if v != int64(i) {
					return fmt.Errorf("sched: adaptive counter values not gap-free across engine switches: sorted[%d] = %d (values %v)\nschedule:\n%s",
						i, v, got, tr)
				}
			}
			return nil
		}
		return tasks, check
	}
}

// PoolSystem runs pairs producer tasks and pairs consumer tasks over a
// fresh pool.Pool built on net; producer g puts the itemsPer items
// g*itemsPer..(g+1)*itemsPer-1 and every consumer gets itemsPer items.
// At quiescence each item must have been delivered exactly once —
// the pool's contract, inherited from gap-free counting on both the
// put and get networks. Unbalanced schedules that strand a getter are
// reported as deadlocks by Run.
func PoolSystem(net *network.Network, pairs, itemsPer int) System {
	return func() ([]TaskFunc, func(tr *Trace) error) {
		p := pool.New[int](net)
		got := make([]int, 0, pairs*itemsPer)
		tasks := make([]TaskFunc, 0, 2*pairs)
		for g := 0; g < pairs; g++ {
			g := g
			tasks = append(tasks, func(y *Yield) {
				for k := 0; k < itemsPer; k++ {
					p.PutHooked(g*itemsPer+k, y.Step)
				}
			})
		}
		for g := 0; g < pairs; g++ {
			tasks = append(tasks, func(y *Yield) {
				for k := 0; k < itemsPer; k++ {
					got = append(got, p.GetHooked(y.Step, y.Block))
				}
			})
		}
		check := func(tr *Trace) error {
			sorted := append([]int(nil), got...)
			sort.Ints(sorted)
			for i, v := range sorted {
				if v != i {
					return fmt.Errorf("sched: pool delivery not exactly-once: sorted[%d] = %d (got %v)\nschedule:\n%s",
						i, v, sorted, tr)
				}
			}
			return nil
		}
		return tasks, check
	}
}
