package sched

import "fmt"

// System builds a fresh instance of the system under test for one
// schedule: the tasks to run plus an invariant check evaluated at
// quiescence (after every task finished). Explorers call it once per
// schedule so no state leaks between interleavings.
type System func() (tasks []TaskFunc, check func(tr *Trace) error)

// Failure describes one failing interleaving.
type Failure struct {
	Err     error  // the invariant violation or deadlock
	Trace   *Trace // the schedule that produced it
	Seed    uint64 // per-schedule seed when the strategy was seeded
	HasSeed bool
}

// String renders the failure with its one-line repro.
func (f *Failure) String() string {
	repro := fmt.Sprintf("replay choices %v", f.Trace.Choices)
	if f.HasSeed {
		repro = fmt.Sprintf("replay seed %#x (or choices %v)", f.Seed, f.Trace.Choices)
	}
	return fmt.Sprintf("%v\n%s\nschedule:\n%s", f.Err, repro, f.Trace)
}

// Report summarizes an exploration.
type Report struct {
	Schedules int      // schedules actually executed
	Failure   *Failure // nil if every schedule satisfied the invariants
}

// runOnce executes one schedule of a fresh system instance.
func runOnce(sys System, strat Strategy, maxSteps int) (*Trace, error) {
	tasks, check := sys()
	tr, err := Run(strat, maxSteps, tasks)
	if err == nil {
		err = check(tr)
	}
	return tr, err
}

// Mix derives the per-schedule seed for round i of ExploreRandom from
// the exploration seed (splitmix64): printing the mixed seed is enough
// to reproduce that single schedule via ReplaySeed.
func Mix(seed uint64, i int) uint64 {
	z := seed + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ExploreRandom runs schedules seeded random-walk interleavings of the
// system and stops at the first invariant violation or deadlock. Seeds
// are derived per schedule with Mix, so a reported failure replays
// from its single printed seed.
func ExploreRandom(sys System, seed uint64, schedules, maxSteps int) Report {
	for i := 0; i < schedules; i++ {
		sub := Mix(seed, i)
		tr, err := runOnce(sys, NewRandomWalk(sub), maxSteps)
		if err != nil {
			return Report{Schedules: i + 1, Failure: &Failure{Err: err, Trace: tr, Seed: sub, HasSeed: true}}
		}
	}
	return Report{Schedules: schedules}
}

// ExplorePCT is ExploreRandom with the PCT priority scheduler, which
// concentrates probability on low-depth bugs. tasksHint must match the
// number of tasks the system builds; depth is the bug depth to target
// (2 or 3 covers most races).
func ExplorePCT(sys System, seed uint64, schedules, maxSteps, tasksHint, depth int) Report {
	for i := 0; i < schedules; i++ {
		sub := Mix(seed, i)
		tr, err := runOnce(sys, NewPCT(sub, tasksHint, maxSteps, depth), maxSteps)
		if err != nil {
			return Report{Schedules: i + 1, Failure: &Failure{Err: err, Trace: tr, Seed: sub, HasSeed: true}}
		}
	}
	return Report{Schedules: schedules}
}

// ReplaySeed re-executes the single random-walk schedule identified by
// a mixed seed (as printed in a Failure).
func ReplaySeed(sys System, seed uint64, maxSteps int) (*Trace, error) {
	return runOnce(sys, NewRandomWalk(seed), maxSteps)
}

// ReplayChoices re-executes the schedule denoted by a choice list.
func ReplayChoices(sys System, choices []int, maxSteps int) (*Trace, error) {
	return runOnce(sys, &Replay{Choices: choices}, maxSteps)
}

// ExploreDFS walks the schedule tree exhaustively (bounded by
// maxPreemptions forced switches per schedule) up to maxSchedules
// schedules. With a sufficient budget this *proves* the invariants
// over the whole bounded tree for small configurations; Report.Failure
// is nil and Report.Schedules < maxSchedules iff the tree was
// exhausted without a violation.
func ExploreDFS(sys System, maxPreemptions, maxSchedules, maxSteps int) Report {
	d := &DFS{MaxPreemptions: maxPreemptions}
	for i := 0; i < maxSchedules; i++ {
		tr, err := runOnce(sys, d, maxSteps)
		if err != nil {
			return Report{Schedules: i + 1, Failure: &Failure{Err: err, Trace: tr}}
		}
		if !d.Next() {
			return Report{Schedules: i + 1}
		}
	}
	return Report{Schedules: maxSchedules}
}

// Shrink minimizes a failing schedule: it greedily truncates the
// choice list (Replay completes any prefix with the non-preempting
// default) and flattens context switches, re-running the system after
// each candidate edit and keeping it only if some failure persists.
// It returns the minimized failure; budget caps the number of
// re-executions.
func Shrink(sys System, f *Failure, maxSteps, budget int) *Failure {
	choices := append([]int(nil), f.Trace.Choices...)
	fails := func(cs []int) (*Trace, error) {
		tr, err := ReplayChoices(sys, cs, maxSteps)
		return tr, err
	}
	best := f
	spent := 0
	// Pass 1: binary-search the shortest failing prefix.
	lo, hi := 0, len(choices)
	for lo < hi && spent < budget {
		mid := (lo + hi) / 2
		spent++
		if tr, err := fails(choices[:mid]); err != nil {
			hi = mid
			best = &Failure{Err: err, Trace: tr}
		} else {
			lo = mid + 1
		}
	}
	choices = choices[:hi]
	// Pass 2: flatten context switches until a fixpoint.
	for changed := true; changed && spent < budget; {
		changed = false
		for i := 1; i < len(choices) && spent < budget; i++ {
			if choices[i] == choices[i-1] {
				continue
			}
			cand := append([]int(nil), choices...)
			cand[i] = cand[i-1]
			spent++
			if tr, err := fails(cand); err != nil {
				choices = cand
				best = &Failure{Err: err, Trace: tr}
				changed = true
			}
		}
	}
	return best
}
