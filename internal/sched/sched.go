// Package sched is a controlled-scheduler harness for the repository's
// real concurrent substrates (runner.Async, counter.NetworkCounter,
// pool.Pool, the stream pipeline). It runs each logical process as a
// goroutine that yields to a central scheduler at every synchronization
// point (balancer access, local-counter fetch, buffer slot take), so
// exactly one process executes between yield points and the whole
// execution is a deterministic function of the scheduler's choice
// sequence. Concurrency bugs stop being flaky CI noise: every failing
// interleaving replays byte-for-byte from a printed seed or choice
// list, and a shrinker minimizes the schedule before reporting.
//
// The package complements internal/sim: sim explores interleavings of
// an abstract token model, sched explores interleavings of the real
// implementations (the atomics, mutexes and condition variables that
// ship). Strategies cover exhaustive DFS with a bounded-preemption
// budget for small configurations and seeded random walks (including a
// PCT-style priority scheduler) for large ones; see explore.go.
package sched

// The concurrent paths in this package are explored by the
// internal/sched harness; executions must replay deterministically
// from a recorded schedule (see docs/TESTING.md).
//
//netvet:sched-instrumented

import (
	"fmt"
	"runtime"
	"strings"
)

// OpStart labels a task's first scheduling slice, during which it runs
// from its start to its first yield point without touching shared
// state (instrumented substrates yield *before* every shared access).
const OpStart = "start"

// TaskFunc is the body of one logical process. All cross-task
// synchronization must go through the Yield hooks: call y.Step before
// each atomic shared access and y.Block instead of blocking on another
// task's progress. Instrumented substrate methods (Async.TraverseHooked,
// NetworkCounter.NextHooked, Pool.PutHooked/GetHooked) do this for you.
type TaskFunc func(y *Yield)

// Yield is the per-task handle through which a task cooperates with
// the central scheduler.
type Yield struct{ t *taskState }

// Step parks the task immediately before an atomic operation labelled
// op; the operation executes when the scheduler next picks this task.
func (y *Yield) Step(op string) {
	t := y.t
	t.pending = op
	t.park()
}

// Block parks the task until ready() reports true. The scheduler
// evaluates ready() only while every task is parked, so it may read
// state shared with other tasks (taking the same locks the task
// would). A task parked in Block is not runnable until ready() holds;
// if no task is runnable the run fails with a deadlock error.
func (y *Yield) Block(op string, ready func() bool) {
	t := y.t
	t.pending = op
	t.ready = ready
	t.park()
	t.ready = nil
}

// Op records one scheduling slice: Task ran, performing the atomic
// operation Label (OpStart for the slice before a task's first yield).
type Op struct {
	Task  int
	Label string
}

// Trace is the full record of one controlled execution. Choices alone
// reproduce the execution via the Replay strategy; Ops adds the
// operation labels for human consumption.
type Trace struct {
	Choices []int // task id chosen at each scheduling decision
	Ops     []Op  // parallel to Choices: what each slice executed
}

// Switches counts context switches: adjacent choices that moved to a
// different task. A shrinker drives this number down.
func (tr *Trace) Switches() int {
	n := 0
	for i := 1; i < len(tr.Choices); i++ {
		if tr.Choices[i] != tr.Choices[i-1] {
			n++
		}
	}
	return n
}

// String renders the schedule one slice per line.
func (tr *Trace) String() string {
	var sb strings.Builder
	for i, op := range tr.Ops {
		fmt.Fprintf(&sb, "%3d: task %d  %s\n", i, op.Task, op.Label)
	}
	return sb.String()
}

type taskState struct {
	id       int
	resume   chan struct{}
	parked   chan struct{}
	done     chan struct{}
	abort    chan struct{}
	pending  string      // label of the op the task is parked before
	ready    func() bool // non-nil while parked in Block
	finished bool
}

// park hands control back to the controller and waits to be resumed.
// If the controller aborted the run (deadlock or step budget), the
// task goroutine exits instead of leaking.
func (t *taskState) park() {
	select {
	case t.parked <- struct{}{}:
	case <-t.abort:
		runtime.Goexit()
	}
	select {
	case <-t.resume:
	case <-t.abort:
		runtime.Goexit()
	}
}

// Run executes the tasks under the strategy until every task finishes,
// returning the trace. It fails if no task is runnable before
// completion (deadlock: every live task is parked in Block with a
// false predicate) or if the schedule exceeds maxSteps slices
// (livelock guard). Strategies are stateful; use a fresh one per Run
// unless its documentation says otherwise.
func Run(strat Strategy, maxSteps int, tasks []TaskFunc) (*Trace, error) {
	abort := make(chan struct{})
	ts := make([]*taskState, len(tasks))
	for i, fn := range tasks {
		t := &taskState{
			id:      i,
			resume:  make(chan struct{}),
			parked:  make(chan struct{}),
			done:    make(chan struct{}),
			abort:   abort,
			pending: OpStart,
		}
		ts[i] = t
		fn := fn
		// This spawn IS the harness hook: the task goroutine runs only
		// when the central scheduler hands it the baton.
		//netvet:allow spawn
		go func() {
			select {
			case <-t.resume:
			case <-t.abort:
				return
			}
			fn(&Yield{t: t})
			close(t.done)
		}()
	}

	tr := &Trace{}
	prev := -1
	remaining := len(tasks)
	runnable := make([]int, 0, len(tasks))
	for remaining > 0 {
		if len(tr.Choices) >= maxSteps {
			close(abort)
			return tr, fmt.Errorf("sched: schedule exceeded step budget %d (livelock?)", maxSteps)
		}
		runnable = runnable[:0]
		for _, t := range ts {
			if t.finished {
				continue
			}
			if t.ready != nil && !t.ready() {
				continue
			}
			runnable = append(runnable, t.id)
		}
		if len(runnable) == 0 {
			var blocked []string
			for _, t := range ts {
				if !t.finished {
					blocked = append(blocked, fmt.Sprintf("task %d at %q", t.id, t.pending))
				}
			}
			close(abort)
			return tr, fmt.Errorf("sched: deadlock, no runnable task (%s)", strings.Join(blocked, ", "))
		}
		pick := strat.Pick(len(tr.Choices), prev, runnable)
		if pick < 0 || pick >= len(runnable) {
			pick = 0
		}
		t := ts[runnable[pick]]
		tr.Choices = append(tr.Choices, t.id)
		tr.Ops = append(tr.Ops, Op{Task: t.id, Label: t.pending})
		select {
		case t.resume <- struct{}{}:
		case <-t.done: // task with no yields finished before first resume: impossible, but stay safe
		}
		select {
		case <-t.parked:
		case <-t.done:
			t.finished = true
			remaining--
		}
		prev = t.id
	}
	return tr, nil
}
