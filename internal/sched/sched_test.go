package sched_test

import (
	"reflect"
	"strings"
	"testing"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/network"
	"countnet/internal/pool"
	"countnet/internal/sched"
	"countnet/internal/verify"
)

func mustK22(t testing.TB) *network.Network {
	t.Helper()
	n, err := core.K(2, 2)
	if err != nil {
		t.Fatalf("K(2,2): %v", err)
	}
	return n
}

func mustBitonic4(t testing.TB) *network.Network {
	t.Helper()
	n, err := baseline.Bitonic(4)
	if err != nil {
		t.Fatalf("bitonic(4): %v", err)
	}
	return n
}

// uniformEntries returns perWire tokens on every wire.
func uniformEntries(w, perWire int) []int {
	out := make([]int, 0, w*perWire)
	for k := 0; k < perWire; k++ {
		for wire := 0; wire < w; wire++ {
			out = append(out, wire)
		}
	}
	return out
}

// TestSameSeedSameTrace is the replayability contract: two runs of the
// same system under the same seed produce byte-for-byte identical
// traces, and replaying the recorded choices reproduces them again.
func TestSameSeedSameTrace(t *testing.T) {
	sys := sched.TokenSystem(mustBitonic4(t), uniformEntries(4, 2))
	const seed = 0xdecafbad
	tr1, err1 := sched.ReplaySeed(sys, seed, 10_000)
	tr2, err2 := sched.ReplaySeed(sys, seed, 10_000)
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(tr1.Ops, tr2.Ops) || !reflect.DeepEqual(tr1.Choices, tr2.Choices) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", tr1, tr2)
	}
	tr3, err3 := sched.ReplayChoices(sys, tr1.Choices, 10_000)
	if err3 != nil {
		t.Fatalf("replay from choices failed: %v", err3)
	}
	if !reflect.DeepEqual(tr1.Ops, tr3.Ops) {
		t.Fatalf("choice replay diverged:\n%s\nvs\n%s", tr1, tr3)
	}
}

// TestExploreRandomCorrectNetworks: no interleaving of the real
// concurrent traversal may violate the step property or quiescent
// consistency on genuine counting networks.
func TestExploreRandomCorrectNetworks(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *network.Network
	}{
		{"K(2,2)", mustK22(t)},
		{"bitonic4", mustBitonic4(t)},
	} {
		sys := sched.TokenSystem(tc.net, uniformEntries(tc.net.Width(), 2))
		if rep := sched.ExploreRandom(sys, 1, 300, 10_000); rep.Failure != nil {
			t.Errorf("%s: unexpected failure after %d schedules: %s", tc.name, rep.Schedules, rep.Failure)
		}
	}
}

// TestExploreDFSExhaustsSmallConfig: bounded-preemption DFS terminates
// on a tiny configuration, covers more than one schedule, and finds no
// violation.
func TestExploreDFSExhaustsSmallConfig(t *testing.T) {
	sys := sched.TokenSystem(mustK22(t), []int{0, 1, 2})
	rep := sched.ExploreDFS(sys, 2, 100_000, 10_000)
	if rep.Failure != nil {
		t.Fatalf("violation on correct network: %s", rep.Failure)
	}
	if rep.Schedules < 2 {
		t.Fatalf("DFS explored only %d schedules", rep.Schedules)
	}
	if rep.Schedules == 100_000 {
		t.Fatalf("DFS did not exhaust the bounded tree")
	}
	t.Logf("DFS exhausted bounded tree in %d schedules", rep.Schedules)
}

// TestDetectsReversedK22 is the harness-has-teeth acceptance check:
// reversing the single balancer of K(2,2) must be caught as a step
// property violation within 10,000 explored schedules (it is in fact
// caught immediately — quiescent counts are schedule-independent).
func TestDetectsReversedK22(t *testing.T) {
	mut := verify.MutateReverseGate(mustK22(t), 0)
	sys := sched.TokenSystem(mut, uniformEntries(4, 1)[:2]) // 2 tokens: wires 0,1
	rep := sched.ExploreRandom(sys, 7, 10_000, 10_000)
	if rep.Failure == nil {
		t.Fatalf("reversed K(2,2) not detected in %d schedules", rep.Schedules)
	}
	if rep.Schedules > 10_000 {
		t.Fatalf("detection took %d > 10000 schedules", rep.Schedules)
	}
	if !strings.Contains(rep.Failure.Err.Error(), "step property") &&
		!strings.Contains(rep.Failure.Err.Error(), "transfer function") {
		t.Fatalf("unexpected failure kind: %v", rep.Failure.Err)
	}
	// The printed seed must reproduce the identical failing trace.
	tr, err := sched.ReplaySeed(sys, rep.Failure.Seed, 10_000)
	if err == nil {
		t.Fatalf("seed replay did not fail")
	}
	if !reflect.DeepEqual(tr.Ops, rep.Failure.Trace.Ops) {
		t.Fatalf("seed replay produced a different trace")
	}
	t.Logf("detected in %d schedule(s): %v", rep.Schedules, rep.Failure.Err)
}

// brokenEntries finds a token load on which the mutant's quiescent
// counts violate the step property (nil if the mutation is absorbed at
// these loads). A uniform load won't do: full rounds exit flat on any
// balancing network, so the mutation only shows on skewed inputs.
func brokenEntries(mut *network.Network, maxPerWire int) []int {
	bad := verify.CountsExhaustive(mut, maxPerWire)
	if bad == nil {
		return nil
	}
	var entries []int
	for wire, cnt := range bad {
		for k := int64(0); k < cnt; k++ {
			entries = append(entries, wire)
		}
	}
	return entries
}

// TestDetectsMutatedBitonic runs the deeper teeth check on a
// multi-layer network, via DFS and PCT as well as the random walk.
func TestDetectsMutatedBitonic(t *testing.T) {
	base := mustBitonic4(t)
	var sys sched.System
	var tasks int
	for i := 0; i < base.Size(); i++ {
		if entries := brokenEntries(verify.MutateReverseGate(base, i), 2); entries != nil {
			sys = sched.TokenSystem(verify.MutateReverseGate(base, i), entries)
			tasks = len(entries)
			t.Logf("reversing gate %d breaks counting on load %v", i, entries)
			break
		}
	}
	if sys == nil {
		t.Fatal("no single gate reversal of bitonic(4) breaks counting — verifier teeth gone")
	}
	if rep := sched.ExploreRandom(sys, 3, 10_000, 10_000); rep.Failure == nil {
		t.Errorf("random walk missed reversed bitonic gate")
	}
	if rep := sched.ExploreDFS(sys, 1, 10_000, 10_000); rep.Failure == nil {
		t.Errorf("DFS missed reversed bitonic gate")
	}
	if rep := sched.ExplorePCT(sys, 3, 10_000, 10_000, tasks, 3); rep.Failure == nil {
		t.Errorf("PCT missed reversed bitonic gate")
	}
}

// TestShrinkMinimizesFailure: the shrinker must return a still-failing
// schedule with no more context switches than the original, and the
// minimized choices must replay to a failure.
func TestShrinkMinimizesFailure(t *testing.T) {
	base := mustBitonic4(t)
	var sys sched.System
	for i := 0; i < base.Size(); i++ {
		if entries := brokenEntries(verify.MutateRemoveGate(base, i), 2); entries != nil {
			sys = sched.TokenSystem(verify.MutateRemoveGate(base, i), entries)
			break
		}
	}
	if sys == nil {
		t.Fatal("no gate removal of bitonic(4) breaks counting")
	}
	rep := sched.ExploreRandom(sys, 11, 10_000, 10_000)
	if rep.Failure == nil {
		t.Fatal("mutant not caught by token harness")
	}
	min := sched.Shrink(sys, rep.Failure, 10_000, 2_000)
	if min.Err == nil {
		t.Fatalf("shrunk failure lost the error")
	}
	if min.Trace.Switches() > rep.Failure.Trace.Switches() {
		t.Fatalf("shrink increased switches: %d -> %d",
			rep.Failure.Trace.Switches(), min.Trace.Switches())
	}
	if _, err := sched.ReplayChoices(sys, min.Trace.Choices, 10_000); err == nil {
		t.Fatalf("minimized choices no longer fail")
	}
	t.Logf("shrunk %d choices (%d switches) to %d choices (%d switches)",
		len(rep.Failure.Trace.Choices), rep.Failure.Trace.Switches(),
		len(min.Trace.Choices), min.Trace.Switches())
}

// TestByteDecoderTotality: every byte string decodes to a valid
// schedule on a correct system (the fuzz-target contract).
func TestByteDecoderTotality(t *testing.T) {
	sys := sched.TokenSystem(mustK22(t), uniformEntries(4, 1))
	for _, data := range [][]byte{nil, {0}, {255, 254, 253}, {1, 1, 2, 3, 5, 8, 13, 21}, make([]byte, 1000)} {
		tasks, check := sys()
		tr, err := sched.Run(&sched.ByteDecoder{Data: data}, 10_000, tasks)
		if err == nil {
			err = check(tr)
		}
		if err != nil {
			t.Fatalf("bytes %v: %v", data, err)
		}
	}
}

// TestDeadlockDetection: a consumer with no matching producer must be
// reported as a deadlock, naming the blocked operation — not hang.
func TestDeadlockDetection(t *testing.T) {
	p := pool.New[int](mustK22(t))
	tasks := []sched.TaskFunc{
		func(y *sched.Yield) { p.GetHooked(y.Step, y.Block) },
	}
	_, err := sched.Run(sched.NewRandomWalk(1), 1000, tasks)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestFormatTokenSchedule: the sim-rendered trace names every token
// and its exit, so failures read like the paper's Figure 3.
func TestFormatTokenSchedule(t *testing.T) {
	net := mustBitonic4(t)
	entries := uniformEntries(4, 1)
	sys := sched.TokenSystem(net, entries)
	tr, err := sched.ReplaySeed(sys, 99, 10_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := sched.FormatTokenSchedule(net, entries, tr)
	for _, want := range []string{"token 0", "token 3", "exit position"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
