package countnet

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWithObservability: observed facade counters register in the
// default registry and the package-level accessors expose their
// metrics; unobserved counters behave identically and register
// nothing.
func TestWithObservability(t *testing.T) {
	n, err := NewL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewCounter(n)
	ctr := NewCounter(n, WithObservability("public-ctr"))
	cmb := NewCombiningCounter(n, WithObservability("public-cmb"))
	for i := 0; i < 20; i++ {
		if p, s := plain.Next(), ctr.Next(); p != s {
			t.Fatalf("op %d: plain %d, observed %d", i, p, s)
		}
		cmb.Next()
	}

	raw, err := ObsSnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Groups []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	kinds := map[string]string{}
	for _, g := range snap.Groups {
		kinds[g.Name] = g.Kind
	}
	if kinds["public-ctr"] != "counter" || kinds["public-cmb"] != "combining" {
		t.Fatalf("registered groups: %v", kinds)
	}

	var b strings.Builder
	if err := WriteObsPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `countnet_counter_total{group="public-ctr",kind="counter",name="ops"} 20`) {
		t.Errorf("prometheus output missing observed ops:\n%s", b.String())
	}

	rec := httptest.NewRecorder()
	ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "public-cmb") {
		t.Errorf("handler /metrics: status %d", rec.Code)
	}
}

// TestPoolWithObservability: the pool option registers the pool group
// plus both underlying networks.
func TestPoolWithObservability(t *testing.T) {
	n, err := NewL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool[int](n, WithObservability("public-pool"))
	h := p.Handle(0)
	for i := 0; i < 8; i++ {
		h.Put(i)
	}
	for i := 0; i < 8; i++ {
		h.Get()
	}
	raw, err := ObsSnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"public-pool"`, `"public-pool.put"`, `"public-pool.get"`} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing group %s", want)
		}
	}
}
