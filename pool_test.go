package countnet

import (
	"sync"
	"testing"
)

func TestPoolFacade(t *testing.T) {
	n, err := NewL(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool[int](n)
	const workers, per = 3, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Handle(g)
			for i := 0; i < per; i++ {
				h.Put(g*per + i)
			}
		}(g)
	}
	got := make(chan int, workers*per)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Handle(workers + g)
			for i := 0; i < per; i++ {
				got <- h.Get()
			}
		}(g)
	}
	wg.Wait()
	close(got)
	seen := make([]bool, workers*per)
	for v := range got {
		if seen[v] {
			t.Fatalf("item %d twice", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("item %d lost", v)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d", p.Len())
	}
	p.Put(42)
	if p.Len() != 1 || p.Get() != 42 {
		t.Error("shared Put/Get round trip failed")
	}
}
