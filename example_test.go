package countnet_test

import (
	"fmt"

	"countnet"
)

// Build a width-30 counting network from switches no wider than 5 and
// sort one batch with it.
func ExampleNewL() {
	net, err := countnet.NewL(2, 3, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(net.Name(), "width:", net.Width(), "widest switch:", net.MaxBalancerWidth())
	// Output:
	// L(2,3,5) width: 30 widest switch: 5
}

// Family K trades wider switches for the paper's exact depth formula
// 1.5n^2 - 3.5n + 2.
func ExampleNewK() {
	net, err := countnet.NewK(2, 3, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(net.Name(), "depth:", net.Depth())
	// Output:
	// K(2,3,5) depth: 5
}

// R(p,q) is a constant-depth counting network: depth at most 16 for
// every p, q, from switches no wider than max(p,q).
func ExampleNewR() {
	net, err := countnet.NewR(7, 9)
	if err != nil {
		panic(err)
	}
	fmt.Println(net.Name(), "width:", net.Width(), "depth <= 16:", net.Depth() <= 16)
	// Output:
	// R(7,9) width: 63 depth <= 16: true
}

// The same network counts: tokens entering on arbitrary wires leave
// balanced across the outputs (the step property).
func ExampleNetwork_Step() {
	net, err := countnet.NewK(2, 2)
	if err != nil {
		panic(err)
	}
	out, err := net.Step([]int64{7, 0, 0, 0}) // all tokens on one wire
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [2 2 2 1]
}

// And it sorts: one batch of Width values, ascending.
func ExampleNetwork_Sort() {
	net, err := countnet.NewK(2, 3)
	if err != nil {
		panic(err)
	}
	out, err := net.Sort([]int64{30, 10, 50, 20, 60, 40})
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [10 20 30 40 50 60]
}

// Each width has one network per factorization — the paper's
// depth-versus-switch-width family.
func ExampleFactorizations() {
	for _, fs := range countnet.Factorizations(12) {
		fmt.Println(fs)
	}
	// Output:
	// [12]
	// [6 2]
	// [4 3]
	// [3 2 2]
}

// A concurrent Fetch&Increment counter: distinct values always,
// gap-free once quiescent.
func ExampleCounter() {
	net, err := countnet.NewL(2, 2)
	if err != nil {
		panic(err)
	}
	ctr := countnet.NewCounter(net)
	h := ctr.Handle(0)
	fmt.Println(h.Next(), h.Next(), h.Next())
	// Output:
	// 0 1 2
}
