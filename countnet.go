// Package countnet is a production-grade implementation of the sorting
// and counting networks of Busch & Herlihy, "Sorting and Counting
// Networks of Small Depth and Arbitrary Width" (SPAA 1999).
//
// For any width w = p0 * p1 * ... * pn-1 (factors >= 2, not necessarily
// prime) the package builds:
//
//   - family K: depth exactly 1.5n^2 - 3.5n + 2, balancers (or
//     comparators) of width at most max(pi*pj);
//   - family L: depth at most 9.5n^2 - 12.5n + 3, balancers of width at
//     most max(pi);
//   - R(p,q): a constant-depth (<= 16) counting network of width p*q
//     from balancers of width at most max(p,q);
//
// plus the classical baselines (bitonic, periodic, odd-even merge,
// bubble). Every network is simultaneously a sorting network (run it
// over a batch of values with Sort) and a counting network (feed it
// token counts with Step, or build a concurrent Fetch&Increment
// Counter on it).
//
// A quick taste:
//
//	net, _ := countnet.NewL(2, 3, 5) // width 30, 2-,3-,5-balancers only
//	sorted := net.Sort([]int64{9, 4, 7, ...}) // ascending
//	ctr := countnet.NewCounter(net)
//	v := ctr.Next() // concurrent fetch-and-increment
package countnet

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"countnet/internal/baseline"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/factor"
	"countnet/internal/network"
	"countnet/internal/runner"
	"countnet/internal/seq"
	"countnet/internal/sim"
	"countnet/internal/verify"
)

// Network is a sorting/counting network of fixed width.
type Network struct {
	inner *network.Network

	// planCache lazily compiles the network into a flat evaluation
	// plan the first time a sorting fast path runs; every subsequent
	// Sort, BatchSorter and SortBatches reuses it. The cache records
	// which network it was compiled from, so rebinding the Network
	// (UnmarshalJSON) invalidates it naturally.
	planCache atomic.Pointer[cachedPlan]
}

type cachedPlan struct {
	net     *network.Network
	plan    *runner.Plan
	scratch sync.Pool // *runner.Scratch sized for plan
}

// evalPlanCache returns the network's compiled evaluation plan,
// compiling it on first use. Safe for concurrent callers: a lost race
// compiles twice and keeps either result, both equivalent.
func (n *Network) evalPlanCache() *cachedPlan {
	if c := n.planCache.Load(); c != nil && c.net == n.inner {
		return c
	}
	c := &cachedPlan{net: n.inner, plan: runner.CompilePlan(n.inner)}
	n.planCache.Store(c)
	return c
}

// evalPlan returns the compiled plan itself.
func (n *Network) evalPlan() *runner.Plan { return n.evalPlanCache().plan }

// NewK builds the family-K network K(p0,...,pn-1): width p0*...*pn-1,
// depth exactly 1.5n^2-3.5n+2 (n >= 2), comparators/balancers of width
// at most max(pi*pj). Every factor must be at least 2.
func NewK(factors ...int) (*Network, error) { return wrapErr(core.K(factors...)) }

// NewL builds the family-L network L(p0,...,pn-1): width p0*...*pn-1,
// depth at most 9.5n^2-12.5n+3, comparators/balancers of width at most
// max(pi). Every factor must be at least 2.
func NewL(factors ...int) (*Network, error) { return wrapErr(core.L(factors...)) }

// NewR builds the constant-depth network R(p,q) (p,q >= 2): width p*q,
// depth at most 16, comparators/balancers of width at most max(p,q).
func NewR(p, q int) (*Network, error) { return wrapErr(core.R(p, q)) }

// NewKOpt builds the Kopt variant of family K: every base-case C(p,q)
// slot with p*q <= 16 is realized by the embedded depth-optimal
// sorting network of that width (2-balancers only) instead of one
// pq-wide switch; wider slots fall back to the bare balancer. The
// result is a SORTING network only — the substituted bases are
// sorting networks, not counting networks, so the counting guarantee
// of family K does not carry over (like NewBubble and
// NewOddEvenMergeSort, it sorts but must not be used as a counter).
func NewKOpt(factors ...int) (*Network, error) { return wrapErr(core.KOpt(factors...)) }

// NewLOpt builds the Lopt variant of family L: embedded depth-optimal
// sorting networks in the C(p,q) slots with p*q <= 16, R(p,q) beyond.
// Sorting-only, like NewKOpt.
func NewLOpt(factors ...int) (*Network, error) { return wrapErr(core.LOpt(factors...)) }

// NewROpt builds the optimal-base counterpart of R(p,q): the embedded
// depth-optimal sorting network of width p*q when p*q <= 16 (depth at
// most 10, 2-balancers only), R(p,q) itself beyond the table.
// Sorting-only, like NewKOpt.
func NewROpt(p, q int) (*Network, error) { return wrapErr(core.ROpt(p, q)) }

// NewOptSorter builds the embedded depth-optimal sorting network of
// width w (2 <= w <= 16) on its own: proven- or near-optimal depth,
// 2-comparators only. It sorts but is not a counting network.
func NewOptSorter(w int) (*Network, error) { return wrapErr(core.OptSortNetwork(w)) }

// NewBitonic builds the classical bitonic counting network of width
// w = 2^k (depth k(k+1)/2, 2-balancers).
func NewBitonic(w int) (*Network, error) { return wrapErr(baseline.Bitonic(w)) }

// NewPeriodic builds the periodic balanced counting network of width
// w = 2^k (depth k^2, 2-balancers).
func NewPeriodic(w int) (*Network, error) { return wrapErr(baseline.Periodic(w)) }

// NewOddEvenMergeSort builds Batcher's odd-even merge sorting network
// of width w = 2^k. It sorts but is not a counting network.
func NewOddEvenMergeSort(w int) (*Network, error) { return wrapErr(baseline.OddEvenMergeSort(w)) }

// NewBubble builds the bubble-sort network of the paper's Figure 3:
// a sorting network that is not a counting network.
func NewBubble(w int) (*Network, error) { return wrapErr(baseline.Bubble(w)) }

// NewMergeExchange builds Batcher's merge-exchange sorting network for
// arbitrary width w (2-comparators, depth <= ceil(log2 w)(ceil(log2 w)+1)/2).
// It sorts but is not a counting network.
func NewMergeExchange(w int) (*Network, error) { return wrapErr(baseline.MergeExchange(w)) }

func wrapErr(n *network.Network, err error) (*Network, error) {
	if err != nil {
		return nil, err
	}
	return &Network{inner: n}, nil
}

// Name returns the construction name, e.g. "L(2,3,5)".
func (n *Network) Name() string { return n.inner.Name }

// Width returns the number of input (and output) wires.
func (n *Network) Width() int { return n.inner.Width() }

// Depth returns the maximum number of comparators/balancers traversed
// by any value or token.
func (n *Network) Depth() int { return n.inner.Depth() }

// Size returns the number of comparators/balancers.
func (n *Network) Size() int { return n.inner.Size() }

// MaxBalancerWidth returns the width of the widest comparator/balancer.
func (n *Network) MaxBalancerWidth() int { return n.inner.MaxGateWidth() }

// BalancerWidthHistogram returns, for each balancer width occurring in
// the network, the number of balancers of that width.
func (n *Network) BalancerWidthHistogram() map[int]int { return n.inner.GateWidthHistogram() }

// GateInfo describes one comparator/balancer for read-only
// introspection (tooling, custom renderers, hardware export).
type GateInfo struct {
	// Wires lists the wire indices in port order; the first port
	// receives the largest value (comparator) or first token (balancer).
	Wires []int
	// Layer is the 1-based critical-path layer.
	Layer int
	// Label records the construction step that produced the gate.
	Label string
}

// Gates returns the network's gates in topological order. The returned
// data is a copy; mutating it does not affect the network.
func (n *Network) Gates() []GateInfo {
	out := make([]GateInfo, len(n.inner.Gates))
	for i := range n.inner.Gates {
		g := &n.inner.Gates[i]
		out[i] = GateInfo{
			Wires: append([]int(nil), g.Wires...),
			Layer: g.Layer,
			Label: g.Label,
		}
	}
	return out
}

// OutputOrder returns the wire permutation in which the output sequence
// is read: output position k lives on wire OutputOrder()[k].
func (n *Network) OutputOrder() []int {
	return append([]int(nil), n.inner.OutputOrder...)
}

// String summarizes the network.
func (n *Network) String() string { return n.inner.String() }

// DOT renders the network in Graphviz dot format.
func (n *Network) DOT() string { return n.inner.DOT() }

// ASCII renders a compact layer-by-layer text diagram.
func (n *Network) ASCII() string { return n.inner.ASCII() }

// Diagram renders the network in the style of the paper's figures: one
// line per wire, gates as vertical connectors with a dot per touched
// wire. Best for small networks.
func (n *Network) Diagram() string { return n.inner.Diagram() }

// MarshalJSON encodes the network structure.
func (n *Network) MarshalJSON() ([]byte, error) { return n.inner.MarshalJSON() }

// UnmarshalJSON decodes and validates a network.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in network.Network
	if err := in.UnmarshalJSON(data); err != nil {
		return err
	}
	n.inner = &in
	return nil
}

// Sort runs the network as a sorting network over one batch of exactly
// Width values and returns them in ascending order. It returns an
// error if the batch size does not match the width.
func (n *Network) Sort(values []int64) ([]int64, error) {
	if len(values) != n.Width() {
		return nil, fmt.Errorf("countnet: batch of %d values for width-%d network", len(values), n.Width())
	}
	c := n.evalPlanCache()
	s, _ := c.scratch.Get().(*runner.Scratch)
	if s == nil {
		s = c.plan.NewScratch()
	}
	out := make([]int64, len(values))
	c.plan.Apply(out, values, s)
	c.scratch.Put(s)
	// The step convention emits largest-first; callers get ascending.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// SortFunc sorts one batch of arbitrary elements (descending per the
// network's step orientation would be unidiomatic for callers, so the
// result is ascending by less).
func SortFunc[T any](n *Network, values []T, less func(a, b T) bool) ([]T, error) {
	if len(values) != n.Width() {
		return nil, fmt.Errorf("countnet: batch of %d values for width-%d network", len(values), n.Width())
	}
	out := runner.ApplyComparatorsFunc(n.inner, values, less)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// Step runs the network as a balancing network in a quiescent state:
// tokens[i] tokens enter on wire i, and the result is the per-output
// token distribution in output order. For a counting network the result
// always has the step property.
func (n *Network) Step(tokens []int64) ([]int64, error) {
	if len(tokens) != n.Width() {
		return nil, fmt.Errorf("countnet: %d token counts for width-%d network", len(tokens), n.Width())
	}
	return runner.ApplyTokens(n.inner, tokens), nil
}

// VerifyCounting runs the repository's counting-network battery
// (bounded-exhaustive and randomized step-property checks plus a serial
// cross-check) and returns the first violation found, or nil. Failures
// name the offending input, the random trial, and the seed — the error
// message alone is a one-line repro.
func (n *Network) VerifyCounting(seed int64) error {
	return verify.IsCountingNetworkSeeded(n.inner, seed)
}

// VerifySorting runs the sorting battery (exhaustive 0-1 principle up
// to width 20, randomized beyond) and returns the first violation
// found, or nil. Failure messages are one-line repros; see
// VerifyCounting.
func (n *Network) VerifySorting(seed int64) error {
	return verify.IsSortingNetworkSeeded(n.inner, seed)
}

// FormatText renders the network in the compact layer notation of the
// sorting-network literature ("0:1 2:3" per layer; wider balancers as
// "a:b:c"). ParseTextNetwork reads it back.
func (n *Network) FormatText() string { return n.inner.FormatText() }

// ParseTextNetwork parses the layer notation (one line per layer,
// gates as colon-joined wire lists, '#' comments) into a network of
// the given width.
func ParseTextNetwork(name string, width int, src string) (*Network, error) {
	return wrapErr(network.ParseText(name, width, src))
}

// Verilog emits the network as a synthesizable combinational sorting
// module of 2-input compare-exchange stages. Only binary comparator
// networks qualify (max balancer width 2): L(2,...,2), the bitonic,
// periodic, odd-even and merge-exchange baselines.
func (n *Network) Verilog(moduleName string, dataBits int) (string, error) {
	return n.inner.Verilog(moduleName, dataBits)
}

// TraceTokens injects one token per entry wire listed (serially, in
// order) and returns a human-readable rendering of each token's path —
// the gates traversed with arrival ranks, the exit position, and the
// Fetch&Increment value the token would receive. The textual analogue
// of the paper's Figure 3 token-flow arrows.
func (n *Network) TraceTokens(entries []int) (string, error) {
	for _, e := range entries {
		if e < 0 || e >= n.Width() {
			return "", fmt.Errorf("countnet: entry wire %d outside width %d", e, n.Width())
		}
	}
	res, paths := sim.RunTraced(n.inner, entries, sim.FIFO{})
	return sim.FormatPaths(n.inner, entries, paths, res), nil
}

// Counter is a concurrent Fetch&Increment counter backed by a counting
// network: a low-contention alternative to a single atomic word. Values
// are distinct; once the network is quiescent the issued values are
// exactly 0..N-1.
type Counter struct {
	inner counter.Handled
}

// NewCounter builds a counter over the given counting network. The
// caller is responsible for passing a network that actually counts
// (anything from NewK/NewL/NewR/NewBitonic/NewPeriodic does). Every
// Next shepherds its own token through the balancers. Pass
// WithObservability to record per-balancer metrics.
func NewCounter(n *Network, opts ...Option) *Counter {
	c := counter.NewNetworkCounter(n.inner, false)
	if o := buildOptions(opts); o.obsName != "" {
		c.EnableObs(o.obsName, nil)
	}
	return &Counter{inner: c}
}

// NewCombiningCounter builds a flat-combining counter over the given
// counting network: concurrent requests are drained by one combiner and
// pushed through the network as a single batch (one fetch-and-add per
// balancer per batch), then the claimed value blocks are handed back.
// Same contract as NewCounter, higher throughput under contention and
// for block draws; see docs/PERFORMANCE.md. Pass WithObservability to
// record combine-pass and per-balancer metrics.
func NewCombiningCounter(n *Network, opts ...Option) *Counter {
	c := counter.NewCombiningCounter(n.inner)
	if o := buildOptions(opts); o.obsName != "" {
		c.EnableObs(o.obsName, nil)
	}
	return &Counter{inner: c}
}

// AdaptiveCounter is a self-tuning Fetch&Increment counter: it serves
// draws from a raw atomic word, a counting-network counter, or a
// flat-combining counter over the given network, and — when
// observability is on — switches between them live along the measured
// lower envelope of the three (see docs/PERFORMANCE.md, "Adaptive
// engine"). Values are distinct always; at quiescence the values
// handed out — including small per-handle prefetch blocks not yet
// returned by Next — are exactly 0..N-1, across every engine switch.
type AdaptiveCounter struct {
	inner *counter.AdaptiveCounter
}

// NewAdaptiveCounter builds an adaptive counter over the given
// counting network. With WithObservability the counter registers its
// strategy gauges (active engine, switch count, last switch reason)
// under the given group name and starts the governor, which retunes
// the strategy from self-measured load; without it the counter stays
// on its initial engine (the atomic word) unless the caller switches
// manually via the internal API. Call Close when done to stop the
// governor.
func NewAdaptiveCounter(n *Network, opts ...Option) *AdaptiveCounter {
	c := counter.NewAdaptiveCounter(n.inner, counter.EngineAtomic, nil)
	if o := buildOptions(opts); o.obsName != "" {
		c.EnableObs(o.obsName, nil)
		// EnableObs preceded, so StartGovernor cannot fail.
		_ = c.StartGovernor()
	}
	return &AdaptiveCounter{inner: c}
}

// Next issues the next value. Safe for concurrent use; in tight loops
// prefer per-goroutine handles from Handle.
func (c *AdaptiveCounter) Next() int64 { return c.inner.Next() }

// NextBlock fills dst with len(dst) fresh values.
func (c *AdaptiveCounter) NextBlock(dst []int64) { c.inner.NextBlock(dst) }

// Handle returns a goroutine-local handle (see Counter.Handle).
func (c *AdaptiveCounter) Handle(id int) *CounterHandle {
	return &CounterHandle{inner: c.inner.Handle(id)}
}

// Strategy returns the name of the currently active engine: "atomic",
// "network" or "combining".
func (c *AdaptiveCounter) Strategy() string { return c.inner.Strategy().String() }

// Switches returns the number of completed engine transitions.
func (c *AdaptiveCounter) Switches() int64 { return c.inner.Switches() }

// Recommend maps the governor's current load estimate to the
// L-family factorization the measured cost model favours at this
// load, for the counter's width (see AdviseFactorization). Useful for
// re-provisioning: the adaptive counter switches engines live, but
// the network it switches onto is fixed at construction.
func (c *AdaptiveCounter) Recommend() (FactorizationAdvice, error) {
	load := c.inner.LoadEstimate()
	if load < 1 {
		load = 1
	}
	return AdviseFactorization(c.inner.Width(), load, float64(c.inner.CombineBlock()))
}

// Close stops the governor, if running. The counter remains usable on
// its current engine.
func (c *AdaptiveCounter) Close() { c.inner.Close() }

// Next issues the next value. Safe for concurrent use; in tight loops
// prefer per-goroutine handles from Handle.
func (c *Counter) Next() int64 { return c.inner.Next() }

// NextBlock fills dst with len(dst) fresh values — distinct, and part
// of the same gap-free 0..N-1 space as single draws. Combining counters
// serve the whole block from one network batch.
func (c *Counter) NextBlock(dst []int64) { nextBlock(c.inner, dst) }

// CounterHandle is a single-goroutine view of a Counter.
type CounterHandle struct {
	inner counter.Counter
}

// Handle returns a goroutine-local handle; id disperses the handles'
// entry wires (pass the worker index). Handles must not be shared.
func (c *Counter) Handle(id int) *CounterHandle {
	return &CounterHandle{inner: c.inner.Handle(id)}
}

// Next issues the next value.
func (h *CounterHandle) Next() int64 { return h.inner.Next() }

// NextBlock fills dst with len(dst) fresh values (see Counter.NextBlock).
func (h *CounterHandle) NextBlock(dst []int64) { nextBlock(h.inner, dst) }

func nextBlock(c counter.Counter, dst []int64) {
	if bc, ok := c.(counter.BlockCounter); ok {
		bc.NextBlock(dst)
		return
	}
	for i := range dst {
		dst[i] = c.Next()
	}
}

// RenderStepArrangements draws the step sequence of the given total
// over r*c wires under all four Section 3.1 matrix arrangements — the
// paper's Figure 5 as text ('#' = high region, '.' = low).
func RenderStepArrangements(total int64, r, c int) string {
	x := seq.MakeStep(r*c, total)
	var sb strings.Builder
	for _, a := range []seq.Arrangement{seq.RowMajor, seq.ReverseRowMajor, seq.ColMajor, seq.ReverseColMajor} {
		fmt.Fprintf(&sb, "%s:\n%s", a, seq.RenderArrangement(x, r, c, a))
	}
	return sb.String()
}

// Barrier is a reusable n-party synchronization barrier whose arrival
// tickets come from a counting-network counter, spreading arrival
// contention across balancers.
type Barrier struct {
	inner *counter.Barrier
}

// NewBarrier builds a barrier for parties participants over a fresh
// counter on the given counting network.
func NewBarrier(n *Network, parties int) *Barrier {
	return &Barrier{inner: counter.NewBarrier(parties, counter.NewNetworkCounter(n.inner, false))}
}

// Await blocks until all parties of the caller's generation have
// arrived and returns the 0-based generation number.
func (b *Barrier) Await() int64 { return b.inner.Await() }

// Handle returns a goroutine-local barrier view whose arrival tickets
// bypass the ticket counter's shared entry dispatcher; id disperses the
// handles' entry wires. Handles must not be shared.
func (b *Barrier) Handle(id int) *BarrierHandle {
	return &BarrierHandle{inner: b.inner.Handle(id)}
}

// BarrierHandle is a single-goroutine view of a Barrier.
type BarrierHandle struct {
	inner *counter.BarrierHandle
}

// Await blocks until all parties of the caller's generation have
// arrived and returns the 0-based generation number.
func (h *BarrierHandle) Await() int64 { return h.inner.Await() }

// Factorizations lists every multiset factorization of w into factors
// >= 2 (each non-increasing), the parameter space of the network
// family for a fixed width.
func Factorizations(w int) [][]int { return factor.Factorizations(w, 2) }

// BalancedFactorization returns a factorization of w into at most n
// factors minimizing the largest factor — a good default for NewL when
// the caller just wants narrow balancers and small depth.
func BalancedFactorization(w, n int) []int { return factor.Balanced(w, n) }

// FactorizationAdvice is a measurement-driven recommendation of an
// L-family factorization for a load profile (the paper's Theorem 7
// width/depth tradeoff picked from data rather than by hand).
type FactorizationAdvice struct {
	// Factors parameterizes NewL.
	Factors []int
	// Depth and MaxBalancerWidth describe the recommended network.
	Depth            int
	MaxBalancerWidth int
	// Rationale explains the pick in terms of the cost model.
	Rationale string
}

// AdviseFactorization recommends the L-family factorization of width w
// for the given load profile: concurrency is the expected mean number
// of concurrent requesters (an adaptive counter's live estimate, or a
// capacity target), block the mean values drawn per request (>= 1;
// batched draws divide per-balancer pressure). It builds every
// factorization of w, scores each with a contention-aware cost model
// calibrated on the committed benchmark lanes, and returns the
// cheapest — see internal/factor.Advise. Enumeration is exhaustive, so
// keep w modest (hundreds, not millions).
func AdviseFactorization(w int, concurrency, block float64) (FactorizationAdvice, error) {
	cands, err := adviseCandidates(w)
	if err != nil {
		return FactorizationAdvice{}, err
	}
	r, err := factor.Advise(factor.Profile{Concurrency: concurrency, Block: block}, cands)
	if err != nil {
		return FactorizationAdvice{}, err
	}
	return FactorizationAdvice{
		Factors:          r.Factors,
		Depth:            r.Depth,
		MaxBalancerWidth: r.MaxWidth,
		Rationale:        r.Rationale,
	}, nil
}

// adviseCandidates builds one scored candidate per factorization of w:
// the real L network's depth, widest balancer, and per-layer balancer
// counts (what the cost model charges contention against).
func adviseCandidates(w int) ([]factor.Candidate, error) {
	fss := factor.Factorizations(w, 2)
	if len(fss) == 0 {
		return nil, fmt.Errorf("countnet: no factorization of width %d (need w >= 2)", w)
	}
	cands := make([]factor.Candidate, 0, len(fss))
	for _, fs := range fss {
		net, err := core.L(fs...)
		if err != nil {
			return nil, err
		}
		layers := make([]int, net.Depth())
		for i := range net.Gates {
			layers[net.Gates[i].Layer-1]++
		}
		cands = append(cands, factor.Candidate{
			Factors:    fs,
			Depth:      net.Depth(),
			LayerGates: layers,
			MaxWidth:   net.MaxGateWidth(),
		})
	}
	return cands, nil
}
