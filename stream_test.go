package countnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"countnet/internal/sched"
)

func TestBatchSorter(t *testing.T) {
	n, err := NewL(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBatchSorter(n)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		in := make([]int64, 6)
		for i := range in {
			in[i] = int64(rng.Intn(100))
		}
		want := append([]int64(nil), in...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := s.Sort(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("BatchSorter.Sort(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestBatchSorterAllocationFree(t *testing.T) {
	n, err := NewK(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBatchSorter(n)
	rng := rand.New(rand.NewSource(7))
	in := make([]int64, n.Width())
	for i := range in {
		in[i] = int64(rng.Intn(1000))
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Sort(in) }); allocs != 0 {
		t.Errorf("BatchSorter.Sort allocates %v times per run, want 0", allocs)
	}
}

func TestSortStream(t *testing.T) {
	n, err := NewK(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 50
	in := make(chan []int64)
	rng := rand.New(rand.NewSource(2))
	wants := make([][]int64, batches)
	go func() {
		defer close(in)
		for k := 0; k < batches; k++ {
			batch := make([]int64, 8)
			for i := range batch {
				batch[i] = int64(rng.Intn(1000))
			}
			sorted := append([]int64(nil), batch...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			wants[k] = sorted
			in <- batch
		}
	}()
	k := 0
	for got := range n.SortStream(in) {
		if !reflect.DeepEqual(got, wants[k]) {
			t.Fatalf("batch %d: %v, want %v", k, got, wants[k])
		}
		k++
	}
	if k != batches {
		t.Fatalf("received %d batches, want %d", k, batches)
	}
}

func TestSortBatchesFacade(t *testing.T) {
	n, err := NewL(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batches := make([][]int64, 25)
	for i := range batches {
		batches[i] = make([]int64, 6)
		for j := range batches[i] {
			batches[i][j] = int64(rng.Intn(50))
		}
	}
	if err := n.SortBatches(batches, 4); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if !sort.SliceIsSorted(b, func(x, y int) bool { return b[x] < b[y] }) {
			t.Fatalf("batch %d not ascending: %v", i, b)
		}
	}
	if err := n.SortBatches([][]int64{{1}}, 1); err == nil {
		t.Error("short batch accepted")
	}
}

// TestSortStreamScheduleExploration drives concurrent producers into
// one SortStream pipeline under the controlled scheduler
// (internal/sched): the scheduler decides the exact order in which
// producers hand batches to the stream, and for every explored
// interleaving each emitted batch must be the sorted image of the
// batch submitted at that position. This pins down the pipeline's
// order-preservation contract under producer races, with any failing
// interleaving replayable from its printed seed.
func TestSortStreamScheduleExploration(t *testing.T) {
	n, err := NewK(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 3, 2
	rng := rand.New(rand.NewSource(8))
	batches := make([][][]int64, producers)
	for p := range batches {
		batches[p] = make([][]int64, perProducer)
		for k := range batches[p] {
			b := make([]int64, n.Width())
			for i := range b {
				b[i] = int64(rng.Intn(100))
			}
			batches[p][k] = b
		}
	}
	sys := sched.System(func() ([]sched.TaskFunc, func(*sched.Trace) error) {
		in := make(chan []int64)
		out := n.SortStream(in)
		var submitted [][]int64 // in serialized submission order
		tasks := make([]sched.TaskFunc, producers)
		for p := 0; p < producers; p++ {
			p := p
			tasks[p] = func(y *sched.Yield) {
				for k := 0; k < perProducer; k++ {
					y.Step(fmt.Sprintf("submit %d/%d", p, k))
					submitted = append(submitted, batches[p][k])
					in <- append([]int64(nil), batches[p][k]...) // pipeline reuses input slices
				}
			}
		}
		check := func(tr *sched.Trace) error {
			close(in)
			pos := 0
			for got := range out {
				want := append([]int64(nil), submitted[pos]...)
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				if !reflect.DeepEqual(got, want) {
					return fmt.Errorf("stream position %d: got %v, want sorted %v of submission %v",
						pos, got, want, submitted[pos])
				}
				pos++
			}
			if pos != producers*perProducer {
				return fmt.Errorf("stream emitted %d batches, want %d", pos, producers*perProducer)
			}
			return nil
		}
		return tasks, check
	})
	if rep := sched.ExploreRandom(sys, 0xabcd, 60, 10_000); rep.Failure != nil {
		t.Fatalf("random: %s", rep.Failure)
	}
	if rep := sched.ExploreDFS(sys, 1, 5_000, 10_000); rep.Failure != nil {
		t.Fatalf("dfs: %s", rep.Failure)
	}
}

func TestSortStreamEmpty(t *testing.T) {
	n, _ := NewK(2, 2)
	in := make(chan []int64)
	close(in)
	count := 0
	for range n.SortStream(in) {
		count++
	}
	if count != 0 {
		t.Errorf("empty stream produced %d batches", count)
	}
}
