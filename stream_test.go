package countnet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBatchSorter(t *testing.T) {
	n, err := NewL(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBatchSorter(n)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		in := make([]int64, 6)
		for i := range in {
			in[i] = int64(rng.Intn(100))
		}
		want := append([]int64(nil), in...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := s.Sort(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("BatchSorter.Sort(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSortStream(t *testing.T) {
	n, err := NewK(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 50
	in := make(chan []int64)
	rng := rand.New(rand.NewSource(2))
	wants := make([][]int64, batches)
	go func() {
		defer close(in)
		for k := 0; k < batches; k++ {
			batch := make([]int64, 8)
			for i := range batch {
				batch[i] = int64(rng.Intn(1000))
			}
			sorted := append([]int64(nil), batch...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			wants[k] = sorted
			in <- batch
		}
	}()
	k := 0
	for got := range n.SortStream(in) {
		if !reflect.DeepEqual(got, wants[k]) {
			t.Fatalf("batch %d: %v, want %v", k, got, wants[k])
		}
		k++
	}
	if k != batches {
		t.Fatalf("received %d batches, want %d", k, batches)
	}
}

func TestSortBatchesFacade(t *testing.T) {
	n, err := NewL(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batches := make([][]int64, 25)
	for i := range batches {
		batches[i] = make([]int64, 6)
		for j := range batches[i] {
			batches[i][j] = int64(rng.Intn(50))
		}
	}
	if err := n.SortBatches(batches, 4); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if !sort.SliceIsSorted(b, func(x, y int) bool { return b[x] < b[y] }) {
			t.Fatalf("batch %d not ascending: %v", i, b)
		}
	}
	if err := n.SortBatches([][]int64{{1}}, 1); err == nil {
		t.Error("short batch accepted")
	}
}

func TestSortStreamEmpty(t *testing.T) {
	n, _ := NewK(2, 2)
	in := make(chan []int64)
	close(in)
	count := 0
	for range n.SortStream(in) {
		count++
	}
	if count != 0 {
		t.Errorf("empty stream produced %d batches", count)
	}
}
